// Package core implements Algorithm Lookahead — anticipatory instruction
// scheduling for a trace of basic blocks (Sarkar & Simons, SPAA '96, §4,
// Figures 5–7).
//
// The algorithm walks the trace block by block, maintaining a carried suffix
// `old` of not-yet-committed instructions. For each block it
//
//  1. merges old with the block's instructions: a minimum-makespan schedule
//     of old ∪ new is computed with the Rank Algorithm, then re-computed
//     under deadlines that confine old to its standalone makespan (so new
//     instructions only fill idle slots among old, never displace it),
//     loosening the new instructions' deadlines until feasible;
//  2. delays every idle slot as late as possible (Delay_Idle_Slots, §3);
//  3. chops the schedule at the last idle slot that still has at least W−1
//     instructions after it: the prefix is committed to the output (no
//     future block can improve it), the suffix becomes the next `old`.
//
// The emitted result is a static per-block instruction order; instructions
// never move across block boundaries (safety/serviceability), yet the
// predicted schedule accounts for the hardware lookahead window of size W
// filling trailing idle slots with next-block instructions. The algorithm is
// provably optimal in the paper's restricted case (unit execution times, 0/1
// latencies, single functional unit) and is the recommended heuristic
// otherwise (§4.2).
package core

import (
	"fmt"
	"sort"
	"sync"

	"aisched/internal/graph"
	"aisched/internal/idle"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// laScratch pools Algorithm Lookahead's per-call whole-trace buffers (tie
// positions and the stitched absolute schedule) so batch pipelines that
// schedule many traces concurrently reuse them per worker instead of
// reallocating per call. The final schedule copies out of absStart/absUnit,
// so nothing pooled escapes.
type laScratch struct {
	tiePos   []int
	absStart []int
	absUnit  []int
}

var laPool = sync.Pool{New: func() any { return new(laScratch) }}

func (st *laScratch) grow(n int) {
	if cap(st.tiePos) < n {
		st.tiePos = make([]int, n)
		st.absStart = make([]int, n)
		st.absUnit = make([]int, n)
	}
}

// Options tunes Algorithm Lookahead.
type Options struct {
	// Tie is the rank tie-break order in original node IDs (nil = program
	// order). Used to reproduce the paper's worked examples exactly.
	Tie []graph.NodeID
	// SkipDelay disables the Delay_Idle_Slots pass (ablation experiment T2).
	SkipDelay bool
	// Tracer, when non-nil, receives structured pass events: one
	// pass-start/pass-end pair for the whole algorithm, and per block a
	// KindMergeLoosen event for each deadline-loosening round of merge, a
	// KindMerge event for the merged schedule, the Delay_Idle_Slots events
	// (see idle.DelayIdleSlotsT), and a KindChop event with the committed
	// prefix, the carried-suffix size, and the chop time base.
	Tracer obs.Tracer
	// Budget, when non-nil, makes the per-block loop and every rank pass a
	// cooperative cancellation/budget checkpoint: the algorithm returns the
	// checkpoint's error (context cancellation or sbudget.ErrExhausted)
	// instead of a result.
	Budget *sbudget.State
}

// Result is the output of Algorithm Lookahead.
type Result struct {
	// Order is the predicted execution order for the whole trace: the
	// concatenated committed prefixes, which may interleave adjacent blocks
	// where the hardware window overlaps them at run time.
	Order []graph.NodeID
	// BlockOrders[b] is the static order of block b's instructions (the
	// subpermutation P_b of Definition 2.1). The compiler emits exactly
	// these orders — instructions never move across block boundaries.
	BlockOrders map[int][]graph.NodeID
	// S is the algorithm's predicted execution schedule, stitched from the
	// committed prefixes at their absolute times. Its permutation is Order;
	// its per-block subpermutations are BlockOrders.
	S *sched.Schedule
}

// Makespan returns the predicted completion time of the trace.
func (r *Result) Makespan() int { return r.S.Makespan() }

// Clone returns a deep copy of r. The schedule's graph and machine pointers
// are shared, not copied; the memo layer overwrites them on its clones to
// detach cached values from caller-owned graphs.
func (r *Result) Clone() *Result {
	c := &Result{
		Order:       append([]graph.NodeID(nil), r.Order...),
		BlockOrders: make(map[int][]graph.NodeID, len(r.BlockOrders)),
		S:           r.S.Clone(),
	}
	for b, o := range r.BlockOrders {
		c.BlockOrders[b] = append([]graph.NodeID(nil), o...)
	}
	return c
}

// StaticOrder returns the emitted code: the per-block static orders
// concatenated in block order. This is the instruction stream the hardware
// fetches (use it with the hw simulator); Order is how the window is
// predicted to execute it.
func (r *Result) StaticOrder() []graph.NodeID {
	var blocks []int
	for b := range r.BlockOrders {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	var out []graph.NodeID
	for _, b := range blocks {
		out = append(out, r.BlockOrders[b]...)
	}
	return out
}

// Lookahead runs Algorithm Lookahead with default options.
func Lookahead(g *graph.Graph, m *machine.Machine) (*Result, error) {
	return LookaheadOpts(g, m, Options{})
}

// maxBump bounds the deadline-loosening loop in merge. The paper bounds it
// by the largest latency (footnote 8); the node count covers degenerate
// heuristic cases.
func maxBump(g *graph.Graph) int {
	maxLat := 1
	for v := 0; v < g.Len(); v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Latency > maxLat {
				maxLat = e.Latency
			}
		}
	}
	return 4 * (g.Len() + maxLat + 2)
}

// LookaheadOpts runs Algorithm Lookahead (paper Figure 5).
func LookaheadOpts(g *graph.Graph, m *machine.Machine, opt Options) (*Result, error) {
	if g.Len() == 0 {
		return &Result{Order: nil, BlockOrders: map[int][]graph.NodeID{}, S: sched.New(g, m)}, nil
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("core: trace graph has a loop-independent cycle")
	}
	tr := opt.Tracer
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassLookahead,
			Block: -1, Node: graph.None, N: g.Len()})
	}
	blocks := sched.Blocks(g)
	byBlock := make(map[int][]graph.NodeID)
	for v := 0; v < g.Len(); v++ {
		b := g.Node(graph.NodeID(v)).Block
		byBlock[b] = append(byBlock[b], graph.NodeID(v))
	}

	scratch := laPool.Get().(*laScratch)
	defer laPool.Put(scratch)
	scratch.grow(g.Len())
	tiePos := scratch.tiePos[:g.Len()]
	if opt.Tie != nil {
		for i, id := range opt.Tie {
			tiePos[id] = i
		}
	} else {
		for i := range tiePos {
			tiePos[i] = i
		}
	}

	var emitted []graph.NodeID
	var oldIDs []graph.NodeID // original IDs carried forward
	dOld := map[graph.NodeID]int{}
	oldMakespan := 0
	var plusOrder []graph.NodeID // S+ of the most recent iteration, original IDs
	// Stitched absolute schedule: frames advance by each chop's base.
	timeBase := 0
	absStart := scratch.absStart[:g.Len()]
	absUnit := scratch.absUnit[:g.Len()]
	for i := range absStart {
		absStart[i] = sched.Unassigned
		absUnit[i] = sched.Unassigned
	}

	for _, b := range blocks {
		if err := opt.Budget.Check(); err != nil {
			return nil, err
		}
		newIDs := byBlock[b]
		// cur = old ∪ new, as an induced subgraph.
		keep := make(map[graph.NodeID]bool, len(oldIDs)+len(newIDs))
		for _, id := range oldIDs {
			keep[id] = true
		}
		for _, id := range newIDs {
			keep[id] = true
		}
		sub, ids := g.Induced(keep)
		toSub := make(map[graph.NodeID]graph.NodeID, len(ids))
		for si, oi := range ids {
			toSub[oi] = graph.NodeID(si)
		}
		isOld := make([]bool, sub.Len())
		for _, id := range oldIDs {
			isOld[toSub[id]] = true
		}
		tie := subTie(ids, tiePos)
		// One rank context per induced subgraph: the merge re-ranks, every
		// loosening round and the whole Delay_Idle_Slots pass below share
		// its cached topo order, descendant closure and scratch.
		rc, err := rank.NewCtx(sub, m)
		if err != nil {
			return nil, err
		}
		rc.SetBudget(opt.Budget)

		// ---- merge (paper Figure 7) ----
		// Lower bound pass: every deadline = D.
		res0, err := rc.Run(rank.UniformDeadlines(sub.Len(), rank.Big), tie)
		if err != nil {
			return nil, err
		}
		t := res0.S.Makespan()
		// Deadline assignment: old confined to its standalone makespan (or
		// its previously committed tighter deadline), new bounded by T.
		d := make([]int, sub.Len())
		newMask := graph.NewBitset(sub.Len())
		for si := 0; si < sub.Len(); si++ {
			if isOld[si] {
				d[si] = dOld[ids[si]]
				if oldMakespan < d[si] {
					d[si] = oldMakespan
				}
			} else {
				d[si] = t
				newMask.Set(si)
			}
		}
		ranks, err := rc.Compute(d)
		if err != nil {
			return nil, err
		}
		res, err := rc.RunRanks(ranks, d, tie)
		if err != nil {
			return nil, err
		}
		for bump := 0; !res.Feasible && bump <= maxBump(sub); bump++ {
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindMergeLoosen, Block: b,
					Node: graph.None, N: bump + 1})
			}
			for si := 0; si < sub.Len(); si++ {
				if !isOld[si] {
					d[si]++
				}
			}
			// Only the new nodes' deadlines moved: re-rank them and their
			// ancestors instead of the whole subgraph.
			rc.Update(ranks, d, newMask)
			res, err = rc.RunRanks(ranks, d, tie)
			if err != nil {
				return nil, err
			}
		}
		// Heuristic-regime fallback (§4.2): with multiple units, multi-cycle
		// instructions or long latencies, greedy-by-rank may miss even the
		// old nodes' deadlines no matter how far the new deadlines are
		// loosened. The paper guarantees a feasible schedule exists (old
		// followed by new); rather than abort, sync every deadline to the
		// achieved finish time so the pipeline proceeds with the best
		// schedule found.
		for tries := 0; !res.Feasible && tries < 30; tries++ {
			changedMask := graph.NewBitset(sub.Len())
			changed := false
			for si := 0; si < sub.Len(); si++ {
				if f := res.S.Finish(graph.NodeID(si)); f > d[si] {
					d[si] = f
					changedMask.Set(si)
					changed = true
				}
			}
			if !changed {
				break
			}
			rc.Update(ranks, d, changedMask)
			res, err = rc.RunRanks(ranks, d, tie)
			if err != nil {
				return nil, err
			}
		}
		if !res.Feasible {
			for si := 0; si < sub.Len(); si++ {
				if f := res.S.Finish(graph.NodeID(si)); f > d[si] {
					d[si] = f
				}
			}
		}
		s := res.S
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindMerge, Block: b, Node: graph.None,
				From: len(oldIDs), To: len(newIDs), N: s.Makespan()})
		}

		// ---- Delay_Idle_Slots ----
		if !opt.SkipDelay {
			s, d, err = idle.DelayIdleSlotsCtx(rc, s, d, tie, tr)
			if err != nil {
				return nil, err
			}
		}

		// ---- chop ----
		minus, plus, base := chop(s, m.Window)
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindChop, Block: b, Node: graph.None,
				From: len(minus), To: len(plus), N: base})
		}
		for _, si := range minus {
			oi := ids[si]
			emitted = append(emitted, oi)
			absStart[oi] = s.Start[si] + timeBase
			absUnit[oi] = s.Unit[si]
		}
		oldIDs = oldIDs[:0]
		dOld = map[graph.NodeID]int{}
		plusOrder = plusOrder[:0]
		for _, si := range plus {
			oi := ids[si]
			oldIDs = append(oldIDs, oi)
			dOld[oi] = d[si] - base
			plusOrder = append(plusOrder, oi)
			// Tentative placement; overwritten if a later merge reorders it.
			absStart[oi] = s.Start[si] + timeBase
			absUnit[oi] = s.Unit[si]
		}
		oldMakespan = s.Makespan() - base
		timeBase += base
	}
	emitted = append(emitted, plusOrder...)

	if len(emitted) != g.Len() {
		return nil, fmt.Errorf("core: emitted %d of %d instructions", len(emitted), g.Len())
	}
	final := sched.New(g, m)
	copy(final.Start, absStart)
	copy(final.Unit, absUnit)
	out := &Result{Order: emitted, BlockOrders: map[int][]graph.NodeID{}, S: final}
	for _, id := range emitted {
		b := g.Node(id).Block
		out.BlockOrders[b] = append(out.BlockOrders[b], id)
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassLookahead,
			Block: -1, Node: graph.None, N: out.Makespan()})
	}
	return out, nil
}

// subTie converts the original-ID tie positions into a tie order over the
// subgraph's IDs.
func subTie(ids []graph.NodeID, tiePos []int) []graph.NodeID {
	order := make([]graph.NodeID, len(ids))
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tiePos[ids[order[a]]] < tiePos[ids[order[b]]]
	})
	return order
}

// chop implements procedure Chop (paper Figure 6): split s at the last idle
// slot t_j "prior to the last W nodes", i.e. the last slot with at least W
// instructions after it. A slot with fewer than W followers is still
// reachable by a next-block instruction at run time (the inversion would
// span followers+1 ≤ W positions), so committing it would forfeit
// optimality; a slot with ≥ W followers can never be filled across the
// block boundary. Returns the prefix and suffix as subgraph IDs in
// schedule-permutation order, and the time base (t_j + 1) by which suffix
// deadlines must be rebased. When s has no idle slot, fewer than W
// instructions, or no qualifying slot, the prefix is empty and everything
// is carried forward (base 0).
func chop(s *sched.Schedule, w int) (minus, plus []graph.NodeID, base int) {
	perm := s.Permutation()
	if len(perm) < w {
		return nil, perm, 0
	}
	// perm is sorted by start time, so the follower count of a slot is a
	// binary search away; no per-slot rescan of the permutation.
	j := -1
	for _, t := range s.IdleSlots() {
		lo := sort.Search(len(perm), func(i int) bool { return s.Start[perm[i]] > t })
		if len(perm)-lo >= w && t > j {
			j = t
		}
	}
	if j < 0 {
		return nil, perm, 0
	}
	for _, id := range perm {
		if s.Finish(id) <= j {
			minus = append(minus, id)
		} else {
			plus = append(plus, id)
		}
	}
	if len(minus) == 0 {
		return nil, perm, 0
	}
	return minus, plus, j + 1
}

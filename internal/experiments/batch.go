package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"aisched"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// rebuildTrace reconstructs g node-for-node with fresh labels and a shuffled
// edge insertion order: the same scheduling instance arriving down a
// different front-end path. The schedule cache must recognize it by content.
func rebuildTrace(g *graph.Graph, r *rand.Rand) *graph.Graph {
	h := graph.New(g.Len())
	for v := 0; v < g.Len(); v++ {
		nd := g.Node(graph.NodeID(v))
		h.AddNode(fmt.Sprintf("r%d", v), nd.Exec, nd.Class, nd.Block)
	}
	var es []graph.Edge
	for v := 0; v < g.Len(); v++ {
		es = append(es, g.Out(graph.NodeID(v))...)
	}
	for _, i := range r.Perm(len(es)) {
		h.MustEdge(es[i].Src, es[i].Dst, es[i].Latency, es[i].Distance)
	}
	return h
}

// B1 measures the throughput layer: a stream of `instances` trace-scheduling
// requests at several duplicate rates, run serially without a cache vs
// through the parallel batch pipeline with the content-addressed schedule
// cache. A duplicate is an independently rebuilt (relabelled, edge-shuffled)
// copy of an earlier instance, so cache hits come from content fingerprints,
// not pointer identity. The pass/fail checks assert correctness — batch
// results bit-identical to serial, cache bookkeeping exact — while the
// wall-clock columns are informational (they vary with the host).
func B1(seed int64, instances int) (*Result, error) {
	r := rand.New(rand.NewSource(seed))
	m := machine.SingleUnit(4)
	t := tables.New("B1: batch scheduling throughput vs duplicate-block rate",
		"dup rate", "distinct", "serial µs/item", "batch µs/item", "speedup", "hit+coalesced")
	res := &Result{ID: "B1", Table: t, Passed: true}

	for _, rate := range []float64{0, 0.5, 0.9, 0.99} {
		distinct := int(float64(instances)*(1-rate) + 0.5)
		if distinct < 1 {
			distinct = 1
		}
		bases := make([]*graph.Graph, 0, distinct)
		for i := 0; i < distinct; i++ {
			g, err := workload.Trace(r, workload.DefaultTrace())
			if err != nil {
				return nil, err
			}
			bases = append(bases, g)
		}
		items := make([]aisched.BatchItem, 0, instances)
		for i := 0; i < instances; i++ {
			items = append(items, aisched.BatchItem{
				G:    rebuildTrace(bases[i%distinct], r),
				M:    m,
				Kind: aisched.BatchTrace,
			})
		}

		serialStart := time.Now()
		serial := make([]*aisched.TraceResult, len(items))
		for i, it := range items {
			s, err := aisched.ScheduleTrace(it.G, it.M)
			if err != nil {
				return nil, err
			}
			serial[i] = s
		}
		serialNs := time.Since(serialStart).Nanoseconds()

		sc := aisched.NewScheduler(aisched.SchedulerOptions{})
		batchStart := time.Now()
		batch := sc.ScheduleBatch(items)
		batchNs := time.Since(batchStart).Nanoseconds()

		for i := range items {
			if batch[i].Err != nil {
				return nil, batch[i].Err
			}
			b := batch[i].Trace
			if !reflect.DeepEqual(serial[i].Order, b.Order) ||
				!reflect.DeepEqual(serial[i].BlockOrders, b.BlockOrders) ||
				!reflect.DeepEqual(serial[i].S.Start, b.S.Start) ||
				!reflect.DeepEqual(serial[i].S.Unit, b.S.Unit) {
				res.Passed = false
				res.Notes = append(res.Notes,
					fmt.Sprintf("dup %.2f item %d: batch result differs from serial", rate, i))
				break
			}
		}
		cc := sc.CacheCounters()
		if cc.Misses != uint64(distinct) {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"dup %.2f: %d cache misses for %d distinct instances", rate, cc.Misses, distinct))
		}
		if cc.Hits+cc.Misses+cc.Coalesced != uint64(len(items)) {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"dup %.2f: cache accounted %d of %d requests", rate,
				cc.Hits+cc.Misses+cc.Coalesced, len(items)))
		}
		n := int64(len(items))
		t.Add(fmt.Sprintf("%.0f%%", rate*100), distinct,
			fmt.Sprintf("%.1f", float64(serialNs/n)/1e3),
			fmt.Sprintf("%.1f", float64(batchNs/n)/1e3),
			fmt.Sprintf("%.1fx", float64(serialNs)/float64(batchNs)),
			cc.Hits+cc.Coalesced)
	}
	res.Notes = append(res.Notes,
		"timing columns are informational; PASS/FAIL asserts batch ≡ serial and exact cache bookkeeping")
	return res, nil
}

package minic

import (
	"fmt"

	"aisched/internal/isa"
)

// Compiled is the code generator's output: labeled basic blocks in layout
// order, plus the loops discovered during generation (the units the loop
// schedulers consume).
type Compiled struct {
	Blocks []isa.Block
	Loops  []LoopInfo
}

// LoopInfo describes one natural loop in the emitted code.
type LoopInfo struct {
	// Label of the loop header block.
	Label string
	// BodyBlocks are indices into Compiled.Blocks forming the loop body in
	// layout order. A single-block loop (rotated while/for with a
	// straight-line body) has exactly one entry.
	BodyBlocks []int
}

// TraceBlocks returns the instruction sequences of the layout-order trace —
// the fall-through path a trace scheduler would select with every branch
// predicted untaken.
func (c *Compiled) TraceBlocks() [][]isa.Instr {
	var out [][]isa.Instr
	for _, b := range c.Blocks {
		if len(b.Instrs) > 0 {
			out = append(out, b.Instrs)
		}
	}
	return out
}

// Body returns the instructions of a single-block loop, or nil.
func (c *Compiled) Body(l LoopInfo) []isa.Instr {
	if len(l.BodyBlocks) != 1 {
		return nil
	}
	return c.Blocks[l.BodyBlocks[0]].Instrs
}

// Register file convention: arrays get base registers r1..r7, scalars live
// in r8..r15, temporaries cycle through r16..r31, condition registers
// cr0..cr7 round-robin.
const (
	firstArrayReg  = 1
	firstScalarReg = 8
	firstTempReg   = 16
)

type codegen struct {
	blocks   []isa.Block
	cur      isa.Block
	loops    []LoopInfo
	scalars  map[string]isa.Reg
	arrays   map[string]isa.Reg
	nArrays  int
	nScalars int
	nTemp    int
	nCR      int
	nLabel   int
	addr     int64
}

// Compile parses and code-generates a mini-C program.
func Compile(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Generate(prog)
}

// Generate lowers a parsed program to basic blocks.
func Generate(prog *Program) (*Compiled, error) {
	g := &codegen{
		scalars: map[string]isa.Reg{},
		arrays:  map[string]isa.Reg{},
		cur:     isa.Block{Label: "entry"},
		addr:    0x1000,
	}
	for _, s := range prog.Stmts {
		if err := g.stmt(s); err != nil {
			return nil, err
		}
	}
	g.flush("")
	return &Compiled{Blocks: g.blocks, Loops: g.loops}, nil
}

func (g *codegen) emit(in isa.Instr) { g.cur.Instrs = append(g.cur.Instrs, in) }

// flush ends the current block and starts a new one labeled next. Labeled
// blocks are kept even when empty — they may be branch targets (e.g. the
// end label of a nested if) and the CFG layer resolves them as
// fall-through.
func (g *codegen) flush(next string) {
	if len(g.cur.Instrs) > 0 || g.cur.Label == "entry" ||
		(g.cur.Label != "" && g.labelUsed(g.cur.Label)) {
		g.blocks = append(g.blocks, g.cur)
	}
	g.cur = isa.Block{Label: next}
}

// labelUsed reports whether any emitted branch targets the label.
func (g *codegen) labelUsed(label string) bool {
	for _, b := range g.blocks {
		for _, in := range b.Instrs {
			if in.Target == label {
				return true
			}
		}
	}
	for _, in := range g.cur.Instrs {
		if in.Target == label {
			return true
		}
	}
	return false
}

func (g *codegen) label(name string) { g.flush(name) }

func (g *codegen) newLabel(prefix string) string {
	g.nLabel++
	return fmt.Sprintf("%s.%d", prefix, g.nLabel)
}

func (g *codegen) tempReg() (isa.Reg, error) {
	r := firstTempReg + g.nTemp
	if r >= isa.NumGPR {
		return isa.NoReg, fmt.Errorf("minic: out of temporary registers")
	}
	g.nTemp++
	return isa.GPR(r), nil
}

func (g *codegen) releaseTemps(mark int) { g.nTemp = mark }

func (g *codegen) condReg() isa.Reg {
	r := isa.CR(g.nCR % isa.NumCR)
	g.nCR++
	return r
}

func (g *codegen) stmt(s Stmt) error {
	mark := g.nTemp
	defer g.releaseTemps(mark)
	switch st := s.(type) {
	case DeclStmt:
		return g.decl(st)
	case *AssignStmt:
		return g.assign(*st)
	case AssignStmt:
		return g.assign(st)
	case IfStmt:
		return g.ifStmt(st)
	case WhileStmt:
		return g.loop(nil, st.Cond, nil, st.Body, "while")
	case ForStmt:
		return g.loop(st.Init, st.Cond, st.Post, st.Body, "for")
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

func (g *codegen) decl(d DeclStmt) error {
	if d.Size >= 0 {
		if _, dup := g.arrays[d.Name]; dup {
			return fmt.Errorf("minic: array %q redeclared", d.Name)
		}
		if _, dup := g.scalars[d.Name]; dup {
			return fmt.Errorf("minic: %q redeclared", d.Name)
		}
		r := firstArrayReg + g.nArrays
		if r >= firstScalarReg {
			return fmt.Errorf("minic: too many arrays (max %d)", firstScalarReg-firstArrayReg)
		}
		g.nArrays++
		g.arrays[d.Name] = isa.GPR(r)
		g.emit(isa.Instr{Op: isa.LI, Dst: isa.GPR(r), Imm: g.addr, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg,
			Comment: fmt.Sprintf("&%s", d.Name)})
		g.addr += d.Size * 4
		return nil
	}
	if _, dup := g.scalars[d.Name]; dup {
		return fmt.Errorf("minic: %q redeclared", d.Name)
	}
	if _, dup := g.arrays[d.Name]; dup {
		return fmt.Errorf("minic: %q redeclared", d.Name)
	}
	r := firstScalarReg + g.nScalars
	if r >= firstTempReg {
		return fmt.Errorf("minic: too many scalars (max %d)", firstTempReg-firstScalarReg)
	}
	g.nScalars++
	g.scalars[d.Name] = isa.GPR(r)
	if d.Init != nil {
		return g.exprInto(d.Init, isa.GPR(r))
	}
	return nil
}

func (g *codegen) assign(a AssignStmt) error {
	if a.Index == nil {
		dst, ok := g.scalars[a.Name]
		if !ok {
			return fmt.Errorf("minic: assignment to undeclared scalar %q", a.Name)
		}
		return g.exprInto(a.Value, dst)
	}
	base, ok := g.arrays[a.Name]
	if !ok {
		return fmt.Errorf("minic: assignment to undeclared array %q", a.Name)
	}
	val, err := g.expr(a.Value)
	if err != nil {
		return err
	}
	addr, off, err := g.address(base, a.Index)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.STORE, SrcA: val, Base: addr, Imm: off, Dst: isa.NoReg, SrcB: isa.NoReg,
		Comment: fmt.Sprintf("%s[...] =", a.Name)})
	return nil
}

// address lowers an array index expression into (base register, byte
// offset): constant indices fold into the offset, variable indices compute
// base + 4*i into a temp.
func (g *codegen) address(base isa.Reg, idx Expr) (isa.Reg, int64, error) {
	if n, ok := idx.(NumLit); ok {
		return base, n.Value * 4, nil
	}
	// Fold i±c into offset arithmetic.
	if b, ok := idx.(Binary); ok {
		if n, ok2 := b.R.(NumLit); ok2 && (b.Op == "+" || b.Op == "-") {
			r, _, err := g.address(base, b.L)
			if err != nil {
				return isa.NoReg, 0, err
			}
			off := n.Value * 4
			if b.Op == "-" {
				off = -off
			}
			return r, off, nil
		}
	}
	iv, err := g.expr(idx)
	if err != nil {
		return isa.NoReg, 0, err
	}
	t1, err := g.tempReg()
	if err != nil {
		return isa.NoReg, 0, err
	}
	t2, err := g.tempReg()
	if err != nil {
		return isa.NoReg, 0, err
	}
	g.emit(isa.Instr{Op: isa.LI, Dst: t1, Imm: 2, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
	g.emit(isa.Instr{Op: isa.SHL, Dst: t2, SrcA: iv, SrcB: t1, Base: isa.NoReg})
	g.emit(isa.Instr{Op: isa.ADD, Dst: t2, SrcA: t2, SrcB: base, Base: isa.NoReg})
	return t2, 0, nil
}

// expr evaluates e into a register (reusing variable registers for plain
// reads).
func (g *codegen) expr(e Expr) (isa.Reg, error) {
	if v, ok := e.(VarRef); ok {
		if r, ok2 := g.scalars[v.Name]; ok2 {
			return r, nil
		}
		return isa.NoReg, fmt.Errorf("minic: undeclared variable %q", v.Name)
	}
	t, err := g.tempReg()
	if err != nil {
		return isa.NoReg, err
	}
	if err := g.exprInto(e, t); err != nil {
		return isa.NoReg, err
	}
	return t, nil
}

// exprInto evaluates e into dst.
func (g *codegen) exprInto(e Expr, dst isa.Reg) error {
	switch x := e.(type) {
	case NumLit:
		g.emit(isa.Instr{Op: isa.LI, Dst: dst, Imm: x.Value, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
		return nil
	case VarRef:
		src, ok := g.scalars[x.Name]
		if !ok {
			return fmt.Errorf("minic: undeclared variable %q", x.Name)
		}
		if src != dst {
			g.emit(isa.Instr{Op: isa.MOV, Dst: dst, SrcA: src, SrcB: isa.NoReg, Base: isa.NoReg})
		}
		return nil
	case IndexRef:
		base, ok := g.arrays[x.Name]
		if !ok {
			return fmt.Errorf("minic: undeclared array %q", x.Name)
		}
		addr, off, err := g.address(base, x.Index)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.LOAD, Dst: dst, Base: addr, Imm: off, SrcA: isa.NoReg, SrcB: isa.NoReg,
			Comment: x.Name + "[...]"})
		return nil
	case Unary:
		if x.Op == "-" {
			if n, ok := x.X.(NumLit); ok {
				g.emit(isa.Instr{Op: isa.LI, Dst: dst, Imm: -n.Value, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
				return nil
			}
			v, err := g.expr(x.X)
			if err != nil {
				return err
			}
			t, err := g.tempReg()
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.LI, Dst: t, Imm: 0, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
			g.emit(isa.Instr{Op: isa.SUB, Dst: dst, SrcA: t, SrcB: v, Base: isa.NoReg})
			return nil
		}
		// !x lowered as comparison with 0 into a GPR via cmp+materialize is
		// overkill for scheduling studies; reject for clarity.
		return fmt.Errorf("minic: unary %q only supported in conditions", x.Op)
	case Binary:
		return g.binaryInto(x, dst)
	}
	return fmt.Errorf("minic: cannot evaluate %T", e)
}

var arithOp = map[string]isa.Opcode{
	"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV,
	"&": isa.AND, "|": isa.OR, "^": isa.XOR,
}

func (g *codegen) binaryInto(b Binary, dst isa.Reg) error {
	op, ok := arithOp[b.Op]
	if !ok {
		return fmt.Errorf("minic: operator %q not valid in arithmetic context", b.Op)
	}
	// Immediate forms for x ± c.
	if n, isNum := b.R.(NumLit); isNum && (b.Op == "+" || b.Op == "-") {
		l, err := g.expr(b.L)
		if err != nil {
			return err
		}
		io := isa.ADDI
		if b.Op == "-" {
			io = isa.SUBI
		}
		g.emit(isa.Instr{Op: io, Dst: dst, SrcA: l, Imm: n.Value, SrcB: isa.NoReg, Base: isa.NoReg})
		return nil
	}
	l, err := g.expr(b.L)
	if err != nil {
		return err
	}
	r, err := g.expr(b.R)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: op, Dst: dst, SrcA: l, SrcB: r, Base: isa.NoReg})
	return nil
}

var condCodes = map[string]isa.CondCode{
	"==": isa.EQ, "!=": isa.NE, "<": isa.LT, "<=": isa.LE, ">": isa.GT, ">=": isa.GE,
}

// cond lowers a boolean expression into a condition register holding its
// truth value, encoding the comparison in the instruction's condition code.
func (g *codegen) cond(e Expr) (isa.Reg, error) {
	cr := g.condReg()
	if u, ok := e.(Unary); ok && u.Op == "!" {
		// !x ≡ (x == 0).
		v, err := g.expr(u.X)
		if err != nil {
			return isa.NoReg, err
		}
		g.emit(isa.Instr{Op: isa.CMPI, Dst: cr, SrcA: v, Imm: 0, SrcB: isa.NoReg, Base: isa.NoReg,
			Cond: isa.EQ, Comment: "!"})
		return cr, nil
	}
	if b, ok := e.(Binary); ok {
		if cc, isCmp := condCodes[b.Op]; isCmp {
			l, err := g.expr(b.L)
			if err != nil {
				return isa.NoReg, err
			}
			if n, isNum := b.R.(NumLit); isNum {
				g.emit(isa.Instr{Op: isa.CMPI, Dst: cr, SrcA: l, Imm: n.Value, SrcB: isa.NoReg, Base: isa.NoReg,
					Cond: cc, Comment: b.Op})
				return cr, nil
			}
			r, err := g.expr(b.R)
			if err != nil {
				return isa.NoReg, err
			}
			g.emit(isa.Instr{Op: isa.CMP, Dst: cr, SrcA: l, SrcB: r, Base: isa.NoReg, Cond: cc, Comment: b.Op})
			return cr, nil
		}
	}
	// Treat any other expression as (e != 0).
	v, err := g.expr(e)
	if err != nil {
		return isa.NoReg, err
	}
	g.emit(isa.Instr{Op: isa.CMPI, Dst: cr, SrcA: v, Imm: 0, SrcB: isa.NoReg, Base: isa.NoReg,
		Cond: isa.NE, Comment: "!= 0"})
	return cr, nil
}

func (g *codegen) ifStmt(s IfStmt) error {
	cr, err := g.cond(s.Cond)
	if err != nil {
		return err
	}
	elseLbl := g.newLabel("L.else")
	endLbl := g.newLabel("L.end")
	target := endLbl
	if len(s.Else) > 0 {
		target = elseLbl
	}
	g.emit(isa.Instr{Op: isa.BF, SrcA: cr, Target: target, Dst: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
	g.flush(g.newLabel("L.then"))
	for _, st := range s.Then {
		if err := g.stmt(st); err != nil {
			return err
		}
	}
	if len(s.Else) > 0 {
		g.emit(isa.Instr{Op: isa.B, Target: endLbl, Dst: isa.NoReg, SrcA: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
		g.label(elseLbl)
		for _, st := range s.Else {
			if err := g.stmt(st); err != nil {
				return err
			}
		}
	}
	g.label(endLbl)
	return nil
}

// loop lowers while/for with classic loop rotation: a pre-check guard, then
// a body block ending in (post,) condition, and a backward conditional
// branch. A straight-line body therefore becomes a single basic block — the
// shape §5.2's single-block loop algorithms consume (cf. the paper's Figure
// 3 loop) — while bodies with control flow become multi-block loops (§5.1).
func (g *codegen) loop(init *AssignStmt, cond Expr, post *AssignStmt, body []Stmt, kind string) error {
	if init != nil {
		if err := g.assign(*init); err != nil {
			return err
		}
	}
	// Guard.
	cr, err := g.cond(cond)
	if err != nil {
		return err
	}
	bodyLbl := g.newLabel("L." + kind)
	endLbl := g.newLabel("L.end")
	g.emit(isa.Instr{Op: isa.BF, SrcA: cr, Target: endLbl, Dst: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
	g.flush(bodyLbl)
	startBlock := len(g.blocks) // index the body's first block will get
	for _, st := range body {
		if err := g.stmt(st); err != nil {
			return err
		}
	}
	if post != nil {
		if err := g.assign(*post); err != nil {
			return err
		}
	}
	cr2, err := g.cond(cond)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.BT, SrcA: cr2, Target: bodyLbl, Dst: isa.NoReg, SrcB: isa.NoReg, Base: isa.NoReg})
	g.flush(endLbl)
	bodyEnd := len(g.blocks) // exclusive
	var bodyBlocks []int
	for i := startBlock; i < bodyEnd; i++ {
		bodyBlocks = append(bodyBlocks, i)
	}
	g.loops = append(g.loops, LoopInfo{Label: bodyLbl, BodyBlocks: bodyBlocks})
	return nil
}

// Package regren implements a register-renaming pass over straight-line
// instruction sequences: every definition is given a fresh register (while
// the register file lasts) and subsequent uses are rewritten, eliminating
// the anti (WAR) and output (WAW) dependences that would otherwise
// serialize the schedule. This is the compile-time analogue of the
// renaming that out-of-order hardware performs, and the mechanism the
// paper's §6 related work (Hennessy–Gross pipeline hazards,
// Gibbons–Muchnick register reuse edges) treats as a first-class
// scheduling obstacle.
//
// The pass is conservative: registers that are live into or out of the
// block (read before any definition, or defined and never provably dead)
// keep their final architectural homes via a copy-free "last def writes the
// original register" policy, so the renamed block is observationally
// equivalent for any consumer of the block's live-out registers.
package regren

import (
	"aisched/internal/isa"
)

// Rename rewrites a basic block so each register definition targets a
// fresh register, reusing the free registers of the file. The last
// definition of each original register keeps the original name (preserving
// live-out values); earlier definitions move to scratch registers. When the
// register file is exhausted, remaining definitions keep their original
// registers (graceful degradation: the pass only removes the false
// dependences it has room for).
//
// Scratch registers are chosen among those the BLOCK does not reference;
// when the block is part of a larger program, a register unreferenced here
// may still be live across the block — use RenameBlocks, which reserves
// every register the whole program touches.
func Rename(instrs []isa.Instr) []isa.Instr {
	return renameWith(instrs, referenced(instrs))
}

// RenameBlocks renames every block of a program, treating all registers
// referenced anywhere in the program as reserved (they may be live across
// block boundaries) so scratch registers never clobber a live value.
func RenameBlocks(blocks []isa.Block) []isa.Block {
	reserved := map[isa.Reg]bool{}
	for _, b := range blocks {
		for r := range referenced(b.Instrs) {
			reserved[r] = true
		}
	}
	out := make([]isa.Block, len(blocks))
	for i, b := range blocks {
		out[i] = isa.Block{Label: b.Label, Instrs: renameWith(b.Instrs, reserved)}
	}
	return out
}

// referenced collects every register an instruction sequence touches.
func referenced(instrs []isa.Instr) map[isa.Reg]bool {
	used := map[isa.Reg]bool{}
	for _, in := range instrs {
		for _, r := range in.Defs() {
			used[r] = true
		}
		for _, r := range in.Uses() {
			used[r] = true
		}
		if in.Base.Valid() {
			used[in.Base] = true
		}
	}
	return used
}

func renameWith(instrs []isa.Instr, reserved map[isa.Reg]bool) []isa.Instr {
	out := make([]isa.Instr, len(instrs))
	copy(out, instrs)

	var free []isa.Reg
	for i := 0; i < isa.NumGPR; i++ {
		if !reserved[isa.GPR(i)] {
			free = append(free, isa.GPR(i))
		}
	}

	// lastDef[r] = index of the final definition of r in the block.
	lastDef := map[isa.Reg]int{}
	for i, in := range instrs {
		for _, d := range in.Defs() {
			lastDef[d] = i
		}
	}

	// current[r] = the register currently holding the value of original r.
	current := map[isa.Reg]isa.Reg{}
	mapUse := func(r isa.Reg) isa.Reg {
		if r.IsCR() || !r.Valid() {
			return r
		}
		if c, ok := current[r]; ok {
			return c
		}
		return r
	}
	for i := range out {
		in := &out[i]
		// Rewrite uses first (they read the pre-instruction mapping).
		in.SrcA = mapUse(in.SrcA)
		in.SrcB = mapUse(in.SrcB)
		// Base is both a use and possibly a def (update forms); the update
		// forms increment the base in place, so renaming the base would
		// change the addressing of later accesses — keep bases pinned and
		// only rewrite pure-use bases through the map.
		if in.Base.Valid() && in.Op != isa.LOADU && in.Op != isa.STOREU {
			in.Base = mapUse(in.Base)
		}
		// Rewrite the primary destination.
		d := primaryDst(*in)
		if d.Valid() && !d.IsCR() {
			if lastDef[d] == i {
				// Final def: restore the architectural register.
				current[d] = d
			} else if len(free) > 0 {
				fresh := free[0]
				free = free[1:]
				current[d] = fresh
				setPrimaryDst(in, fresh)
			} else {
				current[d] = d // out of scratch registers: keep as-is
			}
		}
	}
	return out
}

// primaryDst returns the register the instruction's Dst field defines
// (NoReg for stores/branches; the update-form base is handled separately
// and never renamed).
func primaryDst(in isa.Instr) isa.Reg {
	switch in.Op {
	case isa.LI, isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.ADDI, isa.SUBI, isa.MUL, isa.DIV,
		isa.LOAD, isa.LOADU:
		return in.Dst
	}
	return isa.NoReg
}

func setPrimaryDst(in *isa.Instr, r isa.Reg) { in.Dst = r }

// FalseDeps counts the anti (WAR) and output (WAW) register dependences in
// a block — the quantity renaming exists to reduce.
func FalseDeps(instrs []isa.Instr) int {
	count := 0
	for j := 1; j < len(instrs); j++ {
		for i := 0; i < j; i++ {
			if isFalseDep(instrs[i], instrs[j]) {
				count++
			}
		}
	}
	return count
}

func isFalseDep(a, b isa.Instr) bool {
	raw := false
	for _, d := range a.Defs() {
		for _, u := range b.Uses() {
			if d == u {
				raw = true
			}
		}
	}
	if raw {
		return false // true dependence dominates
	}
	for _, d := range a.Defs() {
		for _, d2 := range b.Defs() {
			if d == d2 {
				return true // WAW
			}
		}
	}
	for _, u := range a.Uses() {
		for _, d := range b.Defs() {
			if u == d {
				return true // WAR
			}
		}
	}
	return false
}

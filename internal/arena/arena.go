// Package arena provides a typed bump allocator for the scheduling engine's
// scratch memory. The Rank Algorithm context re-derives its per-graph
// analysis (topological order, descendant closure, packing scratch) for every
// induced subgraph of Algorithm Lookahead's merge loop; carving those arrays
// out of one arena that is reset — not freed — between lookahead iterations
// turns dozens of per-block allocations into pointer bumps over memory that
// is recycled across requests by the batch worker pool.
//
// An Arena is not safe for concurrent use; it is owned by a single rank.Ctx
// (one per goroutine, pooled alongside it).
package arena

import "aisched/internal/graph"

// Slab is a growable bump allocator for values of type T. Alloc returns
// zeroed regions; Reset makes all previously allocated regions reusable
// without releasing their memory to the garbage collector.
type Slab[T any] struct {
	blocks [][]T
	cur    int // index of the block being bumped
	off    int // bump offset within blocks[cur]
}

// minBlock is the element count of the first block of a slab.
const minBlock = 64

// Alloc returns a zeroed []T of length n carved from the slab. The region is
// valid until the next Reset. Alloc(0) returns nil.
func (s *Slab[T]) Alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for s.cur < len(s.blocks) {
		if b := s.blocks[s.cur]; s.off+n <= len(b) {
			out := b[s.off : s.off+n : s.off+n]
			s.off += n
			clear(out)
			return out
		}
		s.cur++
		s.off = 0
	}
	// Grow: each new block doubles the last capacity so a request-sized
	// working set settles into O(1) blocks.
	size := minBlock
	if k := len(s.blocks); k > 0 {
		size = 2 * len(s.blocks[k-1])
	}
	if size < n {
		size = n
	}
	s.blocks = append(s.blocks, make([]T, size))
	s.cur = len(s.blocks) - 1
	out := s.blocks[s.cur][:n:n]
	s.off = n
	return out
}

// Reset makes the slab's entire capacity available again. Previously
// returned regions must no longer be used.
func (s *Slab[T]) Reset() { s.cur, s.off = 0, 0 }

// Arena bundles the slabs the scheduling engine needs: plain ints
// (deadlines, ranks, positions), node IDs (orders, lists, members), and
// bitset words (descendant closures, changed masks).
type Arena struct {
	Ints  Slab[int]
	IDs   Slab[graph.NodeID]
	Words Slab[uint64]
	Bools Slab[bool]
}

// Reset resets every slab. All regions handed out since the previous Reset
// become invalid.
func (a *Arena) Reset() {
	a.Ints.Reset()
	a.IDs.Reset()
	a.Words.Reset()
	a.Bools.Reset()
}

// Bitset returns a zeroed bitset able to hold n bits, carved from the word
// slab.
func (a *Arena) Bitset(n int) graph.Bitset {
	return graph.Bitset(a.Words.Alloc((n + 63) / 64))
}

// BitsetRows returns n zeroed n-bit bitsets carved from one word-slab
// region, the arena counterpart of the graph package's closure-row layout.
// The row headers are written into rows (grown only when its capacity is
// insufficient) so steady-state callers allocate nothing.
func (a *Arena) BitsetRows(rows []graph.Bitset, n int) []graph.Bitset {
	words := (n + 63) / 64
	backing := a.Words.Alloc(n * words)
	if cap(rows) < n {
		rows = make([]graph.Bitset, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = graph.Bitset(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return rows
}

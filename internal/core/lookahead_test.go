package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

func TestLookaheadFigure2Makespan11(t *testing.T) {
	// §2.3: the two-block trace of Figure 2 with W=2 has an optimal legal
	// schedule of makespan 11, which Algorithm Lookahead finds.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	res, err := Lookahead(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(); got != 11 {
		t.Fatalf("makespan = %d, want 11\norder=%v\n%s",
			got, sched.PermutationLabels(res.S), res.S)
	}
	if err := sched.CheckLegal(res.S, 2); err != nil {
		t.Fatalf("Figure 2 result not legal for W=2: %v", err)
	}
	if len(res.BlockOrders[0]) != 6 || len(res.BlockOrders[1]) != 5 {
		t.Fatalf("block orders sized %d/%d, want 6/5",
			len(res.BlockOrders[0]), len(res.BlockOrders[1]))
	}
	// Instructions must not cross block boundaries in the emitted code:
	// every BB1 instruction precedes every BB2 instruction in Order... only
	// within the carried suffix may they interleave, and Order is the static
	// emission which keeps blocks contiguous per construction of the chop.
	for b, ids := range res.BlockOrders {
		for _, id := range ids {
			if f.G.Node(id).Block != b {
				t.Fatalf("block order %d contains node of block %d", b, f.G.Node(id).Block)
			}
		}
	}
}

func TestLookaheadFigure2BeatsIndependentScheduling(t *testing.T) {
	// Under the W=2 window simulator, the anticipatory emission achieves 11
	// and is no worse than the independently scheduled blocks' emission.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	res, err := Lookahead(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	la, err := hw.SimulateTrace(f.G, m, res.StaticOrder())
	if err != nil {
		t.Fatal(err)
	}
	baseOrder, err := independentBlocks(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := hw.SimulateTrace(f.G, m, baseOrder)
	if err != nil {
		t.Fatal(err)
	}
	if la.Completion != 11 {
		t.Fatalf("simulated anticipatory completion = %d, want 11", la.Completion)
	}
	if la.Completion > ib.Completion {
		t.Fatalf("lookahead %d worse than independent-blocks %d", la.Completion, ib.Completion)
	}
}

// independentBlocks schedules each block in isolation with the Rank
// Algorithm and returns the concatenated static order — the "local
// scheduling" baseline's emitted code.
func independentBlocks(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	var order []graph.NodeID
	for _, b := range sched.Blocks(g) {
		keep := map[graph.NodeID]bool{}
		for v := 0; v < g.Len(); v++ {
			if g.Node(graph.NodeID(v)).Block == b {
				keep[graph.NodeID(v)] = true
			}
		}
		sub, ids := g.Induced(keep)
		s, err := rank.Makespan(sub, m)
		if err != nil {
			return nil, err
		}
		for _, si := range s.Permutation() {
			order = append(order, ids[si])
		}
	}
	return order, nil
}

func TestLookaheadSingleBlockEqualsRank(t *testing.T) {
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	res, err := Lookahead(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 7 {
		t.Fatalf("single-block lookahead makespan = %d, want 7", res.Makespan())
	}
	if err := res.S.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLookaheadEmptyGraph(t *testing.T) {
	g := graph.New(0)
	m := machine.SingleUnit(2)
	res, err := Lookahead(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 0 {
		t.Fatal("empty graph produced instructions")
	}
}

func TestLookaheadRejectsCyclicGraph(t *testing.T) {
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, a, 0, 0)
	if _, err := Lookahead(g, machine.SingleUnit(2)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestLookaheadSkipDelayAblation(t *testing.T) {
	// The ablation must still produce a valid complete schedule, possibly
	// worse, never better than the full algorithm on the restricted model.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	full, err := Lookahead(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := LookaheadOpts(f.G, m, Options{SkipDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := abl.S.Validate(); err != nil {
		t.Fatal(err)
	}
	if abl.Makespan() < full.Makespan() {
		t.Fatalf("ablation (%d) beat full algorithm (%d)", abl.Makespan(), full.Makespan())
	}
}

func TestLookaheadPaperTieReproducesFigure2Narrative(t *testing.T) {
	// With the paper's §2.1 tie order for BB1, the algorithm still reaches
	// makespan 11 (the tie order only changes which optimal schedule is
	// found).
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	tie := []graph.NodeID{f.E, f.X, f.B, f.W, f.A, f.R, f.Z, f.Q, f.P, f.V, f.Gn}
	res, err := LookaheadOpts(f.G, m, Options{Tie: tie})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 11 {
		t.Fatalf("makespan = %d, want 11", res.Makespan())
	}
}

// randomTrace builds a trace of nblocks blocks with about nodesPer nodes
// each, intra-block edge probability pIn and cross-block (forward, adjacent
// blocks only) probability pX; 0/1 latencies, unit exec, class 0.
func randomTrace(r *rand.Rand, nblocks, nodesPer int, pIn, pX float64) *graph.Graph {
	g := graph.New(nblocks * nodesPer)
	var blockNodes [][]graph.NodeID
	for b := 0; b < nblocks; b++ {
		var ids []graph.NodeID
		for i := 0; i < nodesPer; i++ {
			ids = append(ids, g.AddNode("n", 1, 0, b))
		}
		blockNodes = append(blockNodes, ids)
	}
	for b := 0; b < nblocks; b++ {
		ids := blockNodes[b]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if r.Float64() < pIn {
					g.MustEdge(ids[i], ids[j], r.Intn(2), 0)
				}
			}
			if b+1 < nblocks {
				for _, jd := range blockNodes[b+1] {
					if r.Float64() < pX {
						g.MustEdge(ids[i], jd, r.Intn(2), 0)
					}
				}
			}
		}
	}
	return g
}

func TestPropertyLookaheadValidAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 1+r.Intn(4), 2+r.Intn(6), 0.3, 0.15)
		m := machine.SingleUnit(1 + r.Intn(6))
		res, err := Lookahead(g, m)
		if err != nil {
			return false
		}
		if len(res.Order) != g.Len() {
			return false
		}
		seen := make([]bool, g.Len())
		for _, id := range res.Order {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return res.S.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLookaheadRarelyWorseThanIndependentBlocks(t *testing.T) {
	// Under the window simulator, the anticipatory emission beats or matches
	// independent per-block scheduling on the overwhelming majority of
	// restricted-model instances, and never loses more than one cycle (the
	// merge's deadline discipline is greedy per block prefix; see
	// EXPERIMENTS.md for the measured distribution).
	worse := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 2+r.Intn(3), 2+r.Intn(5), 0.35, 0.2)
		m := machine.SingleUnit(2 + r.Intn(4))
		res, err := Lookahead(g, m)
		if err != nil {
			return false
		}
		la, err := hw.SimulateTrace(g, m, res.StaticOrder())
		if err != nil {
			return false
		}
		baseOrder, err := independentBlocks(g, m)
		if err != nil {
			return false
		}
		ib, err := hw.SimulateTrace(g, m, baseOrder)
		if err != nil {
			return false
		}
		if la.Completion > ib.Completion {
			worse++
		}
		return la.Completion <= ib.Completion+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if worse > 5 {
		t.Fatalf("lookahead lost to the local baseline on %d/50 instances", worse)
	}
}

func TestPropertyLookaheadAtLeastCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 1+r.Intn(3), 2+r.Intn(6), 0.3, 0.2)
		m := machine.SingleUnit(4)
		res, err := Lookahead(g, m)
		if err != nil {
			return false
		}
		cp, err := g.CriticalPathLengths()
		if err != nil {
			return false
		}
		lb := g.Len() // single unit: at least one cycle per instruction
		for _, v := range cp {
			if v > lb {
				lb = v
			}
		}
		return res.Makespan() >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlockOrdersPartitionNodes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 1+r.Intn(4), 1+r.Intn(6), 0.3, 0.2)
		m := machine.SingleUnit(3)
		res, err := Lookahead(g, m)
		if err != nil {
			return false
		}
		total := 0
		for b, ids := range res.BlockOrders {
			for _, id := range ids {
				if g.Node(id).Block != b {
					return false
				}
			}
			total += len(ids)
		}
		return total == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomLatencyTrace is randomTrace with multi-cycle exec times (1-3) and
// latencies up to 5: the mixed-latency regime where commit-time release
// propagation is load-bearing. Class assignment cycles through classes so
// multi-class machines are exercised too.
func randomLatencyTrace(r *rand.Rand, nblocks, nodesPer int, pIn, pX float64, classes int) *graph.Graph {
	g := graph.New(nblocks * nodesPer)
	var blockNodes [][]graph.NodeID
	for b := 0; b < nblocks; b++ {
		var ids []graph.NodeID
		for i := 0; i < nodesPer; i++ {
			ids = append(ids, g.AddNode("n", 1+r.Intn(3), (b*nodesPer+i)%classes, b))
		}
		blockNodes = append(blockNodes, ids)
	}
	for b := 0; b < nblocks; b++ {
		ids := blockNodes[b]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if r.Float64() < pIn {
					g.MustEdge(ids[i], ids[j], r.Intn(6), 0)
				}
			}
			if b+1 < nblocks {
				for _, jd := range blockNodes[b+1] {
					if r.Float64() < pX {
						g.MustEdge(ids[i], jd, r.Intn(6), 0)
					}
				}
			}
		}
	}
	return g
}

func TestLookaheadPredictionLegal(t *testing.T) {
	// Regression for the cross-chop latency violation: before commit-time
	// release propagation, a latency edge whose source was chopped into the
	// committed prefix placed no constraint on later merges, so the predicted
	// schedule could start a successor before its operand was ready (116/300
	// of these seeds produced an illegal schedule). The restricted model
	// (0/1 latencies) is immune — chop's idle-slot criterion already covers
	// it — so this test runs the mixed-latency regime that actually needs
	// the releases.
	machines := []struct {
		name    string
		m       *machine.Machine
		classes int
	}{
		{"single-unit", machine.SingleUnit(4), 1},
		{"rs6000", machine.RS6000(4), 3},
		{"superscalar", machine.Superscalar(2, 4), 1},
	}
	for _, mc := range machines {
		t.Run(mc.name, func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				r := rand.New(rand.NewSource(seed))
				g := randomLatencyTrace(r, 2+r.Intn(4), 3+r.Intn(5), 0.3, 0.2, mc.classes)
				res, err := Lookahead(g, mc.m)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := res.S.Validate(); err != nil {
					t.Fatalf("seed %d: predicted schedule illegal: %v", seed, err)
				}
			}
		})
	}
}

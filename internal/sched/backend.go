package sched

import (
	"context"

	"aisched/internal/graph"
	"aisched/internal/machine"
)

// BackendResult is what a scheduling backend produces for a trace: the
// static per-block instruction order it emitted (block-contiguous, each
// block's segment a topological order of that block — the compiler artifact
// of Definition 2.1), and a schedule that Validate()s describing where the
// backend expects each instruction to run.
//
// For the heuristic backend the schedule is Algorithm Lookahead's predicted
// execution (legal per Definition 2.3). For the exact backend it is the
// simulated hardware-window execution of the optimal static order — the
// true dynamic schedule, whose completion no legal static order can beat.
type BackendResult struct {
	// Order is the emitted static instruction stream: per-block
	// subpermutations concatenated in ascending block order. Feed it to the
	// hw simulator to obtain the dynamic execution.
	Order []graph.NodeID
	// S assigns every node a start cycle and unit; S.Validate() == nil.
	S *Schedule
}

// Backend is the engine-level scheduling interface: graph + machine
// (window size included in machine.Machine.Window) in, a legal schedule and
// its static order out. It is the seam between the scheduling engines and
// the facade — the heuristic pipeline (internal/core) and the exact
// branch-and-bound oracle (internal/opt) both implement it, and the
// planned aischedd service dispatches on it.
//
// Implementations must honor ctx cancellation and must not retain g or m
// past the call.
type Backend interface {
	// Name identifies the backend ("heuristic", "exact") for CLI flags,
	// metrics labels, and experiment tables.
	Name() string
	// ScheduleTrace schedules the acyclic trace graph g on m. Only
	// distance-0 edges constrain a trace.
	ScheduleTrace(ctx context.Context, g *graph.Graph, m *machine.Machine) (*BackendResult, error)
}

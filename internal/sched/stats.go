package sched

import (
	"fmt"
	"strings"

	"aisched/internal/graph"
)

// Utilization returns the fraction of unit-cycles doing work over the
// makespan across all functional units (1.0 = no idle slot anywhere).
func (s *Schedule) Utilization() float64 {
	T := s.Makespan()
	if T == 0 {
		return 0
	}
	busy := 0
	for v := 0; v < s.G.Len(); v++ {
		if s.Start[v] != Unassigned {
			busy += s.G.Node(graph.NodeID(v)).Exec
		}
	}
	return float64(busy) / float64(T*s.M.TotalUnits())
}

// TrailingIdle returns the number of consecutive idle cycles at the end of
// the given unit's timeline before the makespan — the slots anticipatory
// scheduling tries to create (they overlap with the next block at run
// time). A unit whose last instruction finishes at the makespan has zero.
func (s *Schedule) TrailingIdle(unit int) int {
	T := s.Makespan()
	lastFinish := 0
	for v := 0; v < s.G.Len(); v++ {
		if s.Unit[v] == unit {
			if f := s.Finish(graph.NodeID(v)); f > lastFinish {
				lastFinish = f
			}
		}
	}
	return T - lastFinish
}

// IdleProfile summarizes the idle structure of a schedule.
type IdleProfile struct {
	Makespan  int
	IdleSlots int
	// LastIdle is the start time of the latest idle slot, or -1.
	LastIdle int
	// MeanIdlePosition is the average idle start normalized by makespan
	// (→ 1.0 means all idles are late, the anticipatory ideal).
	MeanIdlePosition float64
}

// Profile computes the idle-slot summary across all units.
func (s *Schedule) Profile() IdleProfile {
	p := IdleProfile{Makespan: s.Makespan(), LastIdle: -1}
	idles := s.IdleSlots()
	p.IdleSlots = len(idles)
	if len(idles) == 0 || p.Makespan == 0 {
		return p
	}
	sum := 0
	for _, t := range idles {
		sum += t
		if t > p.LastIdle {
			p.LastIdle = t
		}
	}
	p.MeanIdlePosition = float64(sum) / float64(len(idles)) / float64(p.Makespan)
	return p
}

// GanttCSV renders the schedule as CSV rows (label,unit,start,finish),
// convenient for external plotting.
func (s *Schedule) GanttCSV() string {
	var b strings.Builder
	b.WriteString("label,unit,start,finish\n")
	for _, id := range s.Permutation() {
		fmt.Fprintf(&b, "%s,%d,%d,%d\n", s.G.Node(id).Label, s.Unit[id], s.Start[id], s.Finish(id))
	}
	return b.String()
}

package deps

import (
	"testing"

	"aisched/internal/graph"
	"aisched/internal/isa"
	"aisched/internal/loops"
	"aisched/internal/machine"
)

// fig3Body returns the paper's Figure 3 loop body as parsed assembly.
func fig3Body(t *testing.T) []isa.Instr {
	t.Helper()
	src := `
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.1
`
	blocks, err := isa.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return blocks[0].Instrs
}

func edgeLat(g *graph.Graph, src, dst graph.NodeID, distance int) (int, bool) {
	for _, e := range g.Out(src) {
		if e.Dst == dst && e.Distance == distance {
			return e.Latency, true
		}
	}
	return 0, false
}

func TestBuildLoopFigure3EdgeSet(t *testing.T) {
	g := BuildLoop(fig3Body(t))
	const (
		L4 = graph.NodeID(0)
		ST = graph.NodeID(1)
		C4 = graph.NodeID(2)
		M  = graph.NodeID(3)
		BT = graph.NodeID(4)
	)
	// The paper's labeled dependences.
	checks := []struct {
		src, dst  graph.NodeID
		lat, dst2 int
		name      string
	}{
		{L4, C4, 1, 0, "L4→C4 <1,0> (r6)"},
		{L4, M, 1, 0, "L4→M <1,0> (r6)"},
		{C4, BT, 1, 0, "C4→BT <1,0> (cr1)"},
		{M, ST, 4, 1, "M→ST <4,1> (r0 from previous iteration)"},
		{M, M, 4, 1, "M→M <4,1> (accumulator)"},
	}
	for _, c := range checks {
		lat, ok := edgeLat(g, c.src, c.dst, c.dst2)
		if !ok {
			t.Errorf("missing edge: %s", c.name)
			continue
		}
		if lat != c.lat {
			t.Errorf("%s: latency = %d, want %d", c.name, lat, c.lat)
		}
	}
	// Control dependences into BT.
	for _, src := range []graph.NodeID{L4, ST, C4, M} {
		if _, ok := edgeLat(g, src, BT, 0); !ok {
			t.Errorf("missing control edge %d→BT", src)
		}
	}
	// Carried control from BT.
	for _, dst := range []graph.NodeID{L4, ST, C4, M, BT} {
		if _, ok := edgeLat(g, BT, dst, 1); !ok {
			t.Errorf("missing carried control edge BT→%d", dst)
		}
	}
	// The anti dependence that keeps the store before the multiply.
	if _, ok := edgeLat(g, ST, M, 0); !ok {
		t.Error("missing WAR edge ST→M <0,0> (r0)")
	}
	// x[] and y[] use distinct base registers: no cross memory dependence.
	if _, ok := edgeLat(g, L4, ST, 0); ok {
		t.Error("spurious memory edge L4→ST (distinct bases must not alias)")
	}
}

func TestBuildLoopFigure3SteadyStatesMatchPaper(t *testing.T) {
	// End-to-end: assembly → dependence analysis → steady-state model must
	// reproduce the paper's numbers (schedule 1: 7 cycles/iter; schedule 2:
	// 6), and the §5.2.3 general case must find the 6.
	g := BuildLoop(fig3Body(t))
	m := machine.SingleUnit(4)
	s1, err := loops.Evaluate(g, m, []graph.NodeID{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != 5 || s1.II != 7 {
		t.Fatalf("schedule1: makespan %d II %d, want 5/7", s1.Makespan, s1.II)
	}
	s2, err := loops.Evaluate(g, m, []graph.NodeID{0, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan != 6 || s2.II != 6 {
		t.Fatalf("schedule2: makespan %d II %d, want 6/6", s2.Makespan, s2.II)
	}
	best, err := loops.ScheduleSingleBlockLoop(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if best.II != 6 {
		t.Fatalf("general case II = %d, want 6", best.II)
	}
}

func TestBuildBlockRegisterDeps(t *testing.T) {
	// add r3,r1,r2 ; sub r4,r3,r1 (RAW r3) ; add r3,r4,r4 (WAW with 0, WAR from 1)
	ins := []isa.Instr{
		{Op: isa.ADD, Dst: isa.GPR(3), SrcA: isa.GPR(1), SrcB: isa.GPR(2)},
		{Op: isa.SUB, Dst: isa.GPR(4), SrcA: isa.GPR(3), SrcB: isa.GPR(1)},
		{Op: isa.ADD, Dst: isa.GPR(3), SrcA: isa.GPR(4), SrcB: isa.GPR(4)},
	}
	g := BuildBlock(ins, 0)
	if _, ok := edgeLat(g, 0, 1, 0); !ok {
		t.Error("missing RAW 0→1")
	}
	if _, ok := edgeLat(g, 0, 2, 0); !ok {
		t.Error("missing WAW 0→2")
	}
	if _, ok := edgeLat(g, 1, 2, 0); !ok {
		t.Error("missing RAW/WAR 1→2")
	}
	if lat, _ := edgeLat(g, 0, 1, 0); lat != 0 {
		t.Errorf("ADD producer latency = %d, want 0", lat)
	}
}

func TestBuildBlockLoadLatencyOnRAW(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.LOAD, Dst: isa.GPR(6), Base: isa.GPR(7), Imm: 0},
		{Op: isa.ADD, Dst: isa.GPR(1), SrcA: isa.GPR(6), SrcB: isa.GPR(6)},
	}
	g := BuildBlock(ins, 0)
	lat, ok := edgeLat(g, 0, 1, 0)
	if !ok || lat != 1 {
		t.Fatalf("load RAW latency = %d (ok=%v), want 1", lat, ok)
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	// Same base, different constant offsets, no update: independent.
	ins := []isa.Instr{
		{Op: isa.STORE, SrcA: isa.GPR(1), Base: isa.GPR(5), Imm: 0},
		{Op: isa.LOAD, Dst: isa.GPR(2), Base: isa.GPR(5), Imm: 4},
	}
	g := BuildBlock(ins, 0)
	if _, ok := edgeLat(g, 0, 1, 0); ok {
		t.Error("same base, different offsets must not alias")
	}
	// Same base, same offset: dependent.
	ins[1].Imm = 0
	g = BuildBlock(ins, 0)
	if _, ok := edgeLat(g, 0, 1, 0); !ok {
		t.Error("same base, same offset must alias")
	}
	// Update forms defeat offset reasoning.
	ins2 := []isa.Instr{
		{Op: isa.STOREU, SrcA: isa.GPR(1), Base: isa.GPR(5), Imm: 4},
		{Op: isa.LOAD, Dst: isa.GPR(2), Base: isa.GPR(5), Imm: 8},
	}
	g = BuildBlock(ins2, 0)
	// The LOAD reads the updated base: there is a register RAW 0→1 anyway;
	// verify an edge exists.
	if _, ok := edgeLat(g, 0, 1, 0); !ok {
		t.Error("storeu must order against the following load")
	}
}

func TestBuildTraceCrossBlockEdges(t *testing.T) {
	b0 := []isa.Instr{
		{Op: isa.LOAD, Dst: isa.GPR(6), Base: isa.GPR(7), Imm: 0},
		{Op: isa.CMPI, Dst: isa.CR(0), SrcA: isa.GPR(6), Imm: 0},
		{Op: isa.BT, SrcA: isa.CR(0), Target: "L"},
	}
	b1 := []isa.Instr{
		{Op: isa.ADD, Dst: isa.GPR(1), SrcA: isa.GPR(6), SrcB: isa.GPR(6)},
	}
	g := BuildTrace([][]isa.Instr{b0, b1})
	if g.Len() != 4 {
		t.Fatalf("trace has %d nodes, want 4", g.Len())
	}
	if g.Node(3).Block != 1 {
		t.Fatalf("block assignment wrong: %d", g.Node(3).Block)
	}
	// Cross-block RAW: load r6 (block 0) → add (block 1) with latency 1.
	lat, ok := edgeLat(g, 0, 3, 0)
	if !ok || lat != 1 {
		t.Fatalf("cross-block RAW: lat=%d ok=%v, want 1", lat, ok)
	}
	// Control: block-0 instructions precede the block-0 branch.
	if _, ok := edgeLat(g, 0, 2, 0); !ok {
		t.Error("missing control edge load→bt")
	}
	// No control edge from the branch into the next block (speculation is
	// the simulator's concern).
	if _, ok := edgeLat(g, 2, 3, 0); ok {
		t.Error("unexpected cross-block control edge")
	}
}

func TestBuildLoopCarriedScalarRecurrence(t *testing.T) {
	// s = s + x: carried RAW on s with ADD latency 0, plus self WAW.
	ins := []isa.Instr{
		{Op: isa.ADD, Dst: isa.GPR(8), SrcA: isa.GPR(8), SrcB: isa.GPR(9)},
	}
	g := BuildLoop(ins)
	if _, ok := edgeLat(g, 0, 0, 1); !ok {
		t.Fatal("missing carried self dependence on accumulator")
	}
}

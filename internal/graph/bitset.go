package graph

import "math/bits"

// Bitset is a fixed-capacity bitset used for transitive-closure rows.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// UnionWith ors o into b. Panics if o is longer than b.
func (b Bitset) UnionWith(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// IntersectWith ands o into b.
func (b Bitset) IntersectWith(o Bitset) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// Intersects reports whether b and o share any set bit.
func (b Bitset) Intersects(o Bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// ForEach calls f for every set bit in ascending order.
func (b Bitset) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &= w - 1
		}
	}
}

// Word-parallel window kernels. These serve every consumer that tracks a
// busy/issued window over time or stream positions — the schedule idle-slot
// scans, the Delay_Idle_Slots unit timelines, and the hardware simulator's
// lookahead window — so each package stops keeping its own []bool copy of
// the same bookkeeping.

// NextSet returns the index of the first set bit ≥ from, or -1 when none.
func (b Bitset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from / 64
	if wi >= len(b) {
		return -1
	}
	if w := b[wi] >> (uint(from) % 64); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b); wi++ {
		if b[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(b[wi])
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit ≥ from. Bits beyond the
// bitset's capacity count as clear, so the result may be ≥ 64·len(b);
// callers bound the scan themselves.
func (b Bitset) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from / 64
	if wi >= len(b) {
		return from
	}
	if w := ^b[wi] >> (uint(from) % 64); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b); wi++ {
		if w := ^b[wi]; w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return len(b) * 64
}

// SetRange sets every bit in [lo, hi) one word at a time.
func (b Bitset) SetRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(b)*64 {
		hi = len(b) * 64
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		b[loW] |= loMask & hiMask
		return
	}
	b[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		b[w] = ^uint64(0)
	}
	b[hiW] |= hiMask
}

// CountRange returns the number of set bits in [lo, hi).
func (b Bitset) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(b)*64 {
		hi = len(b) * 64
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		return bits.OnesCount64(b[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(b[loW]&loMask) + bits.OnesCount64(b[hiW]&hiMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(b[w])
	}
	return n
}

// ZeroRange clears every bit in [lo, hi) one word at a time.
func (b Bitset) ZeroRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(b)*64 {
		hi = len(b) * 64
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		b[loW] &^= loMask & hiMask
		return
	}
	b[loW] &^= loMask
	for w := loW + 1; w < hiW; w++ {
		b[w] = 0
	}
	b[hiW] &^= hiMask
}

package obs

import (
	"fmt"
	"strings"
)

// Timeline renders the recorded simulator events as a plain-text pipeline
// diagram: one row per functional unit with each instruction's label
// repeated for its execution cycles ('.' = the unit is idle), plus a stall
// row attributing every issue-phase stall cycle by its one-letter reason
// code (D dep-wait, W window-full, H head-blocked, U unit-busy, R
// rollback-refill) and a head row showing the window head's stream position
// whenever it changes. Instructions squashed by a rollback are overwritten
// by their re-issue. Intended for terminals and tests on small simulations;
// a 1000-cycle trace renders 1000 columns.
func (r *Recorder) Timeline() string {
	events := r.Events()
	// Completion bound: prefer the simulator's reported completion, fall
	// back to the last cycle any event touches.
	end := 0
	maxUnit := 0
	for _, e := range events {
		switch e.Kind {
		case KindPassEnd:
			if e.Pass == PassSimulate && e.N > end {
				end = e.N
			}
		case KindIssue:
			if e.Cycle+e.N > end {
				end = e.Cycle + e.N
			}
			if e.Unit > maxUnit {
				maxUnit = e.Unit
			}
		case KindStall:
			if e.Cycle+1 > end {
				end = e.Cycle + 1
			}
		}
	}
	if end == 0 {
		return "(no simulator events recorded)"
	}

	cellW := 1
	for _, e := range events {
		if e.Kind == KindIssue && len(e.Label) > cellW {
			cellW = len(e.Label)
		}
	}
	pad := func(s string) string {
		if len(s) < cellW {
			return s + strings.Repeat(" ", cellW-len(s))
		}
		return s
	}

	rows := make([][]string, maxUnit+1)
	for u := range rows {
		rows[u] = make([]string, end)
		for t := range rows[u] {
			rows[u][t] = pad(".")
		}
	}
	stall := make([]string, end)
	head := make([]string, end)
	for t := range stall {
		stall[t] = pad(" ")
		head[t] = pad(" ")
	}
	// issuedAt[pos] remembers where an instance was drawn so a rollback's
	// re-issue can erase the squashed placement.
	type placed struct{ unit, cycle, n int }
	issuedAt := map[int]placed{}
	lastHead := -1
	for _, e := range events {
		switch e.Kind {
		case KindIssue:
			if p, ok := issuedAt[e.Pos]; ok {
				for t := p.cycle; t < p.cycle+p.n && t < end; t++ {
					rows[p.unit][t] = pad(".")
				}
			}
			issuedAt[e.Pos] = placed{e.Unit, e.Cycle, e.N}
			for t := e.Cycle; t < e.Cycle+e.N && t < end; t++ {
				rows[e.Unit][t] = pad(e.Label)
			}
		case KindStall:
			if e.Cycle < end {
				stall[e.Cycle] = pad(string(e.Reason.Letter()))
			}
		case KindWindow:
			if e.Cycle < end && e.From != lastHead {
				head[e.Cycle] = pad(fmt.Sprint(e.From))
				lastHead = e.From
			}
		}
	}

	var b strings.Builder
	tick := make([]string, end)
	for t := range tick {
		if t%5 == 0 {
			tick[t] = pad(fmt.Sprint(t))
		} else {
			tick[t] = pad(" ")
		}
	}
	fmt.Fprintf(&b, "cycle  %s\n", strings.Join(tick, " "))
	for u := range rows {
		fmt.Fprintf(&b, "u%-5d %s\n", u, strings.Join(rows[u], " "))
	}
	fmt.Fprintf(&b, "stall  %s\n", strings.Join(stall, " "))
	fmt.Fprintf(&b, "head   %s", strings.Join(head, " "))
	return strings.TrimRight(b.String(), " \n") + "\n"
}

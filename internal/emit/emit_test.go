package emit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aisched/internal/core"
	"aisched/internal/deps"
	"aisched/internal/graph"
	"aisched/internal/isa"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/workload"
)

func fig3Block(t *testing.T) isa.Block {
	t.Helper()
	blocks, err := isa.Parse(`
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.18
`)
	if err != nil {
		t.Fatal(err)
	}
	return blocks[0]
}

func TestLoopEmission(t *testing.T) {
	b := fig3Block(t)
	// Schedule 2's order: L4 ST M C4 BT.
	out, err := Loop(b, []graph.NodeID{0, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "CL.18:" {
		t.Fatalf("label missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "mul") || !strings.Contains(lines[4], "cmpi") {
		t.Fatalf("reordering not applied:\n%s", out)
	}
	// The emitted text must re-parse to the same instruction multiset.
	re, err := isa.Parse(out)
	if err != nil {
		t.Fatalf("emitted assembly does not re-parse: %v\n%s", err, out)
	}
	if len(re) != 1 || len(re[0].Instrs) != 5 {
		t.Fatalf("re-parse shape wrong: %+v", re)
	}
}

func TestLoopEmissionErrors(t *testing.T) {
	b := fig3Block(t)
	if _, err := Loop(b, []graph.NodeID{0, 1, 2}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Loop(b, []graph.NodeID{0, 1, 2, 2, 4}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := Loop(b, []graph.NodeID{0, 1, 2, 9, 4}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestTraceEmissionRoundTrip(t *testing.T) {
	src := `
int a;
int b;
a = 2;
b = a * a;
if (b > 3) { a = b + 1; } else { a = b - 1; }
b = a + a;
`
	comp, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	blocks := comp.Blocks
	var seqs [][]isa.Instr
	for _, b := range blocks {
		seqs = append(seqs, b.Instrs)
	}
	g := deps.BuildTrace(seqs)
	m := machine.SingleUnit(4)
	res, err := core.Lookahead(g, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Trace(blocks, res.BlockOrders)
	if err != nil {
		t.Fatal(err)
	}
	if err := BranchLast(blocks, res.BlockOrders); err != nil {
		t.Fatal(err)
	}
	re, err := isa.Parse(out)
	if err != nil {
		t.Fatalf("emitted trace does not re-parse: %v\n%s", err, out)
	}
	// Same total instruction count.
	total, reTotal := 0, 0
	for _, b := range blocks {
		total += len(b.Instrs)
	}
	for _, b := range re {
		reTotal += len(b.Instrs)
	}
	if total != reTotal {
		t.Fatalf("instruction count changed: %d → %d", total, reTotal)
	}
}

func TestTraceEmissionDetectsCrossBlockLeak(t *testing.T) {
	blocks := []isa.Block{
		{Label: "a", Instrs: []isa.Instr{{Op: isa.LI, Dst: isa.GPR(1), Imm: 1}}},
		{Label: "b", Instrs: []isa.Instr{{Op: isa.LI, Dst: isa.GPR(2), Imm: 2}}},
	}
	// Block 0's order references block 1's node.
	orders := map[int][]graph.NodeID{0: {1}, 1: {0}}
	if _, err := Trace(blocks, orders); err == nil {
		t.Fatal("cross-block node accepted")
	}
}

func TestPropertyEmittedTraceReparses(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		var seqs [][]isa.Instr
		for _, b := range comp.Blocks {
			seqs = append(seqs, b.Instrs)
		}
		g := deps.BuildTrace(seqs)
		res, err := core.Lookahead(g, machine.SingleUnit(4))
		if err != nil {
			return false
		}
		out, err := Trace(comp.Blocks, res.BlockOrders)
		if err != nil {
			return false
		}
		if err := BranchLast(comp.Blocks, res.BlockOrders); err != nil {
			return false
		}
		_, err = isa.Parse(out)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package minic

import (
	"testing"

	"aisched/internal/deps"
	"aisched/internal/hw"
	"aisched/internal/isa"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// fig3Source is the paper's Figure 3 C fragment (§2.4).
const fig3Source = `
int x[100];
int y[100];
int i;
y[0] = x[0];
for (i = 1; x[i] != 0; i = i + 1) {
	y[i] = y[i-1] * x[i];
}
y[i] = 0;
`

func TestLexBasics(t *testing.T) {
	toks, err := lex("int a = 10; // comment\na = a + 1; /* block */")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "int" || toks[0].kind != tokKeyword {
		t.Fatalf("first token: %+v", toks[0])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	_ = kinds
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("int a @ b;"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Fatal("unterminated comment accepted")
	}
}

func TestParseFigure3Source(t *testing.T) {
	prog, err := Parse(fig3Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 6 {
		t.Fatalf("got %d top-level statements, want 6", len(prog.Stmts))
	}
	if _, ok := prog.Stmts[4].(ForStmt); !ok {
		t.Fatalf("statement 4 is %T, want ForStmt", prog.Stmts[4])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int;",
		"x = ;",
		"if (x) { y = 1;",
		"for (i = 0; i < 10) x = 1;",
		"x = (1 + 2;",
		"int a[;",
		"x[1 = 2;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed, want error", src)
		}
	}
}

func TestCompileFigure3ProducesSingleBlockLoop(t *testing.T) {
	c, err := Compile(fig3Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(c.Loops))
	}
	body := c.Body(c.Loops[0])
	if body == nil {
		t.Fatalf("loop is not single-block: %+v", c.Loops[0])
	}
	// The rotated body ends with the compare + backward conditional branch.
	last := body[len(body)-1]
	if last.Op != isa.BT {
		t.Fatalf("body does not end in bt: %s", last)
	}
	// The body must contain exactly one multiply and one store.
	muls, stores, loads := 0, 0, 0
	for _, in := range body {
		switch {
		case in.Op == isa.MUL:
			muls++
		case in.WritesMem():
			stores++
		case in.ReadsMem():
			loads++
		}
	}
	if muls != 1 || stores != 1 || loads < 2 {
		t.Fatalf("body shape: muls=%d stores=%d loads=%d\n%s", muls, stores, loads, isa.Format(body))
	}
	for _, in := range body {
		if err := in.Validate(); err != nil {
			t.Fatalf("invalid generated instruction %s: %v", in, err)
		}
	}
}

func TestCompiledFigure3LoopSchedules(t *testing.T) {
	// End-to-end: C source → codegen → dependence graph → §5.2.3 loop
	// scheduling. The anticipatory schedule must beat or match program order
	// in steady state (the multiply latency must be hidden).
	c, err := Compile(fig3Source)
	if err != nil {
		t.Fatal(err)
	}
	body := c.Body(c.Loops[0])
	g := deps.BuildLoop(body)
	m := machine.SingleUnit(4)
	prog, err := loops.Evaluate(g, m, sched.SourceOrder(g))
	if err != nil {
		t.Fatal(err)
	}
	best, err := loops.ScheduleSingleBlockLoop(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if best.II > prog.II {
		t.Fatalf("anticipatory II %d worse than program order %d", best.II, prog.II)
	}
	// Both must beat naive upper bound and respect the recurrence: the
	// multiply feeds next iteration's multiply through y[i-1] via memory or
	// register, so II ≥ 5 on this machine.
	if best.II < 5 {
		t.Fatalf("II %d below the multiply recurrence bound", best.II)
	}
}

func TestCompileIfElse(t *testing.T) {
	src := `
int a;
int b;
a = 1;
if (a > 0) { b = 2; } else { b = 3; }
b = b + 1;
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) < 4 {
		t.Fatalf("if/else produced %d blocks, want ≥ 4", len(c.Blocks))
	}
	// Exactly one conditional branch with a target, one unconditional join.
	bf, b := 0, 0
	for _, blk := range c.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case isa.BF:
				bf++
			case isa.B:
				b++
			}
		}
	}
	if bf != 1 || b != 1 {
		t.Fatalf("branch shape: bf=%d b=%d", bf, b)
	}
}

func TestCompileWhileLoopRotation(t *testing.T) {
	src := `
int i;
int s;
i = 0;
s = 0;
while (i < 10) { s = s + i; i = i + 1; }
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.Loops))
	}
	if c.Body(c.Loops[0]) == nil {
		t.Fatal("straight-line while body should be a single block")
	}
}

func TestCompileNestedControlFlowLoopIsMultiBlock(t *testing.T) {
	src := `
int i;
int s;
for (i = 0; i < 10; i = i + 1) {
	if (s < 5) { s = s + 2; }
}
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.Loops))
	}
	if c.Body(c.Loops[0]) != nil {
		t.Fatal("loop with an if must be multi-block")
	}
	if len(c.Loops[0].BodyBlocks) < 2 {
		t.Fatalf("multi-block loop has %d blocks", len(c.Loops[0].BodyBlocks))
	}
}

func TestCompileSemanticErrors(t *testing.T) {
	bad := []string{
		"x = 1;",                   // undeclared
		"int a; int a;",            // redeclared
		"int a[4]; a = 1;",         // array used as scalar
		"int a; a[0] = 1;",         // scalar used as array
		"int a; int b; a = b @ 1;", // lex error
		"int a; a = !a;",           // ! outside condition
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("%q compiled, want error", src)
		}
	}
}

func TestCompiledTraceExecutes(t *testing.T) {
	// Straight-line program with an if: the layout trace must build a valid
	// dependence graph and execute in the simulator.
	src := `
int a;
int b;
int c;
a = 3;
b = a * a;
if (b > 4) { c = b + 1; } else { c = b - 1; }
c = c * 2;
`
	comp, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := deps.BuildTrace(comp.TraceBlocks())
	if !g.IsAcyclic() {
		t.Fatal("trace graph cyclic")
	}
	m := machine.SingleUnit(4)
	order := sched.SourceOrder(g)
	res, err := hw.SimulateTrace(g, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Fatal("empty simulation")
	}
}

func TestTempRegisterExhaustion(t *testing.T) {
	// A deeply nested expression overflows the 16 temporaries.
	src := "int a; a = ((((((((((((((((1+2)+3)+4)+5)+6)+7)+8)+9)+1)+2)+3)+4)+5)+6)+7)+8);"
	if _, err := Compile(src); err == nil {
		t.Skip("expression folded into fewer temps than expected")
	}
}

package aisched

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"aisched/internal/metrics"
	"aisched/internal/workload"
)

// snapshotDelta captures before/after views of the process-global registry so
// tests can assert on what *this* test contributed, regardless of what other
// tests in the binary already recorded.
type snapshotDelta struct {
	before metrics.Snapshot
}

func beginDelta() snapshotDelta { return snapshotDelta{before: metrics.Default.Snapshot()} }

func (d snapshotDelta) counter(name string) uint64 {
	return metrics.Default.Snapshot().Counters[name] - d.before.Counters[name]
}

func (d snapshotDelta) histCount(name string) uint64 {
	return metrics.Default.Snapshot().Histograms[name].Count - d.before.Histograms[name].Count
}

// batchItems builds n batch items over k distinct graphs, so a run exercises
// cache misses, hits, and (in the parallel pool) coalescing.
func batchItems(t *testing.T, n, k int) []BatchItem {
	t.Helper()
	m := SingleUnit(4)
	graphs := make([]*Graph, k)
	for i := range graphs {
		r := rand.New(rand.NewSource(int64(i)))
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{G: graphs[i%k], M: m, Kind: BatchTrace}
	}
	return items
}

// TestMetricsConcurrentBatch hammers the process-global registry from a
// parallel 64-item batch — under -race this is the data-race check for the
// striped counters, gauges, and histograms; in any mode it checks that the
// always-on instruments actually move when the façade does work.
func TestMetricsConcurrentBatch(t *testing.T) {
	d := beginDelta()
	sc := NewScheduler(SchedulerOptions{})
	items := batchItems(t, 64, 8)
	for _, r := range sc.ScheduleBatch(items) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	if got := d.counter("aisched_batch_items_total"); got != 64 {
		t.Errorf("batch items counter moved by %d, want 64", got)
	}
	if got := d.histCount("aisched_request_trace_ns"); got != 64 {
		t.Errorf("request latency histogram recorded %d observations, want 64", got)
	}
	if got := d.histCount("aisched_batch_queue_wait_ns"); got != 64 {
		t.Errorf("queue-wait histogram recorded %d observations, want 64", got)
	}
	cc := sc.CacheCounters()
	if cc.Hits+cc.Coalesced == 0 {
		t.Error("64 items over 8 graphs produced no cache hits or coalesces")
	}
	if d.counter("aisched_memo_hits_total")+d.counter("aisched_memo_coalesced_total") == 0 {
		t.Error("memo metrics counters did not move with the cache")
	}
	if d.counter("aisched_memo_misses_total") == 0 {
		t.Error("memo miss counter did not move")
	}
	// The worker-occupancy gauge must return to zero once the batch drains.
	if got := metrics.Default.Snapshot().Gauges["aisched_batch_workers_busy"]; got != 0 {
		t.Errorf("workers-busy gauge = %d after batch completed, want 0", got)
	}
}

// TestMetricsDegradation forces budget exhaustion and checks the exhaust /
// degrade instruments and latency quantiles appear in the snapshot.
func TestMetricsDegradation(t *testing.T) {
	d := beginDelta()
	sc := NewScheduler(SchedulerOptions{Budget: Budget{MaxRankPasses: 1}})
	items := batchItems(t, 8, 8)
	for _, r := range sc.ScheduleBatch(items) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Degraded() == "" {
			t.Fatal("MaxRankPasses=1 should degrade every trace request")
		}
	}
	if got := d.counter("aisched_budget_exhausted_total"); got < 8 {
		t.Errorf("budget-exhausted counter moved by %d, want >= 8", got)
	}
	if got := d.counter("aisched_degraded_total"); got != 8 {
		t.Errorf("degraded counter moved by %d, want 8", got)
	}
	s := MetricsSnapshot()
	h, ok := s.Metrics.Histograms["aisched_request_trace_ns"]
	if !ok || h.Count == 0 {
		t.Fatal("request latency histogram missing from snapshot")
	}
	if h.P50 <= 0 || h.P99 < h.P50 || float64(h.Max) < h.P99 {
		t.Errorf("latency quantiles not ordered: p50=%g p99=%g max=%d", h.P50, h.P99, h.Max)
	}
}

// promLine matches one Prometheus text-format sample line:
// name{labels} value  or  name value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+(Inf)?$`)

// TestServeDebugAcceptance is the PR's end-to-end gate: run a batch (with
// degradation), then check every debug endpoint — /metrics parses as
// Prometheus text and carries the memo, budget, and latency families;
// /statsz is the JSON snapshot; /healthz answers; /debug/pprof/profile
// returns a CPU profile.
func TestServeDebugAcceptance(t *testing.T) {
	sc := NewScheduler(SchedulerOptions{Budget: Budget{MaxRankPasses: 1}})
	for _, r := range sc.ScheduleBatch(batchItems(t, 16, 4)) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// A second, unbudgeted scheduler so hits/misses both exist.
	sc2 := NewScheduler(SchedulerOptions{})
	for _, r := range sc2.ScheduleBatch(batchItems(t, 16, 4)) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /healthz
	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q, want ok", body)
	}

	// /metrics: every non-comment line must parse; required families with
	// nonzero values must be present.
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("/metrics line does not parse as Prometheus text: %q", line)
		}
		var name string
		var val float64
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &val)
		} else {
			fmt.Sscanf(line, "%s %g", &name, &val)
		}
		samples[name] += val
	}
	for _, want := range []string{
		"aisched_memo_hits_total",
		"aisched_memo_misses_total",
		"aisched_budget_exhausted_total",
		"aisched_degraded_total",
		"aisched_request_trace_ns_count",
		"aisched_request_trace_ns_sum",
		"aisched_request_trace_ns_bucket",
		"aisched_batch_queue_wait_ns_count",
	} {
		if samples[want] == 0 {
			t.Errorf("/metrics lacks a nonzero %s after the batch run", want)
		}
	}

	// /statsz: valid JSON snapshot with build info and the same counters.
	body, ctype = get("/statsz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/statsz content type = %q", ctype)
	}
	var snap struct {
		Build   BuildInfo `json:"build"`
		Metrics struct {
			Counters   map[string]uint64 `json:"counters"`
			Histograms map[string]struct {
				Count uint64  `json:"count"`
				P50   float64 `json:"p50"`
				P99   float64 `json:"p99"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statsz is not valid JSON: %v", err)
	}
	if snap.Build.GoVersion == "" {
		t.Error("/statsz lacks build info")
	}
	if snap.Metrics.Counters["aisched_memo_hits_total"] == 0 {
		t.Error("/statsz lacks memo hit counter")
	}
	if h := snap.Metrics.Histograms["aisched_request_trace_ns"]; h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Errorf("/statsz latency quantiles missing or unordered: %+v", h)
	}

	// /debug/pprof/profile: a real (short) CPU profile.
	if testing.Short() {
		return
	}
	resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prof, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Errorf("/debug/pprof/profile: status %d, %d bytes", resp.StatusCode, len(prof))
	}
}

// TestRecorderCapRealStream checks the capped recorder's exactness guarantee
// on a genuine scheduler+simulator event stream, not just synthetic events:
// a 64-event ring must report the same Stats as an unbounded recorder over a
// full traced loop run.
func TestRecorderCapRealStream(t *testing.T) {
	run := func(rec *TraceRecorder) Stats {
		t.Helper()
		g, err := workload.Loop(rand.New(rand.NewSource(7)), workload.DefaultLoop())
		if err != nil {
			t.Fatal(err)
		}
		m := SingleUnit(4)
		o := WithTracer(rec)
		best, err := o.ScheduleLoop(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := o.SimulateLoop(g, m, best.Order, 8, SimOptions{Speculate: true}); err != nil {
			t.Fatal(err)
		}
		return rec.Stats()
	}
	full := run(NewRecorder())
	capped := NewRecorderCap(64)
	got := run(capped)
	if capped.Dropped() == 0 {
		t.Fatal("cap=64 recorder dropped nothing; stream too small to test eviction")
	}
	fullJSON, _ := full.JSON()
	gotJSON, _ := got.JSON()
	if string(fullJSON) != string(gotJSON) {
		t.Errorf("capped recorder stats diverge from unbounded:\n got: %s\nwant: %s", gotJSON, fullJSON)
	}
	if capped.Len() > 64 {
		t.Errorf("capped recorder retained %d events, cap 64", capped.Len())
	}
}

// TestMetricsPrometheusWriter covers the package-level writer used outside
// HTTP.
func TestMetricsPrometheusWriter(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetricsPrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE aisched_memo_hits_total counter") {
		t.Error("writer output lacks memo counter TYPE line")
	}
	if !strings.Contains(out, "# TYPE aisched_request_trace_ns histogram") {
		t.Error("writer output lacks request histogram TYPE line")
	}
}

// TestVersionInfo checks the build-identity surface is populated and stable.
func TestVersionInfo(t *testing.T) {
	bi := VersionInfo()
	if bi.GoVersion == "" || bi.Module == "" {
		t.Errorf("VersionInfo incomplete: %+v", bi)
	}
	s := bi.String()
	if !strings.Contains(s, bi.GoVersion) {
		t.Errorf("String() = %q lacks go version", s)
	}
	// Stamp survives the snapshot JSON round trip.
	data, err := MetricsSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["build"]; !ok {
		t.Error("MetricsSnapshot JSON lacks build section")
	}
}

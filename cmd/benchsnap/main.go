// Command benchsnap records a benchmark snapshot for the facade-level
// workloads the PR-to-PR regression budget is measured against — the three
// single-request paths (ScheduleTrace, SimulateTrace, ScheduleLoop, all with
// tracing disabled) plus the batch-pipeline throughput workloads (BatchDup0,
// BatchDup90, SerialDup90: a 64-item trace batch at 0% and ~90% duplicate
// rates through ScheduleBatch, and the same ~90%-duplicate items through the
// serial uncached entry point) plus the streaming workloads (StreamPush: one
// steady-state k=1 push on an unending rebased trace; StreamFirstResult: a
// cold k=0 scheduler plus the one push that finalizes the first block — the
// time-to-first-schedule the streaming API exists for) — and writes it as
// JSON, or compares a fresh run against a committed snapshot and fails
// beyond the tolerance:
//
//	go run ./cmd/benchsnap -o BENCH_PR7.json
//	go run ./cmd/benchsnap -compare BENCH_PR7.json
//
// -cpuprofile and -memprofile write pprof profiles covering the benchmark
// measurements, for digging into a regression the gate reports:
//
//	go run ./cmd/benchsnap -cpuprofile cpu.out -memprofile mem.out
//
// Comparison prints a per-benchmark delta table and exits non-zero if any
// allocs/op or ns/op delta exceeds ±tol% (default 2%), enforcing the ROADMAP
// regression budget mechanically. Each benchmark is measured runs times
// (default 3) and the best run is kept. allocs/op is deterministic, so its
// budget is enforced exactly as configured; wall-clock is not, so the
// effective ns/op tolerance is max(tol, the spread across this invocation's
// own runs, -noisefloor). The default noise floor (25%) keeps the gate
// reliable on shared/virtualized hardware whose minute-scale load drift
// dwarfs the budget; set -noisefloor 0 on a quiet dedicated machine to
// enforce the strict ±tol on wall-clock too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"aisched"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/workload"
)

// batchN is the number of scheduling requests per batch benchmark op; the
// printed amortized ns/block figures divide ns/op by it.
const batchN = 64

type entry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type snapshot struct {
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_PR7.json", "output file (ignored with -compare)")
	compare := flag.String("compare", "", "compare against this snapshot instead of writing one")
	tol := flag.Float64("tol", 2.0, "regression budget in percent for -compare")
	noisefloor := flag.Float64("noisefloor", 25.0, "minimum ns/op tolerance in percent (wall-clock noise on shared hardware)")
	runs := flag.Int("runs", 3, "measurements per benchmark (best run kept)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-measurement deadline; a stalled benchmark is reported by name instead of hanging the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering every benchmark measurement to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after a final GC) to this file")
	flag.Parse()

	// flushProfiles stops the CPU profile and writes the allocation profile.
	// It must run on every exit path, including the os.Exit in the -compare
	// branch, so it is invoked explicitly rather than deferred.
	flushProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		flushProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		stopCPU := flushProfiles
		path := *memprofile
		flushProfiles = func() {
			stopCPU()
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}
	}
	defer flushProfiles()

	// The same workloads as BenchmarkScheduleTrace / BenchmarkSimulateTrace /
	// BenchmarkScheduleLoop in bench_test.go: a seed-11 random trace and the
	// paper's Figure 3 loop, on the single-unit W=4 machine.
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		fatal(err)
	}
	m := machine.SingleUnit(4)
	res, err := aisched.ScheduleTrace(g, m)
	if err != nil {
		fatal(err)
	}
	order := res.StaticOrder()
	f3 := paperex.NewFig3()

	// Batch throughput workloads: batchN trace requests where every duplicate
	// is an independently rebuilt copy (fresh labels, shuffled edge insertion
	// order), so the schedule cache must match by content fingerprint.
	// BatchDup0 is all-distinct (worst case for the cache); BatchDup90 keeps
	// ~10% distinct graphs; SerialDup90 pushes the same ~90%-duplicate items
	// through the uncached package-level path, so SerialDup90/BatchDup90 is
	// the amortized speedup the throughput layer buys on duplicate-heavy
	// streams. A fresh Scheduler per op keeps every measurement cold-cache.
	batch0 := batchItems(batchN, batchN)
	batch90 := batchItems(batchN, 7)

	// Streaming workloads (mirroring BenchmarkStreamPush and
	// BenchmarkStreamFirstResult in bench_test.go): the same seed-11 trace as
	// the single-request paths, split into StreamBlocks. StreamPush measures
	// one steady-state k=1 push on an unending stream (the trace repeated
	// with dependence IDs rebased to each cycle's fresh stream IDs);
	// StreamFirstResult measures a cold k=0 scheduler plus the single push
	// after which the first block's schedule is final.
	sblocks, _, err := aisched.TraceStreamBlocks(g)
	if err != nil {
		fatal(err)
	}
	const streamCycles = 64
	var streamLong []aisched.StreamBlock
	for c := 0; c < streamCycles; c++ {
		off := graph.NodeID(c * g.Len())
		for _, b := range sblocks {
			nb := aisched.StreamBlock{Nodes: b.Nodes, Deps: make([]aisched.StreamDep, len(b.Deps))}
			for i, d := range b.Deps {
				nb.Deps[i] = aisched.StreamDep{Src: d.Src + off, Dst: d.Dst + off, Latency: d.Latency}
			}
			streamLong = append(streamLong, nb)
		}
	}
	streamWarm := 2 * len(sblocks)
	runBatch := func(b *testing.B, items []aisched.BatchItem) {
		for i := 0; i < b.N; i++ {
			sc := aisched.NewScheduler(aisched.SchedulerOptions{})
			for _, r := range sc.ScheduleBatch(items) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ScheduleTrace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.ScheduleTrace(g, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SimulateTrace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.SimulateTrace(g, m, order); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ScheduleLoop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.ScheduleLoop(f3.G, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BatchDup0", func(b *testing.B) { runBatch(b, batch0) }},
		{"BatchDup90", func(b *testing.B) { runBatch(b, batch90) }},
		{"SerialDup90", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, it := range batch90 {
					if _, err := aisched.ScheduleTrace(it.G, it.M); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"StreamPush", func(b *testing.B) {
			newWarm := func() *aisched.StreamScheduler {
				ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{Lookahead: 1})
				for _, blk := range streamLong[:streamWarm] {
					if _, err := ss.Push(blk); err != nil {
						b.Fatal(err)
					}
				}
				return ss
			}
			ss := newWarm()
			i := streamWarm
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if i == len(streamLong) {
					b.StopTimer()
					ss = newWarm()
					i = streamWarm
					b.StartTimer()
				}
				if _, err := ss.Push(streamLong[i]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		}},
		{"StreamFirstResult", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{})
				res, err := ss.Push(sblocks[0])
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 1 {
					b.Fatalf("first push finalized %d blocks, want 1", len(res))
				}
			}
		}},
	}

	snap := snapshot{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]entry{},
	}
	if *runs < 1 {
		*runs = 1
	}
	// noise[name] = spread of this invocation's ns/op measurements in
	// percent of the fastest run: the measurable noise floor of this machine
	// right now.
	noise := map[string]float64{}
	for _, bench := range benches {
		best, worst := entry{}, int64(0)
		for i := 0; i < *runs; i++ {
			r, ok := benchmarkWithDeadline(bench.name, bench.fn, *timeout)
			if !ok {
				// A deadlocked benchmark (e.g. a scheduling hang) must fail
				// the gate with a diagnosis, not wedge the whole CI run.
				fatal(fmt.Errorf("benchmark %s stalled: no result within %v (run %d/%d)",
					bench.name, *timeout, i+1, *runs))
			}
			e := entry{
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if i == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
			if e.NsPerOp > worst {
				worst = e.NsPerOp
			}
		}
		snap.Benchmarks[bench.name] = best
		noise[bench.name] = 100 * float64(worst-best.NsPerOp) / float64(best.NsPerOp)
		fmt.Printf("%-14s %10d ns/op %8d B/op %6d allocs/op\n",
			bench.name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
	}
	if s, bt := snap.Benchmarks["SerialDup90"], snap.Benchmarks["BatchDup90"]; bt.NsPerOp > 0 {
		fmt.Printf("amortized at ~90%% dup: batch %d ns/block vs serial %d ns/block (%.1fx)\n",
			bt.NsPerOp/batchN, s.NsPerOp/batchN, float64(s.NsPerOp)/float64(bt.NsPerOp))
	}
	if fr, st := snap.Benchmarks["StreamFirstResult"], snap.Benchmarks["ScheduleTrace"]; fr.NsPerOp > 0 {
		fmt.Printf("time-to-first-schedule: stream %d ns vs batch %d ns (%.1fx)\n",
			fr.NsPerOp, st.NsPerOp, float64(st.NsPerOp)/float64(fr.NsPerOp))
	}

	if *compare != "" {
		for name := range noise {
			if noise[name] < *noisefloor {
				noise[name] = *noisefloor
			}
		}
		code := compareSnapshots(*compare, snap, noise, *tol)
		flushProfiles()
		os.Exit(code)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchmarkWithDeadline runs one testing.Benchmark measurement on its own
// goroutine and gives up after d: ok is false when the benchmark never
// finished — the goroutine is left blocked (it cannot be killed) and the
// caller is expected to report the stall and exit. testing.Benchmark has no
// internal deadline, so without this a single deadlocked scheduling path
// would hang the whole -compare gate instead of failing it.
func benchmarkWithDeadline(name string, fn func(b *testing.B), d time.Duration) (testing.BenchmarkResult, bool) {
	done := make(chan testing.BenchmarkResult, 1)
	go func() {
		done <- testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-done:
		return r, true
	case <-timer.C:
		return testing.BenchmarkResult{}, false
	}
}

// compareSnapshots prints the per-benchmark deltas of cur against the
// snapshot stored at path and returns the process exit code: 0 when every
// allocs/op delta is within ±tol percent and every ns/op delta is within
// ±max(tol, observed noise) percent, 1 otherwise (including benchmarks
// missing on either side).
func compareSnapshots(path string, cur snapshot, noise map[string]float64, tol float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var old snapshot
	if err := json.Unmarshal(data, &old); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("\ncomparing against %s (budget ±%.1f%%; ns/op tolerance widens to this run's noise floor)\n", path, tol)
	// Walk the sorted union of both snapshots' benchmark names so every
	// out-of-tolerance (or missing) benchmark is reported before the nonzero
	// exit, not just the first.
	names := map[string]bool{}
	for name := range old.Benchmarks {
		names[name] = true
	}
	for name := range cur.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	fail := false
	for _, bench := range sorted {
		oe, okOld := old.Benchmarks[bench]
		ce, okCur := cur.Benchmarks[bench]
		if !okOld || !okCur {
			fmt.Printf("%-14s MISSING (old %v, current %v)\n", bench, okOld, okCur)
			fail = true
			continue
		}
		nsDelta := 100 * (float64(ce.NsPerOp) - float64(oe.NsPerOp)) / float64(oe.NsPerOp)
		allocDelta := 100 * (float64(ce.AllocsPerOp) - float64(oe.AllocsPerOp)) / float64(oe.AllocsPerOp)
		nsTol := tol
		if n := noise[bench]; n > nsTol {
			nsTol = n
		}
		verdict := "ok"
		if nsDelta > nsTol || nsDelta < -nsTol {
			verdict = "FAIL(ns)"
			fail = true
		}
		if allocDelta > tol || allocDelta < -tol {
			verdict = "FAIL(allocs)"
			fail = true
		}
		fmt.Printf("%-14s ns/op %10d -> %10d (%+6.2f%%, tol ±%.1f%%)  allocs/op %6d -> %6d (%+6.2f%%)  %s\n",
			bench, oe.NsPerOp, ce.NsPerOp, nsDelta, nsTol,
			oe.AllocsPerOp, ce.AllocsPerOp, allocDelta, verdict)
	}
	if fail {
		fmt.Println("benchsnap: outside regression budget (refresh the snapshot with -o if intentional)")
		return 1
	}
	fmt.Println("benchsnap: within regression budget")
	return 0
}

// batchItems builds n trace-scheduling requests drawn from distinct base
// graphs; every duplicate is rebuilt node-for-node with fresh labels and a
// shuffled edge insertion order, so duplicate detection must come from the
// content fingerprint, never pointer identity.
func batchItems(n, distinct int) []aisched.BatchItem {
	r := rand.New(rand.NewSource(77))
	m := machine.SingleUnit(4)
	bases := make([]*graph.Graph, distinct)
	for i := range bases {
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			fatal(err)
		}
		bases[i] = g
	}
	items := make([]aisched.BatchItem, n)
	for i := range items {
		items[i] = aisched.BatchItem{G: rebuild(bases[i%distinct], r), M: m, Kind: aisched.BatchTrace}
	}
	return items
}

// rebuild reconstructs g with fresh labels and shuffled edge order — the same
// scheduling instance arriving down a different front-end path.
func rebuild(g *graph.Graph, r *rand.Rand) *graph.Graph {
	h := graph.New(g.Len())
	for v := 0; v < g.Len(); v++ {
		nd := g.Node(graph.NodeID(v))
		h.AddNode(fmt.Sprintf("b%d", v), nd.Exec, nd.Class, nd.Block)
	}
	var es []graph.Edge
	for v := 0; v < g.Len(); v++ {
		es = append(es, g.Out(graph.NodeID(v))...)
	}
	for _, i := range r.Perm(len(es)) {
		h.MustEdge(es[i].Src, es[i].Dst, es[i].Latency, es[i].Distance)
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}

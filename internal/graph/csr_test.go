package graph

import (
	"math/rand"
	"testing"

	"aisched/internal/testutil"
)

// randomGraph builds a random DAG-ish graph (edges src < dst stay acyclic,
// plus some loop-carried edges that CSR must drop).
func randomGraph(r *rand.Rand, n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddNode("n", 1+r.Intn(3), r.Intn(2), r.Intn(4))
	}
	for v := 0; v < n; v++ {
		for u := v + 1; u < n; u++ {
			if r.Float64() < 0.25 {
				g.MustEdge(NodeID(v), NodeID(u), r.Intn(4), 0)
			}
		}
		if v > 0 && r.Float64() < 0.15 {
			g.MustEdge(NodeID(v), NodeID(r.Intn(v)), r.Intn(3), 1+r.Intn(2))
		}
	}
	return g
}

// viewEqualsGraph checks that an AdjView matches the distance-0 structure of
// g restricted to ids (identity for the whole graph), including edge order.
func viewEqualsGraph(t *testing.T, v AdjView, g *Graph, ids []NodeID) {
	t.Helper()
	inSet := make(map[NodeID]NodeID, len(ids))
	for si, oi := range ids {
		inSet[oi] = NodeID(si)
	}
	if v.N != len(ids) {
		t.Fatalf("view has %d nodes, want %d", v.N, len(ids))
	}
	for si, oi := range ids {
		nd := g.Node(oi)
		if int(v.Exec[si]) != nd.Exec || int(v.Class[si]) != nd.Class ||
			int(v.Block[si]) != nd.Block || v.Labels[si] != nd.Label {
			t.Fatalf("node %d attributes differ", si)
		}
		var want []Edge
		for _, e := range g.Out(oi) {
			if e.Distance == 0 {
				if _, ok := inSet[e.Dst]; ok {
					want = append(want, e)
				}
			}
		}
		got := int(v.Off[si+1] - v.Off[si])
		if got != len(want) {
			t.Fatalf("node %d has %d view edges, want %d", si, got, len(want))
		}
		for k, e := range want {
			ei := int(v.Off[si]) + k
			if v.Dst[ei] != inSet[e.Dst] || int(v.Lat[ei]) != e.Latency {
				t.Fatalf("node %d edge %d = (%d,%d), want (%d,%d)",
					si, k, v.Dst[ei], v.Lat[ei], inSet[e.Dst], e.Latency)
			}
		}
	}
}

func TestCSRMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 1+r.Intn(40))
		c := NewCSR(g)
		ids := make([]NodeID, g.Len())
		for i := range ids {
			ids[i] = NodeID(i)
		}
		viewEqualsGraph(t, c.View(), g, ids)
	}
}

// TestSubMatchesInduced is the representation-level differential test: a Sub
// view over a random subset must agree exactly with Graph.Induced — same
// node order, attributes, edge filtering, and per-node edge order.
func TestSubMatchesInduced(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var sub Sub
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(r, 1+r.Intn(40))
		c := NewCSR(g)
		keep := map[NodeID]bool{}
		var ids []NodeID
		for v := 0; v < g.Len(); v++ {
			if r.Float64() < 0.6 {
				keep[NodeID(v)] = true
				ids = append(ids, NodeID(v))
			}
		}
		h, hIDs := g.Induced(keep)
		sub.Init(c, ids)
		if len(hIDs) != sub.Len() {
			t.Fatalf("trial %d: Induced has %d nodes, Sub has %d", trial, len(hIDs), sub.Len())
		}
		for i := range hIDs {
			if hIDs[i] != sub.IDs()[i] {
				t.Fatalf("trial %d: id order differs at %d", trial, i)
			}
		}
		viewEqualsGraph(t, sub.View(), g, ids)
		// Cross-check against the rebuilt *Graph's own adjacency.
		v := sub.View()
		for si := 0; si < h.Len(); si++ {
			out := h.Out(NodeID(si))
			if int(v.Off[si+1]-v.Off[si]) != len(out) {
				t.Fatalf("trial %d: node %d edge count differs from Induced", trial, si)
			}
			for k, e := range out {
				ei := int(v.Off[si]) + k
				if v.Dst[ei] != e.Dst || int(v.Lat[ei]) != e.Latency {
					t.Fatalf("trial %d: node %d edge %d differs from Induced", trial, si, k)
				}
			}
		}
		// ToSub is the inverse of IDs, and None off-view.
		for si, oi := range sub.IDs() {
			if sub.ToSub(oi) != NodeID(si) {
				t.Fatalf("trial %d: ToSub(%d) != %d", trial, oi, si)
			}
		}
		for v := 0; v < g.Len(); v++ {
			if !keep[NodeID(v)] && sub.ToSub(NodeID(v)) != None {
				t.Fatalf("trial %d: ToSub of excluded node %d != None", trial, v)
			}
		}
		ids = ids[:0]
	}
}

// TestSubReuseAcrossInits pins the zero-allocation property: once grown, a
// Sub re-Init over same-size subsets allocates nothing.
func TestSubReuseAcrossInits(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 60)
	c := NewCSR(g)
	ids := make([]NodeID, 0, g.Len())
	for v := 0; v < g.Len(); v += 2 {
		ids = append(ids, NodeID(v))
	}
	var sub Sub
	sub.Init(c, ids) // warm up capacity
	allocs := testing.AllocsPerRun(100, func() { sub.Init(c, ids) })
	if allocs != 0 {
		t.Fatalf("Sub.Init allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}

//go:build race

package aisched

// raceEnabled reports that this binary was built with -race; the allocation
// budget tests skip themselves, because the race runtime's shadow bookkeeping
// adds allocations the budgets don't account for.
const raceEnabled = true

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
)

// dupBlockTrace builds a trace whose blocks are instantiated from a small
// pool of structural templates — the repetitive-workload shape the step
// cache exists for. pCross adds occasional cross-block edges (they change
// merge inputs and so legitimately reduce hits, but must never change
// results).
func dupBlockTrace(r *rand.Rand, nblocks, nodesPer, classes, maxLat, nTemplates int, pCross float64) *graph.Graph {
	type tmplEdge struct{ i, j, lat int }
	type tmpl struct {
		exec, class []int
		edges       []tmplEdge
	}
	tmpls := make([]tmpl, nTemplates)
	for t := range tmpls {
		tm := tmpl{exec: make([]int, nodesPer), class: make([]int, nodesPer)}
		for i := 0; i < nodesPer; i++ {
			tm.exec[i] = 1 + r.Intn(2)
			tm.class[i] = r.Intn(classes)
		}
		for i := 0; i < nodesPer; i++ {
			for j := i + 1; j < nodesPer; j++ {
				if r.Float64() < 0.35 {
					tm.edges = append(tm.edges, tmplEdge{i, j, r.Intn(maxLat + 1)})
				}
			}
		}
		tmpls[t] = tm
	}
	g := graph.New(nblocks * nodesPer)
	for b := 0; b < nblocks; b++ {
		tm := tmpls[r.Intn(nTemplates)]
		base := graph.NodeID(b * nodesPer)
		for i := 0; i < nodesPer; i++ {
			g.AddNode(fmt.Sprintf("b%d_%d", b, i), tm.exec[i], tm.class[i], b)
		}
		for _, e := range tm.edges {
			g.MustEdge(base+graph.NodeID(e.i), base+graph.NodeID(e.j), e.lat, 0)
		}
		if b > 0 && r.Float64() < pCross {
			g.MustEdge(base-1, base, r.Intn(maxLat+1), 0)
		}
	}
	return g
}

func sameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if fmt.Sprint(got.Order) != fmt.Sprint(want.Order) {
		t.Fatalf("%s: orders differ\n got %v\n want %v", tag, got.Order, want.Order)
	}
	for v := range want.S.Start {
		if got.S.Start[v] != want.S.Start[v] || got.S.Unit[v] != want.S.Unit[v] {
			t.Fatalf("%s: schedule differs at node %d: (%d,%d) vs (%d,%d)",
				tag, v, got.S.Start[v], got.S.Unit[v], want.S.Start[v], want.S.Unit[v])
		}
	}
	if len(got.BlockOrders) != len(want.BlockOrders) {
		t.Fatalf("%s: block count %d vs %d", tag, len(got.BlockOrders), len(want.BlockOrders))
	}
	for b, o := range want.BlockOrders {
		if fmt.Sprint(got.BlockOrders[b]) != fmt.Sprint(o) {
			t.Fatalf("%s: block %d orders differ\n got %v\n want %v", tag, b, got.BlockOrders[b], o)
		}
	}
}

// TestStepCacheDifferential is the tentpole guarantee: with the step cache
// enabled — cold and warm, shared across traces — batch results are
// bit-identical to the uncached driver, across machines, classes, mixed
// latencies (release-floor regime) and duplicate-block densities.
func TestStepCacheDifferential(t *testing.T) {
	machines := []*machine.Machine{
		machine.SingleUnit(4),
		machine.SingleUnit(2),
		machine.RS6000(4),
		machine.Superscalar(2, 4),
	}
	sc := NewStepCache(StepCacheConfig{})
	for seed := int64(0); seed < 48; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := machines[seed%int64(len(machines))]
		classes := 1
		if m.Name == "rs6000" || seed%3 == 0 {
			classes = len(m.Units)
		}
		maxLat := int(seed % 3) // 0/1 restricted through mixed-latency §4.2
		g := dupBlockTrace(r, 2+r.Intn(10), 2+r.Intn(5), classes, maxLat,
			1+r.Intn(3), float64(seed%4)*0.25)
		opt := Options{SkipDelay: seed%7 == 6}

		want, err := LookaheadOpts(g, m, opt)
		if err != nil {
			t.Fatalf("seed %d: uncached: %v", seed, err)
		}
		opt.StepCache = sc
		for pass := 0; pass < 2; pass++ { // cold then warm
			got, err := LookaheadOpts(g, m, opt)
			if err != nil {
				t.Fatalf("seed %d pass %d: cached: %v", seed, pass, err)
			}
			sameResult(t, fmt.Sprintf("seed %d pass %d (%s)", seed, pass, m.Name), got, want)
		}
	}
	c := sc.Counters()
	if c.Hits == 0 {
		t.Fatalf("differential sweep produced no cache hits (misses=%d)", c.Misses)
	}
	if c.Bytes <= 0 {
		t.Fatalf("resident-bytes gauge not accounted: %d", c.Bytes)
	}
}

// chainTrace builds a trace of identical serial latency chains: each block
// stalls the pipeline, so Delay_Idle_Slots and Chop fire every step and the
// carried suffix reaches a periodic steady state — the canonical hit shape.
// (A dense dup trace with no idle slots never chops: the suffix grows every
// step and every key is legitimately unique.)
func chainTrace(nblocks, nodesPer, lat int) *graph.Graph {
	g := graph.New(nblocks * nodesPer)
	for b := 0; b < nblocks; b++ {
		base := graph.NodeID(b * nodesPer)
		for i := 0; i < nodesPer; i++ {
			g.AddNode(fmt.Sprintf("b%d_%d", b, i), 1, 0, b)
		}
		for i := 0; i < nodesPer-1; i++ {
			g.MustEdge(base+graph.NodeID(i), base+graph.NodeID(i+1), lat, 0)
		}
	}
	return g
}

// TestStepCacheHitsOnDuplicateBlocks pins the intended hit pattern: a trace
// of identical blocks warms on the first few steps and replays the rest from
// the cache.
func TestStepCacheHitsOnDuplicateBlocks(t *testing.T) {
	g := chainTrace(40, 5, 2)
	m := machine.SingleUnit(4)
	sc := NewStepCache(StepCacheConfig{})
	want, err := LookaheadOpts(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := LookaheadOpts(g, m, Options{StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "dup40", got, want)
	c := sc.Counters()
	if c.Hits < 30 {
		t.Fatalf("expected ≥30 hits on 40 identical blocks, got hits=%d misses=%d", c.Hits, c.Misses)
	}
}

// TestStepCacheNonCanonicalBypass: interleaved block numbering breaks the
// canonical-layout precondition; the driver must bypass the cache (no wrong
// reuse, identical results) and recover coverage afterwards.
func TestStepCacheNonCanonicalBypass(t *testing.T) {
	// Blocks assigned round-robin: block of node i = i%3 — new IDs below
	// carried IDs on every iteration after the first.
	g := graph.New(12)
	for i := 0; i < 12; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 1, 0, i%3)
	}
	for i := 0; i < 11; i++ {
		if i%2 == 0 {
			g.MustEdge(graph.NodeID(i), graph.NodeID(i+1), 1, 0)
		}
	}
	m := machine.SingleUnit(3)
	want, err := LookaheadOpts(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStepCache(StepCacheConfig{})
	got, err := LookaheadOpts(g, m, Options{StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "noncanon", got, want)
	// The first block merges with no carried suffix and may be cached, but
	// every later step sees carried IDs above the new block's minimum and
	// must bypass: no hit may ever be served on this layout.
	if c := sc.Counters(); c.Hits != 0 {
		t.Fatalf("non-canonical layout served %d cache hits: %+v", c.Hits, c)
	}
}

// TestStepCacheCustomTieBypass: a custom tie order must bypass the cache and
// still reproduce the paper-exact result.
func TestStepCacheCustomTieBypass(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := dupBlockTrace(r, 6, 4, 1, 1, 1, 0)
	tie := make([]graph.NodeID, g.Len())
	for i := range tie {
		tie[i] = graph.NodeID(g.Len() - 1 - i)
	}
	m := machine.SingleUnit(3)
	want, err := LookaheadOpts(g, m, Options{Tie: tie})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStepCache(StepCacheConfig{})
	got, err := LookaheadOpts(g, m, Options{Tie: tie, StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "tie", got, want)
	if c := sc.Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("custom-tie run touched the cache: %+v", c)
	}
}

// TestStepCacheTracerBypass: an attached Tracer changes what a step must
// produce (per-pass events), so RunMemo must bypass the cache entirely —
// no counter movement — while the result stays bit-identical to both the
// cache-off tracer run and the traced event stream stays non-empty.
func TestStepCacheTracerBypass(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := dupBlockTrace(r, 6, 4, 1, 1, 1, 0)
	m := machine.SingleUnit(3)
	rec := obs.NewRecorder()
	want, err := LookaheadOpts(g, m, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("tracer attached but no events recorded")
	}
	sc := NewStepCache(StepCacheConfig{})
	rec2 := obs.NewRecorder()
	got, err := LookaheadOpts(g, m, Options{Tracer: rec2, StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "tracer", got, want)
	if c := sc.Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("traced run touched the cache: %+v", c)
	}
	if a, b := len(rec.Events()), len(rec2.Events()); a != b {
		t.Fatalf("cache-off and cache-on traced runs emitted %d vs %d events", a, b)
	}
}

// TestStepCacheMaxOldGatingBypass pins the subtle half of the canonical-
// layout gate: blocks appear in ascending order (so the trace looks
// canonical at a glance), but one block's IDs straddle the next block's
// minimum. When the carried suffix holds an ID ≥ the new block's first ID,
// fragment keys from relocated copies would collide, so the step must
// bypass (maxOld < newIDs[0] fails) and results must match cache-off
// exactly.
func TestStepCacheMaxOldGatingBypass(t *testing.T) {
	// Block 0 owns IDs {0,1,2,4}, block 1 owns {3,5,6,7}: ascending block
	// sequence, but carried node 4 sits above block 1's minimum ID 3. The
	// latency-2 edge 2→4 leaves a trailing idle slot in block 0 so the chop
	// carries node 4 into the merge with block 1.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		blk := 0
		if i == 3 || i >= 5 {
			blk = 1
		}
		g.AddNode(fmt.Sprintf("n%d", i), 1, 0, blk)
	}
	g.MustEdge(0, 1, 1, 0)
	g.MustEdge(2, 4, 2, 0)
	g.MustEdge(3, 5, 1, 0)
	g.MustEdge(5, 6, 1, 0)
	m := machine.SingleUnit(3)
	want, err := LookaheadOpts(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStepCache(StepCacheConfig{})
	got, err := LookaheadOpts(g, m, Options{StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "maxold", got, want)
	if c := sc.Counters(); c.Hits != 0 {
		t.Fatalf("maxOld ≥ newIDs[0] layout served %d cache hits: %+v", c.Hits, c)
	}
	// Run the same trace again through the same cache: the canonical first
	// step may hit, but the gated merge must keep bypassing — a second pass
	// can never serve more hits than it has canonical steps.
	if _, err := LookaheadOpts(g, m, Options{StepCache: sc}); err != nil {
		t.Fatal(err)
	}
	if c := sc.Counters(); c.Hits > 1 {
		t.Fatalf("gated merge was served from cache on replay: %+v", c)
	}
}

package machine

import "testing"

func TestSingleUnitPreset(t *testing.T) {
	m := SingleUnit(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.SingleUnitOnly() {
		t.Fatal("SingleUnit should be single-unit")
	}
	if m.Window != 4 {
		t.Fatalf("Window = %d, want 4", m.Window)
	}
	if m.TotalUnits() != 1 {
		t.Fatalf("TotalUnits = %d, want 1", m.TotalUnits())
	}
	// Every class maps to the one unit.
	for _, c := range []UnitClass{ClassFixed, ClassFloat, ClassBranch} {
		if m.UnitsFor(c) != 1 {
			t.Fatalf("UnitsFor(%d) = %d, want 1", c, m.UnitsFor(c))
		}
	}
}

func TestRS6000Preset(t *testing.T) {
	m := RS6000(2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.SingleUnitOnly() {
		t.Fatal("RS6000 should not be single-unit")
	}
	if m.TotalUnits() != 3 {
		t.Fatalf("TotalUnits = %d, want 3", m.TotalUnits())
	}
	if m.UnitsFor(ClassFixed) != 1 || m.UnitsFor(ClassFloat) != 1 || m.UnitsFor(ClassBranch) != 1 {
		t.Fatal("each class should have one unit")
	}
	if m.UnitsFor(UnitClass(9)) != 0 {
		t.Fatal("unknown class should have no units")
	}
}

func TestSuperscalarClampsWidth(t *testing.T) {
	m := Superscalar(0, 8)
	if m.TotalUnits() != 1 {
		t.Fatalf("TotalUnits = %d, want clamped 1", m.TotalUnits())
	}
	m4 := Superscalar(4, 8)
	if m4.UnitsFor(ClassFixed) != 4 {
		t.Fatalf("UnitsFor(fixed) = %d, want 4", m4.UnitsFor(ClassFixed))
	}
}

func TestWindowClampedToOne(t *testing.T) {
	m := SingleUnit(0)
	if m.Window != 1 {
		t.Fatalf("Window = %d, want clamped 1", m.Window)
	}
	m2 := NewMachine("x", []int{1}, -5)
	if m2.Window != 1 {
		t.Fatalf("Window = %d, want clamped 1", m2.Window)
	}
}

func TestWithWindowCopies(t *testing.T) {
	m := SingleUnit(2)
	m2 := m.WithWindow(16)
	if m.Window != 2 || m2.Window != 16 {
		t.Fatalf("WithWindow mutated original or failed: %d, %d", m.Window, m2.Window)
	}
	m2.Units[0] = 99
	if m.Units[0] == 99 {
		t.Fatal("WithWindow shares unit storage")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := &Machine{Name: "b", Units: []int{0, 0}, Window: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero total units accepted")
	}
	neg := &Machine{Name: "n", Units: []int{-1, 2}, Window: 1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative unit count accepted")
	}
	now := &Machine{Name: "w", Units: []int{1}, Window: 0}
	if err := now.Validate(); err == nil {
		t.Fatal("window 0 accepted")
	}
	none := &Machine{Name: "e", Units: nil, Window: 1}
	if err := none.Validate(); err == nil {
		t.Fatal("no unit classes accepted")
	}
}

func TestNewMachineDefaultsUnits(t *testing.T) {
	m := NewMachine("d", nil, 3)
	if m.TotalUnits() != 1 {
		t.Fatalf("TotalUnits = %d, want default 1", m.TotalUnits())
	}
}

func TestStringMentionsWindow(t *testing.T) {
	m := SingleUnit(7)
	if s := m.String(); s == "" {
		t.Fatal("empty String")
	}
}

package rank

import (
	"fmt"
	"slices"
	"sort"

	"aisched/internal/arena"
	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// Ctx is a reusable rank-computation context for one graph view and machine.
// It caches every per-graph invariant the Rank Algorithm needs — topological
// order and positions, descendant bitsets, per-node descendant lists
// pre-sorted by topological position, effective unit classes — and owns the
// scratch buffers (longest-path deltas, descendant packing entries,
// slice-based occupancy windows, list-building arrays, a reusable greedy
// list scheduler) that the one-shot API used to reallocate on every call.
//
// All per-graph analysis arrays are carved from a context-owned arena, so
// Reset rebinds the context to a new graph view without allocating once the
// arena has grown to working-set size. Anticipatory scheduling calls the
// Rank Algorithm hundreds of times per basic block on the same graph with
// slightly different deadlines (Delay_Idle_Slots demotes one deadline per
// re-rank; merge loosens the new nodes' deadlines by one per round), and the
// lookahead merge loop additionally re-analyses a fresh induced subgraph per
// block — with a Reset-able Ctx both layers pay zero steady-state
// allocations for the analysis. Update makes re-ranks incremental: only the
// changed nodes and their ancestors are recomputed.
//
// A Ctx is not safe for concurrent use; create one per goroutine.
type Ctx struct {
	g    *graph.Graph // graph behind the view, or nil for induced views
	m    *machine.Machine
	view graph.AdjView

	ar arena.Arena // backs all per-Reset analysis and scratch below

	order   []graph.NodeID   // topological order over distance-0 edges
	topoPos []int            // topoPos[v] = index of v in order
	desc    []graph.Bitset   // distance-0 transitive successors per node
	members [][]graph.NodeID // desc[v] as a list sorted by topological position

	class    []int // effective unit class per node (0 on single-unit machines)
	unitsFor []int // usable units per effective class (0 mapped to 1)

	// Scratch, reused across calls.
	delta  []int          // longest path finish(v)⇝start(u) per descendant
	ds     []descendant   // packing entries for the node being ranked
	occ    [][]int        // per-class occupancy window for packFeasible
	pos    []int          // tie-position scratch for list building
	list   []graph.NodeID // priority-list scratch
	oneBit graph.Bitset   // single-node changed set for UpdateOne
	source []graph.NodeID // cached default tie order (program order)

	// budget, when non-nil, is charged one pass (and consulted as a
	// cancellation checkpoint) by every RunRanks. Anticipatory scheduling
	// funnels all of its greedy reschedules — merge rounds, idle-slot
	// demotions, loop candidates — through RunRanks, so setting the budget
	// here makes the whole pipeline cooperatively cancellable and metered.
	budget *sbudget.State

	ls sched.ListScheduler

	// aux lets the passes layered on the Rank Algorithm (internal/idle)
	// stash their own per-context scratch so it is recycled together with
	// the context.
	aux any
}

// SetBudget installs the request's cancellation/budget checkpoint state; nil
// (the default) disables checkpointing.
func (c *Ctx) SetBudget(b *sbudget.State) { c.budget = b }

// SetRelease installs per-node release times on the context's list scheduler
// (see sched.ListScheduler.SetRelease): every RunRanks of this binding — the
// merge rounds and the whole Delay_Idle_Slots pass alike — floors each node's
// start at its release. Cleared by Reset; the slice is retained, not copied.
func (c *Ctx) SetRelease(rel []int) { c.ls.SetRelease(rel) }

// Aux returns the scratch value stashed by SetAux, or nil.
func (c *Ctx) Aux() any { return c.aux }

// SetAux stashes a caller-owned scratch value on the context.
func (c *Ctx) SetAux(a any) { c.aux = a }

// NewReusable returns an empty context; call Reset to bind it to a graph
// view before use. NewCtx is the one-shot equivalent.
func NewReusable() *Ctx { return &Ctx{} }

// NewCtx analyses g once (topological order, descendant closure, per-node
// descendant lists, unit-class mapping) and returns a context whose Compute,
// Update and RunRanks reuse that analysis. Fails if the loop-independent
// subgraph is cyclic.
func NewCtx(g *graph.Graph, m *machine.Machine) (*Ctx, error) {
	c := NewReusable()
	if err := c.Reset(graph.NewCSR(g).View(), m, g); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset rebinds the context to a new adjacency view, recomputing the graph
// analysis into the context's arena. g may be nil when the view is an
// induced subgraph with no standalone *Graph. The budget and aux stash
// survive only within one binding: budget is cleared, aux is kept (it is
// sized scratch, not graph state). Fails — leaving the context unusable
// until the next successful Reset — if the view has a cycle.
func (c *Ctx) Reset(view graph.AdjView, m *machine.Machine, g *graph.Graph) error {
	c.g, c.m, c.view = g, m, view
	c.budget = nil
	c.source = nil
	c.ar.Reset()
	n := view.N

	ints := &c.ar.Ints
	c.topoPos = ints.Alloc(n)
	c.delta = ints.Alloc(n)
	c.pos = ints.Alloc(n)
	c.class = ints.Alloc(n)
	ids := &c.ar.IDs
	c.order = ids.Alloc(n)
	c.list = ids.Alloc(n)
	c.oneBit = c.ar.Bitset(n)
	c.desc = c.ar.BitsetRows(c.desc, n)

	// Topological sort over the flat adjacency (same sorted-insert frontier
	// as graph.TopoOrder, so the resulting order — and everything downstream
	// — is identical to the slice-backed path). delta doubles as the
	// in-degree scratch; rankNode re-initialises it per use.
	indeg := c.delta
	for _, d := range view.Dst[:view.Off[n]] {
		indeg[d]++
	}
	frontier := c.list[:0]
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, graph.NodeID(id))
		}
	}
	order := c.order[:0]
	head := 0
	for head < len(frontier) {
		id := frontier[head]
		head++
		order = append(order, id)
		for e := view.Off[id]; e < view.Off[id+1]; e++ {
			dst := view.Dst[e]
			indeg[dst]--
			if indeg[dst] == 0 {
				i := head + sort.Search(len(frontier)-head, func(k int) bool { return frontier[head+k] > dst })
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = dst
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("graph: loop-independent subgraph has a cycle (%d of %d nodes ordered)", len(order), n)
	}
	c.order = order
	for i, id := range order {
		c.topoPos[id] = i
	}

	// Descendant closure in reverse topological order (graph.DescendantsFrom
	// over the flat arrays).
	for i := n - 1; i >= 0; i-- {
		id := order[i]
		for e := view.Off[id]; e < view.Off[id+1]; e++ {
			dst := view.Dst[e]
			c.desc[id].Set(int(dst))
			c.desc[id].UnionWith(c.desc[dst])
		}
	}

	total := 0
	for v := 0; v < n; v++ {
		total += c.desc[v].Count()
	}
	backing := ids.Alloc(total)
	if cap(c.members) < n {
		c.members = make([][]graph.NodeID, n)
	}
	c.members = c.members[:n]
	k := 0
	for v := 0; v < n; v++ {
		start := k
		c.desc[v].ForEach(func(u int) { backing[k] = graph.NodeID(u); k++ })
		mem := backing[start:k:k]
		// Topological positions are a permutation, so this sort has no ties
		// and any sorting algorithm yields the same deterministic order.
		slices.SortFunc(mem, func(a, b graph.NodeID) int { return c.topoPos[a] - c.topoPos[b] })
		c.members[v] = mem
	}

	maxClass := 0
	single := m.SingleUnitOnly()
	for v := 0; v < n; v++ {
		cls := int(view.Class[v])
		if single {
			cls = 0
		}
		c.class[v] = cls
		if cls > maxClass {
			maxClass = cls
		}
	}
	if cap(c.unitsFor) < maxClass+1 {
		c.unitsFor = make([]int, maxClass+1)
	}
	c.unitsFor = c.unitsFor[:maxClass+1]
	for cls := range c.unitsFor {
		u := m.UnitsFor(machine.UnitClass(cls))
		if u == 0 {
			u = 1 // unschedulable classes are caught by the list scheduler
		}
		c.unitsFor[cls] = u
	}
	// occ rows persist across Resets (packFeasible sizes them lazily); only
	// the header grows, and it never shrinks so grown rows stay reusable.
	for len(c.occ) <= maxClass {
		c.occ = append(c.occ, nil)
	}

	c.ls.Reset(view, m, g)
	return nil
}

// Graph returns the graph this context was built for, or nil when it was
// Reset onto an induced view with no standalone graph.
func (c *Ctx) Graph() *graph.Graph { return c.g }

// Machine returns the machine this context was built for.
func (c *Ctx) Machine() *machine.Machine { return c.m }

// Len reports the node count of the bound view.
func (c *Ctx) Len() int { return c.view.N }

// Exec returns the execution time of node v in the bound view.
func (c *Ctx) Exec(v graph.NodeID) int { return int(c.view.Exec[v]) }

// Label returns the label of node v in the bound view.
func (c *Ctx) Label(v graph.NodeID) string { return c.view.Labels[v] }

// Block returns the block index of node v in the bound view.
func (c *Ctx) Block(v graph.NodeID) int { return int(c.view.Block[v]) }

// View returns the adjacency view the context is bound to.
func (c *Ctx) View() graph.AdjView { return c.view }

// Compute returns rank(v) for every node under deadlines d (see the
// package-level Compute for the definition). The returned slice is freshly
// allocated and owned by the caller; feed it back to Update for incremental
// re-ranking and to RunRanks for scheduling. ComputeInto is the
// allocation-free variant.
func (c *Ctx) Compute(d []int) ([]int, error) {
	ranks := make([]int, c.view.N)
	if err := c.ComputeInto(ranks, d); err != nil {
		return nil, err
	}
	return ranks, nil
}

// ComputeInto computes rank(v) for every node under deadlines d into the
// caller-provided ranks slice (len must equal the node count).
func (c *Ctx) ComputeInto(ranks, d []int) error {
	n := c.view.N
	if len(d) != n {
		return fmt.Errorf("rank: %d deadlines for %d nodes", len(d), n)
	}
	if len(ranks) != n {
		return fmt.Errorf("rank: ranks buffer has %d entries for %d nodes", len(ranks), n)
	}
	copy(ranks, d)
	for i := n - 1; i >= 0; i-- {
		v := c.order[i]
		if len(c.members[v]) != 0 {
			c.rankNode(v, d, ranks)
		}
	}
	return nil
}

// Update incrementally re-establishes ranks in place after the deadlines of
// the nodes in changed were modified: ranks must hold the output of a
// previous Compute/Update against a deadline vector differing from d only on
// changed nodes. rank(v) depends solely on d[v] and the ranks of v's
// descendants, so only changed nodes and their ancestors can change; Update
// recomputes exactly that topological suffix (typically a small fraction of
// the graph for the single-deadline demotions of Move_Idle_Slot).
func (c *Ctx) Update(ranks, d []int, changed graph.Bitset) {
	hi := -1
	changed.ForEach(func(u int) {
		if p := c.topoPos[u]; p > hi {
			hi = p
		}
	})
	for i := hi; i >= 0; i-- {
		v := c.order[i]
		if changed.Has(int(v)) || c.desc[v].Intersects(changed) {
			c.rankNode(v, d, ranks)
		}
	}
}

// UpdateOne is Update for a single changed node.
func (c *Ctx) UpdateOne(ranks, d []int, v graph.NodeID) {
	c.oneBit.Set(int(v))
	c.Update(ranks, d, c.oneBit)
	c.oneBit.Clear(int(v))
}

// rankNode recomputes ranks[v] from d[v] and the current ranks of v's
// descendants: the per-ancestor step of the Compute sweep.
func (c *Ctx) rankNode(v graph.NodeID, d, ranks []int) {
	mem := c.members[v]
	if len(mem) == 0 {
		ranks[v] = d[v]
		return
	}
	view := &c.view
	delta := c.delta
	// delta(u) = max over distance-0 in-edges (p → u) with p ∈ {v} ∪
	// descendants(v) of (0 if p==v else delta(p)+exec(p)) + latency.
	// Evaluated in global topological order restricted to descendants. The
	// view only holds distance-0 edges, so no distance filtering is needed.
	for _, u := range mem {
		delta[u] = -1
	}
	dv := c.desc[v]
	for e := view.Off[v]; e < view.Off[v+1]; e++ {
		dst := view.Dst[e]
		if lat := int(view.Lat[e]); dv.Has(int(dst)) && lat > delta[dst] {
			delta[dst] = lat
		}
	}
	for _, u := range mem {
		du := delta[u]
		exec := int(view.Exec[u])
		for e := view.Off[u]; e < view.Off[u+1]; e++ {
			dst := view.Dst[e]
			if !dv.Has(int(dst)) {
				continue
			}
			if cand := du + exec + int(view.Lat[e]); cand > delta[dst] {
				delta[dst] = cand
			}
		}
	}
	ds := c.ds[:0]
	for _, u := range mem {
		ds = append(ds, descendant{
			rank:  ranks[u],
			exec:  int(view.Exec[u]),
			class: c.class[u],
			lat:   delta[u],
			pos:   c.topoPos[u],
		})
	}
	c.ds = ds[:0] // keep the (possibly grown) backing array
	// EDF exactness wants nondecreasing rank order; break ties by release
	// (latency) then topological position so the order is a deterministic
	// total order shared with the reference implementation.
	slices.SortFunc(ds, compareDescendants)
	// Necessary upper bounds narrow the search range.
	hi := d[v]
	total, maxLat, maxExec := 0, 0, 0
	for _, u := range ds {
		if b := u.rank - u.exec - u.lat; b < hi {
			hi = b
		}
		total += u.exec
		if u.lat > maxLat {
			maxLat = u.lat
		}
		if u.exec > maxExec {
			maxExec = u.exec
		}
	}
	// Earliest-fit never places past lat + sum(exec), so this window bounds
	// every occupancy index the packing can touch.
	window := total + maxLat + maxExec + 4
	// At lo the releases leave ample slack below every deadline, so
	// infeasibility at lo means the descendants' ranks conflict on their own
	// (no completion time of v can help).
	lo := hi - 2*(total+maxLat+2)
	if !c.packFeasible(ds, lo, window) {
		ranks[v] = lo // hopelessly infeasible; surfaces as rank < exec
		return
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if c.packFeasible(ds, mid, window) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ranks[v] = lo
}

// compareDescendants orders packing entries by nondecreasing rank, ties by
// larger release latency, then by topological position. The final key makes
// the order total, so the optimized and reference implementations sort
// identically regardless of sorting algorithm.
func compareDescendants(a, b descendant) int {
	if a.rank != b.rank {
		return a.rank - b.rank
	}
	if a.lat != b.lat {
		return b.lat - a.lat
	}
	return a.pos - b.pos
}

// packFeasible reports whether all descendants (sorted by nondecreasing
// rank) can be placed when their ancestor completes at time at: each is
// placed at the earliest free position ≥ at + lat on its class pool and must
// finish by its rank. Occupancy is tracked in per-class slice windows
// indexed by t − at + 1 (the +1 absorbs a defensive −1 release), reused and
// cleared across calls — the one-shot implementation allocated two maps per
// feasibility probe. Exact for unit execution times (EDF exchange argument);
// earliest-fit heuristic for longer instructions.
func (c *Ctx) packFeasible(ds []descendant, at, window int) bool {
	for cls := range c.occ {
		clear(c.occ[cls])
	}
	for _, u := range ds {
		if len(c.occ[u.class]) < window {
			c.occ[u.class] = make([]int, window)
		}
	}
	for _, u := range ds {
		units := c.unitsFor[u.class]
		occ := c.occ[u.class]
		start := u.lat + 1 // index of absolute time at + u.lat
	place:
		for {
			end := start + u.exec
			for end > len(occ) {
				occ = append(occ, 0)
			}
			for t := start; t < end; t++ {
				if occ[t] >= units {
					start = t + 1
					continue place
				}
			}
			break
		}
		if at+(start-1)+u.exec > u.rank {
			return false
		}
		for t := start; t < start+u.exec; t++ {
			occ[t]++
		}
		c.occ[u.class] = occ
	}
	return true
}

// RunRanks greedily schedules in nondecreasing rank order (the second half
// of rank_alg) using precomputed ranks, and reports deadline feasibility
// against d. This is how Move_Idle_Slot shares one rank computation between
// its refill test and the actual reschedule. The Result's Ranks field
// aliases the input slice.
func (c *Ctx) RunRanks(ranks, d []int, tie []graph.NodeID) (*Result, error) {
	if h := faultinject.RankPass; h != nil {
		h()
	}
	if c.budget != nil {
		if err := c.budget.RankPass(); err != nil {
			return nil, err
		}
	}
	if tie == nil {
		if c.source == nil {
			src := c.ar.IDs.Alloc(c.view.N)
			for i := range src {
				src[i] = graph.NodeID(i)
			}
			c.source = src
		}
		tie = c.source
	}
	list := c.buildList(ranks, tie)
	s, err := c.ls.Run(list)
	if err != nil {
		return nil, err
	}
	feasible := true
	for v := 0; v < c.view.N; v++ {
		if ranks[v] < int(c.view.Exec[v]) {
			feasible = false
			break
		}
		if s.Finish(graph.NodeID(v)) > d[v] {
			feasible = false
			break
		}
	}
	return &Result{S: s, Ranks: ranks, Feasible: feasible}, nil
}

// Run executes the full rank_alg through the context: Compute then RunRanks.
func (c *Ctx) Run(d []int, tie []graph.NodeID) (*Result, error) {
	ranks, err := c.Compute(d)
	if err != nil {
		return nil, err
	}
	return c.RunRanks(ranks, d, tie)
}

// buildList is ListFromRanks on the context's scratch: nondecreasing rank,
// ties by position in tie. The returned slice is valid until the next call.
func (c *Ctx) buildList(ranks []int, tie []graph.NodeID) []graph.NodeID {
	pos := c.pos
	for i, id := range tie {
		pos[id] = i
	}
	list := c.list[:len(tie)]
	copy(list, tie)
	slices.SortStableFunc(list, func(a, b graph.NodeID) int {
		if ranks[a] != ranks[b] {
			return ranks[a] - ranks[b]
		}
		return pos[a] - pos[b]
	})
	return list
}

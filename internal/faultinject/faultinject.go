// Package faultinject is a build-tag-free fault-injection hook registry for
// tests: a fixed set of named sites in the scheduling pipeline consult a
// package-level function pointer and, when it is non-nil, call it before
// proceeding. Production code never sets a hook, so the steady-state cost of
// a site is one global load and a predictable branch — the same discipline
// the observability layer uses for nil Tracers.
//
// Tests install hooks to inject delays (to widen race windows
// deterministically), panics (to exercise recovery paths), forced budget
// exhaustion (to exercise graceful degradation), or cancellation at a
// precise checkpoint index. Hooks are plain package variables, NOT
// goroutine-local: tests that set them must not run in parallel with other
// tests of the same binary and must Reset (typically via defer) before
// returning. No test in this repository uses t.Parallel, so this is safe.
package faultinject

import (
	"sync/atomic"
	"time"

	"aisched/internal/graph"
	"aisched/internal/obs"
)

// The named injection sites. Each is consulted (nil-checked) at exactly the
// place its comment describes; all are no-ops when nil.
var (
	// MemoLookup fires at the start of every schedule-cache lookup
	// (memo.Cache.DoCtx), before the shard lock is taken.
	MemoLookup func()
	// WorkerStart fires when a batch worker picks up an item
	// (Scheduler.ScheduleBatchCtx), before the item is scheduled.
	WorkerStart func()
	// RankPass fires on every rank pass (rank.Ctx.RunRanks) — the greedy
	// reschedule every merge round, idle-slot demotion and loop candidate
	// goes through.
	RankPass func()
	// SimStep fires once per simulated machine cycle (hw.simulate).
	SimStep func()
	// Checkpoint fires at every cooperative cancellation/budget checkpoint
	// (sbudget.State.Check), before the context and deadline are examined.
	Checkpoint func()
	// BudgetExhaust is consulted at every checkpoint; returning true forces
	// budget exhaustion there, regardless of the real deadline or pass count.
	BudgetExhaust func() bool
	// SpecVerify is consulted at every speculative-segment join in the
	// parallel trace scheduler (core.lookaheadParallel), after the worker
	// finishes but before the fingerprint comparison; returning true forces
	// the verification to fail, exercising the sequential-recompute fallback
	// against a speculation that would genuinely have matched.
	SpecVerify func() bool
)

// Reset clears every hook. Tests that install hooks must defer this.
func Reset() {
	MemoLookup = nil
	WorkerStart = nil
	RankPass = nil
	SimStep = nil
	Checkpoint = nil
	BudgetExhaust = nil
	SpecVerify = nil
}

// injected counts faults fired through the helper constructors below.
var injected atomic.Uint64

// Injected returns the number of faults the helper hooks have fired since
// the last ResetCount.
func Injected() uint64 { return injected.Load() }

// ResetCount zeroes the injected-fault counter.
func ResetCount() { injected.Store(0) }

// fire records one injected fault: bumps the global counter and, when tr is
// non-nil, emits a KindFault event labelled with the site name.
func fire(tr obs.Tracer, site string) {
	injected.Add(1)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindFault, Label: site, Block: -1, Node: graph.None})
	}
}

// Delay returns a hook that sleeps for d on every call — the standard way to
// hold a singleflight leader in place while a test arranges waiters.
func Delay(tr obs.Tracer, site string, d time.Duration) func() {
	return func() {
		fire(tr, site)
		time.Sleep(d)
	}
}

// Panic returns a hook that panics with msg on every call, for exercising
// the pipeline's recovery paths.
func Panic(tr obs.Tracer, site, msg string) func() {
	return func() {
		fire(tr, site)
		panic(msg)
	}
}

// ForceExhaust returns a BudgetExhaust hook that forces exhaustion at every
// checkpoint.
func ForceExhaust(tr obs.Tracer, site string) func() bool {
	return func() bool {
		fire(tr, site)
		return true
	}
}

// After returns a hook that counts calls (atomically, so it is safe at sites
// reached from several goroutines) and runs fn exactly once, on the nth call
// (1-based). Compose it with a context cancel func to cancel at a precise
// checkpoint index.
func After(n uint64, fn func()) func() {
	var calls atomic.Uint64
	return func() {
		if calls.Add(1) == n {
			fn()
		}
	}
}

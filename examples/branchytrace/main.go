// Branchy trace: compile a mini-C program with conditionals, schedule the
// fall-through trace anticipatorily, and measure it on the window hardware
// — including the safety story: branch mispredictions roll back eagerly
// executed next-block instructions at a penalty, and the anticipatory
// schedule stays correct because instructions never move across block
// boundaries in the emitted code.
package main

import (
	"fmt"
	"log"

	"aisched"
)

const src = `
int a;
int b;
int c;
int t[16];
a = 3;
b = a * a;
t[0] = b;
if (b > 4) {
	c = b + t[0];
} else {
	c = b - 1;
}
c = c * 2;
t[1] = c;
if (c > 10) {
	a = c / 2;
}
b = a + c;
`

func main() {
	comp, err := aisched.CompileC(src)
	if err != nil {
		log.Fatal(err)
	}
	blocks := comp.TraceBlocks()
	fmt.Printf("compiled to %d basic blocks on the fall-through trace\n", len(blocks))

	g := aisched.BuildTraceGraph(blocks)
	m := aisched.SingleUnit(4)

	res, err := aisched.ScheduleTrace(g, m)
	if err != nil {
		log.Fatal(err)
	}
	static := res.StaticOrder()

	clean, err := aisched.SimulateTrace(g, m, static)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anticipatory schedule, perfect prediction: %d cycles\n", clean.Completion)

	// Inject a misprediction on every other branch with a 3-cycle refill.
	faulty, err := aisched.SimulateLoop(g, m, static, 1, aisched.SimOptions{
		Speculate:       true,
		MispredictEvery: 2,
		Penalty:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with mispredictions (every 2nd branch, 3-cycle penalty): %d cycles, %d rollbacks\n",
		faulty.Completion, faulty.Rollbacks)
	fmt.Println("safety: eagerly executed next-block instructions were rolled back;")
	fmt.Println("serviceability: every instruction stays inside its source block:")
	for b := range blocks {
		fmt.Printf("  block %d order: %v\n", b, res.BlockOrders[b])
	}
}

package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
	"sync"
)

// Fingerprint is a 256-bit content address for one scheduling instance: a
// dependence graph together with the machine parameters that affect
// scheduling (per-class unit counts and the lookahead window W). It is the
// cache key of the memoization layer (internal/memo), so its contract is
// chosen for cache soundness:
//
//   - Two instances collide exactly when they describe the same scheduling
//     problem: same node count, per-node <exec, class, block> attributes,
//     same dependence edges with the same <latency, distance> labels, same
//     unit counts and window. Every scheduler in this repository is a
//     deterministic function of exactly these inputs, so equal fingerprints
//     imply bit-identical schedules.
//   - Human-readable node labels, edge insertion order, machine names, and
//     construction capacities are canonicalized away: rebuilding the same
//     block from a different front-end path (relabelled registers, edges
//     discovered in a different order) still hits the cache.
//   - Node IDs are NOT canonicalized away. Program order is a semantic
//     input: it is the schedulers' tie-break (Definition 2.1's program
//     order), so two graphs that differ by a nontrivial ID permutation are
//     different instances that may legitimately produce different (equally
//     optimal) schedules. Collapsing them would break the memo layer's
//     bit-identical-results guarantee. See TestFingerprintPermutationIsSound.
//
// The hash walks the nodes in topo-canonical order (the deterministic
// TopoOrder over distance-0 edges, ID tie-broken; ID order when the
// loop-independent subgraph is cyclic) and serializes, per node, its
// original program position, attributes, and outgoing edges sorted by
// (destination, distance) with destinations expressed as topo-canonical
// positions. SHA-256 makes accidental collisions (two different instances,
// same fingerprint) cryptographically negligible, which is what lets the
// memo layer return cached schedules without re-verifying the full key.
type Fingerprint [32]byte

// fpScratch pools the per-call buffers of Fingerprint so the hot cache-hit
// path (hash + lookup) stays allocation-light.
var fpScratch = sync.Pool{New: func() any { return new(fpState) }}

type fpState struct {
	h   hash.Hash
	buf [8]byte
	pos []int
	es  []Edge
}

// Fingerprint computes the content address of (g, units, window). Pass the
// machine's per-class unit counts and lookahead window (machine.Machine's
// Units and Window fields); the machine name is deliberately excluded.
func (g *Graph) Fingerprint(units []int, window int) Fingerprint {
	st := fpScratch.Get().(*fpState)
	if st.h == nil {
		st.h = sha256.New()
	} else {
		st.h.Reset()
	}
	put := func(v int) {
		binary.LittleEndian.PutUint64(st.buf[:], uint64(int64(v)))
		st.h.Write(st.buf[:])
	}

	n := g.Len()
	put(n)
	put(g.NumEdges())
	put(window)
	put(len(units))
	for _, u := range units {
		put(u)
	}

	// Topo-canonical node order: deterministic for a given graph, shared by
	// every rebuild of the same content. Cyclic loop-independent subgraphs
	// (rejected by every scheduler anyway) fall back to ID order so the
	// fingerprint is total.
	order, err := g.TopoOrder()
	if err != nil {
		order = order[:0]
		for id := 0; id < n; id++ {
			order = append(order, NodeID(id))
		}
	}
	if cap(st.pos) < n {
		st.pos = make([]int, n)
	}
	pos := st.pos[:n]
	for i, id := range order {
		pos[id] = i
	}

	for _, id := range order {
		nd := g.nodes[id]
		// The original program position pins program order (the tie-break)
		// as part of the instance identity; labels are skipped.
		put(int(id))
		put(nd.Exec)
		put(nd.Class)
		put(nd.Block)
		es := append(st.es[:0], g.out[id]...)
		st.es = es[:0]
		// AddEdge keeps at most one edge per (dst, distance), so this sort
		// key is unique and insertion order cannot leak into the hash.
		sort.Slice(es, func(a, b int) bool {
			if es[a].Dst != es[b].Dst {
				return es[a].Dst < es[b].Dst
			}
			return es[a].Distance < es[b].Distance
		})
		put(len(es))
		for _, e := range es {
			put(pos[e.Dst])
			put(e.Latency)
			put(e.Distance)
		}
	}

	var fp Fingerprint
	st.h.Sum(fp[:0])
	fpScratch.Put(st)
	return fp
}

package hw

import (
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
)

func TestSimulateMultiCycleOccupiesUnit(t *testing.T) {
	// div (exec 4) then an independent add on a single unit: add waits for
	// the unit even though it has no dependence.
	g := graph.New(2)
	g.AddNode("div", 4, 0, 0)
	g.AddNode("add", 1, 0, 0)
	m := machine.SingleUnit(4)
	res, err := SimulateTrace(g, m, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued[1] != 4 || res.Completion != 5 {
		t.Fatalf("issued=%v completion=%d, want add@4, completion 5", res.Issued, res.Completion)
	}
}

func TestSimulateMultiCycleCoIssueAcrossUnits(t *testing.T) {
	// Same on a 2-wide machine: add co-issues at cycle 0.
	g := graph.New(2)
	g.AddNode("div", 4, 0, 0)
	g.AddNode("add", 1, 0, 0)
	m := machine.Superscalar(2, 4)
	res, err := SimulateTrace(g, m, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued[1] != 0 || res.Completion != 4 {
		t.Fatalf("issued=%v completion=%d, want add@0, completion 4", res.Issued, res.Completion)
	}
}

func TestSimulateDeadlockDetected(t *testing.T) {
	// Consumer before producer in the stream with W too small to reach the
	// producer: the machine deadlocks; the simulator must report it.
	g := graph.New(3)
	use := g.AddNode("use", 1, 0, 0)
	f := g.AddNode("f", 1, 0, 0)
	def := g.AddNode("def", 1, 0, 0)
	g.MustEdge(def, use, 0, 0)
	_ = f
	// Stream: use f def; W=2 window = {use, f}: f issues, then {use, def}?
	// Window is contiguous from the unissued head: after f issues at 0,
	// window is positions [0,2) = {use, f} — def at position 2 stays
	// unreachable.
	if _, err := SimulateTrace(g, machine.SingleUnit(2), []graph.NodeID{use, f, def}); err == nil {
		t.Fatal("deadlocking stream accepted")
	}
	// W=3 reaches the producer: executes fine.
	if _, err := SimulateTrace(g, machine.SingleUnit(3), []graph.NodeID{use, f, def}); err != nil {
		t.Fatalf("W=3 should execute: %v", err)
	}
}

func TestRollbackReissuesWork(t *testing.T) {
	// With misprediction on every branch instance, instructions issued
	// eagerly after each branch are rolled back and re-issued; completion
	// still happens and counts all rollbacks.
	f := paperex.NewFig3()
	m := machine.SingleUnit(8)
	res, err := SimulateLoop(f.G, m, f.Schedule2, 6, Options{
		Speculate: true, MispredictEvery: 1, Penalty: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks != 6 {
		t.Fatalf("rollbacks = %d, want 6 (one per branch)", res.Rollbacks)
	}
	clean, err := SimulateLoop(f.G, m, f.Schedule2, 6, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each mispredict costs at least the penalty.
	if res.Completion < clean.Completion+6*2 {
		t.Fatalf("completion %d too cheap vs clean %d", res.Completion, clean.Completion)
	}
}

func TestIssuedSliceConsistency(t *testing.T) {
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	order := []graph.NodeID{f.X, f.E, f.R, f.W, f.B, f.A, f.Z, f.Q, f.P, f.Gn, f.V}
	res, err := SimulateTrace(f.G, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issued) != f.G.Len() {
		t.Fatalf("issued length %d", len(res.Issued))
	}
	// Single unit: issue cycles are distinct and each ≥ 0.
	seen := map[int]bool{}
	for i, c := range res.Issued {
		if c < 0 {
			t.Fatalf("position %d never issued", i)
		}
		if seen[c] {
			t.Fatalf("two instructions issued at cycle %d", c)
		}
		seen[c] = true
	}
}

func TestSteadyStateFigure8Orders(t *testing.T) {
	// Dynamic steady state of the Figure 8 orders: S2 sustains 4
	// cycles/iteration; S1 is no better than S2.
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	s1, err := SteadyState(f.G, m, f.S1, Options{Speculate: false})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SteadyState(f.G, m, f.S2, Options{Speculate: false})
	if err != nil {
		t.Fatal(err)
	}
	if s2 > s1+1e-9 {
		t.Fatalf("S2 (%.2f) worse than S1 (%.2f)", s2, s1)
	}
	if s2 < 3-1e-9 {
		t.Fatalf("S2 steady state %.2f below the 3-instruction resource bound", s2)
	}
}

func TestWindowBlocksIssueWidthIndependently(t *testing.T) {
	// 2-wide machine, W=2: even with two units, only the two
	// window-resident instructions are candidates per cycle.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddUnit("n")
	}
	m := machine.Superscalar(2, 2)
	res, err := SimulateTrace(g, m, []graph.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0: {0,1} issue. Cycle 1: {2,3}. Completion 2.
	if res.Completion != 2 {
		t.Fatalf("completion = %d, want 2", res.Completion)
	}
}

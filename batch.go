package aisched

// Throughput layer: a memoizing Scheduler plus the parallel batch API.
//
// Scheduler wraps the package-level entry points (ScheduleBlock,
// ScheduleTrace, ScheduleLoop) with a content-addressed result cache
// (internal/memo keyed by graph.Fingerprint): re-submitting the same block —
// even rebuilt with different labels, edge insertion order, or machine name —
// returns the memoized schedule without recomputation, and concurrent
// requests for the same block compute it once. ScheduleBatch fans a slice of
// scheduling requests over a GOMAXPROCS-bounded worker pool with results in
// deterministic input order; ScheduleProgram runs the whole front-end →
// trace-selection → batch-scheduling pipeline for a compiled mini-C program.
//
// Determinism guarantee: every result a Scheduler returns is bit-identical
// to what the corresponding package-level call would return for the same
// graph and machine — cached or not, serial or batched. Cached values are
// stored detached (no reference to any caller's graph) and every return is a
// fresh clone rebound to the calling request's Graph/Machine pointers, so
// callers may mutate results freely.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aisched/internal/cfg"
	"aisched/internal/core"
	"aisched/internal/deps"
	"aisched/internal/faultinject"
	"aisched/internal/idle"
	"aisched/internal/loops"
	"aisched/internal/memo"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/sbudget"
)

// CacheCounters is a snapshot of the schedule cache's activity.
type CacheCounters = memo.Counters

// SchedulerOptions configures a Scheduler. The zero value gives the
// defaults: a 4096-entry 16-way-sharded cache and GOMAXPROCS batch workers.
type SchedulerOptions struct {
	// CacheCapacity is the total cached-result budget (0 = default 4096).
	// Negative disables caching entirely: every call recomputes.
	CacheCapacity int
	// CacheShards is the number of cache lock shards (0 = default 16;
	// rounded up to a power of two, minimum 16).
	CacheShards int
	// CacheMaxBytes bounds the schedule cache's approximate resident bytes
	// (0 = default 64 MiB; negative = entry-count bound only).
	CacheMaxBytes int
	// StepCacheCapacity is the structural step cache's fragment budget
	// (0 = default 4096; negative disables it). The step cache memoizes
	// individual merge/chop iterations inside ScheduleTrace keyed by
	// structural fingerprints, so repeated block shapes replay in O(block)
	// even across traces the whole-trace cache has never seen. Results are
	// bit-identical either way.
	StepCacheCapacity int
	// StepCacheMaxBytes bounds the step cache's approximate resident bytes
	// (0 = default 64 MiB; negative = fragment-count bound only).
	StepCacheMaxBytes int
	// Workers bounds ScheduleBatch's worker pool (0 = GOMAXPROCS).
	Workers int
	// ParallelTrace selects the speculative parallel trace path inside
	// ScheduleTrace (fingerprint-verified segment speculation; see the
	// "Parallel trace scheduling" README section). 0 (the default) is auto:
	// long block-grouped traces are partitioned across GOMAXPROCS
	// speculative workers when no per-request Budget or custom hook forces
	// the sequential walk. Negative disables the parallel path; positive
	// forces that many segments. Results are bit-identical in every mode.
	ParallelTrace int
	// Tracer, when non-nil, receives cache events (hit, miss, evict,
	// coalesce) plus cancellation/degradation events for the metrics
	// snapshot. Scheduling passes are not traced here — use Observer /
	// WithTracer to observe pass internals.
	Tracer Tracer
	// Budget bounds each scheduling request (see Budget). On exhaustion
	// the request degrades gracefully to the baseline list schedule — the
	// result's Schedule carries the reason in its Degraded field — instead
	// of returning an error. Degraded results are never cached.
	Budget Budget
}

// Scheduler is a caching, batch-capable front door to the schedulers. Safe
// for concurrent use. The zero value is not useful; use NewScheduler.
type Scheduler struct {
	cache     *memo.Cache     // nil when caching is disabled
	stepCache *core.StepCache // nil when step caching is disabled
	workers   int
	parallel  int
	budget    Budget
	tracer    Tracer
}

// NewScheduler builds a Scheduler from opt.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	s := &Scheduler{workers: opt.Workers, parallel: opt.ParallelTrace,
		budget: opt.Budget, tracer: opt.Tracer}
	if opt.CacheCapacity >= 0 {
		s.cache = memo.New(memo.Config{
			Capacity: opt.CacheCapacity,
			MaxBytes: opt.CacheMaxBytes,
			Shards:   opt.CacheShards,
			Tracer:   opt.Tracer,
		})
	}
	if opt.StepCacheCapacity >= 0 {
		// One step cache shared by every batch worker: fragments are
		// immutable once stored and each worker replays into its own
		// pooled Step scratch.
		s.stepCache = core.NewStepCache(core.StepCacheConfig{
			Capacity: opt.StepCacheCapacity,
			MaxBytes: opt.StepCacheMaxBytes,
		})
	}
	return s
}

// CacheCounters returns the cache activity counters (all zero when caching
// is disabled).
func (sc *Scheduler) CacheCounters() CacheCounters {
	if sc.cache == nil {
		return CacheCounters{}
	}
	return sc.cache.Counters()
}

// StepCacheCounters returns the structural step cache's activity counters
// (all zero when step caching is disabled).
func (sc *Scheduler) StepCacheCounters() CacheCounters {
	if sc.stepCache == nil {
		return CacheCounters{}
	}
	return sc.stepCache.Counters()
}

// SpecCounters is a snapshot of the speculative parallel trace scheduler's
// counters: runs that took the parallel path, segments speculated, join
// verification hits/misses, blocks recomputed after a miss, and hint-seeded
// (lane B) segments.
type SpecCounters = core.SpecStats

// SpecTraceCounters snapshots the speculation counters. They are
// process-wide — the parallel path engages per call, not per Scheduler — so
// callers wanting per-run numbers diff two snapshots.
func SpecTraceCounters() SpecCounters { return core.SpecCounters() }

// scheduleBlockFused is ScheduleBlock with both passes sharing one rank
// context (the PR 2 engine's per-graph cached topo order, descendant closure
// and scratch). Both paths are deterministic functions of (g, m), so the
// result is bit-identical to the two-context pipeline. bs, when non-nil,
// makes every rank pass a cancellation/budget checkpoint.
func scheduleBlockFused(g *Graph, m *Machine, bs *sbudget.State) (*Schedule, error) {
	rc, err := rank.NewCtx(g, m)
	if err != nil {
		return nil, err
	}
	rc.SetBudget(bs)
	t := stageTimer(stageSampler)
	res, err := rc.Run(rank.UniformDeadlines(g.Len(), rank.Big), nil)
	if err != nil {
		return nil, err
	}
	stageDone(mStageRankNS, t)
	d := rank.UniformDeadlines(g.Len(), res.S.Makespan())
	t = stageTimer(stageSampler)
	s, _, err := idle.DelayIdleSlotsCtx(rc, res.S, d, nil, nil)
	stageDone(mStageIdleNS, t)
	return s, err
}

// ScheduleBlock is the memoized equivalent of the package-level
// ScheduleBlock.
func (sc *Scheduler) ScheduleBlock(g *Graph, m *Machine) (*Schedule, error) {
	return sc.ScheduleBlockCtx(context.Background(), g, m)
}

// ScheduleBlockCtx is ScheduleBlock with cooperative cancellation and the
// Scheduler's budget applied; on budget exhaustion it returns the baseline
// fallback schedule tagged Degraded (never an error).
func (sc *Scheduler) ScheduleBlockCtx(ctx context.Context, g *Graph, m *Machine) (*Schedule, error) {
	defer observeRequest(mReqBlockNS, time.Now())
	bs := sc.newBudget(ctx)
	if sc.cache == nil {
		s, err := scheduleBlockFused(g, m, bs)
		if err == nil {
			return s, nil
		}
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackBlock(g, m, reason)
		}
		return nil, err
	}
	v, _, err := sc.cache.DoCtx(ctx, memo.KeyFor(g, m, memo.KindBlock), func() (any, error) {
		s, err := scheduleBlockFused(g, m, bs)
		if err != nil {
			return nil, err
		}
		s.G, s.M = nil, nil // detach: the cache must not retain caller graphs
		return s, nil
	})
	if err != nil {
		// Degraded results never enter the cache: the compute returned an
		// error (never stored) and the fallback runs outside the cache.
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackBlock(g, m, reason)
		}
		return nil, err
	}
	out := v.(*Schedule).Clone()
	out.G, out.M = g, m
	return out, nil
}

// ScheduleTrace is the memoized equivalent of the package-level
// ScheduleTrace.
func (sc *Scheduler) ScheduleTrace(g *Graph, m *Machine) (*TraceResult, error) {
	return sc.ScheduleTraceCtx(context.Background(), g, m)
}

// ScheduleTraceCtx is ScheduleTrace with cooperative cancellation and the
// Scheduler's budget applied; on budget exhaustion it returns the baseline
// fallback trace result tagged Degraded (never an error).
func (sc *Scheduler) ScheduleTraceCtx(ctx context.Context, g *Graph, m *Machine) (*TraceResult, error) {
	defer observeRequest(mReqTraceNS, time.Now())
	bs := sc.newBudget(ctx)
	if sc.cache == nil {
		r, err := core.LookaheadOpts(g, m, core.Options{Budget: bs, StepCache: sc.stepCache, Parallel: sc.parallel})
		if err == nil {
			return r, nil
		}
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackTrace(g, m, reason)
		}
		return nil, err
	}
	v, _, err := sc.cache.DoCtx(ctx, memo.KeyFor(g, m, memo.KindTrace), func() (any, error) {
		r, err := core.LookaheadOpts(g, m, core.Options{Budget: bs, StepCache: sc.stepCache, Parallel: sc.parallel})
		if err != nil {
			return nil, err
		}
		r.S.G, r.S.M = nil, nil
		return r, nil
	})
	if err != nil {
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackTrace(g, m, reason)
		}
		return nil, err
	}
	out := v.(*TraceResult).Clone()
	out.S.G, out.S.M = g, m
	return out, nil
}

// ScheduleLoop is the memoized equivalent of the package-level ScheduleLoop.
func (sc *Scheduler) ScheduleLoop(g *Graph, m *Machine) (*LoopSteady, error) {
	return sc.ScheduleLoopCtx(context.Background(), g, m)
}

// ScheduleLoopCtx is ScheduleLoop with cooperative cancellation and the
// Scheduler's budget applied; on budget exhaustion it returns the baseline
// fallback steady state tagged Degraded (never an error).
func (sc *Scheduler) ScheduleLoopCtx(ctx context.Context, g *Graph, m *Machine) (*LoopSteady, error) {
	defer observeRequest(mReqLoopNS, time.Now())
	bs := sc.newBudget(ctx)
	if sc.cache == nil {
		st, err := loops.ScheduleLoopOpts(g, m, loops.Opts{Budget: bs})
		if err == nil {
			return st, nil
		}
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackLoop(g, m, reason)
		}
		return nil, err
	}
	v, _, err := sc.cache.DoCtx(ctx, memo.KeyFor(g, m, memo.KindLoop), func() (any, error) {
		st, err := loops.ScheduleLoopOpts(g, m, loops.Opts{Budget: bs})
		if err != nil {
			return nil, err
		}
		st.S.G, st.S.M = nil, nil
		return st, nil
	})
	if err != nil {
		if reason := sc.degradeReason(err); reason != "" {
			return sc.fallbackLoop(g, m, reason)
		}
		return nil, err
	}
	out := v.(*LoopSteady).Clone()
	out.S.G, out.S.M = g, m
	return out, nil
}

// BatchKind selects which scheduler a BatchItem runs.
type BatchKind uint8

const (
	// BatchTrace runs Algorithm Lookahead (ScheduleTrace).
	BatchTrace BatchKind = iota
	// BatchBlock runs the single-block rank + Delay_Idle_Slots pipeline.
	BatchBlock
	// BatchLoop runs the §5 loop scheduler.
	BatchLoop
)

// BatchItem is one scheduling request.
type BatchItem struct {
	G    *Graph
	M    *Machine
	Kind BatchKind
}

// BatchResult is one scheduling outcome; exactly one of Trace/Block/Loop is
// set (matching the item's Kind) unless Err is non-nil.
type BatchResult struct {
	Trace *TraceResult
	Block *Schedule
	Loop  *LoopSteady
	Err   error
}

// Degraded returns the degradation reason carried by the result's schedule
// ("" for a full anticipatory result, an error result, or an empty result).
func (r BatchResult) Degraded() string {
	switch {
	case r.Block != nil:
		return r.Block.Degraded
	case r.Trace != nil && r.Trace.S != nil:
		return r.Trace.S.Degraded
	case r.Loop != nil && r.Loop.S != nil:
		return r.Loop.S.Degraded
	}
	return ""
}

// scheduleOne dispatches one batch item to the matching Ctx entry point.
func (sc *Scheduler) scheduleOne(ctx context.Context, it BatchItem) (r BatchResult) {
	switch {
	case it.G == nil || it.M == nil:
		r.Err = fmt.Errorf("aisched: batch item needs a graph and a machine")
	case it.Kind == BatchTrace:
		r.Trace, r.Err = sc.ScheduleTraceCtx(ctx, it.G, it.M)
	case it.Kind == BatchBlock:
		r.Block, r.Err = sc.ScheduleBlockCtx(ctx, it.G, it.M)
	case it.Kind == BatchLoop:
		r.Loop, r.Err = sc.ScheduleLoopCtx(ctx, it.G, it.M)
	default:
		r.Err = fmt.Errorf("aisched: unknown batch kind %d", it.Kind)
	}
	return r
}

// batchOne is the per-item worker body: items picked up after cancellation
// are drained immediately with ctx.Err() instead of being scheduled, and a
// panic anywhere in the item's scheduling (including injected faults) is
// converted into a per-item error so one poisoned item never kills the whole
// batch. submitted is when the batch was submitted; pickup-minus-submit is
// the item's queue wait.
func (sc *Scheduler) batchOne(ctx context.Context, it BatchItem, submitted time.Time) (r BatchResult) {
	mQueueWaitNS.Observe(int64(time.Since(submitted)))
	mBatchItems.Inc()
	mWorkersBusy.Inc()
	defer func() {
		mWorkersBusy.Dec()
		if p := recover(); p != nil {
			mBatchPanics.Inc()
			r = BatchResult{Err: fmt.Errorf("aisched: scheduling panicked: %v", p)}
		}
	}()
	if err := ctx.Err(); err != nil {
		mCancelled.Inc()
		sc.emitRobust(obs.KindCancel, err.Error())
		return BatchResult{Err: err}
	}
	if h := faultinject.WorkerStart; h != nil {
		h()
	}
	return sc.scheduleOne(ctx, it)
}

// ScheduleBatch schedules every item on a bounded worker pool and returns
// the results in input order. Duplicate items (same fingerprint) are
// computed once: concurrent duplicates coalesce on the cache's in-flight
// table, later ones hit the memo. One item's failure never affects the
// others; check each BatchResult.Err.
func (sc *Scheduler) ScheduleBatch(items []BatchItem) []BatchResult {
	return sc.ScheduleBatchCtx(context.Background(), items)
}

// ScheduleBatchCtx is ScheduleBatch with cooperative cancellation: when ctx
// is cancelled mid-flight, in-progress items return ctx.Err() within one
// checkpoint interval and not-yet-started items are drained without being
// scheduled, so every result is either complete or carries a context error —
// never partial.
func (sc *Scheduler) ScheduleBatchCtx(ctx context.Context, items []BatchItem) []BatchResult {
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	submitted := time.Now()
	workers := sc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i := range items {
			results[i] = sc.batchOne(ctx, items[i], submitted)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				// Indexed write: no ordering coordination needed, results
				// land in input order by construction.
				results[i] = sc.batchOne(ctx, items[i], submitted)
			}
		}()
	}
	wg.Wait()
	return results
}

// ProgramTrace is one scheduled trace of a compiled program.
type ProgramTrace struct {
	// Blocks are the CFG block indices that contributed instructions, in
	// trace order; the trace graph's block index b corresponds to Blocks[b].
	Blocks []int
	// G is the trace's dependence graph (cross-block deps included).
	G *Graph
	// Res is the anticipatory schedule of the trace.
	Res *TraceResult
}

// ProgramSchedule is ScheduleProgram's output: every trace of the program,
// in trace-selection order (heaviest first).
type ProgramSchedule struct {
	Traces []ProgramTrace
}

// ScheduleProgram compiles nothing itself — it takes a compiled mini-C
// program, builds its CFG, selects traces (Fisher's heuristic, heaviest
// seed first), builds each trace's dependence graph, and schedules all
// traces through ScheduleBatch. Hot blocks repeated across programs hit the
// schedule cache.
func (sc *Scheduler) ScheduleProgram(c *CompiledC, m *Machine) (*ProgramSchedule, error) {
	return sc.ScheduleProgramCtx(context.Background(), c, m)
}

// ScheduleProgramCtx is ScheduleProgram with cooperative cancellation
// threaded through the batch pipeline.
func (sc *Scheduler) ScheduleProgramCtx(ctx context.Context, c *CompiledC, m *Machine) (*ProgramSchedule, error) {
	cg, err := cfg.FromCompiled(c)
	if err != nil {
		return nil, err
	}
	traces := cg.SelectTraces()
	ps := &ProgramSchedule{Traces: make([]ProgramTrace, 0, len(traces))}
	items := make([]BatchItem, 0, len(traces))
	for _, tr := range traces {
		// TraceInstrs skips empty blocks, so record the block indices that
		// actually landed in the graph (graph block b = kept[b]).
		var kept []int
		var instrs [][]Instr
		for _, bi := range tr {
			if bs := cg.Blocks[bi].Instrs; len(bs) > 0 {
				kept = append(kept, bi)
				instrs = append(instrs, bs)
			}
		}
		g := deps.BuildTrace(instrs)
		ps.Traces = append(ps.Traces, ProgramTrace{Blocks: kept, G: g})
		items = append(items, BatchItem{G: g, M: m, Kind: BatchTrace})
	}
	for i, r := range sc.ScheduleBatchCtx(ctx, items) {
		if r.Err != nil {
			return nil, fmt.Errorf("aisched: trace %d: %w", i, r.Err)
		}
		ps.Traces[i].Res = r.Trace
	}
	return ps, nil
}

// ScheduleBatch schedules items on a default Scheduler (fresh cache,
// GOMAXPROCS workers) and returns results in input order.
func ScheduleBatch(items []BatchItem) []BatchResult {
	return NewScheduler(SchedulerOptions{}).ScheduleBatch(items)
}

// ScheduleBatchCtx schedules items on a default Scheduler with cooperative
// cancellation.
func ScheduleBatchCtx(ctx context.Context, items []BatchItem) []BatchResult {
	return NewScheduler(SchedulerOptions{}).ScheduleBatchCtx(ctx, items)
}

// ScheduleProgram schedules every trace of a compiled program on a default
// Scheduler.
func ScheduleProgram(c *CompiledC, m *Machine) (*ProgramSchedule, error) {
	return NewScheduler(SchedulerOptions{}).ScheduleProgram(c, m)
}

// ScheduleProgramCtx schedules every trace of a compiled program on a
// default Scheduler with cooperative cancellation.
func ScheduleProgramCtx(ctx context.Context, c *CompiledC, m *Machine) (*ProgramSchedule, error) {
	return NewScheduler(SchedulerOptions{}).ScheduleProgramCtx(ctx, c, m)
}

package aisched

import (
	"strings"
	"testing"
)

func TestPublicScheduleBlock(t *testing.T) {
	g := NewGraph(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, c, 0, 0)
	m := SingleUnit(4)
	s, err := ScheduleBlock(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 4 {
		t.Fatalf("makespan = %d, want 4", s.Makespan())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTracePipeline(t *testing.T) {
	// Two blocks; block 1 depends on block 0 output with latency.
	g := NewGraph(4)
	a := g.AddNode("a", 1, 0, 0)
	b := g.AddNode("b", 1, 0, 0)
	z := g.AddNode("z", 1, 0, 1)
	q := g.AddNode("q", 1, 0, 1)
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(a, z, 1, 0)
	g.MustEdge(z, q, 1, 0)
	m := SingleUnit(2)
	res, err := ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateTrace(g, m, res.StaticOrder())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Completion != res.Makespan() {
		t.Fatalf("simulated %d != predicted %d", sim.Completion, res.Makespan())
	}
	if err := CheckLegal(res.S, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCompileAndScheduleLoop(t *testing.T) {
	src := `
int x[10];
int y[10];
int i;
for (i = 1; x[i] != 0; i = i + 1) {
	y[i] = y[i-1] * x[i];
}
`
	c, err := CompileC(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Loops) != 1 {
		t.Fatalf("loops = %d", len(c.Loops))
	}
	body := c.Body(c.Loops[0])
	g := BuildLoopGraph(body)
	m := SingleUnit(8)
	st, err := ScheduleLoop(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.II < 1 || st.Makespan < len(body) {
		t.Fatalf("steady state II=%d makespan=%d", st.II, st.Makespan)
	}
	dyn, err := LoopSteadyState(g, m, st.Order, SimOptions{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if dyn <= 0 {
		t.Fatalf("dynamic steady state %f", dyn)
	}
}

func TestPublicParseAsmAndSimulateLoop(t *testing.T) {
	blocks, err := ParseAsm(`
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.1
`)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildLoopGraph(blocks[0].Instrs)
	m := SingleUnit(4)
	order := make([]NodeID, g.Len())
	for i := range order {
		order[i] = NodeID(i)
	}
	res, err := SimulateLoop(g, m, order, 10, SimOptions{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion < 10 {
		t.Fatalf("completion = %d", res.Completion)
	}
}

func TestPublicPipelineThenAnticipate(t *testing.T) {
	blocks, err := ParseAsm(`
L:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, L
`)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildLoopGraph(blocks[0].Instrs)
	m := SingleUnit(4)
	st, k, err := PipelineThenAnticipate(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if k.II < 5 {
		t.Fatalf("kernel II = %d, want ≥ 5 (multiply recurrence)", k.II)
	}
	if st.II < 5 {
		t.Fatalf("post-pass II = %d", st.II)
	}
}

func TestPublicEvaluateLoopOrder(t *testing.T) {
	g := NewGraph(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, a, 2, 1)
	st, err := EvaluateLoopOrder(g, SingleUnit(2), []NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// carried b→a <2,1>: II ≥ σ(b)+1+2−σ(a) = 4.
	if st.II != 4 {
		t.Fatalf("II = %d, want 4", st.II)
	}
	if st.CompletionN(3) != st.Makespan+2*st.II {
		t.Fatal("CompletionN arithmetic wrong")
	}
}

func TestPublicDocExampleCompiles(t *testing.T) {
	// Mirror of the package-comment quick start.
	g := NewGraph(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, c, 0, 0)
	m := SingleUnit(4)
	s, err := ScheduleBlock(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "a") {
		t.Fatal("schedule rendering empty")
	}
}

package graph

import (
	"math/rand"
	"testing"
)

func sumWords(seed uint64, words []uint64) Hash128 {
	var h Hasher
	h.Reset(seed)
	for _, w := range words {
		h.Word(w)
	}
	return h.Sum()
}

func TestHasherDeterministic(t *testing.T) {
	words := []uint64{1, 2, 3, 0, ^uint64(0), 42}
	if sumWords(7, words) != sumWords(7, words) {
		t.Fatal("same seed and words produced different sums")
	}
	if sumWords(7, words) == sumWords(8, words) {
		t.Fatal("different seeds produced the same sum")
	}
}

func TestHasherOrderAndLengthSensitive(t *testing.T) {
	a := sumWords(0, []uint64{1, 2})
	b := sumWords(0, []uint64{2, 1})
	if a == b {
		t.Fatal("swapped words produced the same sum")
	}
	// A prefix must never collide with its extension (length folding).
	if sumWords(0, []uint64{1, 2}) == sumWords(0, []uint64{1, 2, 0}) {
		t.Fatal("zero-extension produced the same sum")
	}
	if sumWords(0, nil) == sumWords(0, []uint64{0}) {
		t.Fatal("empty input collides with a single zero word")
	}
}

func TestHasherSumIsNondestructive(t *testing.T) {
	var h Hasher
	h.Reset(3)
	h.Word(10)
	s1 := h.Sum()
	if s2 := h.Sum(); s1 != s2 {
		t.Fatal("Sum changed the state")
	}
	h.Word(11)
	if s3 := h.Sum(); s3 == s1 {
		t.Fatal("absorbing after Sum had no effect")
	}
}

// TestHasherDistribution feeds the hasher the kind of structured,
// low-entropy input the step key is built from (small ints, shared
// prefixes, single-field deltas) and checks for collisions and gross
// output bias. 128-bit uniform output makes any collision here a bug.
func TestHasherDistribution(t *testing.T) {
	seen := make(map[Hash128]bool)
	var buckets [64]int
	add := func(s Hash128) {
		if seen[s] {
			t.Fatalf("collision on structured input: %x/%x", s.Hi, s.Lo)
		}
		seen[s] = true
		buckets[s.Lo&63]++
	}
	// Single-field deltas over a common shape.
	base := []uint64{5, 3, 17, 0, 1, 2, 9}
	for pos := range base {
		for delta := uint64(1); delta <= 64; delta++ {
			w := append([]uint64(nil), base...)
			w[pos] += delta
			add(sumWords(1, w))
		}
	}
	// Random small-int sequences of varying length (step keys are short
	// runs of small numbers).
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := 1 + r.Intn(12)
		w := make([]uint64, n)
		for j := range w {
			w[j] = uint64(r.Intn(16))
		}
		// Dedup by content: identical sequences legitimately collide.
		key := sumWords(0xdead, w) // independent seed as content identity
		if seen[key] {
			continue
		}
		seen[key] = true
		buckets[sumWords(1, w).Lo&63]++
	}
	total := 0
	for _, c := range buckets {
		total += c
	}
	mean := float64(total) / 64
	for b, c := range buckets {
		if f := float64(c); f < mean/2 || f > mean*2 {
			t.Fatalf("bucket %d holds %d of %d (mean %.1f): output is biased", b, c, total, mean)
		}
	}
}

// BenchmarkStepHashVsFingerprint quantifies why the step-key path gets its
// own hash: the same content through the streaming word hasher vs the
// canonicalizing SHA-256 Fingerprint. The step cache rebuilds its key every
// merge iteration, so this gap is paid per block.
func BenchmarkStepHashVsFingerprint(b *testing.B) {
	// A representative merge view: ~24 nodes, ~40 edges.
	g := New(24)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 24; i++ {
		g.AddNode("n", 1, 0, i/6)
	}
	edges := 0
	for edges < 40 {
		s, d := r.Intn(24), r.Intn(24)
		if s < d && g.AddEdge(NodeID(s), NodeID(d), r.Intn(2), 0) == nil {
			edges++
		}
	}
	units := []int{1}

	b.Run("Fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Fingerprint(units, 4)
		}
	})
	b.Run("Hasher", func(b *testing.B) {
		b.ReportAllocs()
		var h Hasher
		for i := 0; i < b.N; i++ {
			h.Reset(4)
			for v := 0; v < g.Len(); v++ {
				nd := g.Node(NodeID(v))
				h.Int(nd.Exec)
				h.Int(nd.Class)
				h.Int(nd.Block)
				for _, e := range g.Out(NodeID(v)) {
					h.Int(int(e.Dst))
					h.Int(e.Latency)
				}
			}
			_ = h.Sum()
		}
	})
}

package core

// Speculative parallel trace scheduling: fingerprint-verified segment
// speculation plus a pipelined per-block precompute stage.
//
// Algorithm Lookahead is inherently sequential — block i's merge consumes
// the carried suffix emitted by block i−1 — so single-trace latency scales
// linearly with trace length on one core no matter how fast the per-block
// step gets. This file breaks that chain for long traces without giving up
// bit-identical output:
//
//  1. A parallel precompute stage builds the per-block artifacts that
//     depend only on the block, never on the carried suffix — the block
//     group table (contiguous node ranges), a relocatable 128-bit content
//     hash per block (exec/class/intra-edges in block-local IDs, the same
//     structural identity the step cache keys on), and baseline per-block
//     ranks (an intra-block longest-path relaxation) whose depth/size ratio
//     scores how "barrier-like" a block is — across GOMAXPROCS workers
//     before the merge walk starts.
//
//  2. The trace is partitioned into segments at candidate cut points
//     chosen at barrier-scored blocks. Each speculative worker schedules
//     its segment under an ASSUMED carried-suffix state and zero release
//     floors: lane A starts from the empty suffix a couple of blocks early
//     (warm-up blocks whose output is discarded — at a natural barrier the
//     carried state converges to a history-independent, frame-relative
//     pattern by the time the worker reaches its cut); lane B, when the
//     step cache holds a join hint for a structurally identical cut
//     neighborhood (repetitive traces), seeds the suffix state — including
//     the step cache's stored suffix fingerprint — directly from the hint
//     and skips the warm-up.
//
//  3. At each join the driver verifies the speculation in O(suffix +
//     cross-cut floors), which is O(1) per block: the actual carried-suffix
//     structural fingerprint (node identities, frame-relative deadlines and
//     finish times, clamped release floors, carried makespan) must equal
//     the worker's assumed entry fingerprint, and the release floors owed
//     to the segment's nodes must agree after rebasing (sched.ReleasesEqual
//     — floors at or below the frame base are inert on both sides because
//     Step.Run clamps them to zero and the step key hashes only positive
//     floors). On a match the speculated fragments are accepted wholesale:
//     by the same purity argument that gates Step.RunMemo, identical view
//     content + identical frame-relative carried state + identical clamped
//     floors make every subsequent StepIn — and therefore every StepOut —
//     bit-identical, so the worker's committed placements are the sequential
//     walk's placements shifted by one uniform time delta. On a mismatch the
//     driver recomputes the segment sequentially from its true state (the
//     worker's step-cache insertions still make that recompute cheap).
//
// The parallel path engages only where it is provably transparent: no
// custom Tie (the walk assumes the identity tie-break), no Tracer (workers
// emit no events and event order would be meaningless), no Budget
// (speculative passes must not charge a request's rank-pass budget, and a
// cancellable request keeps the fully-checkpointed sequential path), and
// node IDs grouped by block in ascending order (segments are contiguous ID
// ranges — the same canonical-layout property the step cache requires).
// Everything else falls through to the sequential walk unchanged.

import (
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"

	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/metrics"
	"aisched/internal/sched"
)

// Speculation telemetry: always-on process-wide counters, exported through
// internal/metrics like every other engine counter. SpecCounters snapshots
// them for the CLI's per-run printout.
var (
	mSpecRuns = metrics.Default.NewCounter("aisched_spec_runs_total",
		"ScheduleTrace calls that took the speculative parallel path")
	mSpecSegments = metrics.Default.NewCounter("aisched_spec_segments_total",
		"trace segments scheduled speculatively by parallel workers")
	mSpecHits = metrics.Default.NewCounter("aisched_spec_hits_total",
		"speculated segments whose assumed entry state verified at the join (accepted wholesale)")
	mSpecMisses = metrics.Default.NewCounter("aisched_spec_misses_total",
		"speculated segments rejected at the join (entry state mismatch; recomputed sequentially)")
	mSpecFallbackBlocks = metrics.Default.NewCounter("aisched_spec_fallback_blocks_total",
		"blocks recomputed sequentially after a rejected speculation")
	mSpecLaneB = metrics.Default.NewCounter("aisched_spec_laneb_total",
		"speculative segments seeded from a stored join hint (repetitive-trace lane)")
)

// SpecStats is a snapshot of the speculative trace scheduler's process-wide
// counters (see SpecCounters).
type SpecStats struct {
	// Runs counts ScheduleTrace calls that took the parallel path.
	Runs uint64
	// Segments counts speculatively scheduled segments; Hits of them
	// verified at the join and were accepted wholesale, Misses were
	// rejected and recomputed (FallbackBlocks blocks in total).
	Segments, Hits, Misses, FallbackBlocks uint64
	// LaneB counts segments seeded from a stored join hint instead of the
	// cold warm-up lane.
	LaneB uint64
}

// SpecCounters snapshots the speculation counters. They are process-wide
// (metrics.Default), so callers wanting per-run numbers diff two snapshots.
func SpecCounters() SpecStats {
	return SpecStats{
		Runs:           mSpecRuns.Value(),
		Segments:       mSpecSegments.Value(),
		Hits:           mSpecHits.Value(),
		Misses:         mSpecMisses.Value(),
		FallbackBlocks: mSpecFallbackBlocks.Value(),
		LaneB:          mSpecLaneB.Value(),
	}
}

// Hash seeds for the speculation hash domains, disjoint from the step-cache
// seeds in stepcache.go by construction.
const (
	// specFPSeed seeds the carried-suffix state fingerprint compared at
	// every join.
	specFPSeed = 0x51e9cafe03
	// blockHashSeed seeds the per-block content hash of the precompute
	// stage.
	blockHashSeed = 0x51e9cafe04
	// hintKeySeed seeds the cut-neighborhood key of the join-hint table.
	hintKeySeed = 0x51e9cafe05
)

// Parallel-path tuning. The auto thresholds are deliberately conservative:
// below ~a hundred blocks the sequential walk finishes in tens of
// microseconds and goroutine fan-out is pure overhead (and the facade's
// benchmark workloads stay deterministically on the sequential path).
const (
	// parAutoMinGroups is the minimum block count for the auto (Parallel=0)
	// path.
	parAutoMinGroups = 96
	// parAutoGroupsPerSeg is the target segment length for auto partitioning.
	parAutoGroupsPerSeg = 32
	// parForcedMinGroups is the minimum block count when a worker count is
	// forced (Parallel>0) — tests use small traces to cover every width.
	parForcedMinGroups = 4
	// specWarmupGroups is lane A's warm-up: how many blocks before its cut a
	// worker starts merging from the empty suffix so the carried state can
	// converge before the segment proper begins.
	specWarmupGroups = 2
	// hintBackGroups / hintFwdGroups bound how far a join hint's suffix
	// nodes (backward) and entry floors (forward) may reach from the cut;
	// joins whose state reaches further are simply not stored.
	hintBackGroups = 4
	hintFwdGroups  = 4
	// hintMaxEntries bounds the join-hint table.
	hintMaxEntries = 1024
	// hintMaxSuffix / hintMaxFloors bound one hint's payload.
	hintMaxSuffix = 512
	hintMaxFloors = 128
	// hintMaxVal guards the int32 packing of hint payloads.
	hintMaxVal = 1 << 30
)

// blockGroups is the precompute stage's output: the trace's blocks as
// contiguous node ranges plus the per-block artifacts that depend only on
// the block.
type blockGroups struct {
	off       []int   // group g's nodes are IDs [off[g], off[g+1])
	blk       []int   // group g's block index
	nodeGroup []int32 // group index per node, dense by node ID

	hash  []graph.Hash128 // relocatable per-block content hash
	score []int64         // barrier score (higher = better cut-before point)
}

func (gr *blockGroups) ngroups() int { return len(gr.blk) }

// buildGroups scans the CSR's block assignment and returns the contiguous
// group table, or nil when node IDs are not grouped by block in ascending
// order (the parallel path's canonical-layout requirement).
func buildGroups(csr *graph.CSR) *blockGroups {
	n := csr.Len()
	gr := &blockGroups{nodeGroup: make([]int32, n)}
	prev := csr.Block(0)
	gr.off = append(gr.off, 0)
	gr.blk = append(gr.blk, prev)
	for v := 1; v < n; v++ {
		b := csr.Block(graph.NodeID(v))
		if b < prev {
			return nil
		}
		if b > prev {
			gr.off = append(gr.off, v)
			gr.blk = append(gr.blk, b)
			prev = b
		}
		gr.nodeGroup[v] = int32(len(gr.blk) - 1)
	}
	gr.off = append(gr.off, n)
	return gr
}

// precompute fills the per-block artifacts — content hash, baseline ranks'
// critical path, barrier score — fanning the blocks over GOMAXPROCS
// goroutines. Everything computed here depends only on the block itself, so
// the stage needs no coordination beyond an atomic work counter.
func (gr *blockGroups) precompute(view graph.AdjView) {
	ng := gr.ngroups()
	gr.hash = make([]graph.Hash128, ng)
	gr.score = make([]int64, ng)
	nw := runtime.GOMAXPROCS(0)
	if nw > ng {
		nw = ng
	}
	if nw < 1 {
		nw = 1
	}
	var next atomic.Int64
	done := make(chan struct{}, nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var h graph.Hasher
			var rankBuf []int
			for {
				g := int(next.Add(1)) - 1
				if g >= ng {
					return
				}
				gr.hash[g], gr.score[g], rankBuf = precomputeGroup(view, gr.off[g], gr.off[g+1], &h, rankBuf)
			}
		}()
	}
	for w := 0; w < nw; w++ {
		<-done
	}
}

// precomputeGroup computes one block's content hash, baseline ranks, and
// barrier score. The hash covers node attributes and edges in block-local
// IDs (edges into following blocks as local source + forward offset), so
// structurally identical blocks at different trace positions hash equal —
// the same relocatability discipline as the step cache. The baseline rank
// of a node is its longest latency path from a block source (a forward
// relaxation over ascending IDs — exact for the generators' low-to-high
// edges, a fine heuristic otherwise, since scores only steer cut placement
// and never affect correctness); the barrier score prefers blocks whose
// critical path dominates their work (serial latency chains force a
// history-independent carried tail) and penalizes edges escaping the block
// (they become release floors that speculation must guess).
func precomputeGroup(view graph.AdjView, lo, hi int, h *graph.Hasher, rankBuf []int) (graph.Hash128, int64, []int) {
	size := hi - lo
	h.Reset(blockHashSeed)
	h.Int(size)
	for v := lo; v < hi; v++ {
		h.Int(int(view.Exec[v]))
		h.Int(int(view.Class[v]))
	}
	rankBuf = growSlice(rankBuf, size)
	ranks := rankBuf
	clear(ranks)
	cycles := 0
	depth := 0
	crossOut := 0
	for v := lo; v < hi; v++ {
		exec := int(view.Exec[v])
		cycles += exec
		if f := ranks[v-lo] + exec; f > depth {
			depth = f
		}
		for ei := view.Off[v]; ei < view.Off[v+1]; ei++ {
			dst := int(view.Dst[ei])
			lat := int(view.Lat[ei])
			switch {
			case dst >= lo && dst < hi:
				h.Int(v - lo)
				h.Int(dst - lo)
				h.Int(lat)
				if r := ranks[v-lo] + exec + lat; r > ranks[dst-lo] {
					ranks[dst-lo] = r
				}
			case dst >= hi:
				h.Int(v - lo)
				h.Int(-(dst - hi) - 1) // forward offset, kept disjoint from local IDs
				h.Int(lat)
				crossOut++
			default: // backward cross edge: structure only, not relocatable
				h.Int(v - lo)
				h.Int(-hintMaxVal)
				h.Int(lat)
				crossOut++
			}
		}
	}
	if cycles < 1 {
		cycles = 1
	}
	score := int64(depth)*1024/int64(cycles) - 512*int64(crossOut)
	return h.Sum(), score, rankBuf
}

// parPlan is one parallel run's partition: the group table and the cut
// points (group indices; segment k is groups [cuts[k], cuts[k+1])).
type parPlan struct {
	groups *blockGroups
	cuts   []int
}

// parallelPlan decides whether the parallel path applies and, if so, builds
// the partition. Returns nil to keep the sequential walk. The gates are
// ordered cheapest-first so the common small-trace call pays one integer
// compare and nothing else.
func parallelPlan(csr *graph.CSR, opt *Options) *parPlan {
	minGroups := parAutoMinGroups
	if opt.Parallel > 0 {
		minGroups = parForcedMinGroups
	}
	if opt.Parallel < 0 || csr.Len() < minGroups {
		return nil
	}
	if opt.Tie != nil || opt.Tracer != nil || opt.Budget != nil {
		return nil
	}
	procs := runtime.GOMAXPROCS(0)
	if opt.Parallel == 0 && procs < 2 {
		return nil
	}
	gr := buildGroups(csr)
	if gr == nil || gr.ngroups() < minGroups {
		return nil
	}
	ng := gr.ngroups()
	nseg := procs
	if opt.Parallel > 0 {
		nseg = opt.Parallel
		if max := ng / 2; nseg > max {
			nseg = max
		}
	} else if max := ng / parAutoGroupsPerSeg; nseg > max {
		nseg = max
	}
	if nseg < 2 {
		return nil
	}
	gr.precompute(csr.View())
	cuts := chooseCuts(gr, nseg)
	if len(cuts) < 3 {
		return nil
	}
	return &parPlan{groups: gr, cuts: cuts}
}

// chooseCuts places nseg−1 cut points: each starts at the equal-partition
// boundary and snaps within a small window to the group with the best
// barrier score, so segments begin right after the most barrier-like block
// nearby. Returned as [0, c_1, …, ng]; degenerate windows drop their cut.
func chooseCuts(gr *blockGroups, nseg int) []int {
	ng := gr.ngroups()
	snap := ng / (4 * nseg)
	if snap > 8 {
		snap = 8
	}
	cuts := make([]int, 0, nseg+1)
	cuts = append(cuts, 0)
	for i := 1; i < nseg; i++ {
		ideal := i * ng / nseg
		lo, hi := ideal-snap, ideal+snap
		if min := cuts[len(cuts)-1] + 2; lo < min {
			lo = min
		}
		if hi > ng-2 {
			hi = ng - 2
		}
		if lo > hi {
			continue
		}
		best := lo
		for c := lo + 1; c <= hi; c++ {
			// The barrier block is the one immediately before the cut.
			if gr.score[c-1] > gr.score[best-1] {
				best = c
			}
		}
		cuts = append(cuts, best)
	}
	cuts = append(cuts, ng)
	return cuts
}

// floorWrite is one logged release-floor update (absolute value in the
// writer's own frame); the splice replays the log into the driver's state
// shifted by the join delta.
type floorWrite struct {
	dst graph.NodeID
	r   int
}

// traceWalk is the reusable merge-walk engine extracted from the sequential
// LookaheadOpts loop: per-block merge + delay + chop over block groups,
// carrying the suffix state between blocks. The driver and every
// speculative worker run the same walk over different group ranges and
// entry states; LookaheadOpts's own loop stays the allocation-pinned
// sequential twin (the differential tests hold the two bit-identical).
type traceWalk struct {
	scratch *laScratch
	csr     *graph.CSR
	gview   graph.AdjView
	m       *machine.Machine
	sc      *StepCache
	skip    bool
	groups  *blockGroups

	absStart []int
	absUnit  []int
	dOld     []int
	fOld     []int
	relAbs   []int

	emitted   []graph.NodeID
	oldIDs    []graph.NodeID
	plusOrder []graph.NodeID
	maxOld    graph.NodeID

	oldMakespan int
	timeBase    int

	logFloors bool
	floorLog  []floorWrite
}

// init binds the walk to a pooled scratch and resets it to the empty entry
// state (no suffix, zero floors, time base zero).
func (w *traceWalk) init(csr *graph.CSR, m *machine.Machine, opt *Options, gr *blockGroups, scratch *laScratch) {
	n := csr.Len()
	scratch.grow(n)
	w.scratch, w.csr, w.m = scratch, csr, m
	w.sc, w.skip, w.groups = opt.StepCache, opt.SkipDelay, gr
	w.gview = csr.View()
	byBlock := scratch.byBlock[:n]
	for i := range byBlock {
		byBlock[i] = graph.NodeID(i)
	}
	w.absStart = scratch.absStart[:n]
	w.absUnit = scratch.absUnit[:n]
	for i := range w.absStart {
		w.absStart[i] = sched.Unassigned
		w.absUnit[i] = sched.Unassigned
	}
	w.dOld = scratch.dOld[:n]
	w.fOld = scratch.fOld[:n]
	w.relAbs = scratch.relAbs[:n]
	clear(w.relAbs)
	w.emitted = scratch.emitted[:0]
	w.oldIDs = scratch.oldIDs[:0]
	w.plusOrder = scratch.plusOrder[:0]
	w.maxOld = graph.NodeID(-1)
	w.oldMakespan = 0
	w.timeBase = 0
	w.logFloors = false
	w.floorLog = w.floorLog[:0]
	// A pooled Step may carry a stale suffix fingerprint from its previous
	// owner; RunMemo re-establishes it at the first empty-suffix merge.
	scratch.step.suffOK = false
}

// finish returns the walk's grown buffers to the scratch for pooling.
func (w *traceWalk) finish() {
	w.scratch.emitted = w.emitted[:0]
	w.scratch.oldIDs = w.oldIDs[:0]
	w.scratch.plusOrder = w.plusOrder[:0]
}

// runGroups advances the walk over block groups [gLo, gHi) — the exact
// per-block body of LookaheadOpts with the identity tie-break and no
// budget, both guaranteed by the parallel gates.
func (w *traceWalk) runGroups(gLo, gHi int) error {
	scratch := w.scratch
	gr := w.groups
	for gi := gLo; gi < gHi; gi++ {
		newIDs := scratch.byBlock[gr.off[gi]:gr.off[gi+1]]
		ids := append(scratch.ids[:0], w.oldIDs...)
		ids = append(ids, newIDs...)
		scratch.ids = ids
		slices.Sort(ids)
		scratch.sub.Init(w.csr, ids)
		sn := scratch.sub.Len()
		view := scratch.sub.View()

		scratch.isOld = growSlice(scratch.isOld, sn)
		isOld := scratch.isOld
		clear(isOld)
		for _, id := range w.oldIDs {
			isOld[scratch.sub.ToSub(id)] = true
		}
		scratch.tie = growSlice(scratch.tie, sn)
		tie := scratch.tie
		for i := range tie {
			tie[i] = graph.NodeID(i)
		}
		scratch.dv = growSlice(scratch.dv, sn)
		scratch.fv = growSlice(scratch.fv, sn)
		scratch.rv = growSlice(scratch.rv, sn)
		rv := scratch.rv
		for si := 0; si < sn; si++ {
			if isOld[si] {
				scratch.dv[si] = w.dOld[ids[si]]
				scratch.fv[si] = w.fOld[ids[si]]
			}
			rv[si] = w.relAbs[ids[si]] - w.timeBase
		}
		scratch.stepIn = StepIn{
			View: view, M: w.m, Tie: tie, IsOld: isOld,
			DOld: scratch.dv, FOld: scratch.fv, ROld: rv,
			OldCount: len(w.oldIDs), OldMakespan: w.oldMakespan,
			Block: gr.blk[gi], SkipDelay: w.skip,
		}
		canon := len(w.oldIDs) == 0 || w.maxOld < newIDs[0]
		out, err := scratch.step.RunMemo(&scratch.stepIn, w.sc, canon)
		if err != nil {
			return err
		}
		s, d := out.S, out.D
		for _, si := range out.Minus {
			oi := ids[si]
			w.emitted = append(w.emitted, oi)
			w.absStart[oi] = s.Start[si] + w.timeBase
			w.absUnit[oi] = s.Unit[si]
			f := w.absStart[oi] + int(w.gview.Exec[oi])
			for ei := w.gview.Off[oi]; ei < w.gview.Off[oi+1]; ei++ {
				if r := f + int(w.gview.Lat[ei]); r > w.relAbs[w.gview.Dst[ei]] {
					w.relAbs[w.gview.Dst[ei]] = r
					if w.logFloors {
						w.floorLog = append(w.floorLog, floorWrite{dst: w.gview.Dst[ei], r: r})
					}
				}
			}
		}
		w.oldIDs = w.oldIDs[:0]
		w.plusOrder = w.plusOrder[:0]
		w.maxOld = graph.NodeID(-1)
		for _, si := range out.Plus {
			oi := ids[si]
			w.oldIDs = append(w.oldIDs, oi)
			if oi > w.maxOld {
				w.maxOld = oi
			}
			w.dOld[oi] = d[si] - out.Base
			w.fOld[oi] = s.Finish(si) - out.Base
			w.plusOrder = append(w.plusOrder, oi)
			w.absStart[oi] = s.Start[si] + w.timeBase
			w.absUnit[oi] = s.Unit[si]
		}
		w.oldMakespan = s.Makespan() - out.Base
		w.timeBase += out.Base
	}
	return nil
}

// stateFP fingerprints the walk's carried-suffix state in its canonical
// frame-relative form: suffix length, carried makespan, and per suffix node
// (in carry order) its identity, deadline, finish time, and clamped release
// floor. Two walks whose stateFP and segment release floors agree produce
// bit-identical continuations — the join verification's whole basis.
func (w *traceWalk) stateFP() graph.Hash128 {
	var h graph.Hasher
	h.Reset(specFPSeed)
	h.Int(len(w.plusOrder))
	h.Int(w.oldMakespan)
	for _, id := range w.plusOrder {
		h.Int(int(id))
		h.Int(w.dOld[id])
		h.Int(w.fOld[id])
		h.Int(sched.ClampRelease(w.relAbs[id], w.timeBase))
	}
	return h.Sum()
}

// specWorker is one speculative segment: a private walk over groups
// [gLo, gHi) under an assumed entry state, plus the snapshot of that
// assumption the driver verifies at the join.
type specWorker struct {
	walk    traceWalk
	scratch *laScratch
	gLo, gHi int

	entryFP  graph.Hash128
	cutBase  int
	entryRel []int // assumed absolute floors over the segment's node range

	laneB bool
	err   error
	done  chan struct{}
}

// run executes the speculation: lane B (hint-seeded) when the step cache
// knows this cut's neighborhood, lane A (empty suffix + warm-up) otherwise.
// Any panic becomes a per-segment error and a sequential recompute — one
// poisoned speculation never takes down the request.
func (wk *specWorker) run(csr *graph.CSR, m *machine.Machine, opt *Options, gr *blockGroups) {
	defer close(wk.done)
	defer func() {
		if p := recover(); p != nil {
			wk.err = fmt.Errorf("core: speculative segment panicked: %v", p)
		}
	}()
	wk.scratch = laPool.Get().(*laScratch)
	wk.walk.init(csr, m, opt, gr, wk.scratch)
	if !wk.seedFromHint() {
		gW := wk.gLo - specWarmupGroups
		if gW < 0 {
			gW = 0
		}
		if err := wk.walk.runGroups(gW, wk.gLo); err != nil {
			wk.err = err
			return
		}
	}
	// Snapshot the assumption the driver will verify: the suffix state
	// fingerprint, the frame base, and the floors assumed over the
	// segment's own nodes (warm-up commits write them; everything else is
	// zero). Then discard the warm-up output and schedule the segment.
	wk.entryFP = wk.walk.stateFP()
	wk.cutBase = wk.walk.timeBase
	lo, hi := gr.off[wk.gLo], gr.off[wk.gHi]
	wk.entryRel = append(wk.entryRel[:0], wk.walk.relAbs[lo:hi]...)
	wk.walk.emitted = wk.walk.emitted[:0]
	wk.walk.logFloors = true
	wk.err = wk.walk.runGroups(wk.gLo, wk.gHi)
}

// release returns the worker's scratch to the pool. Only called by the
// driver after the worker is done and its state fully consumed.
func (wk *specWorker) release() {
	wk.walk.finish()
	laPool.Put(wk.scratch)
	wk.scratch = nil
}

// lookaheadParallel is the speculative parallel driver: it schedules
// segment 0 itself while workers speculate segments 1..k, then joins them
// in order — verify, splice on match, recompute on mismatch — and
// assembles the same Result the sequential walk would have produced.
func lookaheadParallel(g *graph.Graph, m *machine.Machine, opt Options, csr *graph.CSR, plan *parPlan) (*Result, error) {
	mSpecRuns.Inc()
	gr := plan.groups
	nseg := len(plan.cuts) - 1

	workers := make([]*specWorker, nseg) // [0] stays nil: the driver owns segment 0
	for k := 1; k < nseg; k++ {
		wk := &specWorker{gLo: plan.cuts[k], gHi: plan.cuts[k+1], done: make(chan struct{})}
		workers[k] = wk
		go wk.run(csr, m, &opt, gr)
	}
	// Whatever happens below, every worker must finish and give its scratch
	// back before we return (they reference pooled state). The done receive
	// orders the driver's reads after all of the worker's writes.
	defer func() {
		for _, wk := range workers {
			if wk == nil {
				continue
			}
			<-wk.done
			if wk.scratch != nil {
				wk.release()
			}
		}
	}()

	scratch := laPool.Get().(*laScratch)
	defer laPool.Put(scratch)
	var drv traceWalk
	drv.init(csr, m, &opt, gr, scratch)
	if err := drv.runGroups(plan.cuts[0], plan.cuts[1]); err != nil {
		return nil, err
	}

	for k := 1; k < nseg; k++ {
		wk := workers[k]
		<-wk.done
		mSpecSegments.Inc()
		if wk.laneB {
			mSpecLaneB.Inc()
		}
		// The driver's state at this cut is ground truth: remember it as a
		// join hint so a structurally identical cut (same trace again, or a
		// repeated region) can seed lane B next time.
		if opt.StepCache != nil {
			opt.StepCache.putHint(&drv, gr, wk.gLo, wk.gHi)
		}
		accept := wk.err == nil
		if accept {
			if h := faultinject.SpecVerify; h != nil && h() {
				accept = false
			}
		}
		if accept {
			lo, hi := gr.off[wk.gLo], gr.off[wk.gHi]
			accept = drv.stateFP() == wk.entryFP &&
				sched.ReleasesEqual(drv.relAbs[lo:hi], drv.timeBase, wk.entryRel, wk.cutBase)
		}
		if accept {
			mSpecHits.Inc()
			drv.splice(wk)
		} else {
			mSpecMisses.Inc()
			mSpecFallbackBlocks.Add(uint64(wk.gHi - wk.gLo))
			if err := drv.runGroups(wk.gLo, wk.gHi); err != nil {
				return nil, err
			}
		}
		wk.release()
		workers[k] = nil
	}

	drv.emitted = append(drv.emitted, drv.plusOrder...)
	drv.finish()
	return assembleResult(g, m, csr, scratch, drv.emitted, drv.absStart, drv.absUnit)
}

// splice accepts a verified speculation wholesale: the worker's committed
// placements land shifted by the uniform join delta, its floor-write log
// max-merges into the driver's floors, and the driver adopts the worker's
// exit state (suffix, frame base, and the step cache's carried suffix
// fingerprint) as its own.
func (drv *traceWalk) splice(wk *specWorker) {
	w := &wk.walk
	delta := drv.timeBase - wk.cutBase
	for _, v := range w.emitted {
		drv.absStart[v] = w.absStart[v] + delta
		drv.absUnit[v] = w.absUnit[v]
	}
	drv.emitted = append(drv.emitted, w.emitted...)
	drv.oldIDs = append(drv.oldIDs[:0], w.oldIDs...)
	drv.plusOrder = append(drv.plusOrder[:0], w.plusOrder...)
	drv.maxOld = w.maxOld
	drv.oldMakespan = w.oldMakespan
	for _, id := range w.plusOrder {
		drv.dOld[id] = w.dOld[id]
		drv.fOld[id] = w.fOld[id]
		drv.absStart[id] = w.absStart[id] + delta
		drv.absUnit[id] = w.absUnit[id]
	}
	for _, fw := range w.floorLog {
		if r := fw.r + delta; r > drv.relAbs[fw.dst] {
			drv.relAbs[fw.dst] = r
		}
	}
	drv.timeBase = w.timeBase + delta
	drv.scratch.step.suffFP = w.scratch.step.suffFP
	drv.scratch.step.suffOK = w.scratch.step.suffOK
}

// ---- join hints (lane B) ----

// specHint is a block-relative snapshot of the carried state observed at a
// segment cut: the suffix (in carry order) as (blocks-back, index-in-block)
// plus frame-relative deadline/finish/floor, the carried makespan, the step
// cache's suffix fingerprint at the cut, and the positive entry floors owed
// to the next blocks. Everything is relative to the cut, so the hint
// relocates to any cut whose neighborhood hashes identically.
type specHint struct {
	suffix      []hintNode
	floors      []hintFloor
	oldMakespan int32
	suffFP      graph.Hash128
	suffOK      bool
}

type hintNode struct{ back, idx, d, f, rel int32 }

type hintFloor struct{ fwd, idx, rel int32 }

// hintKey hashes a cut's structural neighborhood — the machine shape plus
// the content hashes of the blocks around the cut — into the join-hint
// table key.
func hintKey(gr *blockGroups, c int, m *machine.Machine) graph.Hash128 {
	var h graph.Hasher
	h.Reset(hintKeySeed)
	h.Int(m.Window)
	h.Int(len(m.Units))
	for _, u := range m.Units {
		h.Int(u)
	}
	back := hintBackGroups
	if c < back {
		back = c
	}
	h.Int(back)
	for g := c - back; g < c; g++ {
		h.Hash128(gr.hash[g])
	}
	fwd := hintFwdGroups
	if c+fwd > gr.ngroups() {
		fwd = gr.ngroups() - c
	}
	h.Int(fwd)
	for g := c; g < c+fwd; g++ {
		h.Hash128(gr.hash[g])
	}
	return h.Sum()
}

// putHint stores the driver's actual state at cut c as a join hint, when it
// is representable: suffix within hintBackGroups of the cut, positive entry
// floors within hintFwdGroups (none beyond, out to the segment end at gHi),
// and every value int32-packable. Unrepresentable joins are simply skipped.
func (sc *StepCache) putHint(drv *traceWalk, gr *blockGroups, c, gHi int) {
	if len(drv.plusOrder) > hintMaxSuffix || c < 1 {
		return
	}
	h := &specHint{
		suffix:      make([]hintNode, 0, len(drv.plusOrder)),
		oldMakespan: int32(drv.oldMakespan),
		suffFP:      drv.scratch.step.suffFP,
		suffOK:      drv.scratch.step.suffOK,
	}
	if drv.oldMakespan >= hintMaxVal {
		return
	}
	for _, id := range drv.plusOrder {
		gidx := int(gr.nodeGroup[id])
		back := c - 1 - gidx
		if back < 0 || back >= hintBackGroups {
			return
		}
		d, f := drv.dOld[id], drv.fOld[id]
		rel := sched.ClampRelease(drv.relAbs[id], drv.timeBase)
		if d >= hintMaxVal || d <= -hintMaxVal || f >= hintMaxVal || f <= -hintMaxVal || rel >= hintMaxVal {
			return
		}
		h.suffix = append(h.suffix, hintNode{
			back: int32(back), idx: int32(int(id) - gr.off[gidx]),
			d: int32(d), f: int32(f), rel: int32(rel),
		})
	}
	fwdEnd := c + hintFwdGroups
	if fwdEnd > gHi {
		fwdEnd = gHi
	}
	for v := gr.off[c]; v < gr.off[gHi]; v++ {
		rel := sched.ClampRelease(drv.relAbs[v], drv.timeBase)
		if rel == 0 {
			continue
		}
		gidx := int(gr.nodeGroup[v])
		if gidx >= fwdEnd || len(h.floors) >= hintMaxFloors || rel >= hintMaxVal {
			return // floors the relocated hint could not reproduce
		}
		h.floors = append(h.floors, hintFloor{
			fwd: int32(gidx - c), idx: int32(v - gr.off[gidx]), rel: int32(rel),
		})
	}
	key := hintKey(gr, c, drv.m)
	sc.hintMu.Lock()
	if sc.hints == nil {
		sc.hints = make(map[graph.Hash128]*specHint, 64)
	}
	if len(sc.hints) >= hintMaxEntries {
		for k := range sc.hints { // drop an arbitrary entry; hints are advisory
			delete(sc.hints, k)
			break
		}
	}
	sc.hints[key] = h
	sc.hintMu.Unlock()
}

// getHint looks up the join hint for a cut-neighborhood key.
func (sc *StepCache) getHint(key graph.Hash128) *specHint {
	sc.hintMu.Lock()
	h := sc.hints[key]
	sc.hintMu.Unlock()
	return h
}

// seedFromHint is lane B: when the step cache holds a hint for this cut's
// neighborhood, relocate its suffix state onto the actual warm-up blocks —
// including the stored step-cache suffix fingerprint, so the first merge
// after the cut can hit the step cache immediately — and skip the warm-up
// walk entirely. Returns false (leaving the walk in its empty entry state)
// when there is no hint or it does not relocate cleanly.
func (wk *specWorker) seedFromHint() bool {
	w := &wk.walk
	if w.sc == nil || wk.gLo < 1 {
		return false
	}
	gr := w.groups
	h := w.sc.getHint(hintKey(gr, wk.gLo, w.m))
	if h == nil {
		return false
	}
	c := wk.gLo
	for _, hn := range h.suffix { // validate before mutating any state
		gidx := c - 1 - int(hn.back)
		if gidx < 0 || gr.off[gidx]+int(hn.idx) >= gr.off[gidx+1] {
			return false
		}
	}
	for _, hf := range h.floors {
		gidx := c + int(hf.fwd)
		if gidx >= gr.ngroups() || gr.off[gidx]+int(hf.idx) >= gr.off[gidx+1] {
			return false
		}
	}
	for _, hn := range h.suffix {
		gidx := c - 1 - int(hn.back)
		id := graph.NodeID(gr.off[gidx] + int(hn.idx))
		w.oldIDs = append(w.oldIDs, id)
		w.plusOrder = append(w.plusOrder, id)
		if id > w.maxOld {
			w.maxOld = id
		}
		w.dOld[id] = int(hn.d)
		w.fOld[id] = int(hn.f)
		w.relAbs[id] = int(hn.rel) // frame base is 0: clamped rel is absolute
	}
	for _, hf := range h.floors {
		gidx := c + int(hf.fwd)
		w.relAbs[gr.off[gidx]+int(hf.idx)] = int(hf.rel)
	}
	w.oldMakespan = int(h.oldMakespan)
	w.scratch.step.suffFP = h.suffFP
	w.scratch.step.suffOK = h.suffOK
	wk.laneB = true
	return true
}

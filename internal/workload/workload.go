// Package workload generates the synthetic scheduling instances used by the
// experiment harness (EXPERIMENTS.md T1–T5): random basic blocks, traces,
// and loops with controlled size, dependence density, and latency mix. The
// paper evaluates on worked examples and defers an empirical comparison to
// future work; these generators provide the missing workload population,
// with parameters chosen to span the regimes where anticipatory scheduling
// matters (blocks ending in idle slots, cross-block latency chains,
// loop-carried recurrences).
package workload

import (
	"fmt"
	"math/rand"

	"aisched/internal/graph"
)

// LatencyModel selects the edge-latency distribution.
type LatencyModel int

// Latency models.
const (
	// ZeroOne draws latencies uniformly from {0, 1} — the paper's restricted
	// model.
	ZeroOne LatencyModel = iota
	// Mixed draws from {0, 1, 1, 2, 4} — loads/compares/multiplies as in the
	// paper's Figure 3 latencies.
	Mixed
)

func (lm LatencyModel) draw(r *rand.Rand) int {
	switch lm {
	case ZeroOne:
		return r.Intn(2)
	default:
		choices := []int{0, 1, 1, 2, 4}
		return choices[r.Intn(len(choices))]
	}
}

func (lm LatencyModel) String() string {
	if lm == ZeroOne {
		return "0/1"
	}
	return "mixed"
}

// TraceConfig parameterizes random trace generation.
type TraceConfig struct {
	Blocks    int     // number of basic blocks
	MinSize   int     // minimum instructions per block
	MaxSize   int     // maximum instructions per block
	IntraProb float64 // intra-block edge probability
	CrossProb float64 // adjacent-block edge probability
	Latency   LatencyModel
	// Classes > 1 assigns unit classes round-robin-with-noise for
	// multi-functional-unit experiments (class 0 dominant).
	Classes int
	// MaxExec > 1 draws execution times in [1, MaxExec] for non-unit-time
	// experiments.
	MaxExec int
}

// DefaultTrace returns the T1 configuration: small blocks with the paper's
// Figure 3 latency mix. Small latency-bound blocks are the regime where
// anticipatory scheduling matters — their optimal schedules end in idle
// slots that the hardware window can fill from the next block. Large dense
// blocks are resource-bound (no idle slots) and all schedulers converge;
// see DenseTrace.
func DefaultTrace() TraceConfig {
	return TraceConfig{
		Blocks: 6, MinSize: 3, MaxSize: 8,
		IntraProb: 0.4, CrossProb: 0.15,
		Latency: Mixed, Classes: 1, MaxExec: 1,
	}
}

// DenseTrace returns a resource-bound configuration (big dense blocks, 0/1
// latencies): the control condition in which anticipatory and local
// scheduling tie because block schedules have no trailing idle slots.
func DenseTrace() TraceConfig {
	return TraceConfig{
		Blocks: 6, MinSize: 6, MaxSize: 16,
		IntraProb: 0.25, CrossProb: 0.08,
		Latency: ZeroOne, Classes: 1, MaxExec: 1,
	}
}

// Trace generates a random trace dependence graph. Edges always point from
// lower to higher IDs, intra-block with IntraProb and between adjacent
// blocks with CrossProb. Block sizes are uniform in [MinSize, MaxSize].
func Trace(r *rand.Rand, cfg TraceConfig) (*graph.Graph, error) {
	if cfg.Blocks < 1 || cfg.MinSize < 1 || cfg.MaxSize < cfg.MinSize {
		return nil, fmt.Errorf("workload: bad trace config %+v", cfg)
	}
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	if cfg.MaxExec < 1 {
		cfg.MaxExec = 1
	}
	g := graph.New(cfg.Blocks * cfg.MaxSize)
	var blockNodes [][]graph.NodeID
	for b := 0; b < cfg.Blocks; b++ {
		size := cfg.MinSize + r.Intn(cfg.MaxSize-cfg.MinSize+1)
		ids := make([]graph.NodeID, 0, size)
		for i := 0; i < size; i++ {
			exec := 1
			if cfg.MaxExec > 1 {
				exec = 1 + r.Intn(cfg.MaxExec)
			}
			class := 0
			if cfg.Classes > 1 && r.Float64() < 0.3 {
				class = 1 + r.Intn(cfg.Classes-1)
			}
			ids = append(ids, g.AddNode(fmt.Sprintf("b%d.%d", b, i), exec, class, b))
		}
		blockNodes = append(blockNodes, ids)
	}
	for b := 0; b < cfg.Blocks; b++ {
		ids := blockNodes[b]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if r.Float64() < cfg.IntraProb {
					g.MustEdge(ids[i], ids[j], cfg.Latency.draw(r), 0)
				}
			}
			if b+1 < cfg.Blocks {
				for _, d := range blockNodes[b+1] {
					if r.Float64() < cfg.CrossProb {
						g.MustEdge(ids[i], d, cfg.Latency.draw(r), 0)
					}
				}
			}
		}
	}
	return g, nil
}

// LongTraceConfig parameterizes long-trace generation for the speculative
// parallel scheduler experiments (P3): hundreds of blocks, with a controlled
// fraction of "barrier" blocks — serial latency-1 chains with no cross-block
// edges in or out. A barrier forces the merge walk's carried state into a
// history-independent pattern (the chain schedules identically no matter
// what preceded it, and nothing crosses it), which is exactly the structure
// segment speculation converges on; the BarrierEvery knob sweeps the
// speculation hit rate from ~0 (no barriers, every join diverges) to ~1.
type LongTraceConfig struct {
	Blocks       int         // total blocks
	BarrierEvery int         // every k-th block is a barrier (0 = none)
	BarrierLen   int         // barrier chain length (0 = 8)
	Body         TraceConfig // shape of ordinary blocks (Blocks field ignored)
}

// DefaultLongTrace returns the P3 base configuration: 256 blocks, half of
// them barriers, with DefaultTrace-shaped ordinary blocks.
func DefaultLongTrace(blocks int) LongTraceConfig {
	return LongTraceConfig{Blocks: blocks, BarrierEvery: 2, BarrierLen: 8, Body: DefaultTrace()}
}

// LongTrace generates a long trace of ordinary random blocks interleaved
// with barrier blocks. Ordinary blocks draw their size, intra-block edges
// and adjacent-block cross edges from cfg.Body; cross edges are only placed
// between two adjacent ordinary blocks, so barriers stay isolated.
func LongTrace(r *rand.Rand, cfg LongTraceConfig) (*graph.Graph, error) {
	if cfg.Blocks < 1 {
		return nil, fmt.Errorf("workload: bad long-trace config %+v", cfg)
	}
	body := cfg.Body
	if body.MinSize < 1 || body.MaxSize < body.MinSize {
		return nil, fmt.Errorf("workload: bad long-trace body %+v", body)
	}
	if body.Classes < 1 {
		body.Classes = 1
	}
	if body.MaxExec < 1 {
		body.MaxExec = 1
	}
	blen := cfg.BarrierLen
	if blen < 2 {
		blen = 8
	}
	isBarrier := func(b int) bool {
		return cfg.BarrierEvery > 0 && b%cfg.BarrierEvery == cfg.BarrierEvery-1
	}
	g := graph.New(cfg.Blocks * body.MaxSize)
	blockNodes := make([][]graph.NodeID, cfg.Blocks)
	for b := 0; b < cfg.Blocks; b++ {
		if isBarrier(b) {
			ids := make([]graph.NodeID, 0, blen)
			for i := 0; i < blen; i++ {
				ids = append(ids, g.AddNode(fmt.Sprintf("bar%d.%d", b, i), 1, 0, b))
			}
			for i := 0; i+1 < blen; i++ {
				g.MustEdge(ids[i], ids[i+1], 1, 0)
			}
			blockNodes[b] = ids
			continue
		}
		size := body.MinSize + r.Intn(body.MaxSize-body.MinSize+1)
		ids := make([]graph.NodeID, 0, size)
		for i := 0; i < size; i++ {
			exec := 1
			if body.MaxExec > 1 {
				exec = 1 + r.Intn(body.MaxExec)
			}
			class := 0
			if body.Classes > 1 && r.Float64() < 0.3 {
				class = 1 + r.Intn(body.Classes-1)
			}
			ids = append(ids, g.AddNode(fmt.Sprintf("b%d.%d", b, i), exec, class, b))
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if r.Float64() < body.IntraProb {
					g.MustEdge(ids[i], ids[j], body.Latency.draw(r), 0)
				}
			}
		}
		blockNodes[b] = ids
	}
	for b := 0; b+1 < cfg.Blocks; b++ {
		if isBarrier(b) || isBarrier(b+1) {
			continue
		}
		for _, u := range blockNodes[b] {
			for _, d := range blockNodes[b+1] {
				if r.Float64() < body.CrossProb {
					g.MustEdge(u, d, body.Latency.draw(r), 0)
				}
			}
		}
	}
	return g, nil
}

// LoopConfig parameterizes random single-block loop generation.
type LoopConfig struct {
	Size      int     // instructions in the body
	IntraProb float64 // intra-iteration edge probability
	Carried   int     // number of loop-carried edges
	Latency   LatencyModel
	// CarriedLatencyBoost adds this to carried-edge latencies (recurrences
	// are what anticipatory loop scheduling hides).
	CarriedLatencyBoost int
}

// DefaultLoop returns the T3 configuration: small bodies with long carried
// latencies (Figure 3's regime — a recurrence the body order can hide or
// expose).
func DefaultLoop() LoopConfig {
	return LoopConfig{Size: 6, IntraProb: 0.25, Carried: 2, Latency: Mixed, CarriedLatencyBoost: 4}
}

// Loop generates a random single-block loop graph with distance-1 carried
// edges (plus a final node acting as the back branch with carried control
// edges, mirroring deps.BuildLoop's shape).
func Loop(r *rand.Rand, cfg LoopConfig) (*graph.Graph, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("workload: loop size %d < 2", cfg.Size)
	}
	g := graph.New(cfg.Size)
	for i := 0; i < cfg.Size; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 1, 0, 0)
	}
	br := graph.NodeID(cfg.Size - 1) // the back branch
	for i := 0; i < cfg.Size-1; i++ {
		for j := i + 1; j < cfg.Size-1; j++ {
			if r.Float64() < cfg.IntraProb {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), cfg.Latency.draw(r), 0)
			}
		}
		// Control dependence into the branch.
		g.MustEdge(graph.NodeID(i), br, 0, 0)
	}
	for k := 0; k < cfg.Carried; k++ {
		u := graph.NodeID(r.Intn(cfg.Size - 1))
		v := graph.NodeID(r.Intn(cfg.Size - 1))
		g.MustEdge(u, v, cfg.Latency.draw(r)+cfg.CarriedLatencyBoost, 1)
	}
	// Carried control: next iteration follows the branch.
	for i := 0; i < cfg.Size; i++ {
		g.MustEdge(br, graph.NodeID(i), 0, 1)
	}
	return g, nil
}

// LoopTraceConfig parameterizes multi-block loop bodies (§5.1's regime).
type LoopTraceConfig struct {
	Blocks    int     // basic blocks in the body (≥ 2)
	Size      int     // instructions per block
	IntraProb float64 // intra-block edge probability
	CrossProb float64 // adjacent-block edge probability
	Carried   int     // loop-carried edges from late blocks into block 0
	Latency   LatencyModel
	// CarriedLatencyBoost is added to carried-edge latencies.
	CarriedLatencyBoost int
}

// DefaultLoopTrace returns the T3b configuration.
func DefaultLoopTrace() LoopTraceConfig {
	return LoopTraceConfig{
		Blocks: 3, Size: 4, IntraProb: 0.3, CrossProb: 0.15,
		Carried: 2, Latency: Mixed, CarriedLatencyBoost: 3,
	}
}

// LoopTrace generates a loop whose body is a trace of several basic blocks:
// forward distance-0 edges inside and between adjacent blocks, plus
// distance-1 carried edges from instructions in the last block into the
// first block (the recurrence the §5.1 algorithm anticipates), and a
// carried control edge from the final instruction (the back branch) to
// every instruction.
func LoopTrace(r *rand.Rand, cfg LoopTraceConfig) (*graph.Graph, error) {
	if cfg.Blocks < 2 || cfg.Size < 1 {
		return nil, fmt.Errorf("workload: bad loop-trace config %+v", cfg)
	}
	g := graph.New(cfg.Blocks * cfg.Size)
	var blockNodes [][]graph.NodeID
	for b := 0; b < cfg.Blocks; b++ {
		var ids []graph.NodeID
		for i := 0; i < cfg.Size; i++ {
			ids = append(ids, g.AddNode(fmt.Sprintf("b%d.%d", b, i), 1, 0, b))
		}
		blockNodes = append(blockNodes, ids)
	}
	for b := 0; b < cfg.Blocks; b++ {
		ids := blockNodes[b]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if r.Float64() < cfg.IntraProb {
					g.MustEdge(ids[i], ids[j], cfg.Latency.draw(r), 0)
				}
			}
			if b+1 < cfg.Blocks {
				for _, d := range blockNodes[b+1] {
					if r.Float64() < cfg.CrossProb {
						g.MustEdge(ids[i], d, cfg.Latency.draw(r), 0)
					}
				}
			}
		}
	}
	last := blockNodes[cfg.Blocks-1]
	first := blockNodes[0]
	for k := 0; k < cfg.Carried; k++ {
		u := last[r.Intn(len(last))]
		v := first[r.Intn(len(first))]
		g.MustEdge(u, v, cfg.Latency.draw(r)+cfg.CarriedLatencyBoost, 1)
	}
	br := last[len(last)-1]
	for v := 0; v < g.Len(); v++ {
		g.MustEdge(br, graph.NodeID(v), 0, 1)
	}
	return g, nil
}

// ExpressionTree generates a basic block shaped like an expression
// evaluation: a binary reduction tree with leaf loads (latency 1) and inner
// arithmetic, the workload shape of Hennessy & Gross / Gibbons & Muchnick
// style pipeline-scheduling studies.
func ExpressionTree(r *rand.Rand, leaves int, block int) (*graph.Graph, error) {
	if leaves < 2 {
		return nil, fmt.Errorf("workload: expression tree needs ≥ 2 leaves")
	}
	g := graph.New(2*leaves - 1)
	level := make([]graph.NodeID, 0, leaves)
	for i := 0; i < leaves; i++ {
		level = append(level, g.AddNode(fmt.Sprintf("ld%d", i), 1, 0, block))
	}
	loadLat := 1
	cnt := 0
	for len(level) > 1 {
		var nxt []graph.NodeID
		for i := 0; i+1 < len(level); i += 2 {
			op := g.AddNode(fmt.Sprintf("op%d", cnt), 1, 0, block)
			cnt++
			lat := 0
			if cnt == 1 || r.Intn(3) == 0 {
				lat = 1 // occasional multi-cycle producer in the tree
			}
			_ = lat
			l1, l2 := loadLat, loadLat
			if int(level[i]) >= leaves {
				l1 = 0
			}
			if int(level[i+1]) >= leaves {
				l2 = 0
			}
			g.MustEdge(level[i], op, l1, 0)
			g.MustEdge(level[i+1], op, l2, 0)
			nxt = append(nxt, op)
		}
		if len(level)%2 == 1 {
			nxt = append(nxt, level[len(level)-1])
		}
		level = nxt
	}
	return g, nil
}

// Package loops implements the loop-scheduling algorithms of Sarkar &
// Simons (SPAA '96, §5): anticipatory instruction scheduling when the trace
// of basic blocks is enclosed in a loop.
//
// Steady-state model: the compiler emits one static schedule for the loop
// body; in steady state the body repeats with a fixed initiation interval
// II, so n iterations complete in makespan + (n−1)·II cycles. II is bounded
// below by every loop-carried dependence edge (u, v, <ℓ, d>):
//
//	σ(v) + d·II ≥ σ(u) + exec(u) + ℓ
//
// where σ are the start offsets within one iteration, and by resource
// conflicts of the offsets modulo II. This reproduces the paper's Figure 3
// (7 vs 6 cycles per iteration) and Figure 8 (5n−1 vs 4n) exactly.
package loops

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// BodySchedule computes the intra-iteration schedule of a loop body for a
// given static order: the greedy schedule over the loop-independent
// subgraph.
func BodySchedule(g *graph.Graph, m *machine.Machine, order []graph.NodeID) (*sched.Schedule, error) {
	li := g.LoopIndependent()
	s, err := sched.ListSchedule(li, m, order)
	if err != nil {
		return nil, err
	}
	// Rebind to the original graph so callers can inspect carried edges.
	out := sched.New(g, m)
	copy(out.Start, s.Start)
	copy(out.Unit, s.Unit)
	return out, nil
}

// SteadyII returns the minimum initiation interval of the fixed repeating
// schedule s for loop graph g: the smallest II satisfying every loop-carried
// dependence and admitting a conflict-free modulo resource assignment.
func SteadyII(g *graph.Graph, m *machine.Machine, s *sched.Schedule) (int, error) {
	if !s.Complete() {
		return 0, fmt.Errorf("loops: incomplete body schedule")
	}
	ii := 1
	for _, e := range g.Edges() {
		if e.Distance == 0 {
			continue
		}
		need := s.Start[e.Src] + g.Node(e.Src).Exec + e.Latency - s.Start[e.Dst]
		// σ(v) + d·II ≥ σ(u)+e+ℓ  ⇒  II ≥ ceil(need / d)
		if need > 0 {
			c := (need + e.Distance - 1) / e.Distance
			if c > ii {
				ii = c
			}
		}
	}
	T := s.Makespan()
	for ; ii < T; ii++ {
		if moduloFeasible(g, m, s, ii) {
			return ii, nil
		}
	}
	return ii, nil // II = makespan: iterations do not overlap; always feasible
}

// moduloFeasible reports whether the body schedule's unit occupancy is
// conflict-free when repeated every ii cycles.
func moduloFeasible(g *graph.Graph, m *machine.Machine, s *sched.Schedule, ii int) bool {
	use := make([]int, m.TotalUnits()*ii)
	for v := 0; v < g.Len(); v++ {
		id := graph.NodeID(v)
		for t := s.Start[v]; t < s.Finish(id); t++ {
			slot := s.Unit[v]*ii + t%ii
			use[slot]++
			if use[slot] > 1 {
				return false
			}
		}
	}
	return true
}

// Steady summarizes the periodic behaviour of a static loop-body order.
type Steady struct {
	Order    []graph.NodeID
	S        *sched.Schedule
	Makespan int // intra-iteration completion time
	II       int // steady-state cycles per iteration
}

// CompletionN returns the completion time of n iterations under the
// periodic model: makespan + (n−1)·II.
func (st *Steady) CompletionN(n int) int {
	if n < 1 {
		return 0
	}
	return st.Makespan + (n-1)*st.II
}

// Evaluate computes the periodic steady state of a loop-body order.
func Evaluate(g *graph.Graph, m *machine.Machine, order []graph.NodeID) (*Steady, error) {
	s, err := BodySchedule(g, m, order)
	if err != nil {
		return nil, err
	}
	ii, err := SteadyII(g, m, s)
	if err != nil {
		return nil, err
	}
	return &Steady{Order: order, S: s, Makespan: s.Makespan(), II: ii}, nil
}

package aisched

// Robustness layer: context cancellation, per-request scheduling budgets,
// and graceful degradation.
//
// Every public scheduling entry point has a Ctx variant threading a
// context.Context through the schedulers' cooperative checkpoints (every
// rank pass, every lookahead block, every loop candidate), so an in-flight
// request cancels within one checkpoint interval and returns the context's
// error — never a partial or corrupt schedule. The non-Ctx signatures are
// thin context.Background() wrappers, so existing callers are unaffected.
//
// A Scheduler additionally carries SchedulerOptions.Budget: a wall-clock
// deadline and/or rank-pass cap charged per scheduling request. A request
// that exhausts its budget does not fail — it falls back to the cheap greedy
// list schedule from internal/baseline (critical-path list scheduling, the
// strongest O(n log n) baseline) and tags the result's Schedule.Degraded
// with the reason. Degraded and cancelled results are never cached: the memo
// layer never stores errors, and degradation happens outside the cache
// compute. An anticipatory schedule that arrives too late is worthless; a
// slightly weaker schedule that arrives on time is not.

import (
	"context"
	"errors"
	"time"

	"aisched/internal/baseline"
	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/loops"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// Budget bounds the work one scheduling request may spend before the
// pipeline degrades to the baseline list schedule. The zero value means
// unlimited.
type Budget struct {
	// WallClock is the per-request wall-clock allowance (0 = unlimited).
	WallClock time.Duration
	// MaxRankPasses caps the number of rank passes (greedy reschedules) a
	// request may run (0 = unlimited). Every merge round, idle-slot
	// demotion and loop candidate costs at least one pass, so this bounds
	// the scheduler's dominant cost deterministically.
	MaxRankPasses int
}

// ScheduleBlockCtx is ScheduleBlock with cooperative cancellation: when ctx
// is cancelled the call returns ctx.Err() within one rank pass.
func ScheduleBlockCtx(ctx context.Context, g *Graph, m *Machine) (*Schedule, error) {
	defer observeRequest(mReqBlockNS, time.Now())
	return scheduleBlockFused(g, m, sbudget.New(ctx, 0, 0))
}

// ScheduleTraceCtx is ScheduleTrace with cooperative cancellation.
func ScheduleTraceCtx(ctx context.Context, g *Graph, m *Machine) (*TraceResult, error) {
	defer observeRequest(mReqTraceNS, time.Now())
	return core.LookaheadOpts(g, m, core.Options{Budget: sbudget.New(ctx, 0, 0)})
}

// ScheduleLoopCtx is ScheduleLoop with cooperative cancellation.
func ScheduleLoopCtx(ctx context.Context, g *Graph, m *Machine) (*LoopSteady, error) {
	defer observeRequest(mReqLoopNS, time.Now())
	return loops.ScheduleLoopOpts(g, m, loops.Opts{Budget: sbudget.New(ctx, 0, 0)})
}

// newBudget builds the per-request checkpoint state from the request context
// and the Scheduler's configured budget; nil (zero overhead) when there is
// nothing to enforce.
func (sc *Scheduler) newBudget(ctx context.Context) *sbudget.State {
	return sbudget.New(ctx, sc.budget.WallClock, sc.budget.MaxRankPasses)
}

// emitRobust reports one cancellation or degradation to the Scheduler's
// tracer (reason carried in the event label).
func (sc *Scheduler) emitRobust(kind obs.Kind, reason string) {
	if sc.tracer != nil {
		sc.tracer.Emit(obs.Event{Kind: kind, Label: reason, Block: -1, Node: graph.None})
	}
}

// degradeReason classifies err: a non-empty reason means the request's
// budget was exhausted and the caller should fall back to the baseline
// schedule; context errors are recorded as cancellations and everything else
// is a real failure.
func (sc *Scheduler) degradeReason(err error) string {
	if reason := sbudget.Reason(err); reason != "" {
		return reason
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		mCancelled.Inc()
		sc.emitRobust(obs.KindCancel, err.Error())
	}
	return ""
}

// fallbackBlock is the graceful-degradation path of ScheduleBlockCtx: the
// critical-path greedy list schedule, tagged with the exhaustion reason.
func (sc *Scheduler) fallbackBlock(g *Graph, m *Machine, reason string) (*Schedule, error) {
	order, err := baseline.CriticalPath{}.Order(g, m)
	if err != nil {
		return nil, err
	}
	s, err := sched.ListSchedule(g, m, order)
	if err != nil {
		return nil, err
	}
	s.Degraded = reason
	mDegraded.Inc()
	sc.emitRobust(obs.KindDegrade, reason)
	return s, nil
}

// fallbackTrace degrades a trace request: per-block critical-path list
// scheduling (no anticipation), packaged as a TraceResult so callers see the
// same shape as the full algorithm.
func (sc *Scheduler) fallbackTrace(g *Graph, m *Machine, reason string) (*TraceResult, error) {
	order, err := baseline.ScheduleTrace(baseline.CriticalPath{}, g, m)
	if err != nil {
		return nil, err
	}
	s, err := sched.ListSchedule(g, m, order)
	if err != nil {
		return nil, err
	}
	s.Degraded = reason
	res := &core.Result{Order: s.Permutation(), BlockOrders: map[int][]graph.NodeID{}, S: s}
	// order is the per-block concatenation, so grouping by block preserves
	// each block's static order.
	for _, id := range order {
		b := g.Node(id).Block
		res.BlockOrders[b] = append(res.BlockOrders[b], id)
	}
	mDegraded.Inc()
	sc.emitRobust(obs.KindDegrade, reason)
	return res, nil
}

// fallbackLoop degrades a loop request: critical-path list scheduling of the
// loop-independent body, evaluated in the periodic steady-state model.
func (sc *Scheduler) fallbackLoop(g *Graph, m *Machine, reason string) (*LoopSteady, error) {
	order, err := baseline.ScheduleTrace(baseline.CriticalPath{}, g.LoopIndependent(), m)
	if err != nil {
		return nil, err
	}
	st, err := loops.Evaluate(g, m, order)
	if err != nil {
		return nil, err
	}
	st.S.Degraded = reason
	mDegraded.Inc()
	sc.emitRobust(obs.KindDegrade, reason)
	return st, nil
}

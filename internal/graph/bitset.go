package graph

import "math/bits"

// Bitset is a fixed-capacity bitset used for transitive-closure rows.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// UnionWith ors o into b. Panics if o is longer than b.
func (b Bitset) UnionWith(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// IntersectWith ands o into b.
func (b Bitset) IntersectWith(o Bitset) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// Intersects reports whether b and o share any set bit.
func (b Bitset) Intersects(o Bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// ForEach calls f for every set bit in ascending order.
func (b Bitset) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &= w - 1
		}
	}
}

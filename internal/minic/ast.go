package minic

// Expr is an expression node.
type Expr interface{ isExpr() }

// NumLit is an integer literal.
type NumLit struct{ Value int64 }

// VarRef reads a scalar variable.
type VarRef struct{ Name string }

// IndexRef reads an array element.
type IndexRef struct {
	Name  string
	Index Expr
}

// Unary is -x or !x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation (+ - * / % comparisons & | ^).
type Binary struct {
	Op   string
	L, R Expr
}

func (NumLit) isExpr()   {}
func (VarRef) isExpr()   {}
func (IndexRef) isExpr() {}
func (Unary) isExpr()    {}
func (Binary) isExpr()   {}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// DeclStmt declares a scalar (Size < 0) or array (Size ≥ 0), optionally
// initialized (scalars only).
type DeclStmt struct {
	Name string
	Size int64 // -1 for scalars
	Init Expr  // nil when absent
}

// AssignStmt writes a scalar or array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// ForStmt is a for loop (init/post are assignments).
type ForStmt struct {
	Init *AssignStmt
	Cond Expr
	Post *AssignStmt
	Body []Stmt
}

func (DeclStmt) isStmt()   {}
func (AssignStmt) isStmt() {}
func (IfStmt) isStmt()     {}
func (WhileStmt) isStmt()  {}
func (ForStmt) isStmt()    {}

// Program is a parsed translation unit.
type Program struct {
	Stmts []Stmt
}

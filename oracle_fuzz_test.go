package aisched

import (
	"context"
	"errors"
	"testing"

	"aisched/internal/paperex"
)

// generalizeInstance rebuilds a decoded restricted instance as a §4.2
// general-model instance driven by the same bytes: execution times become
// 1 or 2 cycles (bit 1 of the per-node block byte) and latency-1 edges are
// boosted to 3 cycles. The machine keeps its window but gains nothing — a
// single FU with multi-cycle operations is the simplest general regime.
func generalizeInstance(data []byte, g *Graph) *Graph {
	gg := NewGraph(g.Len())
	for i := 0; i < g.Len(); i++ {
		exec := 1 + int(data[2+i]>>1)%2
		n := g.Node(NodeID(i))
		gg.AddNode("g", exec, 0, n.Block)
	}
	for _, e := range g.Edges() {
		lat := e.Latency
		if lat == 1 {
			lat = 3
		}
		gg.MustEdge(e.Src, e.Dst, lat, e.Distance)
	}
	return gg
}

// FuzzExactOracle is the differential oracle as a fuzz target: arbitrary
// bytes decode into a ≤10-node trace scheduled by both backends.
//
//   - Oracle soundness (both models): the heuristic's simulated completion
//     never beats the exact optimum — the assertion that exposed the memo
//     tail-release bug (see TestExactMemoTailReleaseRegression).
//   - Restricted, single block: heuristic == optimum exactly (the Rank
//     Algorithm's optimality theorem).
//   - Restricted, multi-block: gap ≤ 2 cycles (the reproduction finding
//     pinned by T4 and TestHeuristicNearExactRestrictedTraces).
//   - General model: heuristic stays legal and within a conservative
//     2n-cycle tripwire of optimal (catches catastrophic regressions like
//     the PR 7 window-realizability bug, not ordinary heuristic slack).
func FuzzExactOracle(f *testing.F) {
	fig1 := paperex.NewFig1()
	f.Add(encodeInstance(fig1.G, 4))
	fig2 := paperex.NewFig2()
	f.Add(encodeInstance(fig2.G, 2))
	f.Add([]byte{})
	f.Add([]byte{1, 7, 0, 1, 0, 1, 0, 0, 0, 0x80, 4, 2, 7, 0x85, 8})
	// The PR 7 window-realizability reproducer (see EXPERIMENTS.md).
	f.Add([]byte("0A00000010000\x809\x80$71\x819\x81$\x820\x830\x86(()aA(a"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, m := decodeInstance(data, true)
		if g == nil || g.Len() > 10 {
			return
		}
		ctx := context.Background()
		heur, exact := HeuristicBackend(), ExactBackend(ExactLimits{})

		check := func(tag string, g *Graph, singleBlock bool) {
			h, err := heur.ScheduleTrace(ctx, g, m)
			if err != nil {
				t.Fatalf("%s: heuristic failed on a well-formed DAG: %v", tag, err)
			}
			if err := h.S.Validate(); err != nil {
				t.Fatalf("%s: heuristic schedule invalid: %v", tag, err)
			}
			e, err := exact.ScheduleTrace(ctx, g, m)
			if errors.Is(err, ErrExactBudget) {
				return // oracle unavailable; nothing to compare against
			}
			if err != nil {
				t.Fatalf("%s: exact backend failed: %v", tag, err)
			}
			opt := e.S.Makespan()
			sim, err := SimulateTrace(g, m, h.Order)
			if err != nil {
				t.Fatalf("%s: simulate heuristic order: %v", tag, err)
			}
			gap := sim.Completion - opt
			switch {
			case gap < 0:
				t.Fatalf("%s: heuristic %d beats 'optimal' %d — exact backend unsound",
					tag, sim.Completion, opt)
			case tag == "restricted" && singleBlock && gap != 0:
				t.Fatalf("%s: single-block gap %d != 0 (rank optimality violated)", tag, gap)
			case tag == "restricted" && gap > 2:
				t.Fatalf("%s: trace gap %d > 2 cycles (heuristic %d, optimum %d)",
					tag, gap, sim.Completion, opt)
			case tag == "general" && gap > 2*g.Len():
				t.Fatalf("%s: gap %d exceeds the 2n tripwire (heuristic %d, optimum %d)",
					tag, gap, sim.Completion, opt)
			}
		}

		singleBlock := g.Node(NodeID(g.Len()-1)).Block == 0
		check("restricted", g, singleBlock)
		check("general", generalizeInstance(data, g), singleBlock)
	})
}

package hw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/sched"
)

func TestSimulateTraceFigure2EmittedOrderAchieves11(t *testing.T) {
	// The anticipatory emission for Figure 2 is x e r w b | a z q p g v (or
	// an equivalent optimum); with W = 2 the window fills BB1's trailing
	// idle slot with z and the dynamic completion is 11.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	order := []graph.NodeID{f.X, f.E, f.R, f.W, f.B, f.A, f.Z, f.Q, f.P, f.Gn, f.V}
	res, err := SimulateTrace(f.G, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion != 11 {
		t.Fatalf("dynamic completion = %d, want 11", res.Completion)
	}
}

func TestSimulateTraceWindowOneIsInOrder(t *testing.T) {
	// W = 1: no lookahead; the idle slot before `a` cannot be filled by z,
	// so the same static order costs one more cycle.
	f := paperex.NewFig2()
	order := []graph.NodeID{f.X, f.E, f.R, f.W, f.B, f.A, f.Z, f.Q, f.P, f.Gn, f.V}
	r1, err := SimulateTrace(f.G, machine.SingleUnit(1), order)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateTrace(f.G, machine.SingleUnit(2), order)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completion <= r2.Completion {
		t.Fatalf("W=1 (%d) should be slower than W=2 (%d) on this trace",
			r1.Completion, r2.Completion)
	}
	// In-order: x e r w b _ a (a waits for b+1) z q p g v with z, q each
	// paying their latency → completion 13.
	if r1.Completion != 13 {
		t.Fatalf("W=1 completion = %d, want 13", r1.Completion)
	}
}

func TestSimulateTraceRespectsWindowBound(t *testing.T) {
	// Block-1 instruction z is 4 positions past the pending a in the stream;
	// with W=3 it is outside the window while a is unissued... construct a
	// direct case: order = [a(block0, not ready), z1 z2 z3(block1, ready)];
	// with W=2 only z1 may bypass a.
	g := graph.New(5)
	pre := g.AddNode("pre", 1, 0, 0)
	a := g.AddNode("a", 1, 0, 0)
	z1 := g.AddNode("z1", 1, 0, 1)
	z2 := g.AddNode("z2", 1, 0, 1)
	z3 := g.AddNode("z3", 1, 0, 1)
	g.MustEdge(pre, a, 3, 0) // a ready only at t=4
	order := []graph.NodeID{pre, a, z1, z2, z3}

	// The window is a CONTIGUOUS stream segment anchored at the oldest
	// unissued instruction (§2.3), so an issued instruction keeps occupying
	// its slot until the head advances — exactly the Window Constraint's
	// span ≤ W. W=2: window = {a, z1}: z1 bypasses a@1; z2 (span 3) cannot →
	// pre@0 z1@1 idle idle a@4 z2@5 z3@6 → completion 7.
	res, err := SimulateTrace(g, machine.SingleUnit(2), order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion != 7 {
		t.Fatalf("W=2 completion = %d, want 7 (issued %v)", res.Completion, res.Issued)
	}

	// W=3 admits z2 (span 3) but not z3 (span 4):
	// pre@0 z1@1 z2@2 idle a@4 z3@5 → completion 6.
	res3, err := SimulateTrace(g, machine.SingleUnit(3), order)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Completion != 6 {
		t.Fatalf("W=3 completion = %d, want 6 (issued %v)", res3.Completion, res3.Issued)
	}

	res4, err := SimulateTrace(g, machine.SingleUnit(8), order)
	if err != nil {
		t.Fatal(err)
	}
	// Large window: z1 z2 z3 all bypass a → pre@0 z1@1 z2@2 z3@3 a@4 → 5.
	if res4.Completion != 5 {
		t.Fatalf("W=8 completion = %d, want 5", res4.Completion)
	}
}

func TestSimulateLoopFigure3DynamicSteadyState(t *testing.T) {
	// Under the dynamic window model the hardware's out-of-order issue
	// narrows the gap between the two static schedules (the paper's §1:
	// "out-of-order execution in the hardware can also adapt"); Schedule 2
	// must still be at least as good as Schedule 1, and both are bounded
	// below by the M→M recurrence of 5 cycles/iteration.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	s1, err := SteadyState(f.G, m, f.Schedule1, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SteadyState(f.G, m, f.Schedule2, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2 > s1+1e-9 {
		t.Fatalf("dynamic steady state: schedule2 (%.2f) worse than schedule1 (%.2f)", s2, s1)
	}
	if s1 < 5-1e-9 || s2 < 5-1e-9 {
		t.Fatalf("steady states %.2f/%.2f below the recurrence bound 5", s1, s2)
	}
}

func TestSimulateLoopNonSpeculativeSlower(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	spec, err := SteadyState(f.G, m, f.Schedule2, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	nospec, err := SteadyState(f.G, m, f.Schedule2, Options{Speculate: false})
	if err != nil {
		t.Fatal(err)
	}
	if nospec < spec-1e-9 {
		t.Fatalf("non-speculative (%.2f) faster than speculative (%.2f)", nospec, spec)
	}
}

func TestSimulateLoopMispredictionCostsCycles(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	clean, err := SimulateLoop(f.G, m, f.Schedule2, 20, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := SimulateLoop(f.G, m, f.Schedule2, 20, Options{Speculate: true, MispredictEvery: 4, Penalty: 3})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Rollbacks == 0 {
		t.Fatal("no rollbacks injected")
	}
	if faulty.Completion <= clean.Completion {
		t.Fatalf("mispredictions did not cost cycles: %d vs %d", faulty.Completion, clean.Completion)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	if _, err := SimulateTrace(f.G, m, []graph.NodeID{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := SimulateTrace(f.G, m, []graph.NodeID{0, 1, 2, 3, 4, 4}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := SimulateLoop(f.G, m, []graph.NodeID{0, 1, 2, 3, 4, 5}, 0, Options{}); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestSimulateMultiUnitCoIssue(t *testing.T) {
	g := graph.New(2)
	fx := g.AddNode("fx", 1, int(machine.ClassFixed), 0)
	fl := g.AddNode("fl", 1, int(machine.ClassFloat), 0)
	m := machine.RS6000(4)
	res, err := SimulateTrace(g, m, []graph.NodeID{fx, fl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion != 1 {
		t.Fatalf("completion = %d, want 1 (co-issue on separate units)", res.Completion)
	}
}

func TestSimulateTraceMatchesGreedyForLargeWindow(t *testing.T) {
	// With W ≥ number of instructions, the windowed simulator degenerates to
	// the plain greedy list schedule (Ordering Constraint's model).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("n", 1, 0, i%3)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
				}
			}
		}
		m := machine.SingleUnit(n + 1)
		order := sched.SourceOrder(g)
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// The order must still respect block contiguity for the trace
		// model? No — SimulateTrace takes an arbitrary stream; compare
		// directly against the greedy list scheduler.
		res, err := SimulateTrace(g, m, order)
		if err != nil {
			return false
		}
		s, err := sched.ListSchedule(g, m, order)
		if err != nil {
			return false
		}
		return res.Completion == s.Makespan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWindowMonotone(t *testing.T) {
	// Larger windows never hurt: completion is nonincreasing in W.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(16)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("n", 1, 0, i*3/n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
				}
			}
		}
		order := sched.SourceOrder(g)
		prev := -1
		for _, w := range []int{1, 2, 4, 8, 32} {
			res, err := SimulateTrace(g, machine.SingleUnit(w), order)
			if err != nil {
				return false
			}
			if prev >= 0 && res.Completion > prev {
				return false
			}
			prev = res.Completion
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLoopCompletionLinearTail(t *testing.T) {
	// The dynamic execution's tail pace is sane: completion is strictly
	// increasing, at least one cycle per iteration, and no slower per
	// iteration than a standalone iteration plus the largest loop-carried
	// latency (the worst possible serialization).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("n", 1, 0, 0)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.4 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
				}
			}
		}
		// One loop-carried edge to make iterations interact.
		g.MustEdge(graph.NodeID(n-1), graph.NodeID(0), 1+r.Intn(3), 1)
		m := machine.SingleUnit(1 + r.Intn(8))
		order := sched.SourceOrder(g)
		r1, err := SimulateLoop(g, m, order, 1, Options{Speculate: true})
		if err != nil {
			return false
		}
		r8, err := SimulateLoop(g, m, order, 8, Options{Speculate: true})
		if err != nil {
			return false
		}
		r16, err := SimulateLoop(g, m, order, 16, Options{Speculate: true})
		if err != nil {
			return false
		}
		maxLat := 0
		for _, e := range g.Edges() {
			if e.Latency > maxLat {
				maxLat = e.Latency
			}
		}
		tail := r16.Completion - r8.Completion
		return tail >= 8 && tail <= 8*(r1.Completion+maxLat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package rank

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// Differential tests: the context-based engine (Ctx.Compute / Ctx.Run /
// Ctx.Update) must be bit-identical to the retained naive implementation
// (ReferenceCompute / ReferenceRun) on every input — same ranks, same start
// times, same unit assignments, same feasibility verdicts.

// randomDiffDAG builds a DAG exercising the general machine model: execution
// times 1–3, unit classes 0..classes-1, latencies 0–3.
func randomDiffDAG(r *rand.Rand, n int, p float64, classes int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 1+r.Intn(3), r.Intn(classes), 0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(4), 0)
			}
		}
	}
	return g
}

// randomDeadlines mixes effectively-infinite deadlines with tight random
// ones, so both the feasible and infeasible regimes are exercised.
func randomDeadlines(r *rand.Rand, n int) []int {
	d := make([]int, n)
	for i := range d {
		if r.Intn(2) == 0 {
			d[i] = Big
		} else {
			d[i] = 1 + r.Intn(4*n+4)
		}
	}
	return d
}

// diffMachines pairs each machine model with the number of node classes its
// graphs may use (Superscalar has units for class 0 only).
type diffMachine struct {
	m       *machine.Machine
	classes int
}

func diffMachines() []diffMachine {
	return []diffMachine{
		{machine.SingleUnit(4), 3}, // classes folded to 0 on single-unit models
		{machine.RS6000(4), 3},
		{machine.Superscalar(2, 4), 1},
	}
}

func sameSchedule(a, b *sched.Schedule) bool {
	if a.G.Len() != b.G.Len() {
		return false
	}
	for v := 0; v < a.G.Len(); v++ {
		if a.Start[v] != b.Start[v] || a.Unit[v] != b.Unit[v] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDifferentialCtxMatchesReference(t *testing.T) {
	machines := diffMachines()
	for seed := int64(0); seed < 70; seed++ {
		dm := machines[seed%int64(len(machines))]
		m := dm.m
		r := rand.New(rand.NewSource(seed))
		g := randomDiffDAG(r, 2+r.Intn(24), 0.3, dm.classes)
		d := randomDeadlines(r, g.Len())

		want, err := ReferenceCompute(g, m, d)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		c, err := NewCtx(g, m)
		if err != nil {
			t.Fatalf("seed %d: NewCtx: %v", seed, err)
		}
		got, err := c.Compute(d)
		if err != nil {
			t.Fatalf("seed %d: Compute: %v", seed, err)
		}
		if !sameInts(got, want) {
			t.Fatalf("seed %d on %s: ranks differ\n ctx %v\n ref %v", seed, m.Name, got, want)
		}

		wantRes, err := ReferenceRun(g, m, d, nil)
		if err != nil {
			t.Fatalf("seed %d: ReferenceRun: %v", seed, err)
		}
		gotRes, err := c.Run(d, nil)
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if gotRes.Feasible != wantRes.Feasible || !sameSchedule(gotRes.S, wantRes.S) {
			t.Fatalf("seed %d on %s: schedules differ (feasible %v vs %v)\n ctx %v/%v\n ref %v/%v",
				seed, m.Name, gotRes.Feasible, wantRes.Feasible,
				gotRes.S.Start, gotRes.S.Unit, wantRes.S.Start, wantRes.S.Unit)
		}
	}
}

func TestDifferentialPackageAPIMatchesReference(t *testing.T) {
	// The package-level Compute/Run wrappers go through a throwaway Ctx; pin
	// them to the reference too so the public surface can never drift.
	for seed := int64(100); seed < 130; seed++ {
		m := machine.RS6000(4)
		r := rand.New(rand.NewSource(seed))
		g := randomDiffDAG(r, 2+r.Intn(18), 0.35, 3)
		d := randomDeadlines(r, g.Len())
		want, err := ReferenceCompute(g, m, d)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, err := Compute(g, m, d)
		if err != nil {
			t.Fatalf("seed %d: Compute: %v", seed, err)
		}
		if !sameInts(got, want) {
			t.Fatalf("seed %d: ranks differ\n got %v\n want %v", seed, got, want)
		}
	}
}

func TestDifferentialIncrementalUpdateMatchesFullCompute(t *testing.T) {
	// Update after a batch of deadline demotions must land in exactly the
	// state a from-scratch Compute (and the naive reference) produces. This
	// is the path Move_Idle_Slot and the lookahead loosen/fallback loops use.
	machines := diffMachines()
	for seed := int64(200); seed < 260; seed++ {
		dm := machines[seed%int64(len(machines))]
		m := dm.m
		r := rand.New(rand.NewSource(seed))
		g := randomDiffDAG(r, 2+r.Intn(22), 0.3, dm.classes)
		n := g.Len()
		d := randomDeadlines(r, n)

		c, err := NewCtx(g, m)
		if err != nil {
			t.Fatalf("seed %d: NewCtx: %v", seed, err)
		}
		ranks, err := c.Compute(d)
		if err != nil {
			t.Fatalf("seed %d: Compute: %v", seed, err)
		}
		for round := 0; round < 6; round++ {
			changed := graph.NewBitset(n)
			if round%2 == 0 {
				// Single demotion, as in Move_Idle_Slot.
				v := graph.NodeID(r.Intn(n))
				d[v] -= 1 + r.Intn(3)
				c.UpdateOne(ranks, d, v)
			} else {
				// Batch change, as in the lookahead loosen loop.
				for k := 0; k < 1+r.Intn(3); k++ {
					v := r.Intn(n)
					d[v] += r.Intn(7) - 3
					changed.Set(v)
				}
				c.Update(ranks, d, changed)
			}
			want, err := ReferenceCompute(g, m, d)
			if err != nil {
				t.Fatalf("seed %d round %d: reference: %v", seed, round, err)
			}
			if !sameInts(ranks, want) {
				t.Fatalf("seed %d round %d on %s: incremental ranks diverged\n got %v\n want %v",
					seed, round, m.Name, ranks, want)
			}
		}
	}
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestBitsetSetHasClear(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Clear(i)
		if b.Has(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestBitsetCountEmpty(t *testing.T) {
	b := NewBitset(200)
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(5)
	b.Set(70)
	b.Set(199)
	if b.Empty() {
		t.Fatal("non-empty bitset reported Empty")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(1)
	a.Set(64)
	b.Set(64)
	b.Set(100)
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(64) || !u.Has(100) {
		t.Fatalf("union wrong: count=%d", u.Count())
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Has(64) {
		t.Fatalf("intersection wrong: count=%d", i.Count())
	}
}

func TestBitsetIntersectWithShorter(t *testing.T) {
	a := NewBitset(128)
	a.Set(10)
	a.Set(100)
	short := NewBitset(64)
	short.Set(10)
	a.IntersectWith(short)
	if !a.Has(10) || a.Has(100) {
		t.Fatal("IntersectWith shorter bitset must zero the tail words")
	}
}

func TestBitsetForEachAscending(t *testing.T) {
	b := NewBitset(256)
	want := []int{3, 64, 65, 130, 255}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	a := NewBitset(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Has(6) {
		t.Fatal("Clone shares storage")
	}
}

func TestPropertyBitsetCountMatchesForEach(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		uniq := make(map[int]bool)
		for _, i := range idxs {
			b.Set(int(i))
			uniq[int(i)] = true
		}
		n := 0
		b.ForEach(func(int) { n++ })
		return n == b.Count() && n == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

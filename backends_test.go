package aisched

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"aisched/internal/machine"
	"aisched/internal/workload"
)

// assertEmittableOrder checks that a backend's static order is compiler-
// emittable per Definition 2.1: a permutation of the graph, block-
// contiguous in ascending block order, with every intra-block distance-0
// dependence pointing forward. (Full CheckLegal is deliberately not used
// here: its ordering constraint replays the windowless greedy scheduler,
// which can legally pull an instruction above a window-stalled predecessor
// position — a hardware-achievable anticipatory schedule at W≥3 fails that
// replay even in the restricted model. The hw simulator is the arbiter of
// dynamic legality instead.)
func assertEmittableOrder(t *testing.T, tag string, g *Graph, order []NodeID) {
	t.Helper()
	if len(order) != g.Len() {
		t.Fatalf("%s: order covers %d of %d nodes", tag, len(order), g.Len())
	}
	pos := make([]int, g.Len())
	seen := make([]bool, g.Len())
	lastBlock := -1 << 30
	for i, v := range order {
		if v < 0 || int(v) >= g.Len() || seen[v] {
			t.Fatalf("%s: order is not a permutation", tag)
		}
		seen[v] = true
		pos[v] = i
		if blk := g.Node(v).Block; blk < lastBlock {
			t.Fatalf("%s: order not block-contiguous at position %d", tag, i)
		} else {
			lastBlock = blk
		}
	}
	for _, e := range g.Edges() {
		if e.Distance == 0 && g.Node(e.Src).Block == g.Node(e.Dst).Block && pos[e.Src] > pos[e.Dst] {
			t.Fatalf("%s: intra-block dependence %d->%d emitted backward", tag, e.Src, e.Dst)
		}
	}
}

// TestHeuristicMatchesExactRestricted is the paper's optimality theorem as
// an executable gate: over ≥300 random restricted-model instances (single
// FU, unit exec, 0/1 latencies — the regime the Rank Algorithm is proved
// optimal in), the heuristic's schedule must validate and its makespan —
// predicted and simulated alike — must equal the exact branch-and-bound
// optimum on every seed, not just most.
func TestHeuristicMatchesExactRestricted(t *testing.T) {
	r := rand.New(rand.NewSource(1996))
	heur, exact := HeuristicBackend(), ExactBackend(ExactLimits{})
	ctx := context.Background()
	const seeds = 300
	for i := 0; i < seeds; i++ {
		cfg := workload.TraceConfig{
			Blocks: 1, MinSize: 2, MaxSize: 11,
			IntraProb: 0.15 + 0.5*float64(i%5)/4, Latency: workload.ZeroOne,
		}
		g, err := workload.Trace(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := SingleUnit(1 + i%5)
		h, err := heur.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", i, err)
		}
		if err := h.S.Validate(); err != nil {
			t.Fatalf("seed %d: heuristic schedule invalid: %v", i, err)
		}
		assertEmittableOrder(t, "heuristic", g, h.Order)
		e, err := exact.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", i, err)
		}
		assertEmittableOrder(t, "exact", g, e.Order)
		opt := e.S.Makespan()
		if got := h.S.Makespan(); got != opt {
			t.Fatalf("seed %d: predicted heuristic makespan %d != optimum %d (W=%d, %d nodes)",
				i, got, opt, m.Window, g.Len())
		}
		sim, err := SimulateTrace(g, m, h.Order)
		if err != nil {
			t.Fatalf("seed %d: simulate heuristic order: %v", i, err)
		}
		if sim.Completion != opt {
			t.Fatalf("seed %d: simulated heuristic completion %d != optimum %d (W=%d, %d nodes)",
				i, sim.Completion, opt, m.Window, g.Len())
		}
	}
}

// TestHeuristicNearExactRestrictedTraces pins the trace-level restricted
// finding the exact oracle quantified: Algorithm Lookahead is NOT exact on
// every multi-block restricted trace — merge confines each block to its
// standalone makespan, while the true optimum occasionally displaces a
// block by a cycle to win globally (T4's "≥80% exact" reproduction note).
// The gate: never better than the proven optimum, never more than 1 cycle
// worse, and exact on the overwhelming majority of seeds.
func TestHeuristicNearExactRestrictedTraces(t *testing.T) {
	r := rand.New(rand.NewSource(1996))
	heur, exact := HeuristicBackend(), ExactBackend(ExactLimits{})
	ctx := context.Background()
	const seeds = 300
	exactHits := 0
	for i := 0; i < seeds; i++ {
		cfg := workload.TraceConfig{
			Blocks: 3, MinSize: 2, MaxSize: 4,
			IntraProb: 0.4, CrossProb: 0.2, Latency: workload.ZeroOne,
		}
		g, err := workload.Trace(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := SingleUnit(2 + i%4)
		h, err := heur.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", i, err)
		}
		e, err := exact.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", i, err)
		}
		sim, err := SimulateTrace(g, m, h.Order)
		if err != nil {
			t.Fatalf("seed %d: simulate heuristic order: %v", i, err)
		}
		gap := sim.Completion - e.S.Makespan()
		switch {
		case gap < 0:
			t.Fatalf("seed %d: heuristic %d beats 'optimal' %d — exact backend is wrong",
				i, sim.Completion, e.S.Makespan())
		case gap == 0:
			exactHits++
		case gap > 1:
			t.Fatalf("seed %d: restricted trace gap %d > 1 cycle (heuristic %d, optimum %d)",
				i, gap, sim.Completion, e.S.Makespan())
		}
	}
	if exactHits*10 < seeds*9 {
		t.Fatalf("heuristic exact on only %d/%d restricted traces (want ≥ 90%%)", exactHits, seeds)
	}
	t.Logf("restricted traces: heuristic exact on %d/%d, max gap 1", exactHits, seeds)
}

// TestExactBackendGeneralModelBounds: on §4.2 machines (non-unit latencies,
// multi-FU) the heuristic carries no optimality proof, but it must stay
// legal and never beat the proven optimum; the exact backend must never
// exceed the heuristic.
func TestExactBackendGeneralModelBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	heur, exact := HeuristicBackend(), ExactBackend(ExactLimits{})
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		cfg := workload.TraceConfig{
			Blocks: 3, MinSize: 2, MaxSize: 4,
			IntraProb: 0.4, CrossProb: 0.2,
			Latency: workload.Mixed, MaxExec: 1 + i%3, Classes: 1 + i%3,
		}
		g, err := workload.Trace(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() > 12 {
			continue
		}
		var m *Machine
		if cfg.Classes > 1 {
			m = RS6000(2 + i%4)
		} else {
			m = SingleUnit(2 + i%4)
		}
		h, err := heur.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", i, err)
		}
		assertEmittableOrder(t, "heuristic", g, h.Order)
		e, err := exact.ScheduleTrace(ctx, g, m)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", i, err)
		}
		sim, err := SimulateTrace(g, m, h.Order)
		if err != nil {
			t.Fatalf("seed %d: simulate heuristic order: %v", i, err)
		}
		if sim.Completion < e.S.Makespan() {
			t.Fatalf("seed %d: heuristic %d beats 'optimal' %d — exact backend is wrong",
				i, sim.Completion, e.S.Makespan())
		}
	}
}

func TestBackendByName(t *testing.T) {
	for name, want := range map[string]string{"": "heuristic", "heuristic": "heuristic", "exact": "exact"} {
		b, err := BackendByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if b.Name() != want {
			t.Fatalf("%q resolved to %q", name, b.Name())
		}
	}
	if _, err := BackendByName("ilp"); err == nil {
		t.Fatal("unknown backend name must error")
	}
}

// TestExactBackendRejectsOversized: the facade surfaces the node cap as
// ErrExactTooLarge so callers can fall back to the heuristic.
func TestExactBackendRejectsOversized(t *testing.T) {
	g := NewGraph(20)
	for i := 0; i < 20; i++ {
		g.AddUnit("n")
	}
	_, err := ExactBackend(ExactLimits{}).ScheduleTrace(context.Background(), g, SingleUnit(4))
	if !errors.Is(err, ErrExactTooLarge) {
		t.Fatalf("want ErrExactTooLarge, got %v", err)
	}
	var m2 *machine.Machine = SingleUnit(4)
	if _, err := HeuristicBackend().ScheduleTrace(context.Background(), g, m2); err != nil {
		t.Fatalf("heuristic must handle what exact rejects: %v", err)
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"aisched"
	"aisched/internal/machine"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// branchyTrace is R1's workload: many small blocks — the branchy regime
// where Algorithm Lookahead's merge loop runs the most rank passes per
// instruction, so a rank-pass budget actually bites.
func branchyTrace() workload.TraceConfig {
	return workload.TraceConfig{
		Blocks: 8, MinSize: 2, MaxSize: 5,
		IntraProb: 0.35, CrossProb: 0.2,
		Latency: workload.Mixed, Classes: 1, MaxExec: 1,
	}
}

// R1 sweeps the per-request rank-pass budget over a branchy trace workload
// and reports the graceful-degradation behaviour: what fraction of requests
// fall back to the baseline list schedule, and what the fallback costs in
// simulated completion cycles relative to the unlimited-budget anticipatory
// schedule. The pass/fail checks assert the robustness-layer contract:
// budgeted scheduling never errors, every returned result is complete, the
// degradation rate is monotone nonincreasing in the budget (pass counts are
// deterministic per instance), and an unlimited budget never degrades.
func R1(seed int64, instances int) (*Result, error) {
	r := rand.New(rand.NewSource(seed))
	m := machine.SingleUnit(4)
	t := tables.New("R1: rank-pass budget vs graceful degradation (branchy traces)",
		"budget (passes)", "degraded", "rate", "mean completion", "vs unlimited")
	res := &Result{ID: "R1", Table: t, Passed: true}

	graphs := make([]*aisched.Graph, instances)
	for i := range graphs {
		g, err := workload.Trace(r, branchyTrace())
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}

	// completion simulates the emitted static order of one result.
	completion := func(g *aisched.Graph, tr *aisched.TraceResult) (int, error) {
		sim, err := aisched.SimulateTrace(g, m, tr.StaticOrder())
		if err != nil {
			return 0, err
		}
		return sim.Completion, nil
	}

	budgets := []int{1, 8, 16, 24, 32, 48, 64, 0} // 0 = unlimited
	type sweep struct {
		passes   int
		degraded int
		rate     float64
		mean     float64
	}
	sweeps := make([]sweep, 0, len(budgets))
	prevRate := 1.1 // any real rate is below this
	for _, passes := range budgets {
		sc := aisched.NewScheduler(aisched.SchedulerOptions{
			Budget: aisched.Budget{MaxRankPasses: passes},
		})
		degraded, totalCycles := 0, 0
		for i, g := range graphs {
			tr, err := sc.ScheduleTrace(g, m)
			if err != nil {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"budget %d instance %d: budgeted scheduling errored: %v", passes, i, err))
				continue
			}
			if tr.S.Degraded != "" {
				degraded++
				// The baseline fallback is an exact greedy list schedule, so
				// it validates strictly even on Mixed latencies (the full
				// anticipatory trace schedule uses looser cross-block
				// latency semantics and is checked by simulation instead).
				if err := tr.S.Validate(); err != nil {
					res.Passed = false
					res.Notes = append(res.Notes, fmt.Sprintf(
						"budget %d instance %d: invalid fallback schedule: %v", passes, i, err))
				}
			}
			c, err := completion(g, tr)
			if err != nil {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"budget %d instance %d: simulate: %v", passes, i, err))
				continue
			}
			totalCycles += c
		}
		rate := float64(degraded) / float64(instances)
		mean := float64(totalCycles) / float64(instances)
		if passes == 0 {
			if degraded != 0 {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"unlimited budget degraded %d instances", degraded))
			}
		} else {
			if rate > prevRate {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"degradation rate rose from %.2f to %.2f as the budget grew to %d passes",
					prevRate, rate, passes))
			}
			prevRate = rate
		}
		sweeps = append(sweeps, sweep{passes, degraded, rate, mean})
	}
	unlimitedMean := sweeps[len(sweeps)-1].mean
	for _, s := range sweeps {
		label := fmt.Sprint(s.passes)
		if s.passes == 0 {
			label = "∞"
		}
		t.Add(label, s.degraded, fmt.Sprintf("%.0f%%", s.rate*100),
			fmt.Sprintf("%.1f", s.mean),
			fmt.Sprintf("%+.1f%%", 100*(s.mean-unlimitedMean)/unlimitedMean))
	}
	res.Notes = append(res.Notes,
		"exhausted requests return the critical-path baseline list schedule tagged Degraded — never an error",
		"completion columns are informational; PASS/FAIL asserts no errors, completeness, and monotone degradation")
	return res, nil
}

#!/bin/sh
# Full local check: build, vet, tests, the race detector, and the benchmark
# regression gate. Tier-1 (build + go test ./...) is what CI gates on; vet
# and -race catch what plain tests miss, and benchsnap -compare enforces the
# ROADMAP ≤2% regression budget against the committed snapshot.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./..."
go test -race ./...
echo "== benchsnap -compare BENCH_PR3.json"
go run ./cmd/benchsnap -compare BENCH_PR3.json
echo "check: OK"

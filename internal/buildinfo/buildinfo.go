// Package buildinfo reports what binary is running: module path and
// version, Go toolchain, and the VCS revision/time/dirty bit stamped by the
// Go linker (runtime/debug.ReadBuildInfo). The same struct is printed by
// `aisched -version`, embedded in the metrics snapshot, and stamped into
// Chrome trace metadata, so every artifact a long-running service emits can
// be traced back to an exact commit.
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info is the build identity. All fields marshal to stable JSON; empty
// fields mean the information was not stamped (e.g. a test binary built
// outside version control).
type Info struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision"`
	Time      string `json:"vcs_time"`
	Dirty     bool   `json:"vcs_dirty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build identity, reading runtime/debug.ReadBuildInfo once.
func Get() Info {
	once.Do(func() {
		cached = read(debug.ReadBuildInfo())
	})
	return cached
}

// read extracts Info from a BuildInfo (split out for testing).
func read(bi *debug.BuildInfo, ok bool) Info {
	if !ok || bi == nil {
		return Info{}
	}
	info := Info{
		Module:    bi.Main.Path,
		Version:   bi.Main.Version,
		GoVersion: bi.GoVersion,
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity the way `aisched -version` prints it:
// "module version (go1.x, rev abcdef0, dirty)".
func (i Info) String() string {
	s := i.Module
	if s == "" {
		s = "aisched"
	}
	v := i.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	s += " " + v + " (" + orUnknown(i.GoVersion)
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	s += ", rev " + orUnknown(rev)
	if i.Dirty {
		s += ", dirty"
	}
	return s + ")"
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

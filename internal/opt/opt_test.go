package opt

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/machine"
	"aisched/internal/verify"
	"aisched/internal/workload"
)

// smallTrace draws a trace the exhaustive oracle can also afford.
func smallTrace(t *testing.T, r *rand.Rand, cfg workload.TraceConfig) *graph.Graph {
	t.Helper()
	for {
		g, err := workload.Trace(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() <= 11 {
			return g
		}
	}
}

// TestExactMatchesExhaustiveOracle is the solver's ground-truth gate: over
// random traces and machines, the branch-and-bound optimum (with all its
// prunes — lower bounds, memoized state signatures, symmetry dominance)
// must equal the exhaustive enumeration over every per-block topological
// order evaluated by the reference hw simulator.
func TestExactMatchesExhaustiveOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	machines := []*machine.Machine{
		machine.SingleUnit(2), machine.SingleUnit(3), machine.SingleUnit(5),
		machine.RS6000(4), machine.Superscalar(2, 4),
	}
	cfgs := []workload.TraceConfig{
		{Blocks: 3, MinSize: 2, MaxSize: 4, IntraProb: 0.4, CrossProb: 0.2, Latency: workload.ZeroOne},
		{Blocks: 2, MinSize: 3, MaxSize: 5, IntraProb: 0.5, CrossProb: 0.3, Latency: workload.Mixed, MaxExec: 3},
		{Blocks: 3, MinSize: 2, MaxSize: 3, IntraProb: 0.3, CrossProb: 0.2, Latency: workload.Mixed, Classes: 3},
	}
	for i := 0; i < 120; i++ {
		cfg := cfgs[i%len(cfgs)]
		m := machines[i%len(machines)]
		if cfg.Classes > 1 {
			m = machine.RS6000(m.Window) // one unit per class for classes 0–2
		}
		g := smallTrace(t, r, cfg)
		want, _, err := verify.OptimalTraceCompletion(g, m)
		if err != nil {
			t.Fatalf("instance %d: exhaustive oracle: %v", i, err)
		}
		got, order, st, err := OptimalTrace(context.Background(), g, m, Limits{})
		if err != nil {
			t.Fatalf("instance %d: OptimalTrace: %v", i, err)
		}
		if got != want {
			t.Fatalf("instance %d: exact %d != exhaustive %d (machine %s, %d nodes, stats %+v)",
				i, got, want, m.Name, g.Len(), st)
		}
		res, err := hw.SimulateTrace(g, m, order)
		if err != nil {
			t.Fatalf("instance %d: simulate winner: %v", i, err)
		}
		if res.Completion != got {
			t.Fatalf("instance %d: winner simulates to %d, solver said %d", i, res.Completion, got)
		}
	}
}

// TestExactBackendSchedule checks the Backend contract: a Validate()-clean
// schedule whose makespan is the optimal completion, and a block-contiguous
// static order.
func TestExactBackendSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	b := NewBackend(Limits{})
	if b.Name() != "exact" {
		t.Fatalf("Name() = %q", b.Name())
	}
	for i := 0; i < 25; i++ {
		cfg := workload.TraceConfig{Blocks: 3, MinSize: 2, MaxSize: 4,
			IntraProb: 0.4, CrossProb: 0.2, Latency: workload.Mixed, MaxExec: 2}
		g := smallTrace(t, r, cfg)
		m := machine.SingleUnit(2 + i%3)
		br, err := b.ScheduleTrace(context.Background(), g, m)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := br.S.Validate(); err != nil {
			t.Fatalf("instance %d: schedule invalid: %v", i, err)
		}
		if len(br.Order) != g.Len() {
			t.Fatalf("instance %d: order covers %d of %d", i, len(br.Order), g.Len())
		}
		lastBlock := -1 << 30
		for _, v := range br.Order {
			if blk := g.Node(v).Block; blk < lastBlock {
				t.Fatalf("instance %d: order not block-contiguous", i)
			} else {
				lastBlock = blk
			}
		}
		want, _, _, err := OptimalTrace(context.Background(), g, m, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if br.S.Makespan() != want {
			t.Fatalf("instance %d: schedule makespan %d != optimum %d", i, br.S.Makespan(), want)
		}
	}
}

// TestExactLimits checks both guard rails: oversized instances are rejected
// up front, and an exhausted expansion budget surfaces as ErrBudget.
func TestExactLimits(t *testing.T) {
	g := graph.New(DefaultMaxNodes + 1)
	for i := 0; i <= DefaultMaxNodes; i++ {
		g.AddUnit("n")
	}
	if _, _, _, err := OptimalTrace(context.Background(), g, machine.SingleUnit(2), Limits{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}

	// lateProducer builds a block where the natural (ID-order) incumbent is
	// suboptimal — the producer of a latency-2 edge has a high ID, so the
	// seed order pays the full stall and the search must actually descend.
	lateProducer := func(fillers int) *graph.Graph {
		g := graph.New(fillers + 2)
		for i := 0; i < fillers; i++ {
			g.AddNode("f", 1, 0, 0)
		}
		a := g.AddNode("a", 1, 0, 0)
		c := g.AddNode("c", 1, 0, 0)
		g.MustEdge(a, c, 2, 0)
		return g
	}
	if _, _, _, err := OptimalTrace(context.Background(), lateProducer(8), machine.SingleUnit(1), Limits{MaxExpansions: 3}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := OptimalTrace(ctx, lateProducer(8), machine.SingleUnit(1), Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestExactSymmetryDominance: a block with interchangeable filler nodes and
// a suboptimal natural order (see TestExactLimits' lateProducer shape, with
// W=1 making the static order binding) — the search must descend, the
// symmetry prune must fire on the fillers, and the result must still match
// the exhaustive oracle.
func TestExactSymmetryDominance(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 4; i++ {
		g.AddNode("f", 1, 0, 0)
	}
	a := g.AddNode("a", 1, 0, 0)
	c := g.AddNode("c", 1, 0, 0)
	g.MustEdge(a, c, 2, 0)
	m := machine.SingleUnit(1) // W=1: strictly in-order, order fully binding
	want, _, err := verify.OptimalTraceCompletion(g, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, st, err := OptimalTrace(context.Background(), g, m, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("exact %d != exhaustive %d", got, want)
	}
	if got != g.Len() {
		t.Fatalf("hoisting the producer should hide the latency entirely: got %d", got)
	}
	if st.SymSkips == 0 {
		t.Fatalf("expected symmetry prunes on interchangeable fillers, stats %+v", st)
	}
}

// TestExactMemoTailReleaseRegression pins the memo-key soundness fix: the
// finish time of a frozen node must enter the state signature whenever any
// successor lies outside the frozen set — including successors in the
// (placed but re-simulated) tail. Before the fix, prefixes [0 1 2 3 4] and
// [1 0 2 3 4] collided here (nodes 0 and 1 share class and exec, and node
// 1's only successor 4 sits in the tail), pruning the true optimum: the
// search returned 12 while [1 0 2 3 4 5 6 7] completes at 11.
func TestExactMemoTailReleaseRegression(t *testing.T) {
	g := graph.New(8)
	n0 := g.AddNode("n0", 1, 0, 0)
	n1 := g.AddNode("n1", 1, 0, 0)
	n2 := g.AddNode("n2", 1, 1, 0)
	n3 := g.AddNode("n3", 1, 0, 0)
	n4 := g.AddNode("n4", 1, 2, 1)
	n5 := g.AddNode("n5", 1, 0, 1)
	n6 := g.AddNode("n6", 1, 0, 2)
	n7 := g.AddNode("n7", 1, 0, 2)
	_ = n0
	g.MustEdge(n1, n4, 1, 0)
	g.MustEdge(n2, n3, 1, 0)
	g.MustEdge(n4, n5, 1, 0)
	g.MustEdge(n4, n6, 1, 0)
	g.MustEdge(n6, n7, 4, 0)
	m := machine.RS6000(2)
	want, _, err := verify.OptimalTraceCompletion(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if want != 11 {
		t.Fatalf("exhaustive oracle says %d, regression instance expects 11", want)
	}
	got, order, _, err := OptimalTrace(context.Background(), g, m, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("memo collision regressed: exact %d != exhaustive %d (order %v)", got, want, order)
	}
}

// TestExactSimulatorAgreesWithHW pins the internal prefix simulator to the
// reference hw model on full streams, including multi-class machines and
// non-unit exec times — the property every prune's soundness rests on.
func TestExactSimulatorAgreesWithHW(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 120; i++ {
		cfg := workload.TraceConfig{Blocks: 1 + r.Intn(3), MinSize: 2, MaxSize: 4,
			IntraProb: 0.4, CrossProb: 0.25, Latency: workload.Mixed,
			Classes: 1 + r.Intn(3), MaxExec: 1 + r.Intn(3)}
		g := smallTrace(t, r, cfg)
		m := machine.RS6000(2 + r.Intn(4))
		s, err := newSolver(context.Background(), g, m, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		// newSolver seeds the incumbent by simulating the natural order
		// internally; replay the same order through hw.
		res, err := hw.SimulateTrace(g, m, s.bestOrder)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion != s.best {
			t.Fatalf("instance %d: internal sim %d != hw %d (order %v)",
				i, s.best, res.Completion, s.bestOrder)
		}
	}
}

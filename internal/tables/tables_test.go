package tables

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Add("alpha", 1)
	tb.Add("beta-long-name", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "beta-long-name") || !strings.Contains(out, "2.50") {
		t.Fatalf("rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: every data line at least as wide as the header line.
	if len(lines[3]) < len(lines[1])-6 {
		t.Fatalf("alignment looks off:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
	want := math.Pow(24, 0.25)
	if math.Abs(s.GeoMean-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", s.GeoMean, want)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
	zero := Summarize([]float64{0, 1})
	if zero.GeoMean != 0 {
		t.Fatal("geomean with zero should be unset")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Fatal("speedup wrong")
	}
	if Speedup(10, 0) != 1 {
		t.Fatal("zero denominator not guarded")
	}
}

func TestPropertySummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.Abs(xs[i]) > 1e100 {
				return true // overflow-prone inputs are out of scope (cycle counts)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

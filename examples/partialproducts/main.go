// Partial products: the paper's Figure 3 example end to end. The mini-C
// fragment computes partial products of a zero-terminated sequence; the
// loop body's multiply has a 4-cycle latency feeding the next iteration's
// store, so the block-optimal schedule (5 cycles per iteration standalone)
// sustains only one iteration every 7 cycles, while the anticipatory
// schedule (6 cycles standalone) sustains one every 6.
package main

import (
	"fmt"
	"log"

	"aisched"
)

const src = `
int x[100];
int y[100];
int i;
y[0] = x[0];
for (i = 1; x[i] != 0; i = i + 1) {
	y[i] = y[i-1] * x[i];
}
y[i] = 0;
`

// fig3Asm is the paper's hand-pipelined 5-instruction version of the same
// loop (the store belongs to the previous iteration).
const fig3Asm = `
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.18
`

func main() {
	m := aisched.SingleUnit(4)

	// --- The paper's exact 5-instruction loop ----------------------------
	blocks, err := aisched.ParseAsm(fig3Asm)
	if err != nil {
		log.Fatal(err)
	}
	g := aisched.BuildLoopGraph(blocks[0].Instrs)
	progOrder := identity(g.Len())
	prog, err := aisched.EvaluateLoopOrder(g, m, progOrder)
	if err != nil {
		log.Fatal(err)
	}
	best, err := aisched.ScheduleLoop(g, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paper's Figure 3 loop (after software pipelining):")
	fmt.Printf("  block-optimal order: %d cycles standalone, %d cycles/iter steady state\n",
		prog.Makespan, prog.II)
	fmt.Printf("  anticipatory order:  %d cycles standalone, %d cycles/iter steady state\n",
		best.Makespan, best.II)
	fmt.Println("  anticipatory body:")
	for _, id := range best.Order {
		fmt.Printf("\t%s\n", blocks[0].Instrs[id].Mnemonic())
	}

	// --- The same loop compiled from C -----------------------------------
	comp, err := aisched.CompileC(src)
	if err != nil {
		log.Fatal(err)
	}
	body := comp.Body(comp.Loops[0])
	cg := aisched.BuildLoopGraph(body)
	cProg, err := aisched.EvaluateLoopOrder(cg, m, identity(cg.Len()))
	if err != nil {
		log.Fatal(err)
	}
	cBest, err := aisched.ScheduleLoop(cg, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame loop compiled from C (%d instructions, unpipelined):\n", len(body))
	fmt.Printf("  program order: %d cycles/iter; anticipatory: %d cycles/iter\n",
		cProg.II, cBest.II)

	// --- Software pipelining + anticipatory post-pass --------------------
	st, k, err := aisched.PipelineThenAnticipate(cg, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  software-pipelined kernel II: %d; after anticipatory post-pass: %d cycles/iter\n",
		k.II, st.II)
}

func identity(n int) []aisched.NodeID {
	out := make([]aisched.NodeID, n)
	for i := range out {
		out[i] = aisched.NodeID(i)
	}
	return out
}

package core

import (
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// mkSched builds a single-unit schedule with the given start times.
func mkSched(t *testing.T, starts []int) *sched.Schedule {
	t.Helper()
	g := graph.New(len(starts))
	for range starts {
		g.AddUnit("n")
	}
	s := sched.New(g, machine.SingleUnit(4))
	for i, st := range starts {
		s.Start[i] = st
		s.Unit[i] = 0
	}
	return s
}

func TestChopNoIdleSlotsKeepsEverything(t *testing.T) {
	s := mkSched(t, []int{0, 1, 2, 3})
	minus, plus, base := Chop(s, 2)
	if len(minus) != 0 || len(plus) != 4 || base != 0 {
		t.Fatalf("chop = (%v, %v, %d), want keep-all", minus, plus, base)
	}
}

func TestChopFewerThanWNodesKeepsEverything(t *testing.T) {
	s := mkSched(t, []int{0, 2}) // idle at 1
	minus, plus, base := Chop(s, 3)
	if len(minus) != 0 || len(plus) != 2 || base != 0 {
		t.Fatalf("chop = (%v, %v, %d), want keep-all (|S| < W)", minus, plus, base)
	}
}

func TestChopAtLastQualifyingSlot(t *testing.T) {
	// Schedule: n0 n1 _ n2 n3 _ n4 n5 — slots at 2 and 5.
	s := mkSched(t, []int{0, 1, 3, 4, 6, 7})
	// W=2: slot 5 has 2 followers (≥ W) → chop there; slot 2 not chosen
	// because 5 is later.
	minus, plus, base := Chop(s, 2)
	if base != 6 {
		t.Fatalf("base = %d, want 6 (slot at 5)", base)
	}
	if len(minus) != 4 || len(plus) != 2 {
		t.Fatalf("minus=%v plus=%v", minus, plus)
	}
	// W=3: slot 5 has only 2 followers < 3; slot 2 has 4 ≥ 3 → chop at 2.
	minus, plus, base = Chop(s, 3)
	if base != 3 {
		t.Fatalf("W=3 base = %d, want 3 (slot at 2)", base)
	}
	if len(minus) != 2 || len(plus) != 4 {
		t.Fatalf("W=3 minus=%v plus=%v", minus, plus)
	}
	// W=5: no slot has ≥ 5 followers → keep everything.
	minus, plus, base = Chop(s, 5)
	if base != 0 || len(minus) != 0 {
		t.Fatalf("W=5 chop = (%v, %v, %d), want keep-all", minus, plus, base)
	}
}

func TestChopOutputsAreInScheduleOrder(t *testing.T) {
	s := mkSched(t, []int{3, 0, 4, 1, 6, 7}) // perm: n1 n3 _ n0 n2 _ n4 n5
	minus, plus, base := Chop(s, 2)
	if base != 6 {
		t.Fatalf("base = %d, want 6", base)
	}
	wantMinus := []graph.NodeID{1, 3, 0, 2}
	for i := range wantMinus {
		if minus[i] != wantMinus[i] {
			t.Fatalf("minus = %v, want %v", minus, wantMinus)
		}
	}
	wantPlus := []graph.NodeID{4, 5}
	for i := range wantPlus {
		if plus[i] != wantPlus[i] {
			t.Fatalf("plus = %v, want %v", plus, wantPlus)
		}
	}
}

func TestChopWindowOneChopsAtLastSlot(t *testing.T) {
	// W=1: every slot with ≥ 1 follower qualifies; chop at the last one.
	s := mkSched(t, []int{0, 2, 4})
	_, plus, base := Chop(s, 1)
	if base != 4 {
		t.Fatalf("W=1 base = %d, want 4", base)
	}
	if len(plus) != 1 || plus[0] != 2 {
		t.Fatalf("plus = %v", plus)
	}
}

#!/bin/sh
# Full local check: build, vet, tests, and the race detector.
# Tier-1 (build + go test ./...) is what CI gates on; vet and -race catch
# what plain tests miss.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./..."
go test -race ./...
echo "check: OK"

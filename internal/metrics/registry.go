package metrics

// Registry: instrument registration and snapshot-time exposition. This side
// of the package runs at scrape frequency, so it may use maps, locks, and
// allocation freely — the record path (record.go) never touches it.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Registry owns a set of named instruments. Registration happens at package
// init (or test setup) under a mutex; the returned instrument pointers are
// then used directly by the record path without ever consulting the
// registry again. Names follow Prometheus conventions
// ([a-zA-Z_:][a-zA-Z0-9_:]*); duplicate registration panics, since it is a
// programming error that would silently split a metric.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every subsystem registers into and
// the one aisched.MetricsSnapshot / ServeDebug expose.
var Default = NewRegistry()

func (r *Registry) checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
}

// NewCounter registers and returns a striped counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	c := &Counter{stripes: make([]padded, stripeCount), name: name, help: help}
	r.counters[name] = c
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// NewHistogram registers and returns a log-linear histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	h := &Histogram{name: name, help: help}
	r.histograms[name] = h
	return h
}

// HistogramSnapshot is one histogram's point-in-time summary. Quantiles are
// estimated from the log-linear buckets with intra-bucket interpolation, so
// each estimate is within one bucket (≤ 2^-subBits relative width) of the
// exact order statistic.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   uint64  `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a registry-wide point-in-time view. Maps marshal with sorted
// keys, so the JSON form is stable for goldens and diffing.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Snapshot captures every instrument's current value. Values are read
// without stopping writers; each individual instrument is internally
// consistent enough for monitoring (counters may be mid-add across
// stripes), and all derived quantiles come from one bucket copy.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot summarizes the histogram from one point-in-time bucket copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	s.P50 = clampQuantile(quantileFrom(&counts, total, 0.50), total, s.Max)
	s.P95 = clampQuantile(quantileFrom(&counts, total, 0.95), total, s.Max)
	s.P99 = clampQuantile(quantileFrom(&counts, total, 0.99), total, s.Max)
	return s
}

// clampQuantile caps a bucket-interpolated estimate at the exact observed
// maximum: interpolation inside the top occupied bucket can otherwise exceed
// every real observation, which reads as nonsense (p99 > max) in dashboards.
// The exact order statistic is ≤ max, so clamping only tightens the estimate.
func clampQuantile(est float64, total uint64, max uint64) float64 {
	if total > 0 && est > float64(max) {
		return float64(max)
	}
	return est
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of everything observed so
// far. Prefer Snapshot when reading several quantiles: it loads the buckets
// once.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return clampQuantile(quantileFrom(&counts, total, q), total, h.max.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// quantileFrom walks the bucket copy to the bucket containing the
// ceil(q·total)-th observation and interpolates linearly inside it.
func quantileFrom(counts *[numBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := math.Ceil(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := counts[i]
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo, width := bucketBounds(i)
			frac := (target - float64(cum)) / float64(c)
			return float64(lo) + frac*float64(width)
		}
		cum += c
	}
	// Unreachable with a consistent copy; return the max bucket bound.
	lo, width := bucketBounds(numBuckets - 1)
	return float64(lo + width)
}

// sortedCounterNames returns registered counter names in order (exposition
// helper; callers hold r.mu).
func (r *Registry) sortedNames() (counters, gauges, histograms []string) {
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}

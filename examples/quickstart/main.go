// Quickstart: build a small dependence graph by hand, schedule one basic
// block with the Rank Algorithm + idle-slot delaying, then schedule a
// two-block trace with Algorithm Lookahead and watch the hardware window
// overlap the blocks.
package main

import (
	"fmt"
	"log"

	"aisched"
)

func main() {
	// --- One basic block -------------------------------------------------
	// load -1-> use ; two independent fillers.
	g := aisched.NewGraph(4)
	load := g.AddUnit("load")
	use := g.AddUnit("use")
	f1 := g.AddUnit("f1")
	f2 := g.AddUnit("f2")
	g.MustEdge(load, use, 1, 0) // use starts ≥ 1 cycle after load completes
	_ = f1
	_ = f2

	m := aisched.SingleUnit(4) // 1 functional unit, lookahead window W = 4
	s, err := aisched.ScheduleBlock(g, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("block schedule (idle slots pushed late):")
	fmt.Println(s)
	fmt.Printf("makespan: %d cycles\n\n", s.Makespan())

	// --- A two-block trace ----------------------------------------------
	// Block 0 ends in a latency-induced idle slot; block 1's first
	// instruction can fill it through the hardware window.
	tg := aisched.NewGraph(5)
	a := tg.AddNode("a", 1, 0, 0)
	b := tg.AddNode("b", 1, 0, 0)
	c := tg.AddNode("c", 1, 0, 0)
	z := tg.AddNode("z", 1, 0, 1)
	q := tg.AddNode("q", 1, 0, 1)
	tg.MustEdge(a, b, 1, 0)
	tg.MustEdge(b, c, 1, 0)
	tg.MustEdge(z, q, 1, 0)

	res, err := aisched.ScheduleTrace(tg, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("anticipatory trace schedule (blocks overlap in the window):")
	fmt.Println(res.S)
	sim, err := aisched.SimulateTrace(tg, m, res.StaticOrder())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic completion on W=4 hardware: %d cycles\n", sim.Completion)
	fmt.Printf("static code for block 0: %v, block 1: %v\n",
		res.BlockOrders[0], res.BlockOrders[1])
	if err := aisched.CheckLegal(res.S, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule is legal per the paper's Definition 2.3")
}

package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// capTestStream is a synthetic stream exercising every order-sensitive piece
// of the Stats derivation: window segments, re-issues, stalls, rollbacks,
// scheduler-pass decisions, and cache/robustness counters.
func capTestStream() []Event {
	var ev []Event
	ev = append(ev,
		Event{Kind: KindPassStart, Pass: PassLookahead},
		Event{Kind: KindMergeLoosen, Block: 0, N: 1},
		Event{Kind: KindMerge, Block: 0, From: 0, To: 5, N: 7},
		Event{Kind: KindDeadlineTighten, Node: 3, From: 7, To: 6},
		Event{Kind: KindSlotMove, Unit: 0, From: 2, To: 5},
		Event{Kind: KindSlotMove, Unit: 0, From: 5, To: -1},
		Event{Kind: KindChop, Block: 0, From: 4, To: 2, N: 5},
		Event{Kind: KindIICandidate, Pass: "base", N: 7, From: 9},
		Event{Kind: KindIICandidate, Pass: "source", Node: 2, N: 6, From: 9},
		Event{Kind: KindPassEnd, Pass: PassLookahead, N: 11},
		Event{Kind: KindCacheMiss, Block: -1},
		Event{Kind: KindCacheHit, Block: -1},
		Event{Kind: KindCacheCoalesce, Block: -1},
		Event{Kind: KindCacheEvict, Block: -1},
		Event{Kind: KindDegrade, Block: -1, Label: "wall-clock"},
		Event{Kind: KindCancel, Block: -1, Label: "context canceled"},
		Event{Kind: KindPassStart, Pass: PassSimulate},
	)
	// Simulated run: occupancy segments interleaved with issues, stalls, and
	// a rollback that forces a re-issue.
	cycle := 0
	for i := 0; i < 40; i++ {
		ev = append(ev, Event{Kind: KindWindow, Cycle: cycle, From: i, N: i % 5})
		ev = append(ev, Event{Kind: KindIssue, Cycle: cycle, Pos: i, Label: "op", N: 1, Unit: i % 2,
			Fill: i%3 == 0, Cross: i%6 == 0})
		cycle++
		if i%7 == 3 {
			ev = append(ev, Event{Kind: KindStall, Cycle: cycle, Reason: StallReason(i % int(NumStallReasons))})
			cycle++
		}
		if i == 20 {
			ev = append(ev, Event{Kind: KindRollback, Cycle: cycle, Pos: 18, N: 2, To: cycle + 1})
			ev = append(ev, Event{Kind: KindIssue, Cycle: cycle + 1, Pos: 19, Label: "op", N: 1})
			cycle += 2
		}
	}
	ev = append(ev, Event{Kind: KindPassEnd, Pass: PassSimulate, N: cycle})
	return ev
}

// TestRecorderCapStatsEquivalence replays the same stream into an unbounded
// recorder and capped recorders of many sizes (including a cap of 1, where
// almost every event is evicted) and requires byte-identical Stats.
func TestRecorderCapStatsEquivalence(t *testing.T) {
	stream := capTestStream()
	ref := NewRecorder()
	for _, e := range stream {
		ref.Emit(e)
	}
	want := ref.Stats()

	for _, cap := range []int{1, 2, 3, 7, 16, 63, len(stream) - 1, len(stream), len(stream) + 10} {
		r := NewRecorderCap(cap)
		for _, e := range stream {
			r.Emit(e)
		}
		got := r.Stats()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cap=%d: Stats diverge from unbounded recorder\n got: %+v\nwant: %+v", cap, got, want)
		}
		// Stats must be repeatable: the snapshot clone must not consume
		// recorder state.
		if again := r.Stats(); !reflect.DeepEqual(again, want) {
			t.Errorf("cap=%d: second Stats() call diverges", cap)
		}
		wantDrops := uint64(0)
		if len(stream) > cap {
			wantDrops = uint64(len(stream) - cap)
		}
		if r.Dropped() != wantDrops {
			t.Errorf("cap=%d: Dropped = %d, want %d", cap, r.Dropped(), wantDrops)
		}
	}
}

// TestRecorderCapRetainsSuffix checks the ring keeps exactly the most recent
// cap events in emission order.
func TestRecorderCapRetainsSuffix(t *testing.T) {
	r := NewRecorderCap(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindIssue, Pos: i})
	}
	ev := r.Events()
	if len(ev) != 4 || r.Len() != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Pos != 6+i {
			t.Fatalf("Events()[%d].Pos = %d, want %d", i, e.Pos, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	s := r.Stats()
	if s.Issues != 0 {
		t.Fatalf("Reset left Issues=%d in stats", s.Issues)
	}
}

// TestRecorderSetMeta checks metadata lands in the Chrome export's otherData
// and that the default export carries none.
func TestRecorderSetMeta(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindIssue, Cycle: 0, Pos: 0, Label: "a", N: 1})

	decode := func(data []byte) map[string]any {
		var out struct {
			OtherData map[string]any `json:"otherData"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out.OtherData
	}

	plain, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if od := decode(plain); len(od) != 2 {
		t.Errorf("default otherData = %v, want only source+unit", od)
	}

	r.SetMeta("build", "aisched v1.2.3 (go1.24, rev abc)")
	stamped, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	od := decode(stamped)
	if got, _ := od["build"].(string); !strings.Contains(got, "v1.2.3") {
		t.Errorf("otherData[build] = %q, want build string", got)
	}
	r.Reset()
	afterReset, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decode(afterReset)["build"]; !ok {
		t.Error("SetMeta metadata should survive Reset")
	}
}

package loops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
)

func TestUnrollFactorOneIsIdentity(t *testing.T) {
	f := paperex.NewFig3()
	ug, origin, err := Unroll(f.G, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ug.Len() != f.G.Len() || ug.NumEdges() != f.G.NumEdges() {
		t.Fatalf("unroll(1) changed shape: %d/%d nodes, %d/%d edges",
			ug.Len(), f.G.Len(), ug.NumEdges(), f.G.NumEdges())
	}
	for i, o := range origin {
		if int(o) != i {
			t.Fatalf("origin[%d] = %d", i, o)
		}
	}
}

func TestUnrollRejectsBadFactor(t *testing.T) {
	f := paperex.NewFig8()
	if _, _, err := Unroll(f.G, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestUnrollFig3Twice(t *testing.T) {
	f := paperex.NewFig3()
	ug, origin, err := Unroll(f.G, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ug.Len() != 10 {
		t.Fatalf("nodes = %d, want 10", ug.Len())
	}
	if !ug.IsAcyclic() {
		t.Fatal("unrolled loop-independent subgraph cyclic")
	}
	// The carried M→ST <4,1> edge becomes an intra edge M@0→ST@1 and a
	// carried edge M@1→ST@0 with distance 1.
	m0, st1 := graph.NodeID(int(f.M)), graph.NodeID(5+int(f.ST))
	foundIntra := false
	for _, e := range ug.Out(m0) {
		if e.Dst == st1 && e.Distance == 0 && e.Latency == 4 {
			foundIntra = true
		}
	}
	if !foundIntra {
		t.Fatal("carried M→ST did not become intra M@0→ST@1")
	}
	m1, st0 := graph.NodeID(5+int(f.M)), graph.NodeID(int(f.ST))
	foundCarried := false
	for _, e := range ug.Out(m1) {
		if e.Dst == st0 && e.Distance == 1 && e.Latency == 4 {
			foundCarried = true
		}
	}
	if !foundCarried {
		t.Fatal("wrap-around carried edge M@1→ST@0 missing")
	}
	if origin[5+int(f.M)] != f.M {
		t.Fatal("origin mapping wrong")
	}
}

func TestUnrollSteadyStateNeverWorsePerIteration(t *testing.T) {
	// Unrolling Figure 3 by 2 must not be worse per original iteration than
	// the un-unrolled general case (II 6).
	f := paperex.NewFig3()
	m := machine.SingleUnit(8)
	u, err := UnrollAndSchedule(f.G, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if per := u.PerIteration(); per > 6.0+1e-9 {
		t.Fatalf("unrolled per-iteration %f worse than 6", per)
	}
}

func TestPropertyUnrollPreservesSemanticsOfII(t *testing.T) {
	// The unrolled body's best II per original iteration never exceeds the
	// original's best II (unrolling only adds freedom) and respects the
	// recurrence bound scaled by k.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddUnit("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
				}
			}
		}
		g.MustEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), 1+r.Intn(3), 1)
		m := machine.SingleUnit(8)
		base, err := ScheduleSingleBlockLoop(g, m)
		if err != nil {
			return false
		}
		u, err := UnrollAndSchedule(g, m, 2)
		if err != nil {
			return false
		}
		// Tolerance 1e-9; per-iteration can only improve or match up to the
		// integer ceiling of II (unrolled II is an integer over 2 iters).
		return u.PerIteration() <= float64(base.II)+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnrolledGraphWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddUnit("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
				}
			}
		}
		// A couple of carried edges, possibly with distance 2.
		for c := 0; c < 2; c++ {
			g.MustEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)), r.Intn(3), 1+r.Intn(2))
		}
		k := 2 + r.Intn(3)
		ug, origin, err := Unroll(g, k)
		if err != nil {
			return false
		}
		if ug.Len() != n*k || len(origin) != n*k {
			return false
		}
		if !ug.IsAcyclic() {
			return false
		}
		// Total edge multiplicity is preserved: each original edge expands
		// to exactly k instances.
		return ug.NumEdges() == g.NumEdges()*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package sched

// Release-floor snapshot comparison for speculative trace scheduling
// (internal/core's parallel driver). A release floor is the absolute
// earliest-start owed to a node by latencies of already-committed
// predecessors; the merge engine only ever sees floors rebased to the
// current chop frame and clamped at zero (a floor at or below the frame
// base is inert — it can never delay anything — and the step-cache key
// hashes only positive rebased floors). Two floor states are therefore
// behaviorally identical exactly when their clamped, rebased values agree,
// even if the raw absolute values differ.

// ClampRelease rebases an absolute release floor to a frame base and clamps
// the inert region to zero — the canonical form every comparison and
// fingerprint of floors must use.
func ClampRelease(abs, base int) int {
	if r := abs - base; r > 0 {
		return r
	}
	return 0
}

// ReleasesEqual reports whether two dense absolute release-floor snapshots
// over the same node range are behaviorally identical: equal length and,
// per node, equal clamped frame-relative floors. a is compared rebased to
// aBase, b rebased to bBase.
func ReleasesEqual(a []int, aBase int, b []int, bBase int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if ClampRelease(a[i], aBase) != ClampRelease(b[i], bBase) {
			return false
		}
	}
	return true
}

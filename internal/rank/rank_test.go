package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
)

func TestComputeFigure1PaperRanks(t *testing.T) {
	// §2.1: with every deadline 100, rank(a)=rank(r)=100, rank(w)=rank(b)=98,
	// rank(x)=rank(e)=95.
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	ranks, err := Compute(f.G, m, UniformDeadlines(f.G.Len(), 100))
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.NodeID]int{f.A: 100, f.R: 100, f.W: 98, f.B: 98, f.X: 95, f.E: 95}
	for id, w := range want {
		if ranks[id] != w {
			t.Errorf("rank(%s) = %d, want %d", f.G.Node(id).Label, ranks[id], w)
		}
	}
}

func TestRunFigure1MakespanAndIdleSlot(t *testing.T) {
	// §2.1-2.2: the paper's tie order (e,x,b,w,a,r) yields a makespan-7
	// schedule with one idle slot at time 2.
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	res, err := Run(f.G, m, UniformDeadlines(f.G.Len(), 100), f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("deadline-100 schedule reported infeasible")
	}
	if got := res.S.Makespan(); got != 7 {
		t.Fatalf("makespan = %d, want 7\n%s", got, res.S)
	}
	idles := res.S.IdleSlots()
	if len(idles) != 1 || idles[0] != 2 {
		t.Fatalf("idle slots = %v, want [2]\n%s", idles, res.S)
	}
	if err := res.S.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeFigure2PaperRanks(t *testing.T) {
	// §2.3: merged BB1 ∪ BB2 under deadline 100: rank(g)=rank(v)=rank(a)=
	// rank(r)=100, rank(p)=rank(b)=98, rank(q)=97, rank(z)=95, rank(w)=93,
	// rank(e)=91, rank(x)=90.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	ranks, err := Compute(f.G, m, UniformDeadlines(f.G.Len(), 100))
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.NodeID]int{
		f.Gn: 100, f.V: 100, f.A: 100, f.R: 100,
		f.P: 98, f.B: 98, f.Q: 97, f.Z: 95, f.W: 93, f.E: 91, f.X: 90,
	}
	for id, w := range want {
		if ranks[id] != w {
			t.Errorf("rank(%s) = %d, want %d", f.G.Node(id).Label, ranks[id], w)
		}
	}
}

func TestRunFigure2MergedMakespan11(t *testing.T) {
	// §2.3: the lower bound on a legal schedule for BB1 ∪ BB2 is 11, achieved
	// by rank_alg on the merged graph.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	res, err := Run(f.G, m, UniformDeadlines(f.G.Len(), 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.S.Makespan(); got != 11 {
		t.Fatalf("merged makespan = %d, want 11\n%s", got, res.S)
	}
	if err := res.S.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRanksEqualDeadlinesForSinks(t *testing.T) {
	g := graph.New(3)
	g.AddUnit("a")
	g.AddUnit("b")
	g.AddUnit("c")
	d := []int{10, 20, 30}
	ranks, err := Compute(g, machine.SingleUnit(1), d)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range d {
		if ranks[i] != w {
			t.Fatalf("independent node rank[%d] = %d, want deadline %d", i, ranks[i], w)
		}
	}
}

func TestRankChainWithLatencies(t *testing.T) {
	// a -ℓ=1-> b -ℓ=0-> c, deadlines 10: rank(c)=10, rank(b)=9 (start(c)=9,
	// ℓ=0), rank(a)=start(b)−1 = 8−1 = 7.
	g := graph.New(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, c, 0, 0)
	ranks, err := Compute(g, machine.SingleUnit(1), UniformDeadlines(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if ranks[c] != 10 || ranks[b] != 9 || ranks[a] != 7 {
		t.Fatalf("ranks = %v, want [7 9 10]", ranks)
	}
}

func TestRankDetectsInfeasibleDeadlines(t *testing.T) {
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	// b must finish by 2 → a by 0 < exec: infeasible.
	res, err := Run(g, machine.SingleUnit(1), []int{100, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("infeasible deadlines reported feasible")
	}
}

func TestRankFeasibleTightDeadlines(t *testing.T) {
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	res, err := Run(g, machine.SingleUnit(1), []int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("feasible tight deadlines reported infeasible")
	}
	if res.S.Start[a] != 0 || res.S.Start[b] != 2 {
		t.Fatalf("schedule = %v", res.S.Start)
	}
}

func TestDeadlinesShapeTheSchedule(t *testing.T) {
	// Two independent nodes; the one with the tighter deadline goes first
	// regardless of ID order.
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	res, err := Run(g, machine.SingleUnit(1), []int{10, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.S.Start[b] != 0 || res.S.Start[a] != 1 {
		t.Fatalf("deadline priority ignored: %v", res.S.Start)
	}
	if !res.Feasible {
		t.Fatal("should be feasible")
	}
}

func TestListFromRanksTieOrder(t *testing.T) {
	g := graph.New(3)
	g.AddUnit("a")
	g.AddUnit("b")
	g.AddUnit("c")
	ranks := []int{5, 5, 1}
	tie := []graph.NodeID{1, 0, 2}
	list := ListFromRanks(g, ranks, tie)
	want := []graph.NodeID{2, 1, 0}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("list = %v, want %v", list, want)
		}
	}
}

func TestRebase(t *testing.T) {
	d := []int{100, 100, 100}
	r := Rebase(d, 93)
	for _, v := range r {
		if v != 7 {
			t.Fatalf("Rebase result %v, want all 7", r)
		}
	}
	if d[0] != 100 {
		t.Fatal("Rebase mutated input")
	}
}

func TestComputeRejectsWrongDeadlineCount(t *testing.T) {
	g := graph.New(2)
	g.AddUnit("a")
	g.AddUnit("b")
	if _, err := Compute(g, machine.SingleUnit(1), []int{1}); err == nil {
		t.Fatal("wrong-length deadlines accepted")
	}
}

func TestMakespanConvenience(t *testing.T) {
	f := paperex.NewFig1()
	s, err := Makespan(f.G, machine.SingleUnit(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 7 {
		t.Fatalf("Makespan schedule = %d, want 7", s.Makespan())
	}
}

func TestRankMultiUnitBackwardPack(t *testing.T) {
	// Two sinks of different classes can share the latest slot on a
	// two-class machine, so their common parent's rank is less constrained
	// than on a single unit.
	g := graph.New(3)
	p := g.AddNode("p", 1, 0, 0)
	s1 := g.AddNode("s1", 1, 0, 0)
	s2 := g.AddNode("s2", 1, 1, 0)
	g.MustEdge(p, s1, 0, 0)
	g.MustEdge(p, s2, 0, 0)
	d := UniformDeadlines(3, 10)

	single := machine.SingleUnit(1)
	rSingle, err := Compute(g, single, d)
	if err != nil {
		t.Fatal(err)
	}
	// Single unit: pack s1@10, s2@9 → rank(p) = start(s2) = 8.
	if rSingle[p] != 8 {
		t.Fatalf("single-unit rank(p) = %d, want 8", rSingle[p])
	}

	multi := machine.NewMachine("2class", []int{1, 1}, 1)
	rMulti, err := Compute(g, multi, d)
	if err != nil {
		t.Fatal(err)
	}
	// Separate classes: both sinks complete at 10 → rank(p) = 9.
	if rMulti[p] != 9 {
		t.Fatalf("multi-unit rank(p) = %d, want 9", rMulti[p])
	}
}

func TestRankNonUnitExecTimes(t *testing.T) {
	// p → long(exec 3) with deadline 10: long's backward start is 7, so
	// rank(p) = 7 (latency 0).
	g := graph.New(2)
	p := g.AddUnit("p")
	long := g.AddNode("long", 3, 0, 0)
	g.MustEdge(p, long, 0, 0)
	ranks, err := Compute(g, machine.SingleUnit(1), UniformDeadlines(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if ranks[p] != 7 {
		t.Fatalf("rank(p) = %d, want 7", ranks[p])
	}
}

func randomUETDAG(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
			}
		}
	}
	return g
}

func TestPropertyRankScheduleValidAndFeasibleWithBigDeadlines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(25), 0.3)
		m := machine.SingleUnit(4)
		res, err := Run(g, m, UniformDeadlines(g.Len(), Big), nil)
		if err != nil {
			return false
		}
		return res.Feasible && res.S.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRankIsUpperBoundInRankSchedule(t *testing.T) {
	// In the schedule produced by rank_alg with feasible deadlines, every
	// node finishes by its rank (ranks are achievable completion bounds).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(20), 0.3)
		m := machine.SingleUnit(4)
		res, err := Run(g, m, UniformDeadlines(g.Len(), Big), nil)
		if err != nil || !res.Feasible {
			return false
		}
		for v := 0; v < g.Len(); v++ {
			if res.S.Finish(graph.NodeID(v)) > res.Ranks[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRanksMonotoneInDeadlines(t *testing.T) {
	// Loosening every deadline cannot decrease any rank.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(20), 0.3)
		m := machine.SingleUnit(4)
		d1 := make([]int, g.Len())
		for i := range d1 {
			d1[i] = 20 + r.Intn(30)
		}
		d2 := make([]int, g.Len())
		for i := range d2 {
			d2[i] = d1[i] + r.Intn(10)
		}
		r1, err1 := Compute(g, m, d1)
		r2, err2 := Compute(g, m, d2)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1 {
			if r2[i] < r1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRebasedRanksShiftExactly(t *testing.T) {
	// Compute with deadline D, then with deadline D−k: every rank shifts
	// down by exactly k (rank computation is translation-invariant).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(20), 0.3)
		m := machine.SingleUnit(4)
		k := 1 + r.Intn(50)
		r1, err1 := Compute(g, m, UniformDeadlines(g.Len(), 1000))
		r2, err2 := Compute(g, m, UniformDeadlines(g.Len(), 1000-k))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1 {
			if r1[i]-r2[i] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/sched"
	"aisched/internal/verify"
)

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name() == "" || seen[s.Name()] {
			t.Fatalf("duplicate or empty scheduler name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 baselines, got %d", len(seen))
	}
}

func TestSourceOrderIsIdentity(t *testing.T) {
	f := paperex.NewFig1()
	order, err := SourceOrder{}.Order(f.G, machine.SingleUnit(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if int(id) != i {
			t.Fatalf("source order not identity: %v", order)
		}
	}
}

func TestEveryBaselineProducesValidPermutation(t *testing.T) {
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	for _, s := range All() {
		order, err := ScheduleTrace(s, f.G, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(order) != f.G.Len() {
			t.Fatalf("%s: emitted %d of %d", s.Name(), len(order), f.G.Len())
		}
		seen := make([]bool, f.G.Len())
		for _, id := range order {
			if seen[id] {
				t.Fatalf("%s: duplicate node %d", s.Name(), id)
			}
			seen[id] = true
		}
		// Local schedulers must keep blocks contiguous.
		lastBlock := -1
		for _, id := range order {
			b := f.G.Node(id).Block
			if b < lastBlock {
				t.Fatalf("%s: block order violated: %v", s.Name(), order)
			}
			lastBlock = b
		}
		// The emitted order must execute without deadlock.
		if _, err := hw.SimulateTrace(f.G, m, order); err != nil {
			t.Fatalf("%s: emitted order does not execute: %v", s.Name(), err)
		}
	}
}

func TestCriticalPathBeatsSourceOrderOnLatencyChain(t *testing.T) {
	// Source order `a b c long-chain` stalls; critical-path hoists the
	// chain. Construct: independent filler first in program order, chain
	// last — CP must reorder and win.
	g := graph.New(5)
	f1 := g.AddNode("f1", 1, 0, 0)
	f2 := g.AddNode("f2", 1, 0, 0)
	c1 := g.AddNode("c1", 1, 0, 0)
	c2 := g.AddNode("c2", 1, 0, 0)
	c3 := g.AddNode("c3", 1, 0, 0)
	g.MustEdge(c1, c2, 1, 0)
	g.MustEdge(c2, c3, 1, 0)
	_ = f1
	_ = f2
	m := machine.SingleUnit(1)
	so, _ := SourceOrder{}.Order(g, m)
	cp, _ := CriticalPath{}.Order(g, m)
	sSo, err := sched.ListSchedule(g, m, so)
	if err != nil {
		t.Fatal(err)
	}
	sCp, err := sched.ListSchedule(g, m, cp)
	if err != nil {
		t.Fatal(err)
	}
	if sCp.Makespan() >= sSo.Makespan() {
		t.Fatalf("critical path (%d) did not beat source order (%d)", sCp.Makespan(), sSo.Makespan())
	}
	if sCp.Makespan() != 5 {
		t.Fatalf("critical path makespan = %d, want 5 (c1 c2 c3 interleaved with fillers)", sCp.Makespan())
	}
}

func TestRankLocalOptimalOnFigure1(t *testing.T) {
	f := paperex.NewFig1()
	m := machine.SingleUnit(1)
	order, err := RankLocal{}.Order(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedule(f.G, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 7 {
		t.Fatalf("rank-local makespan = %d, want 7", s.Makespan())
	}
}

func TestCoffmanGrahamOptimalZeroLatencyTwoUnits(t *testing.T) {
	// CG is optimal for 2 identical processors, zero latencies, UET.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(6)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddUnit("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), 0, 0)
				}
			}
		}
		m := machine.Superscalar(2, 1)
		order, err := CoffmanGraham{}.Order(g, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ListSchedule(g, m, order)
		if err != nil {
			t.Fatal(err)
		}
		// Lower bound: max(critical path, ceil(n/2)).
		cp, _ := g.CriticalPathLengths()
		lb := (n + 1) / 2
		for _, v := range cp {
			if v > lb {
				lb = v
			}
		}
		if s.Makespan() != lb {
			// CG optimality guarantees makespan = optimum; optimum ≥ lb and
			// for these instances the bound is tight in most cases — verify
			// against brute force on a single unit-equivalent? Keep the
			// check conservative: within 1 of the lower bound.
			if s.Makespan() > lb+1 {
				t.Fatalf("coffman-graham makespan %d far from lower bound %d", s.Makespan(), lb)
			}
		}
	}
}

func TestPropertyRankLocalNeverWorseThanOtherLocals(t *testing.T) {
	// Rank-local is optimal per block in the restricted model, so its
	// per-block makespans (and hence the no-overlap sum) are minimal.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddUnit("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
				}
			}
		}
		m := machine.SingleUnit(1)
		mk := func(s Scheduler) int {
			order, err := s.Order(g, m)
			if err != nil {
				return -1
			}
			sc, err := sched.ListSchedule(g, m, order)
			if err != nil {
				return -1
			}
			return sc.Makespan()
		}
		rl := mk(RankLocal{})
		if rl < 0 {
			return false
		}
		for _, s := range All() {
			v := mk(s)
			if v < 0 || v < rl {
				return false
			}
		}
		// And rank-local matches the brute-force optimum.
		opt, err := verify.OptimalMakespan(g, m)
		if err != nil {
			return false
		}
		return rl == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

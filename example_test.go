package aisched_test

import (
	"fmt"
	"log"

	"aisched"
)

// Schedule one basic block: a load feeding a use with a 1-cycle latency,
// plus an independent filler. The Rank Algorithm fills the latency gap and
// Delay_Idle_Slots would push any remaining idle to the end of the block.
func ExampleScheduleBlock() {
	g := aisched.NewGraph(3)
	load := g.AddUnit("load")
	use := g.AddUnit("use")
	fill := g.AddUnit("fill")
	g.MustEdge(load, use, 1, 0)
	_ = fill

	m := aisched.SingleUnit(4)
	s, err := aisched.ScheduleBlock(g, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
	fmt.Println("makespan:", s.Makespan())
	// Output:
	// u0: [load fill use]
	// makespan: 3
}

// Anticipatory trace scheduling: block 0 ends in a latency-induced idle
// slot; block 1's independent instruction fills it through the hardware
// window at run time, although the emitted code never moves it across the
// block boundary.
func ExampleScheduleTrace() {
	g := aisched.NewGraph(4)
	a := g.AddNode("a", 1, 0, 0)
	b := g.AddNode("b", 1, 0, 0)
	z := g.AddNode("z", 1, 0, 1)
	q := g.AddNode("q", 1, 0, 1)
	g.MustEdge(a, b, 2, 0) // 2-cycle latency: idle slots after a
	g.MustEdge(z, q, 0, 0)

	m := aisched.SingleUnit(4)
	res, err := aisched.ScheduleTrace(g, m)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := aisched.SimulateTrace(g, m, res.StaticOrder())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dynamic completion:", sim.Completion)
	fmt.Println("block 0 code:", len(res.BlockOrders[0]), "instructions")
	// Output:
	// dynamic completion: 4
	// block 0 code: 2 instructions
}

// Loop scheduling reproduces the paper's Figure 3 result: the
// block-optimal body runs one iteration every 7 cycles in steady state,
// while the anticipatory body sustains one every 6.
func ExampleScheduleLoop() {
	blocks, err := aisched.ParseAsm(`
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi   cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.18
`)
	if err != nil {
		log.Fatal(err)
	}
	g := aisched.BuildLoopGraph(blocks[0].Instrs)
	m := aisched.SingleUnit(4)
	st, err := aisched.ScheduleLoop(g, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steady-state cycles/iteration:", st.II)
	// Output:
	// steady-state cycles/iteration: 6
}

// Compile mini-C, pick the hot trace, and emit scheduled assembly.
func ExampleCompileC() {
	comp, err := aisched.CompileC(`
int a;
int b;
a = 5;
b = a * a;
a = b + 1;
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocks:", len(comp.Blocks))
	fmt.Println("instructions in block 0:", len(comp.Blocks[0].Instrs))
	// Output:
	// blocks: 1
	// instructions in block 0: 3
}

//go:build !asan

package testutil

// AsanEnabled reports whether this binary was built with -asan (see
// asan_on.go).
const AsanEnabled = false

package aisched_test

// paper_test.go is an executable walkthrough of Sarkar & Simons (SPAA '96)
// §2, "Examples": every number the paper prints along the way is asserted
// in the order the narrative introduces it. Read it top to bottom alongside
// the paper.

import (
	"testing"

	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/idle"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

func TestPaperWalkthrough(t *testing.T) {
	// ------------------------------------------------------------------
	// §2.1 — The Rank Algorithm on basic block BB1 (Figure 1).
	//
	// "Each node is given an artificial deadline of 100. ... instructions a
	// and r must complete no later than 100, and instructions w and b must
	// complete no later than 98. ... The rank computations yield rank(x) =
	// rank(e) = 95."
	// ------------------------------------------------------------------
	f1 := paperex.NewFig1()
	m := machine.SingleUnit(2)
	ranks, err := rank.Compute(f1.G, m, rank.UniformDeadlines(f1.G.Len(), 100))
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "rank(a)", 100, ranks[f1.A])
	assertEq(t, "rank(r)", 100, ranks[f1.R])
	assertEq(t, "rank(w)", 98, ranks[f1.W])
	assertEq(t, "rank(b)", 98, ranks[f1.B])
	assertEq(t, "rank(x)", 95, ranks[f1.X])
	assertEq(t, "rank(e)", 95, ranks[f1.E])

	// "Suppose the ordering we choose is: e, x, b, w, a, r. The greedy
	// algorithm will then use this ordering to obtain the schedule shown in
	// the middle of Figure 1" — makespan 7 with an idle slot at time 2.
	res1, err := rank.Run(f1.G, m, rank.UniformDeadlines(f1.G.Len(), 100), f1.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "BB1 makespan", 7, res1.S.Makespan())
	slots := res1.S.IdleSlots()
	if len(slots) != 1 {
		t.Fatalf("BB1 idle slots = %v, want one", slots)
	}
	assertEq(t, "BB1 idle slot", 2, slots[0])

	// ------------------------------------------------------------------
	// §2.2 — Moving the idle slot as late as possible.
	//
	// "if we reduce the deadlines and ranks of all the nodes of the basic
	// block by 100 − 7 = 93 ... the idle slot could be moved to a later time
	// only if x is started earlier. So we set its deadline d(x) = 1. The new
	// schedule ... also has a makespan of 7, but the idle slot occurs at a
	// later time."
	// ------------------------------------------------------------------
	d := rank.Rebase(rank.UniformDeadlines(f1.G.Len(), 100), 93)
	moved, err := idle.MoveIdleSlot(res1.S, m, d, 0, 2, f1.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	if !moved.Moved {
		t.Fatal("§2.2: the idle slot did not move")
	}
	assertEq(t, "moved idle slot", 5, moved.NewStart)
	assertEq(t, "makespan after move", 7, moved.S.Makespan())
	assertEq(t, "committed d(x)", 1, moved.D[f1.X])

	// ------------------------------------------------------------------
	// §2.3 — Anticipatory scheduling for two basic blocks (Figure 2).
	//
	// "Now suppose there is a latency 1 edge from instruction w in BB1 to
	// instruction z in BB2 ... The rank computation gives the following
	// values: rank(g) = rank(v) = rank(a) = rank(r) = 100, rank(p) = rank(b)
	// = 98, rank(q) = 97, rank(z) = 95, rank(w) = 93, rank(e) = 91,
	// rank(x) = 90."
	// ------------------------------------------------------------------
	f2 := paperex.NewFig2()
	ranks2, err := rank.Compute(f2.G, m, rank.UniformDeadlines(f2.G.Len(), 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		id   graph.NodeID
		want int
	}{
		{"rank(g)", f2.Gn, 100}, {"rank(v)", f2.V, 100}, {"rank(a)", f2.A, 100},
		{"rank(r)", f2.R, 100}, {"rank(p)", f2.P, 98}, {"rank(b)", f2.B, 98},
		{"rank(q)", f2.Q, 97}, {"rank(z)", f2.Z, 95}, {"rank(w)", f2.W, 93},
		{"rank(e)", f2.E, 91}, {"rank(x)", f2.X, 90},
	} {
		assertEq(t, "§2.3 "+c.name, c.want, ranks2[c.id])
	}

	// "after first determining a lower bound on the completion time of a
	// legal schedule for BB1 ∪ BB2, which in this case is 11" — and
	// Algorithm Lookahead achieves it with a schedule that is legal for
	// W = 2 (window + ordering constraints).
	la, err := core.Lookahead(f2.G, m)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "trace makespan", 11, la.Makespan())
	if err := sched.CheckLegal(la.S, 2); err != nil {
		t.Fatalf("§2.3 legality: %v", err)
	}
	sim, err := hw.SimulateTrace(f2.G, m, la.StaticOrder())
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "simulated completion on W=2 hardware", 11, sim.Completion)

	// ------------------------------------------------------------------
	// §2.4 — The partial-products loop (Figure 3).
	//
	// "The first is an optimal schedule for the basic block ... a completion
	// time of 5 cycles ... However, in steady-state this schedule executes
	// one iteration every 7 cycles. ... the second schedule has a completion
	// time of 6 cycles for a single iteration, but it also executes one
	// iteration every 6 cycles in steady-state."
	// ------------------------------------------------------------------
	f3 := paperex.NewFig3()
	m4 := machine.SingleUnit(4)
	s1, err := loops.Evaluate(f3.G, m4, f3.Schedule1)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "schedule1 single iteration", 5, s1.Makespan)
	assertEq(t, "schedule1 steady state", 7, s1.II)
	s2, err := loops.Evaluate(f3.G, m4, f3.Schedule2)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "schedule2 single iteration", 6, s2.Makespan)
	assertEq(t, "schedule2 steady state", 6, s2.II)

	// "In general, a schedule which is optimal for a single basic block can
	// be suboptimal in steady-state" — the §5.2.3 general case picks
	// schedule 2 ("Schedule 2 ... is obtained when the MULTIPLY instruction
	// is selected as a candidate for the source node").
	best, err := loops.ScheduleSingleBlockLoop(f3.G, m4)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "general-case II", 6, best.II)

	// ------------------------------------------------------------------
	// §5.2.2/Figure 8 — duality and the counter-example.
	//
	// "The equivalent acyclic graph is completely symmetric with respect to
	// nodes 1 and 2, but it is clear that node 2 should be scheduled first
	// to hide the latency of the loop-carried dependence (see schedules S1
	// and S2 ...)" — S1 completes n iterations in 5n−1 cycles, S2 in 4n.
	// ------------------------------------------------------------------
	f8 := paperex.NewFig8()
	s81, err := loops.Evaluate(f8.G, m4, f8.S1)
	if err != nil {
		t.Fatal(err)
	}
	s82, err := loops.Evaluate(f8.G, m4, f8.S2)
	if err != nil {
		t.Fatal(err)
	}
	assertEq(t, "S1 completion(10)", 49, s81.CompletionN(10))
	assertEq(t, "S2 completion(10)", 40, s82.CompletionN(10))
	snk, err := loops.SingleSinkOrder(f8.G, m4, f8.N3)
	if err != nil {
		t.Fatal(err)
	}
	if snk[0] != f8.N2 {
		t.Fatalf("single-sink transform should schedule node 2 first, got %v", snk)
	}
}

func assertEq(t *testing.T, what string, want, got int) {
	t.Helper()
	if want != got {
		t.Fatalf("%s = %d, paper says %d", what, got, want)
	}
}

// Allocation-budget tests for the arena-backed scheduling core (PR 5).
// allocs/op is deterministic (unlike wall-clock), so these pin the hot-path
// budgets exactly where benchsnap's ±2% gate would allow drift to accumulate:
// a regression that doubles allocations inside the noise floor of ns/op still
// fails here.
package aisched

import (
	"math/rand"
	"testing"

	"aisched/internal/machine"
	"aisched/internal/workload"

	"aisched/internal/testutil"
)

// TestScheduleTraceAllocBudget pins the end-to-end trace-scheduling
// allocation count on the benchsnap workload (seed-11 trace, single-unit
// W=4). The arena/CSR core brought this from 916 allocs/op to ~200; the
// budget leaves headroom for incidental growth but fails long before the
// pre-arena count.
func TestScheduleTraceAllocBudget(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.SingleUnit(4)
	// Warm the scratch pools so the measurement sees steady state, the same
	// regime the batch pipeline and the benchmarks run in.
	for i := 0; i < 3; i++ {
		if _, err := ScheduleTrace(g, m); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 250
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ScheduleTrace(g, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("ScheduleTrace: %.0f allocs/op, budget %d", allocs, budget)
	}
	t.Logf("ScheduleTrace: %.0f allocs/op (budget %d)", allocs, budget)
}

// TestScheduleTraceAllocExactSpecOff pins the default trace path — which
// stays sequential on this workload, since six blocks are far below the
// speculative parallel path's auto threshold — at BENCH_PR8's exact 133
// allocs/op. The parallel dispatch gate must cost an integer compare, not
// an allocation: any drift here means speculation leaked into the small-
// trace hot path.
func TestScheduleTraceAllocExactSpecOff(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.SingleUnit(4)
	for i := 0; i < 3; i++ {
		if _, err := ScheduleTrace(g, m); err != nil {
			t.Fatal(err)
		}
	}
	const exact = 133
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ScheduleTrace(g, m); err != nil {
			t.Fatal(err)
		}
	})
	if int(allocs) != exact {
		t.Fatalf("ScheduleTrace: %.0f allocs/op, want exactly %d (BENCH_PR8 baseline)", allocs, exact)
	}
}

// TestSimulateTraceAllocBudget pins the simulator at its two unavoidable
// allocations per run: the Issued slice and the Result, both of which escape
// to the caller. The window bookkeeping itself (pending bitset, stream,
// finish times, unit clocks) must come from the pooled scratch.
func TestSimulateTraceAllocBudget(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.SingleUnit(4)
	res, err := ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	order := res.StaticOrder()
	for i := 0; i < 3; i++ {
		if _, err := SimulateTrace(g, m, order); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SimulateTrace(g, m, order); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("SimulateTrace: %.0f allocs/op, budget 2", allocs)
	}
}

package loops

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
)

// setCandidateWorkers pins the candidate worker pool width for the duration
// of a test and restores the GOMAXPROCS default afterwards.
func setCandidateWorkers(t *testing.T, n int) {
	t.Helper()
	old := candidateWorkers
	candidateWorkers = func() int { return n }
	t.Cleanup(func() { candidateWorkers = old })
}

// manyCandidateLoop builds a loop body with loop-carried edges into and out
// of several distinct nodes, so the §5.2.3 search has a wide candidate set
// (base + multiple sources + multiple sinks).
func manyCandidateLoop(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddUnit(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
			}
		}
	}
	for k := 0; k < 3+r.Intn(4); k++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		g.MustEdge(u, v, 2+r.Intn(3), 1+r.Intn(2))
	}
	return g
}

func sameEvents(a, b []obs.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialParallelCandidateSearchMatchesSerial pins the worker-pool
// evaluation to the serial loop it replaced: same chosen schedule and the
// same trace event stream (candidate events in candidate order), regardless
// of pool width.
func TestDifferentialParallelCandidateSearchMatchesSerial(t *testing.T) {
	m := machine.SingleUnit(4)
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := manyCandidateLoop(r, 3+r.Intn(8))

		setCandidateWorkers(t, 1)
		serialRec := obs.NewRecorder()
		serial, err := ScheduleSingleBlockLoopT(g, m, serialRec)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}

		for _, workers := range []int{2, 4, 16} {
			setCandidateWorkers(t, workers)
			rec := obs.NewRecorder()
			par, err := ScheduleSingleBlockLoopT(g, m, rec)
			if err != nil {
				t.Fatalf("seed %d workers %d: parallel: %v", seed, workers, err)
			}
			if par.II != serial.II || par.Makespan != serial.Makespan {
				t.Fatalf("seed %d workers %d: (II,makespan)=(%d,%d), serial (%d,%d)",
					seed, workers, par.II, par.Makespan, serial.II, serial.Makespan)
			}
			if fmt.Sprint(par.Order) != fmt.Sprint(serial.Order) {
				t.Fatalf("seed %d workers %d: orders differ\n got %v\n want %v",
					seed, workers, par.Order, serial.Order)
			}
			for v := 0; v < par.S.G.Len(); v++ {
				if par.S.Start[v] != serial.S.Start[v] || par.S.Unit[v] != serial.S.Unit[v] {
					t.Fatalf("seed %d workers %d: schedule differs at node %d", seed, workers, v)
				}
			}
			if !sameEvents(rec.Events(), serialRec.Events()) {
				t.Fatalf("seed %d workers %d: trace events differ\n got %v\n want %v",
					seed, workers, rec.Events(), serialRec.Events())
			}
		}
	}
}

// TestRaceParallelCandidateSearch drives wide candidate sets through a
// deliberately oversubscribed pool so `go test -race` exercises the
// concurrent path (workers beyond GOMAXPROCS force goroutine interleaving).
func TestRaceParallelCandidateSearch(t *testing.T) {
	setCandidateWorkers(t, 8)
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := manyCandidateLoop(r, 6+r.Intn(6))
		for _, m := range []*machine.Machine{machine.SingleUnit(4), machine.Superscalar(2, 4)} {
			st, err := ScheduleSingleBlockLoopT(g, m, obs.NewRecorder())
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, m.Name, err)
			}
			if st == nil || st.II < 1 || st.S.Validate() != nil {
				t.Fatalf("seed %d on %s: invalid steady state", seed, m.Name)
			}
		}
	}
}

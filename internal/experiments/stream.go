package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"aisched"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// S1 evaluates the streaming scheduler against batch Algorithm Lookahead on
// two axes:
//
//  1. Completion gap vs the lookahead k. Each trace is streamed at k ∈
//     {0, 1, 2, 4, ∞} and the finalized static order is run through the
//     window simulator; the table reports the mean dynamic completion and
//     its gap vs the batch schedule, plus the worst emit lag observed. The
//     gap is what bounded finality costs: k = 0 finalizes every block the
//     push it arrives (no anticipation across uncommitted suffixes beyond
//     chop's own commits), k = ∞ is bit-identical to batch by construction
//     — asserted, not assumed.
//  2. Time-to-first-schedule across trace lengths. A consumer of the batch
//     API waits for the whole trace to be scheduled before the first
//     block's code exists; a streaming consumer waits for one push. The
//     notes report the measured wall-clock ratio per trace length — O(n)
//     vs O(block), so it grows with the trace (the committed benchmark
//     figures are in BENCH_PR7.json; the ISSUE acceptance of ≥5× at 8
//     blocks is enforced there, not by this wall-clock-noisy check).
func S1(seed int64, instances int) (*Result, error) {
	r := rand.New(rand.NewSource(seed))
	m := machine.SingleUnit(4)
	t := tables.New(fmt.Sprintf("S1: streaming completion gap vs lookahead k (%d instances)", instances),
		"k", "worst lag", "mean completion", "gap vs batch", "orders = batch")
	res := &Result{ID: "S1", Table: t, Passed: true}

	graphs := make([]*aisched.Graph, instances)
	for i := range graphs {
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}

	// batchOrders[i] is instance i's batch static order; batchMean the mean
	// simulated completion the streamed schedules are measured against.
	batchOrders := make([][]graph.NodeID, instances)
	batchTotal := 0
	for i, g := range graphs {
		tr, err := aisched.ScheduleTrace(g, m)
		if err != nil {
			return nil, err
		}
		batchOrders[i] = tr.StaticOrder()
		sim, err := aisched.SimulateTrace(g, m, batchOrders[i])
		if err != nil {
			return nil, err
		}
		batchTotal += sim.Completion
	}
	batchMean := float64(batchTotal) / float64(instances)

	ks := []int{0, 1, 2, 4, aisched.LookaheadUnbounded}
	for _, k := range ks {
		total, worstLag, identical := 0, 0, 0
		for i, g := range graphs {
			order, lag, err := streamOrder(g, m, k)
			if err != nil {
				return nil, err
			}
			if lag > worstLag {
				worstLag = lag
			}
			if k != aisched.LookaheadUnbounded && lag > k {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"k=%d instance %d: emit lag %d exceeds the lookahead bound", k, i, lag))
			}
			if orderEqual(order, batchOrders[i]) {
				identical++
			} else if k == aisched.LookaheadUnbounded {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"k=∞ instance %d: streamed order differs from batch", i))
			}
			sim, err := aisched.SimulateTrace(g, m, order)
			if err != nil {
				return nil, err
			}
			total += sim.Completion
		}
		mean := float64(total) / float64(instances)
		t.Add(kName(k), worstLag, fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%+.1f%%", 100*(mean-batchMean)/batchMean),
			fmt.Sprintf("%d/%d", identical, instances))
	}

	// Time-to-first-schedule: cold scheduler + one push vs the whole batch
	// call, best of reps (wall-clock; reported, not gated — see the
	// benchsnap snapshot for the enforced figures).
	for _, blocks := range []int{8, 16, 32, 64} {
		cfg := workload.DefaultTrace()
		cfg.Blocks = blocks
		g, err := workload.Trace(rand.New(rand.NewSource(seed+int64(blocks))), cfg)
		if err != nil {
			return nil, err
		}
		sblocks, _, err := aisched.TraceStreamBlocks(g)
		if err != nil {
			return nil, err
		}
		const reps = 20
		var stream, batch time.Duration
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{})
			if _, err := ss.Push(sblocks[0]); err != nil {
				return nil, err
			}
			d := time.Since(t0)
			if rep == 0 || d < stream {
				stream = d
			}
			t0 = time.Now()
			if _, err := aisched.ScheduleTrace(g, m); err != nil {
				return nil, err
			}
			d = time.Since(t0)
			if rep == 0 || d < batch {
				batch = d
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"time-to-first-schedule, %d blocks: stream %v vs batch %v (%.1fx)",
			blocks, stream, batch, float64(batch)/float64(stream)))
	}
	return res, nil
}

// streamOrder streams g's blocks through a fresh scheduler at lookahead k
// and returns the concatenated finalized static order (stream IDs coincide
// with g's node IDs per TraceStreamBlocks) plus the worst emit lag.
func streamOrder(g *aisched.Graph, m *machine.Machine, k int) ([]graph.NodeID, int, error) {
	sblocks, _, err := aisched.TraceStreamBlocks(g)
	if err != nil {
		return nil, 0, err
	}
	ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{Lookahead: k})
	var results []*aisched.BlockResult
	for _, sb := range sblocks {
		rs, err := ss.Push(sb)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, rs...)
	}
	rs, err := ss.Flush()
	if err != nil {
		return nil, 0, err
	}
	results = append(results, rs...)
	var order []graph.NodeID
	worstLag := 0
	for _, br := range results {
		order = append(order, br.Order...)
		if br.Lag > worstLag {
			worstLag = br.Lag
		}
	}
	return order, worstLag, nil
}

func orderEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func kName(k int) string {
	if k == aisched.LookaheadUnbounded {
		return "∞"
	}
	return fmt.Sprint(k)
}

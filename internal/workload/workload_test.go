package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
)

func TestTraceConfigValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bad := []TraceConfig{
		{Blocks: 0, MinSize: 1, MaxSize: 2},
		{Blocks: 1, MinSize: 0, MaxSize: 2},
		{Blocks: 1, MinSize: 3, MaxSize: 2},
	}
	for _, cfg := range bad {
		if _, err := Trace(r, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTraceShape(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := DefaultTrace()
	g, err := Trace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("trace graph cyclic")
	}
	// Blocks numbered 0..Blocks-1 and nondecreasing with node ID.
	last := 0
	for v := 0; v < g.Len(); v++ {
		b := g.Node(graph.NodeID(v)).Block
		if b < last || b >= cfg.Blocks {
			t.Fatalf("block %d out of order at node %d", b, v)
		}
		last = b
	}
	// Edges never skip more than one block and never point backward.
	for _, e := range g.Edges() {
		bs := g.Node(e.Src).Block
		bd := g.Node(e.Dst).Block
		if bd < bs || bd > bs+1 {
			t.Fatalf("edge %v spans blocks %d→%d", e, bs, bd)
		}
	}
}

func TestTraceClassesAndExec(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := DefaultTrace()
	cfg.Classes = 3
	cfg.MaxExec = 4
	g, err := Trace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawClass, sawExec := false, false
	for v := 0; v < g.Len(); v++ {
		if g.Node(graph.NodeID(v)).Class > 0 {
			sawClass = true
		}
		if g.Node(graph.NodeID(v)).Exec > 1 {
			sawExec = true
		}
	}
	if !sawClass || !sawExec {
		t.Fatalf("classes=%v exec=%v not exercised", sawClass, sawExec)
	}
}

func TestLoopShape(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g, err := Loop(r, DefaultLoop())
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("loop-independent subgraph cyclic")
	}
	if !g.HasLoopCarried() {
		t.Fatal("loop has no carried edges")
	}
	// The branch is the last node and a carried-control source.
	br := graph.NodeID(g.Len() - 1)
	carried := 0
	for _, e := range g.Out(br) {
		if e.Distance == 1 {
			carried++
		}
	}
	if carried != g.Len() {
		t.Fatalf("branch has %d carried control edges, want %d", carried, g.Len())
	}
}

func TestLoopRejectsTiny(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Loop(r, LoopConfig{Size: 1}); err == nil {
		t.Fatal("size-1 loop accepted")
	}
}

func TestExpressionTree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, err := ExpressionTree(r, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 15 {
		t.Fatalf("tree nodes = %d, want 15", g.Len())
	}
	if len(g.Sinks()) != 1 {
		t.Fatalf("tree sinks = %v, want single root", g.Sinks())
	}
	if len(g.Sources()) != 8 {
		t.Fatalf("tree sources = %d, want 8 leaves", len(g.Sources()))
	}
	if _, err := ExpressionTree(r, 1, 0); err == nil {
		t.Fatal("1-leaf tree accepted")
	}
}

func TestPropertyGeneratorsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g1, err1 := Trace(rand.New(rand.NewSource(seed)), DefaultTrace())
		g2, err2 := Trace(rand.New(rand.NewSource(seed)), DefaultTrace())
		if err1 != nil || err2 != nil {
			return false
		}
		if g1.Len() != g2.Len() || g1.NumEdges() != g2.NumEdges() {
			return false
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopTraceShape(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cfg := DefaultLoopTrace()
	g, err := LoopTrace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("loop-independent subgraph cyclic")
	}
	if !g.HasLoopCarried() {
		t.Fatal("no carried edges")
	}
	// Blocks nondecreasing; cross edges only to the adjacent block (plus
	// carried edges backward).
	for _, e := range g.Edges() {
		bs, bd := g.Node(e.Src).Block, g.Node(e.Dst).Block
		if e.Distance == 0 && (bd < bs || bd > bs+1) {
			t.Fatalf("distance-0 edge spans blocks %d→%d", bs, bd)
		}
	}
	// The back branch is the last node with carried control to everything.
	br := graph.NodeID(g.Len() - 1)
	carried := 0
	for _, e := range g.Out(br) {
		if e.Distance == 1 {
			carried++
		}
	}
	if carried != g.Len() {
		t.Fatalf("back branch has %d carried edges, want %d", carried, g.Len())
	}
}

func TestLoopTraceRejectsBadConfig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := LoopTrace(r, LoopTraceConfig{Blocks: 1, Size: 3}); err == nil {
		t.Fatal("single-block loop-trace accepted")
	}
	if _, err := LoopTrace(r, LoopTraceConfig{Blocks: 2, Size: 0}); err == nil {
		t.Fatal("zero-size blocks accepted")
	}
}

// Package minic implements a small C-subset compiler used to generate
// realistic instruction workloads for the schedulers — enough of the
// language to express the paper's motivating fragments, e.g. the Figure 3
// partial-products loop:
//
//	int x[100]; int y[100]; int i;
//	y[0] = x[0];
//	for (i = 1; x[i] != 0; i = i + 1) { y[i] = y[i-1] * x[i]; }
//	y[i] = 0;
//
// The pipeline is lexer → recursive-descent parser → AST → code generator
// producing isa.Instr basic blocks with labels and branches. Variables live
// in registers (no spilling; programs must fit the register file), arrays
// get a dedicated base register each, matching the paper's RS/6000 idiom.
package minic

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true, "for": true,
}

// lex splits source text into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("minic: line %d: unterminated comment", line)
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("minic: line %d: bad number %q", line, src[i:j])
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: v, line: line})
			i = j
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokPunct, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', '{', '}', '[', ']', ';', ',', '!', '&', '|', '^':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, fmt.Errorf("minic: line %d: unexpected character %q", line, string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/machine"
	"aisched/internal/opt"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// gapFamily is one workload family in the E1GAP sweep: a generator drawing
// an (instance, machine) pair small enough for the exact backend.
type gapFamily struct {
	name string
	draw func(r *rand.Rand) (*graph.Graph, *machine.Machine, error)
}

// chainTrace builds a trace of pure dependence chains: each block is a
// chain with random 0/1 (or boosted) latencies and the chain tail feeds the
// next block's head. Chains are the worst case for in-order issue and the
// best case for anticipation, so they probe the merge step directly.
func chainTrace(r *rand.Rand, boost bool) *graph.Graph {
	blocks := 2 + r.Intn(2)
	g := graph.New(12)
	var prevTail graph.NodeID = -1
	total := 0
	for b := 0; b < blocks && total < 10; b++ {
		n := 2 + r.Intn(3)
		if total+n > 10 {
			n = 10 - total
		}
		var head, tail graph.NodeID
		for i := 0; i < n; i++ {
			v := g.AddNode("c", 1, 0, b)
			if i == 0 {
				head = v
			} else {
				lat := r.Intn(2)
				if boost && r.Intn(3) == 0 {
					lat = 2 + r.Intn(2)
				}
				g.MustEdge(tail, v, lat, 0)
			}
			tail = v
		}
		if prevTail >= 0 {
			g.MustEdge(prevTail, head, 1, 0)
		}
		prevTail = tail
		total += n
	}
	return g
}

// diamondTrace builds fork-join diamonds (a→{b,c}→d) per block with
// latencies in [1,2], joined across blocks — independent middles give the
// window real reordering freedom.
func diamondTrace(r *rand.Rand) *graph.Graph {
	blocks := 2 + r.Intn(2)
	g := graph.New(4 * blocks)
	var prevJoin graph.NodeID = -1
	for b := 0; b < blocks; b++ {
		a := g.AddNode("a", 1, 0, b)
		x := g.AddNode("x", 1, 0, b)
		y := g.AddNode("y", 1, 0, b)
		d := g.AddNode("d", 1, 0, b)
		g.MustEdge(a, x, 1+r.Intn(2), 0)
		g.MustEdge(a, y, 1+r.Intn(2), 0)
		g.MustEdge(x, d, 1+r.Intn(2), 0)
		g.MustEdge(y, d, 1, 0)
		if prevJoin >= 0 {
			g.MustEdge(prevJoin, a, 1, 0)
		}
		prevJoin = d
	}
	return g
}

func drawTrace(r *rand.Rand, cfg workload.TraceConfig) (*graph.Graph, error) {
	for {
		g, err := workload.Trace(r, cfg)
		if err != nil {
			return nil, err
		}
		if g.Len() <= 11 {
			return g, nil
		}
	}
}

// E1gap is the quantified optimality-gap sweep: for each workload family it
// schedules every instance with the heuristic backend, simulates the
// emitted order on the window machine, and compares against the exact
// branch-and-bound optimum from internal/opt. The restricted-trace control
// pins the known trace-level finding (merge confines each block to its
// standalone makespan; the optimum occasionally displaces one block by a
// cycle), and the general families measure how far §4.2 heuristics sit from
// provably optimal.
func E1gap(seed int64, instances int) (*Result, error) {
	t := tables.New(
		fmt.Sprintf("E1GAP: heuristic vs exact branch-and-bound optimum (%d instances per family)", instances),
		"family", "exact matches", "max gap (cycles)", "mean gap (cycles)")
	res := &Result{ID: "E1GAP", Table: t, Passed: true}

	families := []gapFamily{
		{"chains (restricted)", func(r *rand.Rand) (*graph.Graph, *machine.Machine, error) {
			return chainTrace(r, false), machine.SingleUnit(2 + r.Intn(4)), nil
		}},
		{"diamonds", func(r *rand.Rand) (*graph.Graph, *machine.Machine, error) {
			return diamondTrace(r), machine.SingleUnit(2 + r.Intn(4)), nil
		}},
		{"mixed-latency", func(r *rand.Rand) (*graph.Graph, *machine.Machine, error) {
			g, err := drawTrace(r, workload.TraceConfig{Blocks: 3, MinSize: 2, MaxSize: 4,
				IntraProb: 0.4, CrossProb: 0.2, Latency: workload.Mixed, MaxExec: 2})
			return g, machine.SingleUnit(2 + r.Intn(4)), err
		}},
		{"multi-FU", func(r *rand.Rand) (*graph.Graph, *machine.Machine, error) {
			g, err := drawTrace(r, workload.TraceConfig{Blocks: 3, MinSize: 2, MaxSize: 4,
				IntraProb: 0.4, CrossProb: 0.2, Latency: workload.Mixed, Classes: 3})
			return g, machine.RS6000(2 + r.Intn(4)), err
		}},
		{"restricted trace (control)", func(r *rand.Rand) (*graph.Graph, *machine.Machine, error) {
			g, err := drawTrace(r, workload.TraceConfig{Blocks: 3, MinSize: 2, MaxSize: 4,
				IntraProb: 0.4, CrossProb: 0.2, Latency: workload.ZeroOne})
			return g, machine.SingleUnit(2 + r.Intn(4)), err
		}},
	}

	ctx := context.Background()
	heur := core.HeuristicBackend{}
	for fi, fam := range families {
		exact, maxGap, sumGap := 0, 0, 0
		for i := 0; i < instances; i++ {
			r := rand.New(rand.NewSource(seed + int64(1000*fi+i)))
			g, m, err := fam.draw(r)
			if err != nil {
				return nil, err
			}
			h, err := heur.ScheduleTrace(ctx, g, m)
			if err != nil {
				return nil, err
			}
			sim, err := hw.SimulateTrace(g, m, h.Order)
			if err != nil {
				return nil, err
			}
			best, _, _, err := opt.OptimalTrace(ctx, g, m, opt.Limits{})
			if err != nil {
				return nil, err
			}
			gap := sim.Completion - best
			if gap < 0 {
				res.Passed = false
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s instance %d: heuristic %d beats 'optimal' %d — exact backend bug",
					fam.name, i, sim.Completion, best))
				continue
			}
			if gap == 0 {
				exact++
			}
			if gap > maxGap {
				maxGap = gap
			}
			sumGap += gap
		}
		t.Add(fam.name, fmt.Sprintf("%d/%d", exact, instances), maxGap,
			fmt.Sprintf("%.3f", float64(sumGap)/float64(instances)))
		// The restricted control carries the reproduction guarantee: gaps of
		// at most one cycle, and the overwhelming majority exact.
		if fam.name == "restricted trace (control)" && (maxGap > 1 || exact*10 < instances*8) {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"restricted control out of bounds: %d/%d exact, max gap %d", exact, instances, maxGap))
		}
	}
	res.Notes = append(res.Notes,
		"gap = simulated completion of the heuristic's emitted order − exact branch-and-bound optimum (internal/opt)")
	return res, nil
}

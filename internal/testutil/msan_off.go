//go:build !msan

package testutil

// MsanEnabled reports whether this binary was built with -msan (see
// msan_on.go).
const MsanEnabled = false

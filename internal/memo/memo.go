// Package memo is the content-addressed schedule cache: a sharded, bounded
// LRU keyed by graph.Fingerprint that memoizes scheduling results across
// calls. It is the amortization layer of the throughput pipeline — identical
// basic blocks dominate real workloads, so a compiler front-end that keeps
// re-submitting the same block should pay for scheduling once.
//
// Concurrency design:
//
//   - The key space is partitioned into ≥16 power-of-two shards, each with
//     its own mutex, LRU list, and counters, so concurrent lookups of
//     different blocks never contend on one lock. SHA-256 fingerprints are
//     uniform, so the shard index is just the key's low 64 bits masked.
//   - Each shard carries a singleflight table: when a lookup misses while
//     another goroutine is already computing the same key, the latecomer
//     waits for that in-flight computation instead of duplicating it
//     (counted as "coalesced"). Errors are never cached — every waiter of a
//     failed flight gets the error, and the next lookup recomputes.
//
// The cache stores opaque values; the facade layer is responsible for
// storing clones that do not retain caller-owned graphs and for rebinding
// clones on the way out. Soundness rests on the Fingerprint contract
// (internal/graph): equal keys describe the same scheduling instance, and
// every scheduler in this repository is deterministic, so a cached value is
// bit-identical to what recomputation would produce.
package memo

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/metrics"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
)

// Live process-wide counters (internal/metrics). Unlike the per-Cache
// Counters snapshot and the obs events — which exist per Scheduler / per
// run — these aggregate every cache in the process and are always on: one
// striped atomic add per lookup, consumed by aisched.MetricsSnapshot and
// the /metrics endpoint.
var (
	mHits       = metrics.Default.NewCounter("aisched_memo_hits_total", "schedule-cache lookups served from a memoized result")
	mMisses     = metrics.Default.NewCounter("aisched_memo_misses_total", "schedule-cache lookups that computed and stored a result")
	mEvictions  = metrics.Default.NewCounter("aisched_memo_evictions_total", "schedule-cache LRU evictions")
	mCoalesced  = metrics.Default.NewCounter("aisched_memo_coalesced_total", "schedule-cache lookups coalesced onto an in-flight computation")
	mRecomputed = metrics.Default.NewCounter("aisched_memo_recomputed_total", "coalesced waiters that recomputed after an in-flight leader failed with a personal error")
)

// Kind discriminates the result type cached under a fingerprint, so a block
// schedule and a trace result for the same graph never alias.
type Kind uint8

const (
	// KindBlock caches single-block schedules (rank + Delay_Idle_Slots).
	KindBlock Kind = iota
	// KindTrace caches Algorithm Lookahead trace results.
	KindTrace
	// KindLoop caches §5 steady-state loop schedules.
	KindLoop
)

// Key is the cache key: the instance fingerprint plus the result kind.
type Key struct {
	FP   graph.Fingerprint
	Kind Kind
}

// KeyFor builds the cache key for scheduling g on m as kind. It hashes
// exactly the machine parameters that affect scheduling (unit counts and
// window); machine names do not fragment the cache.
func KeyFor(g *graph.Graph, m *machine.Machine, kind Kind) Key {
	return Key{FP: g.Fingerprint(m.Units, m.Window), Kind: kind}
}

// Config sizes a Cache. The zero value picks the defaults.
type Config struct {
	// Capacity is the total entry budget across all shards (default 4096).
	// It is split evenly per shard, so the effective bound is approximate:
	// a pathological key distribution can evict earlier on a hot shard.
	Capacity int
	// Shards is the number of lock shards, rounded up to a power of two and
	// clamped to at least 16.
	Shards int
	// Tracer, when non-nil, receives KindCacheHit / KindCacheMiss /
	// KindCacheEvict / KindCacheCoalesce events for the metrics snapshot.
	Tracer obs.Tracer
}

// DefaultCapacity is the entry budget used when Config.Capacity is zero.
const DefaultCapacity = 4096

const minShards = 16

// Counters is a point-in-time snapshot of the cache's activity, summed over
// shards. Hits + Misses + Coalesced equals the number of Do calls.
type Counters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	// Recomputed counts coalesced waiters whose in-flight leader failed
	// with an error personal to the leader (its context was cancelled or
	// its budget ran out) and who therefore ran their own compute instead
	// of inheriting an error their caller did not cause. Each such call is
	// also counted in Coalesced.
	Recomputed uint64 `json:"recomputed"`
}

// entry is one resident value, threaded on its shard's intrusive LRU ring.
type entry struct {
	key        Key
	val        any
	prev, next *entry
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*entry
	lru      entry // sentinel: lru.next is MRU, lru.prev is LRU
	inflight map[Key]*flight

	hits, misses, evictions, coalesced, recomputed uint64
}

// Cache is a sharded bounded LRU with singleflight deduplication. Safe for
// concurrent use. The zero value is not useful; use New.
type Cache struct {
	shards []shard
	mask   uint64
	tracer obs.Tracer
}

// New builds a cache from cfg (zero-value fields take defaults).
func New(cfg Config) *Cache {
	capTotal := cfg.Capacity
	if capTotal <= 0 {
		capTotal = DefaultCapacity
	}
	n := cfg.Shards
	if n < minShards {
		n = minShards
	}
	// Round up to a power of two so shard selection is a mask.
	for n&(n-1) != 0 {
		n &= n - 1
		n <<= 1
	}
	perShard := (capTotal + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), tracer: cfg.Tracer}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = perShard
		s.entries = make(map[Key]*entry)
		s.inflight = make(map[Key]*flight)
		s.lru.next = &s.lru
		s.lru.prev = &s.lru
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k.FP[:8])&c.mask]
}

func (c *Cache) emit(kind obs.Kind) {
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Kind: kind, Block: -1})
	}
}

// Do is DoCtx with a background (never-cancelled) context.
func (c *Cache) Do(k Key, compute func() (any, error)) (val any, hit bool, err error) {
	return c.DoCtx(context.Background(), k, compute)
}

// DoCtx returns the cached value for k, computing it with compute on a miss.
// hit reports whether the value came from the cache (including waiting on a
// concurrent computation of the same key) rather than from this call's own
// compute. Errors are returned to every waiter of the failed computation and
// are never cached; the next lookup for the same key recomputes.
//
// Cancellation and failure isolation:
//
//   - A waiter whose own ctx is done stops waiting and returns ctx.Err()
//     immediately; the in-flight computation is unaffected.
//   - A leader that fails with an error personal to it — context
//     cancellation or budget exhaustion — does not poison its waiters: each
//     waiter runs its own compute (under its own context/budget, which its
//     closure captures) and stores the result on success. Real scheduling
//     errors are shared with every waiter as before.
//   - A compute panic is recovered and converted into an error, so the
//     flight's done channel always closes and waiters never hang.
func (c *Cache) DoCtx(ctx context.Context, k Key, compute func() (any, error)) (val any, hit bool, err error) {
	if h := faultinject.MemoLookup; h != nil {
		h()
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.unlink()
		e.pushMRU(&s.lru)
		s.hits++
		s.mu.Unlock()
		mHits.Inc()
		c.emit(obs.KindCacheHit)
		return e.val, true, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.coalesced++
		s.mu.Unlock()
		mCoalesced.Inc()
		c.emit(obs.KindCacheCoalesce)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err == nil {
			return f.val, true, nil
		}
		if !personalError(f.err) {
			return nil, false, f.err
		}
		// The leader failed for reasons private to it (its caller cancelled
		// or its budget ran out); this waiter's request is still live, so
		// compute directly rather than surface an error the waiter's caller
		// did not cause. No new flight is registered — at most one wait plus
		// one compute per call, so progress is guaranteed.
		s.mu.Lock()
		s.recomputed++
		s.mu.Unlock()
		mRecomputed.Inc()
		v, err := runCompute(compute)
		if err != nil {
			return nil, false, err
		}
		c.store(s, k, v)
		return v, false, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[k] = f
	s.misses++
	s.mu.Unlock()
	mMisses.Inc()
	c.emit(obs.KindCacheMiss)

	f.val, f.err = runCompute(compute)

	s.mu.Lock()
	delete(s.inflight, k)
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	c.store(s, k, f.val)
	return f.val, false, nil
}

// personalError reports whether err is specific to the goroutine that
// computed it rather than to the scheduling instance: context cancellation
// and budget exhaustion depend on the caller's deadline, not the key.
func personalError(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, sbudget.ErrExhausted)
}

// runCompute invokes compute, converting a panic into an error so flights
// always complete.
func runCompute(compute func() (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("memo: compute panicked: %v", p)
		}
	}()
	return compute()
}

// store inserts v under k (refreshing the entry if a concurrent recompute
// beat us to it) and applies the LRU bound, emitting eviction events.
func (c *Cache) store(s *shard, k Key, v any) {
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.val = v
		e.unlink()
		e.pushMRU(&s.lru)
		s.mu.Unlock()
		return
	}
	e := &entry{key: k, val: v}
	s.entries[k] = e
	e.pushMRU(&s.lru)
	evicted := 0
	for len(s.entries) > s.capacity {
		victim := s.lru.prev
		victim.unlink()
		delete(s.entries, victim.key)
		s.evictions++
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		mEvictions.Add(uint64(evicted))
	}
	for i := 0; i < evicted; i++ {
		c.emit(obs.KindCacheEvict)
	}
}

// Len returns the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Counters sums the per-shard activity counters.
func (c *Cache) Counters() Counters {
	var t Counters
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		t.Hits += s.hits
		t.Misses += s.misses
		t.Evictions += s.evictions
		t.Coalesced += s.coalesced
		t.Recomputed += s.recomputed
		s.mu.Unlock()
	}
	return t
}

func (e *entry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (e *entry) pushMRU(sentinel *entry) {
	e.prev = sentinel
	e.next = sentinel.next
	sentinel.next.prev = e
	sentinel.next = e
}

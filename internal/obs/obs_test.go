package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"aisched/internal/graph"
)

func TestStallReasonNames(t *testing.T) {
	want := map[StallReason]string{
		DepWait:        "dep-wait",
		WindowFull:     "window-full",
		HeadBlocked:    "head-blocked",
		UnitBusy:       "unit-busy",
		RollbackRefill: "rollback-refill",
	}
	if len(want) != int(NumStallReasons) {
		t.Fatalf("test covers %d reasons, enum has %d", len(want), NumStallReasons)
	}
	seen := map[string]bool{}
	for r, name := range want {
		if got := r.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", r, got, name)
		}
		if seen[name] {
			t.Errorf("duplicate reason name %q", name)
		}
		seen[name] = true
		if r.Letter() == '?' {
			t.Errorf("reason %q has no timeline letter", name)
		}
	}
}

func TestRecorderStatsCounters(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindPassStart, Pass: PassSimulate})
	r.Emit(Event{Kind: KindWindow, Cycle: 0, From: 0, N: 2})
	r.Emit(Event{Kind: KindIssue, Cycle: 0, Pos: 0, Label: "a", N: 1})
	r.Emit(Event{Kind: KindIssue, Cycle: 1, Pos: 2, Label: "c", N: 1, Fill: true, Cross: true})
	r.Emit(Event{Kind: KindIssue, Cycle: 2, Pos: 1, Label: "b", N: 1, Fill: true})
	r.Emit(Event{Kind: KindStall, Cycle: 3, Reason: DepWait})
	r.Emit(Event{Kind: KindStall, Cycle: 4, Reason: UnitBusy})
	r.Emit(Event{Kind: KindStall, Cycle: 5, Reason: UnitBusy})
	r.Emit(Event{Kind: KindRollback, Cycle: 6, Pos: 3, N: 2, To: 9})
	r.Emit(Event{Kind: KindIssue, Cycle: 9, Pos: 2, Label: "c", N: 1}) // re-issue
	r.Emit(Event{Kind: KindPassEnd, Pass: PassSimulate, N: 10})

	s := r.Stats()
	if s.Completion != 10 {
		t.Errorf("Completion = %d, want 10", s.Completion)
	}
	if s.Issues != 4 || s.Instructions != 3 || s.Reissues != 1 {
		t.Errorf("Issues/Instructions/Reissues = %d/%d/%d, want 4/3/1",
			s.Issues, s.Instructions, s.Reissues)
	}
	if s.StallCycles != 3 {
		t.Errorf("StallCycles = %d, want 3", s.StallCycles)
	}
	sum := 0
	for _, n := range s.StallByReason {
		sum += n
	}
	if sum != s.StallCycles {
		t.Errorf("stall breakdown sums to %d, want %d", sum, s.StallCycles)
	}
	if s.StallByReason["unit-busy"] != 2 || s.StallByReason["dep-wait"] != 1 {
		t.Errorf("StallByReason = %v", s.StallByReason)
	}
	if s.SameBlockFills != 1 || s.CrossBlockFills != 1 {
		t.Errorf("fills same/cross = %d/%d, want 1/1", s.SameBlockFills, s.CrossBlockFills)
	}
	if s.Rollbacks != 1 || s.Squashed != 2 {
		t.Errorf("Rollbacks/Squashed = %d/%d, want 1/2", s.Rollbacks, s.Squashed)
	}
	if s.Passes[PassSimulate] != 1 {
		t.Errorf("Passes = %v", s.Passes)
	}
}

func TestRecorderStatsPassCounters(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindPassStart, Pass: PassLookahead})
	r.Emit(Event{Kind: KindMergeLoosen, Block: 0, N: 1})
	r.Emit(Event{Kind: KindMerge, Block: 0, From: 0, To: 5, N: 7})
	r.Emit(Event{Kind: KindDeadlineTighten, Node: 3, From: 7, To: 6})
	r.Emit(Event{Kind: KindSlotMove, Unit: 0, From: 2, To: 5})
	r.Emit(Event{Kind: KindSlotMove, Unit: 0, From: 5, To: -1})
	r.Emit(Event{Kind: KindChop, Block: 0, From: 4, To: 2, N: 5})
	r.Emit(Event{Kind: KindChop, Block: 1, From: 3, To: 3, N: 4})
	r.Emit(Event{Kind: KindIICandidate, Pass: "base", Node: graph.None, N: 7, From: 9})
	r.Emit(Event{Kind: KindIICandidate, Pass: "source", Node: 2, N: 6, From: 9})
	r.Emit(Event{Kind: KindPassEnd, Pass: PassLookahead, N: 11})

	s := r.Stats()
	if s.MergeLoosenings != 1 || s.Merges != 1 {
		t.Errorf("MergeLoosenings/Merges = %d/%d", s.MergeLoosenings, s.Merges)
	}
	if s.DeadlineTightenings != 1 {
		t.Errorf("DeadlineTightenings = %d", s.DeadlineTightenings)
	}
	if s.SlotMoves != 2 || s.SlotsEliminated != 1 {
		t.Errorf("SlotMoves/SlotsEliminated = %d/%d", s.SlotMoves, s.SlotsEliminated)
	}
	if s.Chops != 2 || s.CommittedPrefix != 7 || s.MaxCarriedSuffix != 3 {
		t.Errorf("Chops/CommittedPrefix/MaxCarriedSuffix = %d/%d/%d",
			s.Chops, s.CommittedPrefix, s.MaxCarriedSuffix)
	}
	if s.IICandidates != 2 || s.BestII != 6 {
		t.Errorf("IICandidates/BestII = %d/%d", s.IICandidates, s.BestII)
	}
}

func TestRecorderWindowOccupancyIntegration(t *testing.T) {
	r := NewRecorder()
	// Occupancy 2 over cycles [0,3), 1 over [3,5), 0 at cycle 5; last
	// activity at cycle 5.
	r.Emit(Event{Kind: KindWindow, Cycle: 0, N: 2})
	r.Emit(Event{Kind: KindWindow, Cycle: 3, N: 1})
	r.Emit(Event{Kind: KindWindow, Cycle: 5, N: 0})
	s := r.Stats()
	want := []int{1, 2, 3}
	if len(s.WindowOccupancy) != len(want) {
		t.Fatalf("WindowOccupancy = %v, want %v", s.WindowOccupancy, want)
	}
	for i := range want {
		if s.WindowOccupancy[i] != want[i] {
			t.Fatalf("WindowOccupancy = %v, want %v", s.WindowOccupancy, want)
		}
	}
}

func TestRecorderResetAndLen(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindIssue})
	r.Emit(Event{Kind: KindStall})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
}

func TestStatsJSONStableNames(t *testing.T) {
	s := Stats{StallByReason: map[string]int{"dep-wait": 1}, Passes: map[string]int{}}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"completion_cycles", "issues", "instructions", "reissues",
		"stall_cycles", "stall_by_reason", "window_occupancy_cycles",
		"idle_fills_same_block", "idle_fills_cross_block", "rollbacks",
		"squashed", "deadline_tightenings", "slot_moves", "slots_eliminated",
		"merge_loosenings", "merges", "chops", "committed_prefix_total",
		"max_carried_suffix", "ii_candidates", "best_ii", "passes",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats JSON lacks key %q", key)
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindPassStart, Pass: PassSimulate})
	r.Emit(Event{Kind: KindWindow, Cycle: 0, From: 0, N: 2})
	r.Emit(Event{Kind: KindIssue, Cycle: 0, Pos: 0, Label: "ld", Unit: 0, N: 1})
	r.Emit(Event{Kind: KindIssue, Cycle: 1, Pos: 1, Label: "mul", Unit: 0, N: 2})
	r.Emit(Event{Kind: KindStall, Cycle: 3, Reason: DepWait})
	r.Emit(Event{Kind: KindIssue, Cycle: 4, Pos: 2, Label: "st", Unit: 1, N: 1})
	r.Emit(Event{Kind: KindPassEnd, Pass: PassSimulate, N: 5})
	tl := r.Timeline()
	for _, want := range []string{"cycle", "u0", "u1", "stall", "head", "ld", "mul", "st", "D"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline lacks %q:\n%s", want, tl)
		}
	}
	// mul runs for 2 cycles: its label appears twice.
	if strings.Count(tl, "mul") != 2 {
		t.Errorf("mul should occupy 2 cells:\n%s", tl)
	}
}

func TestTimelineRollbackOverwrite(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindIssue, Cycle: 1, Pos: 5, Label: "x", Unit: 0, N: 1})
	r.Emit(Event{Kind: KindRollback, Cycle: 1, Pos: 4, N: 1, To: 3})
	r.Emit(Event{Kind: KindIssue, Cycle: 4, Pos: 5, Label: "x", Unit: 0, N: 1})
	r.Emit(Event{Kind: KindPassEnd, Pass: PassSimulate, N: 6})
	tl := r.Timeline()
	if strings.Count(tl, "x") != 1 {
		t.Errorf("squashed issue should be erased by its re-issue:\n%s", tl)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if tl := NewRecorder().Timeline(); !strings.Contains(tl, "no simulator events") {
		t.Errorf("empty timeline = %q", tl)
	}
}

func TestStatsCacheCounters(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		r.Emit(Event{Kind: KindCacheHit, Block: -1})
	}
	r.Emit(Event{Kind: KindCacheMiss, Block: -1})
	r.Emit(Event{Kind: KindCacheMiss, Block: -1})
	r.Emit(Event{Kind: KindCacheEvict, Block: -1})
	r.Emit(Event{Kind: KindCacheCoalesce, Block: -1})
	s := r.Stats()
	if s.CacheHits != 3 || s.CacheMisses != 2 || s.CacheEvictions != 1 || s.CacheCoalesced != 1 {
		t.Fatalf("cache counters = %d/%d/%d/%d, want 3/2/1/1",
			s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheCoalesced)
	}
	for _, k := range []Kind{KindCacheHit, KindCacheMiss, KindCacheEvict, KindCacheCoalesce} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

package idle

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

// This file retains the original Move_Idle_Slot / Delay_Idle_Slots
// implementation — full rank recomputation on every demotion (once for the
// refill test, once for the reschedule) and O(n) schedule rescans — exactly
// as it stood before the context-based engine replaced it. It exists solely
// as the naive oracle for the differential property tests; production code
// must use MoveIdleSlot/DelayIdleSlots or the Ctx variants.

// ReferenceMoveIdleSlot is the retained naive implementation of
// MoveIdleSlot.
func ReferenceMoveIdleSlot(s *sched.Schedule, m *machine.Machine, d []int, unit, t int, tie []graph.NodeID) (*MoveResult, error) {
	return ReferenceMoveIdleSlotRel(s, m, d, unit, t, tie, nil)
}

// ReferenceMoveIdleSlotRel is ReferenceMoveIdleSlot with per-node release
// times on every reschedule, mirroring the context engine's Ctx.SetRelease
// for the differential lookahead oracle.
func ReferenceMoveIdleSlotRel(s *sched.Schedule, m *machine.Machine, d []int, unit, t int, tie []graph.NodeID, rel []int) (*MoveResult, error) {
	g := s.G
	if len(d) != g.Len() {
		return nil, fmt.Errorf("idle: %d deadlines for %d nodes", len(d), g.Len())
	}
	fail := &MoveResult{S: s, D: d, Moved: false, NewStart: t}

	ordinal := slotOrdinal(s.IdleSlotsOnUnit(unit), t)
	if ordinal < 0 {
		return nil, fmt.Errorf("idle: no idle slot at time %d on unit %d", t, unit)
	}

	// Tentative deadline state; committed only on success.
	dd := append([]int(nil), d...)
	// Step (a): nodes scheduled prior to the slot must stay prior to it.
	for v := 0; v < g.Len(); v++ {
		if s.Finish(graph.NodeID(v)) <= t && dd[v] > t {
			dd[v] = t
		}
	}

	cur := s
	oldMakespan := s.Makespan()
	for iter := 0; iter < g.Len()*maxInner; iter++ {
		// The tail node a_i: finishes exactly at the slot start on this unit.
		tail := referenceTailNode(cur, unit, t)
		if tail == graph.None {
			return fail, nil // slot preceded by idle time: nothing to demote
		}
		newDeadline := t - 1
		if newDeadline < g.Node(tail).Exec {
			return fail, nil // the tail cannot finish any earlier
		}
		dd[tail] = newDeadline

		ranks, err := rank.ReferenceCompute(g, m, dd)
		if err != nil {
			return nil, err
		}
		// Failure test of Figure 4: some pre-slot node must still be allowed
		// to complete at t, otherwise the vacated slot cannot be refilled.
		refill := false
		for v := 0; v < g.Len(); v++ {
			if cur.Finish(graph.NodeID(v)) <= t && ranks[v] >= t {
				refill = true
				break
			}
		}
		if !refill {
			return fail, nil
		}

		res, err := rank.ReferenceRunRel(g, m, dd, tie, rel)
		if err != nil {
			return nil, err
		}
		if !res.Feasible || res.S.Makespan() > oldMakespan {
			return fail, nil
		}
		slots := res.S.IdleSlotsOnUnit(unit)
		if ordinal >= len(slots) {
			// Slot eliminated (heuristic regime): success.
			return &MoveResult{S: res.S, D: dd, Moved: true, NewStart: -1}, nil
		}
		nt := slots[ordinal]
		switch {
		case nt > t:
			return &MoveResult{S: res.S, D: dd, Moved: true, NewStart: nt}, nil
		case nt < t:
			// Should be impossible given the pre-slot caps; bail out safely.
			return fail, nil
		default:
			cur = res.S // slot unchanged: demote the (possibly new) tail and retry
		}
	}
	return fail, nil
}

// referenceTailNode returns the node on the unit finishing exactly at time t
// by scanning all nodes (the lookup the unit timeline index replaced).
func referenceTailNode(s *sched.Schedule, unit, t int) graph.NodeID {
	for v := 0; v < s.G.Len(); v++ {
		if s.Unit[v] == unit && s.Finish(graph.NodeID(v)) == t {
			return graph.NodeID(v)
		}
	}
	return graph.None
}

// ReferenceDelayIdleSlots is the retained naive implementation of
// DelayIdleSlots.
func ReferenceDelayIdleSlots(s *sched.Schedule, m *machine.Machine, d []int, tie []graph.NodeID) (*sched.Schedule, []int, error) {
	return ReferenceDelayIdleSlotsRel(s, m, d, tie, nil)
}

// ReferenceDelayIdleSlotsRel is ReferenceDelayIdleSlots with per-node
// release times on every reschedule (see ReferenceMoveIdleSlotRel).
func ReferenceDelayIdleSlotsRel(s *sched.Schedule, m *machine.Machine, d []int, tie []graph.NodeID, rel []int) (*sched.Schedule, []int, error) {
	cur := s
	dd := append([]int(nil), d...)
	for unit := 0; unit < m.TotalUnits(); unit++ {
		ordinal := 0
		for guard := 0; guard < cur.G.Len()*(cur.Makespan()+2); guard++ {
			slots := cur.IdleSlotsOnUnit(unit)
			if ordinal >= len(slots) {
				break
			}
			res, err := ReferenceMoveIdleSlotRel(cur, m, dd, unit, slots[ordinal], tie, rel)
			if err != nil {
				return nil, nil, err
			}
			if res.Moved {
				cur = res.S
				dd = res.D
				continue // same ordinal: try to push it further
			}
			ordinal++
		}
	}
	return cur, dd, nil
}

package rank

import (
	"fmt"
	"slices"

	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// Ctx is a reusable rank-computation context for one (graph, machine) pair.
// It caches every per-graph invariant the Rank Algorithm needs — topological
// order and positions, descendant bitsets, per-node descendant lists
// pre-sorted by topological position, effective unit classes — and owns the
// scratch buffers (longest-path deltas, descendant packing entries,
// slice-based occupancy windows, list-building arrays, a reusable greedy
// list scheduler) that the one-shot API used to reallocate on every call.
//
// Anticipatory scheduling calls the Rank Algorithm hundreds of times per
// basic block on the same graph with slightly different deadlines
// (Delay_Idle_Slots demotes one deadline per re-rank; merge loosens the new
// nodes' deadlines by one per round), so callers that hold a Ctx pay the
// graph analysis once and each re-rank touches only scratch memory. Update
// additionally makes those re-ranks incremental: only the changed nodes and
// their ancestors are recomputed.
//
// A Ctx is not safe for concurrent use; create one per goroutine.
type Ctx struct {
	g *graph.Graph
	m *machine.Machine

	order   []graph.NodeID // topological order over distance-0 edges
	topoPos []int          // topoPos[v] = index of v in order
	desc    []graph.Bitset // distance-0 transitive successors per node
	members [][]graph.NodeID // desc[v] as a list sorted by topological position

	class    []int // effective unit class per node (0 on single-unit machines)
	unitsFor []int // usable units per effective class (0 mapped to 1)

	// Scratch, reused across calls.
	delta  []int          // longest path finish(v)⇝start(u) per descendant
	ds     []descendant   // packing entries for the node being ranked
	occ    [][]int        // per-class occupancy window for packFeasible
	pos    []int          // tie-position scratch for list building
	list   []graph.NodeID // priority-list scratch
	oneBit graph.Bitset   // single-node changed set for UpdateOne
	source []graph.NodeID // cached default tie order (program order)

	// budget, when non-nil, is charged one pass (and consulted as a
	// cancellation checkpoint) by every RunRanks. Anticipatory scheduling
	// funnels all of its greedy reschedules — merge rounds, idle-slot
	// demotions, loop candidates — through RunRanks, so setting the budget
	// here makes the whole pipeline cooperatively cancellable and metered.
	budget *sbudget.State

	ls *sched.ListScheduler
}

// SetBudget installs the request's cancellation/budget checkpoint state; nil
// (the default) disables checkpointing.
func (c *Ctx) SetBudget(b *sbudget.State) { c.budget = b }

// NewCtx analyses g once (topological order, descendant closure, per-node
// descendant lists, unit-class mapping) and returns a context whose Compute,
// Update and RunRanks reuse that analysis. Fails if the loop-independent
// subgraph is cyclic.
func NewCtx(g *graph.Graph, m *machine.Machine) (*Ctx, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// The successful topological sort establishes acyclicity, so the
	// descendant closure and list scheduler skip their own validation.
	desc := g.DescendantsFrom(order)
	ls := sched.NewListSchedulerAcyclic(g, m)
	n := g.Len()
	c := &Ctx{
		g:       g,
		m:       m,
		order:   order,
		topoPos: make([]int, n),
		desc:    desc,
		members: make([][]graph.NodeID, n),
		class:   make([]int, n),
		delta:   make([]int, n),
		pos:     make([]int, n),
		list:    make([]graph.NodeID, n),
		ls:      ls,
	}
	for i, id := range order {
		c.topoPos[id] = i
	}
	total := 0
	for v := 0; v < n; v++ {
		total += desc[v].Count()
	}
	backing := make([]graph.NodeID, 0, total)
	for v := 0; v < n; v++ {
		start := len(backing)
		desc[v].ForEach(func(u int) { backing = append(backing, graph.NodeID(u)) })
		mem := backing[start:len(backing):len(backing)]
		// Topological positions are a permutation, so this sort has no ties
		// and any sorting algorithm yields the same deterministic order.
		slices.SortFunc(mem, func(a, b graph.NodeID) int { return c.topoPos[a] - c.topoPos[b] })
		c.members[v] = mem
	}
	maxClass := 0
	single := m.SingleUnitOnly()
	for v := 0; v < n; v++ {
		cls := g.Node(graph.NodeID(v)).Class
		if single {
			cls = 0
		}
		c.class[v] = cls
		if cls > maxClass {
			maxClass = cls
		}
	}
	c.unitsFor = make([]int, maxClass+1)
	for cls := range c.unitsFor {
		u := m.UnitsFor(machine.UnitClass(cls))
		if u == 0 {
			u = 1 // unschedulable classes are caught by the list scheduler
		}
		c.unitsFor[cls] = u
	}
	c.occ = make([][]int, maxClass+1)
	return c, nil
}

// Graph returns the graph this context was built for.
func (c *Ctx) Graph() *graph.Graph { return c.g }

// Machine returns the machine this context was built for.
func (c *Ctx) Machine() *machine.Machine { return c.m }

// Compute returns rank(v) for every node under deadlines d (see the
// package-level Compute for the definition). The returned slice is freshly
// allocated and owned by the caller; feed it back to Update for incremental
// re-ranking and to RunRanks for scheduling.
func (c *Ctx) Compute(d []int) ([]int, error) {
	n := c.g.Len()
	if len(d) != n {
		return nil, fmt.Errorf("rank: %d deadlines for %d nodes", len(d), n)
	}
	ranks := make([]int, n)
	copy(ranks, d)
	for i := n - 1; i >= 0; i-- {
		v := c.order[i]
		if len(c.members[v]) != 0 {
			c.rankNode(v, d, ranks)
		}
	}
	return ranks, nil
}

// Update incrementally re-establishes ranks in place after the deadlines of
// the nodes in changed were modified: ranks must hold the output of a
// previous Compute/Update against a deadline vector differing from d only on
// changed nodes. rank(v) depends solely on d[v] and the ranks of v's
// descendants, so only changed nodes and their ancestors can change; Update
// recomputes exactly that topological suffix (typically a small fraction of
// the graph for the single-deadline demotions of Move_Idle_Slot).
func (c *Ctx) Update(ranks, d []int, changed graph.Bitset) {
	hi := -1
	changed.ForEach(func(u int) {
		if p := c.topoPos[u]; p > hi {
			hi = p
		}
	})
	for i := hi; i >= 0; i-- {
		v := c.order[i]
		if changed.Has(int(v)) || c.desc[v].Intersects(changed) {
			c.rankNode(v, d, ranks)
		}
	}
}

// UpdateOne is Update for a single changed node.
func (c *Ctx) UpdateOne(ranks, d []int, v graph.NodeID) {
	if c.oneBit == nil {
		c.oneBit = graph.NewBitset(c.g.Len())
	}
	c.oneBit.Set(int(v))
	c.Update(ranks, d, c.oneBit)
	c.oneBit.Clear(int(v))
}

// rankNode recomputes ranks[v] from d[v] and the current ranks of v's
// descendants: the per-ancestor step of the Compute sweep.
func (c *Ctx) rankNode(v graph.NodeID, d, ranks []int) {
	mem := c.members[v]
	if len(mem) == 0 {
		ranks[v] = d[v]
		return
	}
	g := c.g
	delta := c.delta
	// delta(u) = max over distance-0 in-edges (p → u) with p ∈ {v} ∪
	// descendants(v) of (0 if p==v else delta(p)+exec(p)) + latency.
	// Evaluated in global topological order restricted to descendants.
	for _, u := range mem {
		delta[u] = -1
	}
	dv := c.desc[v]
	for _, e := range g.Out(v) {
		if e.Distance == 0 && dv.Has(int(e.Dst)) && e.Latency > delta[e.Dst] {
			delta[e.Dst] = e.Latency
		}
	}
	for _, u := range mem {
		du := delta[u]
		exec := g.Node(u).Exec
		for _, e := range g.Out(u) {
			if e.Distance != 0 || !dv.Has(int(e.Dst)) {
				continue
			}
			if cand := du + exec + e.Latency; cand > delta[e.Dst] {
				delta[e.Dst] = cand
			}
		}
	}
	ds := c.ds[:0]
	for _, u := range mem {
		ds = append(ds, descendant{
			rank:  ranks[u],
			exec:  g.Node(u).Exec,
			class: c.class[u],
			lat:   delta[u],
			pos:   c.topoPos[u],
		})
	}
	c.ds = ds[:0] // keep the (possibly grown) backing array
	// EDF exactness wants nondecreasing rank order; break ties by release
	// (latency) then topological position so the order is a deterministic
	// total order shared with the reference implementation.
	slices.SortFunc(ds, compareDescendants)
	// Necessary upper bounds narrow the search range.
	hi := d[v]
	total, maxLat, maxExec := 0, 0, 0
	for _, u := range ds {
		if b := u.rank - u.exec - u.lat; b < hi {
			hi = b
		}
		total += u.exec
		if u.lat > maxLat {
			maxLat = u.lat
		}
		if u.exec > maxExec {
			maxExec = u.exec
		}
	}
	// Earliest-fit never places past lat + sum(exec), so this window bounds
	// every occupancy index the packing can touch.
	window := total + maxLat + maxExec + 4
	// At lo the releases leave ample slack below every deadline, so
	// infeasibility at lo means the descendants' ranks conflict on their own
	// (no completion time of v can help).
	lo := hi - 2*(total+maxLat+2)
	if !c.packFeasible(ds, lo, window) {
		ranks[v] = lo // hopelessly infeasible; surfaces as rank < exec
		return
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if c.packFeasible(ds, mid, window) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ranks[v] = lo
}

// compareDescendants orders packing entries by nondecreasing rank, ties by
// larger release latency, then by topological position. The final key makes
// the order total, so the optimized and reference implementations sort
// identically regardless of sorting algorithm.
func compareDescendants(a, b descendant) int {
	if a.rank != b.rank {
		return a.rank - b.rank
	}
	if a.lat != b.lat {
		return b.lat - a.lat
	}
	return a.pos - b.pos
}

// packFeasible reports whether all descendants (sorted by nondecreasing
// rank) can be placed when their ancestor completes at time at: each is
// placed at the earliest free position ≥ at + lat on its class pool and must
// finish by its rank. Occupancy is tracked in per-class slice windows
// indexed by t − at + 1 (the +1 absorbs a defensive −1 release), reused and
// cleared across calls — the one-shot implementation allocated two maps per
// feasibility probe. Exact for unit execution times (EDF exchange argument);
// earliest-fit heuristic for longer instructions.
func (c *Ctx) packFeasible(ds []descendant, at, window int) bool {
	for cls := range c.occ {
		clear(c.occ[cls])
	}
	for _, u := range ds {
		if len(c.occ[u.class]) < window {
			c.occ[u.class] = make([]int, window)
		}
	}
	for _, u := range ds {
		units := c.unitsFor[u.class]
		occ := c.occ[u.class]
		start := u.lat + 1 // index of absolute time at + u.lat
	place:
		for {
			end := start + u.exec
			for end > len(occ) {
				occ = append(occ, 0)
			}
			for t := start; t < end; t++ {
				if occ[t] >= units {
					start = t + 1
					continue place
				}
			}
			break
		}
		if at+(start-1)+u.exec > u.rank {
			return false
		}
		for t := start; t < start+u.exec; t++ {
			occ[t]++
		}
		c.occ[u.class] = occ
	}
	return true
}

// RunRanks greedily schedules in nondecreasing rank order (the second half
// of rank_alg) using precomputed ranks, and reports deadline feasibility
// against d. This is how Move_Idle_Slot shares one rank computation between
// its refill test and the actual reschedule. The Result's Ranks field
// aliases the input slice.
func (c *Ctx) RunRanks(ranks, d []int, tie []graph.NodeID) (*Result, error) {
	if h := faultinject.RankPass; h != nil {
		h()
	}
	if c.budget != nil {
		if err := c.budget.RankPass(); err != nil {
			return nil, err
		}
	}
	if tie == nil {
		if c.source == nil {
			c.source = sched.SourceOrder(c.g)
		}
		tie = c.source
	}
	list := c.buildList(ranks, tie)
	s, err := c.ls.Run(list)
	if err != nil {
		return nil, err
	}
	feasible := true
	for v := 0; v < c.g.Len(); v++ {
		if ranks[v] < c.g.Node(graph.NodeID(v)).Exec {
			feasible = false
			break
		}
		if s.Finish(graph.NodeID(v)) > d[v] {
			feasible = false
			break
		}
	}
	return &Result{S: s, Ranks: ranks, Feasible: feasible}, nil
}

// Run executes the full rank_alg through the context: Compute then RunRanks.
func (c *Ctx) Run(d []int, tie []graph.NodeID) (*Result, error) {
	ranks, err := c.Compute(d)
	if err != nil {
		return nil, err
	}
	return c.RunRanks(ranks, d, tie)
}

// buildList is ListFromRanks on the context's scratch: nondecreasing rank,
// ties by position in tie. The returned slice is valid until the next call.
func (c *Ctx) buildList(ranks []int, tie []graph.NodeID) []graph.NodeID {
	pos := c.pos
	for i, id := range tie {
		pos[id] = i
	}
	list := c.list[:len(tie)]
	copy(list, tie)
	slices.SortStableFunc(list, func(a, b graph.NodeID) int {
		if ranks[a] != ranks[b] {
			return ranks[a] - ranks[b]
		}
		return pos[a] - pos[b]
	})
	return list
}

// Package deps builds dependence graphs (internal/graph) from machine
// instructions (internal/isa): register true/anti/output dependences with
// producer latencies, conservative memory dependences with a base+offset
// disambiguator, control dependences into block-terminating branches, and —
// for loops — distance-1 loop-carried dependences including the carried
// control edges from the back branch (the paper's Figure 3 edge set).
package deps

import (
	"aisched/internal/graph"
	"aisched/internal/isa"
)

// BuildBlock constructs the dependence graph of a single basic block. Every
// node's Block field is set to blockIndex.
func BuildBlock(instrs []isa.Instr, blockIndex int) *graph.Graph {
	g := graph.New(len(instrs))
	addBlockNodes(g, instrs, blockIndex)
	addIntraEdges(g, instrs, 0)
	return g
}

// BuildTrace constructs the dependence graph of a trace: blocks laid out
// consecutively, with register and memory dependences tracked across block
// boundaries (the cross-block edges that make anticipatory scheduling
// worthwhile) and control dependences into each block's terminating branch.
func BuildTrace(blocks [][]isa.Instr) *graph.Graph {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	g := graph.New(total)
	var all []isa.Instr
	for bi, b := range blocks {
		addBlockNodes(g, b, bi)
		all = append(all, b...)
	}
	addIntraEdges(g, all, 0)
	// Control: branches additionally order block prefixes — an instruction
	// in a later block is control dependent on the previous block's branch.
	// These are real dependences only when the hardware cannot speculate;
	// the paper's model lets the window run ahead under branch prediction,
	// so cross-block control edges are intentionally omitted here and
	// handled by the simulator's speculation switch.
	return g
}

// BuildLoop constructs the dependence graph of a single-basic-block loop
// body: the intra-iteration edges of BuildBlock plus distance-1 loop-carried
// register, memory, and control dependences. The carried control edges run
// from the block's terminating branch to every instruction of the next
// iteration with <0,1>, matching the paper's Figure 3.
func BuildLoop(instrs []isa.Instr) *graph.Graph {
	g := BuildBlock(instrs, 0)
	n := len(instrs)

	// Carried register dependences: a value defined in iteration k and used
	// in iteration k+1 before any redefinition; plus carried anti/output
	// dependences to keep the register file consistent across iterations.
	for r := isa.Reg(0); r.Valid(); r++ {
		lastDef, defs := -1, []int{}
		for i, in := range instrs {
			for _, d := range in.Defs() {
				if d == r {
					lastDef = i
					defs = append(defs, i)
				}
			}
		}
		if lastDef < 0 {
			continue
		}
		firstDef := defs[0]
		for i, in := range instrs {
			// Carried RAW: use of r at i reads iteration k's lastDef when no
			// def of r precedes i within the iteration.
			uses := false
			for _, u := range in.Uses() {
				if u == r {
					uses = true
				}
			}
			if uses && !definedBefore(instrs, r, i) {
				g.MustEdge(graph.NodeID(lastDef), graph.NodeID(i), instrs[lastDef].Latency(), 1)
			}
			// Carried WAR: the next iteration's first def of r must wait for
			// iteration k's last use when that use is not already protected
			// by an intra-iteration def in between.
			if uses && i >= firstDef {
				g.MustEdge(graph.NodeID(i), graph.NodeID(firstDef), 0, 1)
			}
			_ = i
		}
		// Carried WAW: last def of r → next iteration's first def.
		if len(defs) > 0 && lastDef != firstDef {
			g.MustEdge(graph.NodeID(lastDef), graph.NodeID(firstDef), 0, 1)
		} else if lastDef == firstDef {
			g.MustEdge(graph.NodeID(lastDef), graph.NodeID(firstDef), 0, 1) // self
		}
	}

	// Carried memory dependences (conservative, same disambiguation as the
	// intra-block pass but across the iteration boundary).
	memInfo := analyzeBases(instrs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := instrs[i], instrs[j]
			if !a.WritesMem() && !b.WritesMem() {
				continue
			}
			if !(a.ReadsMem() || a.WritesMem()) || !(b.ReadsMem() || b.WritesMem()) {
				continue
			}
			if mayAlias(a, b, memInfo) {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), memLatency(instrs[i]), 1)
			}
		}
	}

	// Carried control: the back branch precedes the next iteration.
	br := -1
	for i, in := range instrs {
		if in.IsBranch() {
			br = i
		}
	}
	if br >= 0 {
		for i := 0; i < n; i++ {
			g.MustEdge(graph.NodeID(br), graph.NodeID(i), 0, 1)
		}
	}
	return g
}

func addBlockNodes(g *graph.Graph, instrs []isa.Instr, blockIndex int) {
	for _, in := range instrs {
		g.AddNode(in.Op.String(), in.Exec(), int(in.Class()), blockIndex)
	}
}

// addIntraEdges adds distance-0 edges for the instruction sequence starting
// at node offset base.
func addIntraEdges(g *graph.Graph, instrs []isa.Instr, base int) {
	n := len(instrs)
	info := analyzeBases(instrs)
	for j := 0; j < n; j++ {
		bj := instrs[j]
		for i := j - 1; i >= 0; i-- {
			bi := instrs[i]
			lat, dep := regDep(bi, bj)
			if dep {
				g.MustEdge(graph.NodeID(base+i), graph.NodeID(base+j), lat, 0)
			}
			// Memory dependences.
			if (bi.WritesMem() && (bj.ReadsMem() || bj.WritesMem()) ||
				bj.WritesMem() && bi.ReadsMem()) && mayAlias(bi, bj, info) {
				g.MustEdge(graph.NodeID(base+i), graph.NodeID(base+j), memLatency(bi), 0)
			}
		}
		// Control: every earlier instruction in the same block precedes its
		// branch (the paper's control-dependence edges into BT); a branch
		// precedes everything after it in the sequence.
		if bj.IsBranch() {
			for i := 0; i < j; i++ {
				if g.Node(graph.NodeID(base+i)).Block == g.Node(graph.NodeID(base+j)).Block {
					g.MustEdge(graph.NodeID(base+i), graph.NodeID(base+j), 0, 0)
				}
			}
		}
		if j > 0 && instrs[j-1].IsBranch() &&
			g.Node(graph.NodeID(base+j-1)).Block == g.Node(graph.NodeID(base+j)).Block {
			g.MustEdge(graph.NodeID(base+j-1), graph.NodeID(base+j), 0, 0)
		}
	}
}

// regDep reports whether b depends on a through a register, with the
// latency to honor (producer latency for RAW, 0 for WAR/WAW).
func regDep(a, b isa.Instr) (int, bool) {
	for _, d := range a.Defs() {
		for _, u := range b.Uses() {
			if d == u {
				return a.Latency(), true // RAW
			}
		}
		for _, d2 := range b.Defs() {
			if d == d2 {
				return 0, true // WAW
			}
		}
	}
	for _, u := range a.Uses() {
		for _, d := range b.Defs() {
			if u == d {
				return 0, true // WAR
			}
		}
	}
	return 0, false
}

// baseInfo classifies base registers for the distinct-base disambiguation
// rule. A base register is TRUSTED to name a distinct object only when the
// scope never redefines it (an externally managed array base, like the
// paper's Figure 3 x/y pointers — self-updates by LOADU/STOREU preserve the
// object) or defines it exactly once by a LI whose constant is recorded.
// Registers holding computed addresses (defined by arithmetic) are never
// trusted: two different registers can hold the same address.
type baseInfo struct {
	trusted map[isa.Reg]bool
	liConst map[isa.Reg]int64
}

func analyzeBases(instrs []isa.Instr) baseInfo {
	info := baseInfo{trusted: map[isa.Reg]bool{}, liConst: map[isa.Reg]int64{}}
	defs := map[isa.Reg][]isa.Instr{}
	for _, in := range instrs {
		for _, d := range in.Defs() {
			// Update-form self-increments keep the base within its object.
			if (in.Op == isa.LOADU || in.Op == isa.STOREU) && d == in.Base {
				continue
			}
			defs[d] = append(defs[d], in)
		}
	}
	for r := isa.Reg(0); r.Valid(); r++ {
		ds := defs[r]
		switch {
		case len(ds) == 0:
			info.trusted[r] = true // externally managed (Figure 3 style)
		case len(ds) == 1 && ds[0].Op == isa.LI:
			info.trusted[r] = true
			info.liConst[r] = ds[0].Imm
		}
	}
	return info
}

// mayAlias is the conservative base+offset disambiguator: two memory
// references are disjoint when they use the same base register with
// different offsets (and neither updates the base), or when they use
// distinct TRUSTED base registers (see baseInfo) — distinct array objects,
// assuming the source program has no out-of-bounds accesses. Everything
// else may alias.
func mayAlias(a, b isa.Instr, info baseInfo) bool {
	if a.Base == isa.NoReg || b.Base == isa.NoReg {
		return true
	}
	// Same base, different constant offsets: disjoint — but only when the
	// base is trusted (never redefined in scope), otherwise the register may
	// hold different addresses at the two accesses.
	if a.Base == b.Base && a.Imm != b.Imm && info.trusted[a.Base] &&
		a.Op != isa.LOADU && a.Op != isa.STOREU &&
		b.Op != isa.LOADU && b.Op != isa.STOREU {
		return false
	}
	if a.Base != b.Base && info.trusted[a.Base] && info.trusted[b.Base] {
		ca, okA := info.liConst[a.Base]
		cb, okB := info.liConst[b.Base]
		if okA && okB && ca == cb {
			return true // same object loaded into two registers
		}
		return false
	}
	return true
}

// memLatency: a store's value is visible immediately (latency 0); a load
// feeding through memory is treated like its register latency.
func memLatency(producer isa.Instr) int {
	if producer.WritesMem() {
		return 0
	}
	return producer.Latency()
}

// definedBefore reports whether register r is defined by any instruction
// strictly before index i.
func definedBefore(instrs []isa.Instr, r isa.Reg, i int) bool {
	for k := 0; k < i; k++ {
		for _, d := range instrs[k].Defs() {
			if d == r {
				return true
			}
		}
	}
	return false
}

package loops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
)

func TestFigure3Schedule1SteadyState(t *testing.T) {
	// §2.4: Schedule 1 (L4 ST C4 M BT) completes one iteration in 5 cycles
	// but sustains only one iteration every 7 cycles in steady state.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	st, err := Evaluate(f.G, m, f.Schedule1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 5 {
		t.Fatalf("schedule1 makespan = %d, want 5", st.Makespan)
	}
	if st.II != 7 {
		t.Fatalf("schedule1 II = %d, want 7", st.II)
	}
}

func TestFigure3Schedule2SteadyState(t *testing.T) {
	// §2.4: Schedule 2 (L4 ST M C4 BT) takes 6 cycles for one iteration but
	// sustains one iteration every 6 cycles.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	st, err := Evaluate(f.G, m, f.Schedule2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 6 {
		t.Fatalf("schedule2 makespan = %d, want 6", st.Makespan)
	}
	if st.II != 6 {
		t.Fatalf("schedule2 II = %d, want 6", st.II)
	}
}

func TestFigure3GeneralCaseFindsSchedule2(t *testing.T) {
	// §5.2.3: the general-case algorithm (the paper: "Schedule 2 is obtained
	// when the MULTIPLY instruction is selected as a candidate for the
	// source node") finds an II-6 schedule, beating the block-optimal II-7.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	st, err := ScheduleSingleBlockLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 6 {
		t.Fatalf("general case II = %d, want 6 (order %v)", st.II, st.Order)
	}
}

func TestFigure3SingleSourceMultiply(t *testing.T) {
	// Selecting M as the §5.2.1 source candidate yields exactly Schedule 2.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	order, err := SingleSourceOrder(f.G, m, f.M)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Schedule2
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("single-source(M) order = %v, want %v", order, want)
		}
	}
}

func TestFigure8Completions(t *testing.T) {
	// Figure 8: S1 = (1 2 3)ⁿ completes in 5n−1 cycles; S2 = (2 1 3)ⁿ in 4n.
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	st1, err := Evaluate(f.G, m, f.S1)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Evaluate(f.G, m, f.S2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 10} {
		if got, want := st1.CompletionN(n), 5*n-1; got != want {
			t.Fatalf("S1 completion(%d) = %d, want %d", n, got, want)
		}
		if got, want := st2.CompletionN(n), 4*n; got != want {
			t.Fatalf("S2 completion(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFigure8SingleSourceTransformIsSymmetric(t *testing.T) {
	// The equivalent acyclic graph of §5.2.1 is completely symmetric in
	// nodes 1 and 2, so the single-source transform produces the suboptimal
	// S1 ordering (node 1 first).
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	order, err := SingleSourceOrder(f.G, m, f.N1)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != f.N1 || order[1] != f.N2 || order[2] != f.N3 {
		t.Fatalf("single-source order = %v, want [1 2 3]", order)
	}
	st, err := Evaluate(f.G, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 5 {
		t.Fatalf("single-source II = %d, want 5", st.II)
	}
}

func TestFigure8SingleSinkFindsOptimal(t *testing.T) {
	// §5.2.2 duality: node 3 is the single sink and the source of the
	// loop-carried edges; the sink transform discovers S2 (node 2 first).
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	order, err := SingleSinkOrder(f.G, m, f.N3)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != f.N2 || order[1] != f.N1 || order[2] != f.N3 {
		t.Fatalf("single-sink order = %v, want [2 1 3]", order)
	}
	st, err := Evaluate(f.G, m, order)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 4 {
		t.Fatalf("single-sink II = %d, want 4", st.II)
	}
}

func TestFigure8GeneralCasePicksS2(t *testing.T) {
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	st, err := ScheduleSingleBlockLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 4 {
		t.Fatalf("general case II = %d, want 4 (order %v)", st.II, st.Order)
	}
}

func TestSteadyIIResourceBound(t *testing.T) {
	// Two independent unit nodes, no carried edges: II limited by the single
	// unit → 2.
	g := graph.New(2)
	g.AddUnit("a")
	g.AddUnit("b")
	m := machine.SingleUnit(1)
	st, err := Evaluate(g, m, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 2 {
		t.Fatalf("II = %d, want 2 (resource bound)", st.II)
	}
}

func TestEvaluateRejectsNonPermutation(t *testing.T) {
	g := graph.New(2)
	g.AddUnit("a")
	g.AddUnit("b")
	if _, err := Evaluate(g, machine.SingleUnit(1), []graph.NodeID{0}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestScheduleLoopDispatch(t *testing.T) {
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	st, err := ScheduleLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != 4 {
		t.Fatalf("dispatch single-block II = %d, want 4", st.II)
	}
}

func TestScheduleLoopTraceTwoBlocks(t *testing.T) {
	// A two-block loop: block 0 = {a→b}, block 1 = {c, d}, carried edge
	// d→a <2,1>. The trace algorithm must return a valid steady state no
	// worse than program order.
	g := graph.New(4)
	a := g.AddNode("a", 1, 0, 0)
	b := g.AddNode("b", 1, 0, 0)
	c := g.AddNode("c", 1, 0, 1)
	d := g.AddNode("d", 1, 0, 1)
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, c, 0, 0)
	g.MustEdge(d, a, 2, 1)
	m := machine.SingleUnit(2)
	st, err := ScheduleLoopTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Evaluate(g, m, []graph.NodeID{a, b, c, d})
	if err != nil {
		t.Fatal(err)
	}
	if st.II > base.II {
		t.Fatalf("trace algorithm II %d worse than program order %d", st.II, base.II)
	}
	if err := st.S.Validate(); err != nil {
		t.Fatal(err)
	}
	// Block orders must keep blocks contiguous.
	seenBlock1 := false
	for _, id := range st.Order {
		if g.Node(id).Block == 1 {
			seenBlock1 = true
		} else if seenBlock1 {
			t.Fatalf("order %v interleaves blocks", st.Order)
		}
	}
}

func TestScheduleLoopTraceRejectsSingleBlock(t *testing.T) {
	f := paperex.NewFig8()
	if _, err := ScheduleLoopTrace(f.G, machine.SingleUnit(2)); err == nil {
		t.Fatal("single-block loop accepted by trace algorithm")
	}
}

func TestPipelineFig3(t *testing.T) {
	// The Figure 3 body (already software-pipelined by hand in the paper)
	// has recurrence MII 5 from M→M <4,1> (1 + 4); modulo scheduling must
	// find a kernel with II ≥ 5.
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	k, err := Pipeline(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if k.II < 5 {
		t.Fatalf("kernel II = %d, below recurrence bound 5", k.II)
	}
	// Kernel offsets must satisfy every edge at its II.
	for _, e := range f.G.Edges() {
		if k.Offsets[e.Dst] < k.Offsets[e.Src]+f.G.Node(e.Src).Exec+e.Latency-e.Distance*k.II {
			t.Fatalf("kernel violates edge %v", e)
		}
	}
}

func TestModuloShiftPreservesNodes(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	k, err := Pipeline(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := ModuloShift(f.G, k)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.Len() != f.G.Len() {
		t.Fatalf("shifted graph has %d nodes, want %d", shifted.Len(), f.G.Len())
	}
	if !shifted.IsAcyclic() {
		t.Fatal("shifted loop-independent subgraph must stay acyclic")
	}
}

func TestPipelineThenAnticipateNoWorseThanPipelineAlone(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	st, k, err := PipelineThenAnticipate(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := ModuloShift(f.G, k)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Evaluate(shifted, m, k.OrderByOffsets())
	if err != nil {
		t.Fatal(err)
	}
	if st.II > plain.II {
		t.Fatalf("anticipatory post-pass II %d worse than pipeline alone %d", st.II, plain.II)
	}
}

func randomLoop(r *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.35 {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
			}
		}
	}
	// 1–3 loop-carried edges.
	for k := 0; k < 1+r.Intn(3); k++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		g.MustEdge(u, v, 1+r.Intn(4), 1+r.Intn(2))
	}
	return g
}

func TestPropertyGeneralCaseNeverWorseThanBlockOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLoop(r, 2+r.Intn(8))
		m := machine.SingleUnit(4)
		st, err := ScheduleSingleBlockLoop(g, m)
		if err != nil {
			return false
		}
		// Candidate set includes the block-optimal order, so the chosen II
		// can never exceed it.
		li := g.LoopIndependent()
		baseOrder, err := li.TopoOrder()
		if err != nil {
			return false
		}
		base, err := Evaluate(g, m, baseOrder)
		if err != nil {
			return false
		}
		_ = base
		return st.II >= 1 && st.S.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySteadyIIAtLeastRecurrenceBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLoop(r, 2+r.Intn(8))
		m := machine.SingleUnit(4)
		st, err := ScheduleSingleBlockLoop(g, m)
		if err != nil {
			return false
		}
		return st.II >= recurrenceMII(g) && st.II >= resourceMII(g, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPipelineIINeverAboveEvaluateProgramOrder(t *testing.T) {
	// The modulo scheduler optimizes II directly, so its kernel II is never
	// worse than the steady state of the program-order body schedule.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLoop(r, 2+r.Intn(7))
		m := machine.SingleUnit(4)
		k, err := Pipeline(g, m)
		if err != nil {
			return false
		}
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		st, err := Evaluate(g, m, order)
		if err != nil {
			return false
		}
		return k.II <= st.II
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random mini-C program with nStmts top-level
// statements over a small pool of scalars and arrays — a workload source
// that exercises the whole compiler pipeline (and doubles as a fuzzer for
// it). The generated programs always compile: every variable is declared
// first, expression depth is bounded, and array indices are scalars or
// scalar±constant.
func RandomProgram(r *rand.Rand, nStmts int) string {
	var b strings.Builder
	scalars := []string{"a", "b", "c", "i"}
	arrays := []string{"u", "v"}
	for _, s := range scalars {
		fmt.Fprintf(&b, "int %s;\n", s)
	}
	for _, a := range arrays {
		fmt.Fprintf(&b, "int %s[32];\n", a)
	}
	// Initialize scalars so later reads are defined.
	for i, s := range scalars {
		fmt.Fprintf(&b, "%s = %d;\n", s, i+1)
	}

	var expr func(depth int) string
	expr = func(depth int) string {
		switch {
		case depth <= 0 || r.Intn(3) == 0:
			if r.Intn(2) == 0 {
				return scalars[r.Intn(len(scalars))]
			}
			return fmt.Sprint(1 + r.Intn(9))
		case r.Intn(4) == 0:
			return fmt.Sprintf("%s[%s]", arrays[r.Intn(len(arrays))], scalars[r.Intn(len(scalars))])
		default:
			ops := []string{"+", "-", "*", "+", "-"} // multiplies rarer
			return fmt.Sprintf("(%s %s %s)", expr(depth-1), ops[r.Intn(len(ops))], expr(depth-1))
		}
	}
	cond := func() string {
		cmp := []string{"<", ">", "==", "!=", "<=", ">="}
		return fmt.Sprintf("%s %s %d", scalars[r.Intn(len(scalars))], cmp[r.Intn(len(cmp))], r.Intn(10))
	}

	var stmt func(depth int)
	stmt = func(depth int) {
		switch k := r.Intn(6); {
		case k < 3: // assignment
			if r.Intn(3) == 0 {
				fmt.Fprintf(&b, "%s[%s] = %s;\n",
					arrays[r.Intn(len(arrays))], scalars[r.Intn(len(scalars))], expr(2))
			} else {
				fmt.Fprintf(&b, "%s = %s;\n", scalars[r.Intn(len(scalars))], expr(2))
			}
		case k == 3 && depth > 0: // if
			fmt.Fprintf(&b, "if (%s) {\n", cond())
			stmt(depth - 1)
			if r.Intn(2) == 0 {
				b.WriteString("} else {\n")
				stmt(depth - 1)
			}
			b.WriteString("}\n")
		case k == 4 && depth > 0: // bounded for loop
			fmt.Fprintf(&b, "for (i = 0; i < %d; i = i + 1) {\n", 2+r.Intn(6))
			stmt(0) // straight-line body keeps the loop single-block
			b.WriteString("}\n")
		default:
			fmt.Fprintf(&b, "%s = %s;\n", scalars[r.Intn(len(scalars))], expr(1))
		}
	}
	for s := 0; s < nStmts; s++ {
		stmt(1)
	}
	return b.String()
}

package aisched

// Always-on metrics plane. PR 1's tracing (internal/obs) answers "what
// happened inside one run" and must be attached per call; this layer is the
// opposite trade: continuously aggregated process-wide counters, gauges,
// and latency histograms that are on for every request and effectively free
// (the record path is a handful of striped atomic adds — no maps, no locks,
// no allocation; see internal/metrics). It is the substrate a long-running
// scheduling service exports from: MetricsSnapshot for programs,
// WriteMetricsPrometheus for scrapers, ServeDebug for an HTTP debug
// surface (/metrics, /debug/pprof, /healthz, /statsz).
//
// Request latency is recorded on every facade call (two monotonic clock
// reads against a cost of tens to hundreds of microseconds); the per-stage
// rank/idle/sim timings sample one request in 16, since the simulator path
// is only a few microseconds and timing every call would be measurable.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"aisched/internal/buildinfo"
	"aisched/internal/metrics"
)

// Facade instruments, registered once on the process-wide default registry.
var (
	mReqBlockNS = metrics.Default.NewHistogram("aisched_request_block_ns",
		"ScheduleBlock request latency (facade, nanoseconds)")
	mReqTraceNS = metrics.Default.NewHistogram("aisched_request_trace_ns",
		"ScheduleTrace request latency (facade, nanoseconds)")
	mReqLoopNS = metrics.Default.NewHistogram("aisched_request_loop_ns",
		"ScheduleLoop request latency (facade, nanoseconds)")
	mQueueWaitNS = metrics.Default.NewHistogram("aisched_batch_queue_wait_ns",
		"time a batch item waited between submission and a worker picking it up")
	mBatchItems = metrics.Default.NewCounter("aisched_batch_items_total",
		"batch items processed by ScheduleBatch worker pools")
	mWorkersBusy = metrics.Default.NewGauge("aisched_batch_workers_busy",
		"batch worker-pool occupancy (items currently being scheduled)")
	mBatchPanics = metrics.Default.NewCounter("aisched_batch_panics_total",
		"panics recovered by the batch per-item isolation boundary")
	mDegraded = metrics.Default.NewCounter("aisched_degraded_total",
		"requests served by the baseline fallback after budget exhaustion")
	mCancelled = metrics.Default.NewCounter("aisched_cancelled_total",
		"requests abandoned by context cancellation")

	// Sampled per-stage timings: one request in 16 pays for the nanotime
	// pair; the histograms still converge on the stage cost distribution.
	mStageRankNS = metrics.Default.NewHistogram("aisched_stage_rank_ns",
		"rank-pass stage latency (sampled 1/16)")
	mStageIdleNS = metrics.Default.NewHistogram("aisched_stage_idle_ns",
		"Delay_Idle_Slots stage latency (sampled 1/16)")
	mStageSimNS = metrics.Default.NewHistogram("aisched_stage_sim_ns",
		"hardware window-simulation latency (sampled 1/16)")
	stageSampler = metrics.NewSampler(16)
	simSampler   = metrics.NewSampler(16)
)

// BuildInfo identifies the running binary: module version plus the VCS
// revision/time/dirty bit stamped by the Go linker.
type BuildInfo = buildinfo.Info

// VersionInfo returns the running binary's build identity.
func VersionInfo() BuildInfo { return buildinfo.Get() }

// MetricsStats is the always-on metrics snapshot: build identity plus every
// registered counter, gauge, and histogram (with p50/p95/p99/max latency
// estimates). Marshals to stable JSON — the /statsz endpoint and
// `aisched -metrics` print exactly this structure.
type MetricsStats struct {
	Build   BuildInfo        `json:"build"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// JSON renders the snapshot as indented JSON.
func (s MetricsStats) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// MetricsSnapshot captures the process-wide metrics registry: schedule-
// cache hit/miss/evict/coalesce, budget exhaustions and degradations,
// request/stage latency quantiles, batch worker occupancy, and the build
// identity. It is safe to call at any frequency from any goroutine.
func MetricsSnapshot() MetricsStats {
	return MetricsStats{Build: buildinfo.Get(), Metrics: metrics.Default.Snapshot()}
}

// WriteMetricsPrometheus writes the process-wide registry in Prometheus
// text format v0.0.4 — the same bytes /metrics serves.
func WriteMetricsPrometheus(w io.Writer) error {
	return metrics.Default.WritePrometheus(w)
}

// DebugServer is an opt-in HTTP observability surface started by
// ServeDebug. It is the substrate a scheduling daemon mounts directly:
//
//	/metrics       — Prometheus text format v0.0.4
//	/statsz        — MetricsSnapshot as JSON
//	/healthz       — liveness ("ok")
//	/debug/pprof/* — the standard Go profiling endpoints (profile, heap,
//	                 goroutine, trace, ...)
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugMux returns the debug HTTP handler without binding a listener, for
// callers that mount it into their own server.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		data, err := MetricsSnapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (e.g. "localhost:6060", or ":0" for an ephemeral
// port) and serves the debug surface until Close. The listener is bound
// synchronously — a nil error means Addr() is live — and requests are
// served on a background goroutine.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("aisched: debug server: %w", err)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: DebugMux()}}
	go func() {
		if err := ds.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The server outlives the caller's error handling; nothing to do
			// beyond stopping. Close surfaces no error for a closed listener.
			_ = err
		}
	}()
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }

// observeRequest records one facade request's latency.
func observeRequest(h *metrics.Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// stageTimer starts a sampled stage timing; it returns a zero time (skip)
// for the unsampled 15/16 of requests.
func stageTimer(s *metrics.Sampler) time.Time {
	if s.Sample() {
		return time.Now()
	}
	return time.Time{}
}

// stageDone completes a sampled stage timing started by stageTimer.
func stageDone(h *metrics.Histogram, start time.Time) {
	if !start.IsZero() {
		h.Observe(int64(time.Since(start)))
	}
}

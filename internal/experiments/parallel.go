package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"aisched"
	"aisched/internal/machine"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// P3 measures the speculative parallel trace scheduler across trace length
// and barrier rate: sequential vs forced-parallel wall clock, the join
// verification hit rate, lane-B hint seeding on a repeat run through a shared
// step cache, and the blocks recomputed on mismatches. Every parallel result
// is checked bit-identical to the sequential walk — that is the acceptance
// that must hold on any host.
//
// The wall-clock speedup is a function of the machine: segment workers run
// concurrently, so the walk scales only with *physical* cores — and Go
// cannot tell those apart from an oversubscribed GOMAXPROCS (CI runners,
// `-cpu=4` on a 1-core container). The speedup column is therefore
// advisory: reported always, noted when it misses the design target (>= 2x
// on the 256-block barrier-rich trace at GOMAXPROCS >= 4; the README/bench
// target is 3x), never a failure. No-barrier traces are the designed miss
// regime: cut points get low scores, joins mismatch, and the driver
// recomputes — the row documents that the fallback stays correct, not that
// it is fast.
func P3(seed int64, reps int) (*Result, error) {
	if reps < 1 {
		reps = 1
	}
	m := machine.SingleUnit(4)
	procs := runtime.GOMAXPROCS(0)
	nseg := procs
	if nseg < 4 {
		nseg = 4
	}
	t := tables.New(fmt.Sprintf("P3: speculative parallel trace scheduling (forced %d segments, GOMAXPROCS=%d, best of %d)", nseg, procs, reps),
		"trace", "blocks", "seq µs", "par µs", "speedup", "verified", "laneB (2nd run)", "fallback blocks")
	res := &Result{ID: "P3", Table: t, Passed: true}

	cases := []struct {
		name         string
		blocks       int
		barrierEvery int
	}{
		{"barrier-rich", 64, 2},
		{"barrier-rich", 256, 2},
		{"sparse-barrier", 256, 6},
		{"no-barrier", 64, 0},
	}
	for _, c := range cases {
		cfg := workload.DefaultLongTrace(c.blocks)
		cfg.BarrierEvery = c.barrierEvery
		g, err := workload.LongTrace(rand.New(rand.NewSource(seed+int64(100*c.blocks+c.barrierEvery))), cfg)
		if err != nil {
			return nil, err
		}

		seqSched := aisched.NewScheduler(aisched.SchedulerOptions{
			CacheCapacity: -1, StepCacheCapacity: -1, ParallelTrace: -1,
		})
		want, err := seqSched.ScheduleTrace(g, m)
		if err != nil {
			return nil, err
		}
		seqNS, err := bestTraceNS(reps, seqSched, g, m)
		if err != nil {
			return nil, err
		}

		parSched := aisched.NewScheduler(aisched.SchedulerOptions{
			CacheCapacity: -1, StepCacheCapacity: -1, ParallelTrace: nseg,
		})
		before := aisched.SpecTraceCounters()
		got, err := parSched.ScheduleTrace(g, m)
		if err != nil {
			return nil, err
		}
		if diff := specDiff(want, got); diff != "" {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf("%s/%d: parallel result diverged: %s", c.name, c.blocks, diff))
			continue
		}
		parNS, err := bestTraceNS(reps, parSched, g, m)
		if err != nil {
			return nil, err
		}
		after := aisched.SpecTraceCounters()
		segs := after.Segments - before.Segments
		hits := after.Hits - before.Hits
		fallback := after.FallbackBlocks - before.FallbackBlocks
		hit := 0.0
		if segs > 0 {
			hit = float64(hits) / float64(segs)
		}

		// Lane B: the same trace twice through one step-cache-backed
		// scheduler; the first run stores join hints, the second seeds
		// segment entry states from them instead of warm-up run-ins.
		lbSched := aisched.NewScheduler(aisched.SchedulerOptions{
			CacheCapacity: -1, ParallelTrace: nseg,
		})
		if _, err := lbSched.ScheduleTrace(g, m); err != nil {
			return nil, err
		}
		midLB := aisched.SpecTraceCounters()
		got2, err := lbSched.ScheduleTrace(g, m)
		if err != nil {
			return nil, err
		}
		if diff := specDiff(want, got2); diff != "" {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf("%s/%d: lane-B result diverged: %s", c.name, c.blocks, diff))
			continue
		}
		laneB := aisched.SpecTraceCounters().LaneB - midLB.LaneB

		speed := float64(seqNS) / float64(parNS)
		t.Add(c.name, c.blocks,
			seqNS/1000, parNS/1000, fmt.Sprintf("%.2fx", speed),
			fmt.Sprintf("%d/%d (%.0f%%)", hits, segs, 100*hit),
			laneB, fallback)

		if c.barrierEvery == 2 && hit < 0.5 {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s/%d: join verification hit rate %.0f%% below 50%%", c.name, c.blocks, 100*hit))
		}
		if c.barrierEvery == 2 && c.blocks == 256 && procs >= 4 && speed < 2 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"advisory: %s/%d speedup %.2fx below the 2x target at GOMAXPROCS=%d (oversubscribed or shared cores?)",
				c.name, c.blocks, speed, procs))
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"speedup is advisory (GOMAXPROCS=%d may oversubscribe physical cores); the gates are bit-identity and the barrier-trace hit rate", procs))
	return res, nil
}

// bestTraceNS times reps whole-trace calls and keeps the fastest.
func bestTraceNS(reps int, sc *aisched.Scheduler, g *aisched.Graph, m *machine.Machine) (int64, error) {
	best := int64(1) << 62
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := sc.ScheduleTrace(g, m); err != nil {
			return 0, err
		}
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// specDiff reports the first placement difference between two trace results,
// or "" when they are bit-identical.
func specDiff(want, got *aisched.TraceResult) string {
	if len(got.Order) != len(want.Order) {
		return fmt.Sprintf("order length %d vs %d", len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			return fmt.Sprintf("Order[%d] = %d vs %d", i, got.Order[i], want.Order[i])
		}
	}
	for v := range want.S.Start {
		if got.S.Start[v] != want.S.Start[v] || got.S.Unit[v] != want.S.Unit[v] {
			return fmt.Sprintf("node %d placed (%d,%d) vs (%d,%d)", v,
				got.S.Start[v], got.S.Unit[v], want.S.Start[v], want.S.Unit[v])
		}
	}
	return ""
}

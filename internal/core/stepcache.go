package core

// Structural step cache: content-addressed memoization of one Step.Run
// iteration (merge + Delay_Idle_Slots + chop). Real traces are dominated by
// repeated block structure — unrolled loops, repeated idioms — and the whole
// anticipatory scheduler is per-block work, so the second arrival of a block
// whose merge inputs are structurally identical to an earlier one should
// replay the earlier outcome instead of re-running merge/rank/chop.
//
// # Key
//
// A Step.Run outcome is a deterministic function of the view's content
// (node attributes and edges), the machine (unit counts and window), the
// carried suffix state (DOld/FOld/OldCount/OldMakespan), the release floors,
// and SkipDelay. Tie, Block, Tracer and Budget affect only tie-break input
// (see the canonical-layout precondition below), events, and cancellation —
// never the schedule — so they stay out of the key. The key is a 128-bit
// graph.Hasher sum over:
//
//   - the constants: view size, OldCount, OldMakespan, SkipDelay, window,
//     unit counts;
//   - the carried suffix fingerprint (see below), folding the whole suffix
//     into two words;
//   - the new nodes' exec/class attributes (their block is implied: one new
//     block, ordered after every suffix block);
//   - every edge of the view as (src, dst, latency) in view IDs — view IDs
//     are canonical positions, so relocated copies of the same structure
//     hash identically;
//   - the nonzero release floors as (view ID, floor) pairs.
//
// # Incremental suffix fingerprint
//
// The suffix half of the key is not re-hashed per step: when a miss runs the
// full Step, the outgoing suffix (the Plus set) is fingerprinted once —
// per node in ascending view-ID order (exactly the next view's prefix
// order): exec, class, dense block ordinal, carried deadline and finish
// (both chop-frame-relative) — and the sum is carried on the Step and
// stored in the fragment. A hit therefore carries the next suffix
// fingerprint in O(1), and a miss pays O(suffix); nothing ever re-hashes
// the suffix per lookup. Block numbers enter only as dense ordinals:
// every consumer of block numbers inside Step.Run (windowRealizable)
// compares them for order, so order-isomorphic relabelings — the same
// block structure at a different trace position — legitimately share a key.
//
// # Canonical layout precondition
//
// Caching requires the view to be in canonical layout: the carried suffix
// occupies view IDs [0, OldCount) in ascending previous-view order, the new
// block occupies [OldCount, N), and the rank tie-break is the identity
// permutation (program order). The streaming engine guarantees this by
// construction; the batch driver guarantees it whenever the trace's node IDs
// are grouped by block (every carried ID below every new ID) and no custom
// Tie is set, and bypasses the cache otherwise. Bypassed or failed steps
// invalidate the carried fingerprint; the next full Run recomputes it from
// its output, so cache coverage resumes one miss later.
//
// # Fragment and relocation
//
// A cached value is a relocatable fragment: per-view-node start/unit/
// deadline (frame-relative, int32), the Minus/Plus permutations in view IDs,
// the chop base, and the successor suffix fingerprint. A hit replays in
// O(fragment) into Step-owned scratch — the same lifetime contract as
// StepOut's other fields — and the driver's existing commit path performs
// the relocation: view ID → original/stream ID through its ids array, frame
// cycle → absolute cycle through its time base. Steady-state hits allocate
// nothing.
//
// # Why a non-cryptographic 128-bit key is sound here
//
// The memo layer's Fingerprint uses SHA-256 because cache keys cross trust
// boundaries (any caller-built graph). Step keys never do: they are built
// from the scheduler's own iteration state, so only accidental collisions
// matter, and at 128 well-mixed bits those are birthday-bounded below any
// practical workload (see graph.Hash128). The differential tests and
// FuzzStepCache pin the end-to-end guarantee: cache-on and cache-off
// schedules are bit-identical.

import (
	"encoding/binary"
	"sync"

	"aisched/internal/graph"
	"aisched/internal/memo"
	"aisched/internal/metrics"
)

// mStepRelocations counts cache hits replayed by fragment relocation — the
// always-on companion to the step cache's hit/miss/evict counters
// (memo.StepMetrics).
var mStepRelocations = metrics.Default.NewCounter("aisched_stepcache_relocations_total",
	"step-cache hits replayed by fragment relocation (view-ID remap + frame retime)")

// Distinct hasher seeds for the two hash domains, so a step key can never
// collide with a suffix fingerprint by construction.
const (
	stepKeySeed  = 0x51e9cafe01
	suffixFPSeed = 0x51e9cafe02
)

// emptySuffixFP is the carried fingerprint of the empty suffix (OldCount 0):
// a fixed value distinct from any real suffix sum (real sums absorb at least
// the suffix length word under suffixFPSeed).
var emptySuffixFP = func() graph.Hash128 {
	var h graph.Hasher
	h.Reset(suffixFPSeed)
	return h.Sum()
}()

// StepCacheConfig sizes a StepCache. The zero value picks the memo layer's
// defaults (4096 fragments, 64 MiB, 16 shards).
type StepCacheConfig struct {
	// Capacity is the total fragment budget (0 = default; the cache is
	// byte-bounded too, see MaxBytes).
	Capacity int
	// MaxBytes bounds approximate resident fragment bytes (0 = default
	// 64 MiB, negative = unbounded).
	MaxBytes int
	// Shards is the lock-shard count (0 = default 16).
	Shards int
}

// StepCache memoizes Step.Run outcomes as relocatable fragments. Safe for
// concurrent use: one cache is shared by every worker of a batch Scheduler
// (fragments are immutable once stored; each worker's Step replays into its
// own scratch).
//
// It also carries the speculative join-hint table (parallel.go): small
// block-relative snapshots of the carried-suffix state observed at segment
// cuts, keyed by the cut's structural neighborhood, which seed the second
// speculation lane on repetitive traces. Hints are advisory — a wrong hint
// only costs a failed verification — so the table is a plain bounded map
// under one mutex, touched once per segment, never on the merge hot path.
type StepCache struct {
	c *memo.Cache

	hintMu sync.Mutex
	hints  map[graph.Hash128]*specHint
}

// NewStepCache builds a step cache.
func NewStepCache(cfg StepCacheConfig) *StepCache {
	return &StepCache{c: memo.New(memo.Config{
		Capacity: cfg.Capacity,
		MaxBytes: cfg.MaxBytes,
		Shards:   cfg.Shards,
		Metrics:  memo.StepMetrics,
	})}
}

// Counters returns the cache's activity counters.
func (sc *StepCache) Counters() memo.Counters { return sc.c.Counters() }

// Release drops every resident fragment, returning their bytes to the
// process-wide gauge, and clears the speculative join-hint table. Owners
// with bounded lifetimes (a closed stream) call this so the resident-bytes
// metric tracks live caches.
func (sc *StepCache) Release() {
	sc.c.Release()
	sc.hintMu.Lock()
	sc.hints = nil
	sc.hintMu.Unlock()
}

// stepFrag is one cached Step outcome. All cycles are chop-frame-relative
// and all node references are view IDs, which is what makes the fragment
// relocatable: the driver's ordinary commit path maps view IDs through its
// own ids array and adds its own time base. int32 everywhere: every stored
// quantity is bounded by the view's frame (starts, deadlines, units, view
// IDs), and fragments are resident state worth packing.
type stepFrag struct {
	n        int32
	start    []int32
	unit     []int32
	d        []int32
	minus    []int32 // committed prefix, schedule order
	plus     []int32 // carried suffix, schedule order
	base     int32
	repaired bool
	suffFP   graph.Hash128 // successor suffix fingerprint, carried on a hit
}

// ApproxBytes implements memo.Sizer for the byte-bounded LRU.
func (f *stepFrag) ApproxBytes() int {
	return 96 + 4*(len(f.start)+len(f.unit)+len(f.d)+len(f.minus)+len(f.plus))
}

// RunMemo is Step.Run behind the step cache. canonical reports that the
// caller guarantees the canonical layout precondition (see the package
// comment); when it is false, sc is nil, or a tracer wants per-pass events
// (a replayed hit emits none), the call falls through to Run and the carried
// fingerprint is invalidated. On a miss the full Run executes, the outgoing
// suffix is fingerprinted, and the outcome is stored; on a hit the fragment
// replays into Step-owned scratch — StepOut.S then aliases the Step like D,
// Minus and Plus, valid until the next Run or RunMemo.
func (st *Step) RunMemo(in *StepIn, sc *StepCache, canonical bool) (StepOut, error) {
	if sc == nil || !canonical || in.Tracer != nil {
		st.suffOK = false
		return st.Run(in)
	}
	if in.OldCount == 0 {
		st.suffFP = emptySuffixFP
		st.suffOK = true
	}
	if !st.suffOK {
		// The carried fingerprint was lost (a bypassed or failed step):
		// run fully and rebuild it from the output so the next step can
		// use the cache again.
		out, err := st.Run(in)
		if err != nil {
			return out, err
		}
		st.suffFP = st.suffixFP(in, &out)
		st.suffOK = true
		return out, nil
	}
	key := st.stepKey(in)
	if v, ok := sc.c.Get(key); ok {
		f := v.(*stepFrag)
		mStepRelocations.Inc()
		st.suffFP = f.suffFP
		return st.replay(in, f), nil
	}
	out, err := st.Run(in)
	if err != nil {
		st.suffOK = false
		return out, err
	}
	next := st.suffixFP(in, &out)
	sc.c.Put(key, fragOf(in, &out, next))
	st.suffFP = next
	return out, nil
}

// stepKey hashes the step's full input (see the package comment) into a
// memo key: the 128-bit sum fills the fingerprint's first 16 bytes.
func (st *Step) stepKey(in *StepIn) memo.Key {
	h := &st.keyH
	h.Reset(stepKeySeed)
	view := in.View
	n := view.N
	h.Int(n)
	h.Int(in.OldCount)
	h.Int(in.OldMakespan)
	if in.SkipDelay {
		h.Word(1)
	} else {
		h.Word(0)
	}
	h.Int(in.M.Window)
	h.Int(len(in.M.Units))
	for _, u := range in.M.Units {
		h.Int(u)
	}
	h.Word(st.suffFP.Lo)
	h.Word(st.suffFP.Hi)
	for si := in.OldCount; si < n; si++ {
		h.Int(int(view.Exec[si]))
		h.Int(int(view.Class[si]))
	}
	for si := 0; si < n; si++ {
		for ei := view.Off[si]; ei < view.Off[si+1]; ei++ {
			h.Int(si)
			h.Int(int(view.Dst[ei]))
			h.Int(int(view.Lat[ei]))
		}
	}
	if in.ROld != nil {
		for si := 0; si < n; si++ {
			if in.ROld[si] > 0 {
				h.Int(si)
				h.Int(in.ROld[si])
			}
		}
	}
	sum := h.Sum()
	k := memo.Key{Kind: memo.KindStep}
	binary.LittleEndian.PutUint64(k.FP[0:8], sum.Lo)
	binary.LittleEndian.PutUint64(k.FP[8:16], sum.Hi)
	return k
}

// suffixFP fingerprints the outgoing suffix of a completed step: the Plus
// nodes in ascending view-ID order — exactly the next view's prefix order in
// both drivers — with their attributes, dense block ordinal, and carried
// deadline/finish rebased to the chop frame. O(view), paid once per miss.
func (st *Step) suffixFP(in *StepIn, out *StepOut) graph.Hash128 {
	n := in.View.N
	st.plusMask = growSlice(st.plusMask, n)
	mask := st.plusMask
	clear(mask)
	for _, si := range out.Plus {
		mask[si] = true
	}
	h := &st.keyH
	h.Reset(suffixFPSeed)
	h.Int(len(out.Plus))
	ord := -1
	var lastBlock int32
	for si := 0; si < n; si++ {
		if !mask[si] {
			continue
		}
		if ord < 0 || in.View.Block[si] != lastBlock {
			ord++
			lastBlock = in.View.Block[si]
		}
		h.Int(int(in.View.Exec[si]))
		h.Int(int(in.View.Class[si]))
		h.Int(ord)
		h.Int(out.D[si] - out.Base)
		h.Int(out.S.Finish(graph.NodeID(si)) - out.Base)
	}
	return h.Sum()
}

// fragOf freezes a completed step into an immutable fragment.
func fragOf(in *StepIn, out *StepOut, next graph.Hash128) *stepFrag {
	n := in.View.N
	f := &stepFrag{
		n:        int32(n),
		start:    make([]int32, n),
		unit:     make([]int32, n),
		d:        make([]int32, n),
		minus:    make([]int32, len(out.Minus)),
		plus:     make([]int32, len(out.Plus)),
		base:     int32(out.Base),
		repaired: out.Repaired,
		suffFP:   next,
	}
	for i := 0; i < n; i++ {
		f.start[i] = int32(out.S.Start[i])
		f.unit[i] = int32(out.S.Unit[i])
		f.d[i] = int32(out.D[i])
	}
	for i, v := range out.Minus {
		f.minus[i] = int32(v)
	}
	for i, v := range out.Plus {
		f.plus[i] = int32(v)
	}
	return f
}

// replay materializes a fragment into the Step's replay scratch. The view's
// exec array is aliased into the schedule so Finish and Makespan read the
// live view; starts, units and deadlines are widened out of the fragment.
func (st *Step) replay(in *StepIn, f *stepFrag) StepOut {
	n := in.View.N
	st.memoS.ResetView(in.M, n, in.View.Exec)
	for i := 0; i < n; i++ {
		st.memoS.Start[i] = int(f.start[i])
		st.memoS.Unit[i] = int(f.unit[i])
	}
	st.memoD = growSlice(st.memoD, n)
	for i := 0; i < n; i++ {
		st.memoD[i] = int(f.d[i])
	}
	st.memoMinus = growSlice(st.memoMinus, len(f.minus))
	for i, v := range f.minus {
		st.memoMinus[i] = graph.NodeID(v)
	}
	st.memoPlus = growSlice(st.memoPlus, len(f.plus))
	for i, v := range f.plus {
		st.memoPlus[i] = graph.NodeID(v)
	}
	return StepOut{
		S: &st.memoS, D: st.memoD,
		Minus: st.memoMinus, Plus: st.memoPlus,
		Base: int(f.base), Repaired: f.repaired,
	}
}

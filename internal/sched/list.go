package sched

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/machine"
)

// ListSchedule runs the greedy list scheduler: at each cycle, scan the
// priority list front to back and start every ready instruction for which a
// functional unit of its class is free. An instruction is ready at cycle t
// when every distance-0 predecessor u satisfies finish(u) + latency ≤ t.
//
// This single routine serves three roles in the paper:
//   - step 3 of the Rank Algorithm (greedy scheduling of the rank-ordered
//     list, §2.1),
//   - the baseline prioritized-list schedulers (§6, Warren/Gibbons-Muchnick
//     style, with different priority orders),
//   - the Ordering Constraint oracle of Definition 2.3 ("S is obtainable as
//     a greedy schedule from priority list L").
//
// The priority list must contain each node exactly once. An error is
// returned if the list is malformed or the graph's loop-independent subgraph
// is cyclic.
func ListSchedule(g *graph.Graph, m *machine.Machine, priority []graph.NodeID) (*Schedule, error) {
	ls, err := NewListScheduler(g, m)
	if err != nil {
		return nil, err
	}
	return ls.Run(priority)
}

// ListScheduleRelease is ListSchedule with per-node release times (see
// ListScheduler.SetRelease); rel may be nil. It serves the naive reference
// pipelines of the differential tests — hot paths hold a ListScheduler.
func ListScheduleRelease(g *graph.Graph, m *machine.Machine, priority []graph.NodeID, rel []int) (*Schedule, error) {
	ls, err := NewListScheduler(g, m)
	if err != nil {
		return nil, err
	}
	ls.SetRelease(rel)
	return ls.Run(priority)
}

// ListScheduler runs the greedy list scheduler repeatedly over one graph
// view and machine, reusing the readiness scratch between runs. It is the
// allocation-free core behind ListSchedule; the Rank Algorithm context
// (internal/rank) holds one per graph so the hundreds of reschedules of a
// Delay_Idle_Slots pass share the same buffers. Reset rebinds it to a new
// view without allocating once the scratch has grown to size.
type ListScheduler struct {
	// Flat adjacency and attributes, borrowed from the bound AdjView.
	n      int
	off    []int32
	dst    []graph.NodeID
	lat    []int32
	exec   []int32
	class  []int32
	labels []string

	// g is the graph behind the view when the caller has one (nil for
	// induced subgraph views); it is stored on produced Schedules so that
	// graph-dependent methods (Validate, Subpermutation) keep working.
	g *graph.Graph
	m *machine.Machine

	// indeg is the distance-0 in-degree template copied into remaining at
	// the start of every run.
	indeg     []int
	earliest  []int
	remaining []int
	unitFree  []int
	seen      []bool
	// rel, when non-nil, holds per-node release times seeding earliest at
	// the start of every run (see SetRelease).
	rel []int
	// ubase/ucount cache unitBase per class present in the view.
	ubase  []int
	ucount []int
}

// NewListScheduler validates that g's loop-independent subgraph is acyclic
// and returns a scheduler whose Run can be called any number of times.
func NewListScheduler(g *graph.Graph, m *machine.Machine) (*ListScheduler, error) {
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("sched: loop-independent subgraph is cyclic")
	}
	return NewListSchedulerAcyclic(g, m), nil
}

// NewListSchedulerAcyclic is NewListScheduler for callers that have already
// established that g's loop-independent subgraph is acyclic (typically by
// computing a topological order), skipping the redundant validation pass.
// Run on a cyclic graph never terminates; use NewListScheduler when in doubt.
func NewListSchedulerAcyclic(g *graph.Graph, m *machine.Machine) *ListScheduler {
	ls := &ListScheduler{}
	ls.Reset(graph.NewCSR(g).View(), m, g)
	return ls
}

// Reset rebinds the scheduler to a new (acyclic) adjacency view. g may be
// nil when the view is an induced subgraph with no standalone *Graph; the
// produced Schedules then rely on the recorded exec times instead of G.
// Scratch is grown as needed and otherwise reused.
func (ls *ListScheduler) Reset(view graph.AdjView, m *machine.Machine, g *graph.Graph) {
	n := view.N
	ls.n = n
	ls.off, ls.dst, ls.lat = view.Off, view.Dst, view.Lat
	ls.exec, ls.class, ls.labels = view.Exec, view.Class, view.Labels
	ls.g, ls.m = g, m
	ls.rel = nil

	if cap(ls.indeg) < n {
		ls.indeg = make([]int, n)
		ls.earliest = make([]int, n)
		ls.remaining = make([]int, n)
		ls.seen = make([]bool, n)
	}
	ls.indeg = ls.indeg[:n]
	ls.earliest = ls.earliest[:n]
	ls.remaining = ls.remaining[:n]
	ls.seen = ls.seen[:n]
	clear(ls.indeg)
	for _, d := range ls.dst[:view.Off[n]] {
		ls.indeg[d]++
	}

	if tot := m.TotalUnits(); cap(ls.unitFree) < tot {
		ls.unitFree = make([]int, tot)
	} else {
		ls.unitFree = ls.unitFree[:tot]
	}

	maxClass := 0
	for _, c := range view.Class {
		if int(c) > maxClass {
			maxClass = int(c)
		}
	}
	if cap(ls.ubase) < maxClass+1 {
		ls.ubase = make([]int, maxClass+1)
		ls.ucount = make([]int, maxClass+1)
	}
	ls.ubase = ls.ubase[:maxClass+1]
	ls.ucount = ls.ucount[:maxClass+1]
	for c := 0; c <= maxClass; c++ {
		ls.ubase[c], ls.ucount[c] = unitBase(m, machine.UnitClass(c))
	}
}

// SetRelease installs per-node release times: node v may not start before
// rel[v], exactly as if an already-emitted predecessor's finish + latency
// landed there. The slice is retained (not copied) and read by every Run
// until the next Reset or SetRelease(nil); its length must match the bound
// view. Values ≤ 0 are no constraint. Anticipatory scheduling uses this to
// keep latencies sound across chop commits: edges from a committed prefix
// into the carried suffix leave the merge's view, so their lower bounds ride
// along as release times instead.
func (ls *ListScheduler) SetRelease(rel []int) { ls.rel = rel }

// Run greedily schedules the priority list (see ListSchedule). Only the
// returned Schedule is freshly allocated; all bookkeeping is reused.
func (ls *ListScheduler) Run(priority []graph.NodeID) (*Schedule, error) {
	n := ls.n
	if len(priority) != n {
		return nil, fmt.Errorf("sched: priority list has %d entries for %d nodes", len(priority), n)
	}
	seen := ls.seen
	clear(seen)
	for _, id := range priority {
		if id < 0 || int(id) >= n || seen[id] {
			return nil, fmt.Errorf("sched: priority list is not a permutation (node %d)", id)
		}
		seen[id] = true
	}

	s := &Schedule{G: ls.g, M: ls.m, Start: make([]int, n), Unit: make([]int, n), exec: ls.exec}
	for i := range s.Start {
		s.Start[i] = Unassigned
		s.Unit[i] = Unassigned
	}
	// earliest[v]: max over scheduled preds of finish+latency, floored at
	// the release time when one is set; -1 per unsatisfied pred is tracked
	// via remaining count.
	earliest := ls.earliest
	if ls.rel != nil {
		if len(ls.rel) != n {
			return nil, fmt.Errorf("sched: %d release times for %d nodes", len(ls.rel), n)
		}
		copy(earliest, ls.rel)
	} else {
		clear(earliest)
	}
	remaining := ls.remaining
	copy(remaining, ls.indeg)
	// unitFree[u]: cycle at which global unit u becomes free.
	unitFree := ls.unitFree
	clear(unitFree)

	scheduled := 0
	for t := 0; scheduled < n; t++ {
		progress := false
		for _, id := range priority {
			v := int(id)
			if s.Start[v] != Unassigned || remaining[v] > 0 || earliest[v] > t {
				continue
			}
			base, count := ls.ubase[ls.class[v]], ls.ucount[ls.class[v]]
			if count == 0 {
				return nil, fmt.Errorf("sched: node %d (%s) has class %d with no units",
					v, ls.labels[v], ls.class[v])
			}
			unit := -1
			for u := base; u < base+count; u++ {
				if unitFree[u] <= t {
					unit = u
					break
				}
			}
			if unit < 0 {
				continue
			}
			s.Start[v] = t
			s.Unit[v] = unit
			fin := t + int(ls.exec[v])
			unitFree[unit] = fin
			scheduled++
			progress = true
			for e := ls.off[v]; e < ls.off[v+1]; e++ {
				d := ls.dst[e]
				remaining[d]--
				if r := fin + int(ls.lat[e]); r > earliest[d] {
					earliest[d] = r
				}
			}
		}
		// Fast-forward over guaranteed-idle stretches to keep the loop
		// O(makespan) rather than cycle-perfect scanning: if nothing was
		// issued, jump to the next time anything can change.
		if !progress && scheduled < n {
			next := -1
			for _, id := range priority {
				v := int(id)
				if s.Start[v] != Unassigned || remaining[v] > 0 {
					continue
				}
				cand := earliest[v]
				base, count := ls.ubase[ls.class[v]], ls.ucount[ls.class[v]]
				// earliest unit availability for this class
				uf := -1
				for u := base; u < base+count; u++ {
					if uf == -1 || unitFree[u] < uf {
						uf = unitFree[u]
					}
				}
				if uf > cand {
					cand = uf
				}
				if next == -1 || cand < next {
					next = cand
				}
			}
			if next <= t {
				next = t + 1
			}
			t = next - 1 // loop increment brings it to `next`
		}
	}
	return s, nil
}

// GreedyEquals reports whether running the greedy list scheduler on the
// given priority list reproduces schedule s exactly (same start times). This
// is the Ordering Constraint test of Definition 2.3.
func GreedyEquals(s *Schedule, priority []graph.NodeID) (bool, error) {
	t, err := ListSchedule(s.G, s.M, priority)
	if err != nil {
		return false, err
	}
	for v := range s.Start {
		if s.Start[v] != t.Start[v] {
			return false, nil
		}
	}
	return true, nil
}

// SourceOrder returns the identity priority list (original program order).
func SourceOrder(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.Len())
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

package rank

import (
	"fmt"
	"sort"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// This file retains the original one-shot Rank Algorithm implementation —
// per-call topological sort, descendant closure, freshly built member lists —
// as it stood before the Ctx engine replaced it on the hot paths (only the
// occupancy bookkeeping was re-densified; see referencePackFeasible).
// It exists solely as the naive oracle for the differential property tests
// (its results must be bit-identical to Ctx.Compute/Ctx.Run on every input);
// production code must use Compute/Run or a Ctx.

// ReferenceCompute is the retained naive implementation of Compute.
func ReferenceCompute(g *graph.Graph, m *machine.Machine, d []int) ([]int, error) {
	n := g.Len()
	if len(d) != n {
		return nil, fmt.Errorf("rank: %d deadlines for %d nodes", len(d), n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = d[i]
	}

	// topoPos[v] = position of v in the topological order, used to evaluate
	// the per-ancestor longest-path DP in one forward sweep.
	topoPos := make([]int, n)
	for i, id := range order {
		topoPos[id] = i
	}

	delta := make([]int, n) // scratch: longest path v⇝u (finish(v) to start(u))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if desc[v].Empty() {
			continue
		}
		// delta(u) = max over distance-0 in-edges (p → u) with p ∈ {v} ∪
		// descendants(v) of (0 if p==v else delta(p)+exec(p)) + latency.
		// Evaluated in global topological order restricted to descendants.
		var members []graph.NodeID
		desc[v].ForEach(func(u int) { members = append(members, graph.NodeID(u)) })
		sort.Slice(members, func(a, b int) bool { return topoPos[members[a]] < topoPos[members[b]] })
		for _, u := range members {
			delta[u] = -1
		}
		for _, e := range g.Out(v) {
			if e.Distance == 0 && desc[v].Has(int(e.Dst)) && e.Latency > delta[e.Dst] {
				delta[e.Dst] = e.Latency
			}
		}
		for _, u := range members {
			du := delta[u]
			for _, e := range g.Out(u) {
				if e.Distance != 0 || !desc[v].Has(int(e.Dst)) {
					continue
				}
				if cand := du + g.Node(u).Exec + e.Latency; cand > delta[e.Dst] {
					delta[e.Dst] = cand
				}
			}
		}
		single := m.SingleUnitOnly()
		ds := make([]descendant, 0, len(members))
		for _, u := range members {
			cls := g.Node(u).Class
			if single {
				cls = 0
			}
			ds = append(ds, descendant{
				rank:  ranks[u],
				exec:  g.Node(u).Exec,
				class: cls,
				lat:   delta[u],
				pos:   topoPos[u],
			})
		}
		// Same deterministic total order as the Ctx engine (rank, then
		// release latency, then topological position).
		sort.Slice(ds, func(a, b int) bool { return compareDescendants(ds[a], ds[b]) < 0 })
		// Necessary upper bounds narrow the search range.
		hi := ranks[v]
		total := 0
		maxLat := 0
		for _, u := range ds {
			if b := u.rank - u.exec - u.lat; b < hi {
				hi = b
			}
			total += u.exec
			if u.lat > maxLat {
				maxLat = u.lat
			}
		}
		// At lo the releases leave ample slack below every deadline, so
		// infeasibility at lo means the descendants' ranks conflict on their
		// own (no completion time of v can help).
		lo := hi - 2*(total+maxLat+2)
		if !referencePackFeasible(ds, m, lo) {
			ranks[v] = lo // hopelessly infeasible; surfaces as rank < exec
			continue
		}
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			if referencePackFeasible(ds, m, mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		ranks[v] = lo
	}
	return ranks, nil
}

// referencePackFeasible is the one-shot occupancy packing test. It used to
// track occupancy in nested maps (occupied[class][t]); it now uses dense
// per-class rows indexed t − c + 1. Placement starts at c + u.lat with
// u.lat ≥ −1, so the +1 offset keeps every probed index nonnegative even
// though c (and hence every absolute time) is deeply negative at the low end
// of the binary search; earliest-fit never places past lat + sum(exec),
// which bounds the row size.
func referencePackFeasible(ds []descendant, m *machine.Machine, c int) bool {
	maxClass, total, maxLat, maxExec := 0, 0, 0, 0
	for _, u := range ds {
		if u.class > maxClass {
			maxClass = u.class
		}
		total += u.exec
		if u.lat > maxLat {
			maxLat = u.lat
		}
		if u.exec > maxExec {
			maxExec = u.exec
		}
	}
	window := total + maxLat + maxExec + 4
	occupied := make([][]int, maxClass+1)
	for _, u := range ds {
		units := m.UnitsFor(machine.UnitClass(u.class))
		if units == 0 {
			units = 1 // unschedulable classes are caught by the list scheduler
		}
		occ := occupied[u.class]
		if occ == nil {
			occ = make([]int, window)
		}
		start := u.lat + 1 // index of absolute time c + u.lat
	place:
		for {
			end := start + u.exec
			for end > len(occ) {
				occ = append(occ, 0)
			}
			for t := start; t < end; t++ {
				if occ[t] >= units {
					start = t + 1
					continue place
				}
			}
			break
		}
		if c+(start-1)+u.exec > u.rank {
			return false
		}
		for t := start; t < start+u.exec; t++ {
			occ[t]++
		}
		occupied[u.class] = occ
	}
	return true
}

// ReferenceRun is the retained naive implementation of Run: ReferenceCompute
// followed by the one-shot list builder and scheduler.
func ReferenceRun(g *graph.Graph, m *machine.Machine, d []int, tie []graph.NodeID) (*Result, error) {
	return ReferenceRunRel(g, m, d, tie, nil)
}

// ReferenceRunRel is ReferenceRun with per-node release times on the greedy
// scheduler, mirroring Ctx.SetRelease for the differential lookahead oracle.
// Ranks are computed without releases in both implementations.
func ReferenceRunRel(g *graph.Graph, m *machine.Machine, d []int, tie []graph.NodeID, rel []int) (*Result, error) {
	ranks, err := ReferenceCompute(g, m, d)
	if err != nil {
		return nil, err
	}
	if tie == nil {
		tie = sched.SourceOrder(g)
	}
	list := ListFromRanks(g, ranks, tie)
	s, err := sched.ListScheduleRelease(g, m, list, rel)
	if err != nil {
		return nil, err
	}
	feasible := true
	for v := 0; v < g.Len(); v++ {
		if ranks[v] < g.Node(graph.NodeID(v)).Exec {
			feasible = false
			break
		}
		if s.Finish(graph.NodeID(v)) > d[v] {
			feasible = false
			break
		}
	}
	return &Result{S: s, Ranks: ranks, Feasible: feasible}, nil
}

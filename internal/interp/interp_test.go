package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/core"
	"aisched/internal/deps"
	"aisched/internal/graph"
	"aisched/internal/isa"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/regren"
	"aisched/internal/workload"
)

func TestRunStraightLine(t *testing.T) {
	blocks, err := isa.Parse(`
	li r1, 6
	li r2, 7
	mul r3, r1, r2
	addi r3, r3, -2
	store r3, 16(r0)
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(blocks, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[isa.GPR(3)] != 40 {
		t.Fatalf("r3 = %d, want 40", st.Regs[isa.GPR(3)])
	}
	if st.Mem[16] != 40 {
		t.Fatalf("mem[16] = %d, want 40", st.Mem[16])
	}
}

func TestRunFigure3PartialProducts(t *testing.T) {
	// The paper's loop: y[i] = y[i-1] * x[i] over a zero-terminated
	// sequence. Set up x = {2,3,4,0} at 0x100 and y at 0x200, registers as
	// the paper's code expects (r7 = &x[0], r5 = &y[-1]... the software
	// pipelined code stores the PREVIOUS product), then run the prolog
	// manually: y[0] = x[0]; r0 = y[0].
	blocks, err := isa.Parse(`
CL.18:
	loadu  r6, 4(r7)
	storeu r0, 4(r5)
	cmpi.eq cr1, r6, 0
	mul    r0, r6, r0
	bt     cr1, CL.1
	b      CL.18
CL.1:
	store  r0, 4(r5)
`)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	// x = {2, 3, 4, 0} at 0x100; y at 0x200.
	st.Mem[0x100], st.Mem[0x104], st.Mem[0x108], st.Mem[0x10C] = 2, 3, 4, 0
	st.Regs[isa.GPR(7)] = 0x100 // pre-increment: first loadu reads 0x104
	st.Regs[isa.GPR(5)] = 0x200 // first storeu writes 0x204 = y[1]... y[0] at 0x200
	st.Regs[isa.GPR(0)] = 2     // y[0] = x[0] (prolog)
	st.Mem[0x200] = 2
	st.Regs[isa.GPR(5)] = 0x200 - 4 // so the first storeu writes y[0]
	if _, err := Run(blocks, st, 0); err != nil {
		t.Fatal(err)
	}
	// y = {2, 6, 24} then the epilog stores the final product again; the
	// zero terminator ends the loop with y[3] = last stored.
	if st.Mem[0x200] != 2 || st.Mem[0x204] != 6 || st.Mem[0x208] != 24 {
		t.Fatalf("partial products wrong: y = %d %d %d",
			st.Mem[0x200], st.Mem[0x204], st.Mem[0x208])
	}
}

func TestRunDetectsRunawayLoop(t *testing.T) {
	blocks, err := isa.Parse(`
L:
	b L
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(blocks, nil, 100); err == nil {
		t.Fatal("infinite loop not detected")
	}
}

func TestRunUnknownTarget(t *testing.T) {
	blocks, err := isa.Parse("\tb nowhere\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(blocks, nil, 0); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestDivideByZeroYieldsZero(t *testing.T) {
	blocks, err := isa.Parse(`
	li r1, 5
	li r2, 0
	div r3, r1, r2
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(blocks, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[isa.GPR(3)] != 0 {
		t.Fatalf("div by zero = %d, want 0", st.Regs[isa.GPR(3)])
	}
}

func TestCondCodes(t *testing.T) {
	cases := []struct {
		cc   isa.CondCode
		a, b int64
		want int64
	}{
		{isa.EQ, 3, 3, 1}, {isa.EQ, 3, 4, 0},
		{isa.NE, 3, 4, 1}, {isa.NE, 4, 4, 0},
		{isa.LT, 2, 3, 1}, {isa.LT, 3, 3, 0},
		{isa.LE, 3, 3, 1}, {isa.LE, 4, 3, 0},
		{isa.GT, 4, 3, 1}, {isa.GT, 3, 3, 0},
		{isa.GE, 3, 3, 1}, {isa.GE, 2, 3, 0},
	}
	for _, c := range cases {
		st := NewState()
		st.Regs[isa.GPR(1)] = c.a
		if _, err := st.exec(isa.Instr{Op: isa.CMPI, Dst: isa.CR(0), SrcA: isa.GPR(1), Imm: c.b, Cond: c.cc}); err != nil {
			t.Fatal(err)
		}
		if st.Regs[isa.CR(0)] != c.want {
			t.Fatalf("%v(%d,%d) = %d, want %d", c.cc, c.a, c.b, st.Regs[isa.CR(0)], c.want)
		}
	}
}

// observableRegs returns the general registers the ORIGINAL program defines
// — the renaming contract preserves exactly those (scratch registers the
// renamer borrows may legitimately end up with different values).
func observableRegs(blocks []isa.Block) []isa.Reg {
	seen := map[isa.Reg]bool{}
	var out []isa.Reg
	for _, b := range blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs() {
				if !d.IsCR() && !seen[d] {
					seen[d] = true
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// reorderBlocks applies a trace scheduling result's block orders to the
// original blocks, producing the code a compiler would emit.
func reorderBlocks(blocks []isa.Block, orders map[int][]graph.NodeID) []isa.Block {
	offsets := make([]int, len(blocks)+1)
	for i, b := range blocks {
		offsets[i+1] = offsets[i] + len(b.Instrs)
	}
	out := make([]isa.Block, len(blocks))
	for i, b := range blocks {
		nb := isa.Block{Label: b.Label}
		for _, id := range orders[i] {
			nb.Instrs = append(nb.Instrs, b.Instrs[int(id)-offsets[i]])
		}
		out[i] = nb
	}
	return out
}

// TestPropertySchedulingPreservesSemantics is the end-to-end safety check:
// compile a random program, run it; anticipatorily schedule the blocks, run
// the reordered program; final observable state must be identical.
func TestPropertySchedulingPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		before, err := Run(comp.Blocks, nil, 0)
		if err != nil {
			return true // e.g. generated runaway loop guard: skip instance
		}

		var seqs [][]isa.Instr
		for _, b := range comp.Blocks {
			seqs = append(seqs, b.Instrs)
		}
		g := deps.BuildTrace(seqs)
		res, err := core.Lookahead(g, machine.SingleUnit(4))
		if err != nil {
			return false
		}
		reordered := reorderBlocks(comp.Blocks, res.BlockOrders)
		after, err := Run(reordered, nil, 0)
		if err != nil {
			t.Logf("seed %d: reordered program failed: %v\n%s", seed, err, src)
			return false
		}
		if err := SameObservable(before, after, observableRegs(comp.Blocks)); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRenamingPreservesSemantics: same end-to-end check for the
// register renaming pass.
func TestPropertyRenamingPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		before, err := Run(comp.Blocks, nil, 0)
		if err != nil {
			return true
		}
		renamed := regren.RenameBlocks(comp.Blocks)
		after, err := Run(renamed, nil, 0)
		if err != nil {
			t.Logf("seed %d: renamed program failed: %v\n%s", seed, err, src)
			return false
		}
		if err := SameObservable(before, after, observableRegs(comp.Blocks)); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScheduleAndRenameCompose: both transformations together.
func TestPropertyScheduleAndRenameCompose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 3)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		before, err := Run(comp.Blocks, nil, 0)
		if err != nil {
			return true
		}
		renamed := regren.RenameBlocks(comp.Blocks)
		var seqs [][]isa.Instr
		for _, b := range renamed {
			seqs = append(seqs, b.Instrs)
		}
		g := deps.BuildTrace(seqs)
		res, err := core.Lookahead(g, machine.NewMachine("2fx+fp+br", []int{2, 1, 1}, 4))
		if err != nil {
			return false
		}
		reordered := reorderBlocks(renamed, res.BlockOrders)
		after, err := Run(reordered, nil, 0)
		if err != nil {
			return false
		}
		return SameObservable(before, after, observableRegs(comp.Blocks)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

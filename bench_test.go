// Benchmarks: one per reproduced table/figure (see DESIGN.md §4) plus the
// T6 scheduler-cost scaling study backing the paper's polynomial-time
// claims. Run with:
//
//	go test -bench=. -benchmem
package aisched

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/baseline"
	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/idle"
	"aisched/internal/interp"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/paperex"
	"aisched/internal/rank"
	"aisched/internal/regren"
	"aisched/internal/verify"
	"aisched/internal/workload"
)

// BenchmarkFigure1 (E1): Rank Algorithm + Move_Idle_Slot on the paper's BB1.
func BenchmarkFigure1(b *testing.B) {
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	d100 := rank.UniformDeadlines(f.G.Len(), 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rank.Run(f.G, m, d100, f.PaperTie)
		if err != nil {
			b.Fatal(err)
		}
		d := rank.Rebase(d100, 100-res.S.Makespan())
		if _, err := idle.MoveIdleSlot(res.S, m, d, 0, 2, f.PaperTie); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 (E2): Algorithm Lookahead on the two-block trace.
func BenchmarkFigure2(b *testing.B) {
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Lookahead(f.G, m)
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan() != 11 {
			b.Fatalf("makespan %d", res.Makespan())
		}
	}
}

// BenchmarkFigure3 (E3): §5.2.3 general-case loop scheduling of the
// partial-products loop.
func BenchmarkFigure3(b *testing.B) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := loops.ScheduleSingleBlockLoop(f.G, m)
		if err != nil {
			b.Fatal(err)
		}
		if st.II != 6 {
			b.Fatalf("II %d", st.II)
		}
	}
}

// BenchmarkFigure8 (E4): single-source/single-sink transforms on the
// counter-example loop.
func BenchmarkFigure8(b *testing.B) {
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := loops.ScheduleSingleBlockLoop(f.G, m)
		if err != nil {
			b.Fatal(err)
		}
		if st.II != 4 {
			b.Fatalf("II %d", st.II)
		}
	}
}

func benchTrace(b *testing.B, seed int64) *graph.Graph {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	g, err := workload.Trace(r, workload.DefaultTrace())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkT1Anticipatory (T1): Lookahead scheduling + window simulation of
// a random trace, per window size.
func BenchmarkT1Anticipatory(b *testing.B) {
	g := benchTrace(b, 1)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			m := machine.SingleUnit(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Lookahead(g, m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := hw.SimulateTrace(g, m, res.StaticOrder()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT1Baselines (T1): local baseline scheduling + simulation.
func BenchmarkT1Baselines(b *testing.B) {
	g := benchTrace(b, 1)
	m := machine.SingleUnit(4)
	for _, s := range baseline.All() {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				order, err := baseline.ScheduleTrace(s, g, m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := hw.SimulateTrace(g, m, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT2Ablation (T2): full Lookahead vs the Delay_Idle_Slots-less
// variant.
func BenchmarkT2Ablation(b *testing.B) {
	g := benchTrace(b, 2)
	m := machine.SingleUnit(4)
	for _, v := range []struct {
		name string
		opt  core.Options
	}{{"full", core.Options{}}, {"no-delay", core.Options{SkipDelay: true}}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LookaheadOpts(g, m, v.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT3Loop (T3): loop scheduling of random single-block loops.
func BenchmarkT3Loop(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	g, err := workload.Loop(r, workload.DefaultLoop())
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SingleUnit(8)
	b.Run("anticipatory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loops.ScheduleSingleBlockLoop(g, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loops.Pipeline(g, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic-steady-state", func(b *testing.B) {
		order := make([]graph.NodeID, g.Len())
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hw.SteadyState(g, m, order, hw.Options{Speculate: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT4Oracles (T4): the exhaustive oracles' cost on the instance
// sizes used by the optimality experiments.
func BenchmarkT4Oracles(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	g := graph.New(10)
	for i := 0; i < 10; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if r.Float64() < 0.3 {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
			}
		}
	}
	m := machine.SingleUnit(1)
	b.Run("block-makespan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := verify.OptimalMakespan(g, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT5Machines (T5): Lookahead on general machine models.
func BenchmarkT5Machines(b *testing.B) {
	for _, mc := range []struct {
		m       *machine.Machine
		classes int
	}{
		{machine.SingleUnit(4), 1},
		{machine.RS6000(4), 3},
		{machine.Superscalar(2, 4), 1}, // single-class machine: class-0 workload
	} {
		r := rand.New(rand.NewSource(5))
		cfg := workload.DefaultTrace()
		cfg.Latency = workload.Mixed
		cfg.Classes = mc.classes
		g, err := workload.Trace(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mc.m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Lookahead(g, mc.m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingRank (T6): Rank Algorithm cost vs block size — the
// polynomial-time claim of the paper's title result.
func BenchmarkScalingRank(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(n)))
			g := graph.New(n)
			for i := 0; i < n; i++ {
				g.AddUnit("n")
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n && j < i+24; j++ {
					if r.Float64() < 0.15 {
						g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
					}
				}
			}
			m := machine.SingleUnit(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rank.Makespan(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingLookahead (T6): Algorithm Lookahead cost vs trace size.
func BenchmarkScalingLookahead(b *testing.B) {
	for _, blocks := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(blocks)))
			cfg := workload.DefaultTrace()
			cfg.Blocks = blocks
			g, err := workload.Trace(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			m := machine.SingleUnit(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Lookahead(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleTraceSize (P2): the facade trace path vs trace length —
// the allocation-scaling study behind the arena core. With per-schedule
// scratch arena-carved, allocs/op should grow far slower than the ns/op
// (work) curve: the remaining allocations are the escaping results plus
// one-time pool growth, not per-iteration bookkeeping.
func BenchmarkScheduleTraceSize(b *testing.B) {
	for _, blocks := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(blocks)))
			cfg := workload.DefaultTrace()
			cfg.Blocks = blocks
			g, err := workload.Trace(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			m := machine.SingleUnit(4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ScheduleTrace(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleTraceLong (P3): the long-trace regime the speculative
// parallel path targets, at 64 and 256 blocks in two structures — "barrier"
// (every second block a serial latency-1 chain, the natural cut points
// segment speculation verifies against) and "mixed" (no barriers, mixed
// latencies, cross-block floors everywhere — the adversarial case where
// joins miss and fall back). par=auto engages speculation when GOMAXPROCS
// permits; par=off pins the sequential walk, so auto/off is the measured
// parallel speedup on a multicore host (on one CPU the auto gate keeps
// both lanes sequential). Caches are disabled on both sides so every op
// walks the full merge loop.
func BenchmarkScheduleTraceLong(b *testing.B) {
	for _, tc := range []struct {
		name         string
		blocks       int
		barrierEvery int
	}{
		{"blocks=64/barrier", 64, 2},
		{"blocks=64/mixed", 64, 0},
		{"blocks=256/barrier", 256, 2},
		{"blocks=256/mixed", 256, 0},
	} {
		for _, par := range []struct {
			name string
			v    int
		}{{"par=auto", 0}, {"par=off", -1}} {
			b.Run(tc.name+"/"+par.name, func(b *testing.B) {
				r := rand.New(rand.NewSource(int64(tc.blocks)))
				cfg := workload.DefaultLongTrace(tc.blocks)
				cfg.BarrierEvery = tc.barrierEvery
				g, err := workload.LongTrace(r, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m := machine.SingleUnit(4)
				sc := NewScheduler(SchedulerOptions{
					CacheCapacity: -1, StepCacheCapacity: -1, ParallelTrace: par.v,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sc.ScheduleTrace(g, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimulator: raw window-simulator throughput (cycles simulated per
// second matters for the experiment harness).
func BenchmarkSimulator(b *testing.B) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hw.SimulateLoop(f.G, m, f.Schedule2, 128, hw.Options{Speculate: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3bLoopTrace (T3b): the §5.1 multi-block loop algorithm.
func BenchmarkT3bLoopTrace(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	g, err := workload.LoopTrace(r, workload.DefaultLoopTrace())
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SingleUnit(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loops.ScheduleLoopTrace(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT7Global (T7): the unsafe global comparator schedule.
func BenchmarkT7Global(b *testing.B) {
	g := benchTrace(b, 7)
	m := machine.SingleUnit(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.GlobalMakespan(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Renaming (A1): the register-renaming pass on compiled blocks.
func BenchmarkA1Renaming(b *testing.B) {
	r := rand.New(rand.NewSource(41))
	src := workload.RandomProgram(r, 6)
	comp, err := minic.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regren.RenameBlocks(comp.Blocks)
	}
}

// BenchmarkA2Unroll (A2): unroll-and-schedule at factor 4.
func BenchmarkA2Unroll(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	g, err := workload.Loop(r, workload.DefaultLoop())
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SingleUnit(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loops.UnrollAndSchedule(g, m, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV1Interpreter (V1): functional interpretation throughput.
func BenchmarkV1Interpreter(b *testing.B) {
	r := rand.New(rand.NewSource(51))
	src := workload.RandomProgram(r, 6)
	comp, err := minic.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(comp.Blocks, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleTrace: the facade trace-scheduling path with tracing
// disabled — the zero-overhead baseline snapshotted in BENCH_PR1.json.
func BenchmarkScheduleTrace(b *testing.B) {
	g := benchTrace(b, 11)
	m := machine.SingleUnit(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleTrace(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateTrace: the facade window simulation of a scheduled trace
// with tracing disabled (BENCH_PR1.json baseline).
func BenchmarkSimulateTrace(b *testing.B) {
	g := benchTrace(b, 11)
	m := machine.SingleUnit(4)
	res, err := ScheduleTrace(g, m)
	if err != nil {
		b.Fatal(err)
	}
	order := res.StaticOrder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateTrace(g, m, order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleLoop: the facade §5.2 loop scheduler on the Figure 3 loop
// with tracing disabled (BENCH_PR1.json baseline).
func BenchmarkScheduleLoop(b *testing.B) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleLoop(f.G, m); err != nil {
			b.Fatal(err)
		}
	}
}

// batchBenchItems builds n trace-scheduling requests drawn from distinct base
// graphs; duplicates are independently rebuilt (fresh labels, shuffled edge
// insertion order), so the schedule cache must match them by content
// fingerprint, never pointer identity.
func batchBenchItems(tb testing.TB, n, distinct int) []BatchItem {
	tb.Helper()
	r := rand.New(rand.NewSource(77))
	m := machine.SingleUnit(4)
	bases := make([]*Graph, distinct)
	for i := range bases {
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			tb.Fatal(err)
		}
		bases[i] = g
	}
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{G: relabel(bases[i%distinct], r), M: m, Kind: BatchTrace}
	}
	return items
}

// BenchmarkScheduleBatch: amortized cost of the throughput layer on a 64-item
// trace batch at 0% and ~90% duplicate rates (fresh Scheduler per op —
// cold-cache honest), vs the serial uncached loop over the same ~90%-dup
// items. Snapshotted in BENCH_PR5.json as BatchDup0/BatchDup90/SerialDup90.
func BenchmarkScheduleBatch(b *testing.B) {
	const n = 64
	for _, v := range []struct {
		name     string
		distinct int
	}{{"dup0", n}, {"dup90", 7}} {
		items := batchBenchItems(b, n, v.distinct)
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc := NewScheduler(SchedulerOptions{})
				for _, r := range sc.ScheduleBatch(items) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	items := batchBenchItems(b, n, 7)
	b.Run("serial-dup90", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if _, err := ScheduleTrace(it.G, it.M); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTracingOverhead quantifies the cost of an attached recorder on
// the window simulator — the nil-tracer path is the one the ≤2% regression
// budget protects.
func BenchmarkTracingOverhead(b *testing.B) {
	g := benchTrace(b, 11)
	m := machine.SingleUnit(4)
	res, err := ScheduleTrace(g, m)
	if err != nil {
		b.Fatal(err)
	}
	order := res.StaticOrder()
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SimulateTrace(g, m, order); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := NewRecorder()
			if _, err := WithTracer(rec).SimulateTrace(g, m, order); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompiler: mini-C compile throughput on a generated program.
func BenchmarkCompiler(b *testing.B) {
	r := rand.New(rand.NewSource(61))
	src := workload.RandomProgram(r, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := minic.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// streamCycle builds one steady-state stream workload: the seed-11 benchsnap
// trace split into StreamBlocks, repeated `cycles` times with dependence IDs
// rebased to each cycle's fresh stream IDs, so pushes can run indefinitely
// against one scheduler without the engine ever draining.
func streamCycle(tb testing.TB, blocks int, cycles int) []StreamBlock {
	tb.Helper()
	r := rand.New(rand.NewSource(11))
	cfg := workload.DefaultTrace()
	cfg.Blocks = blocks
	g, err := workload.Trace(r, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	bs, _, err := TraceStreamBlocks(g)
	if err != nil {
		tb.Fatal(err)
	}
	var long []StreamBlock
	for c := 0; c < cycles; c++ {
		off := NodeID(c * g.Len())
		for _, b := range bs {
			nb := StreamBlock{Nodes: b.Nodes, Deps: make([]StreamDep, len(b.Deps))}
			for i, d := range b.Deps {
				nb.Deps[i] = StreamDep{Src: d.Src + off, Dst: d.Dst + off, Latency: d.Latency}
			}
			long = append(long, nb)
		}
	}
	return long
}

// BenchmarkStreamPush (P3): steady-state cost of one streaming push at k=1 —
// the amortized per-block price of the incremental pipeline. The engine
// reuses its arena rank context, compaction double buffers, and CSR scratch,
// so allocs/op is a small constant (the escaping BlockResult plus the
// merge/delay schedules), enforced by TestStreamPushAllocBudget and the
// benchsnap gate.
func BenchmarkStreamPush(b *testing.B) {
	long := streamCycle(b, 6, 64)
	m := machine.SingleUnit(4)
	warm := 2 * 6
	newWarm := func() *StreamScheduler {
		ss := NewStreamScheduler(m, StreamOptions{Lookahead: 1})
		for _, blk := range long[:warm] {
			if _, err := ss.Push(blk); err != nil {
				b.Fatal(err)
			}
		}
		return ss
	}
	ss := newWarm()
	i := warm
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(long) {
			// The precomputed rebased cycle ran out: restart with a fresh
			// warmed scheduler outside the timer.
			b.StopTimer()
			ss = newWarm()
			i = warm
			b.StartTimer()
		}
		if _, err := ss.Push(long[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkStreamFirstResult (P4): time-to-first-schedule. "stream" measures
// a cold NewStreamScheduler (k=0) plus one push — the instant the first
// block's final schedule exists — while "batch" is the whole-trace
// ScheduleTrace call a consumer would otherwise wait for. The streaming
// figure is O(first block) and flat in trace length; the batch figure grows
// with the trace, so the gap (the ISSUE acceptance asks ≥5× at 8 blocks)
// widens as traces get longer.
func BenchmarkStreamFirstResult(b *testing.B) {
	for _, blocks := range []int{8, 32} {
		r := rand.New(rand.NewSource(11))
		cfg := workload.DefaultTrace()
		cfg.Blocks = blocks
		g, err := workload.Trace(r, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bs, _, err := TraceStreamBlocks(g)
		if err != nil {
			b.Fatal(err)
		}
		m := machine.SingleUnit(4)
		b.Run(fmt.Sprintf("blocks=%d/stream", blocks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ss := NewStreamScheduler(m, StreamOptions{})
				res, err := ss.Push(bs[0])
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 1 {
					b.Fatalf("first push finalized %d blocks, want 1", len(res))
				}
			}
		})
		b.Run(fmt.Sprintf("blocks=%d/batch", blocks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ScheduleTrace(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

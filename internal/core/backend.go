package core

import (
	"context"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// HeuristicBackend adapts Algorithm Lookahead to the engine-level
// sched.Backend interface: the static order is the emitted per-block code,
// the schedule is the algorithm's predicted execution (legal per
// Definition 2.3). Zero value is ready to use; Opt tunes the run.
type HeuristicBackend struct {
	Opt Options
}

// Name implements sched.Backend.
func (HeuristicBackend) Name() string { return "heuristic" }

// ScheduleTrace implements sched.Backend. A non-background ctx without an
// explicit Opt.Budget is wrapped in a cancellation-only budget so the
// pipeline's checkpoints observe it.
func (b HeuristicBackend) ScheduleTrace(ctx context.Context, g *graph.Graph, m *machine.Machine) (*sched.BackendResult, error) {
	o := b.Opt
	if o.Budget == nil && ctx != nil && ctx != context.Background() {
		o.Budget = sbudget.New(ctx, 0, 0)
	}
	res, err := LookaheadOpts(g, m, o)
	if err != nil {
		return nil, err
	}
	return &sched.BackendResult{Order: res.StaticOrder(), S: res.S}, nil
}

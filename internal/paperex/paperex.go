// Package paperex constructs the worked examples of Sarkar & Simons
// (SPAA '96) — Figures 1, 2, 3 and 8 — as dependence graphs. The edge sets
// for Figures 1 and 2 are reconstructed from the rank values the paper
// prints (95/95/98/98/100/100 for BB1 alone; 90/91/93/95/97/98/98 and 100s
// for BB1 ∪ BB2), which the reconstructions reproduce exactly; tests in
// internal/rank verify this.
package paperex

import (
	"aisched/internal/graph"
	"aisched/internal/machine"
)

// Fig1 holds the Figure 1 basic block BB1 and its named nodes.
type Fig1 struct {
	G                *graph.Graph
	X, E, W, B, A, R graph.NodeID
	// PaperTie is the tie-break order "e, x, b, w, a, r" the paper chooses in
	// §2.1, which yields the schedule with the idle slot at time 2.
	PaperTie []graph.NodeID
}

// NewFig1 builds BB1 of Figure 1: six unit-time instructions on one
// functional unit with latency-1 edges
//
//	x→w, x→b, x→r, e→w, e→b, w→a, b→a.
//
// Under deadline 100 the ranks are rank(x)=rank(e)=95, rank(w)=rank(b)=98,
// rank(a)=rank(r)=100, exactly as printed in the paper, and the minimum
// makespan is 7 (one idle slot).
func NewFig1() *Fig1 {
	g := graph.New(6)
	f := &Fig1{G: g}
	f.X = g.AddUnit("x")
	f.E = g.AddUnit("e")
	f.W = g.AddUnit("w")
	f.B = g.AddUnit("b")
	f.A = g.AddUnit("a")
	f.R = g.AddUnit("r")
	g.MustEdge(f.X, f.W, 1, 0)
	g.MustEdge(f.X, f.B, 1, 0)
	g.MustEdge(f.X, f.R, 1, 0)
	g.MustEdge(f.E, f.W, 1, 0)
	g.MustEdge(f.E, f.B, 1, 0)
	g.MustEdge(f.W, f.A, 1, 0)
	g.MustEdge(f.B, f.A, 1, 0)
	f.PaperTie = []graph.NodeID{f.E, f.X, f.B, f.W, f.A, f.R}
	return f
}

// Fig2 holds the two-block trace of Figure 2: BB1 from Figure 1 followed by
// BB2 = {z, q, p, v, g}, with the cross-block edge w→z of latency 1.
type Fig2 struct {
	G                *graph.Graph
	X, E, W, B, A, R graph.NodeID // BB1 (block 0)
	Z, Q, P, V, Gn   graph.NodeID // BB2 (block 1)
}

// NewFig2 builds BB1 ∪ BB2 of Figure 2. BB2's internal edges are
//
//	z→q (latency 1), q→p (latency 0), q→g (latency 1), p→v (latency 1),
//
// and the cross-block edge is w→z (latency 1). Under deadline 100 the ranks
// are rank(g)=rank(v)=rank(a)=rank(r)=100, rank(p)=rank(b)=98, rank(q)=97,
// rank(z)=95, rank(w)=93, rank(e)=91, rank(x)=90 — the exact values printed
// in §2.3 — and the minimum makespan of the merged trace is 11.
func NewFig2() *Fig2 {
	g := graph.New(11)
	f := &Fig2{G: g}
	f.X = g.AddNode("x", 1, 0, 0)
	f.E = g.AddNode("e", 1, 0, 0)
	f.W = g.AddNode("w", 1, 0, 0)
	f.B = g.AddNode("b", 1, 0, 0)
	f.A = g.AddNode("a", 1, 0, 0)
	f.R = g.AddNode("r", 1, 0, 0)
	f.Z = g.AddNode("z", 1, 0, 1)
	f.Q = g.AddNode("q", 1, 0, 1)
	f.P = g.AddNode("p", 1, 0, 1)
	f.V = g.AddNode("v", 1, 0, 1)
	f.Gn = g.AddNode("g", 1, 0, 1)
	// BB1 edges (as Figure 1).
	g.MustEdge(f.X, f.W, 1, 0)
	g.MustEdge(f.X, f.B, 1, 0)
	g.MustEdge(f.X, f.R, 1, 0)
	g.MustEdge(f.E, f.W, 1, 0)
	g.MustEdge(f.E, f.B, 1, 0)
	g.MustEdge(f.W, f.A, 1, 0)
	g.MustEdge(f.B, f.A, 1, 0)
	// BB2 edges.
	g.MustEdge(f.Z, f.Q, 1, 0)
	g.MustEdge(f.Q, f.P, 0, 0)
	g.MustEdge(f.Q, f.Gn, 1, 0)
	g.MustEdge(f.P, f.V, 1, 0)
	// Cross-block edge.
	g.MustEdge(f.W, f.Z, 1, 0)
	return f
}

// Fig3 holds the partial-products loop of Figure 3: the body of
//
//	for (i=1; x[i]!=0; i++) y[i] = y[i-1] * x[i];
//
// after software pipelining, as five RS/6000-style instructions.
type Fig3 struct {
	G                 *graph.Graph
	L4, ST, C4, M, BT graph.NodeID
	Schedule1         []graph.NodeID // L4 ST C4 M BT — block-optimal, 7-cycle steady state
	Schedule2         []graph.NodeID // L4 ST M C4 BT — 6-cycle steady state
	LoadLat, MulLat   int
	CmpLat            int
}

// NewFig3 builds the Figure 3 loop body. Unit execution times; LOAD and
// COMPARE have latency 1 and MULTIPLY latency 4 (the paper's assumed
// latencies). Edges:
//
//	loop-independent: L4→C4 <1,0>, L4→M <1,0>, C4→BT <1,0>, and control
//	dependences ST→BT, M→BT with <0,0> (all instructions precede the branch
//	in the static schedule);
//	loop-carried: M→ST <4,1> (the store writes the previous iteration's
//	product), M→M <4,1> (product accumulates), L4→L4 <0,1> and ST→ST <0,1>
//	(address updates), BT→L4/ST/C4/M/BT <0,1> (control: the next iteration
//	follows the branch).
//
// When classes matter (multi-unit machines) L4/ST/C4 are fixed-point, M is
// the float/multiply class, BT the branch class.
func NewFig3() *Fig3 {
	g := graph.New(5)
	f := &Fig3{G: g, LoadLat: 1, MulLat: 4, CmpLat: 1}
	f.L4 = g.AddNode("L4", 1, int(machine.ClassFixed), 0)
	f.ST = g.AddNode("ST", 1, int(machine.ClassFixed), 0)
	f.C4 = g.AddNode("C4", 1, int(machine.ClassFixed), 0)
	f.M = g.AddNode("M", 1, int(machine.ClassFloat), 0)
	f.BT = g.AddNode("BT", 1, int(machine.ClassBranch), 0)
	// Loop-independent data dependences.
	g.MustEdge(f.L4, f.C4, f.LoadLat, 0)
	g.MustEdge(f.L4, f.M, f.LoadLat, 0)
	g.MustEdge(f.C4, f.BT, f.CmpLat, 0)
	// Control dependences: every instruction precedes BT in the emitted code.
	g.MustEdge(f.ST, f.BT, 0, 0)
	g.MustEdge(f.M, f.BT, 0, 0)
	g.MustEdge(f.L4, f.BT, 0, 0)
	// Loop-carried dependences.
	g.MustEdge(f.M, f.ST, f.MulLat, 1)
	g.MustEdge(f.M, f.M, f.MulLat, 1)
	g.MustEdge(f.L4, f.L4, 0, 1)
	g.MustEdge(f.ST, f.ST, 0, 1)
	g.MustEdge(f.BT, f.L4, 0, 1)
	g.MustEdge(f.BT, f.ST, 0, 1)
	g.MustEdge(f.BT, f.C4, 0, 1)
	g.MustEdge(f.BT, f.M, 0, 1)
	g.MustEdge(f.BT, f.BT, 0, 1)
	f.Schedule1 = []graph.NodeID{f.L4, f.ST, f.C4, f.M, f.BT}
	f.Schedule2 = []graph.NodeID{f.L4, f.ST, f.M, f.C4, f.BT}
	return f
}

// Fig8 holds the three-node counter-example loop of Figure 8: nodes 1, 2, 3
// with loop-independent edges 1→3 <1,0> and 2→3 <1,0> (completely symmetric
// in nodes 1 and 2), plus a loop-carried edge 3→1 <1,1> (the asymmetry the
// single-source transform cannot see). Schedule S1 = (1 2 3)ⁿ completes in
// 5n−1 cycles; S2 = (2 1 3)ⁿ completes in 4n cycles, because putting node 2
// first lets node 1 absorb the loop-carried latency.
type Fig8 struct {
	G          *graph.Graph
	N1, N2, N3 graph.NodeID
	S1, S2     []graph.NodeID
}

// NewFig8 builds the Figure 8 loop.
func NewFig8() *Fig8 {
	g := graph.New(3)
	f := &Fig8{G: g}
	f.N1 = g.AddUnit("1")
	f.N2 = g.AddUnit("2")
	f.N3 = g.AddUnit("3")
	g.MustEdge(f.N1, f.N3, 1, 0)
	g.MustEdge(f.N2, f.N3, 1, 0)
	g.MustEdge(f.N3, f.N1, 1, 1)
	// Control: node 3 (the branch) is followed by the next iteration.
	g.MustEdge(f.N3, f.N2, 0, 1)
	g.MustEdge(f.N3, f.N3, 0, 1)
	f.S1 = []graph.NodeID{f.N1, f.N2, f.N3}
	f.S2 = []graph.NodeID{f.N2, f.N1, f.N3}
	return f
}

package obs

import (
	"encoding/json"
	"sync"
)

// Recorder is the standard Tracer: it collects every event in memory and
// derives the metrics registry, the Chrome trace export, and the text
// timeline from the recorded stream. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Events returns a copy of the recorded event stream in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Stats is the metrics registry snapshot: counters and histograms derived
// from one recorded event stream. All fields marshal to stable JSON names —
// cmd/aisched -stats prints exactly this structure.
type Stats struct {
	// Completion is the completion cycle reported by the last simulator run
	// (0 when no simulation was recorded).
	Completion int `json:"completion_cycles"`
	// Issues counts dynamic issue events, including re-issues after
	// rollback.
	Issues int `json:"issues"`
	// Instructions counts distinct dynamic instructions issued (stream
	// positions); Issues − Instructions is the re-issue count.
	Instructions int `json:"instructions"`
	// Reissues counts issue events for a stream position that had already
	// issued before (squashed by a rollback and issued again).
	Reissues int `json:"reissues"`
	// StallCycles is the number of issue-phase cycles in which nothing
	// issued. It always equals the sum over StallByReason.
	StallCycles int `json:"stall_cycles"`
	// StallByReason breaks StallCycles down by attributed reason.
	StallByReason map[string]int `json:"stall_by_reason"`
	// WindowOccupancy[i] is the number of cycles the window held exactly i
	// not-yet-issued instructions (length: max observed occupancy + 1).
	WindowOccupancy []int `json:"window_occupancy_cycles"`
	// SameBlockFills / CrossBlockFills count issues that overtook the window
	// head (filled an idle slot the head left behind) from the same block
	// and iteration vs. across a block or iteration boundary. Cross-block
	// fills are the paper's headline anticipatory effect.
	SameBlockFills  int `json:"idle_fills_same_block"`
	CrossBlockFills int `json:"idle_fills_cross_block"`
	// Rollbacks counts injected branch mispredictions; Squashed the total
	// instructions rolled back.
	Rollbacks int `json:"rollbacks"`
	Squashed  int `json:"squashed"`
	// Scheduler-pass counters.
	DeadlineTightenings int `json:"deadline_tightenings"`
	SlotMoves           int `json:"slot_moves"`
	SlotsEliminated     int `json:"slots_eliminated"`
	MergeLoosenings     int `json:"merge_loosenings"`
	Merges              int `json:"merges"`
	Chops               int `json:"chops"`
	CommittedPrefix     int `json:"committed_prefix_total"`
	MaxCarriedSuffix    int `json:"max_carried_suffix"`
	IICandidates        int `json:"ii_candidates"`
	BestII              int `json:"best_ii"`
	// Schedule-cache counters (internal/memo): lookups that returned a
	// memoized schedule, lookups that computed one, LRU evictions, and
	// concurrent lookups coalesced onto an in-flight computation.
	CacheHits      int `json:"cache_hits"`
	CacheMisses    int `json:"cache_misses"`
	CacheEvictions int `json:"cache_evictions"`
	CacheCoalesced int `json:"cache_coalesced"`
	// Robustness counters: requests abandoned by context cancellation,
	// budget-exhausted requests served by the baseline fallback, and faults
	// injected by internal/faultinject (tests only).
	Cancellations  int `json:"cancellations"`
	Degradations   int `json:"degradations"`
	FaultsInjected int `json:"faults_injected"`
	// Passes counts KindPassStart events per pass name.
	Passes map[string]int `json:"passes"`
}

// JSON renders the snapshot as indented JSON.
func (s Stats) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Stats derives the metrics snapshot from the recorded events.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	events := r.events
	defer r.mu.Unlock()

	s := Stats{
		StallByReason: map[string]int{},
		Passes:        map[string]int{},
	}
	issuedPos := map[int]bool{}
	// Window occupancy integrates KindWindow step changes over cycles; the
	// final segment extends to the last issue-phase cycle observed.
	type winSeg struct{ cycle, occ int }
	var segs []winSeg
	lastCycle := 0
	for _, e := range events {
		if (e.Kind == KindIssue || e.Kind == KindStall || e.Kind == KindWindow) && e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		switch e.Kind {
		case KindPassStart:
			s.Passes[e.Pass]++
		case KindPassEnd:
			if e.Pass == PassSimulate {
				s.Completion = e.N
			}
		case KindIssue:
			s.Issues++
			if issuedPos[e.Pos] {
				s.Reissues++
			} else {
				issuedPos[e.Pos] = true
				s.Instructions++
			}
			if e.Fill {
				if e.Cross {
					s.CrossBlockFills++
				} else {
					s.SameBlockFills++
				}
			}
		case KindStall:
			s.StallCycles++
			s.StallByReason[e.Reason.String()]++
		case KindRollback:
			s.Rollbacks++
			s.Squashed += e.N
		case KindWindow:
			segs = append(segs, winSeg{e.Cycle, e.N})
		case KindDeadlineTighten:
			s.DeadlineTightenings++
		case KindSlotMove:
			s.SlotMoves++
			if e.To < 0 {
				s.SlotsEliminated++
			}
		case KindMergeLoosen:
			s.MergeLoosenings++
		case KindMerge:
			s.Merges++
		case KindChop:
			s.Chops++
			s.CommittedPrefix += e.From
			if e.To > s.MaxCarriedSuffix {
				s.MaxCarriedSuffix = e.To
			}
		case KindIICandidate:
			s.IICandidates++
			if s.BestII == 0 || e.N < s.BestII {
				s.BestII = e.N
			}
		case KindCacheHit:
			s.CacheHits++
		case KindCacheMiss:
			s.CacheMisses++
		case KindCacheEvict:
			s.CacheEvictions++
		case KindCacheCoalesce:
			s.CacheCoalesced++
		case KindCancel:
			s.Cancellations++
		case KindDegrade:
			s.Degradations++
		case KindFault:
			s.FaultsInjected++
		}
	}
	for i, seg := range segs {
		end := lastCycle + 1
		if i+1 < len(segs) {
			end = segs[i+1].cycle
		}
		if end <= seg.cycle {
			continue
		}
		for len(s.WindowOccupancy) <= seg.occ {
			s.WindowOccupancy = append(s.WindowOccupancy, 0)
		}
		s.WindowOccupancy[seg.occ] += end - seg.cycle
	}
	return s
}

package baseline

import (
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/rank"
)

// GlobalTrace is the unsafe global comparator the paper positions
// anticipatory scheduling against (§6, "Beyond basic blocks"): it schedules
// the whole trace as if it were one giant basic block, freely moving
// instructions across block boundaries (trace scheduling without the
// bookkeeping). Its completion time is a lower-bound-style target — what a
// fully global scheduler could reach if safety, rollback and
// serviceability were free — so the interesting measurement is how much of
// the (global − local) gap anticipatory scheduling closes while never
// moving an instruction across a block boundary.
//
// The emitted "order" intentionally ignores block structure; simulating it
// as a static stream is only meaningful with the window large enough to
// realize the motion, so experiment T7 reports its unwindowed greedy
// makespan as the target line rather than a windowed simulation.
type GlobalTrace struct{}

// Name implements Scheduler.
func (GlobalTrace) Name() string { return "global-unsafe" }

// Order implements Scheduler: rank_alg over the entire graph, block
// boundaries ignored.
func (GlobalTrace) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	s, err := rank.Makespan(g, m)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// GlobalMakespan returns the greedy makespan of the global schedule — the
// target line for T7.
func GlobalMakespan(g *graph.Graph, m *machine.Machine) (int, error) {
	s, err := rank.Makespan(g, m)
	if err != nil {
		return 0, err
	}
	return s.Makespan(), nil
}

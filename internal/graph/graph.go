// Package graph implements the dependence graphs used by all schedulers in
// this repository. Nodes are instructions; directed edges carry a
// <latency, distance> label as in Sarkar & Simons (SPAA '96, §5): an edge
// (x, y) with latency ℓ means y cannot start until ℓ cycles after x
// completes, and distance d > 0 marks a loop-carried dependence from
// iteration k to iteration k+d. Distance 0 edges are loop-independent.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Graph. IDs are dense indices 0..N-1.
type NodeID int

// None is the sentinel for "no node".
const None NodeID = -1

// Edge is a dependence from Src to Dst labeled with <Latency, Distance>.
type Edge struct {
	Src      NodeID
	Dst      NodeID
	Latency  int // cycles that must elapse between finish(Src) and start(Dst)
	Distance int // iteration distance; 0 = loop-independent
}

// Node carries scheduling-relevant attributes of one instruction.
type Node struct {
	ID    NodeID
	Label string // human-readable name (e.g. mnemonic), used in traces and DOT
	Exec  int    // execution time in cycles (≥ 1)
	Class int    // functional-unit class the node must run on
	Block int    // index of the basic block this node belongs to (trace position)
}

// Graph is a dependence graph. The zero value is an empty graph ready to use.
type Graph struct {
	nodes []Node
	out   [][]Edge // outgoing edges per node (includes loop-carried)
	in    [][]Edge // incoming edges per node (includes loop-carried)
}

// New returns an empty graph with capacity for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		out:   make([][]Edge, 0, n),
		in:    make([][]Edge, 0, n),
	}
}

// AddNode appends a node with the given attributes and returns its ID.
// Exec times < 1 are clamped to 1.
func (g *Graph) AddNode(label string, exec, class, block int) NodeID {
	if exec < 1 {
		exec = 1
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label, Exec: exec, Class: class, Block: block})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddUnit appends a unit-execution-time node on class 0 in block 0.
func (g *Graph) AddUnit(label string) NodeID { return g.AddNode(label, 1, 0, 0) }

// AddEdge inserts a dependence edge. Self edges are only meaningful when
// distance > 0 (loop-carried self dependence); a loop-independent self edge
// is rejected. Duplicate edges are kept only if they differ in label; when a
// parallel edge with the same distance exists, the larger latency wins.
func (g *Graph) AddEdge(src, dst NodeID, latency, distance int) error {
	if !g.valid(src) || !g.valid(dst) {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node", src, dst)
	}
	if latency < 0 {
		return fmt.Errorf("graph: edge (%d,%d) has negative latency %d", src, dst, latency)
	}
	if distance < 0 {
		return fmt.Errorf("graph: edge (%d,%d) has negative distance %d", src, dst, distance)
	}
	if src == dst && distance == 0 {
		return fmt.Errorf("graph: loop-independent self edge on node %d", src)
	}
	for i, e := range g.out[src] {
		if e.Dst == dst && e.Distance == distance {
			if latency > e.Latency {
				g.out[src][i].Latency = latency
				g.updateIn(src, dst, distance, latency)
			}
			return nil
		}
	}
	e := Edge{Src: src, Dst: dst, Latency: latency, Distance: distance}
	g.out[src] = append(g.out[src], e)
	g.in[dst] = append(g.in[dst], e)
	return nil
}

// MustEdge is AddEdge that panics on error; for statically-known-good graphs
// in tests and figure constructions.
func (g *Graph) MustEdge(src, dst NodeID, latency, distance int) {
	if err := g.AddEdge(src, dst, latency, distance); err != nil {
		panic(err)
	}
}

func (g *Graph) updateIn(src, dst NodeID, distance, latency int) {
	for i, e := range g.in[dst] {
		if e.Src == src && e.Distance == distance {
			g.in[dst][i].Latency = latency
			return
		}
	}
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// SetBlock reassigns the block index of a node.
func (g *Graph) SetBlock(id NodeID, block int) { g.nodes[id].Block = block }

// SetExec reassigns the execution time of a node (clamped to ≥ 1).
func (g *Graph) SetExec(id NodeID, exec int) {
	if exec < 1 {
		exec = 1
	}
	g.nodes[id].Exec = exec
}

// SetClass reassigns the functional-unit class of a node.
func (g *Graph) SetClass(id NodeID, class int) { g.nodes[id].Class = class }

// Out returns the outgoing edges of id (shared slice; callers must not mutate).
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of id (shared slice; callers must not mutate).
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// NumEdges reports the total number of edges (including loop-carried).
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Edges returns all edges in deterministic (src, dst, distance) order.
func (g *Graph) Edges() []Edge {
	all := make([]Edge, 0, g.NumEdges())
	for _, es := range g.out {
		all = append(all, es...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		if all[i].Dst != all[j].Dst {
			return all[i].Dst < all[j].Dst
		}
		return all[i].Distance < all[j].Distance
	})
	return all
}

// LoopIndependent returns the subgraph G_li containing all nodes but only the
// distance-0 edges (the paper's G_li, §5.2). Node attributes are preserved;
// node IDs are identical to the original graph's.
func (g *Graph) LoopIndependent() *Graph {
	h := New(g.Len())
	for _, n := range g.nodes {
		h.AddNode(n.Label, n.Exec, n.Class, n.Block)
	}
	// Reserve exact adjacency capacity so each nonempty list costs one
	// allocation instead of a doubling sequence.
	for v, es := range g.out {
		cnt := 0
		for _, e := range es {
			if e.Distance == 0 {
				cnt++
			}
		}
		if cnt > 0 {
			h.out[v] = make([]Edge, 0, cnt)
		}
	}
	for v, es := range g.in {
		cnt := 0
		for _, e := range es {
			if e.Distance == 0 {
				cnt++
			}
		}
		if cnt > 0 {
			h.in[v] = make([]Edge, 0, cnt)
		}
	}
	for _, es := range g.out {
		for _, e := range es {
			if e.Distance == 0 {
				h.MustEdge(e.Src, e.Dst, e.Latency, 0)
			}
		}
	}
	return h
}

// HasLoopCarried reports whether any edge has distance > 0.
func (g *Graph) HasLoopCarried() bool {
	for _, es := range g.out {
		for _, e := range es {
			if e.Distance > 0 {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.Len())
	h.nodes = append(h.nodes[:0], g.nodes...)
	h.out = make([][]Edge, len(g.out))
	h.in = make([][]Edge, len(g.in))
	for i := range g.out {
		h.out[i] = append([]Edge(nil), g.out[i]...)
		h.in[i] = append([]Edge(nil), g.in[i]...)
	}
	return h
}

// Induced returns the subgraph induced by keep (distance-0 edges only, since
// an induced subgraph is used for acyclic scheduling), along with the mapping
// from new IDs to original IDs. Nodes appear in ascending original-ID order.
func (g *Graph) Induced(keep map[NodeID]bool) (*Graph, []NodeID) {
	ids := make([]NodeID, 0, len(keep))
	for id := range keep {
		if keep[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[NodeID]NodeID, len(ids))
	h := New(len(ids))
	for _, id := range ids {
		n := g.nodes[id]
		remap[id] = h.AddNode(n.Label, n.Exec, n.Class, n.Block)
	}
	for _, id := range ids {
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			if nd, ok := remap[e.Dst]; ok {
				h.MustEdge(remap[id], nd, e.Latency, 0)
			}
		}
	}
	return h, ids
}

// TopoOrder returns a topological order over the distance-0 edges, or an
// error if the loop-independent subgraph has a cycle. Ties are broken by
// node ID so the order is deterministic.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	n := g.Len()
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		for _, e := range g.out[id] {
			if e.Distance == 0 {
				indeg[e.Dst]++
			}
		}
	}
	// Min-heap behaviour keeps the order deterministic: the pending frontier
	// is held in ascending order past head, so the head is always the
	// smallest ready node (same order a per-iteration sort would produce,
	// without its per-iteration closure allocations).
	frontier := make([]NodeID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, NodeID(id))
		}
	}
	order := make([]NodeID, 0, n)
	head := 0
	for head < len(frontier) {
		id := frontier[head]
		head++
		order = append(order, id)
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				dst := e.Dst
				i := head + sort.Search(len(frontier)-head, func(k int) bool { return frontier[head+k] > dst })
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = dst
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: loop-independent subgraph has a cycle (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// IsAcyclic reports whether the loop-independent subgraph is a DAG.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Descendants returns, for every node, the bitset of nodes reachable through
// distance-0 edges (excluding the node itself). O(V·E/64) via bitset union in
// reverse topological order.
func (g *Graph) Descendants() ([]Bitset, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	return g.DescendantsFrom(order), nil
}

// DescendantsFrom is Descendants for callers that already hold the graph's
// topological order (e.g. a rank context), skipping the redundant sort.
func (g *Graph) DescendantsFrom(order []NodeID) []Bitset {
	desc := newBitsetRows(g.Len())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			desc[id].Set(int(e.Dst))
			desc[id].UnionWith(desc[e.Dst])
		}
	}
	return desc
}

// newBitsetRows returns n zeroed n-bit bitsets carved out of one backing
// array, so building a transitive closure costs two allocations instead of
// n+1.
func newBitsetRows(n int) []Bitset {
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	rows := make([]Bitset, n)
	for i := range rows {
		rows[i] = Bitset(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return rows
}

// Ancestors returns the transpose of Descendants.
func (g *Graph) Ancestors() ([]Bitset, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	anc := newBitsetRows(g.Len())
	for _, id := range order {
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			anc[e.Dst].Set(int(id))
			anc[e.Dst].UnionWith(anc[id])
		}
	}
	return anc, nil
}

// Sources returns the nodes with no incoming distance-0 edges, in ID order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for id := 0; id < g.Len(); id++ {
		src := true
		for _, e := range g.in[id] {
			if e.Distance == 0 {
				src = false
				break
			}
		}
		if src {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Sinks returns the nodes with no outgoing distance-0 edges, in ID order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for id := 0; id < g.Len(); id++ {
		sink := true
		for _, e := range g.out[id] {
			if e.Distance == 0 {
				sink = false
				break
			}
		}
		if sink {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CriticalPathLengths returns, for each node, the longest finish-to-end path
// measured in cycles (exec times plus latencies) over distance-0 edges: the
// classic list-scheduling priority. The value for a sink is its exec time.
func (g *Graph) CriticalPathLengths() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	cp := make([]int, g.Len())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			if v := e.Latency + cp[e.Dst]; v > best {
				best = v
			}
		}
		cp[id] = best + g.nodes[id].Exec
	}
	return cp, nil
}

// EarliestStarts returns, for each node, the earliest feasible start time
// ignoring resource constraints (ASAP over distance-0 edges).
func (g *Graph) EarliestStarts() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	est := make([]int, g.Len())
	for _, id := range order {
		for _, e := range g.out[id] {
			if e.Distance != 0 {
				continue
			}
			if v := est[id] + g.nodes[id].Exec + e.Latency; v > est[e.Dst] {
				est[e.Dst] = v
			}
		}
	}
	return est, nil
}

// DOT renders the graph in Graphviz format (loop-carried edges dashed).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, fmt.Sprintf("%s (e=%d)", n.Label, n.Exec))
	}
	for _, e := range g.Edges() {
		style := ""
		if e.Distance > 0 {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"<%d,%d>\"%s];\n", e.Src, e.Dst, e.Latency, e.Distance, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// String returns a compact textual form for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(%d nodes, %d edges)", g.Len(), g.NumEdges())
	return b.String()
}

package sched

import (
	"strings"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
)

// idleChain: a _ b (latency-2 edge) on one unit.
func idleChain(t *testing.T) *Schedule {
	t.Helper()
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	s, err := ListSchedule(g, machine.SingleUnit(1), SourceOrder(g))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUtilization(t *testing.T) {
	s := idleChain(t) // a _ b → 2 busy of 3
	if u := s.Utilization(); u < 0.66 || u > 0.67 {
		t.Fatalf("utilization = %f, want 2/3", u)
	}
	empty := New(graph.New(0), machine.SingleUnit(1))
	if empty.Utilization() != 0 {
		t.Fatal("empty schedule utilization must be 0")
	}
}

func TestUtilizationMultiUnit(t *testing.T) {
	g := graph.New(2)
	g.AddNode("fx", 1, int(machine.ClassFixed), 0)
	g.AddNode("fl", 1, int(machine.ClassFloat), 0)
	m := machine.RS6000(1)
	s, err := ListSchedule(g, m, SourceOrder(g))
	if err != nil {
		t.Fatal(err)
	}
	// 2 busy unit-cycles of 3 units × 1 cycle.
	if u := s.Utilization(); u < 0.66 || u > 0.67 {
		t.Fatalf("utilization = %f, want 2/3", u)
	}
}

func TestTrailingIdle(t *testing.T) {
	// a b _ _ c-on-other-unit pattern: craft directly.
	g := graph.New(3)
	g.AddNode("a", 1, int(machine.ClassFixed), 0)
	g.AddNode("b", 1, int(machine.ClassFixed), 0)
	g.AddNode("m", 1, int(machine.ClassFloat), 0)
	m := machine.RS6000(1)
	s := New(g, m)
	s.Start = []int{0, 1, 3}
	s.Unit = []int{0, 0, 1}
	// Unit 0's last finish is 2, makespan 4 → trailing idle 2.
	if ti := s.TrailingIdle(0); ti != 2 {
		t.Fatalf("TrailingIdle(0) = %d, want 2", ti)
	}
	if ti := s.TrailingIdle(1); ti != 0 {
		t.Fatalf("TrailingIdle(1) = %d, want 0", ti)
	}
}

func TestProfile(t *testing.T) {
	s := idleChain(t) // idle at 1 of makespan 3
	p := s.Profile()
	if p.Makespan != 3 || p.IdleSlots != 1 || p.LastIdle != 1 {
		t.Fatalf("profile = %+v", p)
	}
	if p.MeanIdlePosition < 0.3 || p.MeanIdlePosition > 0.34 {
		t.Fatalf("MeanIdlePosition = %f, want 1/3", p.MeanIdlePosition)
	}
	// No-idle schedule.
	g := graph.New(1)
	g.AddUnit("x")
	s2, _ := ListSchedule(g, machine.SingleUnit(1), SourceOrder(g))
	p2 := s2.Profile()
	if p2.IdleSlots != 0 || p2.LastIdle != -1 {
		t.Fatalf("no-idle profile = %+v", p2)
	}
}

func TestGanttCSV(t *testing.T) {
	s := idleChain(t)
	csv := s.GanttCSV()
	if !strings.HasPrefix(csv, "label,unit,start,finish\n") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "a,0,0,1") || !strings.Contains(csv, "b,0,2,3") {
		t.Fatalf("csv rows wrong:\n%s", csv)
	}
}

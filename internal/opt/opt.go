// Package opt is the exact scheduling backend: a branch-and-bound search
// over static instruction orders that is provably optimal for the full
// window model — multiple functional-unit classes, non-unit execution
// times, arbitrary non-negative latencies — where the paper's Rank/Lookahead
// pipeline is only a heuristic (§4.2 carries no optimality proof).
//
// The search space is the set of compiler-emittable static orders: block-
// contiguous streams whose per-block segment is a topological order of that
// block (Definition 2.1 — instructions never move across block boundaries).
// The hardware's dynamic execution is a deterministic function of the
// static order (the greedy window machine of internal/hw), so the exact
// trace optimum is the minimum simulated completion over that finite set.
// Branch-and-bound explores order prefixes with three prunes:
//
//   - prefix-simulation lower bound: simulating the prefix alone
//     lower-bounds every completion of its extensions, because appending
//     instructions to the stream can only delay earlier ones (they steal
//     units while an earlier instruction is data-stalled and hold the
//     window head back, never enable anything sooner);
//   - critical-path / class-work lower bounds over the unplaced remainder,
//     released at earliest starts propagated from the prefix simulation;
//   - dominance: memoized state signatures (identical-future prefixes are
//     explored once) and unit-symmetric choice elimination (structurally
//     interchangeable same-block nodes are expanded in canonical ID order
//     only).
//
// Everything here is exponential in the worst case and guarded by
// node-count and expansion budgets; callers treat ErrTooLarge/ErrBudget as
// "oracle unavailable", exactly like internal/verify.
package opt

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/machine"
	"aisched/internal/sched"
)

// DefaultMaxNodes matches internal/verify's oracle guard.
const DefaultMaxNodes = 16

// maskNodes is the hard ceiling: placed sets are uint32 bitmasks.
const maskNodes = 22

// never marks an instruction whose producer has not issued (mirrors hw).
const never = 1 << 30

// ErrTooLarge reports an instance over the node budget.
var ErrTooLarge = errors.New("opt: instance exceeds node budget")

// ErrBudget reports an exhausted search budget (expansions or ctx).
var ErrBudget = errors.New("opt: search budget exhausted")

// Limits caps the exact search. Zero values select defaults.
type Limits struct {
	// MaxNodes rejects larger instances up front (default DefaultMaxNodes,
	// hard-capped at 22 by the bitmask representation).
	MaxNodes int
	// MaxExpansions bounds branch-and-bound node expansions (default 1<<22).
	MaxExpansions int64
}

func (l Limits) maxNodes() int {
	n := l.MaxNodes
	if n <= 0 {
		n = DefaultMaxNodes
	}
	if n > maskNodes {
		n = maskNodes
	}
	return n
}

func (l Limits) maxExpansions() int64 {
	if l.MaxExpansions <= 0 {
		return 1 << 22
	}
	return l.MaxExpansions
}

// Stats reports search effort and prune effectiveness.
type Stats struct {
	Expansions int64 // branch-and-bound nodes simulated
	LBPrunes   int64 // subtrees cut by lower bounds
	MemoHits   int64 // subtrees cut by state-signature memoization
	SymSkips   int64 // sibling choices cut by unit-symmetry dominance
}

type pred struct {
	node graph.NodeID
	lat  int
}

type solver struct {
	ctx context.Context
	m   *machine.Machine
	w   int
	n   int

	exec    []int
	class   []int
	preds   [][]pred // distance-0 in-edges
	succs   [][]pred // distance-0 out-edges
	cp      []int    // critical path to a sink, including own exec
	topo    []graph.NodeID
	predBit []uint32 // distance-0 predecessor mask per node
	succBit []uint32 // distance-0 successor mask per node
	symLess []uint32 // unit-symmetric nodes with smaller ID, per node

	blockSeq [][]graph.NodeID // nodes per block, ascending block number
	single   bool             // m.SingleUnitOnly(): one unit serves every class
	unitBase []int            // per class: first global unit index
	unitCnt  []int            // per class: unit count

	order  []graph.NodeID
	placed uint32

	// prefix-simulation state, by stream position / by node
	issued   []int
	finishP  []int
	finishN  []int
	unitFree []int
	est      []int

	best       int
	bestOrder  []graph.NodeID
	memo       map[uint64]struct{}
	lim        Limits
	stats      Stats
	maxExpand  int64
	classWork  []int // scratch: remaining exec per class
	classMinEs []int // scratch: min est per class
}

// OptimalTrace returns the minimum achievable dynamic completion of the
// acyclic trace graph g on machine m over all compiler-emittable static
// orders, together with an order achieving it. Only distance-0 edges
// constrain a trace (like hw.SimulateTrace). The companion order satisfies
// completion == hw.SimulateTrace(g, m, order).Completion.
func OptimalTrace(ctx context.Context, g *graph.Graph, m *machine.Machine, lim Limits) (int, []graph.NodeID, Stats, error) {
	s, err := newSolver(ctx, g, m, lim)
	if err != nil {
		return 0, nil, Stats{}, err
	}
	if s.n == 0 {
		return 0, nil, s.stats, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, s.stats, err
	}
	if err := s.dfs(0); err != nil {
		return 0, nil, s.stats, err
	}
	return s.best, s.bestOrder, s.stats, nil
}

func newSolver(ctx context.Context, g *graph.Graph, m *machine.Machine, lim Limits) (*solver, error) {
	n := g.Len()
	if n > lim.maxNodes() {
		return nil, fmt.Errorf("%w: %d nodes > %d", ErrTooLarge, n, lim.maxNodes())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &solver{
		ctx: ctx, m: m, w: m.Window, n: n, lim: lim,
		maxExpand: lim.maxExpansions(),
		single:    m.SingleUnitOnly(),
		memo:      make(map[uint64]struct{}),
	}
	if s.w < 1 {
		return nil, fmt.Errorf("opt: window %d < 1", s.w)
	}
	s.exec = make([]int, n)
	s.class = make([]int, n)
	s.preds = make([][]pred, n)
	s.succs = make([][]pred, n)
	s.predBit = make([]uint32, n)
	s.succBit = make([]uint32, n)
	blockOf := make([]int, n)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		s.exec[v] = nd.Exec
		s.class[v] = nd.Class
		blockOf[v] = nd.Block
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Distance != 0 {
				continue // loop-carried: unconstrained in a single trace pass
			}
			if blockOf[e.Src] > blockOf[e.Dst] {
				return nil, fmt.Errorf("opt: edge %d->%d crosses blocks backward (%d > %d)",
					e.Src, e.Dst, blockOf[e.Src], blockOf[e.Dst])
			}
			s.succs[e.Src] = append(s.succs[e.Src], pred{e.Dst, e.Latency})
			s.preds[e.Dst] = append(s.preds[e.Dst], pred{e.Src, e.Latency})
			s.predBit[e.Dst] |= 1 << uint(e.Src)
			s.succBit[e.Src] |= 1 << uint(e.Dst)
		}
	}
	// Unit ranges per class, mirroring hw.unitRange: a single-unit machine
	// serves every class from its one unit.
	maxClass := 0
	for v := 0; v < n; v++ {
		if s.class[v] > maxClass {
			maxClass = s.class[v]
		}
	}
	s.unitBase = make([]int, maxClass+1)
	s.unitCnt = make([]int, maxClass+1)
	for c := 0; c <= maxClass; c++ {
		if s.single {
			s.unitBase[c], s.unitCnt[c] = 0, 1
			continue
		}
		base := 0
		for cls := 0; cls < c && cls < len(m.Units); cls++ {
			base += m.Units[cls]
		}
		s.unitBase[c] = base
		if c < len(m.Units) {
			s.unitCnt[c] = m.Units[c]
		}
		if s.unitCnt[c] == 0 {
			return nil, fmt.Errorf("opt: class %d has no units", c)
		}
	}
	s.classWork = make([]int, maxClass+1)
	s.classMinEs = make([]int, maxClass+1)

	// Kahn topological order over distance-0 edges (also the cycle check).
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(s.preds[v])
	}
	queue := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, graph.NodeID(v))
		}
	}
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		for _, e := range s.succs[u] {
			if indeg[e.node]--; indeg[e.node] == 0 {
				queue = append(queue, e.node)
			}
		}
	}
	if len(queue) != n {
		return nil, fmt.Errorf("opt: distance-0 subgraph is cyclic")
	}
	s.topo = queue

	// Critical path to a sink (including own exec), over distance-0 edges.
	s.cp = make([]int, n)
	for i := n - 1; i >= 0; i-- {
		v := s.topo[i]
		best := 0
		for _, e := range s.succs[v] {
			if t := e.lat + s.cp[e.node]; t > best {
				best = t
			}
		}
		s.cp[v] = s.exec[v] + best
	}

	// Blocks in ascending number; within a block nodes in ascending ID.
	blocks := map[int][]graph.NodeID{}
	var nums []int
	for v := 0; v < n; v++ {
		if _, ok := blocks[blockOf[v]]; !ok {
			nums = append(nums, blockOf[v])
		}
		blocks[blockOf[v]] = append(blocks[blockOf[v]], graph.NodeID(v))
	}
	sort.Ints(nums)
	for _, b := range nums {
		s.blockSeq = append(s.blockSeq, blocks[b])
	}

	// Unit-symmetry: u ~ v when swapping them everywhere leaves every
	// constraint unchanged — same block/class/exec, no edge between them,
	// identical distance-0 in- and out-edge multisets. Among mutually
	// symmetric unplaced candidates only the smallest ID is expanded.
	s.symLess = make([]uint32, n)
	edgeKey := func(ps []pred) string {
		ks := append([]pred(nil), ps...)
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].node != ks[j].node {
				return ks[i].node < ks[j].node
			}
			return ks[i].lat < ks[j].lat
		})
		return fmt.Sprint(ks)
	}
	for v := 0; v < n; v++ {
		for u := 0; u < v; u++ {
			if blockOf[u] != blockOf[v] || s.class[u] != s.class[v] || s.exec[u] != s.exec[v] {
				continue
			}
			if s.predBit[v]&(1<<uint(u)) != 0 || s.predBit[u]&(1<<uint(v)) != 0 {
				continue
			}
			if edgeKey(s.preds[u]) != edgeKey(s.preds[v]) || edgeKey(s.succs[u]) != edgeKey(s.succs[v]) {
				continue
			}
			s.symLess[v] |= 1 << uint(u)
		}
	}

	s.order = make([]graph.NodeID, n)
	s.issued = make([]int, n)
	s.finishP = make([]int, n)
	s.finishN = make([]int, n)
	s.unitFree = make([]int, m.TotalUnits())
	s.est = make([]int, n)
	s.bestOrder = make([]graph.NodeID, n)

	// Seed the incumbent with the natural order: blocks ascending, each
	// block's segment the global topo order restricted to it.
	topoPos := make([]int, n)
	for i, v := range s.topo {
		topoPos[v] = i
	}
	p := 0
	for _, blk := range s.blockSeq {
		seg := append([]graph.NodeID(nil), blk...)
		sort.Slice(seg, func(i, j int) bool { return topoPos[seg[i]] < topoPos[seg[j]] })
		copy(s.order[p:], seg)
		p += len(seg)
	}
	comp, err := s.simulate(n)
	if err != nil {
		return nil, err
	}
	s.best = comp
	copy(s.bestOrder, s.order[:n])
	return s, nil
}

// readyAt mirrors hw.earliestReady on the prefix stream: the earliest cycle
// v's distance-0 producers allow issue, or never while one is unissued.
func (s *solver) readyAt(v graph.NodeID) int {
	at := 0
	for _, e := range s.preds[v] {
		f := s.finishN[e.node]
		if f < 0 {
			return never
		}
		if r := f + e.lat; r > at {
			at = r
		}
	}
	return at
}

// simulate executes the first p entries of s.order as a complete stream on
// the greedy window machine, mirroring hw.simulate's trace semantics
// (in-order fetch, out-of-order issue within the W-window, position
// priority, first-free unit). It fills issued/finishP by position and
// finishN by node, and returns the completion.
func (s *solver) simulate(p int) (int, error) {
	for i := 0; i < p; i++ {
		s.issued[i] = -1
		s.finishP[i] = -1
		s.finishN[s.order[i]] = -1
	}
	for i := range s.unitFree {
		s.unitFree[i] = 0
	}
	head, done := 0, 0
	for t := 0; done < p; t++ {
		progress := false
		inWindow := head + s.w
		if inWindow > p {
			inWindow = p
		}
		for i := head; i < inWindow; i++ {
			if s.issued[i] >= 0 {
				continue
			}
			v := s.order[i]
			if s.readyAt(v) > t {
				continue
			}
			base, cnt := s.unitBase[s.class[v]], s.unitCnt[s.class[v]]
			unit := -1
			for u := base; u < base+cnt; u++ {
				if s.unitFree[u] <= t {
					unit = u
					break
				}
			}
			if unit < 0 {
				continue
			}
			s.issued[i] = t
			f := t + s.exec[v]
			s.finishP[i] = f
			s.finishN[v] = f
			s.unitFree[unit] = f
			done++
			progress = true
		}
		for head < p && s.issued[head] >= 0 {
			head++
		}
		if !progress {
			// Jump to the next cycle anything can change.
			next := -1
			inWindow = head + s.w
			if inWindow > p {
				inWindow = p
			}
			for i := head; i < inWindow; i++ {
				if s.issued[i] >= 0 {
					continue
				}
				v := s.order[i]
				cand := s.readyAt(v)
				base, cnt := s.unitBase[s.class[v]], s.unitCnt[s.class[v]]
				uf := -1
				for u := base; u < base+cnt; u++ {
					if uf == -1 || s.unitFree[u] < uf {
						uf = s.unitFree[u]
					}
				}
				if uf > cand {
					cand = uf
				}
				if next == -1 || cand < next {
					next = cand
				}
			}
			if next >= never/2 || next < 0 {
				// Impossible for topologically ordered streams: every
				// producer precedes its consumer, so something is ready.
				return 0, fmt.Errorf("opt: stream deadlock at cycle %d (prefix %d)", t, p)
			}
			if next <= t {
				next = t + 1
			}
			t = next - 1
		}
	}
	comp := 0
	for i := 0; i < p; i++ {
		if s.finishP[i] > comp {
			comp = s.finishP[i]
		}
	}
	return comp, nil
}

// lowerBound combines the prefix completion with critical-path and
// class-work bounds over the unplaced remainder. Prefix finish times are
// lower bounds on the true finish times under any extension (appending
// instructions never speeds earlier ones up), so releases propagated from
// them stay admissible.
func (s *solver) lowerBound(prefixComp int) int {
	lb := prefixComp
	for c := range s.classWork {
		s.classWork[c] = 0
		s.classMinEs[c] = never
	}
	for _, v := range s.topo {
		if s.placed&(1<<uint(v)) != 0 {
			continue
		}
		e := 0
		for _, pe := range s.preds[v] {
			var r int
			if s.placed&(1<<uint(pe.node)) != 0 {
				r = s.finishN[pe.node] + pe.lat
			} else {
				r = s.est[pe.node] + s.exec[pe.node] + pe.lat
			}
			if r > e {
				e = r
			}
		}
		s.est[v] = e
		if t := e + s.cp[v]; t > lb {
			lb = t
		}
		c := s.class[v]
		if s.single {
			c = 0
		}
		s.classWork[c] += s.exec[v]
		if e < s.classMinEs[c] {
			s.classMinEs[c] = e
		}
	}
	for c := range s.classWork {
		if s.classWork[c] == 0 {
			continue
		}
		cnt := 1
		if !s.single {
			cnt = s.unitCnt[c]
		}
		if t := s.classMinEs[c] + (s.classWork[c]+cnt-1)/cnt; t > lb {
			lb = t
		}
	}
	return lb
}

// stateKey hashes everything the future of a prefix can depend on. Two
// prefixes with equal keys have identical optimal extensions:
//
//   - the placed set and the ordered tail (last W−1 positions): suffix
//     instructions can only interact with those — a position ≥ p+W−1 back
//     enters the window only after everything before it issued;
//   - frozen positions' (issue, class, exec) by position: issue times of
//     positions ≤ p−W are final (they depend only on the stream through
//     position+W−1), and drive head advance and unit occupancy;
//   - frozen nodes' finish times by node, for nodes with successors
//     outside the frozen set: the dependence releases the future observes.
//     Tail successors count — a tail position's issue time is re-derived by
//     the next simulation from its producers' finishes, so a frozen
//     producer feeding only the tail still differentiates futures (two
//     equal-class/exec nodes swapped within the frozen region finish at
//     different cycles and release a tail consumer at different times).
//
// FNV-1a over the tuple; a 64-bit collision would be needed to prune
// wrongly, which the differential oracles would surface.
func (s *solver) stateKey(p int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(s.placed))
	frozen := p - (s.w - 1)
	if frozen < 0 {
		frozen = 0
	}
	for i := frozen; i < p; i++ {
		mix(uint64(s.order[i]) | 1<<40)
	}
	var frozenMask uint32
	for i := 0; i < frozen; i++ {
		v := s.order[i]
		frozenMask |= 1 << uint(v)
		mix(uint64(s.issued[i]) | uint64(s.class[v])<<24 | uint64(s.exec[v])<<32 | 2<<40)
	}
	for i := 0; i < frozen; i++ {
		v := s.order[i]
		if s.succBit[v]&^frozenMask != 0 {
			mix(uint64(v)<<24 | uint64(s.finishN[v]) | 3<<40)
		}
	}
	return h
}

func (s *solver) dfs(p int) error {
	s.stats.Expansions++
	if s.stats.Expansions > s.maxExpand {
		return fmt.Errorf("%w: %d expansions", ErrBudget, s.stats.Expansions)
	}
	if s.stats.Expansions&63 == 0 {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	comp, err := s.simulate(p)
	if err != nil {
		return err
	}
	if p == s.n {
		if comp < s.best {
			s.best = comp
			copy(s.bestOrder, s.order)
		}
		return nil
	}
	if s.lowerBound(comp) >= s.best {
		s.stats.LBPrunes++
		return nil
	}
	key := s.stateKey(p)
	if _, ok := s.memo[key]; ok {
		s.stats.MemoHits++
		return nil
	}
	s.memo[key] = struct{}{}

	// Current block: the first in sequence with an unplaced node
	// (block-contiguous emission).
	var blk []graph.NodeID
	for _, b := range s.blockSeq {
		rem := false
		for _, v := range b {
			if s.placed&(1<<uint(v)) == 0 {
				rem = true
				break
			}
		}
		if rem {
			blk = b
			break
		}
	}
	for _, v := range blk {
		bit := uint32(1) << uint(v)
		if s.placed&bit != 0 || s.predBit[v]&^s.placed != 0 {
			continue
		}
		if s.symLess[v]&^s.placed != 0 {
			s.stats.SymSkips++
			continue // an interchangeable smaller-ID sibling covers this
		}
		s.order[p] = v
		s.placed |= bit
		err := s.dfs(p + 1)
		s.placed &^= bit
		if err != nil {
			return err
		}
	}
	return nil
}

// Backend adapts the exact search to the engine-level sched.Backend
// interface. The returned schedule is the simulated hardware execution of
// the optimal static order — cross-checked against internal/hw at runtime
// so the solver's window model can never silently drift from the reference
// simulator.
type Backend struct {
	Lim Limits
}

// NewBackend returns an exact backend with the given limits.
func NewBackend(lim Limits) *Backend { return &Backend{Lim: lim} }

// Name implements sched.Backend.
func (*Backend) Name() string { return "exact" }

// ScheduleTrace implements sched.Backend.
func (b *Backend) ScheduleTrace(ctx context.Context, g *graph.Graph, m *machine.Machine) (*sched.BackendResult, error) {
	comp, order, _, err := OptimalTrace(ctx, g, m, b.Lim)
	if err != nil {
		return nil, err
	}
	res, err := hw.SimulateTrace(g, m, order)
	if err != nil {
		return nil, err
	}
	if res.Completion != comp {
		return nil, fmt.Errorf("opt: solver completion %d disagrees with hw simulation %d", comp, res.Completion)
	}
	s, err := executionSchedule(g, m, order, res.Issued)
	if err != nil {
		return nil, err
	}
	return &sched.BackendResult{Order: order, S: s}, nil
}

// executionSchedule rebuilds the dynamic execution as a sched.Schedule:
// start cycles come from the simulator, unit assignments replay its
// deterministic choice (positions in (cycle, position) order take the first
// free unit of their class).
func executionSchedule(g *graph.Graph, m *machine.Machine, order []graph.NodeID, issued []int) (*sched.Schedule, error) {
	s := sched.New(g, m)
	pos := make([]int, len(order))
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		if issued[pos[a]] != issued[pos[b]] {
			return issued[pos[a]] < issued[pos[b]]
		}
		return pos[a] < pos[b]
	})
	unitFree := make([]int, m.TotalUnits())
	for _, i := range pos {
		v := order[i]
		t := issued[i]
		base, cnt := 0, 1
		if !m.SingleUnitOnly() {
			c := g.Node(v).Class
			for cls := 0; cls < c && cls < len(m.Units); cls++ {
				base += m.Units[cls]
			}
			if c >= len(m.Units) || m.Units[c] == 0 {
				return nil, fmt.Errorf("opt: class %d has no units", c)
			}
			cnt = m.Units[c]
		}
		unit := -1
		for u := base; u < base+cnt; u++ {
			if unitFree[u] <= t {
				unit = u
				break
			}
		}
		if unit < 0 {
			return nil, fmt.Errorf("opt: no free unit for node %d at cycle %d", v, t)
		}
		s.Start[v] = t
		s.Unit[v] = unit
		unitFree[unit] = t + g.Node(v).Exec
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("opt: execution schedule invalid: %w", err)
	}
	return s, nil
}

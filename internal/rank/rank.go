// Package rank implements the Rank Algorithm of Palem & Simons (TOPLAS '93)
// as used by Sarkar & Simons (SPAA '96, §2.1): given per-node deadlines, it
// computes rank(v) — an upper bound on the completion time of v in any
// schedule in which v and all of v's descendants complete by their
// deadlines — and then greedily list-schedules in nondecreasing rank order.
//
// For unit execution times, 0/1 latencies, and a single functional unit the
// resulting schedule is optimal (minimum makespan, and minimum tardiness
// under deadlines). For general machines (§4.2) the same computation is a
// heuristic: ranks are derived by inserting each descendant whole into a
// per-class backward schedule at the latest time no later than its rank.
//
// The engine is built around Ctx, a reusable per-graph context that caches
// the topological order, descendant closure and packing scratch, and that
// supports incremental re-ranking after deadline changes (Update). The
// package-level Compute/Run helpers build a throwaway context; hot paths
// (Delay_Idle_Slots, Algorithm Lookahead, the loop candidate search) hold
// one Ctx per graph and reuse it across every re-rank. ReferenceCompute and
// ReferenceRun retain the original one-shot implementation as the oracle for
// differential tests.
package rank

import (
	"fmt"
	"sort"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/sched"
)

// Big is the artificially large deadline D of §2.1: big enough never to
// constrain any real schedule, small enough to leave headroom for the
// arithmetic (ranks only ever decrease from here).
const Big = 1 << 28

// UniformDeadlines returns n copies of d.
func UniformDeadlines(n, d int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Compute returns rank(v) for every node of g under deadlines d on machine m.
//
// rank(v) is the largest completion time c ≤ d(v) such that, if v completes
// at c, every descendant u of v can still complete by rank(u): each u must
// start no earlier than c + delta(v,u), where delta is the longest
// dependence path from v's completion to u's start (sum of intermediate
// execution times and latencies), and the descendants must fit one per
// functional unit of their class at any time. Feasibility of a candidate c
// is tested with an EDF-style earliest-fit placement (exact for unit
// execution times; a faithful heuristic for the general machines of §4.2),
// and c is found by binary search — feasibility is monotone in c. This
// reproduces every rank value printed in the paper's §2 examples.
//
// Compute builds a throwaway Ctx; callers ranking the same graph repeatedly
// should hold their own.
func Compute(g *graph.Graph, m *machine.Machine, d []int) ([]int, error) {
	if len(d) != g.Len() {
		return nil, fmt.Errorf("rank: %d deadlines for %d nodes", len(d), g.Len())
	}
	c, err := NewCtx(g, m)
	if err != nil {
		return nil, err
	}
	return c.Compute(d)
}

// descendant is one entry in the rank feasibility test: it must run for exec
// cycles on a unit of its class, starting no earlier than c + lat, and
// complete by rank. pos (the topological position of the node) makes the
// packing order a total order.
type descendant struct {
	rank  int
	exec  int
	class int
	lat   int
	pos   int
}

// ListFromRanks builds the rank-ordered priority list: nondecreasing rank,
// ties broken by position in tie (which must be a permutation of all nodes;
// pass sched.SourceOrder(g) for program order).
func ListFromRanks(g *graph.Graph, ranks []int, tie []graph.NodeID) []graph.NodeID {
	pos := make([]int, g.Len())
	for i, id := range tie {
		pos[id] = i
	}
	list := append([]graph.NodeID(nil), tie...)
	sort.SliceStable(list, func(a, b int) bool {
		if ranks[list[a]] != ranks[list[b]] {
			return ranks[list[a]] < ranks[list[b]]
		}
		return pos[list[a]] < pos[list[b]]
	})
	return list
}

// Result is the outcome of one rank_alg run.
type Result struct {
	S     *sched.Schedule
	Ranks []int
	// Feasible reports whether every node finished by its deadline and no
	// rank fell below the node's execution time. In the paper's restricted
	// case (UET, 0/1 latencies, single unit) greedy-by-rank meets all
	// deadlines whenever any schedule does, so Feasible == "a feasible
	// schedule exists".
	Feasible bool
}

// Run executes the full rank_alg: compute ranks under deadlines d, schedule
// greedily in nondecreasing rank order (ties broken by tie order, defaulting
// to program order), and report deadline feasibility. Builds a throwaway
// Ctx; hot paths should hold their own.
func Run(g *graph.Graph, m *machine.Machine, d []int, tie []graph.NodeID) (*Result, error) {
	if len(d) != g.Len() {
		return nil, fmt.Errorf("rank: %d deadlines for %d nodes", len(d), g.Len())
	}
	c, err := NewCtx(g, m)
	if err != nil {
		return nil, err
	}
	return c.Run(d, tie)
}

// Makespan is a convenience wrapper: minimum-makespan schedule of g on m by
// rank_alg with the artificial deadline D = Big (optimal in the restricted
// case, heuristic otherwise).
func Makespan(g *graph.Graph, m *machine.Machine) (*sched.Schedule, error) {
	return MakespanT(g, m, nil)
}

// MakespanT is Makespan with optional pass tracing: a pass-start/pass-end
// pair named obs.PassRankMakespan, the end event carrying the makespan.
func MakespanT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*sched.Schedule, error) {
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassRankMakespan,
			Block: -1, Node: graph.None, N: g.Len()})
	}
	res, err := Run(g, m, UniformDeadlines(g.Len(), Big), nil)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassRankMakespan,
			Block: -1, Node: graph.None, N: res.S.Makespan()})
	}
	return res.S, nil
}

// Rebase subtracts delta from every deadline (the paper's "decrement every
// deadline, and consequently every rank, by D − T" step), returning a new
// slice.
func Rebase(d []int, delta int) []int {
	out := make([]int, len(d))
	for i, v := range d {
		out[i] = v - delta
	}
	return out
}

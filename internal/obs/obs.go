// Package obs is the observability layer of the repository: structured
// tracing for the scheduler passes (rank, Delay_Idle_Slots, Algorithm
// Lookahead's merge/delay/chop, the §5 loop candidates) and cycle-level
// event traces for the hardware lookahead-window simulator, plus a metrics
// registry with a JSON snapshot.
//
// The design goal is zero overhead when disabled: every producer takes an
// optional Tracer and guards each emission with a nil check, so the hot
// paths (the simulator inner loop, the rank binary search) pay nothing when
// no tracer is installed. When a tracer is installed, the simulator switches
// to per-cycle fidelity: every stall cycle is attributed to exactly one
// StallReason, so the stall breakdown always sums to the total stall cycles.
//
// The concrete Recorder collects events in memory and can render them as
//
//   - a metrics Stats snapshot (counters and histograms, JSON-marshalable);
//   - Chrome trace-event JSON, loadable in Perfetto / chrome://tracing
//     (one microsecond per machine cycle);
//   - a plain-text per-unit timeline for terminals and tests.
package obs

import "aisched/internal/graph"

// Kind discriminates trace events.
type Kind uint8

const (
	// KindPassStart / KindPassEnd bracket one scheduler pass or simulator
	// run. Pass names the pass; on KindPassEnd, N is the result (makespan or
	// completion cycles).
	KindPassStart Kind = iota
	KindPassEnd
	// KindDeadlineTighten is one deadline demotion inside Move_Idle_Slot:
	// Node/Label identify the tail instruction, From→To the deadline change,
	// Cycle the idle-slot start being delayed.
	KindDeadlineTighten
	// KindSlotMove is one successful Move_Idle_Slot: Unit the functional
	// unit, From the old slot start, To the new start (−1 = eliminated).
	KindSlotMove
	// KindMergeLoosen is one deadline-loosening round of Algorithm
	// Lookahead's merge (paper Figure 7): Block the current block, N the
	// loosening round number (1-based).
	KindMergeLoosen
	// KindMerge reports a completed merge: Block the current block, From the
	// carried-suffix (old) size, To the block (new) size, N the merged
	// schedule's makespan.
	KindMerge
	// KindChop reports one chop (paper Figure 6): Block the current block,
	// From the committed-prefix size, To the carried-suffix size, N the time
	// base (chop position t_j + 1; 0 = nothing committed).
	KindChop
	// KindIICandidate is one §5 loop-schedule candidate evaluation: Pass the
	// candidate kind ("base", "source", "sink", "trace"), Node/Label the
	// candidate instruction (graph.None for base/trace), N the candidate's
	// II, From its intra-iteration makespan.
	KindIICandidate
	// KindIssue is one dynamic instruction issue: Cycle the issue cycle, Pos
	// the stream position, Node/Label/Block the instruction, Iter the loop
	// iteration, Unit the functional unit, N the execution time. Fill marks
	// an out-of-order issue (the instruction overtook the window head, i.e.
	// it filled an idle slot the head left); Cross marks a fill from a
	// different basic block or iteration than the head's — the paper's
	// headline anticipatory effect, measured directly.
	KindIssue
	// KindStall is one cycle of the issue phase in which nothing issued:
	// Cycle the stalled cycle, Reason the attributed cause.
	KindStall
	// KindRollback is one injected branch misprediction: Cycle the issue
	// cycle of the mispredicted branch, Pos its stream position, N the
	// number of squashed (rolled-back) instructions, To the cycle at which
	// issue resumes.
	KindRollback
	// KindWindow reports a change of window state: Cycle the cycle, From the
	// window head (stream position), N the occupancy (window-resident
	// instructions not yet issued).
	KindWindow
	// KindCacheHit / KindCacheMiss report one schedule-cache lookup
	// (internal/memo): a hit returns a memoized schedule, a miss computes
	// and stores one.
	KindCacheHit
	KindCacheMiss
	// KindCacheEvict is one LRU eviction from the schedule cache.
	KindCacheEvict
	// KindCacheCoalesce is one deduplicated concurrent lookup: the request
	// arrived while another goroutine was already computing the same key and
	// waited for that in-flight result instead of recomputing.
	KindCacheCoalesce
	// KindCancel is one scheduling request abandoned by context
	// cancellation: the caller's context was done before or during the
	// request, and the request returned the context's error instead of a
	// schedule.
	KindCancel
	// KindDegrade is one budget-exhausted request served by the baseline
	// greedy list schedule instead of the anticipatory scheduler; Label
	// carries the exhaustion reason.
	KindDegrade
	// KindFault is one injected fault (internal/faultinject); Label names
	// the injection site. Only tests produce these.
	KindFault
	// KindMergePin is one window-realizability repair inside a lookahead
	// merge: the first merge predicted an execution the hardware window
	// cannot reach from the static order, so the merge re-ran with old
	// deadlines pinned to carried finish times. Block the current block, N
	// the rejected makespan.
	KindMergePin
	// KindStreamPush is one block accepted by the streaming scheduler:
	// Block the block index, From the carried-suffix size before the merge,
	// To the block's node count, N the suffix makespan after the chop.
	KindStreamPush
	// KindStreamEmit is one block finalized and emitted by the streaming
	// scheduler: Block the block index, N the emit lag in blocks (pushes
	// since the block arrived).
	KindStreamEmit
)

// String returns the stable event-kind name used in exports.
func (k Kind) String() string {
	switch k {
	case KindPassStart:
		return "pass-start"
	case KindPassEnd:
		return "pass-end"
	case KindDeadlineTighten:
		return "deadline-tighten"
	case KindSlotMove:
		return "slot-move"
	case KindMergeLoosen:
		return "merge-loosen"
	case KindMerge:
		return "merge"
	case KindChop:
		return "chop"
	case KindIICandidate:
		return "ii-candidate"
	case KindIssue:
		return "issue"
	case KindStall:
		return "stall"
	case KindRollback:
		return "rollback"
	case KindWindow:
		return "window"
	case KindCacheHit:
		return "cache-hit"
	case KindCacheMiss:
		return "cache-miss"
	case KindCacheEvict:
		return "cache-evict"
	case KindCacheCoalesce:
		return "cache-coalesce"
	case KindCancel:
		return "cancel"
	case KindDegrade:
		return "degrade"
	case KindFault:
		return "fault"
	case KindMergePin:
		return "merge-pin"
	case KindStreamPush:
		return "stream-push"
	case KindStreamEmit:
		return "stream-emit"
	}
	return "unknown"
}

// StallReason attributes one stall cycle of the simulator's issue phase.
// Classification precedence (first match wins):
//
//	RollbackRefill — the stream is frozen inside a misprediction penalty;
//	UnitBusy       — a window-resident instruction is data-ready but every
//	                 unit of its class is occupied;
//	WindowFull     — nothing in the window can issue, but an instruction
//	                 beyond the window is data-ready with a free unit: the
//	                 window size W is the binding constraint;
//	HeadBlocked    — nothing can issue and the window has already issued
//	                 instructions past the head out of order: the window
//	                 cannot slide because its first instruction is blocked
//	                 (the Ordering Constraint's cost);
//	DepWait        — plain data-dependence wait: nothing in or beyond the
//	                 window is ready.
type StallReason uint8

const (
	DepWait StallReason = iota
	WindowFull
	HeadBlocked
	UnitBusy
	RollbackRefill
	// NumStallReasons is the number of stall reasons (for histogram sizing).
	NumStallReasons
)

// String returns the stable reason name used in metrics and exports.
func (r StallReason) String() string {
	switch r {
	case DepWait:
		return "dep-wait"
	case WindowFull:
		return "window-full"
	case HeadBlocked:
		return "head-blocked"
	case UnitBusy:
		return "unit-busy"
	case RollbackRefill:
		return "rollback-refill"
	}
	return "unknown"
}

// Letter returns a one-character code for text timelines.
func (r StallReason) Letter() byte {
	switch r {
	case DepWait:
		return 'D'
	case WindowFull:
		return 'W'
	case HeadBlocked:
		return 'H'
	case UnitBusy:
		return 'U'
	case RollbackRefill:
		return 'R'
	}
	return '?'
}

// Event is one structured trace event. Fields are interpreted per Kind (see
// the Kind constants); unused fields are zero. Events are plain values so
// producers can construct them on the stack without allocation.
type Event struct {
	Kind   Kind
	Pass   string       // pass name (pass events) or candidate kind (KindIICandidate)
	Block  int          // basic-block index, or -1 when not applicable
	Node   graph.NodeID // subject node, or graph.None
	Label  string       // subject node's label (kept so renderers need no graph)
	Cycle  int          // machine cycle (simulator events) or slot time (pass events)
	Pos    int          // dynamic stream position
	Iter   int          // loop iteration of the dynamic instance
	Unit   int          // functional unit
	Reason StallReason  // stall attribution (KindStall)
	From   int          // generic "before" value (old deadline, head, sizes)
	To     int          // generic "after" value (new deadline, resume cycle)
	N      int          // generic magnitude (makespan, exec, count, II, occupancy)
	Fill   bool         // KindIssue: instruction overtook the window head
	Cross  bool         // KindIssue: fill crosses a block or iteration boundary
}

// Canonical pass names used in KindPassStart/KindPassEnd events.
const (
	PassSimulate       = "hw.simulate"
	PassRankMakespan   = "rank.Makespan"
	PassDelayIdleSlots = "idle.DelayIdleSlots"
	PassLookahead      = "core.Lookahead"
	PassLoop           = "loops.ScheduleLoop"
)

// Tracer receives trace events. Implementations must be safe for use from a
// single goroutine at a time per producer; the Recorder in this package is
// additionally safe for concurrent use. A nil Tracer means tracing is
// disabled — every producer in this repository checks for nil before
// constructing an Event, so disabled tracing costs one predictable branch.
type Tracer interface {
	Emit(Event)
}

// Package rank implements the Rank Algorithm of Palem & Simons (TOPLAS '93)
// as used by Sarkar & Simons (SPAA '96, §2.1): given per-node deadlines, it
// computes rank(v) — an upper bound on the completion time of v in any
// schedule in which v and all of v's descendants complete by their
// deadlines — and then greedily list-schedules in nondecreasing rank order.
//
// For unit execution times, 0/1 latencies, and a single functional unit the
// resulting schedule is optimal (minimum makespan, and minimum tardiness
// under deadlines). For general machines (§4.2) the same computation is a
// heuristic: ranks are derived by inserting each descendant whole into a
// per-class backward schedule at the latest time no later than its rank.
package rank

import (
	"fmt"
	"sort"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/sched"
)

// Big is the artificially large deadline D of §2.1: big enough never to
// constrain any real schedule, small enough to leave headroom for the
// arithmetic (ranks only ever decrease from here).
const Big = 1 << 28

// UniformDeadlines returns n copies of d.
func UniformDeadlines(n, d int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Compute returns rank(v) for every node of g under deadlines d on machine m.
//
// rank(v) is the largest completion time c ≤ d(v) such that, if v completes
// at c, every descendant u of v can still complete by rank(u): each u must
// start no earlier than c + delta(v,u), where delta is the longest
// dependence path from v's completion to u's start (sum of intermediate
// execution times and latencies), and the descendants must fit one per
// functional unit of their class at any time. Feasibility of a candidate c
// is tested with an EDF-style earliest-fit placement (exact for unit
// execution times; a faithful heuristic for the general machines of §4.2),
// and c is found by binary search — feasibility is monotone in c. This
// reproduces every rank value printed in the paper's §2 examples.
func Compute(g *graph.Graph, m *machine.Machine, d []int) ([]int, error) {
	n := g.Len()
	if len(d) != n {
		return nil, fmt.Errorf("rank: %d deadlines for %d nodes", len(d), n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = d[i]
	}

	// topoPos[v] = position of v in the topological order, used to evaluate
	// the per-ancestor longest-path DP in one forward sweep.
	topoPos := make([]int, n)
	for i, id := range order {
		topoPos[id] = i
	}

	delta := make([]int, n) // scratch: longest path v⇝u (finish(v) to start(u))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if desc[v].Empty() {
			continue
		}
		// delta(u) = max over distance-0 in-edges (p → u) with p ∈ {v} ∪
		// descendants(v) of (0 if p==v else delta(p)+exec(p)) + latency.
		// Evaluated in global topological order restricted to descendants.
		var members []graph.NodeID
		desc[v].ForEach(func(u int) { members = append(members, graph.NodeID(u)) })
		sort.Slice(members, func(a, b int) bool { return topoPos[members[a]] < topoPos[members[b]] })
		for _, u := range members {
			delta[u] = -1
		}
		for _, e := range g.Out(v) {
			if e.Distance == 0 && desc[v].Has(int(e.Dst)) && e.Latency > delta[e.Dst] {
				delta[e.Dst] = e.Latency
			}
		}
		for _, u := range members {
			du := delta[u]
			for _, e := range g.Out(u) {
				if e.Distance != 0 || !desc[v].Has(int(e.Dst)) {
					continue
				}
				if cand := du + g.Node(u).Exec + e.Latency; cand > delta[e.Dst] {
					delta[e.Dst] = cand
				}
			}
		}
		ds := make([]descendant, 0, len(members))
		for _, u := range members {
			ds = append(ds, descendant{
				rank:  ranks[u],
				exec:  g.Node(u).Exec,
				class: machine.UnitClass(g.Node(u).Class),
				lat:   delta[u],
			})
		}
		// EDF exactness wants nondecreasing rank order; break ties by
		// release (latency) then arbitrary.
		sort.Slice(ds, func(a, b int) bool {
			if ds[a].rank != ds[b].rank {
				return ds[a].rank < ds[b].rank
			}
			return ds[a].lat > ds[b].lat
		})
		// Necessary upper bounds narrow the search range.
		hi := ranks[v]
		total := 0
		maxLat := 0
		for _, u := range ds {
			if b := u.rank - u.exec - u.lat; b < hi {
				hi = b
			}
			total += u.exec
			if u.lat > maxLat {
				maxLat = u.lat
			}
		}
		// At lo the releases leave ample slack below every deadline, so
		// infeasibility at lo means the descendants' ranks conflict on their
		// own (no completion time of v can help).
		lo := hi - 2*(total+maxLat+2)
		if !packFeasible(ds, m, lo) {
			ranks[v] = lo // hopelessly infeasible; surfaces as rank < exec
			continue
		}
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			if packFeasible(ds, m, mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		ranks[v] = lo
	}
	return ranks, nil
}

// descendant is one entry in the rank feasibility test: it must run for exec
// cycles on a unit of its class, starting no earlier than c + lat, and
// complete by rank.
type descendant struct {
	rank  int
	exec  int
	class machine.UnitClass
	lat   int
}

// packFeasible reports whether all descendants (sorted by nondecreasing
// rank) can be placed when their ancestor completes at time c: each is
// placed at the earliest free position ≥ c + lat on its class pool and must
// finish by its rank. Exact for unit execution times (EDF exchange
// argument); earliest-fit heuristic for longer instructions.
func packFeasible(ds []descendant, m *machine.Machine, c int) bool {
	// occupied[class][t] = number of units of the class busy at time t.
	occupied := map[machine.UnitClass]map[int]int{}
	for _, u := range ds {
		cls := u.class
		if m.SingleUnitOnly() {
			cls = 0
		}
		units := m.UnitsFor(cls)
		if units == 0 {
			units = 1 // unschedulable classes are caught by the list scheduler
		}
		occ := occupied[cls]
		if occ == nil {
			occ = map[int]int{}
			occupied[cls] = occ
		}
		start := c + u.lat
	place:
		for {
			for t := start; t < start+u.exec; t++ {
				if occ[t] >= units {
					start = t + 1
					continue place
				}
			}
			break
		}
		if start+u.exec > u.rank {
			return false
		}
		for t := start; t < start+u.exec; t++ {
			occ[t]++
		}
	}
	return true
}

// ListFromRanks builds the rank-ordered priority list: nondecreasing rank,
// ties broken by position in tie (which must be a permutation of all nodes;
// pass sched.SourceOrder(g) for program order).
func ListFromRanks(g *graph.Graph, ranks []int, tie []graph.NodeID) []graph.NodeID {
	pos := make([]int, g.Len())
	for i, id := range tie {
		pos[id] = i
	}
	list := append([]graph.NodeID(nil), tie...)
	sort.SliceStable(list, func(a, b int) bool {
		if ranks[list[a]] != ranks[list[b]] {
			return ranks[list[a]] < ranks[list[b]]
		}
		return pos[list[a]] < pos[list[b]]
	})
	return list
}

// Result is the outcome of one rank_alg run.
type Result struct {
	S     *sched.Schedule
	Ranks []int
	// Feasible reports whether every node finished by its deadline and no
	// rank fell below the node's execution time. In the paper's restricted
	// case (UET, 0/1 latencies, single unit) greedy-by-rank meets all
	// deadlines whenever any schedule does, so Feasible == "a feasible
	// schedule exists".
	Feasible bool
}

// Run executes the full rank_alg: compute ranks under deadlines d, schedule
// greedily in nondecreasing rank order (ties broken by tie order, defaulting
// to program order), and report deadline feasibility.
func Run(g *graph.Graph, m *machine.Machine, d []int, tie []graph.NodeID) (*Result, error) {
	ranks, err := Compute(g, m, d)
	if err != nil {
		return nil, err
	}
	if tie == nil {
		tie = sched.SourceOrder(g)
	}
	list := ListFromRanks(g, ranks, tie)
	s, err := sched.ListSchedule(g, m, list)
	if err != nil {
		return nil, err
	}
	feasible := true
	for v := 0; v < g.Len(); v++ {
		if ranks[v] < g.Node(graph.NodeID(v)).Exec {
			feasible = false
			break
		}
		if s.Finish(graph.NodeID(v)) > d[v] {
			feasible = false
			break
		}
	}
	return &Result{S: s, Ranks: ranks, Feasible: feasible}, nil
}

// Makespan is a convenience wrapper: minimum-makespan schedule of g on m by
// rank_alg with the artificial deadline D = Big (optimal in the restricted
// case, heuristic otherwise).
func Makespan(g *graph.Graph, m *machine.Machine) (*sched.Schedule, error) {
	return MakespanT(g, m, nil)
}

// MakespanT is Makespan with optional pass tracing: a pass-start/pass-end
// pair named obs.PassRankMakespan, the end event carrying the makespan.
func MakespanT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*sched.Schedule, error) {
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassRankMakespan,
			Block: -1, Node: graph.None, N: g.Len()})
	}
	res, err := Run(g, m, UniformDeadlines(g.Len(), Big), nil)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassRankMakespan,
			Block: -1, Node: graph.None, N: res.S.Makespan()})
	}
	return res.S, nil
}

// Rebase subtracts delta from every deadline (the paper's "decrement every
// deadline, and consequently every rank, by D − T" step), returning a new
// slice.
func Rebase(d []int, delta int) []int {
	out := make([]int, len(d))
	for i, v := range d {
		out[i] = v - delta
	}
	return out
}

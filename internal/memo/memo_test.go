package memo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
)

// key builds a Key pinned to shard `shard` (the shard index is the low 64
// bits of the fingerprint, masked), distinguished by serial.
func key(shard byte, serial int) Key {
	var k Key
	k.FP[0] = shard
	k.FP[8] = byte(serial)
	k.FP[9] = byte(serial >> 8)
	return k
}

func TestDoHitMiss(t *testing.T) {
	rec := obs.NewRecorder()
	c := New(Config{Tracer: rec})
	calls := 0
	compute := func() (any, error) { calls++; return "v", nil }

	v, hit, err := c.Do(key(0, 1), compute)
	if err != nil || hit || v != "v" || calls != 1 {
		t.Fatalf("first Do: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	v, hit, err = c.Do(key(0, 1), compute)
	if err != nil || !hit || v != "v" || calls != 1 {
		t.Fatalf("second Do: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	if got := c.Counters(); got.Hits != 1 || got.Misses != 1 || got.Evictions != 0 || got.Coalesced != 0 {
		t.Fatalf("counters = %+v", got)
	}
	// The tracer saw the same story as the counters.
	s := rec.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 1 || s.CacheEvictions != 0 || s.CacheCoalesced != 0 {
		t.Fatalf("obs stats = hits %d misses %d evicts %d coalesced %d",
			s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheCoalesced)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 32 over 16 shards = 2 entries per shard. Pin three keys to
	// shard 5: inserting the third must evict the least recently used.
	c := New(Config{Capacity: 32, Shards: 16})
	mk := func(i int) Key { return key(5, i) }
	get := func(i int) (any, bool) {
		v, hit, err := c.Do(mk(i), func() (any, error) { return i, nil })
		if err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
		return v, hit
	}

	get(1)
	get(2)
	// Touch 1 so 2 becomes the LRU victim.
	if _, hit := get(1); !hit {
		t.Fatal("key 1 should be resident")
	}
	get(3) // evicts 2
	if got := c.Counters().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, hit := get(1); !hit {
		t.Fatal("key 1 was evicted, want key 2")
	}
	if _, hit := get(2); hit {
		t.Fatal("key 2 should have been evicted")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(Config{})
	const waiters = 8
	var calls atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})
	k := key(3, 7)

	// Leader blocks inside compute until every follower has had a chance to
	// arrive and coalesce.
	go c.Do(k, func() (any, error) {
		calls.Add(1)
		close(entered)
		<-release
		return "shared", nil
	})
	<-entered

	// Followers must observe the in-flight computation. Poll the coalesced
	// counter so the release only happens after all of them are waiting.
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do(k, func() (any, error) {
				calls.Add(1)
				return "duplicate", nil
			})
			if err != nil || !hit || v != "shared" {
				t.Errorf("follower: v=%v hit=%v err=%v", v, hit, err)
			}
		}()
	}
	for c.Counters().Coalesced != waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	got := c.Counters()
	if got.Misses != 1 || got.Coalesced != waiters {
		t.Fatalf("counters = %+v", got)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(Config{})
	k := key(0, 9)
	boom := errors.New("boom")
	_, hit, err := c.Do(k, func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) || hit {
		t.Fatalf("failed Do: hit=%v err=%v", hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len=%d", c.Len())
	}
	v, hit, err := c.Do(k, func() (any, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("retry after error: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestErrorPropagatesToCoalescedWaiters(t *testing.T) {
	c := New(Config{})
	k := key(1, 1)
	boom := errors.New("boom")
	release := make(chan struct{})
	entered := make(chan struct{})
	go c.Do(k, func() (any, error) {
		close(entered)
		<-release
		return nil, boom
	})
	<-entered
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(k, func() (any, error) { return nil, nil })
		done <- err
	}()
	for c.Counters().Coalesced != 1 {
		runtime.Gosched()
	}
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want boom", err)
	}
}

func TestKeyForDistinguishesMachineAndKind(t *testing.T) {
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)

	m1 := machine.SingleUnit(4)
	m2 := machine.SingleUnit(5)     // different window
	m3 := machine.Superscalar(2, 4) // different unit counts
	m4 := machine.NewMachine("renamed", m1.Units, m1.Window)

	if KeyFor(g, m1, KindTrace) == KeyFor(g, m2, KindTrace) {
		t.Fatal("window must be part of the key")
	}
	if KeyFor(g, m1, KindTrace) == KeyFor(g, m3, KindTrace) {
		t.Fatal("unit counts must be part of the key")
	}
	if KeyFor(g, m1, KindTrace) != KeyFor(g, m4, KindTrace) {
		t.Fatal("machine name must NOT be part of the key")
	}
	if KeyFor(g, m1, KindTrace) == KeyFor(g, m1, KindBlock) {
		t.Fatal("kind must be part of the key")
	}
}

// TestCacheRaceHammer drives the cache from many goroutines over a small hot
// key set with a tight capacity, so hits, misses, coalesces, and evictions
// all interleave. Run under -race (make check does) to validate the locking.
func TestCacheRaceHammer(t *testing.T) {
	rec := obs.NewRecorder()
	c := New(Config{Capacity: 48, Shards: 16, Tracer: rec})
	const (
		workers = 8
		ops     = 400
		keys    = 96 // > capacity, forces steady eviction
	)
	var wg sync.WaitGroup
	var computes atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				id := r.Intn(keys)
				k := key(byte(id%251), id)
				v, _, err := c.Do(k, func() (any, error) {
					computes.Add(1)
					return fmt.Sprintf("val-%d", id), nil
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v != fmt.Sprintf("val-%d", id) {
					t.Errorf("key %d returned %v", id, v)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	got := c.Counters()
	total := got.Hits + got.Misses + got.Coalesced
	if total != workers*ops {
		t.Fatalf("hits+misses+coalesced = %d, want %d", total, workers*ops)
	}
	if got.Misses != uint64(computes.Load()) {
		t.Fatalf("misses %d != computes %d", got.Misses, computes.Load())
	}
	if c.Len() > 48+16 { // per-shard rounding slack
		t.Fatalf("cache over budget: %d entries", c.Len())
	}
	s := rec.Stats()
	if uint64(s.CacheHits) != got.Hits || uint64(s.CacheMisses) != got.Misses ||
		uint64(s.CacheEvictions) != got.Evictions || uint64(s.CacheCoalesced) != got.Coalesced {
		t.Fatalf("obs stats diverge from counters: %+v vs %+v", s, got)
	}
}

//go:build asan

package testutil

// AsanEnabled reports that this binary was built with -asan.
const AsanEnabled = true

package loops

import (
	"fmt"
	"runtime"
	"sync"

	"aisched/internal/graph"
	"aisched/internal/idle"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/sbudget"
)

// SingleSourceOrder implements §5.2.1: schedule a single-basic-block loop by
// converting it to an acyclic graph G' with a dummy sink z representing the
// next iteration's instance of source candidate y:
//
//  1. add dummy sink z;
//  2. add a zero-latency, zero-distance edge from every other node to z;
//  3. replace each loop-carried edge (x, v) with (x, z), distance zero,
//     same latency (the paper's construction for v = y; for the general
//     case of §5.2.3 every carried edge is redirected, which preserves the
//     producer-side constraint as a heuristic).
//
// G' is scheduled with the Rank Algorithm followed by Delay_Idle_Slots, and
// z is dropped from the returned order. Provably optimal when y is the
// unique source of G_li and the target of all loop-carried edges, in the
// restricted machine model.
func SingleSourceOrder(g *graph.Graph, m *machine.Machine, y graph.NodeID) ([]graph.NodeID, error) {
	return singleSourceOrderB(g, m, y, nil)
}

// singleSourceOrderB is SingleSourceOrder with an optional budget threaded
// into the underlying rank context.
func singleSourceOrderB(g *graph.Graph, m *machine.Machine, y graph.NodeID, bs *sbudget.State) ([]graph.NodeID, error) {
	n := g.Len()
	if y < 0 || int(y) >= n {
		return nil, fmt.Errorf("loops: source candidate %d out of range", y)
	}
	gp := graph.New(n + 1)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		gp.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block)
	}
	ynode := g.Node(y)
	z := gp.AddNode("z'"+ynode.Label, ynode.Exec, ynode.Class, ynode.Block)
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Distance == 0 {
				gp.MustEdge(e.Src, e.Dst, e.Latency, 0)
			} else {
				gp.MustEdge(e.Src, z, e.Latency, 0)
			}
		}
	}
	for v := 0; v < n; v++ {
		gp.MustEdge(graph.NodeID(v), z, 0, 0)
	}
	return scheduleAndDrop(gp, m, z, bs)
}

// SingleSinkOrder implements §5.2.2 (the dual): dummy source z representing
// the previous iteration's instance of sink candidate y, a zero-latency edge
// from z to every other node, and each loop-carried edge (v, x) replaced by
// (z, x) with the same latency.
func SingleSinkOrder(g *graph.Graph, m *machine.Machine, y graph.NodeID) ([]graph.NodeID, error) {
	return singleSinkOrderB(g, m, y, nil)
}

// singleSinkOrderB is SingleSinkOrder with an optional budget threaded into
// the underlying rank context.
func singleSinkOrderB(g *graph.Graph, m *machine.Machine, y graph.NodeID, bs *sbudget.State) ([]graph.NodeID, error) {
	n := g.Len()
	if y < 0 || int(y) >= n {
		return nil, fmt.Errorf("loops: sink candidate %d out of range", y)
	}
	gp := graph.New(n + 1)
	// Dummy source first so it precedes everything in program order.
	ynode := g.Node(y)
	z := gp.AddNode("z'"+ynode.Label, ynode.Exec, ynode.Class, ynode.Block)
	remap := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		remap[v] = gp.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block)
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Distance == 0 {
				gp.MustEdge(remap[e.Src], remap[e.Dst], e.Latency, 0)
			} else {
				gp.MustEdge(z, remap[e.Dst], e.Latency, 0)
			}
		}
	}
	for v := 0; v < n; v++ {
		gp.MustEdge(z, remap[v], 0, 0)
	}
	order, err := scheduleAndDrop(gp, m, z, bs)
	if err != nil {
		return nil, err
	}
	// Map subgraph IDs (shifted by one) back to original IDs.
	out := make([]graph.NodeID, 0, n)
	for _, id := range order {
		out = append(out, id-1)
	}
	return out, nil
}

// ctxPool recycles rank contexts across candidate evaluations: every
// candidate schedules its own private graph, but the context's arena, list
// buffers, and Delay_Idle_Slots scratch all reach steady-state capacity after
// the first few candidates and are reused instead of reallocated. sync.Pool
// keeps the concurrent candidate workers from contending over one context.
var ctxPool = sync.Pool{New: func() any { return rank.NewReusable() }}

// pooledCtx checks out a context and resets it onto gp.
func pooledCtx(gp *graph.Graph, m *machine.Machine, bs *sbudget.State) (*rank.Ctx, error) {
	c := ctxPool.Get().(*rank.Ctx)
	if err := c.Reset(graph.NewCSR(gp).View(), m, gp); err != nil {
		ctxPool.Put(c)
		return nil, err
	}
	c.SetBudget(bs)
	return c, nil
}

// scheduleAndDrop runs rank_alg + Delay_Idle_Slots on the acyclic graph and
// returns the schedule's permutation with the dummy node removed. One rank
// context serves both the makespan schedule and the whole delay pass.
func scheduleAndDrop(gp *graph.Graph, m *machine.Machine, dummy graph.NodeID, bs *sbudget.State) ([]graph.NodeID, error) {
	c, err := pooledCtx(gp, m, bs)
	if err != nil {
		return nil, err
	}
	defer ctxPool.Put(c)
	res, err := c.Run(rank.UniformDeadlines(gp.Len(), rank.Big), nil)
	if err != nil {
		return nil, err
	}
	s := res.S
	d := rank.UniformDeadlines(gp.Len(), s.Makespan())
	s, _, err = idle.DelayIdleSlotsCtx(c, s, d, nil, nil)
	if err != nil {
		return nil, err
	}
	var order []graph.NodeID
	for _, id := range s.Permutation() {
		if id != dummy {
			order = append(order, id)
		}
	}
	return order, nil
}

// Candidates enumerates the §5.2.3 general-case candidates: every target of
// a loop-carried edge as a single-source candidate, and every source of a
// loop-carried edge as a single-sink candidate. For graphs whose latencies
// are all ≤ 1 the paper's compile-time reduction applies: only G_li sources
// (resp. sinks) need be considered.
func Candidates(g *graph.Graph) (sources, sinks []graph.NodeID) {
	return candidatesLI(g, nil)
}

// candidatesLI is Candidates with an optional precomputed loop-independent
// subgraph (computed on demand when nil).
func candidatesLI(g, li *graph.Graph) (sources, sinks []graph.NodeID) {
	n := g.Len()
	// Dense membership sets — node IDs are compact, so []bool beats maps on
	// both lookups and allocation count.
	srcSet := make([]bool, n)
	sinkSet := make([]bool, n)
	maxLat := 0
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Latency > maxLat {
				maxLat = e.Latency
			}
			if e.Distance > 0 {
				srcSet[e.Dst] = true
				sinkSet[e.Src] = true
			}
		}
	}
	if maxLat <= 1 {
		if li == nil {
			li = g.LoopIndependent()
		}
		liSources := make([]bool, n)
		for _, s := range li.Sources() {
			liSources[s] = true
		}
		liSinks := make([]bool, n)
		for _, s := range li.Sinks() {
			liSinks[s] = true
		}
		for v := 0; v < n; v++ {
			srcSet[v] = srcSet[v] && liSources[v]
			sinkSet[v] = sinkSet[v] && liSinks[v]
		}
	}
	for v := 0; v < n; v++ {
		if srcSet[v] {
			sources = append(sources, graph.NodeID(v))
		}
		if sinkSet[v] {
			sinks = append(sinks, graph.NodeID(v))
		}
	}
	return sources, sinks
}

// ScheduleSingleBlockLoop implements the general case of §5.2.3 for a loop
// containing a single basic block: build one candidate schedule per
// single-source/single-sink candidate plus the plain block-optimal schedule,
// evaluate each in the periodic steady-state model, and keep the best
// (smallest II, ties broken by smaller intra-iteration makespan).
func ScheduleSingleBlockLoop(g *graph.Graph, m *machine.Machine) (*Steady, error) {
	return ScheduleSingleBlockLoopT(g, m, nil)
}

// baseOrder computes the baseline candidate: the block-optimal order from
// the Rank Algorithm + Delay_Idle_Slots on the loop-independent subgraph.
func baseOrder(li *graph.Graph, m *machine.Machine, bs *sbudget.State) ([]graph.NodeID, error) {
	c, err := pooledCtx(li, m, bs)
	if err != nil {
		return nil, err
	}
	defer ctxPool.Put(c)
	res, err := c.Run(rank.UniformDeadlines(li.Len(), rank.Big), nil)
	if err != nil {
		return nil, err
	}
	s := res.S
	d := rank.UniformDeadlines(li.Len(), s.Makespan())
	s, _, err = idle.DelayIdleSlotsCtx(c, s, d, nil, nil)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// candidateWorkers caps the size of the worker pool used by runCandidates.
// It exists as a variable so tests can force the serial path (≤1) and the
// race test can pin a specific parallel width.
var candidateWorkers = func() int { return runtime.GOMAXPROCS(0) }

// runCandidates evaluates fn(i) for i in [0, n) on a bounded worker pool and
// stores each result (or error) at index i. Candidates are fully independent
// — each schedules its own private graph copy — so the only shared state is
// the result slices, written at distinct indices. Callers consume the
// results in index order, which keeps the observable behaviour (trace event
// order, best-candidate tie-breaks) identical to the serial loop.
func runCandidates(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	workers := candidateWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = runCandidate(i, fn)
		}
		return errs
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runCandidate(i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errs
}

// runCandidate invokes fn(i), converting a panic into a per-candidate error
// so one panicking candidate cannot kill the process (a panic in a bare
// worker goroutine is unrecoverable anywhere else).
func runCandidate(i int, fn func(i int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("loops: candidate %d panicked: %v", i, p)
		}
	}()
	return fn(i)
}

// ScheduleSingleBlockLoopT is ScheduleSingleBlockLoop with optional tracing:
// every candidate evaluation emits a KindIICandidate event (candidate kind
// "base", "source" or "sink"; the candidate instruction; the achieved II and
// intra-iteration makespan), bracketed by a pass-start/pass-end pair named
// obs.PassLoop whose end event carries the best II.
//
// Candidates are evaluated concurrently on a GOMAXPROCS-bounded worker pool;
// each candidate schedules a private graph copy, and results are consumed in
// candidate order, so the chosen schedule and emitted trace are identical to
// a serial evaluation.
func ScheduleSingleBlockLoopT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*Steady, error) {
	return scheduleSingleBlockLoopOpts(g, m, Opts{Tracer: tr})
}

// scheduleSingleBlockLoopOpts is the option-threading implementation behind
// ScheduleSingleBlockLoopT and ScheduleLoopOpts. The request's budget state
// is shared by all candidate workers (it is concurrency-safe), so the
// combined candidate search is metered as one request: each candidate starts
// with a checkpoint and every rank pass inside it is charged.
func scheduleSingleBlockLoopOpts(g *graph.Graph, m *machine.Machine, o Opts) (*Steady, error) {
	tr := o.Tracer
	if g.Len() == 0 {
		return nil, fmt.Errorf("loops: empty loop body")
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassLoop,
			Block: -1, Node: graph.None, N: g.Len()})
	}
	type candidate struct {
		kind string
		node graph.NodeID
		st   *Steady
	}
	// One loop-independent subgraph serves the candidate enumeration, the
	// base candidate and every steady-state evaluation; it is only read
	// after this point, so the worker goroutines can share it.
	li := g.LoopIndependent()
	sources, sinks := candidatesLI(g, li)
	candidates := make([]candidate, 0, 1+len(sources)+len(sinks))
	candidates = append(candidates, candidate{kind: "base", node: graph.None})
	for _, y := range sources {
		candidates = append(candidates, candidate{kind: "source", node: y})
	}
	for _, y := range sinks {
		candidates = append(candidates, candidate{kind: "sink", node: y})
	}

	errs := runCandidates(len(candidates), func(i int) error {
		if err := o.Budget.Check(); err != nil {
			return err
		}
		c := &candidates[i]
		var order []graph.NodeID
		var err error
		switch c.kind {
		case "base":
			order, err = baseOrder(li, m, o.Budget)
		case "source":
			order, err = singleSourceOrderB(g, m, c.node, o.Budget)
		default:
			order, err = singleSinkOrderB(g, m, c.node, o.Budget)
		}
		if err != nil {
			return err
		}
		c.st, err = evaluateLI(g, li, m, order)
		return err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var best *Steady
	for _, c := range candidates {
		st := c.st
		if tr != nil {
			label := ""
			if c.node != graph.None {
				label = g.Node(c.node).Label
			}
			tr.Emit(obs.Event{Kind: obs.KindIICandidate, Pass: c.kind,
				Node: c.node, Label: label, Block: -1,
				N: st.II, From: st.Makespan})
		}
		if best == nil || st.II < best.II || (st.II == best.II && st.Makespan < best.Makespan) {
			best = st
		}
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassLoop,
			Block: -1, Node: graph.None, N: best.II})
	}
	return best, nil
}

// Package interp is a functional interpreter for the target ISA: it
// executes compiled programs instruction by instruction, following
// branches, and reports the final architectural state. It exists to close
// the loop on the safety claim of anticipatory instruction scheduling —
// because instructions never move across basic-block boundaries and all
// intra-block dependences are honored, a scheduled (or register-renamed)
// program must compute exactly the same final registers and memory as the
// original. The property tests in this package's clients run random mini-C
// programs through compile → schedule → emit → interpret and compare
// states.
package interp

import (
	"fmt"

	"aisched/internal/isa"
)

// State is the architectural machine state.
type State struct {
	// Regs holds the general and condition register files (indexed by
	// isa.Reg).
	Regs [isa.NumGPR + isa.NumCR]int64
	// Mem is a sparse word-addressed memory.
	Mem map[int64]int64
	// Steps counts executed instructions.
	Steps int
}

// NewState returns an empty machine state.
func NewState() *State {
	return &State{Mem: map[int64]int64{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{Regs: s.Regs, Mem: make(map[int64]int64, len(s.Mem)), Steps: s.Steps}
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return c
}

// DefaultMaxSteps bounds Run when the caller passes 0.
const DefaultMaxSteps = 100000

// Run executes the blocks starting at blocks[0], following branch targets
// by label and falling through otherwise, until control falls off the end.
// It mutates and returns st (allocating a fresh state when nil).
func Run(blocks []isa.Block, st *State, maxSteps int) (*State, error) {
	if st == nil {
		st = NewState()
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	byLabel := map[string]int{}
	for i, b := range blocks {
		if b.Label != "" {
			byLabel[b.Label] = i
		}
	}
	bi := 0
	for bi < len(blocks) {
		b := blocks[bi]
		jumped := false
		for _, in := range b.Instrs {
			if st.Steps >= maxSteps {
				return st, fmt.Errorf("interp: step limit %d exceeded (runaway loop?)", maxSteps)
			}
			st.Steps++
			taken, err := st.exec(in)
			if err != nil {
				return st, err
			}
			if taken {
				to, ok := byLabel[in.Target]
				if !ok {
					return st, fmt.Errorf("interp: unknown branch target %q", in.Target)
				}
				bi = to
				jumped = true
				break
			}
		}
		if !jumped {
			bi++
		}
	}
	return st, nil
}

// exec executes one instruction; taken reports whether a branch fired.
func (s *State) exec(in isa.Instr) (taken bool, err error) {
	r := func(reg isa.Reg) int64 {
		if !reg.Valid() {
			return 0
		}
		return s.Regs[reg]
	}
	w := func(reg isa.Reg, v int64) {
		if reg.Valid() {
			s.Regs[reg] = v
		}
	}
	switch in.Op {
	case isa.NOP:
	case isa.LI:
		w(in.Dst, in.Imm)
	case isa.MOV:
		w(in.Dst, r(in.SrcA))
	case isa.ADD:
		w(in.Dst, r(in.SrcA)+r(in.SrcB))
	case isa.SUB:
		w(in.Dst, r(in.SrcA)-r(in.SrcB))
	case isa.AND:
		w(in.Dst, r(in.SrcA)&r(in.SrcB))
	case isa.OR:
		w(in.Dst, r(in.SrcA)|r(in.SrcB))
	case isa.XOR:
		w(in.Dst, r(in.SrcA)^r(in.SrcB))
	case isa.SHL:
		w(in.Dst, r(in.SrcA)<<(uint64(r(in.SrcB))&63))
	case isa.SHR:
		w(in.Dst, int64(uint64(r(in.SrcA))>>(uint64(r(in.SrcB))&63)))
	case isa.ADDI:
		w(in.Dst, r(in.SrcA)+in.Imm)
	case isa.SUBI:
		w(in.Dst, r(in.SrcA)-in.Imm)
	case isa.MUL:
		w(in.Dst, r(in.SrcA)*r(in.SrcB))
	case isa.DIV:
		if d := r(in.SrcB); d != 0 {
			w(in.Dst, r(in.SrcA)/d)
		} else {
			w(in.Dst, 0) // architectural definition: divide by zero yields 0
		}
	case isa.LOAD:
		w(in.Dst, s.Mem[r(in.Base)+in.Imm])
	case isa.LOADU:
		addr := r(in.Base) + in.Imm
		w(in.Base, addr)
		w(in.Dst, s.Mem[addr])
	case isa.STORE:
		s.Mem[r(in.Base)+in.Imm] = r(in.SrcA)
	case isa.STOREU:
		addr := r(in.Base) + in.Imm
		w(in.Base, addr)
		s.Mem[addr] = r(in.SrcA)
	case isa.CMP:
		w(in.Dst, b2i(in.Cond.Eval(r(in.SrcA), r(in.SrcB))))
	case isa.CMPI:
		w(in.Dst, b2i(in.Cond.Eval(r(in.SrcA), in.Imm)))
	case isa.BT:
		return r(in.SrcA) != 0, nil
	case isa.BF:
		return r(in.SrcA) == 0, nil
	case isa.B:
		return true, nil
	default:
		return false, fmt.Errorf("interp: unknown opcode %v", in.Op)
	}
	return false, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// SameObservable compares two final states on the observable surface: all
// of memory and the given registers (callers pass the registers the source
// program's variables live in; scratch registers may legitimately differ
// after renaming or rescheduling).
func SameObservable(a, b *State, regs []isa.Reg) error {
	for _, r := range regs {
		if a.Regs[r] != b.Regs[r] {
			return fmt.Errorf("interp: register %s differs: %d vs %d", r, a.Regs[r], b.Regs[r])
		}
	}
	for k, v := range a.Mem {
		if b.Mem[k] != v {
			return fmt.Errorf("interp: mem[%d] differs: %d vs %d", k, v, b.Mem[k])
		}
	}
	for k, v := range b.Mem {
		if a.Mem[k] != v {
			return fmt.Errorf("interp: mem[%d] differs: %d vs %d", k, a.Mem[k], v)
		}
	}
	return nil
}

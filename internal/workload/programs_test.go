package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/deps"
	"aisched/internal/minic"
)

func TestRandomProgramAlwaysCompiles(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := RandomProgram(r, 2+r.Intn(6))
		if _, err := minic.Compile(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestPropertyRandomProgramTraceGraphsAreSane(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := RandomProgram(r, 3)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		g := deps.BuildTrace(comp.TraceBlocks())
		return g.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	a := RandomProgram(rand.New(rand.NewSource(11)), 5)
	b := RandomProgram(rand.New(rand.NewSource(11)), 5)
	if a != b {
		t.Fatal("RandomProgram not deterministic for equal seeds")
	}
}

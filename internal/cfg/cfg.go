// Package cfg builds control-flow graphs over compiled basic blocks and
// selects scheduling traces from them — the substrate that connects this
// repository's trace scheduler to whole programs. Trace selection follows
// Fisher's mutually-most-likely heuristic (the paper's §6 reference [7]):
// pick the heaviest unvisited block, grow the trace forward along the most
// probable successor edges (only when the successor's most probable
// predecessor is the current block) and backward symmetrically.
//
// Edge probabilities come from static branch prediction (backward branches
// predicted taken, forward branches slightly not-taken) or from an injected
// profile.
package cfg

import (
	"fmt"

	"aisched/internal/isa"
	"aisched/internal/minic"
)

// Edge is one control-flow edge with its taken probability.
type Edge struct {
	To   int
	Prob float64
}

// Block is one CFG node.
type Block struct {
	Index  int
	Label  string
	Instrs []isa.Instr
	Succs  []Edge
	Preds  []Edge // Prob is the probability of the *source's* edge here
}

// CFG is a control-flow graph over compiled blocks. Block 0 is the entry.
type CFG struct {
	Blocks []*Block
	byName map[string]int
}

// Static branch prediction probabilities.
const (
	probBackwardTaken = 0.9 // loop back edges
	probForwardTaken  = 0.4 // forward conditionals slightly not-taken
)

// FromCompiled builds the CFG of a mini-C compilation unit.
func FromCompiled(c *minic.Compiled) (*CFG, error) {
	g := &CFG{byName: map[string]int{}}
	for i, b := range c.Blocks {
		nb := &Block{Index: i, Label: b.Label, Instrs: b.Instrs}
		g.Blocks = append(g.Blocks, nb)
		if b.Label != "" {
			g.byName[b.Label] = i
		}
	}
	for i, b := range g.Blocks {
		var last *isa.Instr
		if len(b.Instrs) > 0 {
			last = &b.Instrs[len(b.Instrs)-1]
		}
		fall := i + 1
		switch {
		case last != nil && last.Op == isa.B:
			to, ok := g.byName[last.Target]
			if !ok {
				return nil, fmt.Errorf("cfg: unknown branch target %q", last.Target)
			}
			b.Succs = append(b.Succs, Edge{To: to, Prob: 1})
		case last != nil && (last.Op == isa.BT || last.Op == isa.BF):
			to, ok := g.byName[last.Target]
			if !ok {
				return nil, fmt.Errorf("cfg: unknown branch target %q", last.Target)
			}
			taken := probForwardTaken
			if to <= i {
				taken = probBackwardTaken
			}
			b.Succs = append(b.Succs, Edge{To: to, Prob: taken})
			if fall < len(g.Blocks) {
				b.Succs = append(b.Succs, Edge{To: fall, Prob: 1 - taken})
			}
		default:
			if fall < len(g.Blocks) {
				b.Succs = append(b.Succs, Edge{To: fall, Prob: 1})
			}
		}
	}
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			g.Blocks[e.To].Preds = append(g.Blocks[e.To].Preds, Edge{To: b.Index, Prob: e.Prob})
		}
	}
	return g, nil
}

// SetProfile overrides the successor probabilities of one block; the slice
// must match the block's successor count and sum to ~1.
func (g *CFG) SetProfile(block int, probs []float64) error {
	if block < 0 || block >= len(g.Blocks) {
		return fmt.Errorf("cfg: block %d out of range", block)
	}
	b := g.Blocks[block]
	if len(probs) != len(b.Succs) {
		return fmt.Errorf("cfg: %d probabilities for %d successors", len(probs), len(b.Succs))
	}
	for i := range probs {
		b.Succs[i].Prob = probs[i]
	}
	// Rebuild pred mirror.
	for _, nb := range g.Blocks {
		nb.Preds = nb.Preds[:0]
	}
	for _, nb := range g.Blocks {
		for _, e := range nb.Succs {
			g.Blocks[e.To].Preds = append(g.Blocks[e.To].Preds, Edge{To: nb.Index, Prob: e.Prob})
		}
	}
	return nil
}

// Weights estimates block execution frequencies by damped flow propagation
// from the entry (weight 1). With back-edge probabilities < 1 the iteration
// is a convergent geometric series; it is cut off after a fixed number of
// rounds, which also bounds the effect of irreducible shapes.
func (g *CFG) Weights() []float64 {
	n := len(g.Blocks)
	w := make([]float64, n)
	if n == 0 {
		return w
	}
	const rounds = 64
	cur := make([]float64, n)
	cur[0] = 1
	for r := 0; r < rounds; r++ {
		next := make([]float64, n)
		for i, b := range g.Blocks {
			if cur[i] == 0 {
				continue
			}
			w[i] += cur[i]
			for _, e := range b.Succs {
				next[e.To] += cur[i] * e.Prob
			}
		}
		cur = next
	}
	return w
}

// SelectTraces partitions the blocks into traces by Fisher's
// mutually-most-likely heuristic, heaviest-seed first. Every block appears
// in exactly one trace; trace blocks are in control-flow order.
func (g *CFG) SelectTraces() [][]int {
	n := len(g.Blocks)
	weights := g.Weights()
	visited := make([]bool, n)
	var traces [][]int

	mostLikelySucc := func(i int) (int, bool) {
		best, bp := -1, 0.0
		for _, e := range g.Blocks[i].Succs {
			if e.Prob > bp {
				best, bp = e.To, e.Prob
			}
		}
		return best, best >= 0
	}
	mostLikelyPred := func(i int) (int, bool) {
		best, bp := -1, 0.0
		for _, e := range g.Blocks[i].Preds {
			contribution := e.Prob * weights[e.To]
			if contribution > bp {
				best, bp = e.To, contribution
			}
		}
		return best, best >= 0
	}

	for {
		seed, sw := -1, -1.0
		for i := 0; i < n; i++ {
			if !visited[i] && weights[i] > sw {
				seed, sw = i, weights[i]
			}
		}
		if seed < 0 {
			break
		}
		trace := []int{seed}
		visited[seed] = true
		// Grow forward.
		for cur := seed; ; {
			s, ok := mostLikelySucc(cur)
			if !ok || visited[s] {
				break
			}
			if p, ok2 := mostLikelyPred(s); !ok2 || p != cur {
				break // not mutually most likely
			}
			trace = append(trace, s)
			visited[s] = true
			cur = s
		}
		// Grow backward from the seed.
		for cur := seed; ; {
			p, ok := mostLikelyPred(cur)
			if !ok || visited[p] {
				break
			}
			if s, ok2 := mostLikelySucc(p); !ok2 || s != cur {
				break
			}
			trace = append([]int{p}, trace...)
			visited[p] = true
			cur = p
		}
		traces = append(traces, trace)
	}
	return traces
}

// TraceInstrs returns the instruction sequences of a selected trace, ready
// for deps.BuildTrace.
func (g *CFG) TraceInstrs(trace []int) [][]isa.Instr {
	var out [][]isa.Instr
	for _, bi := range trace {
		if len(g.Blocks[bi].Instrs) > 0 {
			out = append(out, g.Blocks[bi].Instrs)
		}
	}
	return out
}

// HotTrace returns the heaviest trace's instruction sequences (the first
// trace from SelectTraces) together with its block indices.
func (g *CFG) HotTrace() ([][]isa.Instr, []int) {
	traces := g.SelectTraces()
	if len(traces) == 0 {
		return nil, nil
	}
	return g.TraceInstrs(traces[0]), traces[0]
}

// Command figures regenerates every figure of Sarkar & Simons (SPAA '96) —
// Figures 1, 2, 3, and 8 — and checks each measured value against the
// number printed in the paper. Exit status is nonzero if any check fails.
//
// Usage:
//
//	figures
package main

import (
	"fmt"
	"os"

	"aisched/internal/experiments"
)

func main() {
	fail := false
	for _, f := range []func() (*experiments.Result, error){
		experiments.E1, experiments.E2, experiments.E3, experiments.E4,
	} {
		r, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(r)
		if !r.Passed {
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

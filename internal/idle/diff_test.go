package idle

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

// Differential tests: the context-based Move_Idle_Slot / Delay_Idle_Slots —
// incremental re-ranking, shared refill/reschedule rank computation, unit
// timeline indexes — must produce bit-identical schedules and deadline
// vectors to the retained naive implementation.

func randomDiffDAG(r *rand.Rand, n int, p float64, classes int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 1+r.Intn(2), r.Intn(classes), 0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(3), 0)
			}
		}
	}
	return g
}

func sameSchedule(a, b *sched.Schedule) bool {
	if a.G.Len() != b.G.Len() {
		return false
	}
	for v := 0; v < a.G.Len(); v++ {
		if a.Start[v] != b.Start[v] || a.Unit[v] != b.Unit[v] {
			return false
		}
	}
	return true
}

func TestDifferentialDelayIdleSlotsMatchesReference(t *testing.T) {
	cases := []struct {
		m       *machine.Machine
		classes int
	}{
		{machine.SingleUnit(4), 3},
		{machine.RS6000(4), 3},
		{machine.Superscalar(2, 4), 1},
	}
	for seed := int64(0); seed < 45; seed++ {
		cs := cases[seed%int64(len(cases))]
		r := rand.New(rand.NewSource(seed))
		g := randomDiffDAG(r, 2+r.Intn(16), 0.3, cs.classes)
		res, err := rank.Run(g, cs.m, rank.UniformDeadlines(g.Len(), rank.Big), nil)
		if err != nil {
			t.Fatalf("seed %d: rank: %v", seed, err)
		}
		d := rank.UniformDeadlines(g.Len(), res.S.Makespan())

		wantS, wantD, err := ReferenceDelayIdleSlots(res.S, cs.m, d, nil)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		gotS, gotD, err := DelayIdleSlots(res.S, cs.m, d, nil)
		if err != nil {
			t.Fatalf("seed %d: optimized: %v", seed, err)
		}
		if !sameSchedule(gotS, wantS) {
			t.Fatalf("seed %d on %s: schedules differ\n got %v/%v\n want %v/%v",
				seed, cs.m.Name, gotS.Start, gotS.Unit, wantS.Start, wantS.Unit)
		}
		for v := range gotD {
			if gotD[v] != wantD[v] {
				t.Fatalf("seed %d on %s: deadlines differ at %d: %d vs %d",
					seed, cs.m.Name, v, gotD[v], wantD[v])
			}
		}
	}
}

func TestDifferentialMoveIdleSlotMatchesReference(t *testing.T) {
	// Exercise single moves on every idle slot of every unit, not just the
	// left-to-right sweep Delay_Idle_Slots performs.
	m := machine.SingleUnit(4)
	for seed := int64(500); seed < 540; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomDiffDAG(r, 3+r.Intn(12), 0.35, 1)
		res, err := rank.Run(g, m, rank.UniformDeadlines(g.Len(), rank.Big), nil)
		if err != nil {
			t.Fatalf("seed %d: rank: %v", seed, err)
		}
		d := rank.UniformDeadlines(g.Len(), res.S.Makespan())
		for unit := 0; unit < m.TotalUnits(); unit++ {
			for _, slot := range res.S.IdleSlotsOnUnit(unit) {
				want, err := ReferenceMoveIdleSlot(res.S, m, d, unit, slot, nil)
				if err != nil {
					t.Fatalf("seed %d slot %d: reference: %v", seed, slot, err)
				}
				got, err := MoveIdleSlot(res.S, m, d, unit, slot, nil)
				if err != nil {
					t.Fatalf("seed %d slot %d: optimized: %v", seed, slot, err)
				}
				if got.Moved != want.Moved || got.NewStart != want.NewStart {
					t.Fatalf("seed %d unit %d slot %d: move (%v,%d) vs reference (%v,%d)",
						seed, unit, slot, got.Moved, got.NewStart, want.Moved, want.NewStart)
				}
				if !sameSchedule(got.S, want.S) {
					t.Fatalf("seed %d unit %d slot %d: schedules differ", seed, unit, slot)
				}
				for v := range got.D {
					if got.D[v] != want.D[v] {
						t.Fatalf("seed %d unit %d slot %d: deadlines differ at %d", seed, unit, slot, v)
					}
				}
			}
		}
	}
}

// Package aisched is a Go implementation of Anticipatory Instruction
// Scheduling (Sarkar & Simons, SPAA 1996): compile-time instruction
// scheduling that rearranges instructions only within basic blocks, yet
// minimizes the dynamic completion time of whole traces and loops on
// processors with a hardware lookahead window — the window overlaps the end
// of one block with the start of the next, so the scheduler moves idle
// slots as late as possible and orders each block's tail anticipating its
// successors.
//
// The package is a facade over the internal implementation:
//
//   - ScheduleBlock: the Rank Algorithm + Delay_Idle_Slots on one block;
//   - ScheduleTrace: Algorithm Lookahead over a multi-block trace (§4);
//   - ScheduleLoop: the §5 loop algorithms (single- and multi-block bodies);
//   - Pipeline / PipelineThenAnticipate: software pipelining and the
//     anticipatory post-pass (§2.4);
//   - Simulate*: the cycle-accurate lookahead-window hardware model used to
//     evaluate every schedule;
//   - CompileC / ParseAsm + BuildTraceGraph / BuildLoopGraph: front ends
//     producing dependence graphs from mini-C source or RS/6000-flavoured
//     assembly.
//
// Quick start:
//
//	g := aisched.NewGraph(3)
//	a := g.AddUnit("a")
//	b := g.AddUnit("b")
//	c := g.AddUnit("c")
//	g.MustEdge(a, b, 1, 0) // b starts ≥ 1 cycle after a completes
//	g.MustEdge(b, c, 0, 0)
//	m := aisched.SingleUnit(4) // one functional unit, window W = 4
//	s, _ := aisched.ScheduleBlock(g, m)
//	fmt.Println(s.Makespan())
package aisched

import (
	"context"

	"aisched/internal/cfg"
	"aisched/internal/core"
	"aisched/internal/deps"
	"aisched/internal/emit"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/idle"
	"aisched/internal/interp"
	"aisched/internal/isa"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/regren"
	"aisched/internal/sched"
)

// Core type aliases: the dependence graph, machine model, and schedule
// representation.
type (
	// Graph is a dependence graph over instructions: nodes carry execution
	// time, functional-unit class, and basic-block index; edges carry a
	// <latency, distance> label (distance > 0 = loop-carried).
	Graph = graph.Graph
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// Edge is a dependence edge.
	Edge = graph.Edge
	// Machine describes functional units and the lookahead window size W.
	Machine = machine.Machine
	// Schedule assigns every node a start cycle and functional unit.
	Schedule = sched.Schedule
	// TraceResult is Algorithm Lookahead's output: the per-block static
	// orders (the emitted code) and the predicted execution schedule.
	TraceResult = core.Result
	// LoopSteady describes a loop schedule's periodic steady state: the
	// intra-iteration makespan and the initiation interval II, so n
	// iterations complete in Makespan + (n−1)·II cycles.
	LoopSteady = loops.Steady
	// Kernel is a software-pipelined loop kernel (modulo schedule).
	Kernel = loops.Kernel
	// Instr is one machine instruction of the RISC-like target ISA.
	Instr = isa.Instr
	// AsmBlock is a labeled block of parsed assembly.
	AsmBlock = isa.Block
	// CompiledC is the mini-C compiler's output.
	CompiledC = minic.Compiled
	// SimResult reports one hardware simulation.
	SimResult = hw.Result
	// SimOptions tunes the hardware simulation (speculation, misprediction,
	// optional cycle-level tracing via the Tracer field).
	SimOptions = hw.Options
	// Tracer receives structured observability events from the scheduler
	// passes and the hardware simulator. Use NewRecorder for the standard
	// in-memory implementation.
	Tracer = obs.Tracer
	// TraceEvent is one structured observability event.
	TraceEvent = obs.Event
	// TraceRecorder collects trace events and renders them as a Stats
	// snapshot, Chrome trace-event JSON (Perfetto-loadable), or a plain-text
	// pipeline timeline.
	TraceRecorder = obs.Recorder
	// Stats is the metrics-registry snapshot: stall-cycle breakdown by
	// reason, window-occupancy distribution, idle-slot fills split into
	// same-block vs cross-block (the paper's headline effect), rollback and
	// scheduler-pass counters. Marshals to stable JSON.
	Stats = obs.Stats
)

// NewRecorder returns an empty trace recorder; install it with WithTracer or
// on SimOptions.Tracer.
func NewRecorder() *TraceRecorder { return obs.NewRecorder() }

// NewRecorderCap returns a trace recorder that retains at most n events,
// dropping the oldest once full. Stats stay exact across drops (evicted
// events are folded into a running aggregate); only the Events/Timeline/
// ChromeTrace views are truncated to the retained window. Use this for
// long-running or batch workloads where an unbounded recorder would grow
// without limit.
func NewRecorderCap(n int) *TraceRecorder { return obs.NewRecorderCap(n) }

// Observer binds a Tracer to the scheduling and simulation entry points, so
// one run can be observed end to end: pass decisions (merge, idle-slot
// delays, chop, II candidates) and per-cycle hardware behaviour (issues,
// stall reasons, window occupancy, rollbacks).
//
//	rec := aisched.NewRecorder()
//	o := aisched.WithTracer(rec)
//	res, _ := o.ScheduleTrace(g, m)
//	o.SimulateTrace(g, m, res.StaticOrder())
//	stats := rec.Stats()
type Observer struct {
	tr Tracer
}

// WithTracer returns an Observer whose operations emit events to t. A nil t
// yields an Observer with tracing disabled (zero overhead).
func WithTracer(t Tracer) *Observer { return &Observer{tr: t} }

// ScheduleBlock is the traced equivalent of the package-level ScheduleBlock.
func (o *Observer) ScheduleBlock(g *Graph, m *Machine) (*Schedule, error) {
	s, err := rank.MakespanT(g, m, o.tr)
	if err != nil {
		return nil, err
	}
	d := rank.UniformDeadlines(g.Len(), s.Makespan())
	s, _, err = idle.DelayIdleSlotsT(s, m, d, nil, o.tr)
	return s, err
}

// ScheduleTrace is the traced equivalent of the package-level ScheduleTrace.
func (o *Observer) ScheduleTrace(g *Graph, m *Machine) (*TraceResult, error) {
	return core.LookaheadOpts(g, m, core.Options{Tracer: o.tr})
}

// ScheduleLoop is the traced equivalent of the package-level ScheduleLoop.
func (o *Observer) ScheduleLoop(g *Graph, m *Machine) (*LoopSteady, error) {
	return loops.ScheduleLoopT(g, m, o.tr)
}

// SimulateTrace is the traced equivalent of the package-level SimulateTrace:
// the simulator emits per-cycle issue, stall-reason, window-occupancy and
// rollback events.
func (o *Observer) SimulateTrace(g *Graph, m *Machine, order []NodeID) (*SimResult, error) {
	return hw.SimulateLoop(g, m, order, 1, SimOptions{Speculate: true, Tracer: o.tr})
}

// SimulateLoop is the traced equivalent of the package-level SimulateLoop;
// any Tracer already set on opt is replaced by the Observer's.
func (o *Observer) SimulateLoop(g *Graph, m *Machine, order []NodeID, iters int, opt SimOptions) (*SimResult, error) {
	opt.Tracer = o.tr
	return hw.SimulateLoop(g, m, order, iters, opt)
}

// NewGraph returns an empty dependence graph with capacity for n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Machine presets.
var (
	// SingleUnit is the paper's restricted model: one functional unit that
	// executes every instruction class, lookahead window W.
	SingleUnit = machine.SingleUnit
	// RS6000 is an RS/6000-flavoured three-unit machine (fixed point,
	// float/multiply, branch).
	RS6000 = machine.RS6000
	// Superscalar is a k-wide single-class machine.
	Superscalar = machine.Superscalar
)

// ScheduleBlock schedules a single basic block: minimum-makespan Rank
// Algorithm schedule followed by Delay_Idle_Slots, so every idle slot sits
// as late as possible (ready to be filled by successor-block instructions
// through the hardware window). Optimal for unit execution times, 0/1
// latencies and a single functional unit; a strong heuristic otherwise.
// ScheduleBlockCtx adds cooperative cancellation.
func ScheduleBlock(g *Graph, m *Machine) (*Schedule, error) {
	return ScheduleBlockCtx(context.Background(), g, m)
}

// ScheduleTrace runs Algorithm Lookahead (§4) over a trace graph whose
// nodes carry block indices. The result's BlockOrders are the static code
// to emit; instructions never cross block boundaries. ScheduleTraceCtx adds
// cooperative cancellation.
func ScheduleTrace(g *Graph, m *Machine) (*TraceResult, error) {
	return ScheduleTraceCtx(context.Background(), g, m)
}

// ScheduleLoop schedules a loop body graph (distance-1 carried edges): the
// §5.2 general case for single-block bodies, the §5.1 trace algorithm for
// multi-block bodies. The result reports the static order and the periodic
// steady state. ScheduleLoopCtx adds cooperative cancellation.
func ScheduleLoop(g *Graph, m *Machine) (*LoopSteady, error) {
	return ScheduleLoopCtx(context.Background(), g, m)
}

// EvaluateLoopOrder computes the periodic steady state of an explicit loop
// body order.
func EvaluateLoopOrder(g *Graph, m *Machine, order []NodeID) (*LoopSteady, error) {
	return loops.Evaluate(g, m, order)
}

// UnrolledSteady is the result of unroll-and-schedule: the unrolled body's
// steady state, with PerIteration() normalizing to original iterations.
type UnrolledSteady = loops.UnrolledSteady

// UnrollLoop replicates a single-block loop body k times (dependence
// distances adjusted) and schedules the unrolled body anticipatorily; the
// k=1 solution repeated is always a candidate, so unrolling never loses.
func UnrollLoop(g *Graph, m *Machine, k int) (*UnrolledSteady, error) {
	return loops.UnrollAndSchedule(g, m, k)
}

// Pipeline computes a software-pipelined kernel (modulo schedule) of a loop
// body.
func Pipeline(g *Graph, m *Machine) (*Kernel, error) { return loops.Pipeline(g, m) }

// PipelineThenAnticipate runs software pipelining followed by the
// anticipatory single-block post-pass — the complementary combination of
// the paper's §2.4.
func PipelineThenAnticipate(g *Graph, m *Machine) (*LoopSteady, *Kernel, error) {
	return loops.PipelineThenAnticipate(g, m)
}

// SimulateTrace executes a static instruction order for a trace graph on
// the lookahead-window hardware model and returns the dynamic completion
// time.
func SimulateTrace(g *Graph, m *Machine, order []NodeID) (*SimResult, error) {
	t := stageTimer(simSampler)
	res, err := hw.SimulateTrace(g, m, order)
	stageDone(mStageSimNS, t)
	return res, err
}

// SimulateLoop executes iters iterations of a loop body order.
func SimulateLoop(g *Graph, m *Machine, order []NodeID, iters int, opt SimOptions) (*SimResult, error) {
	t := stageTimer(simSampler)
	res, err := hw.SimulateLoop(g, m, order, iters, opt)
	stageDone(mStageSimNS, t)
	return res, err
}

// LoopSteadyState estimates the dynamic cycles-per-iteration of a loop
// order on the window hardware.
func LoopSteadyState(g *Graph, m *Machine, order []NodeID, opt SimOptions) (float64, error) {
	return hw.SteadyState(g, m, order, opt)
}

// CompileC compiles mini-C source to basic blocks of the target ISA.
func CompileC(src string) (*CompiledC, error) { return minic.Compile(src) }

// ParseAsm parses RS/6000-flavoured assembly into labeled blocks.
func ParseAsm(src string) ([]AsmBlock, error) { return isa.Parse(src) }

// BuildBlockGraph builds the dependence graph of one basic block.
func BuildBlockGraph(instrs []Instr) *Graph { return deps.BuildBlock(instrs, 0) }

// BuildTraceGraph builds the dependence graph of a trace of basic blocks,
// including cross-block register and memory dependences.
func BuildTraceGraph(blocks [][]Instr) *Graph { return deps.BuildTrace(blocks) }

// BuildLoopGraph builds the dependence graph of a single-basic-block loop,
// including distance-1 loop-carried dependences.
func BuildLoopGraph(instrs []Instr) *Graph { return deps.BuildLoop(instrs) }

// CheckLegal verifies the paper's Definition 2.3 legality of a trace
// schedule for window size w: dependence/resource validity, the Window
// Constraint (every cross-block inversion spans ≤ w positions), and the
// Ordering Constraint (the schedule is the greedy execution of its own
// per-block orders).
func CheckLegal(s *Schedule, w int) error { return sched.CheckLegal(s, w) }

// CFG is a control-flow graph over compiled basic blocks, with
// statically-predicted (or profiled) edge probabilities, block frequency
// estimation, and Fisher-style trace selection.
type CFG = cfg.CFG

// BuildCFG builds the control-flow graph of a compiled mini-C program.
func BuildCFG(c *CompiledC) (*CFG, error) { return cfg.FromCompiled(c) }

// RenameRegisters rewrites a basic block so each definition targets a
// fresh register while preserving live-out values, removing the false
// (anti/output) register dependences that would otherwise serialize the
// schedule on multi-issue machines.
func RenameRegisters(instrs []Instr) []Instr { return regren.Rename(instrs) }

// RenameProgram renames every block of a program, reserving all registers
// the program references anywhere so cross-block live values are never
// clobbered. Prefer this over RenameRegisters for multi-block code.
func RenameProgram(blocks []AsmBlock) []AsmBlock { return regren.RenameBlocks(blocks) }

// MachineState is the architectural state of the functional ISA
// interpreter: register files and a sparse memory.
type MachineState = interp.State

// Interpret executes a program (blocks with labels, branches followed by
// label) on the functional interpreter, returning the final architectural
// state. A nil state starts from zeros; maxSteps ≤ 0 uses the default
// runaway-loop bound. Use it to check that scheduled or renamed code
// computes exactly what the original did.
func Interpret(blocks []AsmBlock, st *MachineState, maxSteps int) (*MachineState, error) {
	return interp.Run(blocks, st, maxSteps)
}

// EmitTrace renders a scheduled trace back to assembly text: block labels
// preserved, instructions in the anticipatory order within each block.
func EmitTrace(blocks []AsmBlock, orders map[int][]NodeID) (string, error) {
	return emit.Trace(blocks, orders)
}

// EmitLoop renders a scheduled single-block loop body back to assembly.
func EmitLoop(b AsmBlock, order []NodeID) (string, error) { return emit.Loop(b, order) }

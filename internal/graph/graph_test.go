package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	d := g.AddUnit("d")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(a, c, 0, 0)
	g.MustEdge(b, d, 1, 0)
	g.MustEdge(c, d, 0, 0)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		if id := g.AddUnit("n"); int(id) != i {
			t.Fatalf("AddUnit returned %d, want %d", id, i)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestAddNodeClampsExecTime(t *testing.T) {
	g := New(1)
	id := g.AddNode("x", 0, 0, 0)
	if e := g.Node(id).Exec; e != 1 {
		t.Fatalf("Exec = %d, want clamped 1", e)
	}
	id2 := g.AddNode("y", -3, 0, 0)
	if e := g.Node(id2).Exec; e != 1 {
		t.Fatalf("Exec = %d, want clamped 1", e)
	}
}

func TestAddEdgeRejectsBadEdges(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	cases := []struct {
		name              string
		src, dst          NodeID
		latency, distance int
	}{
		{"unknown src", 99, b, 0, 0},
		{"unknown dst", a, 99, 0, 0},
		{"negative src", -1, b, 0, 0},
		{"negative latency", a, b, -1, 0},
		{"negative distance", a, b, 0, -1},
		{"self loop-independent", a, a, 1, 0},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.src, c.dst, c.latency, c.distance); err == nil {
			t.Errorf("%s: AddEdge succeeded, want error", c.name)
		}
	}
}

func TestAddEdgeAllowsLoopCarriedSelfEdge(t *testing.T) {
	g := New(1)
	a := g.AddUnit("a")
	if err := g.AddEdge(a, a, 4, 1); err != nil {
		t.Fatalf("loop-carried self edge rejected: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeParallelKeepsMaxLatency(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(a, b, 3, 0) // should upgrade latency
	g.MustEdge(a, b, 2, 0) // should be ignored
	if n := g.NumEdges(); n != 1 {
		t.Fatalf("NumEdges = %d, want 1 (deduplicated)", n)
	}
	if l := g.Out(a)[0].Latency; l != 3 {
		t.Fatalf("out latency = %d, want 3", l)
	}
	if l := g.In(b)[0].Latency; l != 3 {
		t.Fatalf("in latency = %d, want 3 (in/out must stay consistent)", l)
	}
}

func TestParallelEdgesWithDifferentDistanceCoexist(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(a, b, 4, 1)
	if n := g.NumEdges(); n != 2 {
		t.Fatalf("NumEdges = %d, want 2", n)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, c, 0, 0)
	g.MustEdge(c, a, 0, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cyclic graph")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for cyclic graph")
	}
}

func TestTopoOrderIgnoresLoopCarriedCycle(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, a, 4, 1) // loop-carried back edge must not count as a cycle
	if !g.IsAcyclic() {
		t.Fatal("loop-carried back edge treated as cycle")
	}
}

func TestDescendantsAndAncestors(t *testing.T) {
	g := diamond(t)
	desc, err := g.Descendants()
	if err != nil {
		t.Fatal(err)
	}
	if got := desc[0].Count(); got != 3 {
		t.Fatalf("desc(a) count = %d, want 3", got)
	}
	if !desc[0].Has(3) || !desc[1].Has(3) || !desc[2].Has(3) {
		t.Fatal("d should descend from a, b, c")
	}
	if !desc[3].Empty() {
		t.Fatal("sink must have no descendants")
	}
	anc, err := g.Ancestors()
	if err != nil {
		t.Fatal(err)
	}
	if got := anc[3].Count(); got != 3 {
		t.Fatalf("anc(d) count = %d, want 3", got)
	}
	if !anc[0].Empty() {
		t.Fatal("source must have no ancestors")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v, want [3]", s)
	}
}

func TestSourcesSinksIgnoreLoopCarried(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, a, 1, 1)
	if s := g.Sources(); len(s) != 1 || s[0] != a {
		t.Fatalf("Sources = %v, want [a]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != b {
		t.Fatalf("Sinks = %v, want [b]", s)
	}
}

func TestCriticalPathLengths(t *testing.T) {
	g := diamond(t)
	cp, err := g.CriticalPathLengths()
	if err != nil {
		t.Fatal(err)
	}
	// d: 1. b: 1 + lat 1 + 1 = 3. c: 1 + 0 + 1 = 2. a: 1 + max(1+3, 0+2) = 5.
	want := []int{5, 3, 2, 1}
	for i, w := range want {
		if cp[i] != w {
			t.Fatalf("cp[%d] = %d, want %d (all %v)", i, cp[i], w, cp)
		}
	}
}

func TestEarliestStarts(t *testing.T) {
	g := diamond(t)
	est, err := g.EarliestStarts()
	if err != nil {
		t.Fatal(err)
	}
	// a at 0; b ≥ 1+1 = 2; c ≥ 1; d ≥ max(b.finish+1, c.finish+0) = max(3+1, 2) = 4.
	want := []int{0, 2, 1, 4}
	for i, w := range want {
		if est[i] != w {
			t.Fatalf("est[%d] = %d, want %d (all %v)", i, est[i], w, est)
		}
	}
}

func TestLoopIndependentStripsCarriedEdges(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(b, a, 4, 1)
	g.MustEdge(a, a, 1, 1)
	li := g.LoopIndependent()
	if li.NumEdges() != 1 {
		t.Fatalf("G_li edges = %d, want 1", li.NumEdges())
	}
	if li.HasLoopCarried() {
		t.Fatal("G_li still has loop-carried edges")
	}
	if !g.HasLoopCarried() {
		t.Fatal("original graph should report loop-carried edges")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	h := g.Clone()
	h.MustEdge(NodeID(0), NodeID(3), 5, 0)
	h.SetExec(NodeID(0), 7)
	if g.NumEdges() == h.NumEdges() {
		t.Fatal("clone shares edge storage with original")
	}
	if g.Node(0).Exec == 7 {
		t.Fatal("clone shares node storage with original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t)
	sub, ids := g.Induced(map[NodeID]bool{0: true, 1: true, 3: true})
	if sub.Len() != 3 {
		t.Fatalf("induced Len = %d, want 3", sub.Len())
	}
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 3 {
		t.Fatalf("id mapping = %v, want [0 1 3]", ids)
	}
	// Edges a→b and b→d survive; a→c, c→d are dropped with c.
	if sub.NumEdges() != 2 {
		t.Fatalf("induced edges = %d, want 2", sub.NumEdges())
	}
}

func TestDOTContainsAllNodesAndEdges(t *testing.T) {
	g := diamond(t)
	dot := g.DOT("d")
	for _, want := range []string{"n0", "n3", "<1,0>", "digraph"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomDAG builds a random DAG with edges only from lower to higher IDs.
func randomDAG(r *rand.Rand, n int, p float64, maxLat int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(NodeID(i), NodeID(j), r.Intn(maxLat+1), 0)
			}
		}
	}
	return g
}

func TestPropertyTopoOrderRespectsAllEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(30), 0.3, 2)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.Len())
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDescendantsMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20), 0.25, 1)
		desc, err := g.Descendants()
		if err != nil {
			return false
		}
		// Independent check: DFS from each node.
		for s := 0; s < g.Len(); s++ {
			seen := make(map[NodeID]bool)
			var stack []NodeID
			stack = append(stack, NodeID(s))
			for len(stack) > 0 {
				id := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range g.Out(id) {
					if !seen[e.Dst] {
						seen[e.Dst] = true
						stack = append(stack, e.Dst)
					}
				}
			}
			if len(seen) != desc[s].Count() {
				return false
			}
			for id := range seen {
				if !desc[s].Has(int(id)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEarliestStartLEQCriticalPathBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(25), 0.3, 3)
		est, err1 := g.EarliestStarts()
		cp, err2 := g.CriticalPathLengths()
		if err1 != nil || err2 != nil {
			return false
		}
		// est(v) + cp(v) is the length of some source-to-sink path through v,
		// so it is at most the overall critical path length.
		total := 0
		for i := range cp {
			if est[i]+cp[i] > total {
				total = est[i] + cp[i]
			}
		}
		for _, s := range g.Sources() {
			if cp[s] > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

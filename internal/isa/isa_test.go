package isa

import (
	"strings"
	"testing"

	"aisched/internal/machine"
)

func TestRegNaming(t *testing.T) {
	if GPR(6).String() != "r6" {
		t.Fatalf("GPR(6) = %s", GPR(6))
	}
	if CR(1).String() != "cr1" {
		t.Fatalf("CR(1) = %s", CR(1))
	}
	if !CR(0).IsCR() || GPR(0).IsCR() {
		t.Fatal("IsCR wrong")
	}
	if NoReg.Valid() {
		t.Fatal("NoReg should be invalid")
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in   Instr
		defs []Reg
		uses []Reg
	}{
		{Instr{Op: ADD, Dst: GPR(3), SrcA: GPR(1), SrcB: GPR(2)}, []Reg{GPR(3)}, []Reg{GPR(1), GPR(2)}},
		{Instr{Op: LOAD, Dst: GPR(6), Base: GPR(7), Imm: 4}, []Reg{GPR(6)}, []Reg{GPR(7)}},
		{Instr{Op: LOADU, Dst: GPR(6), Base: GPR(7), Imm: 4}, []Reg{GPR(6), GPR(7)}, []Reg{GPR(7)}},
		{Instr{Op: STORE, SrcA: GPR(0), Base: GPR(5), Imm: 4}, nil, []Reg{GPR(0), GPR(5)}},
		{Instr{Op: STOREU, SrcA: GPR(0), Base: GPR(5), Imm: 4}, []Reg{GPR(5)}, []Reg{GPR(0), GPR(5)}},
		{Instr{Op: CMPI, Dst: CR(1), SrcA: GPR(6)}, []Reg{CR(1)}, []Reg{GPR(6)}},
		{Instr{Op: BT, SrcA: CR(1), Target: "L"}, nil, []Reg{CR(1)}},
		{Instr{Op: B, Target: "L"}, nil, nil},
		{Instr{Op: NOP}, nil, nil},
	}
	for _, c := range cases {
		if got := c.in.Defs(); !sameRegs(got, c.defs) {
			t.Errorf("%s: Defs = %v, want %v", c.in, got, c.defs)
		}
		if got := c.in.Uses(); !sameRegs(got, c.uses) {
			t.Errorf("%s: Uses = %v, want %v", c.in, got, c.uses)
		}
	}
}

func sameRegs(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLatencyClassExec(t *testing.T) {
	if (Instr{Op: LOAD}).Latency() != 1 || (Instr{Op: MUL}).Latency() != 4 || (Instr{Op: ADD}).Latency() != 0 {
		t.Fatal("latency table wrong")
	}
	if (Instr{Op: DIV}).Exec() != 4 || (Instr{Op: ADD}).Exec() != 1 {
		t.Fatal("exec table wrong")
	}
	if (Instr{Op: MUL}).Class() != machine.ClassFloat {
		t.Fatal("MUL class wrong")
	}
	if (Instr{Op: BT}).Class() != machine.ClassBranch {
		t.Fatal("BT class wrong")
	}
	if (Instr{Op: LOAD}).Class() != machine.ClassFixed {
		t.Fatal("LOAD class wrong")
	}
}

func TestMemPredicates(t *testing.T) {
	if !(Instr{Op: LOADU}).ReadsMem() || (Instr{Op: LOADU}).WritesMem() {
		t.Fatal("LOADU predicates wrong")
	}
	if !(Instr{Op: STORE}).WritesMem() || (Instr{Op: STORE}).ReadsMem() {
		t.Fatal("STORE predicates wrong")
	}
	if !(Instr{Op: BT}).IsBranch() || (Instr{Op: ADD}).IsBranch() {
		t.Fatal("IsBranch wrong")
	}
}

func TestParseFigure3Assembly(t *testing.T) {
	src := `
CL.18:
	loadu  r6, 4(r7)   ; load x[i] into r6, update index
	storeu r0, 4(r5)   ; store r0 into y[i-1], update index
	cmpi   cr1, r6, 0  ; compare x[i] with 0
	mul    r0, r6, r0  ; y[i] = y[i-1] * x[i]
	bt     cr1, CL.1   ; exit if x[i] == 0
`
	blocks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(blocks))
	}
	b := blocks[0]
	if b.Label != "CL.18" {
		t.Fatalf("label = %q", b.Label)
	}
	wantOps := []Opcode{LOADU, STOREU, CMPI, MUL, BT}
	if len(b.Instrs) != len(wantOps) {
		t.Fatalf("got %d instrs", len(b.Instrs))
	}
	for i, op := range wantOps {
		if b.Instrs[i].Op != op {
			t.Fatalf("instr %d = %s, want %s", i, b.Instrs[i].Op, op)
		}
	}
	if b.Instrs[0].Dst != GPR(6) || b.Instrs[0].Base != GPR(7) || b.Instrs[0].Imm != 4 {
		t.Fatalf("loadu parsed wrong: %+v", b.Instrs[0])
	}
	if b.Instrs[4].SrcA != CR(1) || b.Instrs[4].Target != "CL.1" {
		t.Fatalf("bt parsed wrong: %+v", b.Instrs[4])
	}
}

func TestParseRoundTrip(t *testing.T) {
	lines := []string{
		"nop",
		"li r3, 42",
		"mov r4, r3",
		"add r5, r3, r4",
		"addi r5, r5, -8",
		"mul r0, r6, r0",
		"div r9, r5, r3",
		"load r6, 4(r7)",
		"loadu r6, 4(r7)",
		"store r0, 4(r5)",
		"storeu r0, 4(r5)",
		"cmp cr2, r1, r2",
		"cmp.lt cr2, r1, r2",
		"cmpi.eq cr1, r6, 0",
		"cmpi.ge cr3, r2, -5",
		"cmpi cr1, r6, 0",
		"bt cr1, CL.1",
		"bf cr1, CL.2",
		"b CL.18",
	}
	for _, line := range lines {
		in, err := ParseInstr(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		again, err := ParseInstr(in.Mnemonic())
		if err != nil {
			t.Fatalf("round trip %q -> %q: %v", line, in.Mnemonic(), err)
		}
		if again.Op != in.Op || again.Dst != in.Dst || again.SrcA != in.SrcA ||
			again.SrcB != in.SrcB || again.Imm != in.Imm || again.Base != in.Base ||
			again.Target != in.Target || again.Cond != in.Cond {
			t.Fatalf("round trip mismatch: %q vs %q", in.Mnemonic(), again.Mnemonic())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1",
		"add r1, r2",
		"add r1, r2, r3, r4",
		"li r99, 1",
		"li cr1, 1",
		"cmp r1, r2, r3",
		"bt r1, L",
		"load r1, r2",
		"load r1, 4(cr1)",
		"li r1, xyz",
	}
	for _, line := range bad {
		if _, err := ParseInstr(line); err == nil {
			t.Errorf("%q: parse succeeded, want error", line)
		}
	}
}

func TestParseSplitsBlocksAtBranches(t *testing.T) {
	src := `
	li r1, 1
	b L2
	li r2, 2
L2:
	li r3, 3
`
	blocks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if blocks[0].Label != "entry" || len(blocks[0].Instrs) != 2 {
		t.Fatalf("entry block wrong: %+v", blocks[0])
	}
	if blocks[2].Label != "L2" {
		t.Fatalf("third block label = %q", blocks[2].Label)
	}
}

func TestFormatContainsAllInstrs(t *testing.T) {
	ins := []Instr{
		{Op: LI, Dst: GPR(1), Imm: 7},
		{Op: ADD, Dst: GPR(2), SrcA: GPR(1), SrcB: GPR(1)},
	}
	out := Format(ins)
	if !strings.Contains(out, "li r1, 7") || !strings.Contains(out, "add r2, r1, r1") {
		t.Fatalf("Format output:\n%s", out)
	}
}

func TestValidateRejectsWrongRegisterFiles(t *testing.T) {
	bad := []Instr{
		{Op: ADD, Dst: CR(1), SrcA: GPR(1), SrcB: GPR(2)},
		{Op: CMP, Dst: GPR(1), SrcA: GPR(1), SrcB: GPR(2)},
		{Op: BT, SrcA: GPR(1), Target: "L"},
		{Op: BT, SrcA: CR(1)}, // missing target
		{Op: LOAD, Dst: GPR(1), Base: NoReg},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%+v validated, want error", in)
		}
	}
}

package cfg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/deps"
	"aisched/internal/minic"
	"aisched/internal/workload"
)

func compile(t *testing.T, src string) *minic.Compiled {
	t.Helper()
	c, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const branchy = `
int a;
int b;
a = 1;
if (a > 0) { b = 2; } else { b = 3; }
b = b + 1;
`

const loopy = `
int i;
int s;
s = 0;
for (i = 0; i < 10; i = i + 1) { s = s + i; }
s = s * 2;
`

func TestFromCompiledBranchShape(t *testing.T) {
	g, err := FromCompiled(compile(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	// Entry block ends in BF: two successors whose probabilities sum to 1.
	var brBlock *Block
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.IsBranch() && in.Target != "" && len(b.Succs) == 2 {
				brBlock = b
			}
		}
	}
	if brBlock == nil {
		t.Fatal("no two-way block found")
	}
	sum := 0.0
	for _, e := range brBlock.Succs {
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("branch probabilities sum to %f", sum)
	}
}

func TestWeightsLoopBodyHeavy(t *testing.T) {
	g, err := FromCompiled(compile(t, loopy))
	if err != nil {
		t.Fatal(err)
	}
	w := g.Weights()
	// The loop body block (ends in a backward BT) must be the heaviest.
	bodyIdx := -1
	for i, b := range g.Blocks {
		if n := len(b.Instrs); n > 0 {
			last := b.Instrs[n-1]
			if last.IsBranch() && last.Target != "" {
				if to, ok := g.byName[last.Target]; ok && to <= i {
					bodyIdx = i
				}
			}
		}
	}
	if bodyIdx < 0 {
		t.Fatal("no loop body found")
	}
	for i := range w {
		if i != bodyIdx && w[i] > w[bodyIdx] {
			t.Fatalf("block %d (%.2f) heavier than loop body %d (%.2f)", i, w[i], bodyIdx, w[bodyIdx])
		}
	}
	// Back-edge probability 0.9 → body weight ≈ entry × 1/(1−0.9) ≈ 10.
	if w[bodyIdx] < 5 {
		t.Fatalf("loop body weight %.2f implausibly low", w[bodyIdx])
	}
}

func TestSelectTracesPartition(t *testing.T) {
	g, err := FromCompiled(compile(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	traces := g.SelectTraces()
	seen := map[int]bool{}
	for _, tr := range traces {
		for _, b := range tr {
			if seen[b] {
				t.Fatalf("block %d in two traces", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != len(g.Blocks) {
		t.Fatalf("traces cover %d of %d blocks", len(seen), len(g.Blocks))
	}
	// The hot trace follows the fall-through (not-taken) side of the
	// forward branch: it must contain more than one block.
	if len(traces[0]) < 2 {
		t.Fatalf("hot trace too short: %v", traces[0])
	}
}

func TestHotTraceSchedulable(t *testing.T) {
	g, err := FromCompiled(compile(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	instrs, blocks := g.HotTrace()
	if len(instrs) == 0 || len(blocks) == 0 {
		t.Fatal("empty hot trace")
	}
	tg := deps.BuildTrace(instrs)
	if !tg.IsAcyclic() {
		t.Fatal("hot trace graph cyclic")
	}
}

func TestSetProfileOverridesSelection(t *testing.T) {
	g, err := FromCompiled(compile(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	// Find the two-way block and force the taken side to probability 1.
	for i, b := range g.Blocks {
		if len(b.Succs) == 2 {
			if err := g.SetProfile(i, []float64{1, 0}); err != nil {
				t.Fatal(err)
			}
			if g.Blocks[b.Succs[0].To].Preds[0].Prob != 1 && len(g.Blocks[b.Succs[0].To].Preds) > 0 {
				// pred mirror rebuilt; probability visible from the To side
				found := false
				for _, p := range g.Blocks[b.Succs[0].To].Preds {
					if p.To == i && p.Prob == 1 {
						found = true
					}
				}
				if !found {
					t.Fatal("pred mirror not rebuilt")
				}
			}
			return
		}
	}
	t.Fatal("no two-way block found")
}

func TestSetProfileValidation(t *testing.T) {
	g, err := FromCompiled(compile(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetProfile(-1, nil); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := g.SetProfile(0, []float64{0.5, 0.25, 0.25}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestPropertyCFGOnRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		g, err := FromCompiled(comp)
		if err != nil {
			return false
		}
		// Successor probabilities of every block sum to 1 (or 0 for exits).
		for _, b := range g.Blocks {
			sum := 0.0
			for _, e := range b.Succs {
				if e.To < 0 || e.To >= len(g.Blocks) {
					return false
				}
				sum += e.Prob
			}
			if len(b.Succs) > 0 && math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		// Traces partition the blocks.
		traces := g.SelectTraces()
		seen := map[int]bool{}
		for _, tr := range traces {
			for _, bi := range tr {
				if seen[bi] {
					return false
				}
				seen[bi] = true
			}
		}
		return len(seen) == len(g.Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

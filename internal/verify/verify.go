// Package verify provides exhaustive/branch-and-bound optimality oracles
// used by the T4 experiments and property tests: the executable analogue of
// the paper's optimality proofs (which live in the unpublished technical
// report [11]). Everything here is exponential-time and guarded for small
// instances only.
package verify

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/loops"
	"aisched/internal/machine"
)

// MaxNodes bounds the instance size accepted by the oracles.
const MaxNodes = 16

// OptimalMakespan computes the true minimum makespan of a basic-block graph
// on a single functional unit by branch-and-bound over active schedules (no
// unit left idle while an instruction is ready — sufficient for optimality
// on one machine, by an exchange argument).
func OptimalMakespan(g *graph.Graph, m *machine.Machine) (int, error) {
	n := g.Len()
	if n == 0 {
		return 0, nil
	}
	if n > MaxNodes {
		return 0, fmt.Errorf("verify: %d nodes exceeds oracle limit %d", n, MaxNodes)
	}
	if !m.SingleUnitOnly() {
		return 0, fmt.Errorf("verify: OptimalMakespan supports single-unit machines only")
	}
	if !g.IsAcyclic() {
		return 0, fmt.Errorf("verify: cyclic graph")
	}
	cp, err := g.CriticalPathLengths()
	if err != nil {
		return 0, err
	}
	totalExec := 0
	for v := 0; v < n; v++ {
		totalExec += g.Node(graph.NodeID(v)).Exec
	}

	best := 1 << 30
	finish := make([]int, n)
	var dfs func(mask uint32, t, doneExec int)
	dfs = func(mask uint32, t, doneExec int) {
		if mask == (1<<uint(n))-1 {
			max := 0
			for v := 0; v < n; v++ {
				if finish[v] > max {
					max = finish[v]
				}
			}
			if max < best {
				best = max
			}
			return
		}
		// Lower bounds: remaining serial work, and critical path from any
		// unscheduled node released at ≥ its earliest possible start.
		lb := t + totalExec - doneExec
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) == 0 {
				r := release(g, mask, finish, graph.NodeID(v))
				if r >= 0 && r+cp[v] > lb {
					lb = r + cp[v]
				}
			}
		}
		if lb >= best {
			return
		}
		// Next decision time: the earliest release among schedulable nodes.
		next := -1
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				continue
			}
			r := release(g, mask, finish, graph.NodeID(v))
			if r < 0 {
				continue
			}
			if r < t {
				r = t
			}
			if next == -1 || r < next {
				next = r
			}
		}
		if next == -1 {
			return // nothing schedulable: impossible in a DAG
		}
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				continue
			}
			r := release(g, mask, finish, graph.NodeID(v))
			if r < 0 || r > next {
				continue
			}
			e := g.Node(graph.NodeID(v)).Exec
			finish[v] = next + e
			dfs(mask|1<<uint(v), next+e, doneExec+e)
			finish[v] = 0
		}
	}
	dfs(0, 0, 0)
	return best, nil
}

// release returns the earliest start of v given placed predecessors, or -1
// if some predecessor is unscheduled.
func release(g *graph.Graph, mask uint32, finish []int, v graph.NodeID) int {
	r := 0
	for _, e := range g.In(v) {
		if e.Distance != 0 {
			continue
		}
		if mask&(1<<uint(e.Src)) == 0 {
			return -1
		}
		if c := finish[e.Src] + e.Latency; c > r {
			r = c
		}
	}
	return r
}

// OptimalTraceCompletion finds the best dynamic completion time achievable
// by ANY choice of per-block static orders (each topologically valid within
// its block), measured by the lookahead-window simulator — the ground-truth
// optimum that Algorithm Lookahead targets. Exponential in block sizes.
func OptimalTraceCompletion(g *graph.Graph, m *machine.Machine) (int, []graph.NodeID, error) {
	n := g.Len()
	if n > MaxNodes {
		return 0, nil, fmt.Errorf("verify: %d nodes exceeds oracle limit %d", n, MaxNodes)
	}
	blockPerms, err := perBlockTopoOrders(g)
	if err != nil {
		return 0, nil, err
	}
	best := 1 << 30
	var bestOrder []graph.NodeID
	var walk func(i int, acc []graph.NodeID)
	walk = func(i int, acc []graph.NodeID) {
		if i == len(blockPerms) {
			res, err := hw.SimulateTrace(g, m, acc)
			if err != nil {
				return // deadlocking order: not achievable, skip
			}
			if res.Completion < best {
				best = res.Completion
				bestOrder = append([]graph.NodeID(nil), acc...)
			}
			return
		}
		for _, p := range blockPerms[i] {
			walk(i+1, append(acc, p...))
		}
	}
	walk(0, nil)
	if bestOrder == nil {
		return 0, nil, fmt.Errorf("verify: no executable order found")
	}
	return best, bestOrder, nil
}

// perBlockTopoOrders enumerates all topologically valid permutations of
// each block's instructions (intra-block edges only).
func perBlockTopoOrders(g *graph.Graph) ([][][]graph.NodeID, error) {
	blockIDs := map[int][]graph.NodeID{}
	var blocks []int
	for v := 0; v < g.Len(); v++ {
		b := g.Node(graph.NodeID(v)).Block
		if _, ok := blockIDs[b]; !ok {
			blocks = append(blocks, b)
		}
		blockIDs[b] = append(blockIDs[b], graph.NodeID(v))
	}
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j] < blocks[j-1]; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
	var out [][][]graph.NodeID
	for _, b := range blocks {
		ids := blockIDs[b]
		inBlock := map[graph.NodeID]bool{}
		for _, id := range ids {
			inBlock[id] = true
		}
		var perms [][]graph.NodeID
		used := map[graph.NodeID]bool{}
		var cur []graph.NodeID
		var gen func()
		gen = func() {
			if len(cur) == len(ids) {
				perms = append(perms, append([]graph.NodeID(nil), cur...))
				return
			}
			for _, id := range ids {
				if used[id] {
					continue
				}
				ok := true
				for _, e := range g.In(id) {
					if e.Distance == 0 && inBlock[e.Src] && !used[e.Src] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				used[id] = true
				cur = append(cur, id)
				gen()
				cur = cur[:len(cur)-1]
				used[id] = false
			}
		}
		gen()
		if len(perms) == 0 {
			return nil, fmt.Errorf("verify: block %d has no topological order", b)
		}
		out = append(out, perms)
	}
	return out, nil
}

// OptimalLoopII finds the minimum periodic initiation interval over all
// topologically valid single-block loop body orders (brute force).
func OptimalLoopII(g *graph.Graph, m *machine.Machine) (*loops.Steady, error) {
	if g.Len() > 10 {
		return nil, fmt.Errorf("verify: %d nodes exceeds loop oracle limit 10", g.Len())
	}
	perms, err := perBlockTopoOrders(g)
	if err != nil {
		return nil, err
	}
	if len(perms) != 1 {
		return nil, fmt.Errorf("verify: OptimalLoopII expects a single-block loop")
	}
	var best *loops.Steady
	for _, order := range perms[0] {
		st, err := loops.Evaluate(g, m, order)
		if err != nil {
			return nil, err
		}
		if best == nil || st.II < best.II || (st.II == best.II && st.Makespan < best.Makespan) {
			best = st
		}
	}
	return best, nil
}

// LatestIdleSlots computes, over ALL minimum-makespan active schedules of a
// single-unit restricted instance, the latest achievable start time of each
// idle-slot ordinal — the oracle for the paper's §3 claim that repeated
// Move_Idle_Slot application yields a minimum-makespan schedule whose idle
// slots each occur as late as possible. Returns the optimal makespan and,
// for each ordinal i (0-based), the maximum over optimal schedules of the
// i-th idle slot's start time. Exponential; guarded by MaxNodes.
func LatestIdleSlots(g *graph.Graph, m *machine.Machine) (int, []int, error) {
	n := g.Len()
	if n == 0 {
		return 0, nil, nil
	}
	if n > MaxNodes {
		return 0, nil, fmt.Errorf("verify: %d nodes exceeds oracle limit %d", n, MaxNodes)
	}
	if !m.SingleUnitOnly() {
		return 0, nil, fmt.Errorf("verify: LatestIdleSlots supports single-unit machines only")
	}
	opt, err := OptimalMakespan(g, m)
	if err != nil {
		return 0, nil, err
	}
	// Number of idle slots in any optimal schedule of a UET instance is
	// fixed: opt − total exec time.
	total := 0
	for v := 0; v < n; v++ {
		total += g.Node(graph.NodeID(v)).Exec
	}
	slots := opt - total
	if slots <= 0 {
		return opt, nil, nil
	}
	best := make([]int, slots)
	for i := range best {
		best[i] = -1
	}

	finish := make([]int, n)
	var dfs func(mask uint32, t int)
	dfs = func(mask uint32, t int) {
		if mask == (1<<uint(n))-1 {
			if t != opt {
				return
			}
			// Reconstruct idle starts from finish times.
			busy := make([]bool, opt)
			for v := 0; v < n; v++ {
				for c := finish[v] - g.Node(graph.NodeID(v)).Exec; c < finish[v]; c++ {
					busy[c] = true
				}
			}
			ord := 0
			for c := 0; c < opt && ord < slots; c++ {
				if !busy[c] {
					if c > best[ord] {
						best[ord] = c
					}
					ord++
				}
			}
			return
		}
		if t >= opt {
			return
		}
		// Active schedules plus deliberate idling (idling is allowed in the
		// enumeration because the slot positions are what we maximize).
		next := opt + 1
		anyReady := false
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				continue
			}
			r := release(g, mask, finish, graph.NodeID(v))
			if r < 0 {
				continue
			}
			if r <= t {
				anyReady = true
				e := g.Node(graph.NodeID(v)).Exec
				finish[v] = t + e
				dfs(mask|1<<uint(v), t+e)
				finish[v] = 0
			} else if r < next {
				next = r
			}
		}
		// Idle this cycle: either forced (nothing ready) or deliberate.
		if !anyReady && next <= opt {
			dfs(mask, next)
		} else if anyReady {
			dfs(mask, t+1) // deliberate idle cycle
		}
	}
	dfs(0, 0)
	return opt, best, nil
}

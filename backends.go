package aisched

import (
	"fmt"

	"aisched/internal/core"
	"aisched/internal/opt"
	"aisched/internal/sched"
)

// Backend is the pluggable engine-level scheduling interface: graph +
// machine in, a validated schedule and its emitted static order out. Two
// implementations ship with the package — the Algorithm Lookahead heuristic
// pipeline and the exact branch-and-bound oracle (internal/opt) — and the
// planned aischedd service dispatches on this seam.
type Backend = sched.Backend

// BackendResult is what a Backend produces: the static per-block
// instruction order and a schedule that Validate()s.
type BackendResult = sched.BackendResult

// ExactLimits caps the exact backend's branch-and-bound search (node count
// and expansion budget); zero values select safe defaults.
type ExactLimits = opt.Limits

// ErrExactTooLarge and ErrExactBudget are the exact backend's "oracle
// unavailable" errors: the instance exceeds the node cap, or the search
// budget ran out before the optimum was proved.
var (
	ErrExactTooLarge = opt.ErrTooLarge
	ErrExactBudget   = opt.ErrBudget
)

// HeuristicBackend returns the default production backend: Algorithm
// Lookahead (provably optimal in the paper's restricted model, the
// recommended heuristic on §4.2 machines).
func HeuristicBackend() Backend { return core.HeuristicBackend{} }

// ExactBackend returns the exact branch-and-bound backend: provably optimal
// for the full multi-FU/non-unit-latency window model, exponential in the
// worst case, and therefore capped by lim. Use it as a differential oracle
// and for small hot blocks where optimality is worth the search.
func ExactBackend(lim ExactLimits) Backend { return opt.NewBackend(lim) }

// BackendByName resolves a CLI-style backend name ("heuristic", "exact").
func BackendByName(name string) (Backend, error) {
	switch name {
	case "", "heuristic":
		return HeuristicBackend(), nil
	case "exact":
		return ExactBackend(ExactLimits{}), nil
	default:
		return nil, fmt.Errorf("aisched: unknown backend %q (want heuristic or exact)", name)
	}
}

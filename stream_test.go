package aisched

// Streaming scheduler properties:
//
//   - k = LookaheadUnbounded is bit-identical to batch ScheduleTrace: same
//     per-block static orders, same absolute starts and units, same
//     makespan (the engine is the batch driver with the already-committed
//     prefix physically discarded).
//   - Every finite k yields a legal schedule (dependences, unit exclusivity,
//     block-grouped orders) whose emit lag never exceeds k.
//   - Cancelling at any push poisons the stream but never tears the emitted
//     prefix; budget exhaustion degrades the live window and keeps going.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"aisched/internal/faultinject"
	"aisched/internal/machine"
	"aisched/internal/sched"
	"aisched/internal/workload"

	"aisched/internal/testutil"
)

// streamAll pushes every block of g through a fresh StreamScheduler and
// flushes, returning the results in emission order.
func streamAll(t *testing.T, g *Graph, m *Machine, opt StreamOptions) []*BlockResult {
	t.Helper()
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatalf("TraceStreamBlocks: %v", err)
	}
	ss := NewStreamScheduler(m, opt)
	var all []*BlockResult
	for i, b := range blocks {
		res, err := ss.Push(b)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		all = append(all, res...)
	}
	tail, err := ss.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	return append(all, tail...)
}

// streamSchedule reassembles the emitted BlockResults into a full Schedule
// over g and validates it (dependence latencies, unit ranges, exclusivity).
func streamSchedule(t *testing.T, g *Graph, m *Machine, results []*BlockResult) *Schedule {
	t.Helper()
	n := g.Len()
	s := &sched.Schedule{G: g, M: m, Start: make([]int, n), Unit: make([]int, n)}
	for i := range s.Start {
		s.Start[i] = sched.Unassigned
	}
	seen := 0
	for _, r := range results {
		for i, id := range r.Order {
			if s.Start[id] != sched.Unassigned {
				t.Fatalf("node %d emitted twice", id)
			}
			s.Start[id] = r.Start[i]
			s.Unit[id] = r.Unit[i]
			seen++
		}
	}
	if seen != n {
		t.Fatalf("stream emitted %d of %d nodes", seen, n)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("streamed schedule invalid: %v", err)
	}
	return s
}

// TestStreamUnboundedBitIdenticalToBatch: with the chop rule as the only
// finality source, streaming must reproduce the batch result exactly —
// orders, absolute starts, units, and makespan — across random mixed-latency
// and restricted-model traces.
func TestStreamUnboundedBitIdenticalToBatch(t *testing.T) {
	configs := map[string]workload.TraceConfig{
		"mixed":      workload.DefaultTrace(),
		"restricted": restrictedTrace(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 25; seed++ {
				g, err := workload.Trace(rand.New(rand.NewSource(seed)), cfg)
				if err != nil {
					t.Fatal(err)
				}
				m := SingleUnit(4)
				batch, err := ScheduleTrace(g, m)
				if err != nil {
					t.Fatal(err)
				}
				results := streamAll(t, g, m, StreamOptions{Lookahead: LookaheadUnbounded})
				_, nums, err := TraceStreamBlocks(g)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != len(nums) {
					t.Fatalf("seed %d: %d block results, want %d", seed, len(results), len(nums))
				}
				for i, r := range results {
					if r.Block != i {
						t.Fatalf("seed %d: results out of order: got block %d at %d", seed, r.Block, i)
					}
					want := batch.BlockOrders[nums[i]]
					if len(r.Order) != len(want) {
						t.Fatalf("seed %d block %d: %d nodes, want %d", seed, i, len(r.Order), len(want))
					}
					for j := range want {
						if r.Order[j] != want[j] {
							t.Fatalf("seed %d block %d: order[%d] = %d, batch has %d",
								seed, i, j, r.Order[j], want[j])
						}
						if r.Start[j] != batch.S.Start[want[j]] || r.Unit[j] != batch.S.Unit[want[j]] {
							t.Fatalf("seed %d block %d node %d: placement (%d,%d), batch (%d,%d)",
								seed, i, want[j], r.Start[j], r.Unit[j],
								batch.S.Start[want[j]], batch.S.Unit[want[j]])
						}
					}
				}
			}
		})
	}
}

// TestStreamLegalAcrossLookahead: every lookahead — fully online through
// unbounded — must emit a complete, dependence- and resource-legal schedule
// with emit lag bounded by k, on single- and multi-unit machines.
func TestStreamLegalAcrossLookahead(t *testing.T) {
	machines := map[string]*Machine{
		"single-w4": SingleUnit(4),
		"rs6000":    machine.RS6000(4),
	}
	for mname, m := range machines {
		for _, k := range []int{0, 1, 2, 4, LookaheadUnbounded} {
			for seed := int64(1); seed <= 10; seed++ {
				g, err := workload.Trace(rand.New(rand.NewSource(seed)), workload.DefaultTrace())
				if err != nil {
					t.Fatal(err)
				}
				results := streamAll(t, g, m, StreamOptions{Lookahead: k})
				streamSchedule(t, g, m, results)
				for i, r := range results {
					if r.Block != i {
						t.Fatalf("%s k=%d seed %d: block %d emitted at position %d", mname, k, seed, r.Block, i)
					}
					if k != LookaheadUnbounded && r.Lag > k {
						t.Fatalf("%s k=%d seed %d: block %d lag %d exceeds lookahead", mname, k, seed, r.Block, r.Lag)
					}
					if r.Degraded != "" {
						t.Fatalf("%s k=%d seed %d: unexpected degradation %q", mname, k, seed, r.Degraded)
					}
				}
			}
		}
	}
}

// TestStreamFullyOnlineImmediate: with k = 0 every push finalizes its own
// block immediately — the O(block) time-to-first-schedule guarantee.
func TestStreamFullyOnlineImmediate(t *testing.T) {
	g, err := workload.Trace(rand.New(rand.NewSource(3)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamScheduler(SingleUnit(4), StreamOptions{})
	for i, b := range blocks {
		res, err := ss.Push(b)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if len(res) != 1 || res[0].Block != i || res[0].Lag != 0 {
			t.Fatalf("push %d: want immediate finalization of block %d, got %+v", i, i, res)
		}
		if ss.SuffixLen() != 0 {
			t.Fatalf("push %d: fully online stream carries %d suffix nodes", i, ss.SuffixLen())
		}
	}
	if tail, err := ss.Flush(); err != nil || len(tail) != 0 {
		t.Fatalf("flush after fully-online stream: %v results, err %v", tail, err)
	}
}

// TestStreamOnResult: the callback sees every finalized block exactly once,
// including blocks finalized by Close.
func TestStreamOnResult(t *testing.T) {
	g, err := workload.Trace(rand.New(rand.NewSource(7)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	var got []*BlockResult
	ss := NewStreamScheduler(SingleUnit(4), StreamOptions{
		Lookahead: LookaheadUnbounded,
		OnResult:  func(r *BlockResult) { got = append(got, r) },
	})
	for i, b := range blocks {
		if _, err := ss.Push(b); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("OnResult saw %d blocks, want %d", len(got), len(blocks))
	}
	for i, r := range got {
		if r.Block != i {
			t.Fatalf("OnResult order: block %d at position %d", r.Block, i)
		}
	}
	if _, err := ss.Push(blocks[0]); err != ErrStreamClosed {
		t.Fatalf("push after close = %v, want ErrStreamClosed", err)
	}
	if _, err := ss.Flush(); err != ErrStreamClosed {
		t.Fatalf("flush after close = %v, want ErrStreamClosed", err)
	}
}

// TestStreamCancelEveryPush: cancelling at each successive push must poison
// the stream with the context's error while leaving every previously emitted
// block intact — a finalized prefix is never torn.
func TestStreamCancelEveryPush(t *testing.T) {
	g, err := workload.Trace(rand.New(rand.NewSource(5)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	for cancelAt := 0; cancelAt < len(blocks); cancelAt++ {
		ss := NewStreamScheduler(m, StreamOptions{Lookahead: 1})
		var emitted []*BlockResult
		var pushErr error
		for i, b := range blocks {
			ctx := context.Background()
			if i == cancelAt {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			}
			res, err := ss.PushCtx(ctx, b)
			if i == cancelAt {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelAt %d: push error %v, want context.Canceled", cancelAt, err)
				}
				pushErr = err
				break
			}
			if err != nil {
				t.Fatalf("cancelAt %d push %d: %v", cancelAt, i, err)
			}
			emitted = append(emitted, res...)
		}
		if _, err := ss.Push(blocks[0]); err != pushErr {
			t.Fatalf("cancelAt %d: poisoned stream returned %v, want %v", cancelAt, err, pushErr)
		}
		if _, err := ss.Flush(); err != pushErr {
			t.Fatalf("cancelAt %d: flush on poisoned stream returned %v, want %v", cancelAt, err, pushErr)
		}
		// The emitted prefix must be whole blocks, in order, each complete.
		blockLens := make(map[int]int)
		for i, b := range blocks {
			blockLens[i] = len(b.Nodes)
		}
		for i, r := range emitted {
			if r.Block != i {
				t.Fatalf("cancelAt %d: emitted block %d at position %d", cancelAt, r.Block, i)
			}
			if len(r.Order) != blockLens[r.Block] {
				t.Fatalf("cancelAt %d: block %d torn: %d of %d nodes",
					cancelAt, r.Block, len(r.Order), blockLens[r.Block])
			}
		}
	}
}

// TestStreamBudgetDegradeMidStream: exhausting the budget on one mid-stream
// push finalizes the live window with the tagged baseline schedule and keeps
// the stream accepting; the overall output still covers every block and
// stays legal.
func TestStreamBudgetDegradeMidStream(t *testing.T) {
	defer faultinject.Reset()
	exhaust := false
	faultinject.BudgetExhaust = func() bool { return exhaust }

	g, err := workload.Trace(rand.New(rand.NewSource(9)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 4 {
		t.Fatalf("need ≥4 blocks, workload produced %d", len(blocks))
	}
	m := SingleUnit(4)
	ss := NewStreamScheduler(m, StreamOptions{Lookahead: LookaheadUnbounded})
	var all []*BlockResult
	degradeAt := len(blocks) / 2
	for i, b := range blocks {
		exhaust = i == degradeAt
		res, err := ss.Push(b)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		all = append(all, res...)
		if i == degradeAt {
			// The degraded push finalizes everything live, so all blocks up
			// to and including this one must now be out, tagged.
			if len(all) != i+1 {
				t.Fatalf("degraded push %d: %d blocks emitted, want %d", i, len(all), i+1)
			}
			if all[len(all)-1].Degraded == "" {
				t.Fatalf("degraded push %d: block %d not tagged", i, all[len(all)-1].Block)
			}
		}
	}
	exhaust = false
	tail, err := ss.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	all = append(all, tail...)
	streamSchedule(t, g, m, all)
	for i, r := range all {
		if r.Block != i {
			t.Fatalf("block %d emitted at position %d", r.Block, i)
		}
		if i > degradeAt && r.Degraded != "" {
			t.Fatalf("post-degrade block %d still tagged %q", i, r.Degraded)
		}
	}
}

// TestStreamContinuesAfterFlush: Flush is a fence, not an end — pushes after
// it start a fresh suffix placed after the flushed schedule.
func TestStreamContinuesAfterFlush(t *testing.T) {
	g, err := workload.Trace(rand.New(rand.NewSource(13)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	ss := NewStreamScheduler(m, StreamOptions{Lookahead: LookaheadUnbounded})
	var all []*BlockResult
	for i, b := range blocks {
		if i == len(blocks)/2 {
			mid, err := ss.Flush()
			if err != nil {
				t.Fatalf("mid-stream flush: %v", err)
			}
			all = append(all, mid...)
		}
		res, err := ss.Push(b)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		all = append(all, res...)
	}
	tail, err := ss.Flush()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, tail...)
	streamSchedule(t, g, m, all)
}

// TestStreamInputValidation: malformed pushes fail fast with a poisoned
// stream, and TraceStreamBlocks rejects graphs it cannot stream.
func TestStreamInputValidation(t *testing.T) {
	m := SingleUnit(4)

	ss := NewStreamScheduler(m, StreamOptions{})
	if _, err := ss.Push(StreamBlock{}); err == nil {
		t.Fatal("empty block accepted")
	}

	ss = NewStreamScheduler(m, StreamOptions{})
	bad := StreamBlock{
		Nodes: []StreamNode{{Label: "a"}},
		Deps:  []StreamDep{{Src: 0, Dst: 5, Latency: 0}},
	}
	if _, err := ss.Push(bad); err == nil {
		t.Fatal("dep targeting outside the pushed block accepted")
	}

	// Interleaved blocks cannot be streamed.
	g := NewGraph(3)
	g.SetBlock(g.AddUnit("a"), 0)
	g.SetBlock(g.AddUnit("b"), 1)
	g.SetBlock(g.AddUnit("c"), 0)
	if _, _, err := TraceStreamBlocks(g); err == nil {
		t.Fatal("interleaved block numbering accepted")
	}

	// Loop-carried edges cannot be streamed.
	g2 := NewGraph(2)
	a := g2.AddUnit("a")
	b := g2.AddUnit("b")
	g2.SetBlock(b, 1)
	g2.MustEdge(a, b, 0, 0)
	g2.MustEdge(b, a, 1, 1)
	if _, _, err := TraceStreamBlocks(g2); err == nil {
		t.Fatal("loop-carried edge accepted")
	}
}

// TestStreamPushAllocBudget pins the steady-state per-push allocation count
// on the benchsnap workload. The engine reuses its arena rank context,
// compaction double buffers, and CSR scratch across pushes, so a push costs
// a small constant number of allocations — the escaping BlockResult plus the
// merge/delay schedules — far under the 137 allocs the whole batch trace
// costs.
func TestStreamPushAllocBudget(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	// One unending stream: the trace repeated with dependence IDs rebased to
	// each cycle's fresh stream IDs, so the push path runs in steady state.
	const cycles = 12
	var long []StreamBlock
	for c := 0; c < cycles; c++ {
		off := NodeID(c * g.Len())
		for _, b := range blocks {
			nb := StreamBlock{Nodes: b.Nodes, Deps: make([]StreamDep, len(b.Deps))}
			for i, d := range b.Deps {
				nb.Deps[i] = StreamDep{Src: d.Src + off, Dst: d.Dst + off, Latency: d.Latency}
			}
			long = append(long, nb)
		}
	}
	m := SingleUnit(4)
	ss := NewStreamScheduler(m, StreamOptions{Lookahead: 1})
	// Warm: stream the first cycles so every scratch buffer has grown.
	warm := 2 * len(blocks)
	for _, b := range long[:warm] {
		if _, err := ss.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 137
	i := warm
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := ss.Push(long[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > budget {
		t.Fatalf("stream push: %.0f allocs/op, budget %d", allocs, budget)
	}
	t.Logf("stream push: %.0f allocs/op (budget %d)", allocs, budget)
}

// TestStreamConcurrentClients drives one shared StreamScheduler from many
// goroutines — pushers feeding disjoint stream-ID ranges interleaved with
// Makespan/SuffixLen readers — so the race detector covers the facade's
// locking (pushes serialize; results never tear). Block content is
// dependence-free across pushers because interleaving makes cross-push
// stream-ID ordering nondeterministic; the test asserts only the invariants
// that survive arbitrary interleaving: no error, every block finalized
// exactly once.
func TestStreamConcurrentClients(t *testing.T) {
	m := SingleUnit(2)
	const (
		pushers   = 4
		perPusher = 16
	)
	var finalized atomic.Int64
	ss := NewStreamScheduler(m, StreamOptions{
		Lookahead: 1,
		OnResult:  func(*BlockResult) { finalized.Add(1) },
	})
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				blk := StreamBlock{Nodes: []StreamNode{
					{Label: "a", Exec: 1}, {Label: "b", Exec: 2},
				}}
				if _, err := ss.Push(blk); err != nil {
					t.Errorf("pusher %d: %v", p, err)
					return
				}
				_ = ss.Makespan()
				_ = ss.SuffixLen()
			}
		}(p)
	}
	wg.Wait()
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := finalized.Load(), int64(pushers*perPusher); got != want {
		t.Fatalf("finalized %d blocks, want %d", got, want)
	}
}

// Package sched defines the schedule representation shared by every
// scheduler in this repository, the greedy list scheduler that underlies
// both the Rank Algorithm and the hardware issue model, and the legality
// checks of Sarkar & Simons Definition 2.3 (Window Constraint and Ordering
// Constraint).
//
// Time conventions: cycles are integers starting at 0. A node with start
// time s and execution time e occupies its functional unit during [s, s+e)
// and finishes at s+e. An edge (x, y) with latency ℓ requires
// start(y) ≥ finish(x) + ℓ. Only distance-0 (loop-independent) edges
// constrain a single-iteration schedule; loop-carried edges are handled by
// internal/loops and the dynamic simulator.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"aisched/internal/graph"
	"aisched/internal/machine"
)

// Unassigned marks a node that has no start time in a Schedule.
const Unassigned = -1

// Schedule maps every node of a graph to a start time and functional unit.
type Schedule struct {
	G *graph.Graph
	M *machine.Machine
	// Start[v] is the start cycle of node v, or Unassigned.
	Start []int
	// Unit[v] is the global unit index node v runs on (0-based across all
	// classes, in class order), or Unassigned.
	Unit []int
	// Degraded is empty for a full anticipatory schedule. When the facade's
	// scheduling budget was exhausted it holds the reason, and the schedule
	// is the baseline greedy list schedule produced by graceful degradation
	// (valid, but without the anticipatory guarantees).
	Degraded string
	// exec[v] is the execution time of node v, recorded by the view-based
	// list scheduler so that Finish/Makespan work without touching G (which
	// may be nil for schedules built from an induced graph view).
	exec []int32
}

// New returns an empty (all-unassigned) schedule for g on m.
func New(g *graph.Graph, m *machine.Machine) *Schedule {
	s := &Schedule{
		G:     g,
		M:     m,
		Start: make([]int, g.Len()),
		Unit:  make([]int, g.Len()),
	}
	for i := range s.Start {
		s.Start[i] = Unassigned
		s.Unit[i] = Unassigned
	}
	return s
}

// Clone returns a deep copy sharing the graph and machine.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{G: s.G, M: s.M, Degraded: s.Degraded, exec: s.exec}
	c.Start = append([]int(nil), s.Start...)
	c.Unit = append([]int(nil), s.Unit...)
	return c
}

// ApproxBytes reports the schedule's approximate resident footprint for the
// memo layer's byte-bounded LRU (memo.Sizer).
func (s *Schedule) ApproxBytes() int {
	return 96 + 8*(len(s.Start)+len(s.Unit)) + 4*len(s.exec) + len(s.Degraded)
}

// ResetView reinitializes s in place as a view-backed schedule of n nodes on
// m: Start and Unit are resized (contents unspecified — the caller fills
// them), the graph pointer is cleared, and exec is aliased so Finish and
// Makespan work without a graph. This is the step cache's replay target: one
// reusable Schedule per Step, refilled from a fragment on every hit, valid
// until the next reset (the same lifetime as StepOut's scratch).
func (s *Schedule) ResetView(m *machine.Machine, n int, exec []int32) {
	s.G, s.M = nil, m
	s.Degraded = ""
	if cap(s.Start) < n {
		s.Start = make([]int, n)
		s.Unit = make([]int, n)
	}
	s.Start, s.Unit = s.Start[:n], s.Unit[:n]
	s.exec = exec
}

// Len reports the number of nodes the schedule covers.
func (s *Schedule) Len() int { return len(s.Start) }

// execOf returns the execution time of v, from the recorded exec slice when
// present (view-built schedules) or from the graph.
func (s *Schedule) execOf(v graph.NodeID) int {
	if s.exec != nil {
		return int(s.exec[v])
	}
	return s.G.Node(v).Exec
}

// Finish returns the finish time of v (start + exec), or Unassigned.
func (s *Schedule) Finish(v graph.NodeID) int {
	if s.Start[v] == Unassigned {
		return Unassigned
	}
	return s.Start[v] + s.execOf(v)
}

// Makespan returns the completion time of the last instruction (0 for an
// empty schedule). Unassigned nodes are ignored.
func (s *Schedule) Makespan() int {
	max := 0
	for v := range s.Start {
		if s.Start[v] == Unassigned {
			continue
		}
		if f := s.Finish(graph.NodeID(v)); f > max {
			max = f
		}
	}
	return max
}

// Complete reports whether every node has a start time.
func (s *Schedule) Complete() bool {
	for _, st := range s.Start {
		if st == Unassigned {
			return false
		}
	}
	return true
}

// unitBase returns the global index of the first unit of class c and the
// number of units usable by class c. On a single-unit machine every class
// maps to unit 0.
func unitBase(m *machine.Machine, c machine.UnitClass) (base, count int) {
	if m.SingleUnitOnly() {
		return 0, 1
	}
	for cls := 0; cls < int(c) && cls < len(m.Units); cls++ {
		base += m.Units[cls]
	}
	if int(c) < len(m.Units) {
		return base, m.Units[c]
	}
	return base, 0
}

// Validate checks that the schedule is complete, respects all distance-0
// dependence edges, assigns each node to a unit legal for its class, and
// never runs two nodes on one unit at the same time.
func (s *Schedule) Validate() error {
	if !s.Complete() {
		return fmt.Errorf("sched: schedule is incomplete")
	}
	for v := 0; v < s.G.Len(); v++ {
		id := graph.NodeID(v)
		if s.Start[v] < 0 {
			return fmt.Errorf("sched: node %d (%s) has negative start %d", v, s.G.Node(id).Label, s.Start[v])
		}
		base, count := unitBase(s.M, machine.UnitClass(s.G.Node(id).Class))
		if count == 0 {
			return fmt.Errorf("sched: node %d (%s) has class %d with no units", v, s.G.Node(id).Label, s.G.Node(id).Class)
		}
		if s.Unit[v] < base || s.Unit[v] >= base+count {
			return fmt.Errorf("sched: node %d (%s) on unit %d outside class range [%d,%d)",
				v, s.G.Node(id).Label, s.Unit[v], base, base+count)
		}
		for _, e := range s.G.Out(id) {
			if e.Distance != 0 {
				continue
			}
			if s.Start[e.Dst] < s.Finish(id)+e.Latency {
				return fmt.Errorf("sched: edge %d→%d latency %d violated: finish(%d)=%d, start(%d)=%d",
					e.Src, e.Dst, e.Latency, e.Src, s.Finish(id), e.Dst, s.Start[e.Dst])
			}
		}
	}
	// Resource conflicts: sort by (unit, start) and check overlap.
	type occ struct{ unit, start, finish int }
	occs := make([]occ, 0, s.G.Len())
	for v := 0; v < s.G.Len(); v++ {
		occs = append(occs, occ{s.Unit[v], s.Start[v], s.Finish(graph.NodeID(v))})
	}
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].unit != occs[j].unit {
			return occs[i].unit < occs[j].unit
		}
		return occs[i].start < occs[j].start
	})
	for i := 1; i < len(occs); i++ {
		if occs[i].unit == occs[i-1].unit && occs[i].start < occs[i-1].finish {
			return fmt.Errorf("sched: unit %d runs two nodes at once (starts %d and %d)",
				occs[i].unit, occs[i-1].start, occs[i].start)
		}
	}
	return nil
}

// IdleSlots returns the start times of all idle slots across all units: a
// unit has an idle slot at integer time t < makespan when it is neither
// starting nor running an instruction at t. Returned ascending, with
// duplicates when several units are idle at the same time on multi-unit
// machines. For the paper's single-unit model this is exactly the t_1 < t_2
// < ... < t_j sequence of §3.
func (s *Schedule) IdleSlots() []int {
	T := s.Makespan()
	total := s.M.TotalUnits()
	busy := make([]graph.Bitset, total)
	for u := range busy {
		busy[u] = graph.NewBitset(T)
	}
	for v := range s.Start {
		if s.Start[v] == Unassigned {
			continue
		}
		busy[s.Unit[v]].SetRange(s.Start[v], s.Finish(graph.NodeID(v)))
	}
	var idles []int
	for t := 0; t < T; t++ {
		for u := 0; u < total; u++ {
			if !busy[u].Has(t) {
				idles = append(idles, t)
			}
		}
	}
	return idles
}

// IdleSlotsOnUnit returns the idle-slot start times of one unit.
func (s *Schedule) IdleSlotsOnUnit(unit int) []int {
	T := s.Makespan()
	busy := graph.NewBitset(T)
	for v := range s.Start {
		if s.Start[v] == Unassigned || s.Unit[v] != unit {
			continue
		}
		busy.SetRange(s.Start[v], s.Finish(graph.NodeID(v)))
	}
	var idles []int
	for t := busy.NextClear(0); t < T; t = busy.NextClear(t + 1) {
		idles = append(idles, t)
	}
	return idles
}

// Permutation returns the node IDs ordered by (start time, unit). On a
// single-unit machine this is the total order P of Definition 2.1.
func (s *Schedule) Permutation() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(s.Start))
	for v := range s.Start {
		if s.Start[v] != Unassigned {
			ids = append(ids, graph.NodeID(v))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if s.Start[ids[i]] != s.Start[ids[j]] {
			return s.Start[ids[i]] < s.Start[ids[j]]
		}
		return s.Unit[ids[i]] < s.Unit[ids[j]]
	})
	return ids
}

// Subpermutation returns the relative order of the nodes of one block within
// the schedule's permutation (Definition 2.1's P_k).
func (s *Schedule) Subpermutation(block int) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range s.Permutation() {
		if s.G.Node(id).Block == block {
			out = append(out, id)
		}
	}
	return out
}

// Blocks returns the sorted distinct block indices present in the graph.
func Blocks(g *graph.Graph) []int {
	seen := map[int]bool{}
	for v := 0; v < g.Len(); v++ {
		seen[g.Node(graph.NodeID(v)).Block] = true
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// ConcatSubpermutations returns L = P_1 ∘ P_2 ∘ ... ∘ P_m: the per-block
// subpermutations concatenated in block order (Definition 2.3's priority
// list). This is the static instruction order the compiler would emit.
func (s *Schedule) ConcatSubpermutations() []graph.NodeID {
	var out []graph.NodeID
	for _, b := range Blocks(s.G) {
		out = append(out, s.Subpermutation(b)...)
	}
	return out
}

// String renders the schedule as a per-unit timeline, e.g.
// "u0: [a b . c]" where '.' is an idle slot.
func (s *Schedule) String() string {
	T := s.Makespan()
	total := s.M.TotalUnits()
	rows := make([][]string, total)
	for u := range rows {
		rows[u] = make([]string, T)
		for t := range rows[u] {
			rows[u][t] = "."
		}
	}
	for v := 0; v < s.G.Len(); v++ {
		if s.Start[v] == Unassigned {
			continue
		}
		lbl := s.G.Node(graph.NodeID(v)).Label
		for t := s.Start[v]; t < s.Finish(graph.NodeID(v)); t++ {
			rows[s.Unit[v]][t] = lbl
		}
	}
	var b strings.Builder
	for u := range rows {
		fmt.Fprintf(&b, "u%d: [%s]", u, strings.Join(rows[u], " "))
		if u != len(rows)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

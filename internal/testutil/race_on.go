//go:build race

package testutil

// RaceEnabled reports that this binary was built with -race.
const RaceEnabled = true

package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
	"aisched/internal/workload"
)

// requireSameResult asserts two Lookahead results are bit-identical:
// the emission order, every absolute placement, and every per-block static
// order. This is the parallel path's whole contract — speculation must be
// invisible in the output, not merely makespan-equivalent.
func requireSameResult(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d, want %d", tag, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: Order[%d] = %d, want %d", tag, i, got.Order[i], want.Order[i])
		}
	}
	for v := range want.S.Start {
		if got.S.Start[v] != want.S.Start[v] || got.S.Unit[v] != want.S.Unit[v] {
			t.Fatalf("%s: node %d placed (%d,%d), want (%d,%d)", tag, v,
				got.S.Start[v], got.S.Unit[v], want.S.Start[v], want.S.Unit[v])
		}
	}
	if len(got.BlockOrders) != len(want.BlockOrders) {
		t.Fatalf("%s: %d block orders, want %d", tag, len(got.BlockOrders), len(want.BlockOrders))
	}
	for b, wo := range want.BlockOrders {
		go_ := got.BlockOrders[b]
		if len(go_) != len(wo) {
			t.Fatalf("%s: block %d has %d nodes, want %d", tag, b, len(go_), len(wo))
		}
		for i := range wo {
			if go_[i] != wo[i] {
				t.Fatalf("%s: block %d order[%d] = %d, want %d", tag, b, i, go_[i], wo[i])
			}
		}
	}
}

// specTestInstance draws one random trace for the differential tests,
// cycling through the regimes speculation must survive: barrier-rich and
// barrier-free traces, 0/1 and mixed latencies (mixed latencies produce the
// cross-segment release floors the join verifies), multi-class machines,
// and non-unit execution times.
func specTestInstance(t *testing.T, seed int) (*graph.Graph, *machine.Machine) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(seed)))
	var g *graph.Graph
	var err error
	switch seed % 5 {
	case 0: // barrier-rich long trace, mixed latencies
		cfg := workload.DefaultLongTrace(12 + seed%4*8)
		g, err = workload.LongTrace(r, cfg)
	case 1: // sparse barriers
		cfg := workload.DefaultLongTrace(16 + seed%3*8)
		cfg.BarrierEvery = 4
		g, err = workload.LongTrace(r, cfg)
	case 2: // no barriers at all: every join must miss or genuinely converge
		cfg := workload.DefaultTrace()
		cfg.Blocks = 10 + seed%11*3
		g, err = workload.Trace(r, cfg)
	case 3: // restricted model (0/1 latencies), denser cross edges
		cfg := workload.DefaultTrace()
		cfg.Blocks = 12 + seed%7*4
		cfg.Latency = workload.ZeroOne
		cfg.CrossProb = 0.3
		g, err = workload.Trace(r, cfg)
	default: // multi-class, non-unit exec, mixed latencies
		cfg := workload.DefaultTrace()
		cfg.Blocks = 10 + seed%9*3
		cfg.Classes = 2
		cfg.MaxExec = 3
		g, err = workload.Trace(r, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	var m *machine.Machine
	switch seed % 3 {
	case 0:
		m = machine.SingleUnit(4)
	case 1:
		m = machine.SingleUnit(2)
	default:
		m = machine.NewMachine("2u", []int{2, 1}, 4)
	}
	return g, m
}

// TestSpeculativeTraceBitIdentical is the core differential property:
// across ~300 random traces spanning latency regimes, machine shapes, and
// barrier densities, the speculative parallel path at every forced segment
// width is bit-identical to the sequential walk — with and without a step
// cache (shared across instances, so later instances also exercise the
// hint-seeded lane on whatever structure repeats).
func TestSpeculativeTraceBitIdentical(t *testing.T) {
	sc := NewStepCache(StepCacheConfig{})
	defer sc.Release()
	widths := []int{2, 3, 4, 8}
	for seed := 0; seed < 75; seed++ {
		g, m := specTestInstance(t, seed)
		seq, err := LookaheadOpts(g, m, Options{Parallel: -1})
		if err != nil {
			t.Fatal(err)
		}
		for wi, p := range widths {
			opt := Options{Parallel: p}
			tag := "bare"
			if (seed+wi)%2 == 1 {
				opt.StepCache = sc
				tag = "cached"
			}
			par, err := LookaheadOpts(g, m, opt)
			if err != nil {
				t.Fatalf("seed %d p=%d %s: %v", seed, p, tag, err)
			}
			requireSameResult(t, fmt.Sprintf("%s/seed=%d/p=%d", tag, seed, p), seq, par)
		}
	}
	st := SpecCounters()
	t.Logf("cumulative: runs=%d segments=%d hits=%d misses=%d fallback=%d laneB=%d",
		st.Runs, st.Segments, st.Hits, st.Misses, st.FallbackBlocks, st.LaneB)
}

// TestSpeculativeForcedMismatch fault-injects a wrong verification verdict
// at every join: all speculation must be rejected, every segment recomputed
// sequentially, and the output still bit-identical — the fallback path is
// the sequential walk by construction, and this pins it.
func TestSpeculativeForcedMismatch(t *testing.T) {
	defer faultinject.Reset()
	r := rand.New(rand.NewSource(99))
	g, err := workload.LongTrace(r, workload.DefaultLongTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.SingleUnit(4)
	seq, err := LookaheadOpts(g, m, Options{Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SpecVerify = func() bool { return true }
	before := SpecCounters()
	par, err := LookaheadOpts(g, m, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	requireSameResult(t, "forced-mismatch", seq, par)
	d := diffSpec(before, SpecCounters())
	if d.Runs != 1 {
		t.Fatalf("runs delta = %d, want 1", d.Runs)
	}
	if d.Segments == 0 || d.Misses != d.Segments || d.Hits != 0 {
		t.Fatalf("want all %d segments rejected, got hits=%d misses=%d", d.Segments, d.Hits, d.Misses)
	}
	if d.FallbackBlocks == 0 {
		t.Fatalf("no blocks recomputed despite %d rejected segments", d.Misses)
	}
}

func diffSpec(a, b SpecStats) SpecStats {
	return SpecStats{
		Runs: b.Runs - a.Runs, Segments: b.Segments - a.Segments,
		Hits: b.Hits - a.Hits, Misses: b.Misses - a.Misses,
		FallbackBlocks: b.FallbackBlocks - a.FallbackBlocks,
		LaneB:          b.LaneB - a.LaneB,
	}
}

// repetitiveChainTrace builds a trace of identical latency-1 chain blocks —
// maximal structural repetition, the regime the join-hint lane targets.
func repetitiveChainTrace(blocks, size int) *graph.Graph {
	g := graph.New(blocks * size)
	for b := 0; b < blocks; b++ {
		var prev graph.NodeID
		for i := 0; i < size; i++ {
			id := g.AddNode("", 1, 0, b)
			if i > 0 {
				g.MustEdge(prev, id, 1, 0)
			}
			prev = id
		}
	}
	return g
}

// TestSpeculativeLaneBHints schedules a maximally repetitive trace twice
// through one step cache: the first run's joins store cut-neighborhood
// hints, so the second run's workers must seed from them (lane B), skip the
// warm-up, and still verify and produce bit-identical output.
func TestSpeculativeLaneBHints(t *testing.T) {
	g := repetitiveChainTrace(48, 8)
	m := machine.SingleUnit(4)
	seq, err := LookaheadOpts(g, m, Options{Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStepCache(StepCacheConfig{})
	defer sc.Release()
	first, err := LookaheadOpts(g, m, Options{Parallel: 4, StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "laneB-first", seq, first)
	before := SpecCounters()
	second, err := LookaheadOpts(g, m, Options{Parallel: 4, StepCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "laneB-second", seq, second)
	d := diffSpec(before, SpecCounters())
	if d.LaneB == 0 {
		t.Fatalf("second run used no join hints (segments=%d hits=%d misses=%d)",
			d.Segments, d.Hits, d.Misses)
	}
	if d.Hits != d.Segments {
		t.Fatalf("hint-seeded run should fully verify: hits=%d of %d segments", d.Hits, d.Segments)
	}
}

// TestParallelTraceGates pins every condition that must keep the parallel
// path off: explicit disable, short traces under the auto threshold, a
// custom Tie, a Tracer, a Budget, and node IDs not grouped by block.
func TestParallelTraceGates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	long, err := workload.LongTrace(r, workload.DefaultLongTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	small, err := workload.Trace(r, workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved block IDs: block-grouped layout is violated, so the
	// parallel path must refuse even when forced.
	interleaved := graph.New(64)
	for i := 0; i < 64; i++ {
		interleaved.AddNode("", 1, 0, i%8)
	}
	m := machine.SingleUnit(4)
	tie := make([]graph.NodeID, long.Len())
	for i := range tie {
		tie[i] = graph.NodeID(len(tie) - 1 - i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cases := []struct {
		name string
		g    *graph.Graph
		opt  Options
	}{
		{"disabled", long, Options{Parallel: -1}},
		{"auto-small-trace", small, Options{Parallel: 0}},
		{"custom-tie", long, Options{Parallel: 4, Tie: tie}},
		{"tracer", long, Options{Parallel: 4, Tracer: obs.NewRecorder()}},
		{"budget", long, Options{Parallel: 4, Budget: sbudget.New(ctx, time.Hour, 1<<30)}},
		{"ungrouped-ids", interleaved, Options{Parallel: 4}},
	}
	for _, tc := range cases {
		before := SpecCounters().Runs
		if _, err := LookaheadOpts(tc.g, m, tc.opt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := SpecCounters().Runs; got != before {
			t.Fatalf("%s: parallel path engaged (runs %d -> %d)", tc.name, before, got)
		}
	}
	// Control: the same long trace with speculation forced does engage.
	before := SpecCounters().Runs
	if _, err := LookaheadOpts(long, m, Options{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if got := SpecCounters().Runs; got != before+1 {
		t.Fatalf("control: parallel path did not engage (runs %d -> %d)", before, got)
	}
}

// TestSpeculativeTraceDeterminism re-runs the parallel path on one instance
// and requires identical output both times — the property the CI
// parallel-determinism job exercises under -count=2 -cpu=1,4.
func TestSpeculativeTraceDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	cfg := workload.DefaultLongTrace(96)
	cfg.BarrierEvery = 3
	g, err := workload.LongTrace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.NewMachine("2u", []int{2, 1}, 4)
	seq, err := LookaheadOpts(g, m, Options{Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		par, err := LookaheadOpts(g, m, Options{Parallel: 5})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "determinism", seq, par)
	}
}

// TestSpeculativeWorkerPanic drives one speculative worker directly with a
// rank pass that always panics: run must capture the panic as a per-segment
// error (which the driver then treats as a rejected speculation) instead of
// letting it escape the goroutine.
func TestSpeculativeWorkerPanic(t *testing.T) {
	defer faultinject.Reset()
	r := rand.New(rand.NewSource(321))
	g, err := workload.LongTrace(r, workload.DefaultLongTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.SingleUnit(4)
	csr := graph.NewCSR(g)
	opt := Options{Parallel: 4}
	plan := parallelPlan(csr, &opt)
	if plan == nil {
		t.Fatal("no parallel plan for the 64-block trace")
	}
	wk := &specWorker{gLo: plan.cuts[1], gHi: plan.cuts[2], done: make(chan struct{})}
	faultinject.RankPass = faultinject.Panic(nil, "spec-worker", "injected")
	wk.run(csr, m, &opt, plan.groups)
	faultinject.Reset()
	<-wk.done
	if wk.err == nil {
		t.Fatal("injected worker panic was not captured as an error")
	}
	wk.release()
}

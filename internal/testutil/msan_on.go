//go:build msan

package testutil

// MsanEnabled reports that this binary was built with -msan.
const MsanEnabled = true

package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Block is a labeled sequence of instructions, the parser's output unit.
type Block struct {
	Label  string
	Instrs []Instr
}

// Parse reads assembly text into labeled blocks. Syntax (one instruction
// per line):
//
//	CL.18:                ; a label opens a new block
//	    loadu r6, 4(r7)   ; comments run to end of line
//	    cmpi  cr1, r6, 0
//	    bt    cr1, CL.1
//
// Instructions before any label go into a block labeled "entry". A branch
// also terminates the current block.
func Parse(src string) ([]Block, error) {
	var blocks []Block
	cur := Block{Label: "entry"}
	flush := func() {
		if len(cur.Instrs) > 0 {
			blocks = append(blocks, cur)
		}
	}
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			flush()
			cur = Block{Label: strings.TrimSuffix(line, ":")}
			continue
		}
		in, err := ParseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
		cur.Instrs = append(cur.Instrs, in)
		if in.IsBranch() {
			flush()
			cur = Block{Label: fmt.Sprintf("bb.%d", lineno+2)}
		}
	}
	flush()
	return blocks, nil
}

// ParseInstr parses one instruction line.
func ParseInstr(line string) (Instr, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " , "))
	if len(fields) == 0 {
		return Instr{}, fmt.Errorf("isa: empty instruction")
	}
	mnem := strings.ToLower(fields[0])
	var ops []string
	for _, f := range fields[1:] {
		if f != "," {
			ops = append(ops, f)
		}
	}
	// Compares may carry a condition-code suffix: cmp.lt, cmpi.eq, ...
	cond := NE
	if base, suffix, found := strings.Cut(mnem, "."); found && (base == "cmp" || base == "cmpi") {
		parsed := CondCode(-1)
		for c := NE; int(c) < len(condNames); c++ {
			if condNames[c] == suffix {
				parsed = c
				break
			}
		}
		if parsed < 0 {
			return Instr{}, fmt.Errorf("isa: unknown condition code %q", suffix)
		}
		cond = parsed
		mnem = base
	}
	var op Opcode = -1
	for o := NOP; o < numOpcodes; o++ {
		if opNames[o] == mnem {
			op = o
			break
		}
	}
	if op < 0 {
		return Instr{}, fmt.Errorf("isa: unknown mnemonic %q", mnem)
	}
	in := Instr{Op: op, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, Base: NoReg, Cond: cond}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("isa: %s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	var err error
	switch op {
	case NOP:
		err = need(0)
	case LI:
		if err = need(2); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.Imm, err = parseImm(ops[1])
			}
		}
	case MOV:
		if err = need(2); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.SrcA, err = parseReg(ops[1])
			}
		}
	case ADDI, SUBI:
		if err = need(3); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.SrcA, err = parseReg(ops[1])
			}
			if err == nil {
				in.Imm, err = parseImm(ops[2])
			}
		}
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, CMP:
		if err = need(3); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.SrcA, err = parseReg(ops[1])
			}
			if err == nil {
				in.SrcB, err = parseReg(ops[2])
			}
		}
	case CMPI:
		if err = need(3); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.SrcA, err = parseReg(ops[1])
			}
			if err == nil {
				in.Imm, err = parseImm(ops[2])
			}
		}
	case LOAD, LOADU:
		if err = need(2); err == nil {
			in.Dst, err = parseReg(ops[0])
			if err == nil {
				in.Imm, in.Base, err = parseMem(ops[1])
			}
		}
	case STORE, STOREU:
		if err = need(2); err == nil {
			in.SrcA, err = parseReg(ops[0])
			if err == nil {
				in.Imm, in.Base, err = parseMem(ops[1])
			}
		}
	case BT, BF:
		if err = need(2); err == nil {
			in.SrcA, err = parseReg(ops[0])
			in.Target = ops[1]
		}
	case B:
		if err = need(1); err == nil {
			in.Target = ops[0]
		}
	}
	if err != nil {
		return Instr{}, err
	}
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "cr") {
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 0 || n >= NumCR {
			return NoReg, fmt.Errorf("isa: bad condition register %q", s)
		}
		return CR(n), nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumGPR {
			return NoReg, fmt.Errorf("isa: bad register %q", s)
		}
		return GPR(n), nil
	}
	return NoReg, fmt.Errorf("isa: bad register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("isa: bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "off(reg)".
func parseMem(s string) (int64, Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, NoReg, fmt.Errorf("isa: bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, NoReg, err
		}
		off = v
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, NoReg, err
	}
	return off, base, nil
}

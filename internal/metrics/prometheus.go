package metrics

// Prometheus text-format (version 0.0.4) exposition. One histogram is
// rendered with cumulative le-buckets at power-of-two boundaries — the
// log-linear sub-bucket resolution is collapsed per octave so an exposition
// stays a few dozen lines instead of ~2000 — plus the exact _sum and
// _count series. The output is deterministic: families sorted by name,
// bucket bounds ascending.

import (
	"bufio"
	"fmt"
	"io"
)

// WritePrometheus writes every registered instrument in Prometheus text
// format v0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	counters, gauges, histograms := r.sortedNames()
	for _, name := range counters {
		c := r.counters[name]
		writeHeader(bw, name, c.help, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, c.Value())
	}
	for _, name := range gauges {
		g := r.gauges[name]
		writeHeader(bw, name, g.help, "gauge")
		fmt.Fprintf(bw, "%s %d\n", name, g.Value())
	}
	for _, name := range histograms {
		h := r.histograms[name]
		writeHeader(bw, name, h.help, "histogram")
		writePromHistogram(bw, name, h)
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writePromHistogram emits cumulative buckets with upper bounds 2^k,
// stopping at the first power of two that already covers every
// observation, then the mandatory +Inf bucket, _sum, and _count.
func writePromHistogram(w io.Writer, name string, h *Histogram) {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	var cum uint64
	idx := 0
	for k := uint(0); k < 64; k++ {
		bound := uint64(1) << k
		// Buckets are ascending by value, so accumulate every bucket whose
		// range lies entirely below the bound.
		for idx < numBuckets {
			lo, width := bucketBounds(idx)
			if lo+width > bound {
				break
			}
			cum += counts[idx]
			idx++
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
		if cum >= total {
			break
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

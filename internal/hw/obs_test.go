package hw

import (
	"testing"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
)

// mulLoop builds the Figure 3-shaped partial-products body: load, store,
// compare, multiply, branch, with a distance-1 multiply recurrence and the
// branch controlling the next iteration.
func mulLoop(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New(5)
	ld := g.AddNode("ld", 1, int(machine.ClassFixed), 0)
	st := g.AddNode("st", 1, int(machine.ClassFixed), 0)
	cmp := g.AddNode("cmp", 1, int(machine.ClassFixed), 0)
	mul := g.AddNode("mul", 1, int(machine.ClassFloat), 0)
	bt := g.AddNode("bt", 1, int(machine.ClassBranch), 0)
	g.MustEdge(ld, cmp, 1, 0)
	g.MustEdge(ld, mul, 1, 0)
	g.MustEdge(cmp, bt, 1, 0)
	g.MustEdge(mul, st, 4, 1)  // store of y[i-1] next iteration
	g.MustEdge(mul, mul, 4, 1) // multiply recurrence
	g.MustEdge(bt, ld, 0, 1)   // control dependence into next iteration
	return g, []graph.NodeID{ld, st, cmp, mul, bt}
}

// TestTracingPreservesResults: installing a tracer must not change any
// simulation outcome — completion, per-position issue cycles, or rollbacks.
func TestTracingPreservesResults(t *testing.T) {
	g, order := mulLoop(t)
	for _, opt := range []Options{
		{Speculate: true},
		{Speculate: false},
		{Speculate: true, MispredictEvery: 2, Penalty: 3},
	} {
		for _, m := range []*machine.Machine{machine.SingleUnit(4), machine.RS6000(8)} {
			plain, err := SimulateLoop(g, m, order, 12, opt)
			if err != nil {
				t.Fatal(err)
			}
			topt := opt
			topt.Tracer = obs.NewRecorder()
			traced, err := SimulateLoop(g, m, order, 12, topt)
			if err != nil {
				t.Fatal(err)
			}
			if traced.Completion != plain.Completion || traced.Rollbacks != plain.Rollbacks {
				t.Fatalf("%s %+v: traced completion/rollbacks %d/%d != plain %d/%d",
					m.Name, opt, traced.Completion, traced.Rollbacks, plain.Completion, plain.Rollbacks)
			}
			for i := range plain.Issued {
				if plain.Issued[i] != traced.Issued[i] {
					t.Fatalf("%s %+v: issue cycle of position %d differs: %d vs %d",
						m.Name, opt, i, plain.Issued[i], traced.Issued[i])
				}
			}
		}
	}
}

// TestStallBreakdownSums: every issue-phase cycle with no issue is
// attributed to exactly one reason, so the breakdown sums to the total and
// the total equals issue-phase cycles minus issuing cycles.
func TestStallBreakdownSums(t *testing.T) {
	g, order := mulLoop(t)
	m := machine.SingleUnit(4)
	rec := obs.NewRecorder()
	if _, err := SimulateLoop(g, m, order, 10,
		Options{Speculate: true, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	s := rec.Stats()
	sum := 0
	for _, n := range s.StallByReason {
		sum += n
	}
	if sum != s.StallCycles {
		t.Fatalf("breakdown sums to %d, StallCycles = %d (%v)", sum, s.StallCycles, s.StallByReason)
	}
	// Cross-check against the event stream: stall cycles and issue cycles
	// partition the issue phase [0, last issue cycle].
	issueCycles := map[int]bool{}
	stallCycles := map[int]bool{}
	last := 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindIssue:
			issueCycles[e.Cycle] = true
			if e.Cycle > last {
				last = e.Cycle
			}
		case obs.KindStall:
			if stallCycles[e.Cycle] {
				t.Fatalf("cycle %d attributed twice", e.Cycle)
			}
			stallCycles[e.Cycle] = true
			if e.Cycle > last {
				last = e.Cycle
			}
		}
	}
	for c := 0; c <= last; c++ {
		if issueCycles[c] == stallCycles[c] {
			t.Fatalf("cycle %d: issue=%v stall=%v — the issue phase must be partitioned",
				c, issueCycles[c], stallCycles[c])
		}
	}
}

// TestMispredictRollbackAccounting is the Options-misprediction coverage:
// Result.Rollbacks, the rollback re-issues, and the Penalty stall cycles
// must all be reflected in the stall-reason accounting.
func TestMispredictRollbackAccounting(t *testing.T) {
	g, order := mulLoop(t)
	// Multi-unit machine: the next iteration's load issues on the free
	// fixed-point unit while the branch still waits on the compare, so a
	// mispredicted branch has instructions to squash.
	m := machine.RS6000(8)
	const every, penalty, iters = 2, 3, 12
	rec := obs.NewRecorder()
	res, err := SimulateLoop(g, m, order, iters,
		Options{Speculate: true, MispredictEvery: every, Penalty: penalty, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks == 0 {
		t.Fatal("expected injected mispredictions")
	}
	s := rec.Stats()
	if s.Rollbacks != res.Rollbacks {
		t.Errorf("stats rollbacks %d != result rollbacks %d", s.Rollbacks, res.Rollbacks)
	}
	if s.Reissues == 0 {
		t.Error("squashed instructions must re-issue after rollback")
	}
	if s.Reissues != s.Squashed {
		t.Errorf("re-issues %d != squashed %d: every rolled-back instruction re-issues exactly once",
			s.Reissues, s.Squashed)
	}
	if s.Instructions != len(order)*iters {
		t.Errorf("distinct instructions %d, want %d", s.Instructions, len(order)*iters)
	}
	refill := s.StallByReason[obs.RollbackRefill.String()]
	if refill == 0 {
		t.Error("expected rollback-refill stall cycles")
	}
	// Each misprediction freezes issue until finish(branch) + Penalty; the
	// refill window spans at least Penalty cycles per rollback minus the
	// branch's own finish cycle, and never exceeds (penalty+1)·rollbacks.
	if refill > (penalty+1)*res.Rollbacks {
		t.Errorf("refill stalls %d exceed (penalty+1)*rollbacks = %d",
			refill, (penalty+1)*res.Rollbacks)
	}
	sum := 0
	for _, n := range s.StallByReason {
		sum += n
	}
	if sum != s.StallCycles {
		t.Errorf("breakdown sums to %d, StallCycles = %d", sum, s.StallCycles)
	}
	// A misprediction-free run of the same configuration completes sooner.
	clean, err := SimulateLoop(g, m, order, iters, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= clean.Completion {
		t.Errorf("mispredicted completion %d should exceed clean %d", res.Completion, clean.Completion)
	}
}

// TestCrossBlockFillAttribution: on a two-block trace whose second block can
// start inside the first block's trailing idle slots, the tracer must
// attribute cross-block fills; with W=1 (no lookahead) there are none.
func TestCrossBlockFillAttribution(t *testing.T) {
	// Block 0: a → (latency 3) → b; block 1: independent c, d. With W=4 the
	// window issues c and d into the idle slots between a and b.
	g := graph.New(4)
	a := g.AddNode("a", 1, 0, 0)
	b := g.AddNode("b", 1, 0, 0)
	c := g.AddNode("c", 1, 0, 1)
	d := g.AddNode("d", 1, 0, 1)
	g.MustEdge(a, b, 3, 0)
	order := []graph.NodeID{a, b, c, d}

	rec := obs.NewRecorder()
	if _, err := SimulateTraceT(g, machine.SingleUnit(4), order, rec); err != nil {
		t.Fatal(err)
	}
	s := rec.Stats()
	if s.CrossBlockFills == 0 {
		t.Errorf("W=4: want cross-block fills, got stats %+v", s)
	}

	rec = obs.NewRecorder()
	if _, err := SimulateTraceT(g, machine.SingleUnit(1), order, rec); err != nil {
		t.Fatal(err)
	}
	if s := rec.Stats(); s.CrossBlockFills != 0 || s.SameBlockFills != 0 {
		t.Errorf("W=1 cannot fill idle slots out of order, got %+v", s)
	}
}

// TestWindowOccupancyBounded: occupancy never exceeds W and the histogram
// accounts for every issue-phase cycle.
func TestWindowOccupancyBounded(t *testing.T) {
	g, order := mulLoop(t)
	const w = 4
	rec := obs.NewRecorder()
	if _, err := SimulateLoop(g, machine.SingleUnit(w), order, 8,
		Options{Speculate: true, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	s := rec.Stats()
	if len(s.WindowOccupancy) > w+1 {
		t.Fatalf("occupancy histogram has %d buckets for W=%d: %v",
			len(s.WindowOccupancy), w, s.WindowOccupancy)
	}
}

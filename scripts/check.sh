#!/bin/sh
# Full local check: build, vet, tests, the race detector, and the benchmark
# regression gate. Tier-1 (build + go test ./...) is what CI gates on; vet
# and -race catch what plain tests miss, and benchsnap -compare enforces the
# ROADMAP ≤2% regression budget against the committed snapshot.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./..."
go test -race ./...
echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzScheduleBlock$' -fuzztime 10s .
go test -run '^$' -fuzz '^FuzzScheduleTrace$' -fuzztime 10s .
go test -run '^$' -fuzz '^FuzzStepCache$' -fuzztime 10s .
go test -run '^$' -fuzz '^FuzzExactOracle$' -fuzztime 10s .
go test -run '^$' -fuzz '^FuzzSpeculativeTrace$' -fuzztime 10s .
echo "== optimality-gap quick sweep (E1GAP, reduced instance count)"
# The full 60-instance sweep lives in EXPERIMENTS.md; a 15-instance pass
# keeps the heuristic-vs-exact differential honest on every check without
# blowing the time budget.
go run ./cmd/experiments -t E1GAP -n 15
echo "== faultinject hooks must stay test-only"
# The fault-injection registry is for tests: no non-test file outside the
# package itself may assign a hook (matches `faultinject.X = ...`, not `==`).
if grep -rn --include='*.go' -E 'faultinject\.[A-Z][A-Za-z]* *=[^=]' . \
	| grep -v '_test\.go:' \
	| grep -v '^\./internal/faultinject/'; then
	echo "check: FAIL — faultinject hook assigned outside tests" >&2
	exit 1
fi
echo "== scheduling engine must stay map-free"
# The PR 5 zero-allocation core replaced every hot-path map[graph.NodeID]T
# with dense slices indexed by compact node ID; a map sneaking back into the
# engine packages reintroduces per-schedule hashing and allocation. Tests may
# use maps freely (oracles, seen-sets).
if grep -rn --include='*.go' 'map\[graph\.NodeID\]' \
	./internal/rank ./internal/idle ./internal/core ./internal/loops \
	| grep -v '_test\.go:'; then
	echo "check: FAIL — map[graph.NodeID] in engine non-test code (use dense slices)" >&2
	exit 1
fi
echo "== metrics record path must stay zero-alloc and lock/map-free"
# The always-on metrics layer is only viable because recording is a handful
# of striped atomics. Two guards: the allocs-per-op test must report exactly
# zero, and the record path source must never grow a map, mutex, channel, or
# interface.
go test -run '^TestRecordPathZeroAlloc$' -count=1 ./internal/metrics
if grep -nE 'map\[|sync\.(Mutex|RWMutex)|interface *\{|chan ' internal/metrics/record.go; then
	echo "check: FAIL — internal/metrics/record.go grew a map/lock/chan/interface" >&2
	exit 1
fi
echo "== stream push must stay within its allocation budget"
# The streaming scheduler's pitch is bounded per-push cost: the engine reuses
# its rank context, compaction buffers, and CSR scratch, so a steady-state
# push allocates a small constant (the escaping BlockResult plus schedules).
go test -run '^TestStreamPushAllocBudget$' -count=1 .
echo "== step-cache hits must stay within their allocation budget"
# A push that replays a cached fragment must stay far below the uncached
# merge path's allocation cost — the step cache's whole point is O(fragment)
# replay with near-zero allocation.
go test -run '^TestStepCacheHitAllocBudget$' -count=1 .
echo "== speculation-off trace path must stay at its exact allocation count"
# The speculative parallel dispatch gate must cost an integer compare on the
# default small-trace path: pinned at BENCH_PR8's exact 133 allocs/op.
go test -run '^TestScheduleTraceAllocExactSpecOff$' -count=1 .
echo "== speculative results must be deterministic across runs and -cpu"
# The same invariant CI's parallel-determinism job enforces: speculation is
# bit-identical to the sequential walk regardless of GOMAXPROCS or repetition.
go test -run 'Speculative|ParallelTrace' -count=2 -cpu=1,4 ./...
echo "== benchsnap -compare BENCH_PR10.json"
go run ./cmd/benchsnap -compare BENCH_PR10.json
echo "check: OK"

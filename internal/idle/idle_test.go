package idle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

// fig1Setup produces the paper's §2.1 starting point: the makespan-7
// schedule of BB1 with its idle slot at time 2 and deadlines rebased to 7.
func fig1Setup(t *testing.T) (*paperex.Fig1, *machine.Machine, *sched.Schedule, []int) {
	t.Helper()
	f := paperex.NewFig1()
	m := machine.SingleUnit(2)
	res, err := rank.Run(f.G, m, rank.UniformDeadlines(f.G.Len(), 100), f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	T := res.S.Makespan()
	if T != 7 {
		t.Fatalf("setup makespan = %d, want 7", T)
	}
	d := rank.Rebase(rank.UniformDeadlines(f.G.Len(), 100), 100-T)
	return f, m, res.S, d
}

func TestMoveIdleSlotFigure1(t *testing.T) {
	// §2.2: the idle slot at time 2 moves to time 5; makespan stays 7; the
	// tail node x ends with deadline 1.
	f, m, s, d := fig1Setup(t)
	res, err := MoveIdleSlot(s, m, d, 0, 2, f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Moved {
		t.Fatalf("idle slot at 2 did not move\n%s", s)
	}
	if res.NewStart != 5 {
		t.Fatalf("slot moved to %d, want 5\n%s", res.NewStart, res.S)
	}
	if res.S.Makespan() != 7 {
		t.Fatalf("makespan = %d, want 7", res.S.Makespan())
	}
	if res.D[f.X] != 1 {
		t.Fatalf("d(x) = %d, want 1 (the paper's committed deadline)", res.D[f.X])
	}
	if err := res.S.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's moved schedule is x e r b w _ a.
	labels := sched.PermutationLabels(res.S)
	want := []string{"x", "e", "r", "b", "w", "a"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("moved schedule = %v, want %v", labels, want)
		}
	}
}

func TestMoveIdleSlotFigure1CannotMoveFurther(t *testing.T) {
	// After moving to time 5, the slot is as late as possible: a is the only
	// node after it and depends on w and b with latency 1 — the slot at 5
	// cannot be delayed again.
	f, m, s, d := fig1Setup(t)
	res, err := MoveIdleSlot(s, m, d, 0, 2, f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := MoveIdleSlot(res.S, m, res.D, 0, 5, f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Moved {
		t.Fatalf("slot at 5 moved to %d; it should be maximal", res2.NewStart)
	}
	// Failure must leave schedule and deadlines untouched.
	if res2.S != res.S {
		t.Fatal("failure should return the input schedule")
	}
	for i := range res.D {
		if res2.D[i] != res.D[i] {
			t.Fatal("failure must not commit deadline changes")
		}
	}
}

func TestDelayIdleSlotsFigure1(t *testing.T) {
	f, m, s, d := fig1Setup(t)
	out, dd, err := DelayIdleSlots(s, m, d, f.PaperTie)
	if err != nil {
		t.Fatal(err)
	}
	if out.Makespan() != 7 {
		t.Fatalf("makespan = %d, want 7", out.Makespan())
	}
	slots := out.IdleSlotsOnUnit(0)
	if len(slots) != 1 || slots[0] != 5 {
		t.Fatalf("final idle slots = %v, want [5]", slots)
	}
	if dd[f.X] != 1 {
		t.Fatalf("d(x) = %d, want 1", dd[f.X])
	}
}

func TestMoveIdleSlotUnknownSlotErrors(t *testing.T) {
	_, m, s, d := fig1Setup(t)
	if _, err := MoveIdleSlot(s, m, d, 0, 3, nil); err == nil {
		t.Fatal("nonexistent slot accepted")
	}
}

func TestMoveIdleSlotWrongDeadlineCount(t *testing.T) {
	_, m, s, _ := fig1Setup(t)
	if _, err := MoveIdleSlot(s, m, []int{1}, 0, 2, nil); err == nil {
		t.Fatal("wrong-length deadlines accepted")
	}
}

func TestDelayIdleSlotsNoIdleNoChange(t *testing.T) {
	// A chain with latency 0 has no idle slots; DelayIdleSlots is a no-op.
	g := graph.New(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, c, 0, 0)
	m := machine.SingleUnit(1)
	s, err := rank.Makespan(g, m)
	if err != nil {
		t.Fatal(err)
	}
	d := rank.UniformDeadlines(3, s.Makespan())
	out, _, err := DelayIdleSlots(s, m, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range out.Start {
		if out.Start[v] != s.Start[v] {
			t.Fatal("no-idle schedule changed")
		}
	}
}

func TestMoveIdleSlotLeadingIdleFromLatency(t *testing.T) {
	// a -2-> b and nothing else: schedule a _ _ b with slots at 1, 2. The
	// slot at 1 is preceded by a (tail) but a cannot move earlier than 0, so
	// demotion makes the instance infeasible → no move.
	g := graph.New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 2, 0)
	m := machine.SingleUnit(1)
	s, err := rank.Makespan(g, m)
	if err != nil {
		t.Fatal(err)
	}
	d := rank.UniformDeadlines(2, s.Makespan())
	res, err := MoveIdleSlot(s, m, d, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved {
		t.Fatal("slot after an immovable tail moved")
	}
	// The slot at 2 has no tail node (preceded by idle) → fail cleanly.
	res2, err := MoveIdleSlot(s, m, d, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Moved {
		t.Fatal("tail-less slot moved")
	}
}

func randomUETDAG(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
			}
		}
	}
	return g
}

func sumIdleStarts(s *sched.Schedule) int {
	total := 0
	for _, t := range s.IdleSlotsOnUnit(0) {
		total += t
	}
	return total
}

func TestPropertyDelayPreservesMakespanAndValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(18), 0.3)
		m := machine.SingleUnit(4)
		s, err := rank.Makespan(g, m)
		if err != nil {
			return false
		}
		d := rank.UniformDeadlines(g.Len(), s.Makespan())
		out, _, err := DelayIdleSlots(s, m, d, nil)
		if err != nil {
			return false
		}
		if out.Makespan() != s.Makespan() {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDelayNeverMovesIdleSlotsEarlier(t *testing.T) {
	// The multiset of idle starts can only shift later: compare slot-by-slot
	// (both schedules have the same number of slots since makespan and node
	// count are unchanged on a single unit).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(18), 0.3)
		m := machine.SingleUnit(4)
		s, err := rank.Makespan(g, m)
		if err != nil {
			return false
		}
		d := rank.UniformDeadlines(g.Len(), s.Makespan())
		out, _, err := DelayIdleSlots(s, m, d, nil)
		if err != nil {
			return false
		}
		before := s.IdleSlotsOnUnit(0)
		after := out.IdleSlotsOnUnit(0)
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if after[i] < before[i] {
				return false
			}
		}
		return sumIdleStarts(out) >= sumIdleStarts(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoveFailureLeavesStateUntouched(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(15), 0.35)
		m := machine.SingleUnit(4)
		s, err := rank.Makespan(g, m)
		if err != nil {
			return false
		}
		d := rank.UniformDeadlines(g.Len(), s.Makespan())
		for _, t0 := range s.IdleSlotsOnUnit(0) {
			res, err := MoveIdleSlot(s, m, d, 0, t0, nil)
			if err != nil {
				return false
			}
			if !res.Moved {
				if res.S != s {
					return false
				}
				for i := range d {
					if res.D[i] != d[i] {
						return false
					}
				}
			} else if res.S.Makespan() > s.Makespan() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

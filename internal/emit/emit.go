// Package emit renders scheduling results back to assembly text: the
// post-pass output a compiler would write after anticipatory instruction
// scheduling. Block labels and branch targets are preserved; only the
// intra-block instruction order changes (the algorithm's safety and
// serviceability contract).
package emit

import (
	"fmt"
	"strings"

	"aisched/internal/graph"
	"aisched/internal/isa"
)

// Trace renders a scheduled trace: blocks in layout order, each with its
// label and its instructions in the scheduled order. orders maps block
// index → node IDs in the concatenated node space used by deps.BuildTrace
// (block i's instructions occupy a contiguous ID range in layout order).
func Trace(blocks []isa.Block, orders map[int][]graph.NodeID) (string, error) {
	offsets := make([]int, len(blocks)+1)
	for i, b := range blocks {
		offsets[i+1] = offsets[i] + len(b.Instrs)
	}
	var out strings.Builder
	for bi, b := range blocks {
		if b.Label != "" {
			fmt.Fprintf(&out, "%s:\n", b.Label)
		}
		order, ok := orders[bi]
		if !ok {
			if len(b.Instrs) == 0 {
				continue
			}
			return "", fmt.Errorf("emit: no order for block %d", bi)
		}
		if len(order) != len(b.Instrs) {
			return "", fmt.Errorf("emit: block %d order has %d of %d instructions", bi, len(order), len(b.Instrs))
		}
		seen := make([]bool, len(b.Instrs))
		for _, id := range order {
			local := int(id) - offsets[bi]
			if local < 0 || local >= len(b.Instrs) {
				return "", fmt.Errorf("emit: node %d outside block %d (range %d..%d)", id, bi, offsets[bi], offsets[bi+1]-1)
			}
			if seen[local] {
				return "", fmt.Errorf("emit: node %d emitted twice in block %d", id, bi)
			}
			seen[local] = true
			fmt.Fprintf(&out, "\t%s\n", b.Instrs[local].Mnemonic())
		}
	}
	return out.String(), nil
}

// Loop renders a scheduled single-block loop body under its label.
func Loop(b isa.Block, order []graph.NodeID) (string, error) {
	if len(order) != len(b.Instrs) {
		return "", fmt.Errorf("emit: order has %d of %d instructions", len(order), len(b.Instrs))
	}
	var out strings.Builder
	if b.Label != "" {
		fmt.Fprintf(&out, "%s:\n", b.Label)
	}
	seen := make([]bool, len(b.Instrs))
	for _, id := range order {
		if int(id) < 0 || int(id) >= len(b.Instrs) || seen[id] {
			return "", fmt.Errorf("emit: bad node %d", id)
		}
		seen[id] = true
		fmt.Fprintf(&out, "\t%s\n", b.Instrs[id].Mnemonic())
	}
	return out.String(), nil
}

// BranchLast reports whether every block's scheduled order keeps its
// terminating branch last — a well-formedness check for emitted code (the
// control dependences should force this; a violation indicates a broken
// dependence graph).
func BranchLast(blocks []isa.Block, orders map[int][]graph.NodeID) error {
	offsets := make([]int, len(blocks)+1)
	for i, b := range blocks {
		offsets[i+1] = offsets[i] + len(b.Instrs)
	}
	for bi, b := range blocks {
		hasBranch := false
		for _, in := range b.Instrs {
			if in.IsBranch() {
				hasBranch = true
			}
		}
		if !hasBranch || len(orders[bi]) == 0 {
			continue
		}
		lastID := orders[bi][len(orders[bi])-1]
		local := int(lastID) - offsets[bi]
		if local < 0 || local >= len(b.Instrs) || !b.Instrs[local].IsBranch() {
			return fmt.Errorf("emit: block %d does not end in its branch", bi)
		}
	}
	return nil
}

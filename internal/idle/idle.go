// Package idle implements Procedure Move_Idle_Slot and Delay_Idle_Slots
// from Sarkar & Simons (SPAA '96, §3, Figures 4 and 6): delaying each idle
// slot of a schedule as late as possible — without increasing the makespan —
// by iteratively tightening the deadline of the tail node that finishes just
// before the slot and re-running the Rank Algorithm.
//
// Moving idle slots late is the enabling step for anticipatory scheduling:
// a trailing idle slot can be filled at run time by the hardware lookahead
// window with an instruction from the next basic block, whereas an early
// idle slot is wasted.
//
// For unit execution times, 0/1 latencies and a single functional unit,
// repeated application provably yields a minimum-makespan schedule whose
// idle slots each occur as late as possible; for general machines it is the
// heuristic of §4.2.
//
// The pass is the engine's hottest loop — every slot demotion re-runs the
// Rank Algorithm — so it is built on a shared rank.Ctx: the graph analysis
// is done once per pass, each demotion re-ranks only the demoted node's
// ancestors (rank.Ctx.Update), the refill test and the reschedule share one
// rank computation, and per-unit timelines index tail nodes and idle slots
// instead of rescanning the schedule. The pass's own scratch — tentative
// deadlines, rank buffer, three rotating unit timelines — is stashed on the
// context (rank.Ctx.Aux) so repeated passes over one context allocate
// nothing beyond the schedules themselves. ReferenceMoveIdleSlot and
// ReferenceDelayIdleSlots retain the naive implementation for differential
// tests.
package idle

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

// MoveResult reports the outcome of one Move_Idle_Slot call.
type MoveResult struct {
	S *sched.Schedule
	D []int // deadlines: committed modifications on success, the originals on failure
	// Moved is true when the processed idle slot now starts later or was
	// eliminated entirely (possible on multi-unit machines).
	Moved bool
	// NewStart is the new start time of the processed slot, or -1 when the
	// slot was eliminated.
	NewStart int
}

// moveOutcome is the allocation-free engine-internal MoveResult: the public
// wrappers box it, Delay_Idle_Slots consumes it by value. d aliases the
// context scratch on success and the caller's input on failure.
type moveOutcome struct {
	s        *sched.Schedule
	d        []int
	moved    bool
	newStart int
}

// maxInner bounds the demote-and-reschedule loop; each iteration demotes one
// more pre-slot node, so the loop is bounded by the node count anyway — the
// constant guards against pathological general-machine behaviour.
const maxInner = 4

// unitTimeline indexes one unit of a schedule: the node finishing at each
// time and the idle-slot start times, built in one pass so Move_Idle_Slot's
// per-iteration tail lookups and slot scans are O(1)/precomputed instead of
// rescanning all nodes. Timelines are value scratch reinitialised with init;
// the busy window is a bitset so slot collection is word-parallel.
type unitTimeline struct {
	finish []graph.NodeID // finish[t] = node on the unit finishing at t, or None
	slots  []int          // idle-slot start times, ascending
	busy   graph.Bitset
}

// init rebuilds the timeline of one unit of s in O(n + makespan), reusing
// the receiver's backing arrays.
func (tl *unitTimeline) init(s *sched.Schedule, unit int) {
	T := s.Makespan()
	if cap(tl.finish) < T+1 {
		tl.finish = make([]graph.NodeID, T+1)
	}
	tl.finish = tl.finish[:T+1]
	for i := range tl.finish {
		tl.finish[i] = graph.None
	}
	words := (T + 63) / 64
	if cap(tl.busy) < words {
		tl.busy = make(graph.Bitset, words)
	}
	tl.busy = tl.busy[:words]
	clear(tl.busy)
	for v := 0; v < s.Len(); v++ {
		if s.Start[v] == sched.Unassigned || s.Unit[v] != unit {
			continue
		}
		f := s.Finish(graph.NodeID(v))
		if f >= 0 && f < len(tl.finish) {
			tl.finish[f] = graph.NodeID(v)
		}
		tl.busy.SetRange(s.Start[v], min(f, T))
	}
	tl.slots = tl.slots[:0]
	for t := tl.busy.NextClear(0); t < T; t = tl.busy.NextClear(t + 1) {
		tl.slots = append(tl.slots, t)
	}
}

// tail returns the node finishing exactly at time t on the unit, or None.
func (tl *unitTimeline) tail(t int) graph.NodeID {
	if t < 0 || t >= len(tl.finish) {
		return graph.None
	}
	return tl.finish[t]
}

// slotOrdinal returns the index of the idle slot starting at t among slots,
// or -1.
func slotOrdinal(slots []int, t int) int {
	for i, st := range slots {
		if st == t {
			return i
		}
	}
	return -1
}

// delayScratch is the pass scratch stashed on a rank context (Aux): the
// tentative deadline buffer, the rank buffer, and three unit timelines — the
// caller-visible one plus two candidates the engine alternates between, so
// the timeline of the input schedule (needed intact by the failure path) is
// never clobbered.
type delayScratch struct {
	dd    []int
	ranks []int
	tls   [3]unitTimeline
}

// scratchFor returns the context's delay scratch, creating and stashing it
// on first use.
func scratchFor(c *rank.Ctx) *delayScratch {
	if st, ok := c.Aux().(*delayScratch); ok {
		return st
	}
	st := &delayScratch{}
	c.SetAux(st)
	return st
}

// grow returns buf resized to n, reusing its backing when possible.
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// MoveIdleSlot is Procedure Move_Idle_Slot (paper Figure 4) for the idle
// slot starting at time t on the given unit of schedule s, under deadlines
// d. tie is the rank-tie-break order (nil = program order).
//
// The procedure (a) caps the deadline of every node finishing at or before t
// to t, so rescheduling can never move the slot earlier, then (b) repeatedly
// demotes the deadline of the node finishing exactly at the slot (forcing it
// one cycle earlier) and re-runs rank_alg, until the slot moves later, is
// eliminated, or the instance becomes infeasible. On failure the input
// schedule and deadlines are returned unchanged (Moved == false).
func MoveIdleSlot(s *sched.Schedule, m *machine.Machine, d []int, unit, t int, tie []graph.NodeID) (*MoveResult, error) {
	return MoveIdleSlotT(s, m, d, unit, t, tie, nil)
}

// MoveIdleSlotT is MoveIdleSlot with optional tracing: every tail-deadline
// demotion emits a KindDeadlineTighten event (the slot's start time in
// Cycle, the deadline change in From→To). Builds a throwaway rank context;
// passes moving many slots of one schedule should go through
// DelayIdleSlotsCtx.
func MoveIdleSlotT(s *sched.Schedule, m *machine.Machine, d []int, unit, t int, tie []graph.NodeID, tr obs.Tracer) (*MoveResult, error) {
	c, err := rank.NewCtx(s.G, m)
	if err != nil {
		return nil, err
	}
	out, _, err := moveIdleSlot(c, s, d, unit, t, tie, tr, nil)
	if err != nil {
		return nil, err
	}
	return &MoveResult{S: out.s, D: out.d, Moved: out.moved, NewStart: out.newStart}, nil
}

// moveIdleSlot is the engine behind MoveIdleSlotT: it reuses the shared rank
// context, keeps ranks incrementally updated across demotions (only the
// demoted tail's ancestors are re-ranked), shares the rank computation
// between the refill test and the reschedule, and accepts/returns the unit
// timeline of the input/result schedule so Delay_Idle_Slots never rebuilds
// one it already has. All timelines live in the context's delay scratch; a
// returned timeline is valid until the scratch cycles back to it (two more
// successful moves), which is longer than any caller holds one.
func moveIdleSlot(c *rank.Ctx, s *sched.Schedule, d []int, unit, t int, tie []graph.NodeID, tr obs.Tracer, tl *unitTimeline) (moveOutcome, *unitTimeline, error) {
	n := s.Len()
	if len(d) != n {
		return moveOutcome{}, nil, fmt.Errorf("idle: %d deadlines for %d nodes", len(d), n)
	}
	st := scratchFor(c)
	fail := moveOutcome{s: s, d: d, moved: false, newStart: t}

	if tl == nil {
		tl = &st.tls[0]
		tl.init(s, unit)
	}
	// The two timelines the engine may build results into: the slots of the
	// scratch not holding the input timeline.
	var cands [2]*unitTimeline
	k := 0
	for i := range st.tls {
		if &st.tls[i] != tl && k < 2 {
			cands[k] = &st.tls[i]
			k++
		}
	}
	flip := 0

	ordinal := slotOrdinal(tl.slots, t)
	if ordinal < 0 {
		return moveOutcome{}, nil, fmt.Errorf("idle: no idle slot at time %d on unit %d", t, unit)
	}

	// Tentative deadline state; surfaced to the caller only on success.
	st.dd = grow(st.dd, n)
	dd := st.dd
	copy(dd, d)
	// Step (a): nodes scheduled prior to the slot must stay prior to it.
	for v := 0; v < n; v++ {
		if s.Finish(graph.NodeID(v)) <= t && dd[v] > t {
			dd[v] = t
		}
	}

	cur, curTL := s, tl
	oldMakespan := s.Makespan()
	st.ranks = grow(st.ranks, n)
	ranks := st.ranks
	ranked := false
	for iter := 0; iter < n*maxInner; iter++ {
		// The tail node a_i: finishes exactly at the slot start on this unit.
		tail := curTL.tail(t)
		if tail == graph.None {
			return fail, tl, nil // slot preceded by idle time: nothing to demote
		}
		newDeadline := t - 1
		if newDeadline < c.Exec(tail) {
			return fail, tl, nil // the tail cannot finish any earlier
		}
		// In a feasible schedule finish(tail) = t ≤ dd[tail], so this always
		// tightens.
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindDeadlineTighten, Node: tail,
				Label: c.Label(tail), Block: c.Block(tail),
				Unit: unit, Cycle: t, From: dd[tail], To: newDeadline})
		}
		dd[tail] = newDeadline

		if !ranked {
			if err := c.ComputeInto(ranks, dd); err != nil {
				return moveOutcome{}, nil, err
			}
			ranked = true
		} else {
			// Only dd[tail] changed since the previous iteration's ranks:
			// re-rank just the tail and its ancestors.
			c.UpdateOne(ranks, dd, tail)
		}
		// Failure test of Figure 4: some pre-slot node must still be allowed
		// to complete at t, otherwise the vacated slot cannot be refilled.
		refill := false
		for v := 0; v < n; v++ {
			if cur.Finish(graph.NodeID(v)) <= t && ranks[v] >= t {
				refill = true
				break
			}
		}
		if !refill {
			return fail, tl, nil
		}

		// The reschedule shares the ranks the refill test just used.
		res, err := c.RunRanks(ranks, dd, tie)
		if err != nil {
			return moveOutcome{}, nil, err
		}
		if !res.Feasible || res.S.Makespan() > oldMakespan {
			return fail, tl, nil
		}
		resTL := cands[flip]
		flip = 1 - flip
		resTL.init(res.S, unit)
		slots := resTL.slots
		if ordinal >= len(slots) {
			// Slot eliminated (heuristic regime): success.
			return moveOutcome{s: res.S, d: dd, moved: true, newStart: -1}, resTL, nil
		}
		nt := slots[ordinal]
		switch {
		case nt > t:
			return moveOutcome{s: res.S, d: dd, moved: true, newStart: nt}, resTL, nil
		case nt < t:
			// Should be impossible given the pre-slot caps; bail out safely.
			return fail, tl, nil
		default:
			cur, curTL = res.S, resTL // slot unchanged: demote the (possibly new) tail and retry
		}
	}
	return fail, tl, nil
}

// DelayIdleSlots is procedure Delay_Idle_Slots (paper Figure 6): process the
// idle slots of every unit from earliest to latest, repeatedly calling
// MoveIdleSlot on each until it can no longer be delayed. Returns the final
// schedule and committed deadlines.
func DelayIdleSlots(s *sched.Schedule, m *machine.Machine, d []int, tie []graph.NodeID) (*sched.Schedule, []int, error) {
	return DelayIdleSlotsT(s, m, d, tie, nil)
}

// DelayIdleSlotsT is DelayIdleSlots with optional tracing: the pass is
// bracketed by pass-start/pass-end events named obs.PassDelayIdleSlots, and
// every successful Move_Idle_Slot emits a KindSlotMove event (unit, old
// start in From, new start in To, −1 = slot eliminated) in addition to the
// per-demotion KindDeadlineTighten events from MoveIdleSlotT.
func DelayIdleSlotsT(s *sched.Schedule, m *machine.Machine, d []int, tie []graph.NodeID, tr obs.Tracer) (*sched.Schedule, []int, error) {
	c, err := rank.NewCtx(s.G, m)
	if err != nil {
		return nil, nil, err
	}
	return DelayIdleSlotsCtx(c, s, d, tie, tr)
}

// DelayIdleSlotsCtx is DelayIdleSlotsT on a caller-supplied rank context
// (which must have been built for s's graph — or, for schedules produced
// from an induced graph view, for a view of the same size): Algorithm
// Lookahead holds one context per merged subgraph and shares it between the
// merge re-ranks and this pass. The returned deadline slice is freshly
// allocated and owned by the caller.
func DelayIdleSlotsCtx(c *rank.Ctx, s *sched.Schedule, d []int, tie []graph.NodeID, tr obs.Tracer) (*sched.Schedule, []int, error) {
	if c.Len() != s.Len() || (c.Graph() != nil && s.G != nil && c.Graph() != s.G) {
		return nil, nil, fmt.Errorf("idle: rank context built for a different graph")
	}
	m := c.Machine()
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassDelayIdleSlots,
			Block: -1, Node: graph.None, N: len(s.IdleSlots())})
	}
	st := scratchFor(c)
	cur := s
	dd := append([]int(nil), d...)
	for unit := 0; unit < m.TotalUnits(); unit++ {
		tl := &st.tls[0]
		tl.init(cur, unit)
		ordinal := 0
		for guard := 0; guard < cur.Len()*(cur.Makespan()+2); guard++ {
			slots := tl.slots
			if ordinal >= len(slots) {
				break
			}
			from := slots[ordinal]
			out, resTL, err := moveIdleSlot(c, cur, dd, unit, from, tie, tr, tl)
			if err != nil {
				return nil, nil, err
			}
			if out.moved {
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindSlotMove, Unit: unit,
						Block: -1, Node: graph.None,
						From: from, To: out.newStart})
				}
				cur = out.s
				copy(dd, out.d)
				tl = resTL
				continue // same ordinal: try to push it further
			}
			ordinal++
		}
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassDelayIdleSlots,
			Block: -1, Node: graph.None, N: cur.Makespan()})
	}
	return cur, dd, nil
}

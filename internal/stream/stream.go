// Package stream implements the incremental driver for Algorithm Lookahead:
// a trace is scheduled block by block as it arrives, instead of materialized
// up front.
//
// The batch driver (core.LookaheadOpts) is already one-pass — each merge
// sees only the carried suffix of the previous chopped schedule plus the
// next block — so streaming requires no new scheduling theory, only new
// plumbing: the engine keeps just the live nodes (carried suffix + the block
// being pushed) in compacted arrays, rebuilds the flat adjacency view per
// push, and funnels every push through the same core.Step (merge +
// Delay_Idle_Slots + chop) the batch driver uses. Committed chop prefixes
// are emitted immediately; a block's BlockResult is delivered as soon as
// every one of its instructions has been committed. Time-to-first-schedule
// drops from O(trace) to O(block), and memory is bounded by the suffix plus
// the configured lookahead window.
//
// Lookahead k bounds how long finality may be deferred: when block i is
// pushed, every block that arrived at least k pushes ago is force-finalized
// (its remaining suffix nodes are committed in schedule order, even without
// a qualifying chop slot). k = 0 is fully online — each block is final the
// moment it is scheduled, so merges never anticipate across blocks; k =
// Unbounded defers entirely to the chop rule, which makes the streamed
// output bit-identical to the batch result. Intermediate k trades emit lag
// and memory for schedule quality — the semi-online lookahead sweep of
// EXPERIMENTS.md S1.
package stream

import (
	"fmt"
	"math"

	"aisched/internal/baseline"
	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// Unbounded disables force-finalization: only the chop rule commits
// instructions, and the streamed output is bit-identical to batch
// scheduling.
const Unbounded = math.MaxInt

// Node is one instruction of a pushed block.
type Node struct {
	Label string
	Exec  int
	Class int
}

// Dep is one dependence edge into the block being pushed: Dst must be a node
// of the current block, Src any already-pushed node (including the current
// block). IDs are stream IDs — nodes are numbered sequentially in push
// order, so the i-th node ever pushed has ID i. Edges whose source has
// already been committed never enter a merge view (the batch merge's induced
// old ∪ new view excludes committed nodes identically); their latency
// instead becomes a release floor on the destination, anchored at the
// source's committed finish time.
type Dep struct {
	Src, Dst graph.NodeID
	Latency  int
}

// Block is one basic block of the arriving trace.
type Block struct {
	Nodes []Node
	Deps  []Dep
}

// BlockResult is one finalized block: its static instruction order (the
// subpermutation the compiler emits) plus the predicted absolute placement
// of each instruction in the stitched trace schedule.
type BlockResult struct {
	// Block is the block's stream index (0-based push order).
	Block int
	// Order is the block's final static instruction order, in stream IDs.
	Order []graph.NodeID
	// Start and Unit are the predicted absolute start cycles and units,
	// parallel to Order.
	Start []int
	Unit  []int
	// Lag is the number of pushes between the block's arrival and its
	// emission: 0 means it was finalized by its own push.
	Lag int
	// Degraded is empty for a full anticipatory result; when a push budget
	// was exhausted it carries the reason and the block's order is the
	// baseline critical-path list schedule (PR 4 semantics: degrade, don't
	// error, keep streaming).
	Degraded string
}

// Options tunes a streaming scheduler.
type Options struct {
	// Lookahead is the semi-online lookahead k (see the package comment):
	// 0 (the zero value) is fully online, Unbounded is batch-identical.
	// Negative values are treated as 0.
	Lookahead int
	// Tracer, when non-nil, receives a KindStreamPush event per push, a
	// KindStreamEmit event per finalized block, and the per-merge events of
	// core.Step (merge, loosen, pin, chop, idle-slot moves).
	Tracer obs.Tracer
	// StepCache, when non-nil, memoizes whole merge + delay + chop push
	// iterations keyed by structural fingerprints (see core/stepcache.go).
	// The stream's view layout is canonical by construction — carried suffix
	// first in ascending stream-ID order, then the pushed block — so every
	// push is cacheable (tracer-attached pushes bypass, to keep per-pass
	// events). Results are bit-identical with and without it.
	StepCache *core.StepCache
}

// blockAcc accumulates one in-flight block's emission.
type blockAcc struct {
	res       BlockResult
	arrivedAt int // push index at which the block arrived
	remaining int // nodes not yet committed
}

// Scheduler is the incremental trace scheduler. Not safe for concurrent use;
// the aisched facade serializes access.
type Scheduler struct {
	m  *machine.Machine
	k  int
	tr obs.Tracer
	sc *core.StepCache

	step   core.Step
	stepIn core.StepIn

	nextID graph.NodeID // next stream ID to assign
	pushed int          // number of blocks pushed so far

	// Live node store, view-indexed; live order is ascending stream ID
	// (carried suffix first, then the pushed block), which makes the view
	// node order agree with the batch driver's sorted old ∪ new IDs.
	gid    []graph.NodeID
	exec   []int32
	class  []int32
	blockN []int32
	labels []string
	dOld   []int
	fOld   []int
	rel    []int // carried release times (frame-relative; see core.StepIn.ROld)
	absS   []int // tentative absolute placement of carried nodes
	absU   []int
	isOld  []bool

	// Live adjacency (CSR over live indices).
	eOff []int32
	eDst []graph.NodeID
	eLat []int32

	// keep marks the live indices carried into the next push; carryOrder
	// lists them in schedule (permutation) order.
	keep       []bool
	carryOrder []graph.NodeID

	// fin[id] is the absolute finish time of committed stream ID id — the
	// ledger that turns a dependence on a long-gone instruction into a
	// release floor at ingest. One int per instruction ever pushed: the only
	// whole-stream state the engine keeps (everything else is bounded by the
	// live window).
	fin []int

	// Double buffers: ingest compacts into the n* arrays, then swaps.
	nGid    []graph.NodeID
	nExec   []int32
	nClass  []int32
	nBlockN []int32
	nLabels []string
	nDOld   []int
	nFOld   []int
	nRel    []int
	nAbsS   []int
	nAbsU   []int
	nEOff   []int32
	nEDst   []graph.NodeID
	nELat   []int32

	remap  []int32 // previous live index → new live index, or −1
	toLive []int32 // stream ID − gidBase → live index, or −1
	degCnt []int32 // edge-count/cursor scratch for the CSR build

	tie []graph.NodeID

	oldMakespan int
	timeBase    int

	blocks []*blockAcc // in-flight blocks, front first

	err error // sticky failure; set by cancellation or internal errors
}

// New returns an empty streaming scheduler for machine m.
func New(m *machine.Machine, opt Options) *Scheduler {
	k := opt.Lookahead
	if k < 0 {
		k = 0
	}
	return &Scheduler{m: m, k: k, tr: opt.Tracer, sc: opt.StepCache}
}

// SuffixLen reports the number of carried (not yet final) instructions.
func (e *Scheduler) SuffixLen() int { return len(e.carryOrder) }

// Pushed reports the number of blocks pushed so far.
func (e *Scheduler) Pushed() int { return e.pushed }

// Makespan reports the predicted completion time of everything pushed so
// far, including the carried suffix's tentative placement.
func (e *Scheduler) Makespan() int { return e.timeBase + e.oldMakespan }

// Err returns the sticky error that poisoned the stream, if any.
func (e *Scheduler) Err() error { return e.err }

// Push feeds the next block. It returns the blocks finalized by this push
// (often none; possibly several), in block order. bud, when non-nil, bounds
// the push (PR 4 semantics): on budget exhaustion the entire live window —
// carried suffix and the new block — is finalized with the baseline
// critical-path schedule, tagged Degraded, and the stream keeps accepting
// pushes. On cancellation or malformed input the stream is poisoned: the
// error is returned now and by every later call.
func (e *Scheduler) Push(b Block, bud *sbudget.State) ([]*BlockResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	if len(b.Nodes) == 0 {
		return nil, e.poison(fmt.Errorf("stream: empty block %d", e.pushed))
	}
	pushIdx := e.pushed
	if err := e.ingest(b); err != nil {
		return nil, e.poison(err)
	}
	n := len(e.gid)
	nOld := n - len(b.Nodes)

	e.tie = growSlice(e.tie, n)
	for i := range e.tie {
		e.tie[i] = graph.NodeID(i)
	}
	view := graph.AdjView{
		N: n, Off: e.eOff, Dst: e.eDst, Lat: e.eLat,
		Exec: e.exec, Class: e.class, Block: e.blockN, Labels: e.labels,
	}
	for _, l := range e.eLat {
		if int(l) > view.MaxLat {
			view.MaxLat = int(l)
		}
	}
	e.blocks = append(e.blocks, &blockAcc{
		res:       BlockResult{Block: pushIdx},
		arrivedAt: pushIdx,
		remaining: len(b.Nodes),
	})
	e.pushed++

	e.stepIn = core.StepIn{
		View: view, M: e.m, Tie: e.tie, IsOld: e.isOld,
		DOld: e.dOld, FOld: e.fOld, ROld: e.rel,
		OldCount: nOld, OldMakespan: e.oldMakespan,
		Block: pushIdx, Tracer: e.tr, Budget: bud,
	}
	out, err := e.step.RunMemo(&e.stepIn, e.sc, true)
	if err != nil {
		if reason := sbudget.Reason(err); reason != "" {
			return e.degrade(reason)
		}
		return nil, e.poison(err)
	}
	s, d := out.S, out.D

	// Commit the chopped prefix, then force-finalize what the lookahead
	// window no longer covers: every block that arrived more than k pushes
	// ago must leave the suffix, so the cut extends to the last finish time
	// of any such straggler (committing newer nodes scheduled before it — a
	// quality concession, never a correctness one: the committed set stays
	// a prefix of the schedule's time order, like any chop).
	base := out.Base
	for _, si := range out.Minus {
		e.commit(si, s.Start[si]+e.timeBase, s.Unit[si])
	}
	cut := -1
	if e.k != Unbounded {
		for _, si := range out.Plus {
			if int(e.blockN[si]) <= pushIdx-e.k {
				if f := s.Finish(si); f > cut {
					cut = f
				}
			}
		}
	}
	e.keep = growSlice(e.keep, n)
	clearBools(e.keep)
	e.carryOrder = e.carryOrder[:0]
	for _, si := range out.Plus {
		if cut >= 0 && s.Finish(si) <= cut {
			e.commit(si, s.Start[si]+e.timeBase, s.Unit[si])
			continue
		}
		e.keep[si] = true
		e.carryOrder = append(e.carryOrder, si)
	}
	if cut > base {
		base = cut
	}
	// Carry release times (mirror of the batch driver): rebase, then raise
	// each carried destination of an edge whose source was just committed —
	// by the chop or by the forced cut — so the latency outlives the edge's
	// removal from the view. A forced cut has no idle slot granting slack, so
	// even 0/1-latency streams can owe a positive release here.
	for si := 0; si < n; si++ {
		if e.rel[si] -= base; e.rel[si] < 0 {
			e.rel[si] = 0
		}
	}
	for si := 0; si < n; si++ {
		if e.keep[si] {
			continue
		}
		f := s.Finish(graph.NodeID(si))
		for ei := e.eOff[si]; ei < e.eOff[si+1]; ei++ {
			if r := f + int(e.eLat[ei]) - base; r > e.rel[e.eDst[ei]] {
				e.rel[e.eDst[ei]] = r
			}
		}
	}
	for _, si := range e.carryOrder {
		e.dOld[si] = d[si] - base
		e.fOld[si] = s.Finish(si) - base
		// Tentative placement; overwritten if a later merge reorders it.
		e.absS[si] = s.Start[si] + e.timeBase
		e.absU[si] = s.Unit[si]
	}
	e.oldMakespan = s.Makespan() - base
	e.timeBase += base

	if e.tr != nil {
		e.tr.Emit(obs.Event{Kind: obs.KindStreamPush, Block: pushIdx,
			Node: graph.None, From: nOld, To: len(b.Nodes), N: e.oldMakespan})
	}
	return e.pop(pushIdx), nil
}

// Flush finalizes the carried suffix at its tentative placement — exactly
// the batch driver's trailing emission — and returns every remaining block.
// The stream stays usable: later pushes start a fresh suffix after the
// flushed schedule.
func (e *Scheduler) Flush() ([]*BlockResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	for _, si := range e.carryOrder {
		e.commit(si, e.absS[si], e.absU[si])
	}
	e.carryOrder = e.carryOrder[:0]
	clearBools(e.keep)
	e.timeBase += e.oldMakespan
	e.oldMakespan = 0
	return e.pop(e.pushed), nil
}

// poison records a fatal error; every later call returns it.
func (e *Scheduler) poison(err error) error {
	e.err = err
	return err
}

// commit finalizes live node si at absolute (start, unit).
func (e *Scheduler) commit(si graph.NodeID, start, unit int) {
	a := e.blocks[int(e.blockN[si])-e.blocks[0].res.Block]
	a.res.Order = append(a.res.Order, e.gid[si])
	a.res.Start = append(a.res.Start, start)
	a.res.Unit = append(a.res.Unit, unit)
	a.remaining--
	e.fin[e.gid[si]] = start + int(e.exec[si])
}

// pop emits every fully committed block at the front of the in-flight list.
func (e *Scheduler) pop(pushIdx int) []*BlockResult {
	var out []*BlockResult
	for len(e.blocks) > 0 && e.blocks[0].remaining == 0 {
		a := e.blocks[0]
		e.blocks = e.blocks[1:]
		a.res.Lag = pushIdx - a.arrivedAt
		if e.tr != nil {
			e.tr.Emit(obs.Event{Kind: obs.KindStreamEmit, Block: a.res.Block,
				Node: graph.None, N: a.res.Lag})
		}
		out = append(out, &a.res)
	}
	return out
}

// degrade finalizes the whole live window with the baseline critical-path
// list schedule (per-block, no anticipation), tags every affected block, and
// leaves the stream empty and accepting.
func (e *Scheduler) degrade(reason string) ([]*BlockResult, error) {
	n := len(e.gid)
	tg := graph.New(n)
	for i := 0; i < n; i++ {
		tg.AddNode(e.labels[i], int(e.exec[i]), int(e.class[i]), int(e.blockN[i]))
	}
	for v := 0; v < n; v++ {
		for ei := e.eOff[v]; ei < e.eOff[v+1]; ei++ {
			tg.MustEdge(graph.NodeID(v), e.eDst[ei], int(e.eLat[ei]), 0)
		}
	}
	order, err := baseline.ScheduleTrace(baseline.CriticalPath{}, tg, e.m)
	if err != nil {
		return nil, e.poison(err)
	}
	// The carried releases still apply: latencies owed to already-emitted
	// instructions must hold in the degraded placement too.
	s, err := sched.ListScheduleRelease(tg, e.m, order, e.rel[:n])
	if err != nil {
		return nil, e.poison(err)
	}
	for _, a := range e.blocks {
		a.res.Degraded = reason
	}
	for _, si := range order {
		e.commit(si, s.Start[si]+e.timeBase, s.Unit[si])
	}
	e.carryOrder = e.carryOrder[:0]
	e.keep = growSlice(e.keep, n)
	clearBools(e.keep)
	e.oldMakespan = 0
	e.timeBase += s.Makespan()
	return e.pop(e.pushed - 1), nil
}

// ingest compacts the live store down to the carried suffix and appends
// block b: node attributes, carried deadlines/finishes, and the rebuilt
// flat adjacency over live indices.
func (e *Scheduler) ingest(b Block) error {
	nPrev := len(e.gid)
	nKept := len(e.carryOrder)
	n := nKept + len(b.Nodes)

	// Compact kept nodes into the double buffers, preserving ascending
	// stream-ID order (keep-mask filter of an ascending array).
	e.remap = growSlice(e.remap, nPrev)
	remap := e.remap
	e.nGid = growSlice(e.nGid, n)
	e.nExec = growSlice(e.nExec, n)
	e.nClass = growSlice(e.nClass, n)
	e.nBlockN = growSlice(e.nBlockN, n)
	e.nLabels = growSlice(e.nLabels, n)
	e.nDOld = growSlice(e.nDOld, n)
	e.nFOld = growSlice(e.nFOld, n)
	e.nRel = growSlice(e.nRel, n)
	e.nAbsS = growSlice(e.nAbsS, n)
	e.nAbsU = growSlice(e.nAbsU, n)
	w := 0
	for i := 0; i < nPrev; i++ {
		if !e.keep[i] {
			remap[i] = -1
			continue
		}
		remap[i] = int32(w)
		e.nGid[w] = e.gid[i]
		e.nExec[w] = e.exec[i]
		e.nClass[w] = e.class[i]
		e.nBlockN[w] = e.blockN[i]
		e.nLabels[w] = e.labels[i]
		e.nDOld[w] = e.dOld[i]
		e.nFOld[w] = e.fOld[i]
		e.nRel[w] = e.rel[i]
		e.nAbsS[w] = e.absS[i]
		e.nAbsU[w] = e.absU[i]
		w++
	}
	if w != nKept {
		return fmt.Errorf("stream: carried %d of %d suffix nodes", w, nKept)
	}
	firstNew := e.nextID
	for i, nd := range b.Nodes {
		exec := nd.Exec
		if exec < 1 {
			exec = 1
		}
		e.nGid[w+i] = firstNew + graph.NodeID(i)
		e.nExec[w+i] = int32(exec)
		e.nClass[w+i] = int32(nd.Class)
		e.nBlockN[w+i] = int32(e.pushed)
		e.nLabels[w+i] = nd.Label
		e.nRel[w+i] = 0
	}
	e.nextID += graph.NodeID(len(b.Nodes))
	for len(e.fin) < int(e.nextID) {
		e.fin = append(e.fin, 0)
	}

	// Swap the node stores; the previous arrays become next push's scratch.
	e.gid, e.nGid = e.nGid[:n], e.gid
	e.exec, e.nExec = e.nExec[:n], e.exec
	e.class, e.nClass = e.nClass[:n], e.class
	e.blockN, e.nBlockN = e.nBlockN[:n], e.blockN
	e.labels, e.nLabels = e.nLabels[:n], e.labels
	e.dOld, e.nDOld = e.nDOld[:n], e.dOld
	e.fOld, e.nFOld = e.nFOld[:n], e.fOld
	e.rel, e.nRel = e.nRel[:n], e.rel
	e.absS, e.nAbsS = e.nAbsS[:n], e.absS
	e.absU, e.nAbsU = e.nAbsU[:n], e.absU
	e.isOld = growSlice(e.isOld, n)
	for i := 0; i < n; i++ {
		e.isOld[i] = i < nKept
	}

	// Stream-ID → live-index window for dependence ingestion. Live IDs all
	// lie in [gidBase, nextID): the window spans at most the suffix's
	// blocks (≤ k+1) plus the new one, which is the memory bound.
	gidBase := e.nextID - graph.NodeID(n)
	if n > 0 {
		gidBase = e.gid[0]
	}
	win := int(e.nextID - gidBase)
	e.toLive = growSlice(e.toLive, win)
	toLive := e.toLive
	for i := range toLive {
		toLive[i] = -1
	}
	for i := 0; i < n; i++ {
		toLive[e.gid[i]-gidBase] = int32(i)
	}

	// Rebuild the live CSR: carried edges among kept nodes (remapped), plus
	// the new block's dependences. Count, prefix-sum, fill.
	e.degCnt = growSlice(e.degCnt, n)
	deg := e.degCnt
	clearInt32(deg)
	for v := 0; v < nPrev; v++ {
		sv := remap[v]
		if sv < 0 {
			continue
		}
		for ei := e.eOff[v]; ei < e.eOff[v+1]; ei++ {
			if remap[e.eDst[ei]] >= 0 {
				deg[sv]++
			}
		}
	}
	for _, dp := range b.Deps {
		if dp.Dst < firstNew || dp.Dst >= e.nextID {
			return fmt.Errorf("stream: dep %d→%d targets outside block %d [%d,%d)",
				dp.Src, dp.Dst, e.pushed, firstNew, e.nextID)
		}
		if dp.Src < 0 || dp.Src >= e.nextID {
			return fmt.Errorf("stream: dep source %d not yet pushed (next ID %d)", dp.Src, e.nextID)
		}
		if dp.Latency < 0 {
			return fmt.Errorf("stream: dep %d→%d has negative latency", dp.Src, dp.Dst)
		}
		sv := int32(-1)
		if dp.Src >= gidBase {
			sv = toLive[dp.Src-gidBase]
		}
		if sv < 0 {
			// Source already committed: the edge never reaches a merge view
			// (the batch driver's induced old ∪ new view excludes it just the
			// same), so its latency becomes a release floor on the
			// destination, read from the finish ledger.
			dl := toLive[dp.Dst-gidBase]
			if r := e.fin[dp.Src] + dp.Latency - e.timeBase; r > e.rel[dl] {
				e.rel[dl] = r
			}
			continue
		}
		deg[sv]++
	}
	e.nEOff = growSlice(e.nEOff, n+1)
	eOff := e.nEOff
	sum := int32(0)
	for i := 0; i < n; i++ {
		eOff[i] = sum
		sum += deg[i]
	}
	eOff[n] = sum
	e.nEDst = growSlice(e.nEDst, int(sum))
	e.nELat = growSlice(e.nELat, int(sum))
	eDst, eLat := e.nEDst, e.nELat
	cursor := deg // reuse the count scratch as per-node fill cursors
	copy(cursor, eOff[:n])
	for v := 0; v < nPrev; v++ {
		sv := remap[v]
		if sv < 0 {
			continue
		}
		for ei := e.eOff[v]; ei < e.eOff[v+1]; ei++ {
			dv := remap[e.eDst[ei]]
			if dv < 0 {
				continue
			}
			c := cursor[sv]
			eDst[c] = graph.NodeID(dv)
			eLat[c] = e.eLat[ei]
			cursor[sv]++
		}
	}
	for _, dp := range b.Deps {
		if dp.Src < gidBase {
			continue
		}
		sv := toLive[dp.Src-gidBase]
		if sv < 0 {
			continue // committed source: turned into a release floor above
		}
		c := cursor[sv]
		eDst[c] = graph.NodeID(toLive[dp.Dst-gidBase])
		eLat[c] = int32(dp.Latency)
		cursor[sv]++
	}
	e.eOff, e.nEOff = eOff, e.eOff
	e.eDst, e.nEDst = eDst, e.eDst
	e.eLat, e.nELat = eLat, e.eLat
	return nil
}

func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

func clearInt32(b []int32) {
	for i := range b {
		b[i] = 0
	}
}

// Command aisched schedules an assembly file with anticipatory instruction
// scheduling and reports the static per-block code plus the dynamic
// completion time under the lookahead-window hardware model, compared
// against local baselines.
//
// Usage:
//
//	aisched [-mode trace|loop] [-w window] [-machine single|rs6000|wide2] [-iters n]
//	        [-par on|off] [-trace out.json] [-stats] [-timeline] file.s
//
// With no file, the paper's Figure 3 partial-products loop is used.
//
// Modes:
//
//	trace   — treat the file's blocks as a trace; run Algorithm Lookahead.
//	loop    — treat the first block as a single-block loop body; run the §5.2
//	          general-case loop scheduler and report steady-state cycles/iter.
//	program — treat the file as mini-C source: compile it, select traces over
//	          the CFG, and schedule every trace through the parallel batch
//	          pipeline with the content-addressed schedule cache; reports
//	          per-trace makespans and the cache hit/miss counters.
//	stream  — feed the file's blocks one Push at a time through the streaming
//	          scheduler (lookahead -k; -k -1 = unbounded, batch-identical)
//	          and print each block's schedule the moment it is finalized,
//	          with its emit lag; then compare the streamed makespan against
//	          batch ScheduleTrace.
//
// Program and stream modes run with the structural step cache on by default
// (-stepcache=off disables it, -stepcache-size bounds its fragment count);
// repeated block shapes replay memoized merge/chop steps, and the hit/miss
// counters are reported after the run. Results are bit-identical either way.
//
// Trace and program modes run with speculative parallel trace scheduling in
// its default auto mode (-par=off pins the sequential walk): long traces are
// partitioned at barrier-scored cut points, segments are scheduled
// speculatively on parallel workers and accepted on an O(1) entry-state
// fingerprint match. When the speculative path engaged, the verified/missed
// segment counters are printed after the run. Results are bit-identical
// either way; -par only exists to measure the difference.
//
// Observability:
//
//	-trace out.json — write a Chrome trace-event JSON of the scheduler passes
//	                  and the cycle-level window simulation; load it in
//	                  Perfetto (ui.perfetto.dev) or chrome://tracing.
//	-stats          — print the metrics snapshot (stall breakdown, window
//	                  occupancy, idle-slot fills, ...) as JSON.
//	-timeline       — print a plain-text per-unit pipeline timeline.
//	-metrics        — after the run, print the always-on process metrics
//	                  (counters, gauges, latency histograms) as JSON.
//	-debug-addr a   — serve /metrics (Prometheus), /statsz, /healthz, and
//	                  /debug/pprof/* on the given address for the lifetime of
//	                  the run.
//	-version        — print the build identity (module version, VCS revision)
//	                  and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"aisched"
	"aisched/internal/baseline"
	"aisched/internal/emit"
	"aisched/internal/graph"
	"aisched/internal/isa"
	"aisched/internal/machine"
	"aisched/internal/tables"
)

const fig3Asm = `
CL.18:
	loadu  r6, 4(r7)   ; load x[i], bump pointer
	storeu r0, 4(r5)   ; store y[i-1], bump pointer
	cmpi   cr1, r6, 0  ; x[i] == 0 ?
	mul    r0, r6, r0  ; y[i] = y[i-1] * x[i]
	bt     cr1, CL.18  ; loop back
`

// fig3Program is the paper's Figure 3 C fragment (§2.4), the default input
// of -mode program.
const fig3Program = `
int x[100];
int y[100];
int i;
y[0] = x[0];
for (i = 1; x[i] != 0; i = i + 1) {
	y[i] = y[i-1] * x[i];
}
y[i] = 0;
`

func main() {
	var (
		mode      = flag.String("mode", "loop", "trace, loop, program, or stream")
		kAhead    = flag.Int("k", 0, "stream mode: lookahead k (0 = fully online, -1 = unbounded/batch-identical)")
		backendN  = flag.String("backend", "heuristic", "trace mode: heuristic or exact (exact runs the capped branch-and-bound oracle and reports the provable optimum)")
		w         = flag.Int("w", 4, "lookahead window size W")
		mdl       = flag.String("machine", "single", "single, rs6000, or wide2")
		iters     = flag.Int("iters", 20, "loop iterations to simulate")
		unroll    = flag.Int("unroll", 1, "loop unroll factor (loop mode)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto) to this file")
		stats     = flag.Bool("stats", false, "print the observability metrics snapshot as JSON")
		timeline  = flag.Bool("timeline", false, "print a plain-text pipeline timeline")
		bPasses   = flag.Int("budget-passes", 0, "program mode: per-trace rank-pass budget; exhausted traces degrade to the baseline list schedule (0 = unlimited)")
		bMillis   = flag.Int("budget-ms", 0, "program mode: per-trace wall-clock budget in milliseconds (0 = unlimited)")
		par       = flag.String("par", "on", "speculative parallel trace scheduling: on (auto) or off (trace and program modes)")
		stepcache = flag.String("stepcache", "on", "structural step cache: on or off (program and stream modes)")
		stepSize  = flag.Int("stepcache-size", 0, "step cache fragment budget (0 = default 4096)")
		metricsF  = flag.Bool("metrics", false, "print the always-on process metrics snapshot as JSON after the run")
		dbgAddr   = flag.String("debug-addr", "", "serve /metrics, /statsz, /healthz, and /debug/pprof/* on this address (e.g. localhost:6060)")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("aisched", aisched.VersionInfo())
		return
	}
	if *dbgAddr != "" {
		d, err := aisched.ServeDebug(*dbgAddr)
		if err != nil {
			fatal(err)
		}
		defer d.Close()
		fmt.Printf("debug server on http://%s (/metrics /statsz /healthz /debug/pprof/)\n", d.Addr())
	}

	var rec *aisched.TraceRecorder
	if *traceOut != "" || *stats || *timeline {
		rec = aisched.NewRecorder()
		rec.SetMeta("build", aisched.VersionInfo().String())
	}

	// stepCap is the step-cache fragment budget threaded to both facades:
	// -1 disables, 0 is the default size.
	stepCap := *stepSize
	switch *stepcache {
	case "on":
	case "off":
		stepCap = -1
	default:
		fatal(fmt.Errorf("-stepcache must be on or off, got %q", *stepcache))
	}
	// parTrace is the SchedulerOptions.ParallelTrace value: 0 is the auto
	// gate (engages on long traces when GOMAXPROCS permits), -1 pins the
	// sequential walk.
	parTrace := 0
	switch *par {
	case "on":
	case "off":
		parTrace = -1
	default:
		fatal(fmt.Errorf("-par must be on or off, got %q", *par))
	}

	var m *machine.Machine
	switch *mdl {
	case "single":
		m = machine.SingleUnit(*w)
	case "rs6000":
		m = machine.RS6000(*w)
	case "wide2":
		m = machine.Superscalar(2, *w)
	default:
		fatal(fmt.Errorf("unknown machine %q", *mdl))
	}
	fmt.Printf("machine: %s\n\n", m)

	if *mode == "program" {
		src := fig3Program
		if flag.NArg() > 0 {
			data, err := os.ReadFile(flag.Arg(0))
			if err != nil {
				fatal(err)
			}
			src = string(data)
		}
		budget := aisched.Budget{
			WallClock:     time.Duration(*bMillis) * time.Millisecond,
			MaxRankPasses: *bPasses,
		}
		runProgram(src, m, rec, budget, stepCap, parTrace)
	} else {
		src := fig3Asm
		if flag.NArg() > 0 {
			data, err := os.ReadFile(flag.Arg(0))
			if err != nil {
				fatal(err)
			}
			src = string(data)
		}
		blocks, err := aisched.ParseAsm(src)
		if err != nil {
			fatal(err)
		}
		if len(blocks) == 0 {
			fatal(fmt.Errorf("no instructions"))
		}
		switch *mode {
		case "loop":
			runLoop(blocks[0], m, *iters, *unroll, rec)
		case "trace":
			runTrace(blocks, m, rec, *backendN, parTrace)
		case "stream":
			runStream(blocks, m, *kAhead, rec, stepCap)
		default:
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
	}

	if rec != nil {
		reportObs(rec, *traceOut, *stats, *timeline)
	}
	if *metricsF {
		data, err := aisched.MetricsSnapshot().JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nprocess metrics:\n%s\n", data)
	}
}

// reportObs renders whatever the recorder captured: a text timeline and/or a
// JSON stats snapshot on stdout, and/or a Chrome trace-event file on disk.
func reportObs(rec *aisched.TraceRecorder, traceOut string, stats, timeline bool) {
	if timeline {
		fmt.Println("\npipeline timeline:")
		fmt.Print(rec.Timeline())
	}
	if stats {
		data, err := rec.Stats().JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nstats:\n%s\n", data)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace (%d events) to %s — load in ui.perfetto.dev or chrome://tracing\n",
			rec.Len(), traceOut)
	}
}

func runLoop(b isa.Block, m *machine.Machine, iters, unroll int, rec *aisched.TraceRecorder) {
	g := aisched.BuildLoopGraph(b.Instrs)
	t := tables.New(fmt.Sprintf("loop %s: steady-state comparison", b.Label),
		"scheduler", "cycles/iter (periodic)", "completion of n="+fmt.Sprint(iters))
	progOrder := sourceOrder(g)
	prog, err := aisched.EvaluateLoopOrder(g, m, progOrder)
	if err != nil {
		fatal(err)
	}
	t.Add("program order", prog.II, prog.CompletionN(iters))
	best, err := observer(rec).ScheduleLoop(g, m)
	if err != nil {
		fatal(err)
	}
	t.Add("anticipatory (5.2)", best.II, best.CompletionN(iters))
	fmt.Println(t)
	body, err := emit.Loop(b, best.Order)
	if err != nil {
		fatal(err)
	}
	fmt.Println("anticipatory body order:")
	fmt.Print(body)
	dyn, err := aisched.LoopSteadyState(g, m, best.Order, aisched.SimOptions{Speculate: true})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ndynamic steady state on window hardware: %.2f cycles/iter\n", dyn)
	if rec != nil {
		// Capture the cycle-level events of the full n-iteration run.
		if _, err := observer(rec).SimulateLoop(g, m, best.Order, iters,
			aisched.SimOptions{Speculate: true}); err != nil {
			fatal(err)
		}
	}

	if unroll > 1 {
		u, err := aisched.UnrollLoop(g, m, unroll)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("unrolled ×%d: %.2f cycles per original iteration\n", unroll, u.PerIteration())
	}
}

func runTrace(blocks []isa.Block, m *machine.Machine, rec *aisched.TraceRecorder, backendName string, parTrace int) {
	var seqs [][]isa.Instr
	for _, b := range blocks {
		seqs = append(seqs, b.Instrs)
	}
	g := aisched.BuildTraceGraph(seqs)
	// A Scheduler (with both caches off — one request has nothing to
	// memoize) rather than the Observer, so -par reaches the core; a live
	// Tracer disables the parallel path anyway, by design.
	opts := aisched.SchedulerOptions{
		CacheCapacity: -1, StepCacheCapacity: -1, ParallelTrace: parTrace,
	}
	if rec != nil {
		opts.Tracer = rec
	}
	specBefore := aisched.SpecTraceCounters()
	res, err := aisched.NewScheduler(opts).ScheduleTrace(g, m)
	if err != nil {
		fatal(err)
	}
	sim, err := observer(rec).SimulateTrace(g, m, res.StaticOrder())
	if err != nil {
		fatal(err)
	}
	t := tables.New("trace: dynamic completion under the window model",
		"scheduler", "completion (cycles)")
	t.Add("anticipatory (Algorithm Lookahead)", sim.Completion)

	// -backend=exact adds the branch-and-bound optimum as a reference row
	// and emits the oracle's static code instead of the heuristic's.
	emitOrders := res.BlockOrders
	emitLabel := "anticipatory"
	if backendName != "" && backendName != "heuristic" {
		be, err := aisched.BackendByName(backendName)
		if err != nil {
			fatal(err)
		}
		br, err := be.ScheduleTrace(context.Background(), g, m)
		if err != nil {
			fatal(fmt.Errorf("backend %s: %w (the exact oracle is capped to small traces; use -backend=heuristic)", backendName, err))
		}
		bsim, err := aisched.SimulateTrace(g, m, br.Order)
		if err != nil {
			fatal(err)
		}
		t.Add(fmt.Sprintf("%s backend (provable optimum)", be.Name()), bsim.Completion)
		eo := make(map[int][]graph.NodeID, len(blocks))
		for _, id := range br.Order {
			b := g.Node(id).Block
			eo[b] = append(eo[b], id)
		}
		emitOrders = eo
		emitLabel = be.Name()
	}
	for _, bl := range baseline.All() {
		order, err := baseline.ScheduleTrace(bl, g, m)
		if err != nil {
			fatal(err)
		}
		s, err := aisched.SimulateTrace(g, m, order)
		if err != nil {
			fatal(err)
		}
		t.Add(bl.Name(), s.Completion)
	}
	fmt.Println(t)
	printSpec(specBefore)
	out, err := emit.Trace(blocks, emitOrders)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s static code:\n", emitLabel)
	fmt.Print(out)
}

// printSpec reports the speculative-parallel activity since before, if the
// path engaged at all (short traces and -par=off leave the counters flat).
func printSpec(before aisched.SpecCounters) {
	d := aisched.SpecTraceCounters()
	if segs := d.Segments - before.Segments; segs > 0 {
		fmt.Printf("speculation: %d/%d segments verified, %d hint-seeded, %d blocks recomputed\n",
			d.Hits-before.Hits, segs, d.LaneB-before.LaneB, d.FallbackBlocks-before.FallbackBlocks)
	}
}

// runStream feeds the trace block by block through the streaming scheduler,
// printing each block's final schedule at the push that finalizes it —
// demonstrating the O(block) time-to-first-schedule the streaming API buys —
// then compares the streamed makespan against batch ScheduleTrace (identical
// at k = unbounded, and usually identical well before that; EXPERIMENTS.md
// S1 measures the gap).
func runStream(blocks []isa.Block, m *machine.Machine, k int, rec *aisched.TraceRecorder, stepCap int) {
	var seqs [][]isa.Instr
	for _, b := range blocks {
		seqs = append(seqs, b.Instrs)
	}
	g := aisched.BuildTraceGraph(seqs)
	sblocks, _, err := aisched.TraceStreamBlocks(g)
	if err != nil {
		fatal(err)
	}
	if k < 0 {
		k = aisched.LookaheadUnbounded
	}
	opt := aisched.StreamOptions{Lookahead: k, StepCacheCapacity: stepCap}
	if rec != nil {
		opt.Tracer = rec
	}
	ss := aisched.NewStreamScheduler(m, opt)
	show := func(push int, r *aisched.BlockResult) {
		label := blocks[r.Block].Label
		fmt.Printf("push %d: block %d (%s) final, lag %d", push, r.Block, label, r.Lag)
		if r.Degraded != "" {
			fmt.Printf(" [degraded: %s]", r.Degraded)
		}
		fmt.Println()
		for i, id := range r.Order {
			nd := g.Node(id)
			fmt.Printf("  t=%-4d u%-2d %s\n", r.Start[i], r.Unit[i], nd.Label)
		}
	}
	for i, sb := range sblocks {
		res, err := ss.Push(sb)
		if err != nil {
			fatal(err)
		}
		for _, r := range res {
			show(i, r)
		}
	}
	tail, err := ss.Flush()
	if err != nil {
		fatal(err)
	}
	for _, r := range tail {
		show(len(sblocks), r)
	}
	streamed := ss.Makespan()
	batch, err := aisched.ScheduleTrace(g, m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nstreamed makespan (k=%s): %d; batch ScheduleTrace: %d\n",
		kLabel(k), streamed, batch.Makespan())
	if scc := ss.StepCacheCounters(); scc.Hits+scc.Misses > 0 {
		fmt.Printf("step cache: %d hits, %d misses, %d evictions\n",
			scc.Hits, scc.Misses, scc.Evictions)
	}
}

func kLabel(k int) string {
	if k == aisched.LookaheadUnbounded {
		return "unbounded"
	}
	return fmt.Sprint(k)
}

// runProgram is the batch pipeline: compile mini-C, select traces over the
// CFG, schedule every trace through aisched.ScheduleBatch (cache-integrated,
// GOMAXPROCS workers, optional per-trace budget), and report per-trace
// results plus cache activity.
func runProgram(src string, m *machine.Machine, rec *aisched.TraceRecorder, budget aisched.Budget, stepCap, parTrace int) {
	c, err := aisched.CompileC(src)
	if err != nil {
		fatal(err)
	}
	opts := aisched.SchedulerOptions{
		Budget: budget, StepCacheCapacity: stepCap, ParallelTrace: parTrace,
	}
	if rec != nil {
		opts.Tracer = rec
	}
	specBefore := aisched.SpecTraceCounters()
	sc := aisched.NewScheduler(opts)
	ps, err := sc.ScheduleProgram(c, m)
	if err != nil {
		fatal(err)
	}
	t := tables.New("program: anticipatory schedule per selected trace",
		"trace", "blocks", "instrs", "predicted makespan", "dynamic completion", "degraded")
	degraded := 0
	for i, tr := range ps.Traces {
		if tr.G.Len() == 0 {
			t.Add(i, fmt.Sprint(tr.Blocks), 0, 0, 0, "")
			continue
		}
		sim, err := aisched.SimulateTrace(tr.G, m, tr.Res.StaticOrder())
		if err != nil {
			fatal(err)
		}
		reason := tr.Res.S.Degraded
		if reason != "" {
			degraded++
		}
		t.Add(i, fmt.Sprint(tr.Blocks), tr.G.Len(), tr.Res.Makespan(), sim.Completion, reason)
	}
	fmt.Println(t)
	cc := sc.CacheCounters()
	fmt.Printf("schedule cache: %d hits, %d misses, %d coalesced, %d evictions\n",
		cc.Hits, cc.Misses, cc.Coalesced, cc.Evictions)
	if scc := sc.StepCacheCounters(); scc.Hits+scc.Misses > 0 {
		fmt.Printf("step cache: %d hits, %d misses, %d evictions\n",
			scc.Hits, scc.Misses, scc.Evictions)
	}
	printSpec(specBefore)
	if degraded > 0 {
		fmt.Printf("budget: %d of %d traces degraded to the baseline list schedule\n",
			degraded, len(ps.Traces))
	}
}

// observer wraps the recorder in an aisched.Observer, taking care not to
// smuggle a typed nil into the Tracer interface when recording is off.
func observer(rec *aisched.TraceRecorder) *aisched.Observer {
	if rec == nil {
		return aisched.WithTracer(nil)
	}
	return aisched.WithTracer(rec)
}

func sourceOrder(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.Len())
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aisched:", err)
	os.Exit(1)
}

package aisched

// Differential fuzzing for the speculative parallel trace scheduler:
// arbitrary bytes decode into a restricted-model trace (see fuzz_test.go),
// which is replicated into a long trace — repetition plus stitch edges gives
// the fuzzer both the repetitive structure lane B feeds on and cross-copy
// release floors the join verification must compare — and scheduled with
// speculation forced at several segment widths. The invariant is exact:
// every speculative result must be bit-identical to the sequential walk.

import (
	"testing"

	"aisched/internal/core"
	"aisched/internal/workload"

	"math/rand"
)

// replicateTrace concatenates `copies` relabeled copies of g into one trace,
// shifting block numbers so copies stay in trace order, and stitches
// adjacent copies with a latency-1 edge from each copy's last node to the
// next copy's first — a release floor that crosses every copy boundary.
func replicateTrace(g *Graph, copies int) *Graph {
	n := g.Len()
	maxBlk := 0
	for v := 0; v < n; v++ {
		if b := g.Node(NodeID(v)).Block; b > maxBlk {
			maxBlk = b
		}
	}
	out := NewGraph(n * copies)
	for c := 0; c < copies; c++ {
		for v := 0; v < n; v++ {
			id := out.AddUnit("f")
			out.SetBlock(id, c*(maxBlk+1)+g.Node(NodeID(v)).Block)
		}
	}
	for c := 0; c < copies; c++ {
		off := NodeID(c * n)
		for v := 0; v < n; v++ {
			for _, e := range g.Out(NodeID(v)) {
				out.MustEdge(off+e.Src, off+e.Dst, e.Latency, 0)
			}
		}
		if c+1 < copies {
			out.MustEdge(off+NodeID(n-1), NodeID((c+1)*n), 1, 0)
		}
	}
	return out
}

// requireSpecIdentical asserts a speculative result matches the sequential
// one bit for bit.
func requireSpecIdentical(t *testing.T, tag string, want, got *TraceResult) {
	t.Helper()
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d, want %d", tag, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: Order[%d] = %d, want %d", tag, i, got.Order[i], want.Order[i])
		}
	}
	for v := range want.S.Start {
		if got.S.Start[v] != want.S.Start[v] || got.S.Unit[v] != want.S.Unit[v] {
			t.Fatalf("%s: node %d placed (%d,%d), want (%d,%d)", tag, v,
				got.S.Start[v], got.S.Unit[v], want.S.Start[v], want.S.Unit[v])
		}
	}
}

// FuzzSpeculativeTrace: replicated restricted-model traces through the
// speculative parallel path at several forced widths, with and without a
// step cache, asserting bit-identity with the sequential walk.
func FuzzSpeculativeTrace(f *testing.F) {
	f.Add([]byte{1, 9, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0x80, 4, 2, 7, 0x85, 10})
	f.Add([]byte{3, 13, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0x80, 5, 1, 9, 0x83, 14})
	// The PR 7 window-realizability reproducer: the repaired merge's carried
	// state is exactly what segment speculation must reproduce at joins.
	f.Add([]byte("0A00000010000\x809\x80$71\x819\x81$\x820\x830\x86(()aA(a"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g0, m := decodeInstance(data, true)
		if g0 == nil {
			return
		}
		g := replicateTrace(g0, 8)
		seq, err := core.LookaheadOpts(g, m, core.Options{Parallel: -1})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		sc := core.NewStepCache(core.StepCacheConfig{})
		defer sc.Release()
		for _, p := range []int{2, 4} {
			par, err := core.LookaheadOpts(g, m, core.Options{Parallel: p})
			if err != nil {
				t.Fatalf("parallel p=%d: %v", p, err)
			}
			requireSpecIdentical(t, "bare", seq, par)
			// Twice through one step cache: the second pass runs lane B on
			// whatever join hints the first stored.
			for pass := 0; pass < 2; pass++ {
				par, err := core.LookaheadOpts(g, m, core.Options{Parallel: p, StepCache: sc})
				if err != nil {
					t.Fatalf("parallel p=%d cached pass %d: %v", p, pass, err)
				}
				requireSpecIdentical(t, "cached", seq, par)
			}
		}
	})
}

// TestParallelTraceFacade pins the SchedulerOptions.ParallelTrace plumbing:
// a forced-parallel Scheduler takes the speculative path (visible in the
// process-wide counters) and still returns the sequential walk's result;
// a disabled one never engages it.
func TestParallelTraceFacade(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g, err := workload.LongTrace(r, workload.DefaultLongTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	off := NewScheduler(SchedulerOptions{CacheCapacity: -1, ParallelTrace: -1})
	want, err := off.ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	before := SpecTraceCounters()
	on := NewScheduler(SchedulerOptions{CacheCapacity: -1, ParallelTrace: 4})
	got, err := on.ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	requireSpecIdentical(t, "facade", want, got)
	after := SpecTraceCounters()
	if after.Runs != before.Runs+1 {
		t.Fatalf("forced ParallelTrace did not engage: runs %d -> %d", before.Runs, after.Runs)
	}
	if after.Segments == before.Segments {
		t.Fatal("no segments speculated")
	}
	if _, err := off.ScheduleTrace(g, m); err != nil {
		t.Fatal(err)
	}
	if final := SpecTraceCounters(); final.Runs != after.Runs {
		t.Fatalf("disabled ParallelTrace engaged the parallel path: runs %d -> %d",
			after.Runs, final.Runs)
	}
}

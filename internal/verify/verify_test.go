package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/idle"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/rank"
)

func TestOptimalMakespanFigure1Is7(t *testing.T) {
	f := paperex.NewFig1()
	opt, err := OptimalMakespan(f.G, machine.SingleUnit(1))
	if err != nil {
		t.Fatal(err)
	}
	if opt != 7 {
		t.Fatalf("optimal makespan = %d, want 7", opt)
	}
}

func TestOptimalMakespanChain(t *testing.T) {
	g := graph.New(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 2, 0)
	g.MustEdge(b, c, 0, 0)
	opt, err := OptimalMakespan(g, machine.SingleUnit(1))
	if err != nil {
		t.Fatal(err)
	}
	if opt != 5 {
		t.Fatalf("optimal = %d, want 5 (a _ _ b c)", opt)
	}
}

func TestOptimalMakespanGuards(t *testing.T) {
	big := graph.New(MaxNodes + 1)
	for i := 0; i <= MaxNodes; i++ {
		big.AddUnit("n")
	}
	if _, err := OptimalMakespan(big, machine.SingleUnit(1)); err == nil {
		t.Fatal("oversized instance accepted")
	}
	small := graph.New(1)
	small.AddUnit("a")
	if _, err := OptimalMakespan(small, machine.RS6000(1)); err == nil {
		t.Fatal("multi-unit machine accepted")
	}
}

func TestOptimalMakespanEmpty(t *testing.T) {
	g := graph.New(0)
	opt, err := OptimalMakespan(g, machine.SingleUnit(1))
	if err != nil || opt != 0 {
		t.Fatalf("empty graph: %d, %v", opt, err)
	}
}

func randomUETDAG(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddUnit("n")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
			}
		}
	}
	return g
}

// T4 headline property: the Rank Algorithm is optimal in the restricted
// case (UET, 0/1 latencies, single functional unit).
func TestPropertyRankAlgorithmOptimalRestrictedCase(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(9), 0.15+r.Float64()*0.4)
		m := machine.SingleUnit(1)
		s, err := rank.Makespan(g, m)
		if err != nil {
			return false
		}
		opt, err := OptimalMakespan(g, m)
		if err != nil {
			return false
		}
		return s.Makespan() == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalTraceCompletionFigure2(t *testing.T) {
	// The Figure 2 trace has 11 nodes — too large to enumerate both blocks
	// exhaustively within MaxNodes? 6!-bounded topological orders are fine:
	// verify the oracle matches the known optimum 11 for W=2.
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	opt, order, err := OptimalTraceCompletion(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 11 {
		t.Fatalf("oracle optimum = %d, want 11 (order %v)", opt, order)
	}
}

// T4 companion: Algorithm Lookahead against the exhaustive optimum over all
// per-block static orders, measured by the dynamic window simulator.
//
// Reproduction finding (documented in EXPERIMENTS.md): the published merge
// deadline discipline pins each processed prefix to its locally minimal
// makespan, which on a small fraction of instances forfeits one cycle that
// a globally looser packing would recover — so we assert a bounded gap and
// a high exact-match rate rather than equality.
func TestPropertyLookaheadMatchesTraceOracle(t *testing.T) {
	exact, total := 0, 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nblocks := 2 + r.Intn(2)
		per := 2 + r.Intn(2)
		g := graph.New(nblocks * per)
		var blockNodes [][]graph.NodeID
		for b := 0; b < nblocks; b++ {
			var ids []graph.NodeID
			for i := 0; i < per; i++ {
				ids = append(ids, g.AddNode("n", 1, 0, b))
			}
			blockNodes = append(blockNodes, ids)
		}
		for b := 0; b < nblocks; b++ {
			for i := 0; i < per; i++ {
				for j := i + 1; j < per; j++ {
					if r.Float64() < 0.4 {
						g.MustEdge(blockNodes[b][i], blockNodes[b][j], r.Intn(2), 0)
					}
				}
				if b+1 < nblocks {
					for j := 0; j < per; j++ {
						if r.Float64() < 0.3 {
							g.MustEdge(blockNodes[b][i], blockNodes[b+1][j], r.Intn(2), 0)
						}
					}
				}
			}
		}
		m := machine.SingleUnit(1 + r.Intn(4))
		res, err := core.Lookahead(g, m)
		if err != nil {
			return false
		}
		sim, err := hw.SimulateTrace(g, m, res.StaticOrder())
		if err != nil {
			return false
		}
		opt, _, err := OptimalTraceCompletion(g, m)
		if err != nil {
			return false
		}
		total++
		if sim.Completion == opt {
			exact++
		}
		return sim.Completion >= opt && sim.Completion <= opt+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if total == 0 || exact*10 < total*8 {
		t.Fatalf("lookahead matched the oracle on only %d/%d instances (want ≥ 80%%)", exact, total)
	}
}

func TestOptimalLoopIIFigure8(t *testing.T) {
	f := paperex.NewFig8()
	m := machine.SingleUnit(4)
	best, err := OptimalLoopII(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if best.II != 4 {
		t.Fatalf("loop oracle II = %d, want 4", best.II)
	}
}

func TestOptimalLoopIIFigure3(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	best, err := OptimalLoopII(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if best.II != 6 {
		t.Fatalf("loop oracle II = %d, want 6", best.II)
	}
	// The general-case algorithm matches the oracle on the paper's example.
	st, err := loops.ScheduleSingleBlockLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.II != best.II {
		t.Fatalf("general case II %d != oracle II %d", st.II, best.II)
	}
}

func TestPropertyGeneralLoopCloseToOracle(t *testing.T) {
	// The §5.2.3 general case against the brute-force oracle. The optimal
	// body order sometimes needs the carried-edge TARGET delayed within the
	// iteration — a shape neither the single-source nor the single-sink
	// transform expresses — so we assert a bounded gap and a high match
	// rate (see EXPERIMENTS.md).
	exact, total := 0, 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddUnit("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.MustEdge(graph.NodeID(i), graph.NodeID(j), r.Intn(2), 0)
				}
			}
		}
		// A single loop-carried edge with 0/1 latency (restricted model).
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		g.MustEdge(u, v, r.Intn(2), 1)
		m := machine.SingleUnit(4)
		st, err := loops.ScheduleSingleBlockLoop(g, m)
		if err != nil {
			return false
		}
		opt, err := OptimalLoopII(g, m)
		if err != nil {
			return false
		}
		total++
		if st.II == opt.II {
			exact++
		}
		return st.II >= opt.II && st.II <= opt.II+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if total == 0 || exact*10 < total*8 {
		t.Fatalf("general case matched the loop oracle on only %d/%d instances (want ≥ 80%%)", exact, total)
	}
}

// T4 companion for §3: after Delay_Idle_Slots, the schedule is still
// optimal and its FIRST idle slot sits at the latest start achievable by
// any minimum-makespan schedule; every later slot is within the oracle's
// per-ordinal bound.
func TestPropertyDelayIdleSlotsMaximal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUETDAG(r, 2+r.Intn(6), 0.2+r.Float64()*0.3)
		m := machine.SingleUnit(1)
		s, err := rank.Makespan(g, m)
		if err != nil {
			return false
		}
		d := rank.UniformDeadlines(g.Len(), s.Makespan())
		out, _, err := idle.DelayIdleSlots(s, m, d, nil)
		if err != nil {
			return false
		}
		opt, best, err := LatestIdleSlots(g, m)
		if err != nil {
			return false
		}
		if out.Makespan() != opt {
			return false
		}
		slots := out.IdleSlotsOnUnit(0)
		if len(slots) != len(best) {
			return false
		}
		for i, st := range slots {
			if st > best[i] {
				return false // impossible: beyond every optimal schedule
			}
		}
		if len(slots) > 0 && slots[0] != best[0] {
			t.Logf("seed %d: first idle at %d, oracle max %d (slots %v vs %v)",
				seed, slots[0], best[0], slots, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package graph

// CSR is an immutable compressed-sparse-row view of a graph's
// loop-independent (distance-0) out-adjacency plus the per-node attributes
// the scheduling engine reads: flat offset/destination/latency arrays instead
// of the slice-of-Edge-slices representation. It is built once per schedule
// request; the merge loop of Algorithm Lookahead then derives induced
// subgraph views (Sub) from it with dense remap arrays instead of rebuilding
// *Graph values through AddNode/AddEdge.
type CSR struct {
	n      int
	off    []int32  // len n+1; out-edges of v are [off[v], off[v+1])
	dst    []NodeID // edge destinations, preserving per-node insertion order
	lat    []int32  // edge latencies
	exec   []int32
	class  []int32
	block  []int32
	labels []string
	maxLat int
}

// NewCSR flattens g's distance-0 out-adjacency and node attributes. Edge
// order within a node matches g.Out's insertion order, so everything derived
// from a CSR (or a Sub of it) is bit-identical to the slice-backed path.
func NewCSR(g *Graph) *CSR {
	n := g.Len()
	c := &CSR{
		n:      n,
		off:    make([]int32, n+1),
		exec:   make([]int32, n),
		class:  make([]int32, n),
		block:  make([]int32, n),
		labels: make([]string, n),
	}
	edges := 0
	for v := 0; v < n; v++ {
		nd := g.Node(NodeID(v))
		c.exec[v] = int32(nd.Exec)
		c.class[v] = int32(nd.Class)
		c.block[v] = int32(nd.Block)
		c.labels[v] = nd.Label
		for _, e := range g.Out(NodeID(v)) {
			if e.Distance == 0 {
				edges++
			}
		}
	}
	c.dst = make([]NodeID, edges)
	c.lat = make([]int32, edges)
	k := 0
	for v := 0; v < n; v++ {
		c.off[v] = int32(k)
		for _, e := range g.Out(NodeID(v)) {
			if e.Distance != 0 {
				continue
			}
			c.dst[k] = e.Dst
			c.lat[k] = int32(e.Latency)
			if int(e.Latency) > c.maxLat {
				c.maxLat = e.Latency
			}
			k++
		}
	}
	c.off[n] = int32(k)
	return c
}

// Len reports the node count.
func (c *CSR) Len() int { return c.n }

// Block returns the block index of node v.
func (c *CSR) Block(v NodeID) int { return int(c.block[v]) }

// View returns the flat adjacency view of the whole graph.
func (c *CSR) View() AdjView {
	return AdjView{
		N: c.n, Off: c.off, Dst: c.dst, Lat: c.lat,
		Exec: c.exec, Class: c.class, Block: c.block, Labels: c.labels,
		MaxLat: c.maxLat,
	}
}

// AdjView is the flat node/edge slice bundle the scheduling engine consumes —
// the common shape of a whole-graph CSR and an induced Sub view. All slices
// are borrowed: a view is valid only as long as its source (and for Sub
// views, only until the next Init).
type AdjView struct {
	N      int
	Off    []int32 // len N+1
	Dst    []NodeID
	Lat    []int32
	Exec   []int32
	Class  []int32
	Block  []int32
	Labels []string
	MaxLat int // max distance-0 edge latency in the view
}

// Sub is a reusable induced-subgraph view over a CSR: Init rebinds it to a
// new node subset, reusing all backing arrays. It replaces the
// keep-map/Induced/toSub-map triple of the pre-CSR merge loop — the dense
// toSub remap array plays the role of the map, and the filtered flat
// adjacency plays the role of the rebuilt *Graph.
type Sub struct {
	csr   *CSR
	ids   []NodeID // view ID → parent ID, ascending
	toSub []int32  // parent ID → view ID, or -1
	off   []int32
	dst   []NodeID
	lat   []int32
	exec  []int32
	class []int32
	block []int32
	lbl   []string
	maxLat int
}

// Init rebinds the view to the induced subgraph of c on ids, which must be
// ascending parent node IDs without duplicates. Views and slices obtained
// from the Sub before this call become invalid.
func (s *Sub) Init(c *CSR, ids []NodeID) {
	s.csr = c
	n := len(ids)
	s.ids = append(s.ids[:0], ids...)
	if cap(s.toSub) < c.n {
		s.toSub = make([]int32, c.n)
	}
	s.toSub = s.toSub[:c.n]
	for i := range s.toSub {
		s.toSub[i] = -1
	}
	for si, oi := range ids {
		s.toSub[oi] = int32(si)
	}
	if cap(s.off) < n+1 {
		s.off = make([]int32, n+1)
		s.exec = make([]int32, n)
		s.class = make([]int32, n)
		s.block = make([]int32, n)
		s.lbl = make([]string, n)
	}
	s.off = s.off[:n+1]
	s.exec, s.class, s.block, s.lbl = s.exec[:n], s.class[:n], s.block[:n], s.lbl[:n]
	edges := 0
	for si, oi := range ids {
		s.exec[si] = c.exec[oi]
		s.class[si] = c.class[oi]
		s.block[si] = c.block[oi]
		s.lbl[si] = c.labels[oi]
		for e := c.off[oi]; e < c.off[oi+1]; e++ {
			if s.toSub[c.dst[e]] >= 0 {
				edges++
			}
		}
	}
	if cap(s.dst) < edges {
		s.dst = make([]NodeID, edges)
		s.lat = make([]int32, edges)
	}
	s.dst, s.lat = s.dst[:edges], s.lat[:edges]
	s.maxLat = 0
	k := 0
	for si, oi := range ids {
		s.off[si] = int32(k)
		for e := c.off[oi]; e < c.off[oi+1]; e++ {
			d := s.toSub[c.dst[e]]
			if d < 0 {
				continue
			}
			s.dst[k] = NodeID(d)
			s.lat[k] = c.lat[e]
			if int(c.lat[e]) > s.maxLat {
				s.maxLat = int(c.lat[e])
			}
			k++
		}
	}
	s.off[n] = int32(k)
}

// Len reports the view's node count.
func (s *Sub) Len() int { return len(s.ids) }

// IDs returns the view→parent ID mapping (ascending). The slice is owned by
// the Sub and valid until the next Init.
func (s *Sub) IDs() []NodeID { return s.ids }

// ToSub returns the view ID of parent node oi, or None when oi is not in the
// view.
func (s *Sub) ToSub(oi NodeID) NodeID {
	if si := s.toSub[oi]; si >= 0 {
		return NodeID(si)
	}
	return None
}

// View returns the flat adjacency view of the induced subgraph.
func (s *Sub) View() AdjView {
	return AdjView{
		N: len(s.ids), Off: s.off, Dst: s.dst, Lat: s.lat,
		Exec: s.exec, Class: s.class, Block: s.block, Labels: s.lbl,
		MaxLat: s.maxLat,
	}
}

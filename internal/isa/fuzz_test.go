package isa

import (
	"strings"
	"testing"
)

// FuzzParseInstr checks the parser never panics and that everything it
// accepts round-trips through Mnemonic → ParseInstr.
func FuzzParseInstr(f *testing.F) {
	seeds := []string{
		"nop",
		"li r3, 42",
		"add r5, r3, r4",
		"loadu r6, 4(r7)",
		"storeu r0, -4(r5)",
		"cmpi cr1, r6, 0",
		"bt cr1, CL.1",
		"b CL.18",
		"mul r0, r6, r0",
		"load r1, (r2)",
		"add r1 r2 r3",
		"li r1, 0x10",
		"bogus r1, r2",
		"li r1, 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		in, err := ParseInstr(line)
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("parser accepted invalid instruction %q: %v", line, err)
		}
		again, err := ParseInstr(in.Mnemonic())
		if err != nil {
			t.Fatalf("round trip of %q failed at %q: %v", line, in.Mnemonic(), err)
		}
		if again.Op != in.Op || again.Dst != in.Dst || again.SrcA != in.SrcA ||
			again.SrcB != in.SrcB || again.Imm != in.Imm || again.Base != in.Base ||
			again.Target != in.Target || again.Cond != in.Cond {
			t.Fatalf("round trip mismatch: %q vs %q", in.Mnemonic(), again.Mnemonic())
		}
	})
}

// FuzzParse checks the block parser never panics and that label/branch
// structure is internally consistent.
func FuzzParse(f *testing.F) {
	f.Add("L:\n\tli r1, 1\n\tbt cr0, L\n")
	f.Add("\tadd r1, r2, r3\nX:\n\tb X\n")
	f.Add("; just a comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		blocks, err := Parse(src)
		if err != nil {
			return
		}
		for _, b := range blocks {
			if len(b.Instrs) == 0 {
				t.Fatalf("parser emitted empty block %q", b.Label)
			}
			for i, in := range b.Instrs {
				if in.IsBranch() && i != len(b.Instrs)-1 {
					t.Fatalf("branch not block-terminal in %q", b.Label)
				}
				if err := in.Validate(); err != nil {
					t.Fatalf("invalid instruction survived parse: %v", err)
				}
			}
		}
		_ = strings.TrimSpace(src)
	})
}

// Window sweep: how the benefit of anticipatory scheduling grows with the
// hardware lookahead window size W. Random traces are scheduled by
// Algorithm Lookahead and by purely local baselines, then executed on the
// window simulator for W ∈ {1, 2, 4, 8, 16}. At W = 1 the hardware cannot
// overlap blocks, so all schedulers tie; as W grows, only the anticipatory
// schedules expose trailing idle slots for the window to fill.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aisched"
	"aisched/internal/baseline"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

func main() {
	const instances = 20
	windows := []int{1, 2, 4, 8, 16}

	sum := map[string][]float64{}
	names := []string{"anticipatory", "rank-local", "critical-path", "source-order"}
	for _, n := range names {
		sum[n] = make([]float64, len(windows))
	}

	for i := 0; i < instances; i++ {
		r := rand.New(rand.NewSource(int64(100 + i)))
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			log.Fatal(err)
		}
		for wi, w := range windows {
			m := aisched.SingleUnit(w)

			res, err := aisched.ScheduleTrace(g, m)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := aisched.SimulateTrace(g, m, res.StaticOrder())
			if err != nil {
				log.Fatal(err)
			}
			sum["anticipatory"][wi] += float64(sim.Completion)

			for _, b := range []baseline.Scheduler{baseline.RankLocal{}, baseline.CriticalPath{}, baseline.SourceOrder{}} {
				order, err := baseline.ScheduleTrace(b, g, m)
				if err != nil {
					log.Fatal(err)
				}
				s, err := aisched.SimulateTrace(g, m, order)
				if err != nil {
					log.Fatal(err)
				}
				sum[b.Name()][wi] += float64(s.Completion)
			}
		}
	}

	t := tables.New(
		fmt.Sprintf("mean dynamic completion over %d random traces", instances),
		"scheduler", "W=1", "W=2", "W=4", "W=8", "W=16")
	for _, n := range names {
		row := []interface{}{n}
		for wi := range windows {
			row = append(row, sum[n][wi]/instances)
		}
		t.Add(row...)
	}
	fmt.Println(t)
	fmt.Println("reading: lower is better; anticipatory ≤ rank-local everywhere,")
	fmt.Println("with the gap opening as W grows and closing again once blocks")
	fmt.Println("have no trailing idle slots left to expose.")
}

module aisched

go 1.22

package aisched

import (
	"encoding/json"
	"strings"
	"testing"

	"aisched/internal/machine"
	"aisched/internal/paperex"
)

// TestObserverFacade drives the whole observability surface through the
// public API: WithTracer, the traced schedule/simulate entry points, the
// stats snapshot, the Chrome trace export, and the text timeline.
func TestObserverFacade(t *testing.T) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	rec := NewRecorder()
	o := WithTracer(rec)

	best, err := o.ScheduleLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.SimulateLoop(f.G, m, best.Order, 8, SimOptions{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}

	s := rec.Stats()
	if s.Completion != res.Completion {
		t.Errorf("stats completion %d != simulator %d", s.Completion, res.Completion)
	}
	if s.BestII != best.II {
		t.Errorf("stats best II %d != scheduler %d", s.BestII, best.II)
	}
	if s.IICandidates == 0 {
		t.Error("loop scheduler emitted no II candidates")
	}
	if s.CrossBlockFills == 0 {
		t.Error("anticipatory Figure 3 loop should fill at least one idle slot cross-iteration")
	}
	sum := 0
	for _, n := range s.StallByReason {
		sum += n
	}
	if sum != s.StallCycles {
		t.Errorf("stall breakdown %v sums to %d, total %d", s.StallByReason, sum, s.StallCycles)
	}

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("Stats.JSON is not valid JSON")
	}

	trace, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &parsed); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("Chrome trace has no events")
	}

	if tl := rec.Timeline(); !strings.Contains(tl, "cycle") || !strings.Contains(tl, "head") {
		t.Errorf("timeline missing header rows:\n%s", tl)
	}

	// A nil-tracer Observer must behave exactly like the plain facade.
	plainBest, err := WithTracer(nil).ScheduleLoop(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if plainBest.II != best.II {
		t.Errorf("nil-tracer Observer II %d != traced %d", plainBest.II, best.II)
	}
	plainRes, err := SimulateLoop(f.G, m, best.Order, 8, SimOptions{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.Completion != res.Completion {
		t.Errorf("tracing changed completion: %d vs %d", res.Completion, plainRes.Completion)
	}
}

// TestObserverScheduleBlockAndTrace covers the remaining Observer entry
// points: single-block scheduling and trace scheduling plus simulation.
func TestObserverScheduleBlockAndTrace(t *testing.T) {
	f := paperex.NewFig2()
	m := machine.SingleUnit(2)
	rec := NewRecorder()
	o := WithTracer(rec)

	if _, err := o.ScheduleBlock(f.G, m); err != nil {
		t.Fatal(err)
	}
	s := rec.Stats()
	if s.Passes["rank.Makespan"] != 1 || s.Passes["idle.DelayIdleSlots"] != 1 {
		t.Errorf("ScheduleBlock passes = %v", s.Passes)
	}

	rec.Reset()
	res, err := o.ScheduleTrace(f.G, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.SimulateTrace(f.G, m, res.StaticOrder()); err != nil {
		t.Fatal(err)
	}
	s = rec.Stats()
	if s.Passes["core.Lookahead"] != 1 || s.Passes["hw.simulate"] != 1 {
		t.Errorf("ScheduleTrace+SimulateTrace passes = %v", s.Passes)
	}
	if s.Issues == 0 {
		t.Error("no issue events recorded")
	}
}

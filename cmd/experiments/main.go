// Command experiments runs the full reproduction suite (E1–E4, T1–T5) and
// prints the EXPERIMENTS.md tables. Individual experiments can be selected
// and the instance counts and seed overridden.
//
// Usage:
//
//	experiments [-t E1,T1,...] [-seed N] [-n instances]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aisched/internal/experiments"
)

func main() {
	var (
		which = flag.String("t", "", "comma-separated experiment ids (default: all)")
		seed  = flag.Int64("seed", 1996, "random seed for T1–T5")
		n     = flag.Int("n", 0, "instance count override for T1–T5 (0 = defaults)")
	)
	flag.Parse()

	type runner func() (*experiments.Result, error)
	def := func(f func(int64, int) (*experiments.Result, error), defN int) runner {
		return func() (*experiments.Result, error) {
			c := defN
			if *n > 0 {
				c = *n
			}
			return f(*seed, c)
		}
	}
	all := []struct {
		id  string
		run runner
	}{
		{"E1", experiments.E1},
		{"E2", experiments.E2},
		{"E3", experiments.E3},
		{"E4", experiments.E4},
		{"T1", def(experiments.T1, 30)},
		{"T2", def(experiments.T2, 30)},
		{"T3", def(experiments.T3, 30)},
		{"T3B", def(experiments.T3b, 30)},
		{"T4", def(experiments.T4, 100)},
		{"E1GAP", def(experiments.E1gap, 60)},
		{"T5", def(experiments.T5, 20)},
		{"T7", def(experiments.T7, 30)},
		{"A1", def(experiments.A1, 30)},
		{"B1", def(experiments.B1, 200)},
		{"A2", def(experiments.A2, 20)},
		{"R1", def(experiments.R1, 50)},
		{"S1", def(experiments.S1, 30)},
		{"C1", def(experiments.C1, 1)},
		{"P3", def(experiments.P3, 3)},
		{"O1", experiments.O1},
		{"O2", experiments.O2},
	}

	want := map[string]bool{}
	if *which != "" {
		for _, id := range strings.Split(*which, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	fail := false
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		r, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(r)
		ran++
		if !r.Passed {
			fail = true
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches -t %q\n", *which)
		os.Exit(2)
	}
	if fail {
		os.Exit(1)
	}
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"aisched"
	"aisched/internal/machine"
	"aisched/internal/tables"
)

// C1 sweeps the duplicate-block rate and measures what the structural step
// cache buys. The workload mirrors B1's request-level framing: a cold
// scheduler serves 20 requests of 16-block traces, of which `1-dup` are
// unique and the rest repeat an earlier trace — so the cache warms on first
// occurrences and replays the duplicates. The batch side re-schedules whole
// traces through one Scheduler (whole-trace memo disabled so the per-block
// loop always runs); the stream side pushes the same request sequence as one
// unending block stream at k=1. Both report amortized ns per block with the
// cache on vs off and the on-side hit rate.
//
// Blocks are serial latency chains: the stalls make every step chop, so the
// carried suffix stays bounded and recurs — the regime where merge inputs
// repeat and the cache can hit. (Dense stall-free blocks never chop; their
// suffix grows every step, every key is unique, and the cache stays cold by
// design — correctness is unaffected either way.)
//
// Passed requires, on both paths: a >50% hit rate at dup rates >= 75%, and a
// >= 3x cold amortized speedup at 90% dup. The steady-state amortized >= 3x
// acceptance at 75% dup is pinned by BENCH_PR8.json (ScheduleTraceRepetitive
// and StreamPushDup vs their Off twins), where the long-run warm regime is
// measured under the benchmark harness instead of a wall-clock-noisy
// experiment.
func C1(seed int64, instances int) (*Result, error) {
	const (
		reqs      = 20 // scheduling requests per sweep point
		blocksPer = 16 // blocks per requested trace
	)
	m := machine.SingleUnit(4)
	t := tables.New(fmt.Sprintf("C1: step-cache speedup vs duplicate rate (%d requests x %d-block traces, cold)", reqs, blocksPer),
		"dup rate", "unique", "batch ns/block off→on", "batch ×", "batch hits",
		"stream ns/push off→on", "stream ×", "stream hits")
	res := &Result{ID: "C1", Table: t, Passed: true}

	for _, dup := range []float64{0, 0.25, 0.50, 0.75, 0.90} {
		uniq := reqs - int(dup*float64(reqs)+0.5)
		if uniq < 1 {
			uniq = 1
		}
		r := rand.New(rand.NewSource(seed + int64(uniq)))

		// Each unique trace gets its own chain-template pool; the request
		// sequence visits every unique trace once, then draws repeats.
		uniques := make([]*aisched.Graph, uniq)
		streams := make([][][]int, uniq) // per-trace template latency chains
		for u := range uniques {
			lats, seq := chainTemplates(r, 8, blocksPer)
			uniques[u] = templateTrace(lats, seq)
			chains := make([][]int, blocksPer)
			for i, ti := range seq {
				chains[i] = lats[ti]
			}
			streams[u] = chains
		}
		order := make([]int, reqs)
		for i := range order {
			if i < uniq {
				order[i] = i
			} else {
				order[i] = r.Intn(uniq)
			}
		}

		batchNS := func(stepCap int) (int64, aisched.CacheCounters) {
			best := int64(1) << 62
			var c aisched.CacheCounters
			for rep := 0; rep < 3; rep++ {
				sc := aisched.NewScheduler(aisched.SchedulerOptions{CacheCapacity: -1, StepCacheCapacity: stepCap})
				t0 := time.Now()
				for _, u := range order {
					if _, err := sc.ScheduleTrace(uniques[u], m); err != nil {
						panic(err)
					}
				}
				if d := time.Since(t0).Nanoseconds(); d < best {
					best = d
					c = sc.StepCacheCounters()
				}
			}
			return best / int64(reqs*blocksPer), c
		}
		bOn, bc := batchNS(0)
		bOff, _ := batchNS(-1)
		bSpeed := float64(bOff) / float64(bOn)
		bHit := hitRate(bc)

		streamNS := func(stepCap int) (int64, aisched.CacheCounters) {
			best := int64(1) << 62
			var c aisched.CacheCounters
			for rep := 0; rep < 3; rep++ {
				ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{Lookahead: 1, StepCacheCapacity: stepCap})
				id := 0
				t0 := time.Now()
				for _, u := range order {
					for _, lat := range streams[u] {
						if _, err := ss.Push(chainBlock(lat, &id)); err != nil {
							panic(err)
						}
					}
				}
				if d := time.Since(t0).Nanoseconds(); d < best {
					best = d
					c = ss.StepCacheCounters()
				}
			}
			return best / int64(reqs*blocksPer), c
		}
		sOn, sc := streamNS(0)
		sOff, _ := streamNS(-1)
		sSpeed := float64(sOff) / float64(sOn)
		sHit := hitRate(sc)

		t.Add(fmt.Sprintf("%.0f%%", 100*dup), fmt.Sprintf("%d/%d", uniq, reqs),
			fmt.Sprintf("%d→%d", bOff, bOn), fmt.Sprintf("%.1fx", bSpeed), fmt.Sprintf("%.0f%%", 100*bHit),
			fmt.Sprintf("%d→%d", sOff, sOn), fmt.Sprintf("%.1fx", sSpeed), fmt.Sprintf("%.0f%%", 100*sHit))

		if dup >= 0.75 && (bHit <= 0.5 || sHit <= 0.5) {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"dup %.0f%%: hit rate below 50%% (batch %.0f%%, stream %.0f%%)",
				100*dup, 100*bHit, 100*sHit))
		}
		if dup >= 0.90 && (bSpeed < 3 || sSpeed < 3) {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"dup %.0f%%: cold amortized speedup below 3x (batch %.1fx, stream %.1fx)",
				100*dup, bSpeed, sSpeed))
		}
	}
	res.Notes = append(res.Notes,
		"steady-state amortized speedup at ~75% dup is pinned in BENCH_PR8.json: ScheduleTraceRepetitive(Off), StreamPushDup(Off)")
	return res, nil
}

func hitRate(c aisched.CacheCounters) float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// chainTemplates draws `distinct` serial-chain block templates (chain length
// 5-7, per-edge latency 1-2) and a `blocks`-long template sequence in which
// each template appears at least once.
func chainTemplates(r *rand.Rand, distinct, blocks int) ([][]int, []int) {
	lats := make([][]int, distinct)
	for i := range lats {
		lat := make([]int, 4+r.Intn(3))
		for j := range lat {
			lat[j] = 1 + r.Intn(2)
		}
		lats[i] = lat
	}
	seq := make([]int, blocks)
	for i := range seq {
		if i < distinct {
			seq[i] = i
		} else {
			seq[i] = r.Intn(distinct)
		}
	}
	return lats, seq
}

// templateTrace materializes a template sequence as one whole-trace graph.
func templateTrace(lats [][]int, seq []int) *aisched.Graph {
	total := 0
	for _, ti := range seq {
		total += len(lats[ti]) + 1
	}
	g := aisched.NewGraph(total)
	id := 0
	for b, ti := range seq {
		base := id
		for i := 0; i <= len(lats[ti]); i++ {
			g.AddNode(fmt.Sprintf("c%d_%d", b, i), 1, 0, b)
			id++
		}
		for i, l := range lats[ti] {
			g.MustEdge(aisched.NodeID(base+i), aisched.NodeID(base+i+1), l, 0)
		}
	}
	return g
}

// chainBlock builds one serial-chain StreamBlock from a latency chain,
// advancing the caller's running stream ID.
func chainBlock(lat []int, id *int) aisched.StreamBlock {
	n := len(lat) + 1
	nodes := make([]aisched.StreamNode, n)
	for i := range nodes {
		nodes[i] = aisched.StreamNode{Label: "c", Exec: 1, Class: 0}
	}
	deps := make([]aisched.StreamDep, len(lat))
	for i, l := range lat {
		deps[i] = aisched.StreamDep{Src: aisched.NodeID(*id + i), Dst: aisched.NodeID(*id + i + 1), Latency: l}
	}
	*id += n
	return aisched.StreamBlock{Nodes: nodes, Deps: deps}
}

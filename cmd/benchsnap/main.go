// Command benchsnap records a benchmark snapshot for the three facade-level
// workloads the PR-to-PR regression budget is measured against
// (ScheduleTrace, SimulateTrace, ScheduleLoop — all with tracing disabled)
// and writes it as JSON. Compare a later run against the committed snapshot
// with a ≤2% tolerance:
//
//	go run ./cmd/benchsnap -o BENCH_PR1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"aisched"
	"aisched/internal/machine"
	"aisched/internal/paperex"
	"aisched/internal/workload"
)

type entry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "BENCH_PR1.json", "output file")
	flag.Parse()

	// The same workloads as BenchmarkScheduleTrace / BenchmarkSimulateTrace /
	// BenchmarkScheduleLoop in bench_test.go: a seed-11 random trace and the
	// paper's Figure 3 loop, on the single-unit W=4 machine.
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		fatal(err)
	}
	m := machine.SingleUnit(4)
	res, err := aisched.ScheduleTrace(g, m)
	if err != nil {
		fatal(err)
	}
	order := res.StaticOrder()
	f3 := paperex.NewFig3()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ScheduleTrace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.ScheduleTrace(g, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SimulateTrace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.SimulateTrace(g, m, order); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ScheduleLoop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aisched.ScheduleLoop(f3.G, m); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	snap := struct {
		Go         string           `json:"go"`
		GOOS       string           `json:"goos"`
		GOARCH     string           `json:"goarch"`
		Benchmarks map[string]entry `json:"benchmarks"`
	}{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]entry{},
	}
	for _, bench := range benches {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bench.fn(b)
		})
		snap.Benchmarks[bench.name] = entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-14s %10d ns/op %8d B/op %6d allocs/op\n",
			bench.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}

// Package metrics is the always-on telemetry layer: process-wide counters,
// gauges, and latency histograms designed so that instrumenting a hot path
// costs one (or a few) uncontended atomic adds and nothing else.
//
// The record path follows the same discipline as the arena scheduling core:
//
//   - zero allocation — every instrument is preallocated at registration,
//     Record/Add/Observe never allocate (enforced by an alloc-budget test
//     and a check.sh guard on this file);
//   - no maps, no interfaces, no locks — instrument sites hold concrete
//     *Counter / *Gauge / *Histogram pointers resolved at package init, and
//     every mutation is a sync/atomic operation;
//   - no false sharing — counters are striped across cache-line-padded
//     shards indexed by a cheap per-goroutine hint, so parallel batch
//     workers incrementing the same logical counter land on different
//     cache lines.
//
// Exposition (registry enumeration, Prometheus text format, JSON snapshot)
// lives in registry.go / prometheus.go and may use maps and locks freely:
// it runs at scrape frequency, not at request frequency.
//
// This file is the record path. Keep it free of maps, interfaces, mutexes,
// fmt, and allocation — scripts/check.sh greps it.
package metrics

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the assumed cache-line size; shards are padded to it so two
// adjacent shards never share a line.
const cacheLine = 64

// padded is one cache-line-sized counter cell.
type padded struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// stripeCount is the number of counter stripes: the next power of two above
// GOMAXPROCS at package init, clamped to [1, 128]. A power of two makes
// stripe selection a mask.
var stripeCount = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < 128 {
		p <<= 1
	}
	return p
}()

// stripeIndex returns this goroutine's stripe hint. Go does not expose the
// running P cheaply, so we hash the address of a stack variable instead:
// distinct goroutines run on distinct stacks, which is exactly the property
// needed to spread concurrent writers across stripes. The hint is stable
// for the life of a call and costs a shift and a multiply — no syscall, no
// allocation, no pinning.
func stripeIndex() int {
	var b byte
	// Fibonacci hash of the stack address; the high bits are well mixed.
	h := uintptr(unsafe.Pointer(&b)) * 0x9E3779B97F4A7C15
	return int(h>>32) & (stripeCount - 1)
}

// Counter is a monotonically increasing counter striped across
// cache-line-padded atomic cells. The zero value is not useful; obtain one
// from Registry.NewCounter.
type Counter struct {
	stripes []padded
	name    string
	help    string
}

// Inc adds 1.
func (c *Counter) Inc() { c.stripes[stripeIndex()].v.Add(1) }

// Add adds n (n is unsigned: counters never go down).
func (c *Counter) Add(n uint64) { c.stripes[stripeIndex()].v.Add(n) }

// Value sums the stripes. The sum is not a consistent snapshot under
// concurrent writers — monitoring semantics, exact once writers quiesce.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value (worker-pool occupancy, resident cache
// entries). One padded atomic cell: gauges are written at request
// granularity, not per-cycle, so striping would buy nothing.
type Gauge struct {
	v    atomic.Int64
	_    [cacheLine - 8]byte
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Log-linear histogram layout (HDR-style): values in [0, 2^subBits) get
// exact unit buckets; every octave [2^e, 2^(e+1)) above that is divided
// into 2^subBits linear sub-buckets, so the relative bucket width — and
// therefore the worst-case quantile-estimation error — is bounded by
// 2^-subBits ≈ 3.1%. Every bucket is preallocated at construction, so
// Observe is a bounds-checked index computation plus three atomic ops.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per octave
	// numBuckets covers the full uint64 range: the exact region plus
	// (64 − subBits − 1) octaves of subCount buckets each.
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // ≥ subBits
	sub := int((v >> uint(exp-subBits)) & (subCount - 1))
	return subCount + (exp-subBits)*subCount + sub
}

// bucketBounds returns bucket i's half-open value range [lo, lo+width).
func bucketBounds(i int) (lo, width uint64) {
	if i < subCount {
		return uint64(i), 1
	}
	j := i - subCount
	g := uint(j / subCount)
	s := uint64(j % subCount)
	return (subCount + s) << g, 1 << g
}

// Histogram is a preallocated log-linear latency histogram. Observe is
// lock-free and allocation-free; quantile estimation happens at snapshot
// time from a point-in-time copy of the buckets. The zero value is not
// useful; obtain one from Registry.NewHistogram. Values are int64 but
// clamped at zero (latencies are never negative).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	name    string
	help    string
}

// Observe records one value (e.g. a latency in nanoseconds). Negative
// values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.buckets[bucketIndex(u)].Add(1)
	h.sum.Add(u)
	for {
		old := h.max.Load()
		if u <= old || h.max.CompareAndSwap(old, u) {
			return
		}
	}
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Sampler admits every n-th call (n a power of two) with one atomic add:
// the cheap gate in front of nanotime pairs on paths too hot to time every
// request. The zero value admits every call; use NewSampler.
type Sampler struct {
	n    atomic.Uint64
	mask uint64
}

// NewSampler returns a sampler admitting one in every denom calls; denom is
// rounded up to a power of two (denom ≤ 1 admits everything).
func NewSampler(denom int) *Sampler {
	m := uint64(1)
	for int(m) < denom {
		m <<= 1
	}
	return &Sampler{mask: m - 1}
}

// Sample reports whether this call is one of the sampled 1/denom.
func (s *Sampler) Sample() bool { return s.n.Add(1)&s.mask == 0 }

package sbudget

import (
	"context"
	"errors"
	"testing"
	"time"

	"aisched/internal/faultinject"
)

func TestNilStateIsFree(t *testing.T) {
	var s *State
	if err := s.Check(); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if err := s.RankPass(); err != nil {
		t.Fatalf("nil RankPass: %v", err)
	}
	if got := s.Passes(); got != 0 {
		t.Fatalf("nil Passes = %d", got)
	}
}

func TestNewReturnsNilWhenNothingToEnforce(t *testing.T) {
	if s := New(context.Background(), 0, 0); s != nil {
		t.Fatalf("New(Background, 0, 0) = %v, want nil", s)
	}
	if s := New(nil, 0, 0); s != nil {
		t.Fatalf("New(nil, 0, 0) = %v, want nil", s)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if s := New(ctx, 0, 0); s == nil {
		t.Fatal("cancellable context must produce a state")
	}
	if s := New(context.Background(), time.Second, 0); s == nil {
		t.Fatal("wall-clock budget must produce a state")
	}
	if s := New(context.Background(), 0, 1); s == nil {
		t.Fatal("pass budget must produce a state")
	}
}

func TestNewHonorsFaultHooks(t *testing.T) {
	defer faultinject.Reset()
	faultinject.BudgetExhaust = func() bool { return false }
	if s := New(context.Background(), 0, 0); s == nil {
		t.Fatal("installed BudgetExhaust hook must produce a state")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(ctx, 0, 0)
	if err := s.Check(); err != nil {
		t.Fatalf("pre-cancel Check: %v", err)
	}
	cancel()
	if err := s.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Check = %v, want context.Canceled", err)
	}
	if errors.Is(s.Check(), ErrExhausted) {
		t.Fatal("cancellation must not look like budget exhaustion")
	}
}

func TestRankPassLimit(t *testing.T) {
	s := New(context.Background(), 0, 3)
	for i := 0; i < 3; i++ {
		if err := s.RankPass(); err != nil {
			t.Fatalf("pass %d: %v", i+1, err)
		}
	}
	err := s.RankPass()
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("pass 4 = %v, want ErrExhausted", err)
	}
	if Reason(err) == "" {
		t.Fatalf("exhaustion error %q carries no reason", err)
	}
	if got := s.Passes(); got != 4 {
		t.Fatalf("Passes = %d, want 4", got)
	}
}

func TestWallClock(t *testing.T) {
	s := New(context.Background(), time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	err := s.Check()
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("expired deadline Check = %v, want ErrExhausted", err)
	}
	if Reason(err) == "" {
		t.Fatal("wall-clock exhaustion carries no reason")
	}
}

func TestForcedExhaustion(t *testing.T) {
	defer faultinject.Reset()
	faultinject.BudgetExhaust = faultinject.ForceExhaust(nil, "test")
	s := New(context.Background(), 0, 0)
	if err := s.Check(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("forced Check = %v, want ErrExhausted", err)
	}
}

func TestReasonOnForeignError(t *testing.T) {
	if r := Reason(errors.New("boom")); r != "" {
		t.Fatalf("Reason(foreign) = %q", r)
	}
	if r := Reason(nil); r != "" {
		t.Fatalf("Reason(nil) = %q", r)
	}
}

package aisched

// Facade-level differential tests for the structural step cache: every
// schedule the facades return must be bit-identical with the cache on and
// off — batch and stream, every lookahead, mixed-latency and restricted
// workloads, duplicate-heavy and unique traces. FuzzStepCache extends the
// same property to arbitrary decoded instances.

import (
	"fmt"
	"math/rand"
	"testing"

	"aisched/internal/workload"

	"aisched/internal/testutil"
)

// repeatTrace concatenates g with itself `times` times — node IDs and block
// numbers rebased per copy — producing the duplicate-block workload the step
// cache is built for.
func repeatTrace(g *Graph, times int) *Graph {
	n := g.Len()
	maxBlock := 0
	for v := 0; v < n; v++ {
		if b := g.Node(NodeID(v)).Block; b > maxBlock {
			maxBlock = b
		}
	}
	out := NewGraph(n * times)
	for c := 0; c < times; c++ {
		for v := 0; v < n; v++ {
			nd := g.Node(NodeID(v))
			out.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block+c*(maxBlock+1))
		}
	}
	for c := 0; c < times; c++ {
		off := NodeID(c * n)
		for v := 0; v < n; v++ {
			for _, e := range g.Out(NodeID(v)) {
				out.MustEdge(e.Src+off, e.Dst+off, e.Latency, 0)
			}
		}
	}
	return out
}

// TestStepCacheBatchDifferential: ScheduleTrace through a step-cached
// Scheduler is bit-identical to the uncached scheduler on mixed-latency
// (release-floor regime) and restricted workloads, cold and warm, unique and
// duplicate-heavy.
func TestStepCacheBatchDifferential(t *testing.T) {
	configs := map[string]workload.TraceConfig{
		"mixed":      workload.DefaultTrace(),
		"restricted": restrictedTrace(),
	}
	machines := []*Machine{SingleUnit(4), RS6000(4)}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			// The trace cache is disabled on both sides so every call walks
			// the per-block loop; only the step cache differs.
			on := NewScheduler(SchedulerOptions{CacheCapacity: -1})
			off := NewScheduler(SchedulerOptions{CacheCapacity: -1, StepCacheCapacity: -1})
			for seed := int64(1); seed <= 12; seed++ {
				g, err := workload.Trace(rand.New(rand.NewSource(seed)), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if seed%2 == 0 {
					g = repeatTrace(g, 4)
				}
				m := machines[seed%2]
				want, err := off.ScheduleTrace(g, m)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ { // cold then warm
					got, err := on.ScheduleTrace(g, m)
					if err != nil {
						t.Fatal(err)
					}
					sameTraceResult(t, fmt.Sprintf("%s seed %d pass %d", name, seed, pass), got, want)
				}
			}
			c := on.StepCacheCounters()
			if c.Hits == 0 {
				t.Fatalf("%s: no step-cache hits across the sweep (misses=%d)", name, c.Misses)
			}
		})
	}
}

func sameBlockResults(t *testing.T, tag string, got, want []*BlockResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", tag, len(got), len(want))
	}
	for i, w := range want {
		r := got[i]
		if r.Block != w.Block || r.Lag != w.Lag || r.Degraded != w.Degraded {
			t.Fatalf("%s: result %d header (%d,%d,%q) vs (%d,%d,%q)",
				tag, i, r.Block, r.Lag, r.Degraded, w.Block, w.Lag, w.Degraded)
		}
		if fmt.Sprint(r.Order) != fmt.Sprint(w.Order) ||
			fmt.Sprint(r.Start) != fmt.Sprint(w.Start) ||
			fmt.Sprint(r.Unit) != fmt.Sprint(w.Unit) {
			t.Fatalf("%s: result %d differs\n got %v %v %v\n want %v %v %v",
				tag, i, r.Order, r.Start, r.Unit, w.Order, w.Start, w.Unit)
		}
	}
}

// TestStepCacheStreamDifferential: the streamed output is bit-identical with
// the step cache on and off for every lookahead regime, on mixed-latency and
// restricted workloads including duplicate-heavy traces.
func TestStepCacheStreamDifferential(t *testing.T) {
	ks := []int{0, 1, 4, LookaheadUnbounded}
	configs := map[string]workload.TraceConfig{
		"mixed":      workload.DefaultTrace(),
		"restricted": restrictedTrace(),
	}
	var totalHits uint64
	for name, cfg := range configs {
		for _, k := range ks {
			for seed := int64(1); seed <= 6; seed++ {
				g, err := workload.Trace(rand.New(rand.NewSource(seed)), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if seed%2 == 0 {
					g = repeatTrace(g, 4)
				}
				m := SingleUnit(4)
				tag := fmt.Sprintf("%s k=%d seed=%d", name, k, seed)

				blocks, _, err := TraceStreamBlocks(g)
				if err != nil {
					t.Fatal(err)
				}
				run := func(opt StreamOptions) ([]*BlockResult, *StreamScheduler) {
					ss := NewStreamScheduler(m, opt)
					var all []*BlockResult
					for i, b := range blocks {
						res, err := ss.Push(b)
						if err != nil {
							t.Fatalf("%s push %d: %v", tag, i, err)
						}
						all = append(all, res...)
					}
					tail, err := ss.Flush()
					if err != nil {
						t.Fatalf("%s flush: %v", tag, err)
					}
					return append(all, tail...), ss
				}
				want, _ := run(StreamOptions{Lookahead: k, StepCacheCapacity: -1})
				got, ss := run(StreamOptions{Lookahead: k})
				sameBlockResults(t, tag, got, want)
				totalHits += ss.StepCacheCounters().Hits
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("no step-cache hits across the stream sweep")
	}
}

// TestStepCacheHitAllocBudget pins the hit path's allocation cost: in steady
// state on a repetitive stream, a push that replays a cached fragment stays
// within a small constant allocation budget — far below the uncached merge
// path — and the measured window really is hitting the cache.
func TestStepCacheHitAllocBudget(t *testing.T) {
	testutil.SkipIfAllocSensitive(t)
	g, err := workload.Trace(rand.New(rand.NewSource(11)), workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := TraceStreamBlocks(g)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 12
	var long []StreamBlock
	for c := 0; c < cycles; c++ {
		off := NodeID(c * g.Len())
		for _, b := range blocks {
			nb := StreamBlock{Nodes: b.Nodes, Deps: make([]StreamDep, len(b.Deps))}
			for i, d := range b.Deps {
				nb.Deps[i] = StreamDep{Src: d.Src + off, Dst: d.Dst + off, Latency: d.Latency}
			}
			long = append(long, nb)
		}
	}
	ss := NewStreamScheduler(SingleUnit(4), StreamOptions{Lookahead: 1})
	warm := 2 * len(blocks)
	for _, b := range long[:warm] {
		if _, err := ss.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	before := ss.StepCacheCounters()
	const budget = 25
	i := warm
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := ss.Push(long[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	after := ss.StepCacheCounters()
	if after.Hits == before.Hits {
		t.Fatalf("measured window never hit the step cache (hits=%d misses=%d)", after.Hits, after.Misses)
	}
	if allocs > budget {
		t.Fatalf("step-cache hit push: %.0f allocs/op, budget %d", allocs, budget)
	}
	t.Logf("step-cache hit push: %.0f allocs/op (budget %d); hits %d→%d",
		allocs, budget, before.Hits, after.Hits)
}

// FuzzStepCache: for arbitrary decoded multi-block restricted instances, the
// streamed schedule is bit-identical with the step cache on and off at every
// lookahead. Bytes beyond the instance choose k.
func FuzzStepCache(f *testing.F) {
	f.Add([]byte{0, 5, 0, 1, 0, 1, 0, 0x80, 2, 1, 3}, byte(0))
	f.Add([]byte{3, 9, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 5, 0x82, 7}, byte(1))
	f.Add([]byte{1, 7, 0, 0, 1, 0, 1, 1, 0, 2, 4, 0x81, 6}, byte(2))
	f.Fuzz(func(t *testing.T, data []byte, kb byte) {
		g, m := decodeInstance(data, true)
		if g == nil {
			return
		}
		k := int(kb) % 3
		if k == 2 {
			k = LookaheadUnbounded
		}
		blocks, _, err := TraceStreamBlocks(g)
		if err != nil {
			return // decoded instance not streamable (never the case, but safe)
		}
		run := func(opt StreamOptions) []*BlockResult {
			ss := NewStreamScheduler(m, opt)
			var all []*BlockResult
			for i, b := range blocks {
				res, err := ss.Push(b)
				if err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
				all = append(all, res...)
			}
			tail, err := ss.Flush()
			if err != nil {
				t.Fatalf("flush: %v", err)
			}
			return append(all, tail...)
		}
		want := run(StreamOptions{Lookahead: k, StepCacheCapacity: -1})
		got := run(StreamOptions{Lookahead: k})
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results vs %d", k, len(got), len(want))
		}
		for i, w := range want {
			r := got[i]
			if r.Block != w.Block || r.Lag != w.Lag || r.Degraded != w.Degraded ||
				fmt.Sprint(r.Order) != fmt.Sprint(w.Order) ||
				fmt.Sprint(r.Start) != fmt.Sprint(w.Start) ||
				fmt.Sprint(r.Unit) != fmt.Sprint(w.Unit) {
				t.Fatalf("k=%d result %d: cached %+v, uncached %+v", k, i, r, w)
			}
		}
	})
}

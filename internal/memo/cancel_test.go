package memo

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"aisched/internal/faultinject"
	"aisched/internal/sbudget"
)

// startBlockedLeader launches a Do whose compute blocks until release is
// closed and then returns (val, err). It returns once the leader is inside
// its compute, so followers are guaranteed to coalesce.
func startBlockedLeader(c *Cache, k Key, val any, err error) (release chan struct{}) {
	release = make(chan struct{})
	entered := make(chan struct{})
	go c.Do(k, func() (any, error) {
		close(entered)
		<-release
		return val, err
	})
	<-entered
	return release
}

// awaitCoalesced spins until n waiters are blocked on the in-flight leader.
func awaitCoalesced(c *Cache, n uint64) {
	for c.Counters().Coalesced != n {
		runtime.Gosched()
	}
}

// TestCancelledLeaderDoesNotPoisonWaiter: when the leader fails with an
// error personal to it (its caller cancelled), a coalesced waiter must not
// inherit that error — it recomputes under its own (live) context and its
// result lands in the cache.
func TestCancelledLeaderDoesNotPoisonWaiter(t *testing.T) {
	for _, tc := range []struct {
		name   string
		leader error
	}{
		{"canceled", context.Canceled},
		{"deadline", context.DeadlineExceeded},
		{"exhausted", sbudget.ErrExhausted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{})
			k := key(2, 11)
			release := startBlockedLeader(c, k, nil, tc.leader)

			type res struct {
				v   any
				hit bool
				err error
			}
			done := make(chan res, 1)
			go func() {
				v, hit, err := c.DoCtx(context.Background(), k, func() (any, error) { return "fresh", nil })
				done <- res{v, hit, err}
			}()
			awaitCoalesced(c, 1)
			close(release)

			got := <-done
			if got.err != nil || got.hit || got.v != "fresh" {
				t.Fatalf("waiter: v=%v hit=%v err=%v; want fresh recompute", got.v, got.hit, got.err)
			}
			cnt := c.Counters()
			if cnt.Recomputed != 1 {
				t.Fatalf("Recomputed = %d, want 1", cnt.Recomputed)
			}
			// Hits+Misses+Coalesced still accounts for every call: the leader's
			// miss plus the waiter's coalesce.
			if cnt.Hits+cnt.Misses+cnt.Coalesced != 2 {
				t.Fatalf("counters %+v do not sum to 2 calls", cnt)
			}
			// The waiter's recompute was stored; the leader's failure was not.
			v, hit, err := c.Do(k, func() (any, error) { return "stale", nil })
			if err != nil || !hit || v != "fresh" {
				t.Fatalf("post-recompute lookup: v=%v hit=%v err=%v", v, hit, err)
			}
		})
	}
}

// TestRealErrorStillShared: a genuine scheduling error (not personal to the
// leader) propagates to waiters unchanged — no recompute.
func TestRealErrorStillShared(t *testing.T) {
	c := New(Config{})
	k := key(2, 12)
	boom := errors.New("illegal graph")
	release := startBlockedLeader(c, k, nil, boom)

	done := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtx(context.Background(), k, func() (any, error) { return "fresh", nil })
		done <- err
	}()
	awaitCoalesced(c, 1)
	close(release)

	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want shared boom", err)
	}
	if cnt := c.Counters(); cnt.Recomputed != 0 {
		t.Fatalf("Recomputed = %d, want 0", cnt.Recomputed)
	}
}

// TestWaiterOwnCancellation: a waiter whose own context is cancelled while
// the leader is still computing returns ctx.Err() promptly; the leader's
// computation is unaffected and still lands in the cache.
func TestWaiterOwnCancellation(t *testing.T) {
	c := New(Config{})
	k := key(2, 13)
	release := startBlockedLeader(c, k, "slow", nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtx(ctx, k, func() (any, error) { return "unused", nil })
		done <- err
	}()
	awaitCoalesced(c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	// Leader is still alive; releasing it must cache its value as usual.
	close(release)
	for c.Len() != 1 {
		runtime.Gosched()
	}
	v, hit, err := c.Do(k, func() (any, error) { return "stale", nil })
	if err != nil || !hit || v != "slow" {
		t.Fatalf("leader value lost: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestPersonalErrorNeverCached: a leader that is cancelled or runs out of
// budget leaves nothing in the cache — the next lookup recomputes.
func TestPersonalErrorNeverCached(t *testing.T) {
	c := New(Config{})
	k := key(2, 14)
	_, hit, err := c.Do(k, func() (any, error) { return nil, sbudget.ErrExhausted })
	if hit || !errors.Is(err, sbudget.ErrExhausted) {
		t.Fatalf("exhausted Do: hit=%v err=%v", hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("exhausted result was cached: len=%d", c.Len())
	}
	v, hit, err := c.Do(k, func() (any, error) { return "retry", nil })
	if err != nil || hit || v != "retry" {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestComputePanicDoesNotHangWaiters: a panicking leader still closes its
// flight, so waiters get an error instead of blocking forever.
func TestComputePanicDoesNotHangWaiters(t *testing.T) {
	c := New(Config{})
	k := key(2, 15)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(k, func() (any, error) {
			close(entered)
			<-release
			panic("compute exploded")
		})
		leaderDone <- err
	}()
	<-entered

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoCtx(context.Background(), k, func() (any, error) { return nil, nil })
		waiterDone <- err
	}()
	awaitCoalesced(c, 1)
	close(release)

	if err := <-leaderDone; err == nil {
		t.Fatal("leader panic was not converted to an error")
	}
	if err := <-waiterDone; err == nil {
		t.Fatal("waiter did not observe the leader's panic error")
	}
	if c.Len() != 0 {
		t.Fatalf("panicked result was cached: len=%d", c.Len())
	}
}

// TestMemoLookupHookFires: the faultinject.MemoLookup site is consulted on
// every DoCtx entry (hit, miss, and coalesce alike).
func TestMemoLookupHookFires(t *testing.T) {
	defer faultinject.Reset()
	calls := 0
	faultinject.MemoLookup = func() { calls++ }
	c := New(Config{})
	k := key(2, 16)
	c.Do(k, func() (any, error) { return 1, nil })
	c.Do(k, func() (any, error) { return 1, nil })
	if calls != 2 {
		t.Fatalf("MemoLookup fired %d times, want 2", calls)
	}
}

package aisched

// Streaming facade: schedule a trace block by block as it arrives, instead
// of materializing the whole dependence graph first. Each Push runs one
// merge + Delay_Idle_Slots + chop step (the same core engine as
// ScheduleTrace) against only the carried suffix, so the first block's
// schedule is available after one push — O(block) time-to-first-schedule —
// and memory stays bounded by the suffix plus the lookahead window.
//
//	ss := aisched.NewStreamScheduler(m, aisched.StreamOptions{Lookahead: 2})
//	for _, b := range blocks {
//	    done, err := ss.Push(b) // zero or more finalized BlockResults
//	    ...
//	}
//	tail, err := ss.Flush()     // the carried suffix, finalized
//
// Lookahead 0 (the default) is fully online: every block is final the
// moment it is pushed. LookaheadUnbounded defers finality entirely to the
// chop rule, making the streamed output bit-identical to ScheduleTrace.
// Intermediate values bound both the emit lag and the carried state while
// keeping most of the cross-block anticipation (EXPERIMENTS.md S1).

import (
	"context"
	"errors"
	"sync"
	"time"

	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/metrics"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
	"aisched/internal/stream"
)

// Streaming type aliases.
type (
	// StreamBlock is one basic block fed to a StreamScheduler.
	StreamBlock = stream.Block
	// StreamNode is one instruction of a StreamBlock.
	StreamNode = stream.Node
	// StreamDep is a dependence edge into the block being pushed.
	StreamDep = stream.Dep
	// BlockResult is one finalized block: its static order and predicted
	// absolute placement.
	BlockResult = stream.BlockResult
)

// LookaheadUnbounded makes finality purely chop-driven: the streamed output
// is bit-identical to batch ScheduleTrace, at the cost of unbounded emit lag
// on adversarial traces.
const LookaheadUnbounded = stream.Unbounded

// ErrStreamClosed is returned by operations on a closed StreamScheduler.
var ErrStreamClosed = errors.New("aisched: stream scheduler closed")

// Streaming instruments, always on (see metrics.go).
var (
	mStreamPushNS = metrics.Default.NewHistogram("aisched_stream_push_ns",
		"StreamScheduler.Push latency (facade, nanoseconds)")
	mStreamEmitLag = metrics.Default.NewHistogram("aisched_stream_emit_lag_blocks",
		"pushes between a block's arrival and its finalization")
	mStreamSuffix = metrics.Default.NewGauge("aisched_stream_suffix_nodes",
		"carried (not yet final) instructions in the most recent stream push")
	mStreamBlocks = metrics.Default.NewCounter("aisched_stream_blocks_total",
		"blocks finalized by streaming schedulers")
)

// StreamOptions tunes a StreamScheduler.
type StreamOptions struct {
	// Lookahead is the semi-online lookahead k: a block is guaranteed final
	// at most k pushes after it arrives. 0 (the default) is fully online;
	// LookaheadUnbounded leaves finality to the chop rule (batch-identical
	// output). Negative values are treated as 0.
	Lookahead int
	// Budget bounds each push (PR 4 semantics): an exhausted push finalizes
	// the live window with the baseline critical-path schedule, tags those
	// BlockResults Degraded, and keeps streaming. The zero value is
	// unlimited.
	Budget Budget
	// Tracer, when non-nil, receives stream-push/stream-emit events plus the
	// per-merge events of the underlying engine.
	Tracer Tracer
	// OnResult, when non-nil, is invoked synchronously for every finalized
	// block — including those finalized by Close, which are otherwise
	// dropped. Results are also returned from Push/Flush either way.
	OnResult func(*BlockResult)
	// StepCacheCapacity is the structural step cache's fragment budget
	// (0 = default 4096; negative disables it). The step cache memoizes
	// whole push iterations keyed by structural fingerprints, so repeated
	// block shapes replay in O(block); results are bit-identical either
	// way. Close releases the cache's resident bytes.
	StepCacheCapacity int
	// StepCacheMaxBytes bounds the step cache's approximate resident bytes
	// (0 = default 64 MiB; negative = fragment-count bound only).
	StepCacheMaxBytes int
}

// StreamScheduler schedules a trace incrementally. Safe for concurrent use;
// pushes are serialized.
type StreamScheduler struct {
	mu        sync.Mutex
	eng       *stream.Scheduler
	stepCache *core.StepCache // nil when step caching is disabled
	budget    Budget
	tracer    Tracer
	onResult  func(*BlockResult)
	closed    bool
}

// NewStreamScheduler returns a streaming scheduler for machine m.
func NewStreamScheduler(m *Machine, opt StreamOptions) *StreamScheduler {
	ss := &StreamScheduler{
		budget:   opt.Budget,
		tracer:   opt.Tracer,
		onResult: opt.OnResult,
	}
	if opt.StepCacheCapacity >= 0 {
		ss.stepCache = core.NewStepCache(core.StepCacheConfig{
			Capacity: opt.StepCacheCapacity,
			MaxBytes: opt.StepCacheMaxBytes,
		})
	}
	ss.eng = stream.New(m, stream.Options{
		Lookahead: opt.Lookahead,
		Tracer:    opt.Tracer,
		StepCache: ss.stepCache,
	})
	return ss
}

// StepCacheCounters returns the structural step cache's activity counters
// (all zero when step caching is disabled).
func (ss *StreamScheduler) StepCacheCounters() CacheCounters {
	if ss.stepCache == nil {
		return CacheCounters{}
	}
	return ss.stepCache.Counters()
}

// Push feeds the next block and returns the blocks it finalized (often
// none, possibly several). An error poisons the stream — except budget
// exhaustion, which degrades the affected blocks and keeps the stream
// accepting (inspect BlockResult.Degraded).
func (ss *StreamScheduler) Push(b StreamBlock) ([]*BlockResult, error) {
	return ss.PushCtx(context.Background(), b)
}

// PushCtx is Push with cooperative cancellation: when ctx is cancelled the
// push aborts within one rank pass, the already-emitted prefix stands, and
// the stream is poisoned with the context's error.
func (ss *StreamScheduler) PushCtx(ctx context.Context, b StreamBlock) ([]*BlockResult, error) {
	defer observeRequest(mStreamPushNS, time.Now())
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, ErrStreamClosed
	}
	bud := sbudget.New(ctx, ss.budget.WallClock, ss.budget.MaxRankPasses)
	res, err := ss.eng.Push(b, bud)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			mCancelled.Inc()
			ss.emit(obs.Event{Kind: obs.KindCancel, Label: err.Error(), Block: -1, Node: graph.None})
		}
		return nil, err
	}
	ss.deliver(res)
	mStreamSuffix.Set(int64(ss.eng.SuffixLen()))
	return res, nil
}

// Flush finalizes the carried suffix and returns every remaining block. The
// stream stays usable: later pushes start a fresh suffix placed after the
// flushed schedule.
func (ss *StreamScheduler) Flush() ([]*BlockResult, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, ErrStreamClosed
	}
	res, err := ss.eng.Flush()
	if err != nil {
		return nil, err
	}
	ss.deliver(res)
	mStreamSuffix.Set(0)
	return res, nil
}

// Close flushes the carried suffix — delivering the final blocks to
// OnResult when set — and rejects all further operations.
func (ss *StreamScheduler) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil
	}
	ss.closed = true
	if ss.stepCache != nil {
		// Return the cache's resident bytes to the process-wide gauge; the
		// engine is done with it (a closed stream never pushes again).
		defer ss.stepCache.Release()
	}
	if ss.eng.Err() != nil {
		return nil // already poisoned; nothing left to flush
	}
	res, err := ss.eng.Flush()
	if err != nil {
		return err
	}
	ss.deliver(res)
	mStreamSuffix.Set(0)
	return nil
}

// Makespan reports the predicted completion of everything pushed so far,
// including the carried suffix's tentative placement.
func (ss *StreamScheduler) Makespan() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.eng.Makespan()
}

// SuffixLen reports the number of carried (not yet final) instructions.
func (ss *StreamScheduler) SuffixLen() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.eng.SuffixLen()
}

// deliver records metrics for finalized blocks and forwards them to
// OnResult. Called with ss.mu held.
func (ss *StreamScheduler) deliver(res []*BlockResult) {
	for _, r := range res {
		mStreamBlocks.Inc()
		mStreamEmitLag.Observe(int64(r.Lag))
		if r.Degraded != "" {
			mDegraded.Inc()
			ss.emit(obs.Event{Kind: obs.KindDegrade, Label: r.Degraded, Block: r.Block, Node: graph.None})
		}
		if ss.onResult != nil {
			ss.onResult(r)
		}
	}
}

func (ss *StreamScheduler) emit(ev obs.Event) {
	if ss.tracer != nil {
		ss.tracer.Emit(ev)
	}
}

// TraceStreamBlocks splits a whole-trace dependence graph into the
// StreamBlock sequence that reproduces it when pushed in order — the bridge
// between the batch representation and the streaming API (used by the
// equivalence tests, the CLI's stream mode, and as a template for real
// producers). It requires node IDs grouped by block in nondecreasing block
// order (the layout deps.BuildTrace and the workload generator emit), so
// stream IDs coincide with graph node IDs. Loop-carried edges (distance >
// 0) are rejected: a streamed trace has no back edges.
//
// The second return value maps each StreamBlock index to the original block
// number in g (block numbers need not be dense).
func TraceStreamBlocks(g *Graph) ([]StreamBlock, []int, error) {
	n := g.Len()
	var blocks []StreamBlock
	var nums []int
	// Partition nodes into maximal runs of equal block number.
	for v := 0; v < n; {
		b := g.Node(NodeID(v)).Block
		if len(nums) > 0 && b <= nums[len(nums)-1] {
			return nil, nil, errors.New("aisched: TraceStreamBlocks requires node IDs grouped by nondecreasing block")
		}
		end := v
		var nodes []StreamNode
		for end < n && g.Node(NodeID(end)).Block == b {
			nd := g.Node(NodeID(end))
			nodes = append(nodes, StreamNode{Label: nd.Label, Exec: nd.Exec, Class: nd.Class})
			end++
		}
		blocks = append(blocks, StreamBlock{Nodes: nodes})
		nums = append(nums, b)
		v = end
	}
	// Route each edge to its destination's block.
	blockOf := make([]int, n) // node → StreamBlock index
	bi := 0
	for v := 0; v < n; v++ {
		if g.Node(NodeID(v)).Block != nums[bi] {
			bi++
		}
		blockOf[v] = bi
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(NodeID(v)) {
			if e.Distance != 0 {
				return nil, nil, errors.New("aisched: TraceStreamBlocks: loop-carried edge in trace graph")
			}
			db := blockOf[e.Dst]
			blk := &blocks[db]
			blk.Deps = append(blk.Deps, StreamDep{Src: e.Src, Dst: e.Dst, Latency: e.Latency})
		}
	}
	return blocks, nums, nil
}

package faultinject

import (
	"testing"
	"time"

	"aisched/internal/obs"
)

// TestHooksNilByDefault guards the zero-overhead contract: a fresh process
// must have every hook unset. (scripts/check.sh additionally greps that no
// non-test package assigns them.)
func TestHooksNilByDefault(t *testing.T) {
	if MemoLookup != nil || WorkerStart != nil || RankPass != nil ||
		SimStep != nil || Checkpoint != nil || BudgetExhaust != nil {
		t.Fatal("a fault-injection hook is set by default")
	}
}

func TestResetClearsHooks(t *testing.T) {
	MemoLookup = func() {}
	WorkerStart = func() {}
	RankPass = func() {}
	SimStep = func() {}
	Checkpoint = func() {}
	BudgetExhaust = func() bool { return true }
	Reset()
	TestHooksNilByDefault(t)
}

func TestHelpersCountAndTrace(t *testing.T) {
	ResetCount()
	rec := obs.NewRecorder()

	Delay(rec, "site-a", time.Microsecond)()
	if !ForceExhaust(rec, "site-b")() {
		t.Fatal("ForceExhaust returned false")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Panic hook did not panic")
			}
		}()
		Panic(rec, "site-c", "boom")()
	}()

	if got := Injected(); got != 3 {
		t.Fatalf("Injected = %d, want 3", got)
	}
	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(events))
	}
	for i, want := range []string{"site-a", "site-b", "site-c"} {
		if events[i].Kind != obs.KindFault || events[i].Label != want {
			t.Fatalf("event %d = %+v, want KindFault at %s", i, events[i], want)
		}
	}
	if st := rec.Stats(); st.FaultsInjected != 3 {
		t.Fatalf("Stats.FaultsInjected = %d, want 3", st.FaultsInjected)
	}
	ResetCount()
	if Injected() != 0 {
		t.Fatal("ResetCount did not zero the counter")
	}
}

func TestAfterFiresOnce(t *testing.T) {
	fired := 0
	h := After(3, func() { fired++ })
	for i := 0; i < 10; i++ {
		h()
	}
	if fired != 1 {
		t.Fatalf("After(3) fired %d times, want 1", fired)
	}
}

package obs_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aisched/internal/hw"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/paperex"
)

var update = flag.Bool("update", false, "rewrite the Chrome trace golden file")

// fig3Trace produces the canonical observability fixture: the §5.2 loop
// scheduler and a 4-iteration window simulation of the paper's Figure 3
// partial-products loop, fully deterministic.
func fig3Trace(t *testing.T) *obs.Recorder {
	t.Helper()
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	rec := obs.NewRecorder()
	st, err := loops.ScheduleLoopT(f.G, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.SimulateLoop(f.G, m, st.Order, 4,
		hw.Options{Speculate: true, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestChromeTraceGolden pins the exported Chrome trace-event JSON for the
// Figure 3 fixture byte for byte, so the export format cannot silently
// drift. Regenerate with:
//
//	go test ./internal/obs -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	got, err := fig3Trace(t).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fig3_chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("Chrome trace JSON drifted from %s (run with -update after an intentional schema change)\ngot %d bytes, want %d bytes",
			golden, len(got), len(want))
	}
}

// TestChromeTraceSchema validates the structural schema independently of the
// golden bytes: required top-level keys, known phases, and the required args
// per event class.
func TestChromeTraceSchema(t *testing.T) {
	data, err := fig3Trace(t).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		DisplayUnit string                       `json:"displayTimeUnit"`
		OtherData   map[string]string            `json:"otherData"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if trace.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", trace.DisplayUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Required args per event name class; names outside this table must be
	// instruction labels (phase X on a unit lane) or stall spans.
	requiredArgs := map[string][]string{
		"stall:":           {"reason", "cycles"},
		"rollback":         {"branch_pos", "squashed", "resume"},
		"window-occupancy": {"occupied", "head"},
		"deadline-tighten": {"node", "label", "from", "to"},
		"slot-move":        {"unit", "from", "to"},
		"merge-loosen":     {"block", "round"},
		"merge":            {"block", "old", "new", "makespan"},
		"chop":             {"block", "committed", "carried", "base"},
		"ii-candidate":     {"kind", "node", "label", "ii", "makespan"},
	}
	validPhases := map[string]bool{"X": true, "B": true, "E": true, "i": true, "C": true, "M": true}
	sawIssue, sawStall, sawCounter, sawPass := false, false, false, false
	for i, ev := range trace.TraceEvents {
		var name, ph string
		if err := json.Unmarshal(ev["name"], &name); err != nil {
			t.Fatalf("event %d: bad name: %v", i, err)
		}
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event %d (%s): bad ph: %v", i, name, err)
		}
		if !validPhases[ph] {
			t.Errorf("event %d (%s): unknown phase %q", i, name, ph)
		}
		if _, ok := ev["ts"]; !ok && ph != "M" {
			t.Errorf("event %d (%s): missing ts", i, name)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d (%s): missing %s", i, name, key)
			}
		}
		var args map[string]json.RawMessage
		if raw, ok := ev["args"]; ok {
			if err := json.Unmarshal(raw, &args); err != nil {
				t.Fatalf("event %d (%s): bad args: %v", i, name, err)
			}
		}
		check := func(keys []string) {
			for _, k := range keys {
				if _, ok := args[k]; !ok {
					t.Errorf("event %d (%s): args missing %q", i, name, k)
				}
			}
		}
		switch {
		case ph == "M":
			check([]string{"name"})
		case ph == "C":
			sawCounter = true
			check(requiredArgs["window-occupancy"])
		case ph == "B" || ph == "E":
			sawPass = true
		case len(name) > 6 && name[:6] == "stall:":
			sawStall = true
			check(requiredArgs["stall:"])
		default:
			if keys, ok := requiredArgs[name]; ok {
				check(keys)
			} else if ph == "X" {
				sawIssue = true
				check([]string{"pos", "node", "block", "iter", "fill"})
			}
		}
	}
	if !sawIssue || !sawStall || !sawCounter || !sawPass {
		t.Errorf("fixture trace incomplete: issue=%v stall=%v counter=%v pass=%v",
			sawIssue, sawStall, sawCounter, sawPass)
	}
}

GO ?= go

.PHONY: build test check bench bench-snapshot experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Build + vet + tests + race detector + benchmark regression gate
# (scripts/check.sh).
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem

# Refresh the committed benchmark snapshot the ≤2% regression budget is
# measured against.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -o BENCH_PR10.json

experiments:
	$(GO) run ./cmd/experiments

package aisched

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"aisched/internal/workload"
)

// relabel rebuilds g node-for-node (same IDs, attributes, and edges) with
// different labels and a shuffled edge insertion order — the front-end
// rebuilding the same block down a different path. Must hit the cache.
func relabel(g *Graph, r *rand.Rand) *Graph {
	h := NewGraph(g.Len() + 3)
	for v := 0; v < g.Len(); v++ {
		nd := g.Node(NodeID(v))
		h.AddNode(fmt.Sprintf("relabelled-%d", v), nd.Exec, nd.Class, nd.Block)
	}
	var es []Edge
	for v := 0; v < g.Len(); v++ {
		es = append(es, g.Out(NodeID(v))...)
	}
	for _, i := range r.Perm(len(es)) {
		h.MustEdge(es[i].Src, es[i].Dst, es[i].Latency, es[i].Distance)
	}
	return h
}

func sameSchedule(t *testing.T, what string, a, b *Schedule) {
	t.Helper()
	if !reflect.DeepEqual(a.Start, b.Start) || !reflect.DeepEqual(a.Unit, b.Unit) {
		t.Fatalf("%s: schedules differ\n%v\n%v", what, a, b)
	}
}

func sameTraceResult(t *testing.T, what string, a, b *TraceResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Order, b.Order) || !reflect.DeepEqual(a.BlockOrders, b.BlockOrders) {
		t.Fatalf("%s: orders differ", what)
	}
	sameSchedule(t, what, a.S, b.S)
}

func sameSteady(t *testing.T, what string, a, b *LoopSteady) {
	t.Helper()
	if !reflect.DeepEqual(a.Order, b.Order) || a.Makespan != b.Makespan || a.II != b.II {
		t.Fatalf("%s: steady states differ: %+v vs %+v", what, a, b)
	}
	sameSchedule(t, what, a.S, b.S)
}

// TestSchedulerDifferentialBitIdentical is the tentpole's required
// differential test: for every kind, the memoized Scheduler's results —
// cold (computing miss), warm (cache hit), and from a relabelled rebuild of
// the same graph — are bit-identical to the direct uncached package calls,
// and every returned schedule is rebound to the caller's own graph and
// machine pointers.
func TestSchedulerDifferentialBitIdentical(t *testing.T) {
	m := SingleUnit(4)
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		tg, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			t.Fatal(err)
		}
		lg, err := workload.Loop(r, workload.DefaultLoop())
		if err != nil {
			t.Fatal(err)
		}
		sc := NewScheduler(SchedulerOptions{})

		// Trace kind.
		direct, err := ScheduleTrace(tg, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []struct {
			name string
			g    *Graph
		}{{"cold", tg}, {"warm", tg}, {"relabelled", relabel(tg, r)}} {
			g := pass.g
			got, err := sc.ScheduleTrace(g, m)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pass.name, err)
			}
			sameTraceResult(t, fmt.Sprintf("seed %d trace/%s", seed, pass.name), direct, got)
			if got.S.G != g || got.S.M != m {
				t.Fatalf("seed %d trace/%s: result not rebound to caller's graph/machine", seed, pass.name)
			}
		}

		// Block kind (the whole trace graph as one scheduling unit).
		dblock, err := ScheduleBlock(tg, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			got, err := sc.ScheduleBlock(tg, m)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, fmt.Sprintf("seed %d block/%s", seed, pass), dblock, got)
			if got.G != tg || got.M != m {
				t.Fatalf("seed %d block/%s: result not rebound", seed, pass)
			}
		}

		// Loop kind.
		dloop, err := ScheduleLoop(lg, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			got, err := sc.ScheduleLoop(lg, m)
			if err != nil {
				t.Fatal(err)
			}
			sameSteady(t, fmt.Sprintf("seed %d loop/%s", seed, pass), dloop, got)
			if got.S.G != lg || got.S.M != m {
				t.Fatalf("seed %d loop/%s: result not rebound", seed, pass)
			}
		}

		// The relabelled rebuild must have hit, not recomputed: 3 distinct
		// computations (trace, block, loop), everything else cache traffic.
		if got := sc.CacheCounters(); got.Misses != 3 {
			t.Fatalf("seed %d: %d misses, want 3 (counters %+v)", seed, got.Misses, got)
		}
	}
}

// TestSchedulerResultsAreIndependentClones: mutating a returned schedule
// must not corrupt the cache.
func TestSchedulerResultsAreIndependentClones(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, err := workload.Trace(r, workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	sc := NewScheduler(SchedulerOptions{})
	first, err := sc.ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), first.S.Start...)
	first.S.Start[0] = -99
	first.Order[0] = NodeID(-99)
	second, err := sc.ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.S.Start, want) {
		t.Fatal("mutating a returned result leaked into the cache")
	}
}

func TestSchedulerCacheDisabled(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, err := workload.Trace(r, workload.DefaultTrace())
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	sc := NewScheduler(SchedulerOptions{CacheCapacity: -1})
	direct, err := ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.ScheduleTrace(g, m)
	if err != nil {
		t.Fatal(err)
	}
	sameTraceResult(t, "uncached scheduler", direct, got)
	if c := sc.CacheCounters(); c != (CacheCounters{}) {
		t.Fatalf("disabled cache reported activity: %+v", c)
	}
}

func TestSchedulerErrorNotCached(t *testing.T) {
	g := NewGraph(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, a, 0, 0) // loop-independent cycle: every scheduler rejects
	m := SingleUnit(4)
	sc := NewScheduler(SchedulerOptions{})
	for i := 0; i < 2; i++ {
		if _, err := sc.ScheduleTrace(g, m); err == nil {
			t.Fatal("cyclic graph scheduled without error")
		}
	}
	if got := sc.CacheCounters(); got.Misses != 2 || got.Hits != 0 {
		t.Fatalf("errors must not be cached: %+v", got)
	}
}

// TestScheduleBatchMatchesSerial: a mixed batch with duplicates returns, in
// input order, exactly what serial uncached calls return — and duplicates
// are computed once.
func TestScheduleBatchMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := SingleUnit(4)
	mw := RS6000(6)
	var items []BatchItem
	for i := 0; i < 6; i++ {
		tg, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			t.Fatal(err)
		}
		lg, err := workload.Loop(r, workload.DefaultLoop())
		if err != nil {
			t.Fatal(err)
		}
		items = append(items,
			BatchItem{G: tg, M: m, Kind: BatchTrace},
			BatchItem{G: tg, M: mw, Kind: BatchTrace}, // same graph, other machine
			BatchItem{G: tg, M: m, Kind: BatchBlock},
			BatchItem{G: lg, M: m, Kind: BatchLoop},
			BatchItem{G: relabel(tg, r), M: m, Kind: BatchTrace}, // duplicate via fingerprint
		)
	}
	got := ScheduleBatch(items)
	if len(got) != len(items) {
		t.Fatalf("got %d results for %d items", len(got), len(items))
	}
	for i, it := range items {
		if got[i].Err != nil {
			t.Fatalf("item %d: %v", i, got[i].Err)
		}
		switch it.Kind {
		case BatchTrace:
			want, err := ScheduleTrace(it.G, it.M)
			if err != nil {
				t.Fatal(err)
			}
			sameTraceResult(t, fmt.Sprintf("item %d", i), want, got[i].Trace)
		case BatchBlock:
			want, err := ScheduleBlock(it.G, it.M)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, fmt.Sprintf("item %d", i), want, got[i].Block)
		case BatchLoop:
			want, err := ScheduleLoop(it.G, it.M)
			if err != nil {
				t.Fatal(err)
			}
			sameSteady(t, fmt.Sprintf("item %d", i), want, got[i].Loop)
		}
	}
}

// TestScheduleBatchConcurrencyAndCoalescing hammers one Scheduler with a
// duplicate-heavy batch (run under -race by make check) and checks the
// cache bookkeeping: every request is a hit, miss, or coalesce, and misses
// equal the number of distinct instances.
func TestScheduleBatchConcurrencyAndCoalescing(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := SingleUnit(4)
	const distinct, copies = 5, 24
	var graphs []*Graph
	for i := 0; i < distinct; i++ {
		g, err := workload.Trace(r, workload.DefaultTrace())
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	var items []BatchItem
	for c := 0; c < copies; c++ {
		for _, g := range graphs {
			items = append(items, BatchItem{G: relabel(g, r), M: m, Kind: BatchTrace})
		}
	}
	sc := NewScheduler(SchedulerOptions{})
	res := sc.ScheduleBatch(items)
	for i, g := range graphs {
		want, err := ScheduleTrace(g, m)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < copies; c++ {
			br := res[c*distinct+i]
			if br.Err != nil {
				t.Fatal(br.Err)
			}
			sameTraceResult(t, fmt.Sprintf("copy %d of graph %d", c, i), want, br.Trace)
		}
	}
	got := sc.CacheCounters()
	if got.Misses != distinct {
		t.Fatalf("misses = %d, want %d (%+v)", got.Misses, distinct, got)
	}
	if got.Hits+got.Misses+got.Coalesced != uint64(len(items)) {
		t.Fatalf("requests unaccounted for: %+v over %d items", got, len(items))
	}
}

// TestScheduleProgram: the program pipeline matches scheduling each selected
// trace serially, and block bookkeeping maps graph blocks to CFG blocks.
func TestScheduleProgram(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := workload.RandomProgram(r, 8)
	c, err := CompileC(src)
	if err != nil {
		t.Fatal(err)
	}
	m := SingleUnit(4)
	ps, err := ScheduleProgram(c, m)
	if err != nil {
		t.Fatal(err)
	}

	cg, err := BuildCFG(c)
	if err != nil {
		t.Fatal(err)
	}
	traces := cg.SelectTraces()
	if len(ps.Traces) != len(traces) {
		t.Fatalf("scheduled %d traces, CFG selected %d", len(ps.Traces), len(traces))
	}
	for i, tr := range traces {
		want, err := ScheduleTrace(BuildTraceGraph(cg.TraceInstrs(tr)), m)
		if err != nil {
			t.Fatal(err)
		}
		sameTraceResult(t, fmt.Sprintf("trace %d", i), want, ps.Traces[i].Res)
		// Blocks records exactly the non-empty CFG blocks, in trace order,
		// and the graph's block indices address into it.
		var nonEmpty []int
		for _, bi := range tr {
			if len(cg.Blocks[bi].Instrs) > 0 {
				nonEmpty = append(nonEmpty, bi)
			}
		}
		if !reflect.DeepEqual(ps.Traces[i].Blocks, nonEmpty) {
			t.Fatalf("trace %d: Blocks = %v, want %v", i, ps.Traces[i].Blocks, nonEmpty)
		}
		for v := 0; v < ps.Traces[i].G.Len(); v++ {
			if b := ps.Traces[i].G.Node(NodeID(v)).Block; b < 0 || b >= len(nonEmpty) {
				t.Fatalf("trace %d node %d: block %d out of range", i, v, b)
			}
		}
	}
}

func TestScheduleBatchEmptyAndErrors(t *testing.T) {
	if got := ScheduleBatch(nil); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
	res := ScheduleBatch([]BatchItem{{G: nil, M: SingleUnit(4), Kind: BatchTrace}})
	if res[0].Err == nil {
		t.Fatal("nil graph item must error, not panic")
	}
	g := NewGraph(1)
	g.AddUnit("a")
	res = ScheduleBatch([]BatchItem{{G: g, M: SingleUnit(4), Kind: BatchKind(99)}})
	if res[0].Err == nil {
		t.Fatal("unknown kind must error")
	}
}

package aisched

import (
	"strings"
	"testing"
)

const facadeProgram = `
int n;
int s;
int i;
int d[16];
n = 12;
s = 1;
for (i = 0; i < 5; i = i + 1) {
	d[i] = s + i;
	s = s * 2;
}
if (s > n) { s = s - n; }
d[5] = s;
`

func TestFacadeInterpret(t *testing.T) {
	comp, err := CompileC(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Interpret(comp.Blocks, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// s: 1→2→4→8→16→32; 32 > 12 → 32−12 = 20. d = {1, 3, 6, 11, 20}.
	// Arrays base at 0x1000 (n? order of decl: d is the only array → r1,
	// base 0x1000).
	want := []int64{1, 3, 6, 11, 20}
	for i, w := range want {
		if got := st.Mem[0x1000+int64(i*4)]; got != w {
			t.Fatalf("d[%d] = %d, want %d", i, got, w)
		}
	}
	if st.Mem[0x1000+5*4] != 20 {
		t.Fatalf("d[5] = %d, want 20", st.Mem[0x1000+5*4])
	}
}

func TestFacadeScheduleInterpretRoundTrip(t *testing.T) {
	comp, err := CompileC(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Interpret(comp.Blocks, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seqs [][]Instr
	for _, b := range comp.Blocks {
		seqs = append(seqs, b.Instrs)
	}
	g := BuildTraceGraph(seqs)
	res, err := ScheduleTrace(g, SingleUnit(4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := EmitTrace(comp.Blocks, res.BlockOrders)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseAsm(out)
	if err != nil {
		t.Fatalf("emitted assembly does not parse: %v\n%s", err, out)
	}
	after, err := Interpret(reparsed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for addr, v := range before.Mem {
		if after.Mem[addr] != v {
			t.Fatalf("mem[%d]: %d vs %d after scheduling", addr, v, after.Mem[addr])
		}
	}
}

func TestFacadeBuildCFGAndHotTrace(t *testing.T) {
	comp, err := CompileC(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildCFG(comp)
	if err != nil {
		t.Fatal(err)
	}
	instrs, blocks := g.HotTrace()
	if len(blocks) == 0 || len(instrs) == 0 {
		t.Fatal("empty hot trace")
	}
	// The loop body must be on the hot trace.
	w := g.Weights()
	hottest := 0
	for i := range w {
		if w[i] > w[hottest] {
			hottest = i
		}
	}
	found := false
	for _, b := range blocks {
		if b == hottest {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot trace %v misses the heaviest block %d", blocks, hottest)
	}
}

func TestFacadeRenameProgramSafe(t *testing.T) {
	comp, err := CompileC(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Interpret(comp.Blocks, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	renamed := RenameProgram(comp.Blocks)
	after, err := Interpret(renamed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for addr, v := range before.Mem {
		if after.Mem[addr] != v {
			t.Fatalf("mem[%d]: %d vs %d after renaming", addr, v, after.Mem[addr])
		}
	}
}

func TestFacadeUnrollLoop(t *testing.T) {
	comp, err := CompileC(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Loops) != 1 {
		t.Fatalf("loops = %d", len(comp.Loops))
	}
	body := comp.Body(comp.Loops[0])
	g := BuildLoopGraph(body)
	m := SingleUnit(8)
	base, err := ScheduleLoop(g, m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := UnrollLoop(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.PerIteration() > float64(base.II)+1e-9 {
		t.Fatalf("unrolled per-iteration %.2f worse than base II %d", u.PerIteration(), base.II)
	}
}

func TestFacadeEmitLoop(t *testing.T) {
	blocks, err := ParseAsm("L:\n\tli r1, 1\n\tli r2, 2\n\tbt cr0, L\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := EmitLoop(blocks[0], []NodeID{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "L:") || strings.Index(out, "li r2, 2") > strings.Index(out, "li r1, 1") {
		t.Fatalf("emission wrong:\n%s", out)
	}
}

package obs

import (
	"encoding/json"
	"sync"
)

// Recorder is the standard Tracer: it collects events in memory and derives
// the metrics registry, the Chrome trace export, and the text timeline from
// the recorded stream. Safe for concurrent use.
//
// Retention: NewRecorder retains every event forever — right for bounded
// runs (one schedule, one simulation), wrong for long-running processes.
// NewRecorderCap(n) bounds memory with a ring buffer of the most recent n
// events; when the ring is full the oldest event is folded into an
// incremental aggregate before being dropped, so Stats() stays exact over
// the entire stream no matter how small the cap. Only the renderers that
// need the raw events — Events, ChromeTrace, Timeline — are limited to the
// retained window; Dropped reports how many events have been evicted.
type Recorder struct {
	mu     sync.Mutex
	events []Event // unbounded slice (cap == 0) or ring buffer (cap > 0)
	cap    int     // 0 = unbounded
	head   int     // ring: index of the oldest retained event
	n      int     // ring: number of retained events
	drops  uint64  // events evicted into agg
	agg    *statsAgg
	meta   map[string]string // extra Chrome-trace otherData (e.g. build info)
}

// NewRecorder returns an empty Recorder that retains every event.
func NewRecorder() *Recorder { return &Recorder{agg: newStatsAgg()} }

// NewRecorderCap returns a Recorder retaining at most n events (n ≥ 1) in a
// preallocated ring buffer. Stats() remains exact across evictions; Events,
// ChromeTrace, and Timeline see only the retained suffix of the stream.
func NewRecorderCap(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{events: make([]Event, n), cap: n, agg: newStatsAgg()}
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if r.cap == 0 {
		r.events = append(r.events, e)
		r.mu.Unlock()
		return
	}
	if r.n == r.cap {
		// Fold the oldest event into the aggregate, then overwrite it.
		r.agg.add(r.events[r.head])
		r.drops++
		r.events[r.head] = e
		r.head++
		if r.head == r.cap {
			r.head = 0
		}
		r.mu.Unlock()
		return
	}
	i := r.head + r.n
	if i >= r.cap {
		i -= r.cap
	}
	r.events[i] = e
	r.n++
	r.mu.Unlock()
}

// Reset discards all recorded events and the eviction aggregate.
func (r *Recorder) Reset() {
	r.mu.Lock()
	if r.cap == 0 {
		r.events = r.events[:0]
	} else {
		r.head, r.n = 0, 0
	}
	r.drops = 0
	r.agg = newStatsAgg()
	r.mu.Unlock()
}

// Events returns a copy of the retained event stream in emission order (the
// full stream for NewRecorder; the most recent ≤ cap events for
// NewRecorderCap).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap == 0 {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= r.cap {
			j -= r.cap
		}
		out = append(out, r.events[j])
	}
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap == 0 {
		return len(r.events)
	}
	return r.n
}

// Dropped returns the number of events evicted from a capped recorder (0
// for an unbounded one). Evicted events are still counted in Stats.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// SetMeta attaches one key/value pair to the Chrome trace export's
// otherData section (e.g. the binary's build identity). Metadata survives
// Reset.
func (r *Recorder) SetMeta(key, value string) {
	r.mu.Lock()
	if r.meta == nil {
		r.meta = map[string]string{}
	}
	r.meta[key] = value
	r.mu.Unlock()
}

// metaCopy returns a snapshot of the attached metadata (nil when empty).
func (r *Recorder) metaCopy() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.meta) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		out[k] = v
	}
	return out
}

// Stats is the metrics registry snapshot: counters and histograms derived
// from one recorded event stream. All fields marshal to stable JSON names —
// cmd/aisched -stats prints exactly this structure.
type Stats struct {
	// Completion is the completion cycle reported by the last simulator run
	// (0 when no simulation was recorded).
	Completion int `json:"completion_cycles"`
	// Issues counts dynamic issue events, including re-issues after
	// rollback.
	Issues int `json:"issues"`
	// Instructions counts distinct dynamic instructions issued (stream
	// positions); Issues − Instructions is the re-issue count.
	Instructions int `json:"instructions"`
	// Reissues counts issue events for a stream position that had already
	// issued before (squashed by a rollback and issued again).
	Reissues int `json:"reissues"`
	// StallCycles is the number of issue-phase cycles in which nothing
	// issued. It always equals the sum over StallByReason.
	StallCycles int `json:"stall_cycles"`
	// StallByReason breaks StallCycles down by attributed reason.
	StallByReason map[string]int `json:"stall_by_reason"`
	// WindowOccupancy[i] is the number of cycles the window held exactly i
	// not-yet-issued instructions (length: max observed occupancy + 1).
	WindowOccupancy []int `json:"window_occupancy_cycles"`
	// SameBlockFills / CrossBlockFills count issues that overtook the window
	// head (filled an idle slot the head left behind) from the same block
	// and iteration vs. across a block or iteration boundary. Cross-block
	// fills are the paper's headline anticipatory effect.
	SameBlockFills  int `json:"idle_fills_same_block"`
	CrossBlockFills int `json:"idle_fills_cross_block"`
	// Rollbacks counts injected branch mispredictions; Squashed the total
	// instructions rolled back.
	Rollbacks int `json:"rollbacks"`
	Squashed  int `json:"squashed"`
	// Scheduler-pass counters.
	DeadlineTightenings int `json:"deadline_tightenings"`
	SlotMoves           int `json:"slot_moves"`
	SlotsEliminated     int `json:"slots_eliminated"`
	MergeLoosenings     int `json:"merge_loosenings"`
	Merges              int `json:"merges"`
	Chops               int `json:"chops"`
	CommittedPrefix     int `json:"committed_prefix_total"`
	MaxCarriedSuffix    int `json:"max_carried_suffix"`
	IICandidates        int `json:"ii_candidates"`
	BestII              int `json:"best_ii"`
	// Schedule-cache counters (internal/memo): lookups that returned a
	// memoized schedule, lookups that computed one, LRU evictions, and
	// concurrent lookups coalesced onto an in-flight computation.
	CacheHits      int `json:"cache_hits"`
	CacheMisses    int `json:"cache_misses"`
	CacheEvictions int `json:"cache_evictions"`
	CacheCoalesced int `json:"cache_coalesced"`
	// Robustness counters: requests abandoned by context cancellation,
	// budget-exhausted requests served by the baseline fallback, and faults
	// injected by internal/faultinject (tests only).
	Cancellations  int `json:"cancellations"`
	Degradations   int `json:"degradations"`
	FaultsInjected int `json:"faults_injected"`
	// Passes counts KindPassStart events per pass name.
	Passes map[string]int `json:"passes"`
}

// JSON renders the snapshot as indented JSON.
func (s Stats) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Stats derives the metrics snapshot from the full recorded stream —
// including, for a capped recorder, every event already evicted from the
// ring: eviction folds events into the same aggregation this method runs,
// so the result is identical to an unbounded recorder's.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.agg.clone()
	if r.cap == 0 {
		for i := range r.events {
			a.add(r.events[i])
		}
	} else {
		for i := 0; i < r.n; i++ {
			j := r.head + i
			if j >= r.cap {
				j -= r.cap
			}
			a.add(r.events[j])
		}
	}
	return a.finalize()
}

// statsAgg is the incremental form of the Stats derivation: events are
// added one at a time in emission order, and finalize() completes the
// pieces that depend on "the end of the stream" (the currently-open window
// occupancy segment). add is order-sensitive exactly where the event stream
// is (window segments integrate up to the next segment), so folding a
// prefix at eviction time and the retained suffix at snapshot time yields
// the same result as folding everything at once.
type statsAgg struct {
	s         Stats
	issuedPos map[int]bool
	// Window-occupancy integration state: the last KindWindow event opens a
	// segment that runs until the next KindWindow event, or — for the final
	// segment — to the last issue-phase cycle observed anywhere.
	lastCycle  int
	segCycle   int
	segOcc     int
	haveSeg    bool
	haveBestII bool
}

func newStatsAgg() *statsAgg {
	return &statsAgg{
		s:         Stats{StallByReason: map[string]int{}, Passes: map[string]int{}},
		issuedPos: map[int]bool{},
	}
}

// clone deep-copies the aggregate so a snapshot can extend it without
// disturbing the recorder's state.
func (a *statsAgg) clone() *statsAgg {
	c := *a
	c.s.StallByReason = make(map[string]int, len(a.s.StallByReason))
	for k, v := range a.s.StallByReason {
		c.s.StallByReason[k] = v
	}
	c.s.Passes = make(map[string]int, len(a.s.Passes))
	for k, v := range a.s.Passes {
		c.s.Passes[k] = v
	}
	c.issuedPos = make(map[int]bool, len(a.issuedPos))
	for k, v := range a.issuedPos {
		c.issuedPos[k] = v
	}
	c.s.WindowOccupancy = append([]int(nil), a.s.WindowOccupancy...)
	return &c
}

// addOccupancy integrates one closed window segment [from, to) at occupancy
// occ.
func (a *statsAgg) addOccupancy(occ, from, to int) {
	if to <= from {
		return
	}
	for len(a.s.WindowOccupancy) <= occ {
		a.s.WindowOccupancy = append(a.s.WindowOccupancy, 0)
	}
	a.s.WindowOccupancy[occ] += to - from
}

// add folds one event into the aggregate.
func (a *statsAgg) add(e Event) {
	if (e.Kind == KindIssue || e.Kind == KindStall || e.Kind == KindWindow) && e.Cycle > a.lastCycle {
		a.lastCycle = e.Cycle
	}
	switch e.Kind {
	case KindPassStart:
		a.s.Passes[e.Pass]++
	case KindPassEnd:
		if e.Pass == PassSimulate {
			a.s.Completion = e.N
		}
	case KindIssue:
		a.s.Issues++
		if a.issuedPos[e.Pos] {
			a.s.Reissues++
		} else {
			a.issuedPos[e.Pos] = true
			a.s.Instructions++
		}
		if e.Fill {
			if e.Cross {
				a.s.CrossBlockFills++
			} else {
				a.s.SameBlockFills++
			}
		}
	case KindStall:
		a.s.StallCycles++
		a.s.StallByReason[e.Reason.String()]++
	case KindRollback:
		a.s.Rollbacks++
		a.s.Squashed += e.N
	case KindWindow:
		if a.haveSeg {
			a.addOccupancy(a.segOcc, a.segCycle, e.Cycle)
		}
		a.segCycle, a.segOcc, a.haveSeg = e.Cycle, e.N, true
	case KindDeadlineTighten:
		a.s.DeadlineTightenings++
	case KindSlotMove:
		a.s.SlotMoves++
		if e.To < 0 {
			a.s.SlotsEliminated++
		}
	case KindMergeLoosen:
		a.s.MergeLoosenings++
	case KindMerge:
		a.s.Merges++
	case KindChop:
		a.s.Chops++
		a.s.CommittedPrefix += e.From
		if e.To > a.s.MaxCarriedSuffix {
			a.s.MaxCarriedSuffix = e.To
		}
	case KindIICandidate:
		a.s.IICandidates++
		if !a.haveBestII || e.N < a.s.BestII {
			a.s.BestII = e.N
			a.haveBestII = true
		}
	case KindCacheHit:
		a.s.CacheHits++
	case KindCacheMiss:
		a.s.CacheMisses++
	case KindCacheEvict:
		a.s.CacheEvictions++
	case KindCacheCoalesce:
		a.s.CacheCoalesced++
	case KindCancel:
		a.s.Cancellations++
	case KindDegrade:
		a.s.Degradations++
	case KindFault:
		a.s.FaultsInjected++
	}
}

// finalize closes the open window segment against the last observed
// issue-phase cycle and returns the snapshot. The receiver must be a
// throwaway clone: finalize consumes the open segment.
func (a *statsAgg) finalize() Stats {
	if a.haveSeg {
		a.addOccupancy(a.segOcc, a.segCycle, a.lastCycle+1)
		a.haveSeg = false
	}
	return a.s
}

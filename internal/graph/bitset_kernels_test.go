package graph

import (
	"math/rand"
	"testing"
)

// naive reference versions of the window kernels.
func naiveNextSet(b Bitset, from int) int {
	for i := max(from, 0); i < len(b)*64; i++ {
		if b.Has(i) {
			return i
		}
	}
	return -1
}

func naiveNextClear(b Bitset, from int) int {
	for i := max(from, 0); ; i++ {
		if i >= len(b)*64 || !b.Has(i) {
			return i
		}
	}
}

func naiveCountRange(b Bitset, lo, hi int) int {
	n := 0
	for i := max(lo, 0); i < hi && i < len(b)*64; i++ {
		if b.Has(i) {
			n++
		}
	}
	return n
}

func TestBitsetKernelsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(200)
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if r.Float64() < 0.3 {
				b.Set(i)
			}
		}
		for probe := 0; probe < 20; probe++ {
			from := r.Intn(n + 10)
			if got, want := b.NextSet(from), naiveNextSet(b, from); got != want {
				t.Fatalf("NextSet(%d) = %d, want %d (n=%d)", from, got, want, n)
			}
			if got, want := b.NextClear(from), naiveNextClear(b, from); got != want {
				t.Fatalf("NextClear(%d) = %d, want %d (n=%d)", from, got, want, n)
			}
			lo, hi := r.Intn(n+5), r.Intn(n+5)
			if got, want := b.CountRange(lo, hi), naiveCountRange(b, lo, hi); got != want {
				t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
		// SetRange / ZeroRange against per-bit loops.
		lo, hi := r.Intn(n), r.Intn(n+1)
		c := b.Clone()
		c.SetRange(lo, hi)
		d := b.Clone()
		for i := lo; i < hi; i++ {
			d.Set(i)
		}
		for i := 0; i < n; i++ {
			if c.Has(i) != d.Has(i) {
				t.Fatalf("SetRange(%d,%d) differs at bit %d", lo, hi, i)
			}
		}
		c.ZeroRange(lo, hi)
		for i := lo; i < hi; i++ {
			d.Clear(i)
		}
		for i := 0; i < n; i++ {
			if c.Has(i) != d.Has(i) {
				t.Fatalf("ZeroRange(%d,%d) differs at bit %d", lo, hi, i)
			}
		}
	}
}

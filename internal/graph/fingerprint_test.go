package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randSpec is a reproducible random graph description the tests can rebuild
// with cosmetic variations (labels, edge insertion order, capacity) that
// must not change the fingerprint.
type randSpec struct {
	n     int
	exec  []int
	class []int
	block []int
	edges []Edge
}

func newRandSpec(r *rand.Rand) randSpec {
	n := 2 + r.Intn(14)
	sp := randSpec{n: n}
	for v := 0; v < n; v++ {
		sp.exec = append(sp.exec, 1+r.Intn(3))
		sp.class = append(sp.class, r.Intn(2))
		sp.block = append(sp.block, r.Intn(3))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				sp.edges = append(sp.edges, Edge{Src: NodeID(i), Dst: NodeID(j), Latency: r.Intn(4), Distance: 0})
			}
		}
	}
	// A couple of loop-carried edges so Distance participates. Keep
	// (src, dst, distance) triples unique so every perturbation below
	// genuinely changes the graph (AddEdge collapses parallel edges).
	seen := map[[3]int]bool{}
	for k := 0; k < 2 && n > 2; k++ {
		e := Edge{Src: NodeID(r.Intn(n)), Dst: NodeID(r.Intn(n)), Latency: r.Intn(4), Distance: 1 + r.Intn(2)}
		key := [3]int{int(e.Src), int(e.Dst), e.Distance}
		if seen[key] {
			continue
		}
		seen[key] = true
		sp.edges = append(sp.edges, e)
	}
	return sp
}

// build materializes the spec. label controls the cosmetic node labels;
// edgePerm, when non-nil, is the order in which edges are inserted; cap is
// the construction capacity hint.
func (sp randSpec) build(label string, edgePerm []int, capacity int) *Graph {
	g := New(capacity)
	for v := 0; v < sp.n; v++ {
		g.AddNode(fmt.Sprintf("%s%d", label, v), sp.exec[v], sp.class[v], sp.block[v])
	}
	order := edgePerm
	if order == nil {
		order = make([]int, len(sp.edges))
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		e := sp.edges[i]
		g.MustEdge(e.Src, e.Dst, e.Latency, e.Distance)
	}
	return g
}

var fpUnits = []int{1, 1}

const fpWindow = 4

// TestFingerprintRelabelledGraphsCollide is the soundness half of the memo
// key: the same instance rebuilt with different labels, a shuffled edge
// insertion order, and a different capacity hint — an isomorphic,
// relabelled construction of the same program — must produce the same
// fingerprint.
func TestFingerprintRelabelledGraphsCollide(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		sp := newRandSpec(r)
		a := sp.build("a", nil, sp.n)
		perm := r.Perm(len(sp.edges))
		b := sp.build("completely-different-label", perm, 4*sp.n+7)
		fa := a.Fingerprint(fpUnits, fpWindow)
		fb := b.Fingerprint(fpUnits, fpWindow)
		if fa != fb {
			t.Fatalf("seed %d: relabelled/reordered rebuild changed the fingerprint", seed)
		}
		// Determinism across repeated calls on the same graph.
		if fa != a.Fingerprint(fpUnits, fpWindow) {
			t.Fatalf("seed %d: fingerprint not deterministic", seed)
		}
	}
}

// TestFingerprintPerturbationsChangeIt is the completeness half: any single
// perturbation of the instance — one latency, one edge added or removed, one
// node attribute, the window, the unit counts — must change the fingerprint.
func TestFingerprintPerturbationsChangeIt(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		sp := newRandSpec(r)
		base := sp.build("n", nil, sp.n).Fingerprint(fpUnits, fpWindow)
		differ := func(what string, g *Graph, units []int, w int) {
			if g.Fingerprint(units, w) == base {
				t.Fatalf("seed %d: %s did not change the fingerprint", seed, what)
			}
		}

		if len(sp.edges) > 0 {
			i := r.Intn(len(sp.edges))
			bump := sp
			bump.edges = append([]Edge(nil), sp.edges...)
			bump.edges[i].Latency++
			differ("latency+1", bump.build("n", nil, sp.n), fpUnits, fpWindow)

			drop := sp
			drop.edges = append(append([]Edge(nil), sp.edges[:i]...), sp.edges[i+1:]...)
			differ("edge removal", drop.build("n", nil, sp.n), fpUnits, fpWindow)
		}

		// Added edge between an unconnected forward pair, if one exists.
		add := sp
		add.edges = append([]Edge(nil), sp.edges...)
	search:
		for i := 0; i < sp.n; i++ {
			for j := i + 1; j < sp.n; j++ {
				found := false
				for _, e := range sp.edges {
					if e.Src == NodeID(i) && e.Dst == NodeID(j) && e.Distance == 0 {
						found = true
						break
					}
				}
				if !found {
					add.edges = append(add.edges, Edge{Src: NodeID(i), Dst: NodeID(j), Latency: 1})
					differ("edge addition", add.build("n", nil, sp.n), fpUnits, fpWindow)
					break search
				}
			}
		}

		v := r.Intn(sp.n)
		exec := sp
		exec.exec = append([]int(nil), sp.exec...)
		exec.exec[v]++
		differ("exec+1", exec.build("n", nil, sp.n), fpUnits, fpWindow)

		class := sp
		class.class = append([]int(nil), sp.class...)
		class.class[v] = 1 - class.class[v]
		differ("class flip", class.build("n", nil, sp.n), fpUnits, fpWindow)

		block := sp
		block.block = append([]int(nil), sp.block...)
		block.block[v]++
		differ("block+1", block.build("n", nil, sp.n), fpUnits, fpWindow)

		same := sp.build("n", nil, sp.n)
		differ("window+1", same, fpUnits, fpWindow+1)
		differ("extra unit", same, []int{2, 1}, fpWindow)
		differ("extra class", same, []int{1, 1, 1}, fpWindow)
	}
}

// TestFingerprintPermutationIsSound pins the deliberate non-collision: a
// graph rebuilt under a nontrivial node-ID permutation is a *different*
// scheduling instance (program order is the schedulers' tie-break), so its
// fingerprint must differ. If this test ever fails, the memo layer would
// start sharing cached schedules between instances whose uncached results
// can legitimately differ, breaking the bit-identical guarantee.
func TestFingerprintPermutationIsSound(t *testing.T) {
	g := New(3)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	c := g.AddUnit("c")
	g.MustEdge(a, b, 1, 0)
	g.MustEdge(a, c, 0, 0)

	// Same shape, but the two independent successors swap IDs: a different
	// program order over structurally symmetric nodes.
	h := New(3)
	ha := h.AddUnit("a")
	hc := h.AddUnit("c")
	hb := h.AddUnit("b")
	h.MustEdge(ha, hb, 1, 0)
	h.MustEdge(ha, hc, 0, 0)
	_ = hc

	if g.Fingerprint(fpUnits, fpWindow) == h.Fingerprint(fpUnits, fpWindow) {
		t.Fatal("ID-permuted instances must not collide: program order is semantic")
	}
}

// TestFingerprintCyclicFallback: a loop-independent cycle (rejected by the
// schedulers, but representable) still fingerprints deterministically and
// distinctly.
func TestFingerprintCyclicFallback(t *testing.T) {
	g := New(2)
	a := g.AddUnit("a")
	b := g.AddUnit("b")
	g.MustEdge(a, b, 0, 0)
	g.MustEdge(b, a, 0, 0)
	f1 := g.Fingerprint(fpUnits, fpWindow)
	if f1 != g.Fingerprint(fpUnits, fpWindow) {
		t.Fatal("cyclic fingerprint not deterministic")
	}
	h := New(2)
	ha := h.AddUnit("a")
	hb := h.AddUnit("b")
	h.MustEdge(ha, hb, 0, 0)
	if f1 == h.Fingerprint(fpUnits, fpWindow) {
		t.Fatal("cyclic and acyclic instances collide")
	}
}

// Package isa defines the RISC-like target instruction set used by the
// compiler pipeline and the worked examples — modeled on the RS/6000-style
// instructions of the paper's Figure 3 (L4AU, ST4U, C4, M, BT): loads and
// stores with optional base-register update, fixed-point ALU operations,
// multiply/divide on a separate unit class, compares into condition
// registers, and conditional branches.
//
// The latency model follows the paper's conventions: an instruction's
// latency is the number of cycles that must elapse between its completion
// and a dependent instruction's start (0 for simple ALU results forwarded
// immediately, 1 for loads and compares, 4 for multiply — "these latencies
// do not correspond to any specific implementation").
package isa

import (
	"fmt"
	"strings"

	"aisched/internal/machine"
)

// Opcode enumerates the instruction set.
type Opcode int

// The instruction set. LOADU/STOREU are the "with update" forms (L4AU/ST4U
// in the paper) that also write the base register.
const (
	NOP    Opcode = iota
	LI            // li rd, imm
	MOV           // mov rd, ra
	ADD           // add rd, ra, rb
	SUB           // sub rd, ra, rb
	AND           // and rd, ra, rb
	OR            // or rd, ra, rb
	XOR           // xor rd, ra, rb
	SHL           // shl rd, ra, rb
	SHR           // shr rd, ra, rb
	ADDI          // addi rd, ra, imm
	SUBI          // subi rd, ra, imm
	MUL           // mul rd, ra, rb (float/multiply unit)
	DIV           // div rd, ra, rb (float/multiply unit, multi-cycle)
	LOAD          // load rd, off(rb)
	LOADU         // loadu rd, off(rb) — also rb += off
	STORE         // store rs, off(rb)
	STOREU        // storeu rs, off(rb) — also rb += off
	CMP           // cmp crd, ra, rb
	CMPI          // cmpi crd, ra, imm
	BT            // bt cr, target — branch if true
	BF            // bf cr, target — branch if false
	B             // b target — unconditional
	numOpcodes
)

var opNames = [...]string{
	NOP: "nop", LI: "li", MOV: "mov", ADD: "add", SUB: "sub", AND: "and",
	OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", ADDI: "addi", SUBI: "subi",
	MUL: "mul", DIV: "div", LOAD: "load", LOADU: "loadu", STORE: "store",
	STOREU: "storeu", CMP: "cmp", CMPI: "cmpi", BT: "bt", BF: "bf", B: "b",
}

func (o Opcode) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Reg identifies a register: general registers r0..r31 and condition
// registers cr0..cr7.
type Reg int

// NumGPR and NumCR size the register files.
const (
	NumGPR = 32
	NumCR  = 8
	// NoReg marks an absent register operand.
	NoReg Reg = -1
)

// GPR returns the i-th general register.
func GPR(i int) Reg { return Reg(i) }

// CR returns the i-th condition register.
func CR(i int) Reg { return Reg(NumGPR + i) }

// IsCR reports whether r is a condition register.
func (r Reg) IsCR() bool { return r >= NumGPR && r < NumGPR+NumCR }

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r >= 0 && r < NumGPR+NumCR }

func (r Reg) String() string {
	switch {
	case !r.Valid():
		return "r?"
	case r.IsCR():
		return fmt.Sprintf("cr%d", int(r)-NumGPR)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// CondCode selects the comparison a CMP/CMPI evaluates into its condition
// register.
type CondCode int

// Condition codes. The zero value NE ("result is nonzero") matches the
// common `cmpi crX, r, 0` idiom of the paper's Figure 3.
const (
	NE CondCode = iota // a != b
	EQ                 // a == b
	LT                 // a < b
	LE                 // a <= b
	GT                 // a > b
	GE                 // a >= b
)

var condNames = [...]string{NE: "ne", EQ: "eq", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

func (c CondCode) String() string {
	if c >= 0 && int(c) < len(condNames) {
		return condNames[c]
	}
	return "cc?"
}

// Eval applies the condition to two values.
func (c CondCode) Eval(a, b int64) bool {
	switch c {
	case EQ:
		return a == b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		return a != b
	}
}

// Instr is one machine instruction.
type Instr struct {
	Op Opcode
	// Dst is the primary destination (NoReg when none).
	Dst Reg
	// SrcA, SrcB are register sources (NoReg when unused).
	SrcA, SrcB Reg
	// Imm is the immediate / memory offset.
	Imm int64
	// Base is the memory base register for LOAD*/STORE*.
	Base Reg
	// Target is the branch target label.
	Target string
	// Cond is the comparison evaluated by CMP/CMPI (NE by default).
	Cond CondCode
	// Comment is carried verbatim into the printed assembly.
	Comment string
}

// Defs returns the registers written by the instruction.
func (in Instr) Defs() []Reg {
	var out []Reg
	switch in.Op {
	case LI, MOV, ADD, SUB, AND, OR, XOR, SHL, SHR, ADDI, SUBI, MUL, DIV, LOAD, LOADU:
		out = append(out, in.Dst)
	case CMP, CMPI:
		out = append(out, in.Dst)
	}
	if in.Op == LOADU || in.Op == STOREU {
		out = append(out, in.Base)
	}
	return out
}

// Uses returns the registers read by the instruction.
func (in Instr) Uses() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r.Valid() {
			out = append(out, r)
		}
	}
	switch in.Op {
	case MOV, ADDI, SUBI, CMPI:
		add(in.SrcA)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, CMP:
		add(in.SrcA)
		add(in.SrcB)
	case LOAD, LOADU:
		add(in.Base)
	case STORE, STOREU:
		add(in.SrcA)
		add(in.Base)
	case BT, BF:
		add(in.SrcA) // condition register
	}
	return out
}

// ReadsMem reports whether the instruction loads from memory.
func (in Instr) ReadsMem() bool { return in.Op == LOAD || in.Op == LOADU }

// WritesMem reports whether the instruction stores to memory.
func (in Instr) WritesMem() bool { return in.Op == STORE || in.Op == STOREU }

// IsBranch reports whether the instruction transfers control.
func (in Instr) IsBranch() bool { return in.Op == BT || in.Op == BF || in.Op == B }

// Latency returns the result latency in cycles (extra cycles between this
// instruction's completion and a dependent start).
func (in Instr) Latency() int {
	switch in.Op {
	case LOAD, LOADU, CMP, CMPI:
		return 1
	case MUL:
		return 4
	case DIV:
		return 6
	default:
		return 0
	}
}

// Exec returns the execution time in cycles (functional-unit occupancy).
func (in Instr) Exec() int {
	if in.Op == DIV {
		return 4
	}
	return 1
}

// Class returns the functional-unit class.
func (in Instr) Class() machine.UnitClass {
	switch in.Op {
	case MUL, DIV:
		return machine.ClassFloat
	case BT, BF, B:
		return machine.ClassBranch
	default:
		return machine.ClassFixed
	}
}

// Mnemonic renders the instruction as one line of assembly (no label).
func (in Instr) Mnemonic() string {
	var s string
	switch in.Op {
	case NOP:
		s = "nop"
	case LI:
		s = fmt.Sprintf("li %s, %d", in.Dst, in.Imm)
	case MOV:
		s = fmt.Sprintf("mov %s, %s", in.Dst, in.SrcA)
	case ADDI, SUBI:
		s = fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.SrcA, in.Imm)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV:
		s = fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.SrcA, in.SrcB)
	case LOAD, LOADU:
		s = fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.Base)
	case STORE, STOREU:
		s = fmt.Sprintf("%s %s, %d(%s)", in.Op, in.SrcA, in.Imm, in.Base)
	case CMP:
		s = fmt.Sprintf("cmp%s %s, %s, %s", condSuffix(in.Cond), in.Dst, in.SrcA, in.SrcB)
	case CMPI:
		s = fmt.Sprintf("cmpi%s %s, %s, %d", condSuffix(in.Cond), in.Dst, in.SrcA, in.Imm)
	case BT, BF:
		s = fmt.Sprintf("%s %s, %s", in.Op, in.SrcA, in.Target)
	case B:
		s = fmt.Sprintf("b %s", in.Target)
	default:
		s = in.Op.String()
	}
	if in.Comment != "" {
		s += " ; " + in.Comment
	}
	return s
}

func (in Instr) String() string { return in.Mnemonic() }

// Validate checks operand sanity for the opcode.
func (in Instr) Validate() error {
	check := func(r Reg, what string, wantCR bool) error {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: invalid %s register", in.Op, what)
		}
		if r.IsCR() != wantCR {
			return fmt.Errorf("isa: %s: %s register %s has wrong file", in.Op, what, r)
		}
		return nil
	}
	switch in.Op {
	case NOP, B:
		return nil
	case LI:
		return check(in.Dst, "dst", false)
	case MOV, ADDI, SUBI:
		if err := check(in.Dst, "dst", false); err != nil {
			return err
		}
		return check(in.SrcA, "src", false)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV:
		if err := check(in.Dst, "dst", false); err != nil {
			return err
		}
		if err := check(in.SrcA, "srcA", false); err != nil {
			return err
		}
		return check(in.SrcB, "srcB", false)
	case LOAD, LOADU:
		if err := check(in.Dst, "dst", false); err != nil {
			return err
		}
		return check(in.Base, "base", false)
	case STORE, STOREU:
		if err := check(in.SrcA, "src", false); err != nil {
			return err
		}
		return check(in.Base, "base", false)
	case CMP:
		if err := check(in.Dst, "cr", true); err != nil {
			return err
		}
		if err := check(in.SrcA, "srcA", false); err != nil {
			return err
		}
		return check(in.SrcB, "srcB", false)
	case CMPI:
		if err := check(in.Dst, "cr", true); err != nil {
			return err
		}
		return check(in.SrcA, "src", false)
	case BT, BF:
		if in.Target == "" {
			return fmt.Errorf("isa: %s without target", in.Op)
		}
		return check(in.SrcA, "cr", true)
	}
	return fmt.Errorf("isa: unknown opcode %d", in.Op)
}

// Format renders a sequence of instructions as assembly text.
func Format(instrs []Instr) string {
	var b strings.Builder
	for _, in := range instrs {
		b.WriteString("\t")
		b.WriteString(in.Mnemonic())
		b.WriteString("\n")
	}
	return b.String()
}

// condSuffix renders the condition code for the assembly form: empty for
// the default NE, ".cc" otherwise (e.g. "cmp.lt cr0, r1, r2").
func condSuffix(c CondCode) string {
	if c == NE {
		return ""
	}
	return "." + c.String()
}

package experiments

import (
	"fmt"
	"math/rand"

	"aisched/internal/baseline"
	"aisched/internal/core"
	"aisched/internal/deps"
	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/isa"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/regren"
	"aisched/internal/tables"
	"aisched/internal/workload"
)

// T7 measures how much of the global-scheduling headroom anticipatory
// scheduling recovers without moving instructions across block boundaries —
// the paper's central value proposition ("delivers many of the benefits of
// global instruction scheduling ... without compromising safety").
//
// For each instance we measure, on the window simulator:
//
//	local  — per-block Rank scheduling (the best safe local scheduler);
//	antic  — Algorithm Lookahead;
//	global — the unsafe whole-trace schedule's greedy makespan (the target
//	         line: what unrestricted cross-block motion could reach).
//
// recovered = (local − antic) / (local − global), reported per window size
// over the instances where global actually beats local.
func T7(seed int64, instances int) (*Result, error) {
	windows := []int{2, 4, 8, 16}
	t := tables.New(
		fmt.Sprintf("T7: share of the global-scheduling gap recovered safely (%d instances)", instances),
		"window", "local (mean)", "anticipatory (mean)", "global target (mean)", "gap recovered")
	res := &Result{ID: "T7", Table: t, Passed: true}

	for _, w := range windows {
		m := machine.SingleUnit(w)
		var sumL, sumA, sumG, recovered, weight float64
		for i := 0; i < instances; i++ {
			r := rand.New(rand.NewSource(seed + int64(i)))
			g, err := workload.Trace(r, workload.DefaultTrace())
			if err != nil {
				return nil, err
			}
			lOrder, err := baseline.ScheduleTrace(baseline.RankLocal{}, g, m)
			if err != nil {
				return nil, err
			}
			lSim, err := hw.SimulateTrace(g, m, lOrder)
			if err != nil {
				return nil, err
			}
			la, err := core.Lookahead(g, m)
			if err != nil {
				return nil, err
			}
			aSim, err := hw.SimulateTrace(g, m, la.StaticOrder())
			if err != nil {
				return nil, err
			}
			gMk, err := baseline.GlobalMakespan(g, m)
			if err != nil {
				return nil, err
			}
			sumL += float64(lSim.Completion)
			sumA += float64(aSim.Completion)
			sumG += float64(gMk)
			if gap := lSim.Completion - gMk; gap > 0 {
				rec := float64(lSim.Completion-aSim.Completion) / float64(gap)
				if rec > 1 {
					rec = 1 // anticipatory may even beat the unwindowed target's greedy
				}
				recovered += rec
				weight++
			}
		}
		n := float64(instances)
		frac := 0.0
		if weight > 0 {
			frac = recovered / weight
		}
		t.Add(fmt.Sprintf("W=%d", w), sumL/n, sumA/n, sumG/n, frac)
		if sumA > sumL {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf("anticipatory worse than local at W=%d", w))
		}
	}
	res.Notes = append(res.Notes,
		"'gap recovered' averages (local−antic)/(local−global) over instances where global beats local")
	return res, nil
}

// T3b evaluates the §5.1 algorithm — anticipatory scheduling of loops whose
// body is a trace of several basic blocks (the last block scheduled with a
// clone of the first block as successor context) — against per-block local
// scheduling and source order, in the periodic steady-state model.
func T3b(seed int64, instances int) (*Result, error) {
	t := tables.New(
		fmt.Sprintf("T3b: multi-block loop bodies, steady-state cycles/iteration (%d instances)", instances),
		"scheduler", "periodic II (mean)", "intra makespan (mean)")
	res := &Result{ID: "T3b", Table: t, Passed: true}
	m := machine.SingleUnit(8)

	var iiA, iiL, iiS, mkA, mkL, mkS float64
	for i := 0; i < instances; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		g, err := workload.LoopTrace(r, workload.DefaultLoopTrace())
		if err != nil {
			return nil, err
		}
		st, err := loops.ScheduleLoopTrace(g, m)
		if err != nil {
			return nil, err
		}
		iiA += float64(st.II)
		mkA += float64(st.Makespan)

		lOrder, err := baseline.ScheduleTrace(baseline.RankLocal{}, g, m)
		if err != nil {
			return nil, err
		}
		lSt, err := loops.Evaluate(g, m, lOrder)
		if err != nil {
			return nil, err
		}
		iiL += float64(lSt.II)
		mkL += float64(lSt.Makespan)

		sOrder := make([]graph.NodeID, g.Len())
		for j := range sOrder {
			sOrder[j] = graph.NodeID(j)
		}
		sSt, err := loops.Evaluate(g, m, sOrder)
		if err != nil {
			return nil, err
		}
		iiS += float64(sSt.II)
		mkS += float64(sSt.Makespan)
	}
	n := float64(instances)
	t.Add("anticipatory (5.1)", iiA/n, mkA/n)
	t.Add("rank-local per block", iiL/n, mkL/n)
	t.Add("source-order", iiS/n, mkS/n)
	if iiA > iiL+n*0.15 { // allow tiny noise per instance
		res.Passed = false
		res.Notes = append(res.Notes, "trace-loop algorithm worse than local baseline")
	}
	return res, nil
}

// A1 is the register-renaming ablation: anticipatory scheduling of
// compiler-generated traces with and without the renaming pass that removes
// false (anti/output) register dependences. The §6 related-work discussion
// (Hennessy–Gross, Gibbons–Muchnick) treats register-allocator-induced
// hazards as a first-class scheduling obstacle; this measures their cost on
// this pipeline.
func A1(seed int64, instances int) (*Result, error) {
	t := tables.New(
		fmt.Sprintf("A1: register renaming ablation on compiled traces (%d instances, 2-wide, W=4)", instances),
		"pipeline", "mean completion", "mean improvement vs no-renaming")
	res := &Result{ID: "A1", Table: t, Passed: true}
	// A single-issue machine is throughput-bound (one instruction per cycle
	// regardless of ordering), so false dependences rarely cost cycles
	// there; the renaming effect shows on a multi-issue machine. Two fixed
	// point units plus the float and branch units cover the compiled code's
	// classes.
	m := machine.NewMachine("2fx+fp+br/W=4", []int{2, 1, 1}, 4)
	var sumPlain, sumRenamed float64
	for i := 0; i < instances; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		prog := workload.RandomProgram(r, 3+r.Intn(3))
		comp, err := compileForA1(prog)
		if err != nil {
			return nil, err
		}
		plain, renamed, err := a1Completions(comp, m)
		if err != nil {
			return nil, err
		}
		sumPlain += float64(plain)
		sumRenamed += float64(renamed)
	}
	n := float64(instances)
	t.Add("anticipatory, original registers", sumPlain/n, 0.0)
	t.Add("anticipatory, after renaming", sumRenamed/n, sumPlain/n-sumRenamed/n)
	if sumRenamed > sumPlain {
		res.Passed = false
		res.Notes = append(res.Notes, "renaming made schedules worse")
	}
	return res, nil
}

// A2 sweeps the unroll factor: unrolling materializes consecutive
// iterations in one block, converting the paper's run-time window overlap
// into compile-time freedom for the single-block scheduler; steady-state
// cycles per ORIGINAL iteration should be nonincreasing in the unroll
// factor (at growing code-size cost).
func A2(seed int64, instances int) (*Result, error) {
	ks := []int{1, 2, 3, 4}
	t := tables.New(
		fmt.Sprintf("A2: unroll factor sweep, steady-state cycles per original iteration (%d instances)", instances),
		"unroll k", "anticipatory (mean)", "body size")
	res := &Result{ID: "A2", Table: t, Passed: true}
	m := machine.SingleUnit(8)
	sums := make([]float64, len(ks))
	sizes := make([]float64, len(ks))
	for i := 0; i < instances; i++ {
		r := rand.New(rand.NewSource(seed + int64(i)))
		g, err := workload.Loop(r, workload.DefaultLoop())
		if err != nil {
			return nil, err
		}
		for ki, k := range ks {
			u, err := loops.UnrollAndSchedule(g, m, k)
			if err != nil {
				return nil, err
			}
			sums[ki] += u.PerIteration()
			sizes[ki] += float64(g.Len() * k)
		}
	}
	n := float64(instances)
	for ki, k := range ks {
		t.Add(fmt.Sprintf("k=%d", k), sums[ki]/n, sizes[ki]/n)
	}
	for ki := 1; ki < len(ks); ki++ {
		if sums[ki] > sums[0]+n*0.01 {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf("unroll k=%d worse than k=1", ks[ki]))
		}
	}
	return res, nil
}

// compileForA1 compiles a generated program, surfacing compiler errors with
// the offending source for diagnosis.
func compileForA1(src string) (*minic.Compiled, error) {
	comp, err := minic.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("generated program failed to compile: %w\n%s", err, src)
	}
	return comp, nil
}

// a1Completions measures the dynamic completion of a compiled program's
// trace, anticipatorily scheduled, with original registers and after
// per-block renaming.
func a1Completions(comp *minic.Compiled, m *machine.Machine) (plain, renamed int, err error) {
	blocks := comp.TraceBlocks()
	measure := func(bs [][]isa.Instr) (int, error) {
		g := deps.BuildTrace(bs)
		la, err := core.Lookahead(g, m)
		if err != nil {
			return 0, err
		}
		sim, err := hw.SimulateTrace(g, m, la.StaticOrder())
		if err != nil {
			return 0, err
		}
		return sim.Completion, nil
	}
	plain, err = measure(blocks)
	if err != nil {
		return 0, 0, err
	}
	wrapped := make([]isa.Block, len(blocks))
	for i, b := range blocks {
		wrapped[i] = isa.Block{Instrs: b}
	}
	renBlocks := regren.RenameBlocks(wrapped)
	ren := make([][]isa.Instr, len(renBlocks))
	for i, b := range renBlocks {
		ren[i] = b.Instrs
	}
	renamed, err = measure(ren)
	if err != nil {
		return 0, 0, err
	}
	return plain, renamed, nil
}

// Package sbudget implements per-request scheduling budgets: a State carries
// the request's context plus optional wall-clock and rank-pass limits, and
// the schedulers consult it at their cooperative checkpoints (every rank
// pass, every merge round, every loop candidate). A nil *State is the "no
// budget, no cancellation" case and every method on it is a cheap no-op, so
// the default path through the schedulers stays allocation- and
// checkpoint-free.
//
// Exhaustion is reported as an error wrapping ErrExhausted; the facade
// distinguishes it from real failures (and from the caller's own
// context.Canceled / DeadlineExceeded) to trigger graceful degradation to
// the baseline list schedule instead of failing the request.
package sbudget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"aisched/internal/faultinject"
	"aisched/internal/metrics"
)

// ErrExhausted is the sentinel every budget-exhaustion error wraps; test
// with errors.Is. Context cancellation is NOT exhaustion — it surfaces as
// the context's own error.
var ErrExhausted = errors.New("scheduling budget exhausted")

// Always-on exhaustion telemetry: every exhaustion increments the counter;
// requests that also carried a wall-clock deadline record how much of it
// remained when the binding limit fired (≈0 when the wall clock itself
// expired, larger when a rank-pass cap fired first — the histogram shows
// which limit binds in practice). Both live on the exhaustion path only, so
// the un-exhausted hot path pays nothing.
var (
	mExhausted = metrics.Default.NewCounter("aisched_budget_exhausted_total",
		"scheduling requests stopped by budget exhaustion (wall-clock, rank-pass, or forced)")
	mRemainingAtExhaust = metrics.Default.NewHistogram("aisched_budget_remaining_at_exhaust_ns",
		"wall-clock budget remaining when a request exhausted (only requests with a wall-clock limit)")
)

// exhaust builds the exhaustion error for reason and records it in the
// process-wide metrics. s may be nil (forced exhaustion without a state).
func (s *State) exhaust(reason string) error {
	mExhausted.Inc()
	if s != nil && !s.deadline.IsZero() {
		mRemainingAtExhaust.Observe(int64(time.Until(s.deadline)))
	}
	return &exhausted{reason: reason}
}

// exhausted wraps ErrExhausted with the specific limit that fired.
type exhausted struct{ reason string }

func (e *exhausted) Error() string { return "scheduling budget exhausted: " + e.reason }
func (e *exhausted) Is(target error) bool { return target == ErrExhausted }

// Reason extracts the human-readable exhaustion reason from an error
// returned by a budget checkpoint ("" when err does not wrap ErrExhausted).
func Reason(err error) string {
	var e *exhausted
	if errors.As(err, &e) {
		return e.reason
	}
	return ""
}

// State is one request's cancellation and budget envelope. It is shared by
// every goroutine working on the request (the §5.2.3 candidate search runs
// checkpoints concurrently), so the pass counter is atomic and the rest is
// immutable after New.
type State struct {
	ctx       context.Context
	deadline  time.Time // zero = no wall-clock limit
	maxPasses int64     // ≤ 0 = no rank-pass limit
	passes    atomic.Int64
}

// New builds the checkpoint state for one request. It returns nil — the
// zero-overhead "nothing to enforce" state — when the context can never be
// cancelled (Background/TODO have a nil Done channel), no limit is set, and
// no fault-injection checkpoint hook is installed.
func New(ctx context.Context, wallClock time.Duration, maxPasses int) *State {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && wallClock <= 0 && maxPasses <= 0 &&
		faultinject.Checkpoint == nil && faultinject.BudgetExhaust == nil {
		return nil
	}
	s := &State{ctx: ctx, maxPasses: int64(maxPasses)}
	if wallClock > 0 {
		s.deadline = time.Now().Add(wallClock)
	}
	return s
}

// Check is the cooperative checkpoint: it reports the context's error if the
// request was cancelled, or an ErrExhausted-wrapping error if the wall-clock
// budget ran out (forced exhaustion via faultinject counts too). Nil-safe.
func (s *State) Check() error {
	if s == nil {
		return nil
	}
	if h := faultinject.Checkpoint; h != nil {
		h()
	}
	if h := faultinject.BudgetExhaust; h != nil && h() {
		return s.exhaust("forced by fault injection")
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return s.exhaust("wall-clock deadline exceeded")
	}
	return nil
}

// RankPass charges one rank pass against the budget, then runs the regular
// checkpoint. Called by rank.Ctx.RunRanks, so every greedy reschedule in the
// pipeline is automatically both metered and a cancellation point. Nil-safe.
func (s *State) RankPass() error {
	if s == nil {
		return nil
	}
	if s.maxPasses > 0 && s.passes.Add(1) > s.maxPasses {
		return s.exhaust(fmt.Sprintf("rank-pass limit %d exceeded", s.maxPasses))
	}
	return s.Check()
}

// Passes returns the number of rank passes charged so far.
func (s *State) Passes() int64 {
	if s == nil {
		return 0
	}
	return s.passes.Load()
}

package regren

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aisched/internal/deps"
	"aisched/internal/isa"
	"aisched/internal/machine"
	"aisched/internal/minic"
	"aisched/internal/rank"
	"aisched/internal/workload"
)

func TestRenameRemovesWAW(t *testing.T) {
	// r1 = 1 ; use r1 ; r1 = 2 ; use r1 — renaming splits the two webs.
	ins := []isa.Instr{
		{Op: isa.LI, Dst: isa.GPR(1), Imm: 1},
		{Op: isa.ADD, Dst: isa.GPR(2), SrcA: isa.GPR(1), SrcB: isa.GPR(1)},
		{Op: isa.LI, Dst: isa.GPR(1), Imm: 2},
		{Op: isa.ADD, Dst: isa.GPR(3), SrcA: isa.GPR(1), SrcB: isa.GPR(1)},
	}
	if FalseDeps(ins) == 0 {
		t.Fatal("setup has no false deps")
	}
	out := Rename(ins)
	if FalseDeps(out) != 0 {
		t.Fatalf("false deps remain: %v", out)
	}
	// The first LI moved to a scratch register; its consumer follows it.
	if out[0].Dst == isa.GPR(1) {
		t.Fatal("early def kept the architectural register")
	}
	if out[1].SrcA != out[0].Dst {
		t.Fatal("use not rewritten to the renamed def")
	}
	// The LAST def of r1 keeps r1 (live-out preservation).
	if out[2].Dst != isa.GPR(1) {
		t.Fatalf("final def renamed away from r1: %v", out[2])
	}
}

func TestRenamePreservesLiveOutRegisters(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.LI, Dst: isa.GPR(5), Imm: 1},
		{Op: isa.LI, Dst: isa.GPR(5), Imm: 2},
		{Op: isa.LI, Dst: isa.GPR(6), Imm: 3},
	}
	out := Rename(ins)
	// Final values must land in the original registers.
	if out[1].Dst != isa.GPR(5) || out[2].Dst != isa.GPR(6) {
		t.Fatalf("live-out registers not preserved: %v", out)
	}
}

func TestRenameKeepsUpdateFormBases(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.LOADU, Dst: isa.GPR(6), Base: isa.GPR(7), Imm: 4},
		{Op: isa.LOADU, Dst: isa.GPR(8), Base: isa.GPR(7), Imm: 4},
	}
	out := Rename(ins)
	if out[0].Base != isa.GPR(7) || out[1].Base != isa.GPR(7) {
		t.Fatalf("update-form base was renamed: %v", out)
	}
}

func TestRenameConditionRegistersUntouched(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.CMPI, Dst: isa.CR(1), SrcA: isa.GPR(1), Imm: 0},
		{Op: isa.CMPI, Dst: isa.CR(1), SrcA: isa.GPR(2), Imm: 0},
		{Op: isa.BT, SrcA: isa.CR(1), Target: "L"},
	}
	out := Rename(ins)
	if out[0].Dst != isa.CR(1) || out[1].Dst != isa.CR(1) || out[2].SrcA != isa.CR(1) {
		t.Fatalf("condition registers touched: %v", out)
	}
}

func TestRenameGracefulWhenFileExhausted(t *testing.T) {
	// Touch every GPR so no scratch registers remain; renaming must be an
	// identity (up to no-ops), not a panic.
	var ins []isa.Instr
	for i := 0; i < isa.NumGPR; i++ {
		ins = append(ins, isa.Instr{Op: isa.LI, Dst: isa.GPR(i), Imm: int64(i)})
		ins = append(ins, isa.Instr{Op: isa.LI, Dst: isa.GPR(i), Imm: int64(i + 1)})
	}
	out := Rename(ins)
	if len(out) != len(ins) {
		t.Fatal("length changed")
	}
	for i := range out {
		if out[i].Dst != ins[i].Dst {
			t.Fatalf("instr %d renamed with no free registers", i)
		}
	}
}

// renamedSemanticsEquivalent abstractly interprets both sequences (register
// values as symbolic expressions) and compares the final architectural
// register state and the store streams.
func renamedSemanticsEquivalent(a, b []isa.Instr) bool {
	type state struct {
		regs   map[isa.Reg]string
		stores []string
	}
	run := func(ins []isa.Instr) state {
		s := state{regs: map[isa.Reg]string{}}
		val := func(r isa.Reg) string {
			if v, ok := s.regs[r]; ok {
				return v
			}
			return "init:" + r.String()
		}
		for _, in := range ins {
			switch in.Op {
			case isa.LI:
				s.regs[in.Dst] = "imm"
			case isa.MOV:
				s.regs[in.Dst] = val(in.SrcA)
			case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.MUL, isa.DIV:
				s.regs[in.Dst] = in.Op.String() + "(" + val(in.SrcA) + "," + val(in.SrcB) + ")"
			case isa.ADDI, isa.SUBI:
				s.regs[in.Dst] = in.Op.String() + "(" + val(in.SrcA) + ",imm)"
			case isa.LOAD:
				s.regs[in.Dst] = "mem(" + val(in.Base) + ")"
			case isa.LOADU:
				s.regs[in.Dst] = "mem(" + val(in.Base) + ")"
				s.regs[in.Base] = "upd(" + val(in.Base) + ")"
			case isa.STORE:
				s.stores = append(s.stores, val(in.SrcA)+"@"+val(in.Base))
			case isa.STOREU:
				s.stores = append(s.stores, val(in.SrcA)+"@"+val(in.Base))
				s.regs[in.Base] = "upd(" + val(in.Base) + ")"
			case isa.CMP, isa.CMPI:
				s.regs[in.Dst] = "cmp(" + val(in.SrcA) + ")"
			}
		}
		return s
	}
	sa, sb := run(a), run(b)
	if len(sa.stores) != len(sb.stores) {
		return false
	}
	for i := range sa.stores {
		if sa.stores[i] != sb.stores[i] {
			return false
		}
	}
	// Architectural registers written by the ORIGINAL sequence must hold
	// the same values afterward (scratch registers may differ).
	for _, in := range a {
		for _, d := range in.Defs() {
			if sa.regs[d] != sb.regs[d] {
				return false
			}
		}
	}
	return true
}

func TestPropertyRenamePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		for _, b := range comp.TraceBlocks() {
			out := Rename(b)
			if !renamedSemanticsEquivalent(b, out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRenameNeverIncreasesScheduleLength(t *testing.T) {
	// On a multi-issue machine, renaming can only relax constraints, so the
	// rank schedule of a renamed block is never longer.
	m := machine.NewMachine("2fx+fp+br", []int{2, 1, 1}, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 4)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		for _, b := range comp.TraceBlocks() {
			g1 := deps.BuildBlock(b, 0)
			g2 := deps.BuildBlock(Rename(b), 0)
			s1, err1 := rank.Makespan(g1, m)
			s2, err2 := rank.Makespan(g2, m)
			if err1 != nil || err2 != nil {
				return false
			}
			if s2.Makespan() > s1.Makespan() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRenameOnlyRelaxesConstraints(t *testing.T) {
	// The renamed block's ordering constraints are a subset of the
	// original's in the transitive-closure sense: every dependence path in
	// the renamed graph corresponds to a path in the original. (The raw
	// pairwise edge count can go either way because a removed WAR edge can
	// unmask one that a RAW chain previously subsumed.)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := workload.RandomProgram(r, 5)
		comp, err := minic.Compile(src)
		if err != nil {
			return false
		}
		for _, b := range comp.TraceBlocks() {
			g1 := deps.BuildBlock(b, 0)
			g2 := deps.BuildBlock(Rename(b), 0)
			d1, err1 := g1.Descendants()
			d2, err2 := g2.Descendants()
			if err1 != nil || err2 != nil {
				return false
			}
			for v := 0; v < g1.Len(); v++ {
				inter := d2[v].Clone()
				inter.IntersectWith(d1[v])
				if inter.Count() != d2[v].Count() {
					return false // renamed graph orders a pair the original did not
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package loops

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/idle"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/rank"
)

// SingleSourceOrder implements §5.2.1: schedule a single-basic-block loop by
// converting it to an acyclic graph G' with a dummy sink z representing the
// next iteration's instance of source candidate y:
//
//  1. add dummy sink z;
//  2. add a zero-latency, zero-distance edge from every other node to z;
//  3. replace each loop-carried edge (x, v) with (x, z), distance zero,
//     same latency (the paper's construction for v = y; for the general
//     case of §5.2.3 every carried edge is redirected, which preserves the
//     producer-side constraint as a heuristic).
//
// G' is scheduled with the Rank Algorithm followed by Delay_Idle_Slots, and
// z is dropped from the returned order. Provably optimal when y is the
// unique source of G_li and the target of all loop-carried edges, in the
// restricted machine model.
func SingleSourceOrder(g *graph.Graph, m *machine.Machine, y graph.NodeID) ([]graph.NodeID, error) {
	n := g.Len()
	if y < 0 || int(y) >= n {
		return nil, fmt.Errorf("loops: source candidate %d out of range", y)
	}
	gp := graph.New(n + 1)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		gp.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block)
	}
	ynode := g.Node(y)
	z := gp.AddNode("z'"+ynode.Label, ynode.Exec, ynode.Class, ynode.Block)
	for _, e := range g.Edges() {
		if e.Distance == 0 {
			gp.MustEdge(e.Src, e.Dst, e.Latency, 0)
		} else {
			gp.MustEdge(e.Src, z, e.Latency, 0)
		}
	}
	for v := 0; v < n; v++ {
		gp.MustEdge(graph.NodeID(v), z, 0, 0)
	}
	return scheduleAndDrop(gp, m, z)
}

// SingleSinkOrder implements §5.2.2 (the dual): dummy source z representing
// the previous iteration's instance of sink candidate y, a zero-latency edge
// from z to every other node, and each loop-carried edge (v, x) replaced by
// (z, x) with the same latency.
func SingleSinkOrder(g *graph.Graph, m *machine.Machine, y graph.NodeID) ([]graph.NodeID, error) {
	n := g.Len()
	if y < 0 || int(y) >= n {
		return nil, fmt.Errorf("loops: sink candidate %d out of range", y)
	}
	gp := graph.New(n + 1)
	// Dummy source first so it precedes everything in program order.
	ynode := g.Node(y)
	z := gp.AddNode("z'"+ynode.Label, ynode.Exec, ynode.Class, ynode.Block)
	remap := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		remap[v] = gp.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block)
	}
	for _, e := range g.Edges() {
		if e.Distance == 0 {
			gp.MustEdge(remap[e.Src], remap[e.Dst], e.Latency, 0)
		} else {
			gp.MustEdge(z, remap[e.Dst], e.Latency, 0)
		}
	}
	for v := 0; v < n; v++ {
		gp.MustEdge(z, remap[v], 0, 0)
	}
	order, err := scheduleAndDrop(gp, m, z)
	if err != nil {
		return nil, err
	}
	// Map subgraph IDs (shifted by one) back to original IDs.
	out := make([]graph.NodeID, 0, n)
	for _, id := range order {
		out = append(out, id-1)
	}
	return out, nil
}

// scheduleAndDrop runs rank_alg + Delay_Idle_Slots on the acyclic graph and
// returns the schedule's permutation with the dummy node removed.
func scheduleAndDrop(gp *graph.Graph, m *machine.Machine, dummy graph.NodeID) ([]graph.NodeID, error) {
	s, err := rank.Makespan(gp, m)
	if err != nil {
		return nil, err
	}
	d := rank.UniformDeadlines(gp.Len(), s.Makespan())
	s, _, err = idle.DelayIdleSlots(s, m, d, nil)
	if err != nil {
		return nil, err
	}
	var order []graph.NodeID
	for _, id := range s.Permutation() {
		if id != dummy {
			order = append(order, id)
		}
	}
	return order, nil
}

// Candidates enumerates the §5.2.3 general-case candidates: every target of
// a loop-carried edge as a single-source candidate, and every source of a
// loop-carried edge as a single-sink candidate. For graphs whose latencies
// are all ≤ 1 the paper's compile-time reduction applies: only G_li sources
// (resp. sinks) need be considered.
func Candidates(g *graph.Graph) (sources, sinks []graph.NodeID) {
	srcSet := map[graph.NodeID]bool{}
	sinkSet := map[graph.NodeID]bool{}
	maxLat := 0
	for _, e := range g.Edges() {
		if e.Latency > maxLat {
			maxLat = e.Latency
		}
		if e.Distance > 0 {
			srcSet[e.Dst] = true
			sinkSet[e.Src] = true
		}
	}
	if maxLat <= 1 {
		li := g.LoopIndependent()
		liSources := map[graph.NodeID]bool{}
		for _, s := range li.Sources() {
			liSources[s] = true
		}
		liSinks := map[graph.NodeID]bool{}
		for _, s := range li.Sinks() {
			liSinks[s] = true
		}
		for id := range srcSet {
			if !liSources[id] {
				delete(srcSet, id)
			}
		}
		for id := range sinkSet {
			if !liSinks[id] {
				delete(sinkSet, id)
			}
		}
	}
	for v := 0; v < g.Len(); v++ {
		if srcSet[graph.NodeID(v)] {
			sources = append(sources, graph.NodeID(v))
		}
		if sinkSet[graph.NodeID(v)] {
			sinks = append(sinks, graph.NodeID(v))
		}
	}
	return sources, sinks
}

// ScheduleSingleBlockLoop implements the general case of §5.2.3 for a loop
// containing a single basic block: build one candidate schedule per
// single-source/single-sink candidate plus the plain block-optimal schedule,
// evaluate each in the periodic steady-state model, and keep the best
// (smallest II, ties broken by smaller intra-iteration makespan).
func ScheduleSingleBlockLoop(g *graph.Graph, m *machine.Machine) (*Steady, error) {
	return ScheduleSingleBlockLoopT(g, m, nil)
}

// ScheduleSingleBlockLoopT is ScheduleSingleBlockLoop with optional tracing:
// every candidate evaluation emits a KindIICandidate event (candidate kind
// "base", "source" or "sink"; the candidate instruction; the achieved II and
// intra-iteration makespan), bracketed by a pass-start/pass-end pair named
// obs.PassLoop whose end event carries the best II.
func ScheduleSingleBlockLoopT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*Steady, error) {
	if g.Len() == 0 {
		return nil, fmt.Errorf("loops: empty loop body")
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassStart, Pass: obs.PassLoop,
			Block: -1, Node: graph.None, N: g.Len()})
	}
	type candidate struct {
		kind  string
		node  graph.NodeID
		order []graph.NodeID
	}
	var candidates []candidate

	// Baseline: block-optimal order from the Rank Algorithm on G_li.
	li := g.LoopIndependent()
	base, err := rank.Makespan(li, m)
	if err != nil {
		return nil, err
	}
	d := rank.UniformDeadlines(li.Len(), base.Makespan())
	base, _, err = idle.DelayIdleSlots(base, m, d, nil)
	if err != nil {
		return nil, err
	}
	candidates = append(candidates, candidate{"base", graph.None, base.Permutation()})

	sources, sinks := Candidates(g)
	for _, y := range sources {
		order, err := SingleSourceOrder(g, m, y)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, candidate{"source", y, order})
	}
	for _, y := range sinks {
		order, err := SingleSinkOrder(g, m, y)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, candidate{"sink", y, order})
	}

	var best *Steady
	for _, c := range candidates {
		st, err := Evaluate(g, m, c.order)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			label := ""
			if c.node != graph.None {
				label = g.Node(c.node).Label
			}
			tr.Emit(obs.Event{Kind: obs.KindIICandidate, Pass: c.kind,
				Node: c.node, Label: label, Block: -1,
				N: st.II, From: st.Makespan})
		}
		if best == nil || st.II < best.II || (st.II == best.II && st.Makespan < best.Makespan) {
			best = st
		}
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPassEnd, Pass: obs.PassLoop,
			Block: -1, Node: graph.None, N: best.II})
	}
	return best, nil
}

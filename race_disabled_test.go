//go:build !race

package aisched

// raceEnabled reports whether this binary was built with -race (see
// race_enabled_test.go).
const raceEnabled = false

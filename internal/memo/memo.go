// Package memo is the content-addressed schedule cache: a sharded, bounded
// LRU keyed by graph.Fingerprint that memoizes scheduling results across
// calls. It is the amortization layer of the throughput pipeline — identical
// basic blocks dominate real workloads, so a compiler front-end that keeps
// re-submitting the same block should pay for scheduling once.
//
// Concurrency design:
//
//   - The key space is partitioned into ≥16 power-of-two shards, each with
//     its own mutex, LRU list, and counters, so concurrent lookups of
//     different blocks never contend on one lock. SHA-256 fingerprints are
//     uniform, so the shard index is just the key's low 64 bits masked.
//   - Each shard carries a singleflight table: when a lookup misses while
//     another goroutine is already computing the same key, the latecomer
//     waits for that in-flight computation instead of duplicating it
//     (counted as "coalesced"). Errors are never cached — every waiter of a
//     failed flight gets the error, and the next lookup recomputes.
//
// The cache stores opaque values; the facade layer is responsible for
// storing clones that do not retain caller-owned graphs and for rebinding
// clones on the way out. Soundness rests on the Fingerprint contract
// (internal/graph): equal keys describe the same scheduling instance, and
// every scheduler in this repository is deterministic, so a cached value is
// bit-identical to what recomputation would produce.
package memo

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"aisched/internal/faultinject"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/metrics"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
)

// MetricSet is one family of always-on cache instruments (internal/metrics).
// Unlike the per-Cache Counters snapshot and the obs events — which exist per
// Scheduler / per run — a MetricSet aggregates every cache wired to it in the
// process: one striped atomic add per lookup, consumed by
// aisched.MetricsSnapshot and the /metrics endpoint. Two sets exist: the
// whole-result schedule cache (Do/DoCtx) and the per-block step cache
// (Get/Put, internal/core), so the two planes never blur in dashboards.
type MetricSet struct {
	hits, misses, evictions, coalesced, recomputed *metrics.Counter
	bytes                                          *metrics.Gauge
}

// ScheduleMetrics instruments the whole-result schedule caches. The bytes
// gauge counts approximate resident value bytes across live caches; a cache
// dropped without eviction keeps its last contribution (caches are normally
// process-lifetime).
var ScheduleMetrics = &MetricSet{
	hits:       metrics.Default.NewCounter("aisched_memo_hits_total", "schedule-cache lookups served from a memoized result"),
	misses:     metrics.Default.NewCounter("aisched_memo_misses_total", "schedule-cache lookups that computed and stored a result"),
	evictions:  metrics.Default.NewCounter("aisched_memo_evictions_total", "schedule-cache LRU evictions"),
	coalesced:  metrics.Default.NewCounter("aisched_memo_coalesced_total", "schedule-cache lookups coalesced onto an in-flight computation"),
	recomputed: metrics.Default.NewCounter("aisched_memo_recomputed_total", "coalesced waiters that recomputed after an in-flight leader failed with a personal error"),
	bytes:      metrics.Default.NewGauge("aisched_memo_resident_bytes", "approximate resident bytes of memoized schedule results"),
}

// StepMetrics instruments the per-block step caches (internal/core): the hit
// and relocation path of the fragment replay plane.
var StepMetrics = &MetricSet{
	hits:       metrics.Default.NewCounter("aisched_stepcache_hits_total", "step-cache lookups served by fragment replay"),
	misses:     metrics.Default.NewCounter("aisched_stepcache_misses_total", "step-cache lookups that ran the full merge step"),
	evictions:  metrics.Default.NewCounter("aisched_stepcache_evictions_total", "step-cache LRU evictions"),
	coalesced:  metrics.Default.NewCounter("aisched_stepcache_coalesced_total", "step-cache lookups coalesced onto an in-flight computation (unused: the step cache is Get/Put)"),
	recomputed: metrics.Default.NewCounter("aisched_stepcache_recomputed_total", "step-cache coalesced recomputes (unused: the step cache is Get/Put)"),
	bytes:      metrics.Default.NewGauge("aisched_stepcache_resident_bytes", "approximate resident bytes of cached step fragments"),
}

// Kind discriminates the result type cached under a fingerprint, so a block
// schedule and a trace result for the same graph never alias.
type Kind uint8

const (
	// KindBlock caches single-block schedules (rank + Delay_Idle_Slots).
	KindBlock Kind = iota
	// KindTrace caches Algorithm Lookahead trace results.
	KindTrace
	// KindLoop caches §5 steady-state loop schedules.
	KindLoop
	// KindStep caches one core.Step merge/delay/chop iteration as a
	// relocatable fragment. Step keys are built with graph.Hasher (128-bit
	// non-cryptographic) rather than Fingerprint; the key's hash fills the
	// fingerprint's first 16 bytes and the rest stay zero.
	KindStep
)

// Key is the cache key: the instance fingerprint plus the result kind.
type Key struct {
	FP   graph.Fingerprint
	Kind Kind
}

// KeyFor builds the cache key for scheduling g on m as kind. It hashes
// exactly the machine parameters that affect scheduling (unit counts and
// window); machine names do not fragment the cache.
func KeyFor(g *graph.Graph, m *machine.Machine, kind Kind) Key {
	return Key{FP: g.Fingerprint(m.Units, m.Window), Kind: kind}
}

// Config sizes a Cache. The zero value picks the defaults.
type Config struct {
	// Capacity is the total entry budget across all shards (default 4096).
	// It is split evenly per shard, so the effective bound is approximate:
	// a pathological key distribution can evict earlier on a hot shard.
	Capacity int
	// MaxBytes bounds the approximate resident bytes of cached values across
	// all shards (default 64 MiB, split evenly per shard; negative disables
	// the byte bound). Entry count alone is a poor bound when values vary
	// widely in size — a step fragment for a 6-node block and one for a
	// 200-node suffix differ by 30× — so eviction applies whichever bound
	// trips first. Values that implement Sizer report their own footprint;
	// others are charged a fixed conservative estimate.
	MaxBytes int
	// Shards is the number of lock shards, rounded up to a power of two and
	// clamped to at least 16.
	Shards int
	// Tracer, when non-nil, receives KindCacheHit / KindCacheMiss /
	// KindCacheEvict / KindCacheCoalesce events for the metrics snapshot.
	Tracer obs.Tracer
	// Metrics selects the always-on instrument family this cache feeds
	// (nil = ScheduleMetrics).
	Metrics *MetricSet
}

// Sizer lets a cached value report its approximate resident footprint in
// bytes for the MaxBytes bound. The estimate should cover the value's
// backing arrays; exactness is not required — the bound itself is
// approximate (per-shard split, map overhead estimated).
type Sizer interface {
	ApproxBytes() int
}

// DefaultCapacity is the entry budget used when Config.Capacity is zero.
const DefaultCapacity = 4096

// DefaultMaxBytes is the resident-byte budget used when Config.MaxBytes is
// zero.
const DefaultMaxBytes = 64 << 20

// entryOverhead is the charged per-entry bookkeeping estimate: the entry
// struct, its map bucket share, and the key copy.
const entryOverhead = 176

const minShards = 16

// Counters is a point-in-time snapshot of the cache's activity, summed over
// shards. Hits + Misses + Coalesced equals the number of Do calls.
type Counters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	// Bytes is the approximate resident footprint of cached values (a
	// point-in-time gauge, not a counter).
	Bytes int64 `json:"bytes"`
	// Recomputed counts coalesced waiters whose in-flight leader failed
	// with an error personal to the leader (its context was cancelled or
	// its budget ran out) and who therefore ran their own compute instead
	// of inheriting an error their caller did not cause. Each such call is
	// also counted in Coalesced.
	Recomputed uint64 `json:"recomputed"`
}

// entry is one resident value, threaded on its shard's intrusive LRU ring.
type entry struct {
	key        Key
	val        any
	bytes      int
	prev, next *entry
}

// valBytes charges v's approximate resident footprint.
func valBytes(v any) int {
	if s, ok := v.(Sizer); ok {
		return entryOverhead + s.ApproxBytes()
	}
	return entryOverhead
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type shard struct {
	mu       sync.Mutex
	capacity int
	byteCap  int // ≤0 means unbounded
	bytes    int
	entries  map[Key]*entry
	lru      entry // sentinel: lru.next is MRU, lru.prev is LRU
	inflight map[Key]*flight

	hits, misses, evictions, coalesced, recomputed uint64
}

// Cache is a sharded bounded LRU with singleflight deduplication. Safe for
// concurrent use. The zero value is not useful; use New.
type Cache struct {
	shards []shard
	mask   uint64
	tracer obs.Tracer
	met    *MetricSet
}

// New builds a cache from cfg (zero-value fields take defaults).
func New(cfg Config) *Cache {
	capTotal := cfg.Capacity
	if capTotal <= 0 {
		capTotal = DefaultCapacity
	}
	byteTotal := cfg.MaxBytes
	if byteTotal == 0 {
		byteTotal = DefaultMaxBytes
	}
	n := cfg.Shards
	if n < minShards {
		n = minShards
	}
	// Round up to a power of two so shard selection is a mask.
	for n&(n-1) != 0 {
		n &= n - 1
		n <<= 1
	}
	perShard := (capTotal + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	bytesPerShard := 0
	if byteTotal > 0 {
		bytesPerShard = (byteTotal + n - 1) / n
	}
	met := cfg.Metrics
	if met == nil {
		met = ScheduleMetrics
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), tracer: cfg.Tracer, met: met}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = perShard
		s.byteCap = bytesPerShard
		s.entries = make(map[Key]*entry)
		s.inflight = make(map[Key]*flight)
		s.lru.next = &s.lru
		s.lru.prev = &s.lru
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k.FP[:8])&c.mask]
}

func (c *Cache) emit(kind obs.Kind) {
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Kind: kind, Block: -1})
	}
}

// Do is DoCtx with a background (never-cancelled) context.
func (c *Cache) Do(k Key, compute func() (any, error)) (val any, hit bool, err error) {
	return c.DoCtx(context.Background(), k, compute)
}

// DoCtx returns the cached value for k, computing it with compute on a miss.
// hit reports whether the value came from the cache (including waiting on a
// concurrent computation of the same key) rather than from this call's own
// compute. Errors are returned to every waiter of the failed computation and
// are never cached; the next lookup for the same key recomputes.
//
// Cancellation and failure isolation:
//
//   - A waiter whose own ctx is done stops waiting and returns ctx.Err()
//     immediately; the in-flight computation is unaffected.
//   - A leader that fails with an error personal to it — context
//     cancellation or budget exhaustion — does not poison its waiters: each
//     waiter runs its own compute (under its own context/budget, which its
//     closure captures) and stores the result on success. Real scheduling
//     errors are shared with every waiter as before.
//   - A compute panic is recovered and converted into an error, so the
//     flight's done channel always closes and waiters never hang.
func (c *Cache) DoCtx(ctx context.Context, k Key, compute func() (any, error)) (val any, hit bool, err error) {
	if h := faultinject.MemoLookup; h != nil {
		h()
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.unlink()
		e.pushMRU(&s.lru)
		s.hits++
		s.mu.Unlock()
		c.met.hits.Inc()
		c.emit(obs.KindCacheHit)
		return e.val, true, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.coalesced++
		s.mu.Unlock()
		c.met.coalesced.Inc()
		c.emit(obs.KindCacheCoalesce)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err == nil {
			return f.val, true, nil
		}
		if !personalError(f.err) {
			return nil, false, f.err
		}
		// The leader failed for reasons private to it (its caller cancelled
		// or its budget ran out); this waiter's request is still live, so
		// compute directly rather than surface an error the waiter's caller
		// did not cause. No new flight is registered — at most one wait plus
		// one compute per call, so progress is guaranteed.
		s.mu.Lock()
		s.recomputed++
		s.mu.Unlock()
		c.met.recomputed.Inc()
		v, err := runCompute(compute)
		if err != nil {
			return nil, false, err
		}
		c.store(s, k, v)
		return v, false, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[k] = f
	s.misses++
	s.mu.Unlock()
	c.met.misses.Inc()
	c.emit(obs.KindCacheMiss)

	f.val, f.err = runCompute(compute)

	s.mu.Lock()
	delete(s.inflight, k)
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	c.store(s, k, f.val)
	return f.val, false, nil
}

// personalError reports whether err is specific to the goroutine that
// computed it rather than to the scheduling instance: context cancellation
// and budget exhaustion depend on the caller's deadline, not the key.
func personalError(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, sbudget.ErrExhausted)
}

// runCompute invokes compute, converting a panic into an error so flights
// always complete.
func runCompute(compute func() (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("memo: compute panicked: %v", p)
		}
	}()
	return compute()
}

// store inserts v under k (refreshing the entry if a concurrent recompute
// beat us to it) and applies both LRU bounds — entry count and approximate
// resident bytes — emitting eviction events. The just-inserted entry is never
// its own victim: a value larger than a whole shard's byte budget still
// caches (as the shard's only resident), it just evicts everything else.
func (c *Cache) store(s *shard, k Key, v any) {
	nb := valBytes(v)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		delta := nb - e.bytes
		e.val = v
		e.bytes = nb
		s.bytes += delta
		e.unlink()
		e.pushMRU(&s.lru)
		s.mu.Unlock()
		c.met.bytes.Add(int64(delta))
		return
	}
	e := &entry{key: k, val: v, bytes: nb}
	s.entries[k] = e
	s.bytes += nb
	e.pushMRU(&s.lru)
	evicted, freed := 0, 0
	for (len(s.entries) > s.capacity || (s.byteCap > 0 && s.bytes > s.byteCap)) &&
		len(s.entries) > 1 {
		victim := s.lru.prev
		victim.unlink()
		delete(s.entries, victim.key)
		s.bytes -= victim.bytes
		freed += victim.bytes
		s.evictions++
		evicted++
	}
	s.mu.Unlock()
	c.met.bytes.Add(int64(nb - freed))
	if evicted > 0 {
		c.met.evictions.Add(uint64(evicted))
	}
	for i := 0; i < evicted; i++ {
		c.emit(obs.KindCacheEvict)
	}
}

// Get returns the cached value for k without singleflight coordination — the
// direct lookup the step cache's replay path uses: one shard lock, no
// closure, no channel, no allocation. A miss returns (nil, false) and counts
// toward Misses; the caller computes and Puts.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.unlink()
		e.pushMRU(&s.lru)
		s.hits++
		s.mu.Unlock()
		c.met.hits.Inc()
		c.emit(obs.KindCacheHit)
		return e.val, true
	}
	s.misses++
	s.mu.Unlock()
	c.met.misses.Inc()
	c.emit(obs.KindCacheMiss)
	return nil, false
}

// Put stores v under k, refreshing an existing entry and applying both LRU
// bounds. Concurrent Puts of the same key are safe (last writer's value
// stays resident); values must be immutable once stored.
func (c *Cache) Put(k Key, v any) {
	c.store(c.shardFor(k), k, v)
}

// Len returns the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Counters sums the per-shard activity counters.
func (c *Cache) Counters() Counters {
	var t Counters
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		t.Hits += s.hits
		t.Misses += s.misses
		t.Evictions += s.evictions
		t.Coalesced += s.coalesced
		t.Recomputed += s.recomputed
		t.Bytes += int64(s.bytes)
		s.mu.Unlock()
	}
	return t
}

// Bytes reports the approximate resident value bytes across all shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(s.bytes)
		s.mu.Unlock()
	}
	return n
}

// Release drops every resident entry and returns their bytes to the metric
// gauge. Callers with a bounded lifetime (e.g. a closed StreamScheduler)
// release so the process-wide resident-bytes gauge tracks live caches only.
// Dropped entries do not count as evictions. The cache remains usable.
func (c *Cache) Release() {
	var freed int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		freed += int64(s.bytes)
		s.bytes = 0
		clear(s.entries)
		s.lru.next = &s.lru
		s.lru.prev = &s.lru
		s.mu.Unlock()
	}
	c.met.bytes.Add(-freed)
}

func (e *entry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (e *entry) pushMRU(sentinel *entry) {
	e.prev = sentinel
	e.next = sentinel.next
	sentinel.next.prev = e
	sentinel.next = e
}

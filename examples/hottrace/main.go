// Hot trace: the full compiler pipeline. A mini-C program with branches and
// a loop is compiled, its control-flow graph built with static branch
// prediction, the hot trace selected (Fisher's mutually-most-likely
// heuristic — the loop body dominates the frequency estimate), registers
// renamed to remove false dependences, and the trace scheduled
// anticipatorily — then everything is measured on the window hardware.
package main

import (
	"fmt"
	"log"

	"aisched"
)

const src = `
int n;
int s;
int i;
int t;
int d[64];
n = 40;
s = 0;
for (i = 0; i < 10; i = i + 1) {
	t = d[i] * 3;
	s = s + t;
}
if (s > n) {
	s = s - n;
} else {
	s = n - s;
}
d[0] = s;
`

func main() {
	comp, err := aisched.CompileC(src)
	if err != nil {
		log.Fatal(err)
	}
	g, err := aisched.BuildCFG(comp)
	if err != nil {
		log.Fatal(err)
	}

	weights := g.Weights()
	fmt.Println("block frequency estimates (static prediction):")
	for i, b := range g.Blocks {
		fmt.Printf("  %2d %-12s %6.2f  (%d instrs)\n", i, b.Label, weights[i], len(b.Instrs))
	}

	traceInstrs, traceBlocks := g.HotTrace()
	fmt.Printf("\nhot trace: blocks %v (the loop body leads)\n", traceBlocks)

	m := aisched.SingleUnit(4)
	measure := func(name string, blocks [][]aisched.Instr) int {
		tg := aisched.BuildTraceGraph(blocks)
		res, err := aisched.ScheduleTrace(tg, m)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := aisched.SimulateTrace(tg, m, res.StaticOrder())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %3d cycles\n", name, sim.Completion)
		return sim.Completion
	}

	fmt.Println()
	plain := measure("anticipatory, original registers:", traceInstrs)

	wrapped := make([]aisched.AsmBlock, len(traceInstrs))
	for i, b := range traceInstrs {
		wrapped[i] = aisched.AsmBlock{Instrs: b}
	}
	renBlocks := aisched.RenameProgram(wrapped)
	renamed := make([][]aisched.Instr, len(renBlocks))
	for i, b := range renBlocks {
		renamed[i] = b.Instrs
	}
	m2 := aisched.RS6000(4)
	tg := aisched.BuildTraceGraph(renamed)
	res, err := aisched.ScheduleTrace(tg, m2)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := aisched.SimulateTrace(tg, m2, res.StaticOrder())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %3d cycles\n", "renamed, on 3-unit rs6000:", sim.Completion)
	_ = plain
}

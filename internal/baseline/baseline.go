// Package baseline implements the local instruction schedulers the paper
// compares against (§6, Related Work), all as priority-list schedulers over
// the same greedy engine:
//
//   - SourceOrder: the unscheduled program order (what the front end emits);
//   - CriticalPath: Warren's RS/6000-style greedy scheduling on a
//     prioritized list, with priority = longest latency-weighted path to a
//     sink (the standard list-scheduling heuristic);
//   - GibbonsMuchnick: the O(n²) heuristic of Gibbons & Muchnick '86 —
//     priority by (critical path, immediate-successor count, total
//     successor count), scheduled greedily;
//   - CoffmanGraham: lexicographic labeling (Coffman & Graham '72), the
//     basis of Bernstein & Gertner's optimal algorithm for latencies ≤ 1.
//
// Every scheduler here is per-block ("local"): it never accounts for
// instruction overlap across basic-block boundaries, which is exactly the
// gap anticipatory scheduling closes. ScheduleTrace applies a local
// scheduler block by block and concatenates the block orders.
package baseline

import (
	"fmt"
	"sort"

	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/rank"
	"aisched/internal/sched"
)

// Scheduler produces a static instruction order for one basic block graph.
type Scheduler interface {
	// Name identifies the scheduler in experiment tables.
	Name() string
	// Order returns the static instruction order for the block.
	Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error)
}

// SourceOrder emits instructions in original program order.
type SourceOrder struct{}

// Name implements Scheduler.
func (SourceOrder) Name() string { return "source-order" }

// Order implements Scheduler.
func (SourceOrder) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	return sched.SourceOrder(g), nil
}

// CriticalPath is greedy list scheduling with longest-path-to-sink priority
// (Warren '90 style).
type CriticalPath struct{}

// Name implements Scheduler.
func (CriticalPath) Name() string { return "critical-path" }

// Order implements Scheduler.
func (CriticalPath) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	cp, err := g.CriticalPathLengths()
	if err != nil {
		return nil, err
	}
	order := sched.SourceOrder(g)
	sort.SliceStable(order, func(a, b int) bool { return cp[order[a]] > cp[order[b]] })
	s, err := sched.ListSchedule(g, m, order)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// GibbonsMuchnick prioritizes by critical path, then by whether the node
// has an immediate successor with a latency constraint, then by total
// descendant count — the lookahead heuristics of their §3.
type GibbonsMuchnick struct{}

// Name implements Scheduler.
func (GibbonsMuchnick) Name() string { return "gibbons-muchnick" }

// Order implements Scheduler.
func (GibbonsMuchnick) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	cp, err := g.CriticalPathLengths()
	if err != nil {
		return nil, err
	}
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	latSucc := make([]int, g.Len())
	for v := 0; v < g.Len(); v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if e.Distance == 0 && e.Latency > 0 {
				latSucc[v]++
			}
		}
	}
	order := sched.SourceOrder(g)
	sort.SliceStable(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if cp[x] != cp[y] {
			return cp[x] > cp[y]
		}
		if latSucc[x] != latSucc[y] {
			return latSucc[x] > latSucc[y]
		}
		return desc[x].Count() > desc[y].Count()
	})
	s, err := sched.ListSchedule(g, m, order)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// CoffmanGraham computes the classic lexicographic labels over the
// transitive reduction and schedules greedily in decreasing label order —
// optimal for two identical processors with zero latencies, and the
// skeleton of Bernstein & Gertner's single-processor 0/1-latency algorithm.
type CoffmanGraham struct{}

// Name implements Scheduler.
func (CoffmanGraham) Name() string { return "coffman-graham" }

// Order implements Scheduler.
func (CoffmanGraham) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.Len()
	label := make([]int, n)
	next := 1
	// Process in reverse topological order; among unlabeled candidates whose
	// successors are all labeled, pick the one with the lexicographically
	// smallest (decreasing) successor label list.
	assigned := make([]bool, n)
	succLabels := func(v graph.NodeID) []int {
		var ls []int
		for _, e := range g.Out(v) {
			if e.Distance == 0 {
				ls = append(ls, label[e.Dst])
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ls)))
		return ls
	}
	for range order {
		bestIdx := -1
		var bestLabels []int
		for v := 0; v < n; v++ {
			if assigned[v] {
				continue
			}
			ok := true
			for _, e := range g.Out(graph.NodeID(v)) {
				if e.Distance == 0 && !assigned[e.Dst] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ls := succLabels(graph.NodeID(v))
			if bestIdx < 0 || lexLess(ls, bestLabels) {
				bestIdx = v
				bestLabels = ls
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("baseline: coffman-graham labeling stuck")
		}
		label[bestIdx] = next
		next++
		assigned[bestIdx] = true
	}
	prio := sched.SourceOrder(g)
	sort.SliceStable(prio, func(a, b int) bool { return label[prio[a]] > label[prio[b]] })
	s, err := sched.ListSchedule(g, m, prio)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// lexLess reports whether a < b lexicographically (shorter prefix wins).
func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// RankLocal schedules each block with the Rank Algorithm (the paper's
// optimal local scheduler) but without any anticipation of later blocks —
// the strongest purely-local baseline.
type RankLocal struct{}

// Name implements Scheduler.
func (RankLocal) Name() string { return "rank-local" }

// Order implements Scheduler.
func (RankLocal) Order(g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	s, err := rank.Makespan(g, m)
	if err != nil {
		return nil, err
	}
	return s.Permutation(), nil
}

// All returns every baseline scheduler, for experiment sweeps.
func All() []Scheduler {
	return []Scheduler{SourceOrder{}, CriticalPath{}, GibbonsMuchnick{}, CoffmanGraham{}, RankLocal{}}
}

// ScheduleTrace applies a local scheduler to each block of a trace graph
// independently and returns the concatenated static order — the
// "local scheduling" regime every baseline operates in.
func ScheduleTrace(s Scheduler, g *graph.Graph, m *machine.Machine) ([]graph.NodeID, error) {
	var order []graph.NodeID
	for _, b := range sched.Blocks(g) {
		keep := map[graph.NodeID]bool{}
		for v := 0; v < g.Len(); v++ {
			if g.Node(graph.NodeID(v)).Block == b {
				keep[graph.NodeID(v)] = true
			}
		}
		sub, ids := g.Induced(keep)
		blockOrder, err := s.Order(sub, m)
		if err != nil {
			return nil, err
		}
		if len(blockOrder) != sub.Len() {
			return nil, fmt.Errorf("baseline %s: emitted %d of %d instructions", s.Name(), len(blockOrder), sub.Len())
		}
		for _, si := range blockOrder {
			order = append(order, ids[si])
		}
	}
	return order, nil
}

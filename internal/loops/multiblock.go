package loops

import (
	"fmt"

	"aisched/internal/core"
	"aisched/internal/graph"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/sbudget"
)

// Opts tunes the loop schedulers.
type Opts struct {
	// Tracer, when non-nil, receives the pass events documented on
	// ScheduleSingleBlockLoopT and ScheduleLoopTraceT.
	Tracer obs.Tracer
	// Budget, when non-nil, makes every candidate evaluation and rank pass
	// a cooperative cancellation/budget checkpoint; the scheduler returns
	// the checkpoint's error (context cancellation or sbudget.ErrExhausted)
	// instead of a result.
	Budget *sbudget.State
}

// ScheduleLoopTrace implements §5.1: anticipatory scheduling of a loop whose
// body is a trace of m > 1 basic blocks. Algorithm Lookahead runs over the
// trace augmented with a clone of the first block as an extra successor
// block, connected through the distance-1 loop-carried dependences — so the
// last block's tail ordering anticipates the next iteration's first block.
// The clone is discarded; the per-block orders for the real blocks are
// evaluated in the periodic steady-state model.
//
// Loop-carried edges with distance ≥ 2 or whose target lies outside the
// first block cannot be represented in the one-block-lookahead construction
// and are handled only by the steady-state evaluation (heuristic regime, as
// in the paper).
func ScheduleLoopTrace(g *graph.Graph, m *machine.Machine) (*Steady, error) {
	return ScheduleLoopTraceT(g, m, nil)
}

// ScheduleLoopTraceT is ScheduleLoopTrace with optional tracing: the inner
// Algorithm Lookahead run over the augmented trace emits its usual
// merge/delay/chop events, and the evaluated body order emits one
// KindIICandidate event of kind "trace".
func ScheduleLoopTraceT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*Steady, error) {
	return scheduleLoopTraceOpts(g, m, Opts{Tracer: tr})
}

// scheduleLoopTraceOpts is the option-threading implementation behind
// ScheduleLoopTraceT and ScheduleLoopOpts.
func scheduleLoopTraceOpts(g *graph.Graph, m *machine.Machine, o Opts) (*Steady, error) {
	tr := o.Tracer
	blocks := blockSet(g)
	if len(blocks) < 2 {
		return nil, fmt.Errorf("loops: ScheduleLoopTrace needs ≥ 2 blocks, got %d", len(blocks))
	}
	first := blocks[0]
	nextBlock := blocks[len(blocks)-1] + 1

	n := g.Len()
	aug := graph.New(n + n)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		aug.AddNode(nd.Label, nd.Exec, nd.Class, nd.Block)
	}
	// clone[v] is the next-iteration copy of first-block node v, or None —
	// a dense remap array (node IDs are compact) instead of a map.
	clone := make([]graph.NodeID, n)
	for v := range clone {
		clone[v] = graph.None
	}
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		if nd.Block == first {
			clone[v] = aug.AddNode(nd.Label+"'", nd.Exec, nd.Class, nextBlock)
		}
	}
	for _, e := range g.Edges() {
		switch {
		case e.Distance == 0:
			aug.MustEdge(e.Src, e.Dst, e.Latency, 0)
			// The clone keeps the first block's internal structure.
			if cs, cd := clone[e.Src], clone[e.Dst]; cs != graph.None && cd != graph.None {
				aug.MustEdge(cs, cd, e.Latency, 0)
			}
		case e.Distance == 1:
			if cd := clone[e.Dst]; cd != graph.None {
				aug.MustEdge(e.Src, cd, e.Latency, 0)
			}
		}
	}

	res, err := core.LookaheadOpts(aug, m, core.Options{Tracer: tr, Budget: o.Budget})
	if err != nil {
		return nil, err
	}
	var order []graph.NodeID
	for _, b := range blocks {
		for _, id := range res.BlockOrders[b] {
			if int(id) < n {
				order = append(order, id)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("loops: augmented lookahead emitted %d of %d body instructions", len(order), n)
	}
	st, err := Evaluate(g, m, order)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindIICandidate, Pass: "trace",
			Node: graph.None, Block: -1, N: st.II, From: st.Makespan})
	}
	return st, nil
}

// ScheduleLoop dispatches on the body structure: the §5.2 single-block
// algorithm for one block, the §5.1 trace algorithm otherwise.
func ScheduleLoop(g *graph.Graph, m *machine.Machine) (*Steady, error) {
	return ScheduleLoopT(g, m, nil)
}

// ScheduleLoopT is ScheduleLoop with optional tracing (see
// ScheduleSingleBlockLoopT and ScheduleLoopTraceT).
func ScheduleLoopT(g *graph.Graph, m *machine.Machine, tr obs.Tracer) (*Steady, error) {
	return ScheduleLoopOpts(g, m, Opts{Tracer: tr})
}

// ScheduleLoopOpts is ScheduleLoop with full options (tracing plus the
// cancellation/budget checkpoint state).
func ScheduleLoopOpts(g *graph.Graph, m *machine.Machine, o Opts) (*Steady, error) {
	if len(blockSet(g)) == 1 {
		return scheduleSingleBlockLoopOpts(g, m, o)
	}
	return scheduleLoopTraceOpts(g, m, o)
}

func blockSet(g *graph.Graph) []int {
	seen := map[int]bool{}
	var out []int
	for v := 0; v < g.Len(); v++ {
		b := g.Node(graph.NodeID(v)).Block
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package core

import (
	"aisched/internal/graph"
	"aisched/internal/sched"
)

// Chop exposes the chop step for white-box tests.
func Chop(s *sched.Schedule, w int) (minus, plus []graph.NodeID, base int) {
	return chop(s, w)
}

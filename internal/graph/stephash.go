package graph

import "math/bits"

// Hash128 is a 128-bit non-cryptographic content hash, the key primitive of
// the per-block step cache (internal/core). It trades SHA-256's adversarial
// collision resistance for speed on the hot scheduling path: the step key is
// rebuilt on every merge iteration, so it must cost tens of nanoseconds, not
// the microsecond-scale canonicalize-and-SHA-256 walk of Fingerprint.
//
// Soundness budget: the mixer below is a wyhash-style multiply-fold, whose
// output on distinct structured inputs is empirically indistinguishable from
// uniform (see TestHasherDistribution). At 128 bits, the birthday collision
// probability across even 2^32 distinct step keys is ~2^-64 — negligible next
// to hardware fault rates — so the cache may return fragments on key equality
// alone, exactly as the memo layer does with Fingerprint. Unlike Fingerprint
// this hash is not safe against adversarially *constructed* collisions; the
// step cache is process-private and keyed by the scheduler's own state, so no
// adversary chooses its inputs.
type Hash128 struct {
	Lo, Hi uint64
}

// wyhash-style mixing constants (64-bit primes with good avalanche behavior).
const (
	hk0 = 0xa0761d6478bd642f
	hk1 = 0xe7037ed1a0b428db
	hk2 = 0x8ebc6af09c88c6e3
	hk3 = 0x589965cc75374cc3
)

// hmix folds a 128-bit product into 64 bits — the wyhash "mum" primitive.
func hmix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// Hasher is a streaming word hasher producing a Hash128. The zero value is
// ready to use; Reset reuses it without allocation. Words are absorbed into
// two alternating multiply-fold lanes, so a Hasher costs one 64×64 multiply
// per word and holds three words of state — it lives happily inside a
// per-scheduler scratch struct.
//
// Hasher is position-dependent (absorbing the same words in a different
// order yields a different sum) and length-extended (the word count is folded
// into the finalization), so callers need no explicit field separators as
// long as every encoding writes a deterministic word sequence.
type Hasher struct {
	a, b uint64
	n    uint64
}

// Reset returns the hasher to its initial state, optionally seeded: absorbing
// the same words after Reset(seed) always yields the same Sum.
func (h *Hasher) Reset(seed uint64) {
	h.a = seed ^ hk0
	h.b = seed ^ hk2
	h.n = 0
}

// Word absorbs one 64-bit word.
func (h *Hasher) Word(v uint64) {
	if h.n&1 == 0 {
		h.a = hmix(h.a^hk1, v^hk0)
	} else {
		h.b = hmix(h.b^hk3, v^hk2)
	}
	h.n++
}

// Int absorbs one signed integer (sign-extended, so -1 and ^uint64(0)>>1
// hash differently from their unsigned counterparts' bit patterns only via
// the caller's encoding discipline).
func (h *Hasher) Int(v int) { h.Word(uint64(int64(v))) }

// Hash128 absorbs a previously computed 128-bit sum as two words, so derived
// keys (a cut-neighborhood hash over per-block content hashes, a step key
// folding in a carried-suffix fingerprint) compose without re-hashing the
// underlying content.
func (h *Hasher) Hash128(v Hash128) {
	h.Word(v.Lo)
	h.Word(v.Hi)
}

// Sum finalizes the hash without disturbing the state: more words may be
// absorbed afterwards, and Sum called again. Both output words depend on
// both lanes and the word count, so prefixes never collide with their
// extensions.
func (h *Hasher) Sum() Hash128 {
	lo := hmix(h.a^hk2, h.b^h.n^hk1)
	hi := hmix(h.b^hk0, h.a^(h.n*hk3))
	return Hash128{Lo: lo, Hi: hi}
}

// Package testutil holds shared test helpers. Its main export is
// SkipIfAllocSensitive: allocation-budget tests (testing.AllocsPerRun
// gates) measure the plain Go runtime, and instrumented builds — the race
// detector's shadow bookkeeping, msan/asan quarantines, or an active
// GOEXPERIMENT that changes the allocator — make those budgets meaningless.
// Such tests must skip, not fail, so `go test -race ./...` stays green
// without loosening the budgets the uninstrumented CI lane enforces.
package testutil

import (
	"os"
	"testing"
)

// SkipIfAllocSensitive skips the calling test when the binary is built with
// instrumentation or experiments that perturb allocation counts.
func SkipIfAllocSensitive(t testing.TB) {
	switch {
	case RaceEnabled:
		t.Skip("race runtime allocates; budgets are measured without -race")
	case MsanEnabled:
		t.Skip("msan runtime allocates; budgets are measured without -msan")
	case AsanEnabled:
		t.Skip("asan runtime allocates; budgets are measured without -asan")
	case os.Getenv("GOEXPERIMENT") != "":
		t.Skipf("GOEXPERIMENT=%s may change allocator behavior; budgets are measured on the default toolchain",
			os.Getenv("GOEXPERIMENT"))
	}
}

package core

import (
	"slices"

	"aisched/internal/graph"
	"aisched/internal/idle"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/rank"
	"aisched/internal/sbudget"
	"aisched/internal/sched"
)

// Step is the reusable per-block engine of Algorithm Lookahead: one
// merge (paper Figure 7) + Delay_Idle_Slots (§3) + Chop (Figure 6) iteration
// over an old ∪ new adjacency view. Both drivers funnel through it — the
// batch LookaheadOpts loop and the incremental internal/stream scheduler —
// so a streamed trace is processed by exactly the code that processes a
// batch trace, and bit-identical results fall out by construction.
//
// A Step owns its rank context (arena included) and all merge scratch;
// Run resets the context per view, so steady-state iterations allocate only
// the schedules they return. A Step is not safe for concurrent use.
type Step struct {
	rc *rank.Ctx

	d           []int
	ranks       []int
	rel         []int
	newMask     graph.Bitset
	changedMask graph.Bitset

	chop chopScratch

	// Window-realizability scratch (wcheck.go).
	wStatic []graph.NodeID
	wByTime []graph.NodeID
	wPos    []int

	// Step-cache state (stepcache.go): the carried suffix fingerprint, the
	// key hasher, and the replay scratch a cache hit materializes into.
	suffFP    graph.Hash128
	suffOK    bool
	keyH      graph.Hasher
	memoS     sched.Schedule
	memoD     []int
	memoMinus []graph.NodeID
	memoPlus  []graph.NodeID
	plusMask  []bool
}

// StepIn is one merge iteration's input. IsOld, DOld and FOld are indexed by
// view node ID; DOld (the carried deadline) and FOld (the carried finish
// time, both rebased to the current chop frame) are read only where IsOld is
// set.
type StepIn struct {
	View graph.AdjView
	M    *machine.Machine
	// Tie is the rank tie-break order over view IDs.
	Tie []graph.NodeID
	// IsOld marks the carried-suffix nodes of the view.
	IsOld []bool
	// DOld[si] is the carried deadline of old node si (frame-relative).
	DOld []int
	// FOld[si] is old node si's finish time in the carried schedule
	// (frame-relative) — the pin target of the realizability repair.
	FOld []int
	// ROld[si] is view node si's release time (frame-relative, ≤ 0 meaning
	// none): the earliest start still owed to latencies of edges whose
	// sources were committed by earlier chops and so are absent from the
	// view. Unlike DOld/FOld it is read for every view node — a committed
	// node's latency can reach into blocks that arrive long after it was
	// emitted. Every greedy reschedule of the iteration floors starts at it.
	// May be nil when no view node has a release.
	ROld []int
	// OldCount and OldMakespan describe the carried suffix as a whole.
	OldCount    int
	OldMakespan int
	// Block is the current block index, for trace events.
	Block     int
	SkipDelay bool
	Tracer    obs.Tracer
	Budget    *sbudget.State
}

// StepOut is one merge iteration's output. D, Minus and Plus alias the
// Step's scratch and are valid until the next Run; S is freshly allocated by
// Run, but a RunMemo cache hit returns the Step's reusable replay schedule —
// treat S under the same until-next-Run lifetime as the other fields.
type StepOut struct {
	// S is the merged, delayed schedule of the whole view.
	S *sched.Schedule
	// D holds the final deadlines (the carry source for Plus nodes).
	D []int
	// Minus is the committed prefix and Plus the carried suffix, both in
	// schedule-permutation order; Base is the chop time base.
	Minus, Plus []graph.NodeID
	Base        int
	// Repaired reports that the deadline-pinned re-merge replaced an
	// unrealizable first merge (see windowRealizable).
	Repaired bool
}

// Run executes one merge + delay + chop iteration.
func (st *Step) Run(in *StepIn) (StepOut, error) {
	if st.rc == nil {
		st.rc = rank.NewReusable()
	}
	rc := st.rc
	view := in.View
	sn := view.N
	tr := in.Tracer

	// One rank context per view: the merge re-ranks, every loosening round
	// and the whole Delay_Idle_Slots pass share its cached topo order,
	// descendant closure and scratch — and the context itself (arena
	// included) is recycled across blocks, calls and pushes.
	if err := rc.Reset(view, in.M, nil); err != nil {
		return StepOut{}, err
	}
	rc.SetBudget(in.Budget)
	if in.ROld != nil {
		// Release times floor every greedy reschedule of this iteration —
		// merge passes, loosening rounds, Delay_Idle_Slots, the repair — so
		// the prediction honors latencies owed to already-committed sources.
		st.rel = growSlice(st.rel, sn)
		rel := st.rel
		for si := 0; si < sn; si++ {
			if in.ROld[si] > 0 {
				rel[si] = in.ROld[si]
			} else {
				rel[si] = 0
			}
		}
		rc.SetRelease(rel)
	}

	// ---- merge (paper Figure 7) ----
	// Lower bound pass: every deadline = D.
	st.d = growSlice(st.d, sn)
	d := st.d
	for i := range d {
		d[i] = rank.Big
	}
	st.ranks = growSlice(st.ranks, sn)
	ranks := st.ranks
	if err := rc.ComputeInto(ranks, d); err != nil {
		return StepOut{}, err
	}
	res0, err := rc.RunRanks(ranks, d, in.Tie)
	if err != nil {
		return StepOut{}, err
	}
	t := res0.S.Makespan()
	// Deadline assignment: old confined to its standalone makespan (or its
	// previously committed tighter deadline), new bounded by T.
	st.newMask = growBits(st.newMask, sn)
	newMask := st.newMask
	for si := 0; si < sn; si++ {
		if in.IsOld[si] {
			d[si] = in.DOld[si]
			if in.OldMakespan < d[si] {
				d[si] = in.OldMakespan
			}
		} else {
			d[si] = t
			newMask.Set(si)
		}
	}
	s, err := st.mergeRounds(in, d, ranks, newMask, false)
	if err != nil {
		return StepOut{}, err
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindMerge, Block: in.Block, Node: graph.None,
			From: in.OldCount, To: sn - in.OldCount, N: s.Makespan()})
	}

	// ---- Delay_Idle_Slots ----
	if !in.SkipDelay {
		s, d, err = idle.DelayIdleSlotsCtx(rc, s, d, in.Tie, tr)
		if err != nil {
			return StepOut{}, err
		}
	}

	// ---- realizability repair ----
	// The deadline-confined merge guarantees old nodes *finish* in time but
	// not that they keep their carried positions: greedy may slide an old
	// node later and hoist a new instruction into the vacated early slot,
	// predicting an execution the W-window hardware cannot reach from the
	// emitted static order. In the restricted model (single unit, unit
	// execution times, 0/1 latencies — where the paper's optimality claim
	// and the ±1-vs-baseline fuzz property live, and where window
	// reachability is exactly achievability) verify the prediction against
	// the anchored window and, on failure, redo the merge with every old
	// deadline pinned to its carried finish time: old keeps its carried
	// arrangement, new fills genuine idle slots only. Outside the restricted
	// model greedy hardware deviates from any prediction (latency stalls
	// reorder the window), so the check would chase a condition that no
	// longer implies the simulated completion — the heuristic regime keeps
	// the paper's §4.2 behavior unchanged.
	repaired := false
	if st.restrictedModel(in) && !st.windowRealizable(s, view, in.M.Window) {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindMergePin, Block: in.Block,
				Node: graph.None, N: s.Makespan()})
		}
		dSave := append([]int(nil), d...)
		sSave := s
		for si := 0; si < sn; si++ {
			if in.IsOld[si] {
				d[si] = in.FOld[si]
			} else {
				d[si] = t
			}
		}
		s2, err := st.mergeRounds(in, d, ranks, newMask, true)
		if err != nil {
			return StepOut{}, err
		}
		if !in.SkipDelay {
			s2, d, err = idle.DelayIdleSlotsCtx(rc, s2, d, in.Tie, tr)
			if err != nil {
				return StepOut{}, err
			}
		}
		if st.windowRealizable(s2, view, in.M.Window) {
			s, repaired = s2, true
		} else {
			s = sSave
			copy(d, dSave)
		}
	}

	// ---- chop ----
	minus, plus, base := st.chop.chop(s, in.M.Window)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindChop, Block: in.Block, Node: graph.None,
			From: len(minus), To: len(plus), N: base})
	}
	return StepOut{S: s, D: d, Minus: minus, Plus: plus, Base: base, Repaired: repaired}, nil
}

// mergeRounds runs the merge's re-rank under the assigned deadlines d, then
// the deadline-loosening loop and the §4.2 heuristic fallback, returning the
// best schedule found. repin is set on the repair path, which reports itself
// through the single KindMergePin event instead of per-round loosen events.
func (st *Step) mergeRounds(in *StepIn, d, ranks []int, newMask graph.Bitset, repin bool) (*sched.Schedule, error) {
	rc := st.rc
	view := in.View
	sn := view.N
	if err := rc.ComputeInto(ranks, d); err != nil {
		return nil, err
	}
	res, err := rc.RunRanks(ranks, d, in.Tie)
	if err != nil {
		return nil, err
	}
	mb := 1
	if view.MaxLat > mb {
		mb = view.MaxLat
	}
	mb = 4 * (sn + mb + 2) // maxBump over the view
	for bump := 0; !res.Feasible && bump <= mb; bump++ {
		if tr := in.Tracer; tr != nil && !repin {
			tr.Emit(obs.Event{Kind: obs.KindMergeLoosen, Block: in.Block,
				Node: graph.None, N: bump + 1})
		}
		for si := 0; si < sn; si++ {
			if !in.IsOld[si] {
				d[si]++
			}
		}
		// Only the new nodes' deadlines moved: re-rank them and their
		// ancestors instead of the whole subgraph.
		rc.Update(ranks, d, newMask)
		res, err = rc.RunRanks(ranks, d, in.Tie)
		if err != nil {
			return nil, err
		}
	}
	// Heuristic-regime fallback (§4.2): with multiple units, multi-cycle
	// instructions or long latencies, greedy-by-rank may miss even the old
	// nodes' deadlines no matter how far the new deadlines are loosened. The
	// paper guarantees a feasible schedule exists (old followed by new);
	// rather than abort, sync every deadline to the achieved finish time so
	// the pipeline proceeds with the best schedule found.
	st.changedMask = growBits(st.changedMask, sn)
	changedMask := st.changedMask
	for tries := 0; !res.Feasible && tries < 30; tries++ {
		clear(changedMask)
		changed := false
		for si := 0; si < sn; si++ {
			if f := res.S.Finish(graph.NodeID(si)); f > d[si] {
				d[si] = f
				changedMask.Set(si)
				changed = true
			}
		}
		if !changed {
			break
		}
		rc.Update(ranks, d, changedMask)
		res, err = rc.RunRanks(ranks, d, in.Tie)
		if err != nil {
			return nil, err
		}
	}
	if !res.Feasible {
		for si := 0; si < sn; si++ {
			if f := res.S.Finish(graph.NodeID(si)); f > d[si] {
				d[si] = f
			}
		}
	}
	return res.S, nil
}

// restrictedModel reports whether the view is an instance of the paper's
// restricted model: one functional unit, unit execution times, and 0/1
// latencies. This is the regime with provable guarantees — and the only one
// where windowRealizable's reachability is the same thing as achievability.
func (st *Step) restrictedModel(in *StepIn) bool {
	if in.M.TotalUnits() != 1 || in.View.MaxLat > 1 {
		return false
	}
	for _, e := range in.View.Exec {
		if e != 1 {
			return false
		}
	}
	return true
}

// windowRealizable reports whether the anchored lookahead window of size w
// can execute the schedule's permutation from its static order (the
// per-block subpermutations concatenated in block order, Definition 2.3's
// priority list). The window holds w consecutive static positions anchored
// at the oldest unissued instruction, so x can issue at time t only if
// fewer than w instructions that are statically before x are still unissued
// at t — equivalently pos(x) − min{pos(y) : start(y) ≥ start(x)} < w. The
// check is exact for the single-unit model (one issue per cycle, distinct
// start times); chop runs after it, so a committed prefix is never part of
// an unrealizable prediction.
func (st *Step) windowRealizable(s *sched.Schedule, view graph.AdjView, w int) bool {
	n := view.N
	st.wStatic = growSlice(st.wStatic, n)
	st.wByTime = growSlice(st.wByTime, n)
	st.wPos = growSlice(st.wPos, n)
	static := st.wStatic
	byTime := st.wByTime
	pos := st.wPos
	for i := 0; i < n; i++ {
		static[i] = graph.NodeID(i)
		byTime[i] = graph.NodeID(i)
	}
	// Static order: block-major, start-minor. Starts are distinct on a
	// single unit, so both comparators are total orders.
	slices.SortFunc(static, func(a, b graph.NodeID) int {
		if view.Block[a] != view.Block[b] {
			return int(view.Block[a]) - int(view.Block[b])
		}
		return s.Start[a] - s.Start[b]
	})
	for i, id := range static {
		pos[id] = i
	}
	slices.SortFunc(byTime, func(a, b graph.NodeID) int {
		return s.Start[a] - s.Start[b]
	})
	// Walking issue order backwards, minPos is the static position of the
	// oldest instruction unissued at byTime[i]'s start — the window anchor.
	minPos := n
	for i := n - 1; i >= 0; i-- {
		p := pos[byTime[i]]
		if p < minPos {
			minPos = p
		}
		if p-minPos >= w {
			return false
		}
	}
	return true
}

//go:build !race

package testutil

// RaceEnabled reports whether this binary was built with -race (see
// race_on.go).
const RaceEnabled = false

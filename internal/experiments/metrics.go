package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"aisched/internal/metrics"
	"aisched/internal/tables"
)

// O2 characterizes the always-on metrics plane (internal/metrics): the cost
// of the record path that every scheduling request pays, and the accuracy of
// the log-linear histogram's quantile estimates. The checks pin the layer's
// two contracts — the record path allocates nothing, and every quantile
// estimate lands within one bucket (≤ 2^-5 ≈ 3.1% relative width) of the
// exact order statistic.
func O2() (*Result, error) {
	t := tables.New("O2: always-on metrics — record-path cost and histogram accuracy",
		"quantity", "measured", "bound", "ok")
	res := &Result{ID: "O2", Table: t, Passed: true}
	reg := metrics.NewRegistry()
	ctr := reg.NewCounter("o2_ops_total", "")
	hist := reg.NewHistogram("o2_latency_ns", "")

	check := func(name string, measured, bound string, ok bool) {
		v := "yes"
		if !ok {
			v = "NO"
			res.Passed = false
		}
		t.Add(name, measured, bound, v)
	}

	// (a) Record-path cost: ns/op for the two hot instruments, measured over
	// enough iterations to drown the timer. The bound is deliberately loose
	// (these are single-digit-ns atomic paths; anything under 150 ns means no
	// lock or map sneaked in).
	const iters = 2_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		ctr.Inc()
	}
	incNS := float64(time.Since(start)) / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		hist.Observe(int64(i))
	}
	obsNS := float64(time.Since(start)) / iters
	check("Counter.Inc ns/op", fmt.Sprintf("%.1f", incNS), "< 150", incNS < 150)
	check("Histogram.Observe ns/op", fmt.Sprintf("%.1f", obsNS), "< 150", obsNS < 150)

	// (b) Record-path allocation: the mallocs delta across a large batch of
	// records must be zero — the contract that makes always-on affordable.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 100_000; i++ {
		ctr.Add(2)
		hist.Observe(int64(i % 4096))
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	check("record-path mallocs / 200k ops", fmt.Sprint(allocs), "== 0", allocs == 0)

	// (c) Quantile accuracy: three shapes (uniform, heavy-tail, clustered)
	// against exact order statistics. The log-linear layout guarantees the
	// estimate falls in the same bucket as the exact quantile, so the
	// relative error for values ≥ 32 is below one sub-bucket width.
	r := rand.New(rand.NewSource(1996))
	shapes := []struct {
		name string
		gen  func() int64
	}{
		{"uniform [1e3,1e6)", func() int64 { return 1_000 + r.Int63n(999_000) }},
		{"heavy tail", func() int64 {
			v := int64(100)
			for r.Float64() < 0.5 && v < 1<<40 {
				v *= 3
			}
			return v + r.Int63n(v)
		}},
		{"clustered", func() int64 { return []int64{250, 251, 40_000, 41_000, 9_000_000}[r.Intn(5)] }},
	}
	const samples = 50_000
	worst := 0.0
	for _, shape := range shapes {
		h := reg.NewHistogram("o2_acc_"+promName(shape.name), "")
		vals := make([]int64, samples)
		for i := range vals {
			vals[i] = shape.gen()
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.50, 0.95, 0.99} {
			idx := int(q*samples+0.5) - 1
			if idx < 0 {
				idx = 0
			}
			exact := float64(vals[idx])
			est := h.Quantile(q)
			rel := (est - exact) / exact
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
			check(fmt.Sprintf("%s p%02.0f rel err", shape.name, q*100),
				fmt.Sprintf("%.4f", rel), "< 0.04", rel < 0.04)
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"worst quantile relative error %.4f against a 2^-5 = 0.031 bucket width (estimates may also straddle one exact-index off-by-one)",
		worst))
	res.Notes = append(res.Notes,
		"record path is striped atomics only: the zero-malloc check is the same contract scripts/check.sh enforces via TestRecordPathZeroAlloc")
	return res, nil
}

// promName mangles a free-form label into a metric-name-safe suffix.
func promName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

package experiments

import (
	"fmt"

	"aisched/internal/graph"
	"aisched/internal/hw"
	"aisched/internal/loops"
	"aisched/internal/machine"
	"aisched/internal/obs"
	"aisched/internal/paperex"
	"aisched/internal/tables"
)

// O1 exercises the observability layer on the paper's Figure 3
// partial-products loop: it simulates the program-order and anticipatory
// schedules under the W=4 window model with a tracer attached and breaks the
// dynamic cost down by stall reason and idle-slot fill kind. The checks pin
// the invariants the metrics are built on: the stall breakdown partitions
// the stall cycles, the anticipatory schedule wins, and — the paper's
// headline effect — it wins by filling idle slots with instructions from a
// *different* iteration (cross-block fills).
func O1() (*Result, error) {
	f := paperex.NewFig3()
	m := machine.SingleUnit(4)
	const iters = 20
	t := tables.New(
		fmt.Sprintf("O1: stall breakdown and idle-slot fills (Figure 3 loop, single unit, n=%d)", iters),
		"schedule", "W", "completion", "stalls", "dep-wait", "window-full",
		"head-blocked", "unit-busy", "same-blk fills", "cross-blk fills")
	res := &Result{ID: "O1", Table: t, Passed: true}

	sched := obs.NewRecorder()
	best, err := loops.ScheduleLoopT(f.G, m, sched)
	if err != nil {
		return nil, err
	}
	ss := sched.Stats()
	res.Notes = append(res.Notes,
		fmt.Sprintf("loop scheduler tried %d II candidates, best II = %d", ss.IICandidates, ss.BestII))
	if ss.IICandidates == 0 || ss.BestII != best.II {
		res.Passed = false
		res.Notes = append(res.Notes, "FAIL: scheduler pass trace disagrees with the returned schedule")
	}

	rows := []struct {
		name  string
		w     int
		order []graph.NodeID
	}{
		{"program order", 1, f.Schedule1},
		{"anticipatory (5.2)", 1, best.Order},
		{"program order", 4, f.Schedule1},
		{"anticipatory (5.2)", 4, best.Order},
	}
	stats := make([]obs.Stats, len(rows))
	for i, row := range rows {
		rec := obs.NewRecorder()
		sim, err := hw.SimulateLoop(f.G, machine.SingleUnit(row.w), row.order, iters,
			hw.Options{Speculate: true, Tracer: rec})
		if err != nil {
			return nil, err
		}
		s := rec.Stats()
		stats[i] = s
		sum := 0
		for _, n := range s.StallByReason {
			sum += n
		}
		if sum != s.StallCycles {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"FAIL: %s W=%d stall breakdown sums to %d, total is %d", row.name, row.w, sum, s.StallCycles))
		}
		if s.Completion != sim.Completion {
			res.Passed = false
			res.Notes = append(res.Notes, fmt.Sprintf(
				"FAIL: %s W=%d traced completion %d != simulator result %d", row.name, row.w, s.Completion, sim.Completion))
		}
		t.Add(row.name, row.w, s.Completion, s.StallCycles,
			s.StallByReason[obs.DepWait.String()],
			s.StallByReason[obs.WindowFull.String()],
			s.StallByReason[obs.HeadBlocked.String()],
			s.StallByReason[obs.UnitBusy.String()],
			s.SameBlockFills, s.CrossBlockFills)
	}
	// W=1: no hardware reordering, the static schedule is everything.
	if stats[1].Completion >= stats[0].Completion {
		res.Passed = false
		res.Notes = append(res.Notes, "FAIL: W=1 anticipatory schedule does not beat program order")
	}
	// W=4: the anticipatory schedule still wins, and it does so by moving
	// work across iteration boundaries.
	prog, anti := stats[2], stats[3]
	if anti.Completion >= prog.Completion {
		res.Passed = false
		res.Notes = append(res.Notes, "FAIL: W=4 anticipatory schedule does not beat program order")
	}
	if anti.CrossBlockFills == 0 {
		res.Passed = false
		res.Notes = append(res.Notes, "FAIL: anticipatory schedule fills no idle slots across iterations")
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"static schedule alone (W=1): %d → %d cycles; with the W=4 window: %d → %d",
		stats[0].Completion, stats[1].Completion, prog.Completion, anti.Completion))
	return res, nil
}

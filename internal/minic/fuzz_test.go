package minic

import (
	"testing"

	"aisched/internal/deps"
)

// FuzzCompile checks the whole front end never panics on arbitrary input,
// and that everything it accepts produces well-formed blocks whose trace
// dependence graph is a DAG.
func FuzzCompile(f *testing.F) {
	f.Add("int a; a = 1;")
	f.Add("int x[4]; int i; for (i = 0; i < 3; i = i + 1) { x[i] = i * 2; }")
	f.Add("int a; if (a) { a = 1; } else { a = 2; }")
	f.Add("int a; a = ((1+2)*(3-4))/5;")
	f.Add("int a; while (a < 5) a = a + 1;")
	f.Add("{}{}{{{")
	f.Add("int int int")
	f.Add("int a; a = b;")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return
		}
		for _, b := range c.Blocks {
			for i, in := range b.Instrs {
				if err := in.Validate(); err != nil {
					t.Fatalf("invalid generated instruction: %v\n%s", err, src)
				}
				if in.IsBranch() && i != len(b.Instrs)-1 {
					t.Fatalf("branch not block-terminal\n%s", src)
				}
			}
		}
		g := deps.BuildTrace(c.TraceBlocks())
		if !g.IsAcyclic() {
			t.Fatalf("cyclic trace graph from:\n%s", src)
		}
		for _, l := range c.Loops {
			for _, bi := range l.BodyBlocks {
				if bi < 0 || bi >= len(c.Blocks) {
					t.Fatalf("loop body block %d out of range\n%s", bi, src)
				}
			}
		}
	})
}
